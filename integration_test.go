// End-to-end integration tests: generated corpus → IR-tree retrieval →
// Step-1 scoring under every engine combination → Step-2 selection under
// every algorithm, with cross-engine consistency checks.
package repro_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/textctx"
	"repro/internal/usereval"
)

func integrationDataset(t *testing.T) (*dataset.Dataset, dataset.Query, []core.Place) {
	t.Helper()
	cfg := dataset.DBpediaLike(21)
	cfg.Places = 800
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := d.GenQueries(1, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	places, err := d.Retrieve(qs[0], 120)
	if err != nil {
		t.Fatal(err)
	}
	return d, qs[0], places
}

// TestPipelineEngineMatrix runs Step 1 with every contextual engine ×
// spatial method and Step 2 with every algorithm, checking that (a) exact
// engines agree bit-for-bit, (b) grid engines stay close, and (c) every
// selection is feasible with positive HPF.
func TestPipelineEngineMatrix(t *testing.T) {
	_, q, places := integrationDataset(t)

	ctxEngines := []textctx.JaccardEngine{
		nil, // default (msJh)
		textctx.BaselineEngine{},
		textctx.MSJHEngine{},
		textctx.MSJHParallelEngine{Workers: 4},
		textctx.NaiveInvertedEngine{},
	}
	spatials := []core.SpatialMethod{core.SpatialExact, core.SpatialSquaredGrid, core.SpatialRadialGrid}

	var exactRef *core.ScoreSet
	for _, eng := range ctxEngines {
		for _, sm := range spatials {
			ss, err := core.ComputeScores(q.Loc, places, core.ScoreOptions{
				Gamma:      0.5,
				Contextual: eng,
				Spatial:    sm,
			})
			if err != nil {
				t.Fatalf("%v/%v: %v", eng, sm, err)
			}
			if sm == core.SpatialExact {
				if exactRef == nil {
					exactRef = ss
				} else {
					// All exact contextual engines must agree exactly.
					for i := 0; i < 5; i++ {
						for j := i + 1; j < 5; j++ {
							if ss.SC.At(i, j) != exactRef.SC.At(i, j) {
								t.Fatalf("contextual engines disagree at (%d,%d)", i, j)
							}
						}
					}
				}
			}
			for name, alg := range map[string]func(*core.ScoreSet, core.Params) (core.Selection, error){
				"IAdU": core.IAdU, "IAdUHeap": core.IAdUHeap,
				"ABP": core.ABP, "ABPEager": core.ABPEager,
				"TopK": core.TopK, "IAdUDiv": core.IAdUDiv, "ABPDiv": core.ABPDiv,
			} {
				sel, err := alg(ss, core.Params{K: 10, Lambda: 0.5, Gamma: 0.5})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if len(sel.Indices) != 10 {
					t.Fatalf("%s: |R| = %d", name, len(sel.Indices))
				}
				if sel.HPF <= 0 {
					t.Fatalf("%s under %v: HPF = %g", name, sm, sel.HPF)
				}
			}
		}
	}
}

// TestGridSelectionsNearExact: selections made on grid-approximated
// scores, re-evaluated under exact scores, must stay within a few percent
// of the exact-score selections (the Figure 11 claim, end to end).
func TestGridSelectionsNearExact(t *testing.T) {
	_, q, places := integrationDataset(t)
	exact, err := core.ComputeScores(q.Loc, places, core.ScoreOptions{Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := core.ComputeScores(q.Loc, places, core.ScoreOptions{
		Gamma:   0.5,
		Spatial: core.SpatialSquaredGrid,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{K: 10, Lambda: 0.5, Gamma: 0.5}
	se, err := core.ABP(exact, p)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := core.ABP(approx, p)
	if err != nil {
		t.Fatal(err)
	}
	he := exact.Evaluate(se.Indices, p.Lambda).Total
	ha := exact.Evaluate(sa.Indices, p.Lambda).Total
	if ha < 0.9*he {
		t.Errorf("grid selection HPF %g more than 10%% below exact %g", ha, he)
	}
}

// TestRetrievalFeedsSelection checks the IR-tree contract the framework
// relies on: the retrieved set is sorted by rF and its scores are valid
// relevance values.
func TestRetrievalFeedsSelection(t *testing.T) {
	_, _, places := integrationDataset(t)
	for i, p := range places {
		if err := p.Validate(); err != nil {
			t.Fatalf("place %d: %v", i, err)
		}
		if i > 0 && p.Rel > places[i-1].Rel+1e-12 {
			t.Fatal("retrieved set not sorted by relevance")
		}
	}
}

// TestPSSAgreesAcrossLayers cross-checks the three pSS computations the
// system has (core exact path, grid baseline, parallel baseline) on
// retrieved data.
func TestPSSAgreesAcrossLayers(t *testing.T) {
	_, q, places := integrationDataset(t)
	ss, err := core.ComputeScores(q.Loc, places, core.ScoreOptions{Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]geo.Point, len(places))
	for i := range places {
		pts[i] = places[i].Loc
	}
	want, _ := grid.PSSBaseline(q.Loc, pts)
	for i := range want {
		if math.Abs(want[i]-ss.PSS[i]) > 1e-9 {
			t.Fatalf("pSS[%d]: core %g vs grid %g", i, ss.PSS[i], want[i])
		}
	}
	par, _ := grid.PSSBaselineParallel(q.Loc, pts, 3)
	for i := range want {
		if want[i] != par[i] {
			t.Fatalf("parallel pSS[%d] differs", i)
		}
	}
}

// TestStudySetPipeline: the user-study generator output flows through the
// panel and algorithms without error and with sane score ranges.
func TestStudySetPipeline(t *testing.T) {
	ss, err := usereval.SyntheticStudySet(33)
	if err != nil {
		t.Fatal(err)
	}
	panel := usereval.NewPanel(10, 3)
	for name, alg := range map[string]func(*core.ScoreSet, core.Params) (core.Selection, error){
		"ABP": core.ABP, "TopK": core.TopK, "ABPDiv": core.ABPDiv,
	} {
		sel, err := alg(ss, core.Params{K: 10, Lambda: 0.5, Gamma: 0.5})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, c := range usereval.Criteria {
			if s := panel.Score(ss, sel.Indices, c); s < 1 || s > 10 {
				t.Fatalf("%s/%v: score %g", name, c, s)
			}
		}
	}
}

// TestWeightedContextualPluggable: the weighted-Jaccard engine (the
// future-work contextual scoring alternative) drops into Step 1 like any
// other engine and shifts selections towards rare-attribute diversity.
func TestWeightedContextualPluggable(t *testing.T) {
	_, q, places := integrationDataset(t)
	sets := make([]textctx.Set, len(places))
	for i := range places {
		sets[i] = places[i].Context
	}
	ss, err := core.ComputeScores(q.Loc, places, core.ScoreOptions{
		Gamma:      0.5,
		Contextual: textctx.WeightedJaccardEngine{Weight: textctx.IDFWeight(sets)},
	})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := core.ABP(ss, core.Params{K: 10, Lambda: 0.5, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Indices) != 10 || sel.HPF <= 0 {
		t.Fatalf("weighted-contextual selection broken: %+v", sel)
	}
}
