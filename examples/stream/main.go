// Stream: proportional selection over a sliding window of geo-tagged
// posts — the streaming extension of the framework.
//
// Posts about a city arrive continuously; the window keeps the latest 150
// and maintains the Step-1 proportionality scores incrementally (O(W) per
// arrival instead of O(W²) recompute). Every 50 arrivals the example
// re-selects a k = 6 proportional digest with ABP and shows how the
// digest tracks the stream as the dominant topic drifts from festival
// posts to flood posts.
//
// Run with: go run ./examples/stream
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/stream"
	"repro/internal/textctx"
)

func main() {
	rng := rand.New(rand.NewSource(4))
	dict := textctx.NewDict()
	q := geo.Pt(0, 0)
	w, err := stream.NewWindow(q, 150, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	post := func(i int, topic string, ang float64) core.Place {
		loc := geo.Pt(
			1.5*math.Cos(ang)+rng.NormFloat64()*0.3,
			1.5*math.Sin(ang)+rng.NormFloat64()*0.3,
		)
		return core.Place{
			ID:  fmt.Sprintf("%s-%03d", topic, i),
			Loc: loc, Rel: 0.6 + 0.2*rng.Float64(),
			Context: textctx.NewSetFromStrings(dict,
				[]string{topic, "city", fmt.Sprintf("%s-%d", topic, i%5)}),
		}
	}

	// Phase 1: mostly festival posts east, some traffic posts north.
	// Phase 2: the river floods — flood posts (west) take over the stream.
	topicAt := func(i int) (string, float64) {
		switch {
		case i < 200 && i%4 != 0:
			return "festival", 0.2
		case i < 200:
			return "traffic", 1.5
		case i%5 == 0:
			return "festival", 0.2
		default:
			return "flood", 3.2
		}
	}

	params := core.Params{K: 6, Lambda: 0.5, Gamma: 0.5}
	start := time.Now()
	for i := 0; i < 400; i++ {
		topic, ang := topicAt(i)
		if _, _, err := w.Push(post(i, topic, ang)); err != nil {
			log.Fatal(err)
		}
		if (i+1)%100 == 0 {
			sel, ss, err := w.Select(core.AlgABP, params)
			if err != nil {
				log.Fatal(err)
			}
			counts := map[string]int{}
			for _, idx := range sel.Indices {
				counts[topicOf(ss.Places[idx].Context.Words(dict))]++
			}
			fmt.Printf("after %3d posts (window %d): digest %v\n",
				i+1, ss.K(), counts)
		}
	}
	fmt.Printf("\n400 arrivals + 4 selections in %v — the digest follows the\n",
		time.Since(start).Round(time.Millisecond))
	fmt.Println("stream: festival-dominated at first, flood-dominated after the")
	fmt.Println("window slides past the event, without ever recomputing Step 1.")
}

// topicOf maps a post's tags to its topic for the digest tally.
func topicOf(tags []string) string {
	for _, tag := range tags {
		switch tag {
		case "festival", "traffic", "flood":
			return tag
		}
	}
	return "other"
}
