// Quickstart: proportional selection over a handful of hand-made places.
//
// It builds a tiny retrieved set S (places with locations, relevance and
// keyword contexts), computes the proportionality scores (Step 1) and
// selects k = 3 places with ABP (Step 2), printing the result alongside
// the plain top-k for contrast.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/textctx"
)

func main() {
	dict := textctx.NewDict()
	place := func(id string, x, y, rel float64, words ...string) core.Place {
		return core.Place{
			ID:      id,
			Loc:     geo.Pt(x, y),
			Rel:     rel,
			Context: textctx.NewSetFromStrings(dict, words),
		}
	}

	// A user at q looks for museums: three similar history museums lie
	// east, one music museum south-east, one science museum west.
	q := geo.Pt(0, 0)
	s := []core.Place{
		place("history-1", 2.0, 0.2, 0.95, "history", "museum", "viking", "nordic"),
		place("history-2", 2.2, -0.1, 0.93, "history", "museum", "viking", "jewellery"),
		place("history-3", 1.9, 0.4, 0.91, "history", "museum", "nordic", "jewellery"),
		place("abba", 2.4, -0.8, 0.90, "music", "museum", "abba", "pop"),
		place("nobel", -1.2, -0.4, 0.88, "science", "museum", "nobel", "literature"),
		place("garden", 0.5, 2.5, 0.60, "park", "garden", "botanic"),
	}

	// Step 1: compute and cache all pairwise proportionality scores.
	scores, err := core.ComputeScores(q, s, core.ScoreOptions{Gamma: 0.5})
	if err != nil {
		log.Fatal(err)
	}

	params := core.Params{K: 3, Lambda: 0.5, Gamma: 0.5}

	// Step 2: greedy proportional selection.
	prop, err := core.ABP(scores, params)
	if err != nil {
		log.Fatal(err)
	}
	topk, err := core.TopK(scores, params)
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, sel core.Selection) {
		b := scores.Evaluate(sel.Indices, params.Lambda)
		fmt.Printf("%s (HPF = %.2f):\n", name, b.Total)
		for rank, i := range sel.Indices {
			p := scores.Places[i]
			fmt.Printf("  %d. %-10s rF=%.2f at %v\n", rank+1, p.ID, p.Rel, p.Loc)
		}
		fmt.Println()
	}
	show("top-k by relevance", topk)
	show("proportional (ABP)", prop)

	fmt.Println("The proportional result keeps the dominant history cluster")
	fmt.Println("represented (it is most of the area) while still covering a")
	fmt.Println("different direction and context — unlike the redundant top-k.")
}
