// Geosocial: proportional selection over a Gowalla-style check-in
// network — context from tags, relevance from text + proximity + social
// affinity.
//
// Two friends query the same location with the same keywords and get
// differently-ranked retrieved sets (their circles frequent different
// venues); the proportionality framework then digests each user's
// retrieved set into a k = 5 representative selection.
//
// Run with: go run ./examples/geosocial
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/geosocial"
	"repro/internal/textctx"
)

func main() {
	rng := rand.New(rand.NewSource(8))
	n := geosocial.NewNetwork()
	dict := textctx.NewDict()

	// Two friend circles of eight users each.
	users := make([]geosocial.UserID, 16)
	for i := range users {
		users[i] = n.AddUser()
	}
	for c := 0; c < 2; c++ {
		for i := 0; i < 8; i++ {
			for j := i + 1; j < 8; j++ {
				if err := n.AddFriendship(users[c*8+i], users[c*8+j]); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	// Venues: cafés, ramen bars, galleries spread around the centre.
	kinds := []string{"cafe", "ramen", "gallery"}
	var venues []geosocial.PlaceID
	for v := 0; v < 45; v++ {
		kind := kinds[v%3]
		ang := rng.Float64() * 2 * math.Pi
		rad := 0.5 + rng.Float64()*2
		id, err := n.AddPlace(
			fmt.Sprintf("%s-%02d", kind, v),
			geo.Pt(rad*math.Cos(ang), rad*math.Sin(ang)),
			textctx.NewSetFromStrings(dict, []string{kind, "venue", fmt.Sprintf("%s-%d", kind, v%4)}),
		)
		if err != nil {
			log.Fatal(err)
		}
		venues = append(venues, id)
	}

	// Circle 1 checks in at cafés, circle 2 at ramen bars.
	for _, v := range venues {
		p, _ := n.Place(v)
		tags := p.Tags.Words(dict)
		for u := 0; u < 8; u++ {
			switch tags[0] {
			case "cafe":
				_ = n.AddCheckin(users[u], v)
			case "ramen":
				_ = n.AddCheckin(users[8+u], v)
			}
		}
	}

	kw := textctx.NewSetFromStrings(dict, []string{"venue"})
	params := core.Params{K: 5, Lambda: 0.5, Gamma: 0.5}
	for _, who := range []struct {
		name string
		user geosocial.UserID
	}{{"café-circle user", users[0]}, {"ramen-circle user", users[8]}} {
		q := geosocial.Query{User: who.user, Loc: geo.Pt(0, 0), Keywords: kw}
		s, err := n.Retrieve(q, 30, geosocial.DefaultWeights(), 0)
		if err != nil {
			log.Fatal(err)
		}
		scores, err := core.ComputeScores(q.Loc, s, core.ScoreOptions{Gamma: 0.5})
		if err != nil {
			log.Fatal(err)
		}
		sel, err := core.ABP(scores, params)
		if err != nil {
			log.Fatal(err)
		}
		counts := map[string]int{}
		for _, i := range sel.Indices {
			counts[kindOf(scores.Places[i].Context.Words(dict))]++
		}
		fmt.Printf("%-18s digest of their top-30: %v\n", who.name, counts)
	}
	fmt.Println("\nThe same query location and keywords produce different")
	fmt.Println("proportional digests: each user's retrieved set S is shaped by")
	fmt.Println("their circle's check-ins, and the selection mirrors that S.")
}

func kindOf(tags []string) string {
	for _, t := range tags {
		switch t {
		case "cafe", "ramen", "gallery":
			return t
		}
	}
	return "other"
}
