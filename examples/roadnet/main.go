// Roadnet: proportional selection with road-network distance — the
// paper's future-work extension — contrasted with Euclidean distance.
//
// A river splits the city: the only bridge is at the northern edge, so
// two places facing each other across the river are Euclidean-close but
// network-far. Proportional selection under network distance treats the
// far bank as a separate, diverse neighbourhood, while the Euclidean
// scorer happily lumps the banks together.
//
// Run with: go run ./examples/roadnet
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/pairs"
	"repro/internal/roadnet"
	"repro/internal/textctx"
)

func main() {
	// Build an 11×11 street grid over [0,10]², then cut every east-west
	// street crossing x = 5 except the northern bridge (y = 10): a river.
	net := roadnet.New()
	const n = 11
	ids := make([][]roadnet.NodeID, n)
	for r := 0; r < n; r++ {
		ids[r] = make([]roadnet.NodeID, n)
		for c := 0; c < n; c++ {
			id, err := net.AddNode(geo.Pt(float64(c), float64(r)))
			if err != nil {
				log.Fatal(err)
			}
			ids[r][c] = id
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				crossesRiver := c == 4 // segment from x=4 to x=5
				if !crossesRiver || r == n-1 {
					if err := net.AddEdge(ids[r][c], ids[r][c+1], 0); err != nil {
						log.Fatal(err)
					}
				}
			}
			if r+1 < n {
				if err := net.AddEdge(ids[r][c], ids[r+1][c], 0); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	fmt.Printf("road network: %d junctions, %d segments (river at x=4.5, bridge at y=10)\n\n",
		net.NumNodes(), net.NumEdges())

	// Places: cafés on both banks near the river, plus a cluster downtown
	// east. The query stands on the east bank.
	rng := rand.New(rand.NewSource(2))
	dict := textctx.NewDict()
	var places []core.Place
	add := func(id string, x, y float64, words ...string) {
		places = append(places, core.Place{
			ID: id, Loc: geo.Pt(x, y), Rel: 0.6 + 0.05*rng.Float64(),
			Context: textctx.NewSetFromStrings(dict, words),
		})
	}
	for i := 0; i < 6; i++ {
		add(fmt.Sprintf("east-cafe-%d", i), 5.6+rng.Float64(), 1+rng.Float64()*3,
			"cafe", "riverside", fmt.Sprintf("e%d", i%3))
	}
	for i := 0; i < 6; i++ {
		add(fmt.Sprintf("west-cafe-%d", i), 3.4-rng.Float64(), 1+rng.Float64()*3,
			"cafe", "riverside", fmt.Sprintf("w%d", i%3))
	}
	for i := 0; i < 8; i++ {
		add(fmt.Sprintf("downtown-%d", i), 8+rng.Float64()*1.5, 7+rng.Float64()*2,
			"restaurant", "downtown", fmt.Sprintf("d%d", i%4))
	}
	q := geo.Pt(6, 2)

	scorer := roadnet.NewScorer(net)
	params := core.Params{K: 8, Lambda: 0.5, Gamma: 0.8} // spatially weighted

	run := func(name string, opt core.ScoreOptions) {
		ss, err := core.ComputeScores(q, places, opt)
		if err != nil {
			log.Fatal(err)
		}
		sel, err := core.ABP(ss, params)
		if err != nil {
			log.Fatal(err)
		}
		counts := map[string]int{}
		for _, i := range sel.Indices {
			switch {
			case ss.Places[i].ID[:4] == "east":
				counts["east-bank"]++
			case ss.Places[i].ID[:4] == "west":
				counts["west-bank"]++
			default:
				counts["downtown"]++
			}
		}
		fmt.Printf("%-22s %v\n", name+":", counts)
	}

	run("euclidean proportional", core.ScoreOptions{Gamma: 0.8})
	run("road-network proportional", core.ScoreOptions{
		Gamma:   0.8,
		Spatial: core.SpatialCustom,
		CustomSpatial: func(q geo.Point, pl []core.Place) (*pairs.Matrix, error) {
			pts := make([]geo.Point, len(pl))
			for i := range pl {
				pts[i] = pl[i].Loc
			}
			return scorer.AllPairs(q, pts)
		},
	})

	fmt.Println("\nUnder Euclidean distance the two banks are symmetric and the west")
	fmt.Println("bank fills its full quota; under network distance the bridge detour")
	fmt.Println("re-shapes the spatial similarities and a west-bank slot moves to")
	fmt.Println("the east bank — the metric visibly changes what is proportional.")
}
