// Museums: the paper's Figure 1 scenario end-to-end on an RDF graph.
//
// A user at a location in Stockholm queries for museums. The museums are
// spatial entities in a small DBpedia-style knowledge graph; each one's
// context is its spatial Object Summary (the neighbouring attribute
// entities). The example contrasts the top-k, diversified, and
// proportional k = 3 selections, reproducing the paper's discussion:
// proportionality represents the dominant history cluster with repetition
// while still covering a diverse direction, where diversification picks
// three mutually remote singletons and top-k three near-duplicates.
//
// Run with: go run ./examples/museums
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/rdf"
	"repro/internal/textctx"
)

func main() {
	g := rdf.NewGraph()
	dict := textctx.NewDict()

	// Spatial entities (locations roughly mirror Figure 1(b): the
	// history museums cluster east of the query, the Nobel museum lies
	// the other way).
	type museum struct {
		label string
		x, y  float64
		attrs map[string][]string // predicate → attribute labels
	}
	museums := []museum{
		{"Swedish History Museum", 2.0, 0.3, map[string][]string{
			"type":       {"History museum", "Nordic museum", "National museum"},
			"collection": {"Archaeological", "Viking collection", "Jewellery works"},
		}},
		{"The Nordic Museum", 2.3, -0.1, map[string][]string{
			"type":       {"History museum", "Nordic museum"},
			"collection": {"Buildings", "Viking collection", "Jewellery works"},
		}},
		{"Vasa Museum", 2.1, 0.0, map[string][]string{
			"type":       {"History museum", "Maritime museum"},
			"collection": {"Viking collection", "Ship"},
		}},
		{"Medieval Museum", 1.8, 0.5, map[string][]string{
			"type":       {"History museum", "Nordic museum"},
			"collection": {"Archaeological", "Medieval works"},
		}},
		{"ABBA The Museum", 2.5, -0.6, map[string][]string{
			"type":       {"Music museum"},
			"collection": {"Stage costumes", "Gold records"},
		}},
		{"Photography Museum", 0.6, -1.4, map[string][]string{
			"type":       {"Art museum"},
			"collection": {"Photos", "Exhibitions"},
		}},
		{"Nobel Museum", -0.6, -0.2, map[string][]string{
			"type":       {"Natural science", "Literature museum", "Peace museum"},
			"collection": {"Laureates works", "Discovery", "Photos"},
		}},
	}

	attrIDs := map[string]rdf.EntityID{}
	for _, m := range museums {
		id, err := g.AddSpatialEntity(m.label, "Museum", geo.Pt(m.x, m.y))
		if err != nil {
			log.Fatal(err)
		}
		for pred, labels := range m.attrs {
			for _, l := range labels {
				aid, ok := attrIDs[l]
				if !ok {
					aid = g.AddEntity(l, "Attribute")
					attrIDs[l] = aid
				}
				if err := g.AddTriple(id, pred, aid); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	fmt.Println("knowledge graph:", g.Stats())

	// Derive each museum's context from its spatial Object Summary. The
	// query location sits between the clusters but nearer the museum
	// quarter, as in Figure 1(b).
	q := geo.Pt(1.0, 0.2)
	var places []core.Place
	for _, id := range g.SpatialEntities() {
		os, err := g.SpatialOS(id, dict, rdf.OSOptions{MaxDepth: 1})
		if err != nil {
			log.Fatal(err)
		}
		e, _ := g.Entity(id)
		// Relevance: proximity to q (all four match the "museum" keyword).
		rel := 1 - e.Loc.Dist(q)/4
		places = append(places, core.Place{ID: e.Label, Loc: e.Loc, Rel: rel, Context: os.Context})
	}

	scores, err := core.ComputeScores(q, places, core.ScoreOptions{Gamma: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	params := core.Params{K: 3, Lambda: 0.5, Gamma: 0.5}

	run := func(name string, alg func(*core.ScoreSet, core.Params) (core.Selection, error)) {
		sel, err := alg(scores, params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n", name)
		for rank, i := range sel.Indices {
			p := scores.Places[i]
			words := p.Context.Words(dict)
			if len(words) > 3 {
				words = words[:3]
			}
			fmt.Printf("  %d. %-24s rF=%.2f context: %v…\n", rank+1, p.ID, p.Rel, words)
		}
	}
	run("top-k by relevance (S_k)", core.TopK)
	run("diversified (ABP_D)", core.ABPDiv)
	run("proportional (ABP)", core.ABP)
}
