// Geotags: proportional selection over geo-tagged photos (explicit
// context), in the style of a flickr neighbourhood browser.
//
// Thousands of photos around a city centre carry descriptive tags. A
// visitor asks for a k = 8 overview of what gets photographed near the
// cathedral square. The example generates a skewed tag landscape (many
// cathedral shots, fewer market and street-art shots, a long tail of
// one-off subjects), then compares proportional selection with
// diversification. Contexts here are plain tag sets — no graph needed —
// showing the framework's "explicit context" mode.
//
// Run with: go run ./examples/geotags
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/textctx"
)

func main() {
	rng := rand.New(rand.NewSource(6))
	dict := textctx.NewDict()
	q := geo.Pt(0, 0) // the cathedral square

	subjects := []struct {
		tag   string
		count int
		ang   float64
	}{
		{"cathedral", 30, 0.1},
		{"market", 26, 1.4},
		{"street-art", 22, 3.3},
		{"harbour", 18, 4.6},
		{"fountain", 14, 2.2},
	}
	var photos []core.Place
	id := 0
	for _, sub := range subjects {
		for i := 0; i < sub.count; i++ {
			loc := geo.Pt(
				1.5*math.Cos(sub.ang)+rng.NormFloat64()*0.3,
				1.5*math.Sin(sub.ang)+rng.NormFloat64()*0.3,
			)
			tags := []string{sub.tag, "city", fmt.Sprintf("%s-%d", sub.tag, i%6)}
			photos = append(photos, core.Place{
				ID:      fmt.Sprintf("photo-%04d", id),
				Loc:     loc,
				Rel:     0.7 + 0.2*rng.Float64(),
				Context: textctx.NewSetFromStrings(dict, tags),
			})
			id++
		}
	}
	// One-off subjects at the periphery.
	for i := 0; i < 18; i++ {
		ang := rng.Float64() * 2 * math.Pi
		photos = append(photos, core.Place{
			ID:      fmt.Sprintf("photo-%04d", id),
			Loc:     geo.Pt(2.8*math.Cos(ang), 2.8*math.Sin(ang)),
			Rel:     0.6 + 0.1*rng.Float64(),
			Context: textctx.NewSetFromStrings(dict, []string{fmt.Sprintf("curio-%d", i)}),
		})
		id++
	}

	scores, err := core.ComputeScores(q, photos, core.ScoreOptions{
		Gamma:   0.5,
		Spatial: core.SpatialSquaredGrid, // grid-based pSS, |G| ≈ K
	})
	if err != nil {
		log.Fatal(err)
	}
	params := core.Params{K: 10, Lambda: 0.5, Gamma: 0.5}

	tally := func(sel core.Selection) map[string]int {
		counts := map[string]int{}
		for _, i := range sel.Indices {
			counts[subjectOf(scores.Places[i].Context.Words(dict))]++
		}
		return counts
	}

	prop, err := core.ABP(scores, params)
	if err != nil {
		log.Fatal(err)
	}
	div, err := core.ABPDiv(scores, params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d photos around the square; selecting k = %d\n\n", len(photos), params.K)
	fmt.Println("photographed subjects in S: cathedral 30, market 26, street-art 22,")
	fmt.Println("harbour 18, fountain 14, one-off curiosities 18")
	fmt.Printf("\nproportional overview : %v\n", tally(prop))
	fmt.Printf("diversified overview  : %v\n", tally(div))
	fmt.Println("\nThe proportional overview mirrors what the neighbourhood is")
	fmt.Println("actually about; diversification surfaces one-off curiosities.")
}

// subjectOf maps a photo's tags back to its subject family for the tally.
func subjectOf(tags []string) string {
	for _, tag := range tags {
		for _, s := range []string{"cathedral", "market", "street-art", "harbour", "fountain"} {
			if tag == s {
				return s
			}
		}
		if len(tag) >= 5 && tag[:5] == "curio" {
			return "curio"
		}
	}
	return "other"
}
