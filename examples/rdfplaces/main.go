// RDFPlaces: the full retrieval-plus-selection pipeline on a generated
// DBpedia-like knowledge graph.
//
//	generate corpus → IR-tree top-K spatial keyword retrieval → Step 1
//	(msJh + squared grid scores) → Step 2 (IAdU and ABP) → report.
//
// This is the end-to-end shape a downstream application would use: the
// retrieved set S comes out of the IR-tree ranked by rF, and the
// proportional selection runs on top, exactly as in Section 5's two-step
// framework.
//
// Run with: go run ./examples/rdfplaces
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/textctx"
)

func main() {
	start := time.Now()
	cfg := dataset.DBpediaLike(11)
	cfg.Places = 3000
	d, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %q in %v: %s\n", cfg.Name, time.Since(start).Round(time.Millisecond), d.Graph.Stats())

	// A query: location in the middle of the world, keywords borrowed
	// from a place's context so the textual side has bite.
	queries, err := d.GenQueries(1, 1000, 5)
	if err != nil {
		log.Fatal(err)
	}
	q := queries[0]
	fmt.Printf("query at (%.1f, %.1f) with %d keywords\n", q.Loc.X, q.Loc.Y, q.Keywords.Len())

	const K = 200
	retrieved, err := d.Retrieve(q, K)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrieved S: %d places, rF range [%.3f, %.3f]\n",
		len(retrieved), retrieved[len(retrieved)-1].Rel, retrieved[0].Rel)

	// Step 1 with the optimised engines: msJh for contexts, squared grid
	// (|G| ≈ K, precomputed similarities) for locations.
	t0 := time.Now()
	scores, err := core.ComputeScores(q.Loc, retrieved, core.ScoreOptions{
		Gamma:      0.5,
		Contextual: textctx.MSJHEngine{},
		Spatial:    core.SpatialSquaredGrid,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 1 (scores) took %v\n", time.Since(t0).Round(time.Microsecond))

	params := core.Params{K: 10, Lambda: 0.5, Gamma: 0.5}
	for _, alg := range []struct {
		name string
		f    func(*core.ScoreSet, core.Params) (core.Selection, error)
	}{{"IAdU", core.IAdU}, {"ABP", core.ABP}} {
		t1 := time.Now()
		sel, err := alg.f(scores, params)
		if err != nil {
			log.Fatal(err)
		}
		b := scores.Evaluate(sel.Indices, params.Lambda)
		fmt.Printf("\n%s took %v — HPF(R) = %.1f (rF %.1f | pC %.1f | pS %.1f)\n",
			alg.name, time.Since(t1).Round(time.Microsecond), b.Total, b.Rel, b.PC, b.PS)
		for rank, i := range sel.Indices {
			p := scores.Places[i]
			fmt.Printf("  %2d. %-12s rF=%.3f dist=%.2f |C|=%d\n",
				rank+1, p.ID, p.Rel, p.Loc.Dist(q.Loc), p.Context.Len())
		}
	}
}
