// Package repro is a Go reproduction of "Proportionality in Spatial
// Keyword Search" (Kalamatianos, Fakas, Mamoulis — SIGMOD 2021).
//
// The library selects, from the ranked result set S of a spatial keyword
// query, a subset R of k places that maximises a holistic score trading
// relevance against contextual and spatial proportionality. See README.md
// for the architecture, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
//
// Packages:
//
//	internal/geo      — planar geometry and Ptolemy's spatial diversity
//	internal/textctx  — contextual sets; baseline / msJh / MinHash Jaccard engines
//	internal/pairs    — symmetric pairwise score cache
//	internal/grid     — squared and radial grids with precomputed tables
//	internal/core     — scores (Eq. 2–18), IAdU, ABP, baselines, exact solver
//	internal/invindex — inverted keyword index
//	internal/irtree   — IR-tree (R-tree + per-node inverted files) retrieval
//	internal/rdf       — RDF-style graph store and spatial object summaries
//	internal/dataset   — synthetic DBpedia/Yago2-like corpora, workloads, CSV loader
//	internal/metrics   — selection-quality diagnostics
//	internal/usereval  — simulated user-study evaluator panel
//	internal/roadnet   — road-network distance extension (future work)
//	internal/stream    — sliding-window streaming extension
//	internal/geosocial — Gowalla-style geo-social retrieval substrate
//	internal/bench     — experiment harness regenerating the paper's figures
package repro
