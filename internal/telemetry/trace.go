package telemetry

import (
	"context"
	"sync"
	"time"
)

// The canonical stage names of the /search pipeline, matching the
// Step 1 / Step 2 decomposition of DESIGN.md: request parsing, admission
// wait at the resilience gate, top-K retrieval, the all-pairs contextual
// (pCS) and spatial (pSS) phases of Step 1, greedy selection (Step 2),
// and response encoding. The pCS/pSS/select spans are recorded by
// internal/textctx, internal/grid and internal/core themselves, at the
// same boundaries as the PR 1 cancellation checkpoints.
const (
	StageParse     = "parse"
	StageAdmission = "admission_wait"
	StageRetrieve  = "retrieve"
	StagePCS       = "step1_pcs"
	StagePSS       = "step1_pss"
	StageSelect    = "step2_select"
	StageEncode    = "encode"
	// StageReplay is not part of the per-request pipeline: it labels the
	// per-record apply latency of WAL replay during startup recovery, so
	// recovery cost lands in the same propserve_stage_seconds histogram
	// operators already watch.
	StageReplay = "wal_replay"
)

// Span is one completed stage of a request, stored as offsets from the
// trace start so spans from one trace share a single clock.
type Span struct {
	Stage string
	Start time.Duration // offset of the stage start from the trace start
	Dur   time.Duration
}

// Trace records the stage spans of one request. A nil *Trace is valid
// and records nothing, so instrumented code can call
// TraceFrom(ctx).StartSpan(...) unconditionally. Safe for concurrent
// use.
type Trace struct {
	t0    time.Time
	mu    sync.Mutex
	spans []Span
}

// NewTrace starts a trace; its clock starts now.
func NewTrace() *Trace { return &Trace{t0: time.Now()} }

// StartSpan begins a stage and returns the function that ends it. The
// span is recorded when the returned function runs (idempotently), so
// the idiom is:
//
//	defer tr.StartSpan(telemetry.StagePCS)()
func (t *Trace) StartSpan(stage string) (end func()) {
	if t == nil {
		return func() {}
	}
	start := time.Since(t.t0)
	var once sync.Once
	return func() {
		once.Do(func() {
			d := time.Since(t.t0) - start
			t.mu.Lock()
			t.spans = append(t.spans, Span{Stage: stage, Start: start, Dur: d})
			t.mu.Unlock()
		})
	}
}

// Spans returns the completed spans sorted by start offset.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	for i := 1; i < len(out); i++ { // insertion sort: spans are nearly ordered
		for j := i; j > 0 && out[j].Start < out[j-1].Start; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Stages returns the total duration per stage name (a stage recorded
// more than once accumulates).
func (t *Trace) Stages() map[string]time.Duration {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]time.Duration, len(t.spans))
	for _, s := range t.spans {
		out[s.Stage] += s.Dur
	}
	return out
}

// Elapsed returns the wall time since the trace started.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.t0)
}

type traceKey struct{}

// WithTrace returns a context carrying tr; the pipeline stages retrieve
// it with TraceFrom / StartSpan.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom returns the trace carried by ctx, or nil (a valid no-op
// trace receiver) when there is none.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// StartSpan begins a stage on the trace carried by ctx, if any. It is
// the one-liner the pipeline stages use:
//
//	defer telemetry.StartSpan(ctx, telemetry.StageSelect)()
func StartSpan(ctx context.Context, stage string) (end func()) {
	return TraceFrom(ctx).StartSpan(stage)
}
