package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The canonical stage names of the /search pipeline, matching the
// Step 1 / Step 2 decomposition of DESIGN.md: request parsing, admission
// wait at the resilience gate, top-K retrieval, the all-pairs contextual
// (pCS) and spatial (pSS) phases of Step 1, greedy selection (Step 2),
// and response encoding. The pCS/pSS/select spans are recorded by
// internal/textctx, internal/grid and internal/core themselves, at the
// same boundaries as the PR 1 cancellation checkpoints.
const (
	StageParse     = "parse"
	StageAdmission = "admission_wait"
	StageRetrieve  = "retrieve"
	StagePCS       = "step1_pcs"
	StagePSS       = "step1_pss"
	StageSelect    = "step2_select"
	StageEncode    = "encode"
	// StageShard is one shard's Step-1 priming inside a sharded retrieve:
	// the parallel Search+refill that fills the shard's merge prefix. Its
	// spans are children of the surrounding StageRetrieve span, one per
	// shard, carrying primed/refill/merge-wait attributes.
	StageShard = "shard_retrieve"
	// StageMerge is the serial k-way merge that consumes the shard
	// prefixes; also a child of StageRetrieve.
	StageMerge = "merge"
	// StageReplay is not part of the per-request pipeline: it labels the
	// per-record apply latency of WAL replay during startup recovery, so
	// recovery cost lands in the same propserve_stage_seconds histogram
	// operators already watch.
	StageReplay = "wal_replay"
)

// Attr is one key/value annotation on a span (shard index, primed
// count, refills...). Values should be small scalars; they are carried
// into retained traces verbatim.
type Attr struct {
	Key   string
	Value any
}

// Span is one completed stage of a request, stored as offsets from the
// trace start so spans from one trace share a single clock. Spans form
// a tree: Parent is the ID of the enclosing span, or 0 for spans
// directly under the request root.
type Span struct {
	// ID is the span's trace-local identifier, 1-based in allocation
	// order. 0 is reserved for "the request root" and never allocated.
	ID int
	// Parent is the enclosing span's ID, or 0 when the span sits
	// directly under the request root.
	Parent int
	Stage  string
	Start  time.Duration // offset of the stage start from the trace start
	Dur    time.Duration
	Attrs  []Attr
}

// Trace records the stage spans of one request as a tree rooted at the
// request itself. A nil *Trace is valid and records nothing, so
// instrumented code can call TraceFrom(ctx).StartSpan(...)
// unconditionally. Safe for concurrent use.
type Trace struct {
	t0     time.Time
	id     string // 32 lowercase hex chars (W3C trace-id)
	root   string // 16 lowercase hex chars (W3C parent-id we emit)
	remote string // ingress parent span ID when adopted, else ""
	nextID atomic.Int64
	mu     sync.Mutex
	spans  []Span
}

// tidFallback seeds generated trace IDs when crypto/rand fails (it
// practically never does); a process-unique counter keeps them distinct.
var tidFallback atomic.Uint64

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		v := tidFallback.Add(1)
		for i := range b {
			b[i] = byte(v >> (8 * (i % 8)))
		}
	}
	return hex.EncodeToString(b)
}

// NewTrace starts a trace with a fresh trace ID; its clock starts now.
func NewTrace() *Trace {
	return &Trace{t0: time.Now(), id: randHex(16), root: randHex(8)}
}

// ID returns the trace's W3C trace-id (32 lowercase hex characters).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SetRemote adopts an ingress traceparent: the trace keeps the caller's
// trace ID (so the request joins the caller's distributed trace) and
// remembers the caller's span ID as the remote parent. Call it before
// the trace is shared across goroutines.
func (t *Trace) SetRemote(traceID, parentSpanID string) {
	if t == nil {
		return
	}
	t.id = traceID
	t.remote = parentSpanID
}

// RemoteParent returns the ingress parent span ID adopted via SetRemote,
// or "" when the trace was locally rooted.
func (t *Trace) RemoteParent() string {
	if t == nil {
		return ""
	}
	return t.remote
}

// TraceParent renders the trace's egress W3C traceparent header value:
// the trace ID plus the span ID this process answers under.
func (t *Trace) TraceParent() string {
	if t == nil {
		return ""
	}
	return "00-" + t.id + "-" + t.root + "-01"
}

// startSpan allocates a span ID under parent and returns it with the
// closure that records the span (idempotently) with any closing attrs.
func (t *Trace) startSpan(stage string, parent int) (id int, end func(attrs ...Attr)) {
	if t == nil {
		return 0, func(...Attr) {}
	}
	start := time.Since(t.t0)
	id = int(t.nextID.Add(1))
	var once sync.Once
	return id, func(attrs ...Attr) {
		once.Do(func() {
			d := time.Since(t.t0) - start
			t.mu.Lock()
			t.spans = append(t.spans, Span{ID: id, Parent: parent, Stage: stage, Start: start, Dur: d, Attrs: attrs})
			t.mu.Unlock()
		})
	}
}

// StartSpan begins a stage directly under the request root and returns
// the function that ends it. The span is recorded when the returned
// function runs (idempotently), so the idiom is:
//
//	defer tr.StartSpan(telemetry.StagePCS)()
func (t *Trace) StartSpan(stage string) (end func()) {
	_, e := t.startSpan(stage, 0)
	return func() { e() }
}

// Annotate appends attrs to the already-recorded span with the given
// ID. It is how the merge loop attributes per-shard facts (refill
// count, wait-for-merge) that are only known after the shard's own span
// has ended. Unknown or still-open span IDs are ignored.
func (t *Trace) Annotate(id int, attrs ...Attr) {
	if t == nil || id == 0 || len(attrs) == 0 {
		return
	}
	t.mu.Lock()
	for i := range t.spans {
		if t.spans[i].ID == id {
			t.spans[i].Attrs = append(t.spans[i].Attrs, attrs...)
			break
		}
	}
	t.mu.Unlock()
}

// Spans returns the completed spans sorted by start offset.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	for i := 1; i < len(out); i++ { // insertion sort: spans are nearly ordered
		for j := i; j > 0 && out[j].Start < out[j-1].Start; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Stages returns the total duration per stage name (a stage recorded
// more than once accumulates).
func (t *Trace) Stages() map[string]time.Duration {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]time.Duration, len(t.spans))
	for _, s := range t.spans {
		out[s.Stage] += s.Dur
	}
	return out
}

// Elapsed returns the wall time since the trace started.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.t0)
}

type traceKey struct{}
type spanKey struct{}

// WithTrace returns a context carrying tr; the pipeline stages retrieve
// it with TraceFrom / StartSpan.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom returns the trace carried by ctx, or nil (a valid no-op
// trace receiver) when there is none.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// spanFrom returns the ID of the context's current enclosing span, or 0
// (the request root) when no BeginSpan is in effect.
func spanFrom(ctx context.Context) int {
	id, _ := ctx.Value(spanKey{}).(int)
	return id
}

// StartSpan begins a stage on the trace carried by ctx, if any, as a
// child of the context's current enclosing span. It is the one-liner
// the pipeline stages use:
//
//	defer telemetry.StartSpan(ctx, telemetry.StageSelect)()
func StartSpan(ctx context.Context, stage string) (end func()) {
	tr := TraceFrom(ctx)
	if tr == nil {
		return func() {}
	}
	_, e := tr.startSpan(stage, spanFrom(ctx))
	return func() { e() }
}

// BeginSpan begins a stage like StartSpan but also returns a derived
// context under which further spans become this span's children. Used
// for stages that contain sub-stages (retrieve → per-shard + merge).
// When ctx carries no trace it returns ctx unchanged and a no-op.
func BeginSpan(ctx context.Context, stage string) (context.Context, func(attrs ...Attr)) {
	tr := TraceFrom(ctx)
	if tr == nil {
		return ctx, func(...Attr) {}
	}
	id, end := tr.startSpan(stage, spanFrom(ctx))
	return context.WithValue(ctx, spanKey{}, id), end
}

// StartSpanAttrs begins a stage as a child of the context's current
// enclosing span and returns the span's ID (for later Annotate calls)
// plus an end function that records closing attributes. The ID is 0 —
// ignored by Annotate — when ctx carries no trace.
func StartSpanAttrs(ctx context.Context, stage string) (id int, end func(attrs ...Attr)) {
	tr := TraceFrom(ctx)
	if tr == nil {
		return 0, func(...Attr) {}
	}
	return tr.startSpan(stage, spanFrom(ctx))
}

// Annotate appends attrs to an already-ended span of the context's
// trace; a no-op without a trace or with id 0.
func Annotate(ctx context.Context, id int, attrs ...Attr) {
	TraceFrom(ctx).Annotate(id, attrs...)
}

// TraceParentHeader is the W3C trace-context header accepted on ingress
// and echoed (with this process's span ID) on egress.
const TraceParentHeader = "traceparent"

// FormatTraceParent renders a version-00 traceparent value.
func FormatTraceParent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceParent parses a W3C traceparent header value
// (version-traceid-parentid-flags). It accepts any version except the
// invalid "ff", requires well-formed non-zero IDs, and returns ok=false
// for anything malformed — the caller then starts a fresh trace.
func ParseTraceParent(h string) (traceID, spanID string, ok bool) {
	h = strings.TrimSpace(h)
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return "", "", false
	}
	ver, tid, pid := parts[0], parts[1], parts[2]
	if len(ver) != 2 || !isLowerHex(ver) || ver == "ff" {
		return "", "", false
	}
	if len(tid) != 32 || !isLowerHex(tid) || allZero(tid) {
		return "", "", false
	}
	if len(pid) != 16 || !isLowerHex(pid) || allZero(pid) {
		return "", "", false
	}
	if len(parts[3]) != 2 || !isLowerHex(parts[3]) {
		return "", "", false
	}
	return tid, pid, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
