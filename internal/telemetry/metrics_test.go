package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g := reg.Gauge("test_gauge", "a gauge")
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(-1.5)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %v, want 1.5", g.Value())
	}
}

func TestCounterVec(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("requests_total", "by code", "code")
	v.With("200").Add(3)
	v.With("503").Inc()
	if v.With("200").Value() != 3 || v.With("503").Value() != 1 {
		t.Errorf("vec values wrong")
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`requests_total{code="200"} 3`,
		`requests_total{code="503"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if want := 0.05 + 0.1 + 0.5 + 5 + 50; math.Abs(h.Sum()-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", h.Sum(), want)
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	// Cumulative: ≤0.1 sees 0.05 and 0.1; ≤1 adds 0.5; ≤10 adds 5; +Inf adds 50.
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramVec(t *testing.T) {
	reg := NewRegistry()
	v := reg.HistogramVec("stage_seconds", "per stage", "stage", []float64{1})
	v.With("parse").Observe(0.5)
	v.With("select").Observe(2)
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`stage_seconds_bucket{stage="parse",le="1"} 1`,
		`stage_seconds_bucket{stage="select",le="+Inf"} 1`,
		`stage_seconds_sum{stage="select"} 2`,
		`stage_seconds_count{stage="parse"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// seriesLine matches one exposition sample line: a metric name, an
// optional label set, and a value.
var seriesLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// TestExpositionFormat parses the full output of a representative
// registry: every line is either a well-formed comment or a well-formed
// sample, HELP/TYPE appear exactly once per family, and no series
// (name + label set) repeats.
func TestExpositionFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "counts a").Inc()
	reg.Gauge("b_gauge", `a "gauge" with \ tricky help`).Set(2.5)
	reg.GaugeFunc("c_gauge", "func gauge", func() float64 { return 7 })
	reg.CounterFunc("d_total", "func counter", func() uint64 { return 9 })
	cv := reg.CounterVec("e_total", "by code", "code")
	cv.With("200").Inc()
	cv.With("404").Inc()
	h := reg.Histogram("f_seconds", "hist", DefBuckets)
	h.Observe(0.3)
	hv := reg.HistogramVec("g_seconds", "hist vec", "stage", []float64{0.5, 5})
	hv.With("x").Observe(1)
	hv.With("y").Observe(1)

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()

	seen := map[string]bool{}
	helps := map[string]int{}
	var prevFamily string
	var families []string
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("malformed comment line %q", line)
			}
			helps[parts[1]+" "+parts[2]]++
			if parts[1] == "# HELP" && parts[2] != prevFamily {
				families = append(families, parts[2])
				prevFamily = parts[2]
			}
			continue
		}
		m := seriesLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		series := m[1] + m[2]
		if seen[series] {
			t.Errorf("duplicate series %q", series)
		}
		seen[series] = true
	}
	for key, n := range helps {
		if n != 1 {
			t.Errorf("%s appears %d times, want 1", key, n)
		}
	}
	for i := 1; i < len(families); i++ {
		if families[i-1] >= families[i] {
			t.Errorf("families not sorted: %q before %q", families[i-1], families[i])
		}
	}
}

func TestRegistryPanicsOnDuplicateAndBadNames(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup_total", "")
	for name, f := range map[string]func(){
		"duplicate":    func() { reg.Counter("dup_total", "") },
		"bad metric":   func() { reg.Counter("0bad", "") },
		"bad label":    func() { reg.CounterVec("ok_total", "", "0bad") },
		"empty bucket": func() { reg.Histogram("h_seconds", "", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMetricsConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	g := reg.Gauge("g_gauge", "")
	h := reg.Histogram("h_seconds", "", DefBuckets)
	v := reg.CounterVec("v_total", "", "code")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / perWorker)
				v.With(fmt.Sprint(w % 3)).Inc()
			}
		}(w)
	}
	// Scrape concurrently with the writers: must be race-free.
	var b strings.Builder
	reg.WritePrometheus(&b)
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Errorf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	var vecTotal uint64
	for i := 0; i < 3; i++ {
		vecTotal += v.With(fmt.Sprint(i)).Value()
	}
	if vecTotal != workers*perWorker {
		t.Errorf("vec total = %d, want %d", vecTotal, workers*perWorker)
	}
}

func TestLatencyBucketsResolveBimodalModes(t *testing.T) {
	// The serving distribution is bimodal: hits at ~2µs, misses at ~5ms.
	// The layout must place each mode in its own interior bucket — not the
	// underflow or a shared catch-all — so per-mode quantiles survive the
	// histogram. DefBuckets fails this: its 0.5ms floor swallows the hit
	// mode whole.
	reg := NewRegistry()
	h := reg.Histogram("req_seconds", "latency", LatencyBuckets)
	idx := func(v float64) int { return sort.SearchFloat64s(LatencyBuckets, v) }
	hit, miss := idx(2e-6), idx(5e-3)
	if hit == 0 {
		t.Error("2µs hit lands in the first bucket — no sub-mode resolution")
	}
	if hit == miss {
		t.Errorf("hit and miss modes share bucket %d", hit)
	}
	// Within each mode a 2x latency change must be visible as a bucket
	// change, or regressions inside a mode are invisible to /metrics.
	for _, v := range []float64{2e-6, 5e-3} {
		if idx(v) == idx(2*v) {
			t.Errorf("%gs and %gs share a bucket", v, 2*v)
		}
	}
	h.Observe(2e-6)
	h.Observe(5e-3)
	var b strings.Builder
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), `le="1e-06"`) {
		t.Errorf("exposition missing microsecond buckets:\n%s", b.String())
	}
}

func TestSeriesFuncCollectors(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeSeriesFunc("slo_p99_seconds", "per-class p99", func() []Series {
		return []Series{
			{Labels: []Label{{"class", "hit"}, {"window", "1m"}}, Value: 0.002},
			{Labels: []Label{{"class", "miss"}, {"window", "1m"}}, Value: 0.25},
			{Value: 1.5}, // no labels: bare series
			{Labels: []Label{{"bad name", "x"}}, Value: 9}, // dropped
		}
	})
	reg.CounterSeriesFunc("slo_requests_total", "per-outcome requests", func() []Series {
		return []Series{{Labels: []Label{{"class", "hit"}, {"outcome", "ok"}}, Value: 12}}
	})
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE slo_p99_seconds gauge",
		`slo_p99_seconds{class="hit",window="1m"} 0.002`,
		`slo_p99_seconds{class="miss",window="1m"} 0.25`,
		"slo_p99_seconds 1.5",
		"# TYPE slo_requests_total counter",
		`slo_requests_total{class="hit",outcome="ok"} 12`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "bad name") {
		t.Errorf("malformed label leaked into exposition:\n%s", out)
	}
}
