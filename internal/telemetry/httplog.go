package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// RequestIDHeader is the header under which every response carries the
// request's ID (client-supplied or generated).
const RequestIDHeader = "X-Request-ID"

type requestIDKey struct{}

// ridFallback seeds generated IDs when crypto/rand fails (it practically
// never does); a process-unique counter keeps them distinct regardless.
var ridFallback atomic.Uint64

// NewRequestID returns a fresh 16-hex-character request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := ridFallback.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// validRequestID accepts client-supplied IDs that are short and free of
// header/log-breaking characters; anything else is replaced.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// RequestID is middleware that assigns every request an ID — reusing a
// well-formed client-supplied X-Request-ID, generating one otherwise —
// sets it on the response header before the handler runs (so even panic
// and shed paths carry it), and stores it in the request context for
// handlers and the access log.
func RequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if !validRequestID(id) {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
	})
}

// RequestIDFrom returns the request ID stored by the RequestID
// middleware, or "" when the middleware is not installed.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// StatusRecorder wraps an http.ResponseWriter, capturing the status code
// and body byte count for instrumentation and access logging.
type StatusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

// NewStatusRecorder wraps w.
func NewStatusRecorder(w http.ResponseWriter) *StatusRecorder {
	return &StatusRecorder{ResponseWriter: w}
}

// WriteHeader implements http.ResponseWriter.
func (s *StatusRecorder) WriteHeader(code int) {
	if !s.wrote {
		s.status, s.wrote = code, true
	}
	s.ResponseWriter.WriteHeader(code)
}

// Write implements http.ResponseWriter.
func (s *StatusRecorder) Write(b []byte) (int, error) {
	if !s.wrote {
		s.status, s.wrote = http.StatusOK, true
	}
	n, err := s.ResponseWriter.Write(b)
	s.bytes += int64(n)
	return n, err
}

// Flush passes through to the underlying writer when it supports it.
func (s *StatusRecorder) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Status returns the response status (200 if the handler wrote a body
// without an explicit WriteHeader, 0 if nothing was written).
func (s *StatusRecorder) Status() int {
	if !s.wrote {
		return 0
	}
	return s.status
}

// BytesWritten returns the number of body bytes written.
func (s *StatusRecorder) BytesWritten() int64 { return s.bytes }

// AccessEntry is one structured access-log line.
type AccessEntry struct {
	Time       string  `json:"time"`
	RequestID  string  `json:"request_id,omitempty"`
	Method     string  `json:"method"`
	Path       string  `json:"path"`
	Query      string  `json:"query,omitempty"`
	Status     int     `json:"status"`
	Bytes      int64   `json:"bytes"`
	DurationMS float64 `json:"duration_ms"`
	Remote     string  `json:"remote,omitempty"`
	// Cache is the engine cache disposition (hit, miss, coalesced,
	// bypass) noted by the handler via NoteCache; empty for requests that
	// never consult the score-set cache.
	Cache string `json:"cache,omitempty"`
	// CorpusEpoch is the corpus snapshot epoch the request was served
	// against, noted by the handler via NoteEpoch; nil for requests that
	// never pin a snapshot. Joining access-log lines with /v1/corpus
	// mutations by epoch attributes a latency shift to the corpus change
	// that caused it.
	CorpusEpoch *uint64 `json:"corpus_epoch,omitempty"`
	// Corpus is the tenant the request resolved to, noted by the handler
	// via NoteCorpus; empty for routes that touch no corpus.
	Corpus string `json:"corpus,omitempty"`
	// TraceID is the request's trace ID when its trace was retained by
	// the tail sampler, noted via NoteTrace — the join key from a log
	// line to GET /v1/traces/{id}.
	TraceID string `json:"trace_id,omitempty"`
}

// requestNote is a per-request mutable slot the AccessLog middleware
// plants in the context so the handler, deep in the call chain, can
// report facts the log line should carry.
type requestNote struct {
	mu     sync.Mutex
	cache  string
	epoch  *uint64
	corpus string
	trace  string
}

type requestNoteKey struct{}

// NoteCache records the engine cache disposition for the current request's
// access-log line. It is a no-op when AccessLog is not installed.
func NoteCache(ctx context.Context, disposition string) {
	n, _ := ctx.Value(requestNoteKey{}).(*requestNote)
	if n == nil {
		return
	}
	n.mu.Lock()
	n.cache = disposition
	n.mu.Unlock()
}

// NoteEpoch records the corpus epoch the current request was served
// against. It is a no-op when AccessLog is not installed.
func NoteEpoch(ctx context.Context, epoch uint64) {
	n, _ := ctx.Value(requestNoteKey{}).(*requestNote)
	if n == nil {
		return
	}
	n.mu.Lock()
	n.epoch = &epoch
	n.mu.Unlock()
}

// NoteCorpus records the tenant the current request resolved to. It is
// a no-op when AccessLog is not installed.
func NoteCorpus(ctx context.Context, corpus string) {
	n, _ := ctx.Value(requestNoteKey{}).(*requestNote)
	if n == nil {
		return
	}
	n.mu.Lock()
	n.corpus = corpus
	n.mu.Unlock()
}

// NoteTrace records the current request's retained trace ID. It is a
// no-op when AccessLog is not installed.
func NoteTrace(ctx context.Context, traceID string) {
	n, _ := ctx.Value(requestNoteKey{}).(*requestNote)
	if n == nil {
		return
	}
	n.mu.Lock()
	n.trace = traceID
	n.mu.Unlock()
}

// AccessLog is middleware that writes one JSON line per request to out,
// serialising concurrent writers so lines never interleave. Install it
// inside RequestID (so lines carry the ID) and outside the panic
// recovery middleware (so recovered 500s are logged with their status).
func AccessLog(next http.Handler, out io.Writer) http.Handler {
	var mu sync.Mutex
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := NewStatusRecorder(w)
		note := &requestNote{}
		r = r.WithContext(context.WithValue(r.Context(), requestNoteKey{}, note))
		next.ServeHTTP(sr, r)
		note.mu.Lock()
		cache, epoch, corpus, trace := note.cache, note.epoch, note.corpus, note.trace
		note.mu.Unlock()
		e := AccessEntry{
			Time:        start.UTC().Format(time.RFC3339Nano),
			RequestID:   RequestIDFrom(r.Context()),
			Method:      r.Method,
			Path:        r.URL.Path,
			Query:       r.URL.RawQuery,
			Status:      sr.Status(),
			Bytes:       sr.BytesWritten(),
			DurationMS:  float64(time.Since(start).Microseconds()) / 1e3,
			Remote:      r.RemoteAddr,
			Cache:       cache,
			CorpusEpoch: epoch,
			Corpus:      corpus,
			TraceID:     trace,
		}
		line, err := json.Marshal(e)
		if err != nil {
			return // an AccessEntry cannot actually fail to marshal
		}
		mu.Lock()
		out.Write(append(line, '\n'))
		mu.Unlock()
	})
}
