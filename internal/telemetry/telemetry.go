// Package telemetry is the zero-dependency observability substrate of
// the serving path: atomic counters, gauges and fixed-bucket histograms
// with Prometheus text-format exposition (metrics.go), a per-request
// stage Trace threaded through context (trace.go), and HTTP middleware
// for request-ID generation and structured JSON access logs
// (httplog.go).
//
// The package sits below every other package of the repository — it
// imports only the standard library — so the pipeline stages
// (internal/core, internal/textctx, internal/grid) can record span
// boundaries without import cycles. The paper's whole point is that
// Step 1 (all-pairs pCS via msJh, pSS via the grids) is made cheap
// relative to Step 2 (greedy selection); the stage spans recorded here
// are what lets a running server demonstrate that split per query, and
// what every later performance PR reports against.
//
// All mutation paths are lock-free (atomics) or take a short mutex on
// registration/exposition only, and everything is safe under -race.
package telemetry
