package telemetry

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRequestIDGeneratedAndEchoed(t *testing.T) {
	var fromCtx string
	h := RequestID(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fromCtx = RequestIDFrom(r.Context())
		w.WriteHeader(http.StatusOK)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	id := rec.Header().Get(RequestIDHeader)
	if id == "" || id != fromCtx {
		t.Fatalf("header id %q, context id %q; want equal and non-empty", id, fromCtx)
	}

	// A second request gets a different ID.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec2.Header().Get(RequestIDHeader) == id {
		t.Error("two requests share one generated ID")
	}
}

func TestRequestIDClientSupplied(t *testing.T) {
	h := RequestID(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))

	req := httptest.NewRequest(http.MethodGet, "/", nil)
	req.Header.Set(RequestIDHeader, "client-id-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got != "client-id-42" {
		t.Errorf("well-formed client ID not reused: %q", got)
	}

	// Malformed (header-splitting, overlong) IDs are replaced, not echoed.
	for _, bad := range []string{"x y", "a\"b", strings.Repeat("z", 100), "dollar$"} {
		req := httptest.NewRequest(http.MethodGet, "/", nil)
		req.Header.Set(RequestIDHeader, bad)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if got := rec.Header().Get(RequestIDHeader); got == bad || got == "" {
			t.Errorf("malformed ID %q echoed as %q", bad, got)
		}
	}
}

func TestStatusRecorder(t *testing.T) {
	rec := httptest.NewRecorder()
	sr := NewStatusRecorder(rec)
	if sr.Status() != 0 {
		t.Errorf("untouched status = %d, want 0", sr.Status())
	}
	sr.WriteHeader(http.StatusTeapot)
	sr.WriteHeader(http.StatusOK) // superfluous; first wins
	sr.Write([]byte("hello"))
	if sr.Status() != http.StatusTeapot {
		t.Errorf("status = %d, want 418", sr.Status())
	}
	if sr.BytesWritten() != 5 {
		t.Errorf("bytes = %d, want 5", sr.BytesWritten())
	}

	// Implicit 200 on first Write.
	sr2 := NewStatusRecorder(httptest.NewRecorder())
	sr2.Write([]byte("x"))
	if sr2.Status() != http.StatusOK {
		t.Errorf("implicit status = %d, want 200", sr2.Status())
	}
}

func TestAccessLogWritesStructuredLine(t *testing.T) {
	var buf strings.Builder
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte("nope"))
	})
	h := RequestID(AccessLog(inner, &buf))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?K=10&k=2", nil))

	line := strings.TrimSpace(buf.String())
	var e AccessEntry
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("access log line is not JSON: %v (%q)", err, line)
	}
	if e.Method != http.MethodGet || e.Path != "/search" || e.Query != "K=10&k=2" {
		t.Errorf("entry = %+v", e)
	}
	if e.Status != http.StatusNotFound || e.Bytes != 4 {
		t.Errorf("status/bytes = %d/%d, want 404/4", e.Status, e.Bytes)
	}
	if e.RequestID != rec.Header().Get(RequestIDHeader) {
		t.Errorf("log id %q != header id %q", e.RequestID, rec.Header().Get(RequestIDHeader))
	}
	if e.DurationMS < 0 || e.Time == "" {
		t.Errorf("missing timing: %+v", e)
	}
}

func TestAccessLogNotes(t *testing.T) {
	var buf strings.Builder
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		NoteCache(r.Context(), "hit")
		NoteEpoch(r.Context(), 42)
		w.Write([]byte("ok"))
	})
	h := AccessLog(inner, &buf)
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/search", nil))

	line := strings.TrimSpace(buf.String())
	var e AccessEntry
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("access log line is not JSON: %v (%q)", err, line)
	}
	if e.Cache != "hit" {
		t.Errorf("cache = %q, want hit", e.Cache)
	}
	if e.CorpusEpoch == nil || *e.CorpusEpoch != 42 {
		t.Errorf("corpus_epoch = %v, want 42", e.CorpusEpoch)
	}
	if !strings.Contains(line, `"corpus_epoch":42`) {
		t.Errorf("line missing corpus_epoch: %q", line)
	}

	// Without a note the field is omitted entirely.
	buf.Reset()
	h = AccessLog(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}), &buf)
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if line := strings.TrimSpace(buf.String()); strings.Contains(line, "corpus_epoch") {
		t.Errorf("unnoted line carries corpus_epoch: %q", line)
	}
}

func TestNoteEpochWithoutMiddleware(t *testing.T) {
	NoteEpoch(context.Background(), 7) // must not panic
	NoteCache(context.Background(), "hit")
}
