package telemetry

import (
	"context"
	"testing"
	"time"
)

func TestTraceSpansMonotonicAndBounded(t *testing.T) {
	tr := NewTrace()
	for _, stage := range []string{StageParse, StagePCS, StagePSS, StageSelect} {
		end := tr.StartSpan(stage)
		time.Sleep(time.Millisecond)
		end()
	}
	elapsed := tr.Elapsed()
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	var sum time.Duration
	for i, sp := range spans {
		if sp.Start < 0 || sp.Dur < 0 {
			t.Errorf("span %d has negative offset/duration: %+v", i, sp)
		}
		if i > 0 {
			prev := spans[i-1]
			if sp.Start < prev.Start {
				t.Errorf("spans not monotonic: %+v before %+v", prev, sp)
			}
			// Sequential stages must not overlap.
			if sp.Start < prev.Start+prev.Dur {
				t.Errorf("span %d overlaps previous: %+v vs %+v", i, sp, prev)
			}
		}
		if sp.Start+sp.Dur > elapsed {
			t.Errorf("span %d extends past elapsed %v: %+v", i, elapsed, sp)
		}
		sum += sp.Dur
	}
	// Sequential spans' durations must sum to no more than the wall time.
	if sum > elapsed {
		t.Errorf("span durations sum %v > elapsed %v", sum, elapsed)
	}
	// They also cover most of it here: every stage slept, the gaps are
	// only loop overhead.
	if sum < elapsed/2 {
		t.Errorf("span durations sum %v < half of elapsed %v", sum, elapsed)
	}
}

func TestTraceStagesAccumulate(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < 3; i++ {
		end := tr.StartSpan(StagePCS)
		time.Sleep(time.Millisecond)
		end()
	}
	st := tr.Stages()
	if len(st) != 1 {
		t.Fatalf("stages = %v, want 1 entry", st)
	}
	if st[StagePCS] < 3*time.Millisecond {
		t.Errorf("accumulated %v, want ≥ 3ms", st[StagePCS])
	}
}

func TestTraceEndIdempotent(t *testing.T) {
	tr := NewTrace()
	end := tr.StartSpan(StageEncode)
	end()
	end()
	if n := len(tr.Spans()); n != 1 {
		t.Errorf("double end recorded %d spans, want 1", n)
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	tr.StartSpan("x")() // must not panic
	if tr.Spans() != nil || tr.Stages() != nil || tr.Elapsed() != 0 {
		t.Error("nil trace returned non-zero data")
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom did not return the stored trace")
	}
	StartSpan(ctx, StageSelect)()
	if len(tr.Spans()) != 1 {
		t.Errorf("context StartSpan recorded %d spans, want 1", len(tr.Spans()))
	}
	// A context without a trace yields a usable no-op.
	StartSpan(context.Background(), StageSelect)()
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				tr.StartSpan(StagePCS)()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if n := len(tr.Spans()); n != 800 {
		t.Errorf("got %d spans, want 800", n)
	}
}
