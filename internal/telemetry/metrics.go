package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets is the default latency bucket layout (seconds). It spans
// 0.5ms–10s, bracketing everything from a grid-approximated Step 1 on a
// small K to a quadratic exact run at the -max-K ceiling.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// LatencyBuckets is the serving-path latency layout (seconds). The
// served distribution is bimodal — cache hits return in single-digit
// microseconds, misses in milliseconds, three orders of magnitude apart —
// so the layout extends DefBuckets down through the microsecond range.
// With the old 0.5ms floor every hit collapsed into one bucket and the
// hit-path p99 was unrecoverable from /metrics.
var LatencyBuckets = []float64{
	1e-6, 2e-6, 4e-6, 8e-6, 1.5e-5, 3e-5, 6e-5, 1.25e-4, 2.5e-4,
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// collector is the exposition hook shared by all metric kinds: it writes
// the series lines (without HELP/TYPE headers) for a family.
type collector interface {
	collect(w io.Writer, name string)
}

type family struct {
	name, help, kind string
	metric           collector
}

// Registry holds a set of uniquely named metric families and renders
// them in Prometheus text format. The zero value is not usable; call
// NewRegistry. Registration panics on a duplicate or malformed name —
// metric wiring is programmer-controlled, so both are programming
// errors, not runtime conditions.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, help, kind string, c collector) {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric name %q", name))
	}
	r.families[name] = &family{name: name, help: help, kind: kind, metric: c}
}

// Counter registers and returns a monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", c)
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — used to expose counts whose source of truth lives elsewhere
// (e.g. resilience.Gate.Stats) without double bookkeeping.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, help, "counter", funcCollector(func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, fn())
	}))
}

// CounterVec registers a counter family keyed by one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if !labelNameRE.MatchString(label) {
		panic(fmt.Sprintf("telemetry: invalid label name %q", label))
	}
	v := &CounterVec{label: label, series: make(map[string]*Counter)}
	r.register(name, help, "counter", v)
	return v
}

// Gauge registers and returns a gauge (a value that can go up and down).
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", g)
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", funcCollector(func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %s\n", n, formatFloat(fn()))
	}))
}

// Label is one name/value pair of a Series.
type Label struct {
	Name, Value string
}

// Series is one labelled sample produced by a SeriesFunc collector.
type Series struct {
	Labels []Label
	Value  float64
}

// GaugeSeriesFunc registers a gauge family whose full series set is read
// from fn at scrape time. Unlike GaugeFunc it supports any number of
// labels per series, for families whose label combinations are only
// known when the backing snapshot is taken (e.g. SLO class × window ×
// quantile). Label names must be valid; series with malformed label
// names are dropped at scrape rather than corrupting the exposition.
func (r *Registry) GaugeSeriesFunc(name, help string, fn func() []Series) {
	r.register(name, help, "gauge", seriesCollector(fn))
}

// CounterSeriesFunc registers a counter family whose series set is read
// from fn at scrape time; fn must return monotonically non-decreasing
// values per label combination.
func (r *Registry) CounterSeriesFunc(name, help string, fn func() []Series) {
	r.register(name, help, "counter", seriesCollector(fn))
}

func seriesCollector(fn func() []Series) collector {
	return funcCollector(func(w io.Writer, n string) {
		for _, s := range fn() {
			var b strings.Builder
			ok := true
			for i, l := range s.Labels {
				if !labelNameRE.MatchString(l.Name) {
					ok = false
					break
				}
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
			}
			if !ok {
				continue
			}
			if b.Len() == 0 {
				fmt.Fprintf(w, "%s %s\n", n, formatFloat(s.Value))
			} else {
				fmt.Fprintf(w, "%s{%s} %s\n", n, b.String(), formatFloat(s.Value))
			}
		}
	})
}

// Histogram registers and returns a histogram with the given bucket
// upper bounds (seconds for latency histograms); a +Inf bucket is
// implicit. Buckets must be non-empty; they are copied and sorted.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(name, help, "histogram", h)
	return h
}

// HistogramVec registers a histogram family keyed by one label, each
// series sharing the same bucket layout.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if !labelNameRE.MatchString(label) {
		panic(fmt.Sprintf("telemetry: invalid label name %q", label))
	}
	v := &HistogramVec{label: label, buckets: normalizeBuckets(buckets), series: make(map[string]*Histogram)}
	r.register(name, help, "histogram", v)
	return v
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4), families sorted by name, each with
// exactly one HELP and TYPE header and no duplicate series.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		f.metric.collect(w, f.name)
	}
}

// ServeHTTP implements http.Handler, making the registry mountable as a
// GET /metrics endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	r.WritePrometheus(&b)
	io.WriteString(w, b.String())
}

type funcCollector func(w io.Writer, name string)

func (f funcCollector) collect(w io.Writer, name string) { f(w, name) }

// Counter is a monotonically increasing counter; safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) collect(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, c.Value())
}

// CounterVec is a family of counters distinguished by one label value.
type CounterVec struct {
	mu     sync.RWMutex
	label  string
	series map[string]*Counter
}

// With returns the counter for the given label value, creating it on
// first use. Label values should come from a bounded set (status codes,
// stage names) to keep series cardinality finite.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c, ok := v.series[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.series[value]; ok {
		return c
	}
	c = &Counter{}
	v.series[value] = c
	return c
}

func (v *CounterVec) collect(w io.Writer, name string) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.series))
	for k := range v.series {
		keys = append(keys, k)
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, v.label, k, v.With(k).Value())
	}
}

// Gauge is a value that can go up and down; safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (which may be negative) with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) collect(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %s\n", name, formatFloat(g.Value()))
}

// Histogram counts observations into fixed buckets; safe for concurrent
// use. Exposed as cumulative le-labelled buckets plus _sum and _count,
// per the Prometheus histogram convention.
type Histogram struct {
	upper  []float64 // sorted upper bounds; +Inf implicit
	counts []atomic.Uint64
	total  atomic.Uint64
	sum    atomicFloat
}

func normalizeBuckets(buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic("telemetry: histogram needs at least one bucket")
	}
	up := make([]float64, 0, len(buckets))
	for _, b := range buckets {
		if math.IsNaN(b) {
			panic("telemetry: NaN histogram bucket")
		}
		if math.IsInf(b, +1) {
			continue // +Inf is implicit
		}
		up = append(up, b)
	}
	sort.Float64s(up)
	// Drop duplicates: a repeated le value would emit a duplicate series.
	out := up[:0]
	for i, b := range up {
		if i == 0 || b != out[len(out)-1] {
			out = append(out, b)
		}
	}
	return out
}

func newHistogram(buckets []float64) *Histogram {
	up := normalizeBuckets(buckets)
	return &Histogram{upper: up, counts: make([]atomic.Uint64, len(up)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is ≥ v; beyond the last bound the
	// observation lands in the implicit +Inf bucket.
	idx := sort.SearchFloat64s(h.upper, v)
	h.counts[idx].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

func (h *Histogram) collect(w io.Writer, name string) {
	h.collectLabelled(w, name, "")
}

// collectLabelled writes the bucket/sum/count lines; extra is either ""
// or a pre-rendered `label="value",` prefix for vec series.
func (h *Histogram) collectLabelled(w io.Writer, name, extra string) {
	var cum uint64
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, extra, formatFloat(ub), cum)
	}
	cum += h.counts[len(h.upper)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, extra, cum)
	// _sum/_count carry the vec label (if any) but no le label.
	suffix := ""
	if extra != "" {
		suffix = "{" + strings.TrimSuffix(extra, ",") + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, h.Count())
}

// HistogramVec is a family of histograms distinguished by one label
// value, all sharing the same bucket layout.
type HistogramVec struct {
	mu      sync.RWMutex
	label   string
	buckets []float64
	series  map[string]*Histogram
}

// With returns the histogram for the given label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h, ok := v.series[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok = v.series[value]; ok {
		return h
	}
	h = &Histogram{upper: v.buckets, counts: make([]atomic.Uint64, len(v.buckets)+1)}
	v.series[value] = h
	return h
}

func (v *HistogramVec) collect(w io.Writer, name string) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.series))
	for k := range v.series {
		keys = append(keys, k)
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		extra := fmt.Sprintf("%s=%q,", v.label, k)
		v.With(k).collectLabelled(w, name, extra)
	}
}

// atomicFloat is a float64 mutated with CAS on its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP line per the exposition format; label values
// need no separate helper because %q quoting escapes `\`, `"` and
// newlines compatibly.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
