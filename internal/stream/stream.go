// Package stream extends the proportionality framework to a sliding
// window of arriving spatial posts (cf. the related work on representative
// spatio-textual posts over sliding windows the paper cites). It maintains
// the Step-1 state — the pairwise contextual and spatial similarity
// caches and the pCS/pSS sums — incrementally: admitting or evicting one
// post costs O(W) similarity computations for a window of W posts,
// instead of the O(W²) full recomputation, after which any Step-2 greedy
// algorithm can run on a consistent core.ScoreSet snapshot.
package stream

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/pairs"
)

// Window is a fixed-capacity sliding window over posts (places) with
// incrementally maintained proportionality scores. It is not safe for
// concurrent mutation.
type Window struct {
	q        geo.Point
	capacity int
	gamma    float64

	places []core.Place
	// age[i] is the arrival sequence number of the post in slot i; the
	// slot with the smallest age is the oldest and is evicted first.
	age []int
	// sc and ss are dense similarity matrices over the slot indices
	// (capacity × capacity, row-major); only slots < len(places) are
	// meaningful. Dense storage keeps eviction O(W).
	sc, ss []float64
	// pcs and pss are the running row sums over live slots.
	pcs, pss []float64
	// arrivals counts total admissions (for stable post identity).
	arrivals int
}

// NewWindow creates a sliding window with the given capacity around query
// location q. gamma is the contextual/spatial weight γ used when taking
// score-set snapshots.
func NewWindow(q geo.Point, capacity int, gamma float64) (*Window, error) {
	if !q.Valid() {
		return nil, fmt.Errorf("stream: invalid query location %v", q)
	}
	if capacity < 2 {
		return nil, fmt.Errorf("stream: capacity %d too small", capacity)
	}
	if gamma < 0 || gamma > 1 || gamma != gamma {
		return nil, fmt.Errorf("stream: γ = %v outside [0, 1]", gamma)
	}
	return &Window{
		q:        q,
		capacity: capacity,
		gamma:    gamma,
		sc:       make([]float64, capacity*capacity),
		ss:       make([]float64, capacity*capacity),
		pcs:      make([]float64, 0, capacity),
		pss:      make([]float64, 0, capacity),
	}, nil
}

// Len returns the number of posts currently in the window.
func (w *Window) Len() int { return len(w.places) }

// Capacity returns the window capacity W.
func (w *Window) Capacity() int { return w.capacity }

// Arrivals returns the total number of admitted posts.
func (w *Window) Arrivals() int { return w.arrivals }

func (w *Window) at(m []float64, i, j int) float64 { return m[i*w.capacity+j] }
func (w *Window) set(m []float64, i, j int, v float64) {
	m[i*w.capacity+j] = v
	m[j*w.capacity+i] = v
}

// Push admits p, evicting the oldest post when the window is full
// (FIFO — a count-based sliding window). It returns the evicted post and
// whether an eviction happened.
func (w *Window) Push(p core.Place) (core.Place, bool, error) {
	if err := p.Validate(); err != nil {
		return core.Place{}, false, err
	}
	var evicted core.Place
	var did bool
	if len(w.places) == w.capacity {
		evicted = w.evictOldest()
		did = true
	}
	w.admit(p)
	return evicted, did, nil
}

// admit appends p and extends the similarity caches and sums in O(W).
func (w *Window) admit(p core.Place) {
	i := len(w.places)
	w.places = append(w.places, p)
	w.pcs = append(w.pcs, 0)
	w.pss = append(w.pss, 0)
	w.age = append(w.age, w.arrivals)
	w.arrivals++
	for j := 0; j < i; j++ {
		sc := p.Context.Jaccard(w.places[j].Context)
		ss := geo.PtolemySimilarity(w.q, p.Loc, w.places[j].Loc)
		w.set(w.sc, i, j, sc)
		w.set(w.ss, i, j, ss)
		w.pcs[i] += sc
		w.pcs[j] += sc
		w.pss[i] += ss
		w.pss[j] += ss
	}
}

// evictOldest removes the slot with the smallest arrival age by swapping
// the last slot into it, updating sums and matrices in O(W).
func (w *Window) evictOldest() core.Place {
	oldest := 0
	for i := 1; i < len(w.places); i++ {
		if w.age[i] < w.age[oldest] {
			oldest = i
		}
	}
	old := w.places[oldest]
	last := len(w.places) - 1
	// Subtract the evicted post's similarities from the remaining sums.
	for j := 0; j <= last; j++ {
		if j != oldest {
			w.pcs[j] -= w.at(w.sc, oldest, j)
			w.pss[j] -= w.at(w.ss, oldest, j)
		}
	}
	// Move the last slot into the vacated one.
	if last != oldest {
		w.places[oldest] = w.places[last]
		w.pcs[oldest] = w.pcs[last]
		w.pss[oldest] = w.pss[last]
		w.age[oldest] = w.age[last]
		for j := 0; j <= last; j++ {
			if j != oldest && j != last {
				w.set(w.sc, oldest, j, w.at(w.sc, last, j))
				w.set(w.ss, oldest, j, w.at(w.ss, last, j))
			}
		}
		w.set(w.sc, oldest, oldest, 0)
		w.set(w.ss, oldest, oldest, 0)
	}
	w.places = w.places[:last]
	w.pcs = w.pcs[:last]
	w.pss = w.pss[:last]
	w.age = w.age[:last]
	return old
}

// Snapshot materialises the current window as a core.ScoreSet, copying
// the incremental caches so later window mutations do not affect the
// returned set. Selection algorithms can run on it directly.
func (w *Window) Snapshot() (*core.ScoreSet, error) {
	n := len(w.places)
	if n == 0 {
		return nil, fmt.Errorf("stream: empty window")
	}
	sc := pairs.New(n)
	ssm := pairs.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sc.Set(i, j, w.at(w.sc, i, j))
			ssm.Set(i, j, w.at(w.ss, i, j))
		}
	}
	places := append([]core.Place(nil), w.places...)
	pcs := append([]float64(nil), w.pcs...)
	pss := append([]float64(nil), w.pss...)
	pfs := make([]float64, n)
	for i := range pfs {
		pfs[i] = (1-w.gamma)*pcs[i] + w.gamma*pss[i]
	}
	return &core.ScoreSet{
		Places: places,
		Q:      w.q,
		Gamma:  w.gamma,
		PCS:    pcs,
		PSS:    pss,
		PFS:    pfs,
		SC:     sc,
		SS:     ssm,
		SF:     pairs.Combine(sc, ssm, 1-w.gamma, w.gamma),
	}, nil
}

// Select runs the named Step-2 algorithm on a snapshot of the window.
func (w *Window) Select(alg core.Algorithm, p core.Params) (core.Selection, *core.ScoreSet, error) {
	ss, err := w.Snapshot()
	if err != nil {
		return core.Selection{}, nil, err
	}
	sel, err := core.Select(alg, ss, p)
	if err != nil {
		return core.Selection{}, nil, err
	}
	return sel, ss, nil
}
