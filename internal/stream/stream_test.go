package stream

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/textctx"
)

func randomPost(rng *rand.Rand, i int) core.Place {
	ids := make([]textctx.ItemID, 2+rng.Intn(6))
	for j := range ids {
		ids[j] = textctx.ItemID(rng.Intn(30))
	}
	return core.Place{
		ID:      string(rune('a'+i%26)) + string(rune('0'+i%10)),
		Loc:     geo.Pt(rng.NormFloat64(), rng.NormFloat64()),
		Rel:     0.2 + 0.8*rng.Float64(),
		Context: textctx.NewSet(ids...),
	}
}

func TestNewWindowValidation(t *testing.T) {
	q := geo.Pt(0, 0)
	if _, err := NewWindow(geo.Pt(math.NaN(), 0), 10, 0.5); err == nil {
		t.Error("NaN query accepted")
	}
	if _, err := NewWindow(q, 1, 0.5); err == nil {
		t.Error("capacity 1 accepted")
	}
	if _, err := NewWindow(q, 10, 1.5); err == nil {
		t.Error("bad gamma accepted")
	}
}

func TestPushValidation(t *testing.T) {
	w, err := NewWindow(geo.Pt(0, 0), 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Push(core.Place{Loc: geo.Pt(0, 0), Rel: 7}); err == nil {
		t.Error("invalid post accepted")
	}
	if _, err := w.Snapshot(); err == nil {
		t.Error("snapshot of empty window accepted")
	}
}

func TestFIFOEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w, err := NewWindow(geo.Pt(0, 0), 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	posts := make([]core.Place, 6)
	for i := range posts {
		posts[i] = randomPost(rng, i)
		posts[i].ID = string(rune('A' + i))
	}
	for i := 0; i < 3; i++ {
		if _, did, err := w.Push(posts[i]); err != nil || did {
			t.Fatalf("push %d: evicted=%v err=%v", i, did, err)
		}
	}
	// Next pushes must evict A, then B, then C — strict arrival order.
	for i := 3; i < 6; i++ {
		ev, did, err := w.Push(posts[i])
		if err != nil || !did {
			t.Fatalf("push %d: evicted=%v err=%v", i, did, err)
		}
		if want := string(rune('A' + i - 3)); ev.ID != want {
			t.Fatalf("push %d evicted %q, want %q", i, ev.ID, want)
		}
	}
	if w.Len() != 3 || w.Arrivals() != 6 {
		t.Errorf("Len=%d Arrivals=%d", w.Len(), w.Arrivals())
	}
}

// TestIncrementalMatchesRecompute is the core correctness property: after
// any sequence of pushes and evictions, the window snapshot must equal a
// from-scratch core.ComputeScores over the same live posts.
func TestIncrementalMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := geo.Pt(0.3, -0.2)
	for _, capacity := range []int{2, 3, 8, 20} {
		w, err := NewWindow(q, capacity, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 4*capacity; step++ {
			if _, _, err := w.Push(randomPost(rng, step)); err != nil {
				t.Fatal(err)
			}
			if step%3 != 0 {
				continue // check on a subsample to keep the test fast
			}
			snap, err := w.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.ComputeScores(q, snap.Places, core.ScoreOptions{Gamma: 0.4})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < snap.K(); i++ {
				if math.Abs(snap.PCS[i]-want.PCS[i]) > 1e-9 {
					t.Fatalf("cap %d step %d: pCS[%d] = %g, want %g",
						capacity, step, i, snap.PCS[i], want.PCS[i])
				}
				if math.Abs(snap.PSS[i]-want.PSS[i]) > 1e-9 {
					t.Fatalf("cap %d step %d: pSS[%d] = %g, want %g",
						capacity, step, i, snap.PSS[i], want.PSS[i])
				}
				if math.Abs(snap.PFS[i]-want.PFS[i]) > 1e-9 {
					t.Fatalf("cap %d step %d: pFS mismatch", capacity, step)
				}
			}
			if d := snap.SC.MaxAbsDiff(want.SC); d > 1e-12 {
				t.Fatalf("cap %d step %d: SC differs by %g", capacity, step, d)
			}
			if d := snap.SS.MaxAbsDiff(want.SS); d > 1e-9 {
				t.Fatalf("cap %d step %d: SS differs by %g", capacity, step, d)
			}
		}
	}
}

// TestSnapshotIsolation: mutating the window after Snapshot must not
// change the snapshot.
func TestSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w, err := NewWindow(geo.Pt(0, 0), 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := w.Push(randomPost(rng, i)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), snap.PCS...)
	for i := 5; i < 15; i++ {
		if _, _, err := w.Push(randomPost(rng, i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := range before {
		if snap.PCS[i] != before[i] {
			t.Fatal("snapshot mutated by later pushes")
		}
	}
}

// TestSelectOverWindow: proportional selection works over the sliding
// window and tracks the stream (the selection changes as content drifts).
func TestSelectOverWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	w, err := NewWindow(geo.Pt(0, 0), 40, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, _, err := w.Push(randomPost(rng, i)); err != nil {
			t.Fatal(err)
		}
	}
	p := core.Params{K: 5, Lambda: 0.5, Gamma: 0.5}
	sel1, ss1, err := w.Select(core.AlgABP, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel1.Indices) != 5 || ss1.K() != 40 {
		t.Fatalf("selection %d over %d", len(sel1.Indices), ss1.K())
	}
	// Drift the stream completely and re-select.
	for i := 40; i < 120; i++ {
		if _, _, err := w.Push(randomPost(rng, i)); err != nil {
			t.Fatal(err)
		}
	}
	sel2, ss2, err := w.Select(core.AlgABP, p)
	if err != nil {
		t.Fatal(err)
	}
	// The old posts are gone, so the selected IDs come from the new pool.
	old := map[string]bool{}
	for _, i := range sel1.Indices {
		old[ss1.Places[i].ID+ss1.Places[i].Loc.String()] = true
	}
	for _, i := range sel2.Indices {
		key := ss2.Places[i].ID + ss2.Places[i].Loc.String()
		if old[key] {
			t.Errorf("selection still contains evicted post %s", key)
		}
	}
}

func BenchmarkWindowPush(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w, err := NewWindow(geo.Pt(0, 0), 500, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	posts := make([]core.Place, 1000)
	for i := range posts {
		posts[i] = randomPost(rng, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := w.Push(posts[i%len(posts)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowSnapshotAndSelect(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w, err := NewWindow(geo.Pt(0, 0), 200, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, _, err := w.Push(randomPost(rng, i)); err != nil {
			b.Fatal(err)
		}
	}
	p := core.Params{K: 10, Lambda: 0.5, Gamma: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := w.Select(core.AlgIAdU, p); err != nil {
			b.Fatal(err)
		}
	}
}
