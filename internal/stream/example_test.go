package stream_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/stream"
	"repro/internal/textctx"
)

// Example shows a sliding window over arriving posts with a proportional
// digest selected from a snapshot.
func Example() {
	d := textctx.NewDict()
	w, err := stream.NewWindow(geo.Pt(0, 0), 4, 0.5)
	if err != nil {
		fmt.Println(err)
		return
	}
	posts := []core.Place{
		{ID: "a", Loc: geo.Pt(1, 0), Rel: 0.9, Context: textctx.NewSetFromStrings(d, []string{"cafe"})},
		{ID: "b", Loc: geo.Pt(1, 1), Rel: 0.8, Context: textctx.NewSetFromStrings(d, []string{"cafe"})},
		{ID: "c", Loc: geo.Pt(-1, 0), Rel: 0.7, Context: textctx.NewSetFromStrings(d, []string{"park"})},
		{ID: "d", Loc: geo.Pt(0, -1), Rel: 0.6, Context: textctx.NewSetFromStrings(d, []string{"bar"})},
		{ID: "e", Loc: geo.Pt(0, 1), Rel: 0.9, Context: textctx.NewSetFromStrings(d, []string{"cafe"})},
	}
	for _, p := range posts {
		if evicted, did, err := w.Push(p); err != nil {
			fmt.Println(err)
			return
		} else if did {
			fmt.Printf("evicted %s\n", evicted.ID)
		}
	}
	sel, snap, err := w.Select(core.AlgABP, core.Params{K: 2, Lambda: 0.5, Gamma: 0.5})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("window %d, selected %d places\n", snap.K(), len(sel.Indices))
	// Output:
	// evicted a
	// window 4, selected 2 places
}
