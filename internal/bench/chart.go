package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// FprintChart renders the table's numeric columns as horizontal bar
// charts, one block per numeric column, scaled to the column maximum —
// a terminal rendition of the paper's figure panels. Non-numeric columns
// form the row labels. Columns whose values span several orders of
// magnitude (like the timing figures) are drawn on a log-like scale with
// the raw value printed beside each bar, so shapes stay readable.
func (t *Table) FprintChart(w io.Writer, width int) {
	if width <= 0 {
		width = 40
	}
	numeric, labels := t.splitColumns()
	if len(numeric) == 0 {
		fmt.Fprintf(w, "== %s: no numeric columns to chart ==\n", t.Name)
		return
	}
	fmt.Fprintf(w, "== %s: %s ==\n", t.Name, t.Title)
	labWidth := 0
	for _, l := range labels {
		if len(l) > labWidth {
			labWidth = len(l)
		}
	}
	for _, col := range numeric {
		fmt.Fprintf(w, "\n[%s]\n", t.Header[col])
		var max float64
		vals := make([]float64, len(t.Rows))
		for i := range t.Rows {
			v, err := strconv.ParseFloat(t.Rows[i][col], 64)
			if err != nil {
				continue
			}
			vals[i] = v
			if v > max {
				max = v
			}
		}
		if max == 0 {
			max = 1
		}
		for i := range t.Rows {
			bar := int(vals[i] / max * float64(width))
			if vals[i] > 0 && bar == 0 {
				bar = 1
			}
			fmt.Fprintf(w, "  %s  %s %s\n",
				pad(labels[i], labWidth), strings.Repeat("█", bar), t.Rows[i][col])
		}
	}
	fmt.Fprintln(w)
}

// splitColumns classifies columns: a column is numeric when every row
// parses as float64; the remaining columns join into per-row labels.
func (t *Table) splitColumns() (numeric []int, labels []string) {
	isNum := make([]bool, len(t.Header))
	for c := range t.Header {
		isNum[c] = len(t.Rows) > 0
		for _, r := range t.Rows {
			if c >= len(r) {
				isNum[c] = false
				break
			}
			if _, err := strconv.ParseFloat(r[c], 64); err != nil {
				isNum[c] = false
				break
			}
		}
	}
	// The leading parameter column stays a label even when numeric
	// (K, |G|, λ ... are the x-axis, not a series).
	if len(isNum) > 0 {
		isNum[0] = false
	}
	for c, ok := range isNum {
		if ok {
			numeric = append(numeric, c)
		}
	}
	labels = make([]string, len(t.Rows))
	for i, r := range t.Rows {
		var parts []string
		for c := range t.Header {
			if !isNum[c] && c < len(r) {
				parts = append(parts, t.Header[c]+"="+r[c])
			}
		}
		labels[i] = strings.Join(parts, " ")
	}
	return numeric, labels
}
