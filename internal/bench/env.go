package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/textctx"
)

// Scale sizes an experimental run. Full reproduces the paper's parameter
// ranges; Small keeps unit tests and smoke runs fast.
type Scale struct {
	// Queries is the number of workload queries averaged per data point
	// (the paper uses 100).
	Queries int
	// Places is the generated dataset size (must exceed MaxK).
	Places int
	// Ks is the swept result-set size K (paper: 20..1000, default 100).
	Ks []int
	// Ps is the swept contextual-set size |p| (paper: 20..400, default 100).
	Ps []int
	// Gs is the swept grid size |G| (paper: 36..196, default 100).
	Gs []int
	// SmallKs is the swept selection size k (paper: 5..20, default 10).
	SmallKs []int
	// DefaultK, DefaultP, DefaultG, Defaultk are the paper's defaults.
	DefaultK, DefaultP, DefaultG, Defaultk int
}

// FullScale mirrors the paper's Section 9.1 settings.
func FullScale() Scale {
	return Scale{
		Queries:  10,
		Places:   4000,
		Ks:       []int{20, 40, 50, 60, 100, 150, 200, 400, 1000},
		Ps:       []int{20, 40, 50, 60, 100, 150, 200, 400},
		Gs:       []int{36, 64, 100, 144, 196},
		SmallKs:  []int{5, 10, 15, 20},
		DefaultK: 100, DefaultP: 100, DefaultG: 100, Defaultk: 10,
	}
}

// SmallScale is a fast variant for tests.
func SmallScale() Scale {
	return Scale{
		Queries:  2,
		Places:   600,
		Ks:       []int{20, 50, 100},
		Ps:       []int{20, 50},
		Gs:       []int{36, 100},
		SmallKs:  []int{5, 10},
		DefaultK: 50, DefaultP: 50, DefaultG: 64, Defaultk: 5,
	}
}

// queryData is one workload query with its retrieved set, pre-materialised
// at the maximum K and the default |p| so per-point slicing is free.
type queryData struct {
	query  dataset.Query
	places []core.Place // sorted by rF, context size = DefaultP
}

// Env is a prepared experimental environment over both datasets.
type Env struct {
	Scale Scale
	// DB and YG are the DBpedia-like and Yago2-like corpora.
	DB, YG *dataset.Dataset
	// SqTbl and RadTbl are the precomputed grid similarity tables shared
	// by every query (the Theorem 7.1 reuse).
	SqTbl  *grid.SquaredTable
	RadTbl *grid.RadialTable

	dbQueries, ygQueries []queryData
}

// NewEnv generates both corpora and the query workloads.
func NewEnv(sc Scale) (*Env, error) {
	maxK := 0
	for _, k := range sc.Ks {
		if k > maxK {
			maxK = k
		}
	}
	if maxK == 0 || sc.Queries <= 0 {
		return nil, fmt.Errorf("bench: degenerate scale %+v", sc)
	}
	maxG := sc.DefaultG
	for _, g := range sc.Gs {
		if g > maxG {
			maxG = g
		}
	}
	for _, k := range sc.Ks {
		if k > maxG {
			maxG = k // the |G| ≈ K rule needs tables up to max K
		}
	}

	e := &Env{
		Scale:  sc,
		SqTbl:  grid.NewSquaredTable(grid.SideForCells(maxG)),
		RadTbl: grid.NewRadialTable(),
	}
	cfgDB := dataset.DBpediaLike(1)
	cfgDB.Places = sc.Places
	cfgYG := dataset.Yago2Like(2)
	cfgYG.Places = sc.Places
	var err error
	if e.DB, err = dataset.Generate(cfgDB); err != nil {
		return nil, err
	}
	if e.YG, err = dataset.Generate(cfgYG); err != nil {
		return nil, err
	}
	if e.dbQueries, err = prepareQueries(e.DB, sc, maxK, 3); err != nil {
		return nil, err
	}
	if e.ygQueries, err = prepareQueries(e.YG, sc, maxK, 4); err != nil {
		return nil, err
	}
	return e, nil
}

func prepareQueries(d *dataset.Dataset, sc Scale, maxK int, seed int64) ([]queryData, error) {
	qs, err := d.GenQueries(sc.Queries, maxK, seed)
	if err != nil {
		return nil, err
	}
	out := make([]queryData, len(qs))
	for i, q := range qs {
		places, err := d.Retrieve(q, maxK)
		if err != nil {
			return nil, err
		}
		out[i] = queryData{
			query:  q,
			places: d.AdjustContextSizes(places, sc.DefaultP, seed+int64(i)),
		}
	}
	return out, nil
}

// topK returns the K most relevant places of qd (retrieval order is
// already sorted by rF).
func (qd *queryData) topK(k int) []core.Place {
	if k > len(qd.places) {
		k = len(qd.places)
	}
	return qd.places[:k]
}

func sets(places []core.Place) []textctx.Set {
	out := make([]textctx.Set, len(places))
	for i := range places {
		out[i] = places[i].Context
	}
	return out
}

func locations(places []core.Place) []geo.Point {
	out := make([]geo.Point, len(places))
	for i := range places {
		out[i] = places[i].Loc
	}
	return out
}

// avgTime runs f once per query of qs and returns the mean wall-clock
// duration in milliseconds. An untimed warmup run on the first query
// absorbs one-off costs (lazy table construction, cache warming).
func avgTime(qs []queryData, f func(qd *queryData)) float64 {
	f(&qs[0])
	var total time.Duration
	for i := range qs {
		start := time.Now()
		f(&qs[i])
		total += time.Since(start)
	}
	return float64(total.Microseconds()) / float64(len(qs)) / 1000
}
