// Package bench is the experiment harness of the reproduction: it
// prepares the synthetic DBpedia-like and Yago2-like workloads, runs one
// experiment per figure panel of the paper's evaluation (Section 9), and
// renders the measured rows/series as text tables. cmd/experiments wires
// it to the command line; the root-level Go benchmarks reuse the same
// runners.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: a titled grid of rows.
type Table struct {
	// Name is the experiment identifier (e.g. "fig7a").
	Name string
	// Title describes what the paper panel shows.
	Title string
	// Header labels the columns; the first column is the swept parameter.
	Header []string
	// Rows hold the measured series, one row per parameter value.
	Rows [][]string
	// Notes records workload details and expectations from the paper.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table to w in aligned text form.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.Name, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			wdt := 0
			if i < len(widths) {
				wdt = widths[i]
			}
			parts[i] = pad(c, wdt)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// FprintCSV renders the table as CSV with a leading comment line naming
// the experiment, for import into plotting tools.
func (t *Table) FprintCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.Name, t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func ms(d float64) string { return fmt.Sprintf("%.3f", d) }

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
