package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/textctx"
	"repro/internal/usereval"
)

// Fig7a measures the all-pairs contextual proportionality time (pCS for
// all of S) of msJh vs the baseline while K grows (|p| at default).
func (e *Env) Fig7a() *Table {
	t := &Table{
		Name:   "fig7a",
		Title:  "pCS(S) time vs K (DBpedia-like, |p|=default)",
		Header: []string{"K", "baseline_ms", "msJh_ms"},
		Notes: []string{
			"paper: similar for K ≤ 40; msJh significantly faster for K > 40",
			fmt.Sprintf("avg over %d queries", e.Scale.Queries),
		},
	}
	base, msjh := textctx.BaselineEngine{}, textctx.MSJHEngine{}
	for _, K := range e.Scale.Ks {
		tb := avgTime(e.dbQueries, func(qd *queryData) { base.AllPairs(sets(qd.topK(K))) })
		tm := avgTime(e.dbQueries, func(qd *queryData) { msjh.AllPairs(sets(qd.topK(K))) })
		t.AddRow(fmt.Sprint(K), ms(tb), ms(tm))
	}
	return t
}

// Fig7b measures the same comparison while the contextual set size |p|
// grows (K at default).
func (e *Env) Fig7b() *Table {
	t := &Table{
		Name:   "fig7b",
		Title:  "pCS(S) time vs |p| (DBpedia-like, K=default)",
		Header: []string{"|p|", "baseline_ms", "msJh_ms"},
		Notes:  []string{"paper: similar for |p| ≤ 20; msJh significantly faster for |p| > 40"},
	}
	base, msjh := textctx.BaselineEngine{}, textctx.MSJHEngine{}
	for _, P := range e.Scale.Ps {
		adjusted := make([][]textctx.Set, len(e.dbQueries))
		for i := range e.dbQueries {
			adjusted[i] = []textctx.Set{}
			pl := e.DB.AdjustContextSizes(e.dbQueries[i].topK(e.Scale.DefaultK), P, int64(100+i))
			adjusted[i] = sets(pl)
		}
		var tb, tm float64
		for i := range adjusted {
			start := time.Now()
			base.AllPairs(adjusted[i])
			tb += float64(time.Since(start).Microseconds())
			start = time.Now()
			msjh.AllPairs(adjusted[i])
			tm += float64(time.Since(start).Microseconds())
		}
		n := float64(len(adjusted)) * 1000
		t.AddRow(fmt.Sprint(P), ms(tb/n), ms(tm/n))
	}
	return t
}

// Fig7x is the minhash ablation the paper reports in prose: minhash only
// beats msJh once both K and |p| are very large.
func (e *Env) Fig7x() *Table {
	t := &Table{
		Name:   "fig7x",
		Title:  "msJh vs minhash (t=128) on synthetic sets",
		Header: []string{"K", "|p|", "msJh_ms", "minhash_ms", "minhash_maxerr"},
		Notes:  []string{"paper (prose): minhash outperforms msJh only when K > 1000 and |p| > 200"},
	}
	msjh := textctx.MSJHEngine{}
	mh := textctx.MinHashEngine{T: 128, Seed: 7}
	rng := rand.New(rand.NewSource(5))
	for _, kp := range [][2]int{{100, 100}, {1000, 100}, {1000, 400}, {2000, 400}} {
		K, P := kp[0], kp[1]
		ss := make([]textctx.Set, K)
		for i := range ss {
			ids := make([]textctx.ItemID, P)
			for j := range ids {
				ids[j] = textctx.ItemID(rng.Intn(P * 10))
			}
			ss[i] = textctx.NewSet(ids...)
		}
		start := time.Now()
		exact := msjh.AllPairs(ss)
		tm := float64(time.Since(start).Microseconds()) / 1000
		start = time.Now()
		approx := mh.AllPairs(ss)
		th := float64(time.Since(start).Microseconds()) / 1000
		t.AddRow(fmt.Sprint(K), fmt.Sprint(P), ms(tm), ms(th), f3(exact.MaxAbsDiff(approx)))
	}
	return t
}

func (e *Env) spatialRow(qs []queryData, K, G int) (tb, tsq, trad float64) {
	tb = avgTime(qs, func(qd *queryData) { grid.PSSBaseline(qd.query.Loc, locations(qd.topK(K))) })
	tsq = avgTime(qs, func(qd *queryData) {
		g, err := grid.NewSquared(qd.query.Loc, locations(qd.topK(K)), G)
		if err != nil {
			panic(err)
		}
		g.PSS(e.SqTbl)
	})
	trad = avgTime(qs, func(qd *queryData) {
		g, err := grid.NewRadial(qd.query.Loc, locations(qd.topK(K)), G)
		if err != nil {
			panic(err)
		}
		g.PSS(e.RadTbl)
	})
	return
}

// Fig8a measures pSS(S) computation time vs K on DBpedia-like data.
func (e *Env) Fig8a() *Table {
	t := &Table{
		Name:   "fig8a",
		Title:  "pSS(S) time vs K (DBpedia-like, |G|=default)",
		Header: []string{"K", "baseline_ms", "squared_ms", "radial_ms"},
		Notes:  []string{"paper: grids beat baseline by ≥ one order of magnitude; gap grows with K"},
	}
	for _, K := range e.Scale.Ks {
		tb, tsq, trad := e.spatialRow(e.dbQueries, K, e.Scale.DefaultG)
		t.AddRow(fmt.Sprint(K), ms(tb), ms(tsq), ms(trad))
	}
	return t
}

// Fig8b measures pSS(S) time vs the grid size |G|.
func (e *Env) Fig8b() *Table {
	t := &Table{
		Name:   "fig8b",
		Title:  "pSS(S) time vs |G| (DBpedia-like, K=default)",
		Header: []string{"|G|", "baseline_ms", "squared_ms", "radial_ms"},
		Notes:  []string{"paper: |G| marginally affects grid time"},
	}
	for _, G := range e.Scale.Gs {
		tb, tsq, trad := e.spatialRow(e.dbQueries, e.Scale.DefaultK, G)
		t.AddRow(fmt.Sprint(G), ms(tb), ms(tsq), ms(trad))
	}
	return t
}

// Fig8c repeats the spatial timing on the Yago2-like corpus (synoptic).
func (e *Env) Fig8c() *Table {
	t := &Table{
		Name:   "fig8c",
		Title:  "pSS(S) time vs K (Yago2-like)",
		Header: []string{"K", "baseline_ms", "squared_ms", "radial_ms"},
		Notes:  []string{"paper: Yago2 behaves like DBpedia"},
	}
	for _, K := range e.Scale.Ks {
		tb, tsq, trad := e.spatialRow(e.ygQueries, K, e.Scale.DefaultG)
		t.AddRow(fmt.Sprint(K), ms(tb), ms(tsq), ms(trad))
	}
	return t
}

// synthConfigs are the Figure 8(d)/9(d) synthetic location distributions.
func synthConfigs() []struct {
	name string
	gen  func(rng *rand.Rand, q geo.Point, n int) []geo.Point
} {
	return []struct {
		name string
		gen  func(rng *rand.Rand, q geo.Point, n int) []geo.Point
	}{
		{"uniform", func(rng *rand.Rand, q geo.Point, n int) []geo.Point {
			return dataset.UniformPoints(rng, q, n, 1)
		}},
		{"gauss.25", func(rng *rand.Rand, q geo.Point, n int) []geo.Point {
			return dataset.GaussianPoints(rng, q, n, 0.25)
		}},
		{"gauss.50", func(rng *rand.Rand, q geo.Point, n int) []geo.Point {
			return dataset.GaussianPoints(rng, q, n, 0.5)
		}},
	}
}

// Fig8d measures grid pSS time on synthetic uniform/Gaussian locations.
func (e *Env) Fig8d() *Table {
	t := &Table{
		Name:   "fig8d",
		Title:  "grid pSS time vs K on synthetic distributions",
		Header: []string{"K", "dist", "squared_ms", "radial_ms"},
		Notes:  []string{"paper: baseline omitted (much larger); squared ≈ radial"},
	}
	q := geo.Pt(0, 0)
	for _, K := range []int{20, 50, 100, 150, 200} {
		for _, sc := range synthConfigs() {
			rng := rand.New(rand.NewSource(9))
			const reps = 10
			var tsq, trad float64
			for rep := 0; rep < reps; rep++ {
				pts := sc.gen(rng, q, K)
				start := time.Now()
				g, err := grid.NewSquared(q, pts, K)
				if err != nil {
					panic(err)
				}
				g.PSS(e.SqTbl)
				tsq += float64(time.Since(start).Microseconds())
				start = time.Now()
				r, err := grid.NewRadial(q, pts, K)
				if err != nil {
					panic(err)
				}
				r.PSS(e.RadTbl)
				trad += float64(time.Since(start).Microseconds())
			}
			t.AddRow(fmt.Sprint(K), sc.name, ms(tsq/reps/1000), ms(trad/reps/1000))
		}
	}
	return t
}

func (e *Env) errorRow(qs []queryData, K, G int) (esq, erad float64) {
	for i := range qs {
		qd := &qs[i]
		pts := locations(qd.topK(K))
		exact, _ := grid.PSSBaseline(qd.query.Loc, pts)
		g, err := grid.NewSquared(qd.query.Loc, pts, G)
		if err != nil {
			panic(err)
		}
		esq += grid.RelativeError(g.PSS(e.SqTbl), exact)
		r, err := grid.NewRadial(qd.query.Loc, pts, G)
		if err != nil {
			panic(err)
		}
		erad += grid.RelativeError(r.PSS(e.RadTbl), exact)
	}
	n := float64(len(qs))
	return esq / n, erad / n
}

// Fig9a measures the relative approximation error of Σ pSS vs K.
func (e *Env) Fig9a() *Table {
	t := &Table{
		Name:   "fig9a",
		Title:  "relative error of Σ pSS vs K (DBpedia-like, |G|=default)",
		Header: []string{"K", "squared_err", "radial_err"},
		Notes:  []string{"paper: squared always better than radial; K does not affect the error"},
	}
	for _, K := range e.Scale.Ks {
		esq, erad := e.errorRow(e.dbQueries, K, e.Scale.DefaultG)
		t.AddRow(fmt.Sprint(K), f3(esq), f3(erad))
	}
	return t
}

// Fig9b measures the error vs |G|.
func (e *Env) Fig9b() *Table {
	t := &Table{
		Name:   "fig9b",
		Title:  "relative error of Σ pSS vs |G| (DBpedia-like, K=default)",
		Header: []string{"|G|", "squared_err", "radial_err"},
		Notes:  []string{"paper: error shrinks as |G| grows; |G| ≈ K gives ≈5% or lower"},
	}
	for _, G := range e.Scale.Gs {
		esq, erad := e.errorRow(e.dbQueries, e.Scale.DefaultK, G)
		t.AddRow(fmt.Sprint(G), f3(esq), f3(erad))
	}
	return t
}

// Fig9c repeats the error study on the Yago2-like corpus.
func (e *Env) Fig9c() *Table {
	t := &Table{
		Name:   "fig9c",
		Title:  "relative error of Σ pSS vs K (Yago2-like)",
		Header: []string{"K", "squared_err", "radial_err"},
	}
	for _, K := range e.Scale.Ks {
		esq, erad := e.errorRow(e.ygQueries, K, e.Scale.DefaultG)
		t.AddRow(fmt.Sprint(K), f3(esq), f3(erad))
	}
	return t
}

// Fig9d measures the error on the synthetic spatial distributions.
func (e *Env) Fig9d() *Table {
	t := &Table{
		Name:   "fig9d",
		Title:  "relative error of Σ pSS on synthetic distributions (|G| = K)",
		Header: []string{"K", "dist", "squared_err", "radial_err"},
	}
	q := geo.Pt(0, 0)
	for _, K := range []int{20, 50, 100, 200} {
		for _, sc := range synthConfigs() {
			rng := rand.New(rand.NewSource(11))
			const reps = 10
			var esq, erad float64
			for rep := 0; rep < reps; rep++ {
				pts := sc.gen(rng, q, K)
				exact, _ := grid.PSSBaseline(q, pts)
				g, err := grid.NewSquared(q, pts, K)
				if err != nil {
					panic(err)
				}
				esq += grid.RelativeError(g.PSS(e.SqTbl), exact)
				r, err := grid.NewRadial(q, pts, K)
				if err != nil {
					panic(err)
				}
				erad += grid.RelativeError(r.PSS(e.RadTbl), exact)
			}
			t.AddRow(fmt.Sprint(K), sc.name, f3(esq/reps), f3(erad/reps))
		}
	}
	return t
}

// pipelineTimes measures the three stacked components of Figure 10 for
// one (K, k) setting: contextual scores, spatial scores, greedy selection.
func (e *Env) pipelineTimes(K, k int, optimised bool, greedy func(*core.ScoreSet, core.Params) (core.Selection, error)) (ctxMs, spaMs, greedyMs float64) {
	params := core.Params{K: k, Lambda: 0.5, Gamma: 0.5}
	for i := range e.dbQueries {
		qd := &e.dbQueries[i]
		places := qd.topK(K)
		opt := core.ScoreOptions{Gamma: 0.5}
		if optimised {
			opt.Contextual = textctx.MSJHEngine{}
			opt.Spatial = core.SpatialSquaredGrid
			opt.SquaredTable = e.SqTbl
		} else {
			opt.Contextual = textctx.BaselineEngine{}
			opt.Spatial = core.SpatialExact
		}
		// Time Step 1's two halves separately by running its components
		// the way ComputeScores does.
		start := time.Now()
		opt.Contextual.AllPairs(sets(places))
		ctxMs += float64(time.Since(start).Microseconds())

		start = time.Now()
		if optimised {
			g, err := grid.NewSquared(qd.query.Loc, locations(places), K)
			if err != nil {
				panic(err)
			}
			g.PSS(e.SqTbl)
			g.ApproxAllPairs(e.SqTbl)
		} else {
			grid.PSSBaseline(qd.query.Loc, locations(places))
		}
		spaMs += float64(time.Since(start).Microseconds())

		ss, err := core.ComputeScores(qd.query.Loc, places, opt)
		if err != nil {
			panic(err)
		}
		start = time.Now()
		if _, err := greedy(ss, params); err != nil {
			panic(err)
		}
		greedyMs += float64(time.Since(start).Microseconds())
	}
	n := float64(len(e.dbQueries)) * 1000
	return ctxMs / n, spaMs / n, greedyMs / n
}

// Fig10 measures the combined cost of the greedy algorithms with
// optimised (msJh + squared grid) vs baseline proportionality scores.
func (e *Env) Fig10() *Table {
	t := &Table{
		Name:   "fig10",
		Title:  "combined cost: greedy + spatial + contextual (DBpedia-like)",
		Header: []string{"K", "k", "method", "ctx_ms", "spatial_ms", "greedy_ms", "total_ms"},
		Notes: []string{
			"paper: optimised ≈ one order of magnitude faster; greedy cost insignificant",
		},
	}
	type combo struct {
		name      string
		optimised bool
		alg       func(*core.ScoreSet, core.Params) (core.Selection, error)
	}
	combos := []combo{
		{"IAdU-opt", true, core.IAdU},
		{"IAdU-base", false, core.IAdU},
		{"ABP-opt", true, core.ABP},
		{"ABP-base", false, core.ABP},
	}
	add := func(K, k int) {
		for _, c := range combos {
			ctxMs, spaMs, gMs := e.pipelineTimes(K, k, c.optimised, c.alg)
			t.AddRow(fmt.Sprint(K), fmt.Sprint(k), c.name,
				ms(ctxMs), ms(spaMs), ms(gMs), ms(ctxMs+spaMs+gMs))
		}
	}
	for _, K := range e.Scale.Ks {
		if K > 400 {
			continue // Figure 10 sweeps K up to 400
		}
		add(K, e.Scale.Defaultk)
	}
	for _, k := range e.Scale.SmallKs {
		if k != e.Scale.Defaultk {
			add(e.Scale.DefaultK, k)
		}
	}
	return t
}

// Fig11 measures the HPF(R) score and its rF/pC/pS breakdown for IAdU and
// ABP with exact vs grid-approximated spatial scores. Selections made on
// approximated scores are re-evaluated under exact scores, so the quality
// compromise of the grid is visible.
func (e *Env) Fig11() *Table {
	t := &Table{
		Name:   "fig11",
		Title:  "HPF(R) quality: rF/pC/pS breakdown (DBpedia-like)",
		Header: []string{"K", "k", "method", "rF_part", "pC_part", "pS_part", "HPF"},
		Notes: []string{
			"paper: ABP marginally better than IAdU (≈2%); grid compromise minor (≈1-7%)",
		},
	}
	type combo struct {
		name string
		alg  func(*core.ScoreSet, core.Params) (core.Selection, error)
		grid bool
	}
	combos := []combo{
		{"IAdU-exact", core.IAdU, false},
		{"IAdU-grid", core.IAdU, true},
		{"ABP-exact", core.ABP, false},
		{"ABP-grid", core.ABP, true},
	}
	add := func(K, k int) {
		params := core.Params{K: k, Lambda: 0.5, Gamma: 0.5}
		for _, c := range combos {
			var rel, pc, ps, hpf float64
			for i := range e.dbQueries {
				qd := &e.dbQueries[i]
				places := qd.topK(K)
				exact, err := core.ComputeScores(qd.query.Loc, places, core.ScoreOptions{Gamma: 0.5})
				if err != nil {
					panic(err)
				}
				scoreSet := exact
				if c.grid {
					scoreSet, err = core.ComputeScores(qd.query.Loc, places, core.ScoreOptions{
						Gamma:        0.5,
						Spatial:      core.SpatialSquaredGrid,
						SquaredTable: e.SqTbl,
					})
					if err != nil {
						panic(err)
					}
				}
				sel, err := c.alg(scoreSet, params)
				if err != nil {
					panic(err)
				}
				b := exact.Evaluate(sel.Indices, params.Lambda)
				rel += b.Rel
				pc += b.PC
				ps += b.PS
				hpf += b.Total
			}
			n := float64(len(e.dbQueries))
			t.AddRow(fmt.Sprint(K), fmt.Sprint(k), c.name,
				f2(rel/n), f2(pc/n), f2(ps/n), f2(hpf/n))
		}
	}
	add(e.Scale.DefaultK, e.Scale.Defaultk)
	for _, K := range []int{50, 200} {
		if K <= e.Scale.Places {
			add(K, e.Scale.Defaultk)
		}
	}
	for _, k := range e.Scale.SmallKs {
		if k != e.Scale.Defaultk {
			add(e.Scale.DefaultK, k)
		}
	}
	return t
}

// studySets builds the user-study result sets (10 queries, as in the
// paper's Section 9.4).
func studySets(n int) ([]*core.ScoreSet, error) {
	out := make([]*core.ScoreSet, n)
	for i := range out {
		ss, err := usereval.SyntheticStudySet(int64(200 + i))
		if err != nil {
			return nil, err
		}
		out[i] = ss
	}
	return out, nil
}

// Fig12a runs the simulated user study: the evaluator panel scores the
// top-k (S_k), diversified (ABP_D) and proportional (ABP) result lists on
// the five criteria.
func (e *Env) Fig12a() *Table {
	t := &Table{
		Name:   "fig12a",
		Title:  "user study: preference (P1, P2) and usability (T1–T3) scores",
		Header: []string{"method", "P1", "P2", "T1", "T2", "T3", "mean"},
		Notes: []string{
			"synthetic evaluator panel (see internal/usereval); paper: proportional > diversified > top-k",
		},
	}
	sets, err := studySets(20)
	if err != nil {
		panic(err)
	}
	panel := usereval.NewPanel(10, 42)
	params := core.Params{K: 10, Lambda: 0.5, Gamma: 0.5}
	methods := []struct {
		name string
		alg  func(*core.ScoreSet, core.Params) (core.Selection, error)
	}{
		{"S_k", core.TopK},
		{"ABP_D", core.ABPDiv},
		{"ABP", core.ABP},
	}
	for _, m := range methods {
		scores := map[usereval.Criterion]float64{}
		for _, ss := range sets {
			sel, err := m.alg(ss, params)
			if err != nil {
				panic(err)
			}
			for _, c := range usereval.Criteria {
				scores[c] += panel.Score(ss, sel.Indices, c) / float64(len(sets))
			}
		}
		var mean float64
		row := []string{m.name}
		for _, c := range usereval.Criteria {
			row = append(row, f2(scores[c]))
			mean += scores[c]
		}
		row = append(row, f2(mean/float64(len(usereval.Criteria))))
		t.AddRow(row...)
	}
	return t
}

// Fig12b sweeps λ and γ and reports the panel's P1 preference for ABP.
func (e *Env) Fig12b() *Table {
	t := &Table{
		Name:   "fig12b",
		Title:  "user preference (P1) for ABP vs λ and γ",
		Header: []string{"lambda", "gamma", "P1"},
		Notes:  []string{"paper: the default λ = γ = 0.5 is most preferable in most cases"},
	}
	sets, err := studySets(6)
	if err != nil {
		panic(err)
	}
	panel := usereval.NewPanel(10, 42)
	vals := []float64{0, 0.25, 0.5, 0.75, 1}
	for _, lambda := range vals {
		for _, gamma := range vals {
			var score float64
			for _, base := range sets {
				ss, err := core.ComputeScores(base.Q, base.Places, core.ScoreOptions{Gamma: gamma})
				if err != nil {
					panic(err)
				}
				sel, err := core.ABP(ss, core.Params{K: 10, Lambda: lambda, Gamma: gamma})
				if err != nil {
					panic(err)
				}
				score += panel.Score(ss, sel.Indices, usereval.P1) / float64(len(sets))
			}
			t.AddRow(f2(lambda), f2(gamma), f2(score))
		}
	}
	return t
}

// Runners maps experiment names to their runners, in report order.
func (e *Env) Runners() []func() *Table {
	return []func() *Table{
		e.Fig7a, e.Fig7b, e.Fig7x,
		e.Fig8a, e.Fig8b, e.Fig8c, e.Fig8d,
		e.Fig9a, e.Fig9b, e.Fig9c, e.Fig9d,
		e.Fig10, e.Fig11, e.Fig12a, e.Fig12b,
		e.Ablations,
	}
}

// Names lists the runnable experiment names.
func Names() []string {
	return []string{
		"fig7a", "fig7b", "fig7x",
		"fig8a", "fig8b", "fig8c", "fig8d",
		"fig9a", "fig9b", "fig9c", "fig9d",
		"fig10", "fig11", "fig12a", "fig12b",
		"ablations",
	}
}

// Run executes one experiment by name.
func (e *Env) Run(name string) (*Table, error) {
	names := Names()
	for i, r := range e.Runners() {
		if names[i] == name {
			return r(), nil
		}
	}
	return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", name, Names())
}
