package bench

import (
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/textctx"
)

// Ablations quantifies the design choices DESIGN.md calls out:
//
//  1. msJh's reverse-order early cut-off vs naive inverted lists vs the
//     per-pair hash baseline;
//  2. precomputed cell-centre similarity tables vs on-the-fly Ptolemy
//     computation inside the grid;
//  3. greedy implementation variants (IAdU array vs heap, ABP lazy vs
//     eager pair invalidation);
//  4. the |G| ≈ K rule vs fixed coarse/fine grids (time and error).
func (e *Env) Ablations() *Table {
	t := &Table{
		Name:   "ablations",
		Title:  "design-choice ablations (DBpedia-like, defaults)",
		Header: []string{"ablation", "variant", "time_ms", "err"},
	}
	K := e.Scale.DefaultK

	// 1. Contextual engines. The msJh-vs-naive gap is small at the
	// default K, so each measurement repeats the computation to push the
	// signal above scheduler jitter.
	const ctxReps = 5
	for _, eng := range []textctx.JaccardEngine{
		textctx.MSJHEngine{}, textctx.NaiveInvertedEngine{}, textctx.BaselineEngine{},
	} {
		eng := eng
		tm := avgTime(e.dbQueries, func(qd *queryData) {
			ss := sets(qd.topK(K))
			for r := 0; r < ctxReps; r++ {
				eng.AllPairs(ss)
			}
		})
		t.AddRow("ctx-engine", eng.Name(), ms(tm/ctxReps), "-")
	}

	// 2. Grid table vs on-the-fly.
	for _, variant := range []struct {
		name string
		tbl  *grid.SquaredTable
	}{{"precomputed-table", e.SqTbl}, {"on-the-fly", nil}} {
		variant := variant
		tm := avgTime(e.dbQueries, func(qd *queryData) {
			g, err := grid.NewSquared(qd.query.Loc, locations(qd.topK(K)), e.Scale.DefaultG)
			if err != nil {
				panic(err)
			}
			g.PSS(variant.tbl)
		})
		t.AddRow("squared-pss", variant.name, ms(tm), "-")
	}

	// 3. Greedy implementation variants: array-scan vs heap IAdU, lazy vs
	// eager ABP, at the default setting.
	{
		params := core.Params{K: e.Scale.Defaultk, Lambda: 0.5, Gamma: 0.5}
		for _, v := range []struct {
			name string
			alg  func(*core.ScoreSet, core.Params) (core.Selection, error)
		}{
			{"IAdU-array", core.IAdU},
			{"IAdU-heap", core.IAdUHeap},
			{"ABP-lazy", core.ABP},
			{"ABP-eager", core.ABPEager},
		} {
			v := v
			tm := avgTime(e.dbQueries, func(qd *queryData) {
				ss, err := core.ComputeScores(qd.query.Loc, qd.topK(K), core.ScoreOptions{
					Gamma:        0.5,
					Spatial:      core.SpatialSquaredGrid,
					SquaredTable: e.SqTbl,
				})
				if err != nil {
					panic(err)
				}
				if _, err := v.alg(ss, params); err != nil {
					panic(err)
				}
			})
			t.AddRow("greedy-variant", v.name, ms(tm), "-")
		}
	}

	// 4. |G| sizing rule: compare error and time at fixed coarse/fine
	// grids vs |G| = K.
	for _, gs := range []struct {
		name  string
		cells int
	}{
		{"G=36 (coarse)", 36},
		{"G=K (paper rule)", K},
		{"G=4K (fine)", 4 * K},
	} {
		var tm, errSum float64
		for i := range e.dbQueries {
			qd := &e.dbQueries[i]
			pts := locations(qd.topK(K))
			exact, _ := grid.PSSBaseline(qd.query.Loc, pts)
			start := time.Now()
			g, err := grid.NewSquared(qd.query.Loc, pts, gs.cells)
			if err != nil {
				panic(err)
			}
			approx := g.PSS(e.SqTbl)
			tm += float64(time.Since(start).Microseconds())
			errSum += grid.RelativeError(approx, exact)
		}
		n := float64(len(e.dbQueries))
		t.AddRow("grid-sizing", gs.name, ms(tm/n/1000), f3(errSum/n))
	}
	return t
}
