package bench

import (
	"strconv"
	"strings"
	"testing"
)

// sharedEnv is built once; environment construction dominates test time.
var sharedEnv *Env

func env(t *testing.T) *Env {
	t.Helper()
	if sharedEnv == nil {
		e, err := NewEnv(SmallScale())
		if err != nil {
			t.Fatal(err)
		}
		sharedEnv = e
	}
	return sharedEnv
}

func TestNewEnvValidation(t *testing.T) {
	if _, err := NewEnv(Scale{}); err == nil {
		t.Error("degenerate scale accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Name:   "x",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Notes:  []string{"hello"},
	}
	tbl.AddRow("1", "2")
	out := tbl.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "1", "2", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// numericCell parses a table cell as float64.
func numericCell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", tbl.Name, row, col, tbl.Rows[row][col])
	}
	return v
}

func TestAllExperimentsRun(t *testing.T) {
	e := env(t)
	for _, name := range Names() {
		tbl, err := e.Run(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s produced no rows", name)
		}
		if len(tbl.Header) == 0 || tbl.Title == "" {
			t.Errorf("%s missing header or title", name)
		}
		for _, r := range tbl.Rows {
			if len(r) != len(tbl.Header) {
				t.Errorf("%s: ragged row %v", name, r)
			}
		}
	}
	if _, err := e.Run("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestFig7Shape: at the largest K the msJh engine must not be slower than
// the baseline (the paper's headline contextual result).
func TestFig7Shape(t *testing.T) {
	e := env(t)
	tbl := e.Fig7a()
	last := len(tbl.Rows) - 1
	base := numericCell(t, tbl, last, 1)
	msjh := numericCell(t, tbl, last, 2)
	if msjh > base*1.2 {
		t.Errorf("fig7a: msJh (%g ms) slower than baseline (%g ms) at max K", msjh, base)
	}
}

// TestFig8Shape: the grids must beat the spatial baseline at the largest K.
func TestFig8Shape(t *testing.T) {
	e := env(t)
	tbl := e.Fig8a()
	last := len(tbl.Rows) - 1
	base := numericCell(t, tbl, last, 1)
	sq := numericCell(t, tbl, last, 2)
	if sq > base {
		t.Errorf("fig8a: squared grid (%g ms) not faster than baseline (%g ms)", sq, base)
	}
}

// TestFig9Shape: the squared grid error at |G| ≈ K must be small.
func TestFig9Shape(t *testing.T) {
	e := env(t)
	tbl := e.Fig9b()
	for i := range tbl.Rows {
		if err := numericCell(t, tbl, i, 1); err > 0.25 {
			t.Errorf("fig9b row %d: squared error %g implausibly large", i, err)
		}
	}
}

// TestFig11Shape: every method's HPF must be positive and grid variants
// must stay close to exact ones.
func TestFig11Shape(t *testing.T) {
	e := env(t)
	tbl := e.Fig11()
	byKey := map[string]float64{}
	for i, r := range tbl.Rows {
		hpf := numericCell(t, tbl, i, 6)
		if hpf <= 0 {
			t.Errorf("fig11: %v has non-positive HPF", r)
		}
		byKey[r[0]+"/"+r[1]+"/"+r[2]] = hpf
	}
	for key, exact := range byKey {
		if strings.HasSuffix(key, "-exact") {
			gridKey := strings.Replace(key, "-exact", "-grid", 1)
			if g, ok := byKey[gridKey]; ok && g < 0.7*exact {
				t.Errorf("fig11: %s (%g) far below %s (%g)", gridKey, g, key, exact)
			}
		}
	}
}

// TestFig12aShape reproduces the user-study ordering on the mean column:
// proportional (ABP) > diversified (ABP_D) > top-k (S_k).
func TestFig12aShape(t *testing.T) {
	e := env(t)
	tbl := e.Fig12a()
	if len(tbl.Rows) != 3 {
		t.Fatalf("fig12a rows = %d", len(tbl.Rows))
	}
	meanCol := len(tbl.Header) - 1
	sk := numericCell(t, tbl, 0, meanCol)
	div := numericCell(t, tbl, 1, meanCol)
	abp := numericCell(t, tbl, 2, meanCol)
	if !(abp > div && div > sk) {
		t.Errorf("fig12a ordering: ABP %g, ABP_D %g, S_k %g", abp, div, sk)
	}
}

func TestAblationsShape(t *testing.T) {
	e := env(t)
	tbl := e.Ablations()
	var kinds []string
	for _, r := range tbl.Rows {
		kinds = append(kinds, r[0])
	}
	joined := strings.Join(kinds, ",")
	for _, want := range []string{"ctx-engine", "squared-pss", "grid-sizing"} {
		if !strings.Contains(joined, want) {
			t.Errorf("ablations missing %q section", want)
		}
	}
}

func TestCSVRendering(t *testing.T) {
	tbl := &Table{Name: "x", Title: "demo", Header: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	var buf strings.Builder
	if err := tbl.FprintCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# x: demo", "a,b", "1,2"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestChartRendering(t *testing.T) {
	tbl := &Table{Name: "x", Title: "demo", Header: []string{"K", "ms", "who"}}
	tbl.AddRow("10", "1.5", "a")
	tbl.AddRow("20", "3.0", "b")
	var buf strings.Builder
	tbl.FprintChart(&buf, 10)
	out := buf.String()
	for _, want := range []string{"[ms]", "K=10", "K=20", "█"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The larger value gets the longer bar.
	if strings.Index(out, "██████████ 3.0") < 0 {
		t.Errorf("max bar not full width:\n%s", out)
	}
	// No numeric columns → graceful message.
	empty := &Table{Name: "y", Header: []string{"a"}, Rows: [][]string{{"q"}}}
	buf.Reset()
	empty.FprintChart(&buf, 10)
	if !strings.Contains(buf.String(), "no numeric columns") {
		t.Error("empty chart message missing")
	}
}
