package dataset

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/textctx"
)

func applyTestData(t *testing.T) *Dataset {
	t.Helper()
	cfg := DBpediaLike(3)
	cfg.Places = 200
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestApplyIsCopyOnWrite(t *testing.T) {
	d := applyTestData(t)
	beforePlaces := len(d.Places)
	beforeVocab := d.Dict.Len()
	victim := d.Places[0].Label

	next, st, err := d.Apply(Batch{
		Upserts: []Upsert{{ID: "poi:new", X: 12, Y: 34, Context: []string{"brand-new-word", "another-new-word"}}},
		Deletes: []string{victim, "no-such-place"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Upserted != 1 || st.Deleted != 1 {
		t.Errorf("stats = %+v, want 1 upserted, 1 deleted", st)
	}
	if len(st.Missing) != 1 || st.Missing[0] != "no-such-place" {
		t.Errorf("missing = %v", st.Missing)
	}
	if st.NewWords != 2 {
		t.Errorf("new words = %d, want 2", st.NewWords)
	}

	// The original dataset is untouched: same places, same vocabulary,
	// the victim still retrievable through the old index.
	if len(d.Places) != beforePlaces {
		t.Errorf("original places mutated: %d -> %d", beforePlaces, len(d.Places))
	}
	if d.Dict.Len() != beforeVocab {
		t.Errorf("original dictionary grew: %d -> %d", beforeVocab, d.Dict.Len())
	}
	if _, ok := d.Dict.Lookup("brand-new-word"); ok {
		t.Error("new word leaked into the original dictionary")
	}
	if d.Places[0].Label != victim {
		t.Error("original place slice mutated")
	}

	// The new dataset reflects the batch.
	if len(next.Places) != beforePlaces { // -1 victim +1 new
		t.Errorf("next places = %d, want %d", len(next.Places), beforePlaces)
	}
	if next.Index.Len() != len(next.Places) {
		t.Errorf("index size %d != places %d", next.Index.Len(), len(next.Places))
	}
	id, ok := next.Dict.Lookup("brand-new-word")
	if !ok {
		t.Fatal("new word not interned in the next dictionary")
	}
	var found *PlaceRecord
	for i := range next.Places {
		if next.Places[i].Label == victim {
			t.Errorf("deleted place %q survived", victim)
		}
		if next.Places[i].Label == "poi:new" {
			found = &next.Places[i]
		}
	}
	if found == nil {
		t.Fatal("upserted place missing")
	}
	if found.Loc != geo.Pt(12, 34) || !found.Context.Contains(id) {
		t.Errorf("upserted place = %+v", found)
	}

	// Identifiers the original assigned keep their meaning in the clone.
	w := d.Places[1].Context.Words(d.Dict)[0]
	oldID, _ := d.Dict.Lookup(w)
	newID, ok := next.Dict.Lookup(w)
	if !ok || newID != oldID {
		t.Errorf("word %q: id %d in original, %d (%v) in clone", w, oldID, newID, ok)
	}
}

func TestApplySharesDictWhenNoNewWords(t *testing.T) {
	d := applyTestData(t)
	w := d.Places[0].Context.Words(d.Dict)[0]
	next, _, err := d.Apply(Batch{
		Upserts: []Upsert{{ID: "poi:known", X: 1, Y: 2, Context: []string{w}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if next.Dict != d.Dict {
		t.Error("dictionary copied although the batch introduced no new words")
	}
}

func TestApplyUpsertReplacesAndLastWins(t *testing.T) {
	d := applyTestData(t)
	target := d.Places[5].Label
	next, st, err := d.Apply(Batch{
		Upserts: []Upsert{
			{ID: target, X: 1, Y: 1, Context: []string{"first"}},
			{ID: target, X: 9, Y: 9, Context: []string{"second"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Upserted != 2 {
		t.Errorf("upserted = %d, want 2 (both applied, in order)", st.Upserted)
	}
	if len(next.Places) != len(d.Places) {
		t.Errorf("places = %d, want unchanged %d", len(next.Places), len(d.Places))
	}
	id, _ := next.Dict.Lookup("second")
	for i := range next.Places {
		if next.Places[i].Label == target {
			if next.Places[i].Loc != geo.Pt(9, 9) || !next.Places[i].Context.Contains(id) {
				t.Errorf("last upsert did not win: %+v", next.Places[i])
			}
		}
	}
}

func TestApplyValidation(t *testing.T) {
	d := applyTestData(t)
	cases := []Batch{
		{}, // empty
		{Upserts: []Upsert{{ID: "", X: 1, Y: 1}}},
		{Upserts: []Upsert{{ID: "p", X: math.NaN(), Y: 1}}},
		{Upserts: []Upsert{{ID: "p", X: math.Inf(1), Y: 1}}},
	}
	for i, b := range cases {
		if _, _, err := d.Apply(b); err == nil {
			t.Errorf("case %d: Apply accepted invalid batch %+v", i, b)
		}
	}

	// Deleting (almost) everything must fail rather than publish a
	// degenerate corpus.
	var del []string
	for _, p := range d.Places {
		del = append(del, p.Label)
	}
	if _, _, err := d.Apply(Batch{Deletes: del}); err == nil {
		t.Error("Apply emptied the corpus without complaint")
	}
}

func TestApplyRetrieveSeesMutation(t *testing.T) {
	d := applyTestData(t)
	next, _, err := d.Apply(Batch{
		Upserts: []Upsert{{ID: "poi:beacon", X: 50, Y: 50, Context: []string{"beacon-word"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	kw, _ := next.Dict.Lookup("beacon-word")
	res, err := next.Retrieve(Query{Loc: geo.Pt(50, 50), Keywords: textctx.NewSet(kw)}, 10)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range res {
		if p.ID == "poi:beacon" {
			found = true
		}
	}
	if !found {
		t.Error("upserted place not retrievable from the new dataset")
	}
}
