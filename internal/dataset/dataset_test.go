package dataset

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

// smallConfig keeps generation fast in tests.
func smallConfig(seed int64) Config {
	c := DBpediaLike(seed)
	c.Places = 400
	c.AttrEntities = 300
	return c
}

func mustGenerate(t testing.TB, cfg Config) *Dataset {
	t.Helper()
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Places: 10},
		{Places: 10, AttrEntities: 5},
		{Places: 10, AttrEntities: 5, TriplesPerPlace: 3, ZipfS: 0.5, Clusters: 2, Extent: 10},
		{Places: 10, AttrEntities: 5, TriplesPerPlace: 3, ZipfS: 1.2, Clusters: 0, Extent: 10},
		{Places: 10, AttrEntities: 5, TriplesPerPlace: 3, ZipfS: 1.2, Clusters: 2, Extent: -1},
		{Places: 10, AttrEntities: 5, TriplesPerPlace: 3, ZipfS: 1.2, Clusters: 2, Extent: 10, ClusterAffinity: 2},
	}
	for i, c := range bad {
		if _, err := Generate(c); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := smallConfig(1)
	d := mustGenerate(t, cfg)
	if len(d.Places) != cfg.Places {
		t.Fatalf("places = %d, want %d", len(d.Places), cfg.Places)
	}
	if d.Index.Len() != cfg.Places {
		t.Fatalf("index size = %d", d.Index.Len())
	}
	st := d.Graph.Stats()
	if st.SpatialEntities != cfg.Places {
		t.Errorf("spatial entities = %d", st.SpatialEntities)
	}
	if st.Triples != cfg.Places*cfg.TriplesPerPlace {
		t.Errorf("triples = %d, want %d", st.Triples, cfg.Places*cfg.TriplesPerPlace)
	}
	// Contexts are non-empty and bounded by TriplesPerPlace distinct items.
	for i, p := range d.Places {
		if p.Context.Len() == 0 {
			t.Fatalf("place %d has empty context", i)
		}
		if p.Context.Len() > cfg.TriplesPerPlace {
			t.Fatalf("place %d context size %d > %d", i, p.Context.Len(), cfg.TriplesPerPlace)
		}
		if p.Loc.X < 0 || p.Loc.X > cfg.Extent || p.Loc.Y < 0 || p.Loc.Y > cfg.Extent {
			t.Fatalf("place %d outside the world: %v", i, p.Loc)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, smallConfig(7))
	b := mustGenerate(t, smallConfig(7))
	for i := range a.Places {
		if a.Places[i].Loc != b.Places[i].Loc || !a.Places[i].Context.Equal(b.Places[i].Context) {
			t.Fatalf("place %d differs across same-seed generations", i)
		}
	}
	c := mustGenerate(t, smallConfig(8))
	same := true
	for i := range a.Places {
		if a.Places[i].Loc != c.Places[i].Loc {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical locations")
	}
}

// TestContextsOverlapWithinClusters checks the generator produces the
// spatial-contextual correlation the proportionality problem needs:
// places near each other share more context than distant ones.
func TestContextsOverlapWithinClusters(t *testing.T) {
	d := mustGenerate(t, smallConfig(3))
	rng := rand.New(rand.NewSource(4))
	var nearSum, farSum float64
	const trials = 300
	for i := 0; i < trials; i++ {
		p := d.Places[rng.Intn(len(d.Places))]
		nbrs := d.Index.NearestK(p.Loc, 4)
		near := d.Places[nbrs[len(nbrs)-1].Obj.ID]
		far := d.Places[rng.Intn(len(d.Places))]
		nearSum += p.Context.Jaccard(near.Context)
		farSum += p.Context.Jaccard(far.Context)
	}
	if nearSum <= farSum {
		t.Errorf("no spatial-contextual correlation: near %g vs far %g",
			nearSum/trials, farSum/trials)
	}
}

func TestGenQueries(t *testing.T) {
	d := mustGenerate(t, smallConfig(5))
	qs, err := d.GenQueries(10, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 10 {
		t.Fatalf("got %d queries", len(qs))
	}
	for i, q := range qs {
		if !q.Loc.Valid() {
			t.Errorf("query %d invalid location", i)
		}
		if q.Keywords.Len() == 0 {
			t.Errorf("query %d has no keywords", i)
		}
	}
	if _, err := d.GenQueries(5, 10_000, 1); err == nil {
		t.Error("impossible minResults accepted")
	}
}

func TestRetrieve(t *testing.T) {
	d := mustGenerate(t, smallConfig(9))
	qs, err := d.GenQueries(5, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		places, err := d.Retrieve(q, 100)
		if err != nil {
			t.Fatal(err)
		}
		if len(places) != 100 {
			t.Fatalf("retrieved %d places", len(places))
		}
		for i, p := range places {
			if err := p.Validate(); err != nil {
				t.Fatalf("place %d: %v", i, err)
			}
			if i > 0 && p.Rel > places[i-1].Rel+1e-12 {
				t.Fatal("results not sorted by relevance")
			}
		}
		// The most relevant place should actually match some keyword or
		// be close: rel must be clearly positive.
		if places[0].Rel <= 0.3 {
			t.Errorf("top result suspiciously irrelevant: rF = %g", places[0].Rel)
		}
	}
	if _, err := d.Retrieve(Query{Loc: geo.Pt(0, 0)}, 0); err == nil {
		t.Error("K = 0 accepted")
	}
}

func TestAdjustContextSizes(t *testing.T) {
	d := mustGenerate(t, smallConfig(11))
	qs, err := d.GenQueries(1, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	places, err := d.Retrieve(qs[0], 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{3, 12, 40, 100} {
		adj := d.AdjustContextSizes(places, size, 1)
		if len(adj) != len(places) {
			t.Fatalf("size %d: wrong length", size)
		}
		for i, p := range adj {
			if p.Context.Len() != size {
				t.Fatalf("size %d: place %d has |C| = %d", size, i, p.Context.Len())
			}
			if p.Loc != places[i].Loc || p.Rel != places[i].Rel {
				t.Fatal("AdjustContextSizes mutated location or relevance")
			}
		}
		// Originals untouched.
		for i := range places {
			if places[i].Context.Len() == size && size > 40 {
				t.Fatalf("original context %d mutated", i)
			}
		}
	}
}

// TestAdjustedContextsKeepOverlap: enrichment must preserve a realistic
// overlap structure, not produce disjoint padded sets.
func TestAdjustedContextsKeepOverlap(t *testing.T) {
	d := mustGenerate(t, smallConfig(13))
	qs, _ := d.GenQueries(1, 100, 5)
	places, _ := d.Retrieve(qs[0], 60)
	adj := d.AdjustContextSizes(places, 30, 2)
	var overlaps int
	for i := 0; i < len(adj); i++ {
		for j := i + 1; j < len(adj); j++ {
			if adj[i].Context.IntersectionSize(adj[j].Context) > 0 {
				overlaps++
			}
		}
	}
	if overlaps == 0 {
		t.Error("enriched contexts are pairwise disjoint")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := mustGenerate(t, smallConfig(17))
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Places) != len(d.Places) {
		t.Fatalf("loaded %d places, want %d", len(d2.Places), len(d.Places))
	}
	for i := range d.Places {
		if d.Places[i].Loc != d2.Places[i].Loc ||
			d.Places[i].Label != d2.Places[i].Label ||
			!d.Places[i].Context.Equal(d2.Places[i].Context) {
			t.Fatalf("place %d differs after round trip", i)
		}
	}
	// The loaded dataset must be queryable.
	qs, err := d2.GenQueries(2, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Retrieve(qs[0], 50); err != nil {
		t.Fatal(err)
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a dataset"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestUniformAndGaussianPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := geo.Pt(5, 5)
	u := UniformPoints(rng, q, 200, 3)
	if len(u) != 200 {
		t.Fatal("wrong count")
	}
	for _, p := range u {
		if p.X < 2 || p.X > 8 || p.Y < 2 || p.Y > 8 {
			t.Fatalf("uniform point %v outside radius", p)
		}
	}
	g := GaussianPoints(rng, q, 200, 0.25)
	var within float64
	for _, p := range g {
		if p.Dist(q) < 0.75 { // 3σ
			within++
		}
	}
	if within/200 < 0.9 {
		t.Errorf("only %g%% of Gaussian points within 3σ", within/2)
	}
}

func TestYago2LikePreset(t *testing.T) {
	cfg := Yago2Like(1)
	cfg.Places = 300
	cfg.AttrEntities = 300
	d := mustGenerate(t, cfg)
	if d.Config.Name != "yago2-like" {
		t.Error("wrong preset name")
	}
	if len(d.Places) != 300 {
		t.Error("wrong place count")
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := smallConfig(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRetrieveK100(b *testing.B) {
	d := mustGenerate(b, smallConfig(1))
	qs, err := d.GenQueries(1, 100, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Retrieve(qs[0], 100); err != nil {
			b.Fatal(err)
		}
	}
}
