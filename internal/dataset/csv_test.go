package dataset

import (
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/textctx"
)

const sampleCSV = `label,x,y,tags
Swedish History Museum,2.0,1.0,history;museum;viking
The Nordic Museum,2.2,0.8,history;museum;nordic
ABBA The Museum,2.4,0.6,music;museum
Nobel Museum,-1.0,-0.5,science;museum
City Park,0.0,3.0,park;garden
`

func TestLoadCSV(t *testing.T) {
	d, err := LoadCSV(strings.NewReader(sampleCSV), "stockholm")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Places) != 5 {
		t.Fatalf("places = %d", len(d.Places))
	}
	if d.Config.Name != "stockholm" {
		t.Errorf("name = %q", d.Config.Name)
	}
	if d.Index.Len() != 5 {
		t.Errorf("index size = %d", d.Index.Len())
	}
	if d.Places[0].Label != "Swedish History Museum" || d.Places[0].Loc != geo.Pt(2, 1) {
		t.Errorf("first place = %+v", d.Places[0])
	}
	if got := d.Places[0].Context.Len(); got != 3 {
		t.Errorf("first place |C| = %d", got)
	}
	// The loaded dataset must be queryable end to end.
	kw1, _ := d.Dict.Lookup("museum")
	kw2, _ := d.Dict.Lookup("history")
	places, err := d.Retrieve(Query{Loc: geo.Pt(2, 1), Keywords: textctx.NewSet(kw1, kw2)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(places) != 4 {
		t.Fatalf("retrieved %d", len(places))
	}
	if places[0].ID != "Swedish History Museum" {
		t.Errorf("top result = %q", places[0].ID)
	}
}

func TestLoadCSVColumnOrderAndExtras(t *testing.T) {
	csvData := "x,extra,tags,y,label\n1.5,ignored,a;b,2.5,P\n"
	d, err := LoadCSV(strings.NewReader(csvData), "t")
	if err != nil {
		t.Fatal(err)
	}
	if d.Places[0].Loc != geo.Pt(1.5, 2.5) || d.Places[0].Label != "P" {
		t.Errorf("place = %+v", d.Places[0])
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"missing column": "label,x,y\nA,1,2\n",
		"bad coords":     "label,x,y,tags\nA,abc,2,t\n",
		"no rows":        "label,x,y,tags\n",
		"empty":          "",
		"inf coords":     "label,x,y,tags\nA,1e999,2,t\n",
	}
	for name, data := range cases {
		if _, err := LoadCSV(strings.NewReader(data), "t"); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
