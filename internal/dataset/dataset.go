// Package dataset generates the synthetic datasets and query workloads of
// the experimental study. The paper evaluates on DBpedia and Yago2; this
// reproduction substitutes generators that match the statistical shape the
// algorithms are sensitive to — number of places, contextual-set sizes,
// Zipf-distributed shared attribute vocabulary (controlling Jaccard
// overlap and msJh inverted-list lengths), and clustered spatial
// distributions (controlling grid occupancy) — as documented in DESIGN.md.
//
// A Dataset bundles the generated RDF graph, the place records with their
// object-summary contexts, and a bulk-loaded IR-tree, and can answer
// spatial keyword queries, producing the retrieved sets S that the
// proportionality framework selects from.
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/irtree"
	"repro/internal/rdf"
	"repro/internal/textctx"
)

// Config parameterises dataset generation.
type Config struct {
	// Name labels the dataset in reports (e.g. "dbpedia-like").
	Name string
	// Places is the number of spatial entities.
	Places int
	// AttrEntities is the size of the shared attribute-entity vocabulary
	// contexts draw from.
	AttrEntities int
	// TriplesPerPlace is the number of attribute links per place (the
	// base contextual-set size).
	TriplesPerPlace int
	// ZipfS > 1 skews attribute popularity (larger = more skew).
	ZipfS float64
	// Clusters is the number of spatial clusters (city neighbourhoods).
	Clusters int
	// ClusterSigma is the Gaussian spread of places around their cluster.
	ClusterSigma float64
	// ClusterAffinity in [0, 1] is the probability that a place draws an
	// attribute from its cluster's preferred sub-vocabulary, producing
	// the spatial-contextual correlation real POI data exhibits.
	ClusterAffinity float64
	// Extent is the side length of the square world.
	Extent float64
	// Seed makes generation reproducible.
	Seed int64
}

// DBpediaLike returns a scaled-down configuration shaped like the paper's
// DBpedia workload (clustered places, moderately skewed vocabulary).
func DBpediaLike(seed int64) Config {
	return Config{
		Name: "dbpedia-like", Places: 4000, AttrEntities: 2500,
		TriplesPerPlace: 12, ZipfS: 1.3, Clusters: 25, ClusterSigma: 2.5,
		ClusterAffinity: 0.7, Extent: 100, Seed: seed,
	}
}

// Yago2Like returns a configuration shaped like Yago2: a higher fraction
// of spatial entities, flatter vocabulary, wider spread.
func Yago2Like(seed int64) Config {
	return Config{
		Name: "yago2-like", Places: 4000, AttrEntities: 4000,
		TriplesPerPlace: 10, ZipfS: 1.15, Clusters: 40, ClusterSigma: 4,
		ClusterAffinity: 0.55, Extent: 100, Seed: seed,
	}
}

func (c Config) validate() error {
	switch {
	case c.Places <= 0:
		return fmt.Errorf("dataset: Places = %d must be positive", c.Places)
	case c.AttrEntities <= 0:
		return fmt.Errorf("dataset: AttrEntities = %d must be positive", c.AttrEntities)
	case c.TriplesPerPlace <= 0:
		return fmt.Errorf("dataset: TriplesPerPlace = %d must be positive", c.TriplesPerPlace)
	case c.ZipfS <= 1:
		return fmt.Errorf("dataset: ZipfS = %g must be > 1", c.ZipfS)
	case c.Clusters <= 0:
		return fmt.Errorf("dataset: Clusters = %d must be positive", c.Clusters)
	case c.Extent <= 0:
		return fmt.Errorf("dataset: Extent = %g must be positive", c.Extent)
	case c.ClusterAffinity < 0 || c.ClusterAffinity > 1:
		return fmt.Errorf("dataset: ClusterAffinity = %g outside [0, 1]", c.ClusterAffinity)
	}
	return nil
}

// PlaceRecord is one generated place with its object-summary context.
type PlaceRecord struct {
	Entity  rdf.EntityID
	Label   string
	Loc     geo.Point
	Context textctx.Set
}

// Dataset is a generated corpus ready for querying.
type Dataset struct {
	Config Config
	Graph  *rdf.Graph
	Dict   *textctx.Dict
	Places []PlaceRecord
	Index  *irtree.Tree
}

// Generate builds a dataset from cfg: the RDF graph of places and
// attribute entities, the object-summary context of every place, and a
// bulk-loaded IR-tree over the place contexts.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := rdf.NewGraph()
	dict := textctx.NewDict()

	// Attribute entities with class labels cycling through OS-style
	// attribute kinds (cf. Figure 1: Type, Collection, Director, ...).
	classes := []string{"Type", "Collection", "Director", "Opening", "Architecture", "Era"}
	attrs := make([]rdf.EntityID, cfg.AttrEntities)
	for i := range attrs {
		class := classes[i%len(classes)]
		attrs[i] = g.AddEntity(fmt.Sprintf("%s:%d", class, i), class)
	}

	// Cluster centres and their preferred sub-vocabulary offsets.
	centers := make([]geo.Point, cfg.Clusters)
	offsets := make([]int, cfg.Clusters)
	for i := range centers {
		centers[i] = geo.Pt(rng.Float64()*cfg.Extent, rng.Float64()*cfg.Extent)
		offsets[i] = rng.Intn(cfg.AttrEntities)
	}

	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.AttrEntities-1))
	clusterSpan := cfg.AttrEntities / cfg.Clusters
	if clusterSpan < cfg.TriplesPerPlace*2 {
		clusterSpan = cfg.TriplesPerPlace * 2
	}

	places := make([]PlaceRecord, 0, cfg.Places)
	for i := 0; i < cfg.Places; i++ {
		c := rng.Intn(cfg.Clusters)
		loc := geo.Pt(
			clamp(centers[c].X+rng.NormFloat64()*cfg.ClusterSigma, 0, cfg.Extent),
			clamp(centers[c].Y+rng.NormFloat64()*cfg.ClusterSigma, 0, cfg.Extent),
		)
		label := fmt.Sprintf("place:%d", i)
		id, err := g.AddSpatialEntity(label, "Place", loc)
		if err != nil {
			return nil, err
		}
		for t := 0; t < cfg.TriplesPerPlace; t++ {
			var a int
			if rng.Float64() < cfg.ClusterAffinity {
				// Cluster-local attribute: Zipf within the cluster's span.
				a = (offsets[c] + int(zipf.Uint64())%clusterSpan) % cfg.AttrEntities
			} else {
				a = int(zipf.Uint64())
			}
			if err := g.AddTriple(id, "attribute", attrs[a]); err != nil {
				return nil, err
			}
		}
		places = append(places, PlaceRecord{Entity: id, Label: label, Loc: loc})
	}

	// Derive every place's context from its spatial object summary.
	objs := make([]irtree.Object, len(places))
	for i := range places {
		os, err := g.SpatialOS(places[i].Entity, dict, rdf.OSOptions{MaxDepth: 1})
		if err != nil {
			return nil, err
		}
		places[i].Context = os.Context
		objs[i] = irtree.Object{ID: int32(i), Loc: places[i].Loc, Terms: os.Context}
	}
	idx, err := irtree.BulkLoad(objs)
	if err != nil {
		return nil, err
	}
	return &Dataset{Config: cfg, Graph: g, Dict: dict, Places: places, Index: idx}, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Query is one spatial keyword query.
type Query struct {
	// Loc is the query location q.
	Loc geo.Point
	// Keywords is the interned query keyword set.
	Keywords textctx.Set
}

// GenQueries builds n queries in the style of Section 9.1: each query
// location is placed near a populated cluster (a random place), and its
// keywords are drawn from the contexts of nearby places, so that at least
// minResults places score non-trivially. It returns an error when the
// dataset has fewer than minResults places.
func (d *Dataset) GenQueries(n, minResults int, seed int64) ([]Query, error) {
	if len(d.Places) < minResults {
		return nil, fmt.Errorf("dataset: %d places cannot satisfy %d results per query",
			len(d.Places), minResults)
	}
	rng := rand.New(rand.NewSource(seed))
	queries := make([]Query, n)
	for i := range queries {
		anchor := d.Places[rng.Intn(len(d.Places))]
		loc := geo.Pt(anchor.Loc.X+rng.NormFloat64(), anchor.Loc.Y+rng.NormFloat64())
		// Keywords: a few items from the anchor's context plus one from a
		// random neighbour, mimicking a user describing the area.
		var kw []textctx.ItemID
		items := anchor.Context.Items()
		for len(kw) < 3 && len(items) > 0 {
			kw = append(kw, items[rng.Intn(len(items))])
		}
		nbr := d.Index.NearestK(loc, 5)
		if len(nbr) > 0 {
			nitems := nbr[len(nbr)-1].Obj.Terms.Items()
			if len(nitems) > 0 {
				kw = append(kw, nitems[rng.Intn(len(nitems))])
			}
		}
		queries[i] = Query{Loc: loc, Keywords: textctx.NewSet(kw...)}
	}
	return queries, nil
}

// Retrieve answers q with the K most relevant places (the paper's S): the
// IR-tree ranks by rF = ½·Jaccard(keywords, context) + ½·(1 − dist/maxDist),
// with distances normalised by the dataset extent diagonal (the "largest
// distance of the city").
func (d *Dataset) Retrieve(q Query, K int) ([]core.Place, error) {
	if K <= 0 {
		return nil, fmt.Errorf("dataset: K = %d must be positive", K)
	}
	maxDist := d.Config.Extent * 1.4142135623730951
	res := d.Index.TopK(q.Loc, q.Keywords, irtree.QueryOptions{K: K, Beta: 0.5, MaxDist: maxDist})
	out := make([]core.Place, len(res))
	for i, r := range res {
		rec := d.Places[r.Obj.ID]
		out[i] = core.Place{
			ID:      rec.Label,
			Loc:     rec.Loc,
			Rel:     r.Score,
			Context: rec.Context,
		}
	}
	return out, nil
}

// AdjustContextSizes returns a copy of places whose contextual sets are
// enriched or constrained to exactly size items, reproducing the paper's
// |p_i| experimental knob ("we enriched (or constrained) the contextual
// sets of the places on demand"). Enrichment borrows items from the
// contexts of spatially nearest places first — keeping the overlap
// structure realistic — and falls back to fresh synthetic items.
func (d *Dataset) AdjustContextSizes(places []core.Place, size int, seed int64) []core.Place {
	rng := rand.New(rand.NewSource(seed))
	out := make([]core.Place, len(places))
	for i, p := range places {
		items := append([]textctx.ItemID(nil), p.Context.Items()...)
		if len(items) > size {
			// Constrain: keep a random subset for unbiased truncation.
			rng.Shuffle(len(items), func(a, b int) { items[a], items[b] = items[b], items[a] })
			items = items[:size]
		} else if len(items) < size {
			have := make(map[textctx.ItemID]bool, size)
			for _, it := range items {
				have[it] = true
			}
			// Borrow from nearest neighbours' contexts.
			for _, nb := range d.Index.NearestK(p.Loc, 8) {
				for _, it := range nb.Obj.Terms.Items() {
					if len(items) >= size {
						break
					}
					if !have[it] {
						have[it] = true
						items = append(items, it)
					}
				}
			}
			// Fall back to fresh items unique to this place.
			for len(items) < size {
				it := d.Dict.Intern(fmt.Sprintf("pad:%d:%d", i, len(items)))
				if !have[it] {
					have[it] = true
					items = append(items, it)
				}
			}
		}
		q := p
		q.Context = textctx.NewSet(items...)
		out[i] = q
	}
	return out
}

// UniformPoints returns n points uniform in the square of the given
// radius around q — the synthetic spatial workload of Figure 8(d)/9(d).
func UniformPoints(rng *rand.Rand, q geo.Point, n int, radius float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(q.X+(rng.Float64()*2-1)*radius, q.Y+(rng.Float64()*2-1)*radius)
	}
	return pts
}

// GaussianPoints returns n points normally distributed around q with the
// given standard deviation per coordinate (the paper's Gaussian workloads
// with σ = 0.25 and 0.5).
func GaussianPoints(rng *rand.Rand, q geo.Point, n int, sigma float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(q.X+rng.NormFloat64()*sigma, q.Y+rng.NormFloat64()*sigma)
	}
	return pts
}
