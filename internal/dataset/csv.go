package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geo"
	"repro/internal/irtree"
	"repro/internal/textctx"
)

// LoadCSV builds a queryable Dataset from user-supplied CSV place data,
// so the framework can run on real POI exports. Expected header:
//
//	label,x,y,tags
//
// where tags is a ;-separated list of contextual items. Extra columns are
// ignored; column order is taken from the header. The returned dataset
// has no RDF graph (contexts come directly from the tags).
func LoadCSV(r io.Reader, name string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: csv header: %w", err)
	}
	col := map[string]int{}
	for i, h := range header {
		col[strings.TrimSpace(strings.ToLower(h))] = i
	}
	for _, need := range []string{"label", "x", "y", "tags"} {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("dataset: csv missing column %q (header %v)", need, header)
		}
	}

	dict := textctx.NewDict()
	var places []PlaceRecord
	var minX, minY, maxX, maxY float64
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv line %d: %w", line+1, err)
		}
		line++
		get := func(name string) string {
			i := col[name]
			if i >= len(rec) {
				return ""
			}
			return strings.TrimSpace(rec[i])
		}
		x, errX := strconv.ParseFloat(get("x"), 64)
		y, errY := strconv.ParseFloat(get("y"), 64)
		if errX != nil || errY != nil {
			return nil, fmt.Errorf("dataset: csv line %d: bad coordinates %q, %q", line, get("x"), get("y"))
		}
		loc := geo.Pt(x, y)
		if !loc.Valid() {
			return nil, fmt.Errorf("dataset: csv line %d: non-finite coordinates", line)
		}
		var tags []string
		for _, t := range strings.Split(get("tags"), ";") {
			if t = strings.TrimSpace(t); t != "" {
				tags = append(tags, t)
			}
		}
		if len(places) == 0 {
			minX, maxX, minY, maxY = x, x, y, y
		} else {
			minX, maxX = minf(minX, x), maxf(maxX, x)
			minY, maxY = minf(minY, y), maxf(maxY, y)
		}
		places = append(places, PlaceRecord{
			Label:   get("label"),
			Loc:     loc,
			Context: textctx.NewSetFromStrings(dict, tags),
		})
	}
	if len(places) == 0 {
		return nil, fmt.Errorf("dataset: csv has no data rows")
	}

	extent := maxf(maxX-minX, maxY-minY)
	if extent == 0 {
		extent = 1
	}
	objs := make([]irtree.Object, len(places))
	for i, p := range places {
		objs[i] = irtree.Object{ID: int32(i), Loc: p.Loc, Terms: p.Context}
	}
	idx, err := irtree.BulkLoad(objs)
	if err != nil {
		return nil, err
	}
	return &Dataset{
		Config: Config{Name: name, Places: len(places), Extent: extent,
			AttrEntities: dict.Len(), TriplesPerPlace: 1, ZipfS: 1.1,
			Clusters: 1, ClusterAffinity: 0},
		Dict:   dict,
		Places: places,
		Index:  idx,
	}, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
