package dataset

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/irtree"
	"repro/internal/textctx"
)

// Upsert inserts or replaces one place, keyed by its label. Context words
// are interned on apply; unknown words grow the (copied) dictionary.
type Upsert struct {
	ID      string   `json:"id"`
	X       float64  `json:"x"`
	Y       float64  `json:"y"`
	Context []string `json:"context,omitempty"`
}

// Batch is one corpus mutation: deletes are applied first, then upserts in
// order (so a delete+upsert of the same ID replaces the place, and the
// last of two upserts of the same ID wins).
type Batch struct {
	Upserts []Upsert
	Deletes []string
}

// Size returns the number of individual operations in the batch.
func (b Batch) Size() int { return len(b.Upserts) + len(b.Deletes) }

// ApplyStats summarises what one Apply call changed.
type ApplyStats struct {
	// Upserted and Deleted count the operations that took effect.
	Upserted, Deleted int
	// Missing lists delete IDs that named no live place (not an error:
	// deletes are idempotent).
	Missing []string
	// NewWords counts dictionary entries the batch introduced.
	NewWords int
}

// Apply returns a new Dataset with b applied, leaving d untouched: the
// place slice is copied, the IR-tree is rebuilt over the surviving places,
// and the dictionary is shared with d unless the batch introduces unknown
// words, in which case a clone is grown instead (interning is append-only,
// so every identifier d assigned keeps its meaning in the clone). The
// returned dataset therefore never shares mutable state with d, which is
// what lets an engine publish it as the next immutable corpus epoch while
// queries keep reading d.
//
// Like Load, the returned dataset carries no RDF graph: mutated places
// have no generated entity behind them.
//
// Validation failures (empty IDs, non-finite coordinates, a batch that
// would leave fewer than two places) return an error and no dataset.
func (d *Dataset) Apply(b Batch) (*Dataset, ApplyStats, error) {
	return d.ApplyCtx(context.Background(), b)
}

// ApplyCtx is Apply with cooperative cancellation: ctx is checked before
// the O(n) place copy, periodically inside it, and before the index
// rebuild, so a cancelled mutation request stops paying for the copy
// instead of completing it. Termination surfaces as core.ErrCancelled /
// core.ErrDeadline (wrapping the context error), mirroring the scoring
// and selection loops.
func (d *Dataset) ApplyCtx(ctx context.Context, b Batch) (*Dataset, ApplyStats, error) {
	var st ApplyStats
	if b.Size() == 0 {
		return nil, st, fmt.Errorf("dataset: empty mutation batch")
	}
	for _, u := range b.Upserts {
		if u.ID == "" {
			return nil, st, fmt.Errorf("dataset: upsert with empty id")
		}
		if !geo.Pt(u.X, u.Y).Valid() {
			return nil, st, fmt.Errorf("dataset: upsert %q at non-finite location (%v, %v)", u.ID, u.X, u.Y)
		}
	}

	// Copy the dictionary only when the batch actually introduces unknown
	// words; otherwise the epochs share it (reads of an unmutated Dict are
	// safe from any number of goroutines).
	dict := d.Dict
	needClone := false
scan:
	for _, u := range b.Upserts {
		for _, w := range u.Context {
			if _, ok := dict.Lookup(w); !ok {
				needClone = true
				break scan
			}
		}
	}
	if needClone {
		dict = d.Dict.Clone()
	}

	// The copy below is the O(n) cost of snapshot isolation; check the
	// context before starting and every checkpointStride places during
	// it, so an abandoned request does not finish the copy it no longer
	// wants.
	const checkpointStride = 4096
	if err := core.CtxErr(ctx); err != nil {
		return nil, st, err
	}

	byID := make(map[string]int, len(d.Places))
	for i, p := range d.Places {
		byID[p.Label] = i
	}

	drop := make(map[int]bool, len(b.Deletes))
	for _, id := range b.Deletes {
		if i, ok := byID[id]; ok && !drop[i] {
			drop[i] = true
			st.Deleted++
		} else {
			st.Missing = append(st.Missing, id)
		}
	}

	places := make([]PlaceRecord, 0, len(d.Places)+len(b.Upserts))
	for i, p := range d.Places {
		if i%checkpointStride == 0 && i > 0 {
			if err := core.CtxErr(ctx); err != nil {
				return nil, st, err
			}
		}
		if !drop[i] {
			places = append(places, p)
		}
	}
	// The compaction above shifted indices; rebuild the ID map over it.
	byID = make(map[string]int, len(places))
	for i, p := range places {
		byID[p.Label] = i
	}

	for _, u := range b.Upserts {
		before := dict.Len()
		rec := PlaceRecord{
			Label:   u.ID,
			Loc:     geo.Pt(u.X, u.Y),
			Context: textctx.NewSetFromStrings(dict, u.Context),
		}
		st.NewWords += dict.Len() - before
		if i, ok := byID[u.ID]; ok {
			places[i] = rec
		} else {
			byID[u.ID] = len(places)
			places = append(places, rec)
		}
		st.Upserted++
	}

	if len(places) < 2 {
		return nil, ApplyStats{}, fmt.Errorf("dataset: mutation would leave %d places; need at least 2", len(places))
	}

	// Last exit before the index rebuild, the other O(n log n) chunk of
	// the batch cost.
	if err := core.CtxErr(ctx); err != nil {
		return nil, st, err
	}

	objs := make([]irtree.Object, len(places))
	for i, p := range places {
		objs[i] = irtree.Object{ID: int32(i), Loc: p.Loc, Terms: p.Context}
	}
	idx, err := irtree.BulkLoad(objs)
	if err != nil {
		return nil, ApplyStats{}, fmt.Errorf("dataset: rebuild index: %w", err)
	}
	return &Dataset{Config: d.Config, Dict: dict, Places: places, Index: idx}, st, nil
}
