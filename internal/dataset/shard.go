package dataset

// Spatial sharding of a corpus for parallel Step-1 fan-out.
//
// A ShardView partitions the place set by grid cell into n shards, each
// with its own IR-tree (and therefore its own inverted index). Retrieve
// fans the top-K query out across the shards in parallel and lazily
// merges the per-shard canonical result streams back into the exact
// sequence the unsharded tree would emit. Exactness rests on two facts:
//
//  1. An object's score β·Jaccard + (1−β)·proximity depends only on the
//     object, the query and the explicit Beta/MaxDist — never on which
//     tree holds it — so per-shard scores are bitwise identical to the
//     unsharded ones.
//  2. irtree's frontier ordering is deterministic (score descending,
//     ties by ascending object ID), so each tree emits its objects in a
//     canonical order. Restricting a corpus to a shard can only improve
//     an object's rank, so every member of the global top-K is inside
//     its shard's top-K. The union of per-shard top-K lists therefore
//     contains the global top-K; sorting the union by (score desc,
//     global index asc) and truncating at K reproduces the unsharded
//     sequence exactly.
//
// Shards keep their members in global order via Global (local object ID
// → global place index), which keeps the per-shard tie-break consistent
// with the global one. Apply rebuilds only the shards a mutation batch
// touches; untouched shards keep their tree and epoch and only have
// their Global lists renumbered, which is how per-shard epochs compose
// into the corpus epoch: a shard's epoch is the corpus epoch of the
// last mutation that touched it.

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/irtree"
	"repro/internal/telemetry"
)

// Shard is one spatial partition: a subset of the corpus places in
// global order with its own IR-tree.
type Shard struct {
	// Places holds the shard's subset of the corpus, in global order.
	Places []PlaceRecord
	// Global maps a local object ID (index into Places, and the IDs the
	// shard's tree ranks by) to the place's global corpus index. It is
	// strictly increasing, so local-ID order agrees with global order.
	Global []int32
	// Index is the shard's IR-tree over local object IDs.
	Index *irtree.Tree
	// Epoch is the corpus epoch of the last mutation that rebuilt this
	// shard (its creation epoch if none has).
	Epoch uint64
}

// ShardInfo is one shard's footprint for stats/diagnostics.
type ShardInfo struct {
	Places int    `json:"places"`
	Epoch  uint64 `json:"epoch"`
}

// ShardView partitions a Dataset into n spatial shards over a g×g grid
// of its extent, with cells assigned round-robin to shards. The view is
// immutable: Apply returns a successor view sharing unrebuilt shards.
type ShardView struct {
	base         *Dataset
	n, g         int
	cellW, cellH float64
	Shards       []*Shard
}

// NewShardView partitions d into n shards, each built at epoch. n must
// be at least 2 (a single shard is just the unsharded dataset).
func NewShardView(d *Dataset, n int, epoch uint64) (*ShardView, error) {
	if n < 2 {
		n = 2
	}
	sv := &ShardView{base: d, n: n}
	sv.initGrid()
	assign := sv.assignAll(d.Places)
	for sid := 0; sid < n; sid++ {
		sh, err := buildShard(d.Places, assign, sid, epoch)
		if err != nil {
			return nil, err
		}
		sv.Shards = append(sv.Shards, sh)
	}
	return sv, nil
}

// initGrid sizes the cell grid: g = ceil(sqrt(n)) gives at least one
// cell per shard; round-robin assignment keeps shard populations close
// even when the place distribution is skewed across cells.
func (sv *ShardView) initGrid() {
	g := 1
	for g*g < sv.n {
		g++
	}
	sv.g = g
	extent := sv.base.Config.Extent
	if extent <= 0 {
		extent = 1
	}
	sv.cellW, sv.cellH = extent/float64(g), extent/float64(g)
}

// shardOf maps a location to its shard. Coordinates outside the extent
// clamp into the edge cells — upserts only require finite coordinates.
func (sv *ShardView) shardOf(loc geo.Point) int {
	cx := int(loc.X / sv.cellW)
	cy := int(loc.Y / sv.cellH)
	if cx < 0 {
		cx = 0
	} else if cx >= sv.g {
		cx = sv.g - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= sv.g {
		cy = sv.g - 1
	}
	return (cy*sv.g + cx) % sv.n
}

// assignAll computes every place's shard.
func (sv *ShardView) assignAll(places []PlaceRecord) []int {
	assign := make([]int, len(places))
	for i := range places {
		assign[i] = sv.shardOf(places[i].Loc)
	}
	return assign
}

// buildShard collects shard sid's places (in global order) and bulk-loads
// its tree. The error is unreachable for places that already passed the
// base index's location validation.
func buildShard(places []PlaceRecord, assign []int, sid int, epoch uint64) (*Shard, error) {
	sh := &Shard{Epoch: epoch}
	for i, a := range assign {
		if a != sid {
			continue
		}
		sh.Places = append(sh.Places, places[i])
		sh.Global = append(sh.Global, int32(i))
	}
	objs := make([]irtree.Object, len(sh.Places))
	for i, p := range sh.Places {
		objs[i] = irtree.Object{ID: int32(i), Loc: p.Loc, Terms: p.Context}
	}
	idx, err := irtree.BulkLoad(objs)
	if err != nil {
		return nil, err
	}
	sh.Index = idx
	return sh, nil
}

// Base returns the unpartitioned dataset behind the view.
func (sv *ShardView) Base() *Dataset { return sv.base }

// NumShards returns the shard count.
func (sv *ShardView) NumShards() int { return sv.n }

// Info returns per-shard footprints, in shard order.
func (sv *ShardView) Info() []ShardInfo {
	out := make([]ShardInfo, len(sv.Shards))
	for i, sh := range sv.Shards {
		out[i] = ShardInfo{Places: len(sh.Places), Epoch: sh.Epoch}
	}
	return out
}

// shardCursor is one shard's position in the lazy merge: a buffered
// prefix of its canonical result stream plus the retained Searcher that
// can extend the prefix on demand.
type shardCursor struct {
	sh   *Shard
	s    *irtree.Searcher
	buf  []irtree.Result
	i    int
	done bool // stream exhausted

	// Tracing bookkeeping, populated only when the retrieve is traced:
	// the shard's span ID (for post-merge annotation), when its priming
	// finished, and how many refills the merge pulled from it.
	sid      int
	spanID   int
	primeEnd time.Time
	refills  int
}

// refill extends the cursor's buffer by up to chunk results.
func (c *shardCursor) refill(chunk int) {
	c.buf = c.buf[:0]
	c.i = 0
	for len(c.buf) < chunk {
		r, ok := c.s.Next()
		if !ok {
			c.done = true
			return
		}
		c.buf = append(c.buf, r)
	}
}

// Retrieve answers q with the K most relevant places by fanning the
// query out across the shards and lazily merging their canonical result
// streams. Each shard primes K/n plus slack results in parallel; the
// serial k-way merge then consumes the prefixes in exact global order,
// pulling more from a shard's retained cursor only when the merge
// actually drains its prefix (a skewed query concentrating the top-K in
// one shard). Total retrieval work is therefore ~K emissions spread
// across the shards rather than n·K, while the output stays exactly
// (bitwise) what the unsharded Dataset.Retrieve returns; see the
// package comment for why.
//
// When ctx carries a telemetry trace, each shard's priming records a
// StageShard child span (shard index, primed count) and the k-way merge
// a StageMerge span; after the merge, every shard span is annotated
// with its refill count and merge_wait_ms — how long its primed prefix
// sat waiting for the slowest shard before the merge began, which is
// what attributes the fan-out barrier's cost to the shard that caused
// it. Without a trace the only per-shard overhead is one nil check.
func (sv *ShardView) Retrieve(ctx context.Context, q Query, K int) ([]core.Place, error) {
	if K <= 0 {
		return nil, fmt.Errorf("dataset: K = %d must be positive", K)
	}
	maxDist := sv.base.Config.Extent * 1.4142135623730951
	opt := irtree.QueryOptions{K: K, Beta: 0.5, MaxDist: maxDist}

	var curs []*shardCursor
	for sid, sh := range sv.Shards {
		if len(sh.Places) > 0 {
			curs = append(curs, &shardCursor{sh: sh, sid: sid})
		}
	}
	if len(curs) == 0 {
		return nil, nil
	}
	prime := K/len(curs) + 16
	if prime > K {
		prime = K
	}
	traced := telemetry.TraceFrom(ctx) != nil
	var wg sync.WaitGroup
	for _, c := range curs {
		wg.Add(1)
		go func(c *shardCursor) {
			defer wg.Done()
			var end func(...telemetry.Attr)
			if traced {
				c.spanID, end = telemetry.StartSpanAttrs(ctx, telemetry.StageShard)
			}
			c.s = c.sh.Index.Search(q.Loc, q.Keywords, opt)
			c.refill(prime)
			if traced {
				c.primeEnd = time.Now()
				end(
					telemetry.Attr{Key: "shard", Value: c.sid},
					telemetry.Attr{Key: "primed", Value: len(c.buf)},
					telemetry.Attr{Key: "exhausted", Value: c.done},
				)
			}
		}(c)
	}
	wg.Wait()

	var (
		mergeStart time.Time
		endMerge   func(...telemetry.Attr)
	)
	if traced {
		mergeStart = time.Now()
		_, endMerge = telemetry.StartSpanAttrs(ctx, telemetry.StageMerge)
	}

	// Exact k-way merge by (score desc, global index asc): each cursor's
	// stream is already in that order within its shard (Global is
	// strictly increasing, so local-ID ties agree with global ties), so
	// always taking the best head reproduces the unsharded sequence.
	out := make([]core.Place, 0, K)
	for len(out) < K {
		var (
			best   *shardCursor
			bestSc float64
			bestG  int32
		)
		for _, c := range curs {
			if c.i >= len(c.buf) {
				continue
			}
			r := c.buf[c.i]
			g := c.sh.Global[r.Obj.ID]
			if best == nil || r.Score > bestSc || (r.Score == bestSc && g < bestG) {
				best, bestSc, bestG = c, r.Score, g
			}
		}
		if best == nil {
			break
		}
		r := best.buf[best.i]
		rec := sv.base.Places[bestG]
		out = append(out, core.Place{
			ID:      rec.Label,
			Loc:     rec.Loc,
			Rel:     r.Score,
			Context: rec.Context,
		})
		best.i++
		if best.i >= len(best.buf) && !best.done {
			best.refill(prime)
			best.refills++
		}
	}
	if traced {
		endMerge(telemetry.Attr{Key: "emitted", Value: len(out)})
		for _, c := range curs {
			telemetry.Annotate(ctx, c.spanID,
				telemetry.Attr{Key: "refills", Value: c.refills},
				telemetry.Attr{Key: "merge_wait_ms", Value: roundMS(mergeStart.Sub(c.primeEnd))},
			)
		}
	}
	return out, nil
}

// roundMS renders a duration as fractional milliseconds rounded to 3
// decimals, the JSON convention used elsewhere.
func roundMS(d time.Duration) float64 {
	return math.Round(d.Seconds()*1e6) / 1e3
}

// Apply runs the batch through the base dataset's copy-on-write
// ApplyCtx and derives the successor view, rebuilding only the shards
// the batch touches: the shard of every deleted place's old location,
// and for upserts both the new location's shard and (for replacements)
// the old one. Untouched shards keep their tree, place slice and epoch
// — a mutation batch leaves them byte-identical — and only have their
// Global lists renumbered, since deletes shift later global indices.
// Rebuilt shards take nextEpoch, which is how per-shard epochs compose
// into the corpus epoch.
func (sv *ShardView) Apply(ctx context.Context, b Batch, nextEpoch uint64) (*Dataset, *ShardView, ApplyStats, error) {
	next, st, err := sv.base.ApplyCtx(ctx, b)
	if err != nil {
		return nil, nil, st, err
	}

	// Affected shards, computed against the OLD corpus (ApplyCtx already
	// validated every upsert's coordinates).
	oldByLabel := make(map[string]int, len(sv.base.Places))
	for i, p := range sv.base.Places {
		oldByLabel[p.Label] = i
	}
	affected := make(map[int]bool, sv.n)
	for _, id := range b.Deletes {
		if i, ok := oldByLabel[id]; ok {
			affected[sv.shardOf(sv.base.Places[i].Loc)] = true
		}
	}
	for _, u := range b.Upserts {
		affected[sv.shardOf(geo.Pt(u.X, u.Y))] = true
		if i, ok := oldByLabel[u.ID]; ok {
			affected[sv.shardOf(sv.base.Places[i].Loc)] = true
		}
	}

	nv := &ShardView{base: next, n: sv.n, g: sv.g, cellW: sv.cellW, cellH: sv.cellH}
	assign := nv.assignAll(next.Places)
	for sid := 0; sid < sv.n; sid++ {
		if affected[sid] {
			sh, err := buildShard(next.Places, assign, sid, nextEpoch)
			if err != nil {
				return nil, nil, st, err
			}
			nv.Shards = append(nv.Shards, sh)
			continue
		}
		// Untouched shard: same members in the same relative order
		// (ApplyCtx keeps survivors in order and appends new places at
		// the end, and none of this shard's members were touched), so
		// the tree's local IDs stay valid — only the global indices
		// shifted. Renumber Global; reuse everything else.
		old := sv.Shards[sid]
		global := make([]int32, 0, len(old.Global))
		for i, a := range assign {
			if a == sid {
				global = append(global, int32(i))
			}
		}
		if len(global) != len(old.Global) {
			// Defensive: membership changed where it could not have.
			// Rebuild rather than serve a corrupt mapping.
			sh, err := buildShard(next.Places, assign, sid, nextEpoch)
			if err != nil {
				return nil, nil, st, err
			}
			nv.Shards = append(nv.Shards, sh)
			continue
		}
		nv.Shards = append(nv.Shards, &Shard{
			Places: old.Places,
			Global: global,
			Index:  old.Index,
			Epoch:  old.Epoch,
		})
	}
	return next, nv, st, nil
}
