package dataset

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/textctx"
)

func shardTestData(t *testing.T, seed int64, places int) *Dataset {
	t.Helper()
	cfg := DBpediaLike(seed)
	cfg.Places = places
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func assertRetrieveEqual(t *testing.T, d *Dataset, sv *ShardView, q Query, K int, label string) {
	t.Helper()
	want, err := d.Retrieve(q, K)
	if err != nil {
		t.Fatalf("%s: unsharded: %v", label, err)
	}
	got, err := sv.Retrieve(context.Background(), q, K)
	if err != nil {
		t.Fatalf("%s: sharded: %v", label, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: sharded returned %d places, unsharded %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Rel != want[i].Rel {
			t.Fatalf("%s: rank %d: sharded (%q, %v) != unsharded (%q, %v)",
				label, i, got[i].ID, got[i].Rel, want[i].ID, want[i].Rel)
		}
		if got[i].Loc != want[i].Loc {
			t.Fatalf("%s: rank %d: location diverged", label, i)
		}
	}
}

// TestShardViewPartition: every place lands in exactly one shard, and
// Global lists are strictly increasing (local order = global order).
func TestShardViewPartition(t *testing.T) {
	d := shardTestData(t, 3, 400)
	for _, n := range []int{2, 3, 4, 7} {
		sv, err := NewShardView(d, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		if sv.NumShards() != n {
			t.Fatalf("NumShards = %d, want %d", sv.NumShards(), n)
		}
		seen := make(map[int32]int)
		total := 0
		for sid, sh := range sv.Shards {
			if len(sh.Places) != len(sh.Global) {
				t.Fatalf("shard %d: %d places but %d globals", sid, len(sh.Places), len(sh.Global))
			}
			total += len(sh.Places)
			prev := int32(-1)
			for li, g := range sh.Global {
				if g <= prev {
					t.Fatalf("shard %d: Global not strictly increasing at %d", sid, li)
				}
				prev = g
				if other, dup := seen[g]; dup {
					t.Fatalf("place %d in shards %d and %d", g, other, sid)
				}
				seen[g] = sid
				if sv.Shards[sid].Places[li].Label != d.Places[g].Label {
					t.Fatalf("shard %d local %d maps to wrong record", sid, li)
				}
			}
		}
		if total != len(d.Places) {
			t.Fatalf("n=%d: shards hold %d places, corpus %d", n, total, len(d.Places))
		}
	}
}

// TestShardRetrieveEquivalence is the core exactness property: sharded
// fan-out is bitwise identical to the unsharded tree across shard
// counts, K values and query positions, including K beyond the corpus.
func TestShardRetrieveEquivalence(t *testing.T) {
	d := shardTestData(t, 3, 400)
	qs, err := d.GenQueries(6, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4, 7} {
		sv, err := NewShardView(d, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range qs {
			for _, K := range []int{1, 10, 100, 400, 1000} {
				assertRetrieveEqual(t, d, sv, q, K,
					fmt.Sprintf("n=%d q=%d K=%d", n, qi, K))
			}
		}
		// No keywords: pure proximity ranking must also agree.
		assertRetrieveEqual(t, d, sv, Query{Loc: qs[0].Loc}, 50,
			fmt.Sprintf("n=%d no-keywords", n))
	}
}

// TestShardApplyEquivalence: after mutations, the successor view still
// matches the (independently mutated) unsharded dataset, untouched
// shards keep their epoch, and touched shards take the new one.
func TestShardApplyEquivalence(t *testing.T) {
	d := shardTestData(t, 3, 300)
	sv, err := NewShardView(d, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := d.GenQueries(4, 20, 4)
	if err != nil {
		t.Fatal(err)
	}

	flat := d
	for gen := 1; gen <= 4; gen++ {
		b := Batch{
			Upserts: []Upsert{
				{ID: fmt.Sprintf("shard-beacon:%d", gen), X: 10 + float64(gen), Y: 10, Context: []string{"shard-beacon"}},
				{ID: d.Places[gen*3].Label, X: d.Places[gen*3].Loc.X, Y: d.Places[gen*3].Loc.Y, Context: []string{"moved", fmt.Sprintf("gen-%d", gen)}},
			},
			Deletes: []string{d.Places[gen*7].Label},
		}
		var next *Dataset
		next, sv, _, err = sv.Apply(context.Background(), b, uint64(gen))
		if err != nil {
			t.Fatalf("gen %d: sharded apply: %v", gen, err)
		}
		flat, _, err = flat.Apply(b)
		if err != nil {
			t.Fatalf("gen %d: flat apply: %v", gen, err)
		}
		if len(next.Places) != len(flat.Places) {
			t.Fatalf("gen %d: sharded corpus %d places, flat %d", gen, len(next.Places), len(flat.Places))
		}
		for qi, q := range qs {
			assertRetrieveEqual(t, flat, sv, q, 100,
				fmt.Sprintf("gen=%d q=%d", gen, qi))
		}
		if id, ok := flat.Dict.Lookup("shard-beacon"); ok {
			assertRetrieveEqual(t, flat, sv, Query{Loc: qs[0].Loc, Keywords: textctx.NewSet(id)}, 50,
				fmt.Sprintf("gen=%d beacon", gen))
		} else {
			t.Fatalf("gen %d: beacon word never interned", gen)
		}
	}

	// Epoch composition: at least one shard was touched (epoch > 0); if
	// any shard went untouched its epoch must predate the last batch.
	var touched bool
	for _, info := range sv.Info() {
		if info.Epoch > 0 {
			touched = true
		}
		if info.Epoch > 4 {
			t.Fatalf("shard epoch %d past corpus epoch 4", info.Epoch)
		}
	}
	if !touched {
		t.Fatal("no shard was ever rebuilt across 4 mutations")
	}
}

// TestShardApplyRenumbersUntouched: a delete in one shard shifts global
// indices; untouched shards must still map local IDs to the right
// records afterwards.
func TestShardApplyRenumbersUntouched(t *testing.T) {
	d := shardTestData(t, 5, 200)
	sv, err := NewShardView(d, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Delete the very first place: every later global index shifts.
	next, nv, _, err := sv.Apply(context.Background(), Batch{Deletes: []string{d.Places[0].Label}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for sid, sh := range nv.Shards {
		for li, g := range sh.Global {
			if sh.Places[li].Label != next.Places[g].Label {
				t.Fatalf("shard %d local %d: Global points at %q, shard holds %q",
					sid, li, next.Places[g].Label, sh.Places[li].Label)
			}
		}
	}
	untouched := 0
	for sid, sh := range nv.Shards {
		if sh.Epoch == 0 {
			untouched++
			if sh.Index != sv.Shards[sid].Index {
				t.Fatalf("untouched shard %d did not reuse its tree", sid)
			}
		}
	}
	if untouched == 0 {
		t.Error("single delete rebuilt every shard; structural sharing is broken")
	}
}

// A traced sharded retrieve must record one shard_retrieve child span
// per populated shard plus a merge span, all under the surrounding
// retrieve span, with the attribution attrs the trace API exposes.
func TestShardRetrieveSpans(t *testing.T) {
	d := shardTestData(t, 7, 300)
	sv, err := NewShardView(d, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	populated := 0
	for _, sh := range sv.Shards {
		if len(sh.Places) > 0 {
			populated++
		}
	}

	tr := telemetry.NewTrace()
	ctx := telemetry.WithTrace(context.Background(), tr)
	rctx, endRetrieve := telemetry.BeginSpan(ctx, telemetry.StageRetrieve)
	q := Query{Loc: d.Places[0].Loc, Keywords: d.Places[0].Context}
	if _, err := sv.Retrieve(rctx, q, 50); err != nil {
		t.Fatal(err)
	}
	endRetrieve()

	var retrieveID int
	for _, s := range tr.Spans() {
		if s.Stage == telemetry.StageRetrieve {
			retrieveID = s.ID
		}
	}
	if retrieveID == 0 {
		t.Fatal("no retrieve span recorded")
	}
	shardSpans, mergeSpans := 0, 0
	for _, s := range tr.Spans() {
		switch s.Stage {
		case telemetry.StageShard:
			shardSpans++
			if s.Parent != retrieveID {
				t.Fatalf("shard span parent = %d, want retrieve span %d", s.Parent, retrieveID)
			}
			keys := map[string]bool{}
			for _, a := range s.Attrs {
				keys[a.Key] = true
			}
			for _, want := range []string{"shard", "primed", "refills", "merge_wait_ms"} {
				if !keys[want] {
					t.Fatalf("shard span missing attr %q (has %v)", want, keys)
				}
			}
		case telemetry.StageMerge:
			mergeSpans++
			if s.Parent != retrieveID {
				t.Fatalf("merge span parent = %d, want %d", s.Parent, retrieveID)
			}
		}
	}
	if shardSpans != populated {
		t.Fatalf("recorded %d shard spans, want one per populated shard (%d)", shardSpans, populated)
	}
	if mergeSpans != 1 {
		t.Fatalf("recorded %d merge spans, want 1", mergeSpans)
	}
}

// An untraced retrieve must record nothing and allocate no tracing
// state — the disabled path is a nil check.
func TestShardRetrieveUntraced(t *testing.T) {
	d := shardTestData(t, 7, 120)
	sv, err := NewShardView(d, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Loc: d.Places[0].Loc, Keywords: d.Places[0].Context}
	if _, err := sv.Retrieve(context.Background(), q, 20); err != nil {
		t.Fatal(err)
	}
}
