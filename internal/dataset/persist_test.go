package dataset

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

func persistTestData(t *testing.T) *Dataset {
	t.Helper()
	cfg := DBpediaLike(11)
	cfg.Places = 200
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestLoadDetectsPayloadCorruption: a version-2 file whose content was
// damaged after the checksum was recorded must fail at Load — a corrupt
// snapshot can never silently become a serving corpus.
func TestLoadDetectsPayloadCorruption(t *testing.T) {
	d := persistTestData(t)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Re-encode with a flipped coordinate: the gob container stays valid,
	// only the payload no longer matches the recorded CRC — exactly what
	// bit rot inside a snapshot looks like.
	var ff fileFormat
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&ff); err != nil {
		t.Fatal(err)
	}
	ff.Places[3].X += 1
	var dam bytes.Buffer
	if err := gob.NewEncoder(&dam).Encode(ff); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&dam); err == nil {
		t.Fatal("damaged payload loaded without error")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("err = %v, want a corrupt-file report", err)
	}
}

// TestLoadVersion1Unverified: files written before the checksum existed
// (Version 1, zero Checksum) still load.
func TestLoadVersion1Unverified(t *testing.T) {
	d := persistTestData(t)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var ff fileFormat
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&ff); err != nil {
		t.Fatal(err)
	}
	ff.Version = 1
	ff.Checksum = 0
	var v1 bytes.Buffer
	if err := gob.NewEncoder(&v1).Encode(ff); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&v1)
	if err != nil {
		t.Fatalf("version-1 file failed to load: %v", err)
	}
	if len(got.Places) != len(d.Places) {
		t.Errorf("loaded %d places, want %d", len(got.Places), len(d.Places))
	}
}

func TestLoadRejectsUnknownVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fileFormat{Version: 99}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v, want an unsupported-version report", err)
	}
}
