package dataset

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// TestApplyCtxCancellation: a terminated context abandons the batch with
// the lifecycle error instead of paying for the copy and rebuild.
func TestApplyCtxCancellation(t *testing.T) {
	d := persistTestData(t)
	batch := Batch{Upserts: []Upsert{{ID: "poi:new", X: 1, Y: 1, Context: []string{"w"}}}}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := d.ApplyCtx(ctx, batch); !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), -time.Nanosecond)
	defer dcancel()
	if _, _, err := d.ApplyCtx(dctx, batch); !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}

	// Apply (no context) still works, and the dataset was untouched by
	// the abandoned attempts.
	next, st, err := d.Apply(batch)
	if err != nil || st.Upserted != 1 {
		t.Fatalf("Apply after cancelled attempts: %v, %+v", err, st)
	}
	if len(next.Places) != len(d.Places)+1 {
		t.Fatalf("places = %d, want %d", len(next.Places), len(d.Places)+1)
	}
}
