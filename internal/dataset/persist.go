package dataset

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/irtree"
	"repro/internal/textctx"
)

// fileVersion guards the on-disk format. Version 2 adds Checksum, a
// CRC32C over the words and places payload, so a corrupt file fails
// loudly at Load instead of materialising a garbage corpus; version-1
// files (no checksum) still load.
const fileVersion = 2

// filePlace is the serialisable form of one place.
type filePlace struct {
	Label   string
	X, Y    float64
	Context []int32
}

// fileFormat is the gob payload. The RDF graph is not persisted — it is
// fully determined by Config.Seed and regenerable via Generate — but the
// derived places, contexts and dictionary are, so a loaded dataset can be
// queried without regeneration.
type fileFormat struct {
	Version int
	Config  Config
	Words   []string
	Places  []filePlace
	// Checksum is a CRC32C over the canonical encoding of Words and
	// Places (see payloadCRC). Zero-valued in version-1 files, which
	// predate it and are loaded unverified.
	Checksum uint32
}

// payloadCRC hashes the dataset content — every word in ID order, every
// place's label, coordinates and context items — in a fixed byte layout,
// independent of gob's encoding details. The checksum therefore guards
// the data a corrupt snapshot would poison the corpus with, not the
// container around it (gob detects most framing damage itself).
func (ff *fileFormat) payloadCRC() uint32 {
	h := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeU64(uint64(len(ff.Words)))
	for _, w := range ff.Words {
		io.WriteString(h, w)
		h.Write([]byte{0})
	}
	writeU64(uint64(len(ff.Places)))
	for _, p := range ff.Places {
		io.WriteString(h, p.Label)
		h.Write([]byte{0})
		writeU64(math.Float64bits(p.X))
		writeU64(math.Float64bits(p.Y))
		writeU64(uint64(len(p.Context)))
		for _, c := range p.Context {
			binary.LittleEndian.PutUint32(buf[:4], uint32(c))
			h.Write(buf[:4])
		}
	}
	return h.Sum32()
}

// Save writes the dataset to w in a self-contained binary format.
func (d *Dataset) Save(w io.Writer) error {
	ff := fileFormat{Version: fileVersion, Config: d.Config}
	ff.Words = make([]string, d.Dict.Len())
	for i := range ff.Words {
		ff.Words[i] = d.Dict.Word(textctx.ItemID(i))
	}
	ff.Places = make([]filePlace, len(d.Places))
	for i, p := range d.Places {
		fp := filePlace{Label: p.Label, X: p.Loc.X, Y: p.Loc.Y}
		for _, it := range p.Context.Items() {
			fp.Context = append(fp.Context, int32(it))
		}
		ff.Places[i] = fp
	}
	ff.Checksum = ff.payloadCRC()
	return gob.NewEncoder(w).Encode(ff)
}

// Load reads a dataset written by Save. The returned dataset has a
// rebuilt IR-tree but no RDF graph (Graph is nil); regenerate with
// Generate(d.Config) when graph access is needed. Version-2 files are
// checksum-verified: a payload whose CRC does not match fails here, so
// a corrupt snapshot can never silently become a serving corpus.
func Load(r io.Reader) (*Dataset, error) {
	var ff fileFormat
	if err := gob.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	switch ff.Version {
	case 1:
		// Pre-checksum format: nothing to verify.
	case fileVersion:
		if got := ff.payloadCRC(); got != ff.Checksum {
			return nil, fmt.Errorf("dataset: corrupt file: payload CRC %08x, recorded %08x", got, ff.Checksum)
		}
	default:
		return nil, fmt.Errorf("dataset: unsupported file version %d", ff.Version)
	}
	dict := textctx.NewDict()
	for _, w := range ff.Words {
		dict.Intern(w)
	}
	d := &Dataset{Config: ff.Config, Dict: dict}
	objs := make([]irtree.Object, len(ff.Places))
	for i, fp := range ff.Places {
		ids := make([]textctx.ItemID, len(fp.Context))
		for j, c := range fp.Context {
			ids[j] = textctx.ItemID(c)
		}
		rec := PlaceRecord{
			Label:   fp.Label,
			Context: textctx.NewSet(ids...),
		}
		rec.Loc.X, rec.Loc.Y = fp.X, fp.Y
		d.Places = append(d.Places, rec)
		objs[i] = irtree.Object{ID: int32(i), Loc: rec.Loc, Terms: rec.Context}
	}
	idx, err := irtree.BulkLoad(objs)
	if err != nil {
		return nil, err
	}
	d.Index = idx
	return d, nil
}
