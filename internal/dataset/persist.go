package dataset

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/irtree"
	"repro/internal/textctx"
)

// fileVersion guards the on-disk format.
const fileVersion = 1

// filePlace is the serialisable form of one place.
type filePlace struct {
	Label   string
	X, Y    float64
	Context []int32
}

// fileFormat is the gob payload. The RDF graph is not persisted — it is
// fully determined by Config.Seed and regenerable via Generate — but the
// derived places, contexts and dictionary are, so a loaded dataset can be
// queried without regeneration.
type fileFormat struct {
	Version int
	Config  Config
	Words   []string
	Places  []filePlace
}

// Save writes the dataset to w in a self-contained binary format.
func (d *Dataset) Save(w io.Writer) error {
	ff := fileFormat{Version: fileVersion, Config: d.Config}
	ff.Words = make([]string, d.Dict.Len())
	for i := range ff.Words {
		ff.Words[i] = d.Dict.Word(textctx.ItemID(i))
	}
	ff.Places = make([]filePlace, len(d.Places))
	for i, p := range d.Places {
		fp := filePlace{Label: p.Label, X: p.Loc.X, Y: p.Loc.Y}
		for _, it := range p.Context.Items() {
			fp.Context = append(fp.Context, int32(it))
		}
		ff.Places[i] = fp
	}
	return gob.NewEncoder(w).Encode(ff)
}

// Load reads a dataset written by Save. The returned dataset has a
// rebuilt IR-tree but no RDF graph (Graph is nil); regenerate with
// Generate(d.Config) when graph access is needed.
func Load(r io.Reader) (*Dataset, error) {
	var ff fileFormat
	if err := gob.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	if ff.Version != fileVersion {
		return nil, fmt.Errorf("dataset: unsupported file version %d", ff.Version)
	}
	dict := textctx.NewDict()
	for _, w := range ff.Words {
		dict.Intern(w)
	}
	d := &Dataset{Config: ff.Config, Dict: dict}
	objs := make([]irtree.Object, len(ff.Places))
	for i, fp := range ff.Places {
		ids := make([]textctx.ItemID, len(fp.Context))
		for j, c := range fp.Context {
			ids[j] = textctx.ItemID(c)
		}
		rec := PlaceRecord{
			Label:   fp.Label,
			Context: textctx.NewSet(ids...),
		}
		rec.Loc.X, rec.Loc.Y = fp.X, fp.Y
		d.Places = append(d.Places, rec)
		objs[i] = irtree.Object{ID: int32(i), Loc: rec.Loc, Terms: rec.Context}
	}
	idx, err := irtree.BulkLoad(objs)
	if err != nil {
		return nil, err
	}
	d.Index = idx
	return d, nil
}
