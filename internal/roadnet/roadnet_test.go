package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/pairs"
	"repro/internal/textctx"
)

func mustNode(t *testing.T, n *Network, x, y float64) NodeID {
	t.Helper()
	id, err := n.AddNode(geo.Pt(x, y))
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func mustEdge(t *testing.T, n *Network, a, b NodeID, w float64) {
	t.Helper()
	if err := n.AddEdge(a, b, w); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkBasics(t *testing.T) {
	n := New()
	a := mustNode(t, n, 0, 0)
	b := mustNode(t, n, 3, 4)
	mustEdge(t, n, a, b, 0) // Euclidean weight: 5
	if n.NumNodes() != 2 || n.NumEdges() != 1 {
		t.Fatalf("nodes=%d edges=%d", n.NumNodes(), n.NumEdges())
	}
	d, err := n.ShortestDistances(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d[b]-5) > 1e-12 {
		t.Errorf("d(a,b) = %g, want 5", d[b])
	}
}

func TestNetworkValidation(t *testing.T) {
	n := New()
	if _, err := n.AddNode(geo.Pt(math.NaN(), 0)); err == nil {
		t.Error("NaN node accepted")
	}
	a := mustNode(t, n, 0, 0)
	if err := n.AddEdge(a, 99, 1); err == nil {
		t.Error("dangling edge accepted")
	}
	if err := n.AddEdge(a, a, 1); err == nil {
		t.Error("self-loop accepted")
	}
	b := mustNode(t, n, 1, 0)
	if err := n.AddEdge(a, b, math.Inf(1)); err == nil {
		t.Error("infinite weight accepted")
	}
	if _, err := n.ShortestDistances(42); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := New().Snap(geo.Pt(0, 0)); err == nil {
		t.Error("snap on empty network accepted")
	}
}

func TestSnap(t *testing.T) {
	n := New()
	a := mustNode(t, n, 0, 0)
	b := mustNode(t, n, 10, 0)
	got, err := n.Snap(geo.Pt(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Errorf("snapped to %d, want %d", got, a)
	}
	if got, _ := n.Snap(geo.Pt(8, -1)); got != b {
		t.Errorf("snapped to %d, want %d", got, b)
	}
}

func TestUnreachable(t *testing.T) {
	n := New()
	a := mustNode(t, n, 0, 0)
	mustNode(t, n, 5, 5) // isolated
	d, err := n.ShortestDistances(a)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(d[1], 1) {
		t.Errorf("d to isolated node = %g, want +Inf", d[1])
	}
}

// floydWarshall computes all-pairs distances directly for verification.
func floydWarshall(n *Network) [][]float64 {
	size := n.NumNodes()
	d := make([][]float64, size)
	for i := range d {
		d[i] = make([]float64, size)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for i := 0; i < size; i++ {
		for _, e := range n.adj[i] {
			if e.w < d[i][e.to] {
				d[i][e.to] = e.w
			}
		}
	}
	for k := 0; k < size; k++ {
		for i := 0; i < size; i++ {
			for j := 0; j < size; j++ {
				if nd := d[i][k] + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	return d
}

// TestDijkstraMatchesFloydWarshall cross-validates the shortest-path
// implementation on random graphs.
func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := New()
		size := 5 + rng.Intn(20)
		for i := 0; i < size; i++ {
			mustNode(t, n, rng.Float64()*10, rng.Float64()*10)
		}
		edges := size + rng.Intn(size*2)
		for e := 0; e < edges; e++ {
			a, b := NodeID(rng.Intn(size)), NodeID(rng.Intn(size))
			if a != b {
				mustEdge(t, n, a, b, 0.1+rng.Float64()*5)
			}
		}
		want := floydWarshall(n)
		for src := 0; src < size; src++ {
			got, err := n.ShortestDistances(NodeID(src))
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < size; j++ {
				w, g := want[src][j], got[j]
				if math.IsInf(w, 1) != math.IsInf(g, 1) || (!math.IsInf(w, 1) && math.Abs(w-g) > 1e-9) {
					t.Fatalf("trial %d: d(%d,%d) = %g, want %g", trial, src, j, g, w)
				}
			}
		}
	}
}

func TestGridNetwork(t *testing.T) {
	n, err := GridNetwork(5, 7, 10, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumNodes() != 35 {
		t.Fatalf("nodes = %d", n.NumNodes())
	}
	// The backbone guarantees connectivity.
	d, err := n.ShortestDistances(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range d {
		if math.IsInf(v, 1) {
			t.Fatalf("node %d unreachable despite backbone", i)
		}
	}
	// Corner coordinates span the extent.
	if n.Coord(0) != geo.Pt(0, 0) || n.Coord(34) != geo.Pt(10, 10) {
		t.Errorf("corners %v, %v", n.Coord(0), n.Coord(34))
	}
	if _, err := GridNetwork(1, 5, 10, 0, 1); err == nil {
		t.Error("degenerate grid accepted")
	}
	if _, err := GridNetwork(3, 3, 10, 1.5, 1); err == nil {
		t.Error("bad dropProb accepted")
	}
}

// TestNetworkSSProperties: the network Ptolemy similarity stays in [0, 1]
// and its complement satisfies the triangle-ish sanity (pairwise values
// consistent with a metric).
func TestNetworkSSProperties(t *testing.T) {
	n, err := GridNetwork(6, 6, 10, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScorer(n)
	rng := rand.New(rand.NewSource(7))
	pts := make([]geo.Point, 25)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	m, err := s.AllPairs(geo.Pt(5, 5), pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			v := m.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("sS_net(%d,%d) = %g outside [0,1]", i, j, v)
			}
		}
	}
}

// TestNetworkVsEuclideanOnDenseGrid: on a complete grid with no dropped
// segments, network distance approximates Manhattan distance, so the
// similarity ordering correlates with the Euclidean one for on-axis
// configurations.
func TestNetworkVsEuclideanOnDenseGrid(t *testing.T) {
	n, err := GridNetwork(11, 11, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScorer(n)
	q := geo.Pt(5, 5)
	// Opposite along one axis vs same direction: network diversity must
	// agree with Ptolemy's intuition.
	pts := []geo.Point{geo.Pt(2, 5), geo.Pt(8, 5), geo.Pt(8, 5.1)}
	m, err := s.AllPairs(q, pts)
	if err != nil {
		t.Fatal(err)
	}
	if opp, same := m.At(0, 1), m.At(1, 2); opp >= same {
		t.Errorf("opposite pair similarity %g not below same-direction %g", opp, same)
	}
}

// TestCoreIntegration runs the proportional selection pipeline with the
// road-network scorer plugged in via SpatialCustom.
func TestCoreIntegration(t *testing.T) {
	net, err := GridNetwork(8, 8, 10, 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	scorer := NewScorer(net)
	rng := rand.New(rand.NewSource(11))
	dict := textctx.NewDict()
	places := make([]core.Place, 40)
	words := []string{"cafe", "museum", "park", "shop", "bar"}
	for i := range places {
		places[i] = core.Place{
			ID:  words[i%5],
			Loc: geo.Pt(rng.Float64()*10, rng.Float64()*10),
			Rel: 0.4 + rng.Float64()*0.5,
			Context: textctx.NewSetFromStrings(dict,
				[]string{words[i%5], words[(i+1)%5], "poi"}),
		}
	}
	q := geo.Pt(5, 5)
	ss, err := core.ComputeScores(q, places, core.ScoreOptions{
		Gamma:   0.5,
		Spatial: core.SpatialCustom,
		CustomSpatial: func(q geo.Point, pl []core.Place) (*pairs.Matrix, error) {
			pts := make([]geo.Point, len(pl))
			for i := range pl {
				pts[i] = pl[i].Loc
			}
			return scorer.AllPairs(q, pts)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := core.ABP(ss, core.Params{K: 6, Lambda: 0.5, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Indices) != 6 {
		t.Fatalf("|R| = %d", len(sel.Indices))
	}
	if b := ss.Evaluate(sel.Indices, 0.5); b.Total <= 0 {
		t.Errorf("HPF = %g", b.Total)
	}
	// Error paths of the custom hook.
	if _, err := core.ComputeScores(q, places, core.ScoreOptions{Spatial: core.SpatialCustom}); err == nil {
		t.Error("missing CustomSpatial accepted")
	}
}
