// Package roadnet implements the paper's stated future-work extension:
// proportionality with road-network distance in place of Euclidean
// distance. It provides an in-memory weighted road graph, Dijkstra
// shortest paths, point snapping, a synthetic Manhattan-style network
// generator, and a network variant of Ptolemy's spatial similarity that
// plugs into core.ComputeScores through the custom-spatial hook.
//
// Because network distance is a metric, the network Ptolemy diversity
// d(p_i, p_j) / (d(p_i, q) + d(p_j, q)) keeps the [0, 1] range and
// triangle-inequality properties the Section 8 analysis relies on.
package roadnet

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geo"
	"repro/internal/pairs"
)

// NodeID identifies a road-network node (junction).
type NodeID int32

// edge is one directed half of an undirected road segment.
type edge struct {
	to NodeID
	w  float64
}

// Network is an undirected weighted road graph with node coordinates.
type Network struct {
	coords []geo.Point
	adj    [][]edge
	edges  int
}

// New returns an empty network.
func New() *Network { return &Network{} }

// AddNode adds a junction at p and returns its id.
func (n *Network) AddNode(p geo.Point) (NodeID, error) {
	if !p.Valid() {
		return 0, fmt.Errorf("roadnet: invalid node location %v", p)
	}
	n.coords = append(n.coords, p)
	n.adj = append(n.adj, nil)
	return NodeID(len(n.coords) - 1), nil
}

// AddEdge adds an undirected road segment between a and b. A
// non-positive weight means the Euclidean length of the segment.
func (n *Network) AddEdge(a, b NodeID, weight float64) error {
	if !n.valid(a) || !n.valid(b) {
		return fmt.Errorf("roadnet: edge (%d, %d) references unknown node", a, b)
	}
	if a == b {
		return fmt.Errorf("roadnet: self-loop at node %d", a)
	}
	if weight <= 0 {
		weight = n.coords[a].Dist(n.coords[b])
	}
	if math.IsNaN(weight) || math.IsInf(weight, 0) {
		return fmt.Errorf("roadnet: invalid edge weight %v", weight)
	}
	n.adj[a] = append(n.adj[a], edge{to: b, w: weight})
	n.adj[b] = append(n.adj[b], edge{to: a, w: weight})
	n.edges++
	return nil
}

func (n *Network) valid(id NodeID) bool { return id >= 0 && int(id) < len(n.coords) }

// NumNodes returns the number of junctions.
func (n *Network) NumNodes() int { return len(n.coords) }

// NumEdges returns the number of undirected segments.
func (n *Network) NumEdges() int { return n.edges }

// Coord returns the location of id.
func (n *Network) Coord(id NodeID) geo.Point { return n.coords[id] }

// Snap returns the network node nearest to p. It returns an error on an
// empty network.
func (n *Network) Snap(p geo.Point) (NodeID, error) {
	if len(n.coords) == 0 {
		return 0, fmt.Errorf("roadnet: snap on empty network")
	}
	best := NodeID(0)
	bestD := math.Inf(1)
	for i, c := range n.coords {
		if d := c.SqDist(p); d < bestD {
			bestD = d
			best = NodeID(i)
		}
	}
	return best, nil
}

// pqItem is a Dijkstra frontier entry.
type pqItem struct {
	node NodeID
	dist float64
}

type dijkstraPQ []pqItem

func (p dijkstraPQ) Len() int            { return len(p) }
func (p dijkstraPQ) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p dijkstraPQ) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *dijkstraPQ) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *dijkstraPQ) Pop() interface{} {
	old := *p
	it := old[len(old)-1]
	*p = old[:len(old)-1]
	return it
}

// ShortestDistances returns the network distance from src to every node
// (math.Inf(1) for unreachable nodes) via Dijkstra's algorithm.
func (n *Network) ShortestDistances(src NodeID) ([]float64, error) {
	if !n.valid(src) {
		return nil, fmt.Errorf("roadnet: unknown source node %d", src)
	}
	dist := make([]float64, len(n.coords))
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &dijkstraPQ{{node: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if it.dist > dist[it.node] {
			continue // stale entry
		}
		for _, e := range n.adj[it.node] {
			if nd := it.dist + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, pqItem{node: e.to, dist: nd})
			}
		}
	}
	return dist, nil
}

// GridNetwork generates a rows×cols Manhattan-style road grid over the
// square [0, extent]², dropping each interior segment with probability
// dropProb (seeded) while keeping the network connected by construction
// of a spanning backbone (the first row and first column are never
// dropped).
func GridNetwork(rows, cols int, extent, dropProb float64, seed int64) (*Network, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("roadnet: grid %dx%d too small", rows, cols)
	}
	if dropProb < 0 || dropProb >= 1 {
		return nil, fmt.Errorf("roadnet: dropProb %v outside [0, 1)", dropProb)
	}
	rng := rand.New(rand.NewSource(seed))
	n := New()
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x := float64(c) / float64(cols-1) * extent
			y := float64(r) / float64(rows-1) * extent
			if _, err := n.AddNode(geo.Pt(x, y)); err != nil {
				return nil, err
			}
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				// Horizontal segment; the first row is the backbone.
				if r == 0 || rng.Float64() >= dropProb {
					if err := n.AddEdge(id(r, c), id(r, c+1), 0); err != nil {
						return nil, err
					}
				}
			}
			if r+1 < rows {
				// Vertical segment; the first column is the backbone.
				if c == 0 || rng.Float64() >= dropProb {
					if err := n.AddEdge(id(r, c), id(r+1, c), 0); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return n, nil
}

// Scorer computes network-distance spatial similarities for a fixed query
// location, caching the Dijkstra trees it needs (one per distinct snapped
// node, so scoring K places costs at most K+1 Dijkstra runs and usually
// far fewer).
type Scorer struct {
	net *Network
	// dists caches single-source distance vectors by source node.
	dists map[NodeID][]float64
}

// NewScorer returns a scorer over net.
func NewScorer(net *Network) *Scorer {
	return &Scorer{net: net, dists: make(map[NodeID][]float64)}
}

func (s *Scorer) distsFrom(src NodeID) ([]float64, error) {
	if d, ok := s.dists[src]; ok {
		return d, nil
	}
	d, err := s.net.ShortestDistances(src)
	if err != nil {
		return nil, err
	}
	s.dists[src] = d
	return d, nil
}

// AllPairs computes the network Ptolemy similarity matrix of pts w.r.t. q:
// every point (and q) snaps to its nearest junction, and
//
//	sS_net(p_i, p_j) = 1 − d_net(p_i, p_j) / (d_net(p_i, q) + d_net(p_j, q)),
//
// with coincident snapped nodes given similarity 1 and unreachable pairs
// similarity 0 (maximally diverse). The matrix plugs into
// core.ScoreOptions.CustomSpatial.
func (s *Scorer) AllPairs(q geo.Point, pts []geo.Point) (*pairs.Matrix, error) {
	n := len(pts)
	m := pairs.New(n)
	qNode, err := s.net.Snap(q)
	if err != nil {
		return nil, err
	}
	fromQ, err := s.distsFrom(qNode)
	if err != nil {
		return nil, err
	}
	nodes := make([]NodeID, n)
	for i, p := range pts {
		if nodes[i], err = s.net.Snap(p); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		di, err := s.distsFrom(nodes[i])
		if err != nil {
			return nil, err
		}
		for j := i + 1; j < n; j++ {
			m.Set(i, j, networkSS(di[nodes[j]], fromQ[nodes[i]], fromQ[nodes[j]]))
		}
	}
	return m, nil
}

func networkSS(dij, diq, djq float64) float64 {
	if dij == 0 {
		return 1 // same snapped junction (or identical points)
	}
	if math.IsInf(dij, 1) || math.IsInf(diq, 1) || math.IsInf(djq, 1) {
		return 0 // disconnected: treat as maximally diverse
	}
	den := diq + djq
	if den == 0 {
		return 1 // both at the query junction
	}
	d := dij / den
	if d > 1 {
		d = 1 // network distance is a metric, but guard rounding
	}
	return 1 - d
}
