package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), RetryPolicy{Attempts: 3}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	boom := errors.New("always")
	calls := 0
	err := Retry(context.Background(), RetryPolicy{Attempts: 4}, func() error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 4 {
		t.Fatalf("err = %v after %d calls, want the last error after 4", err, calls)
	}
}

func TestRetryZeroPolicyMeansOneTry(t *testing.T) {
	calls := 0
	Retry(context.Background(), RetryPolicy{}, func() error { calls++; return errors.New("x") })
	if calls != 1 {
		t.Fatalf("calls = %d, want exactly 1 under the zero policy", calls)
	}
}

func TestRetryPermanentShortCircuits(t *testing.T) {
	boom := errors.New("fatal")
	calls := 0
	err := Retry(context.Background(), RetryPolicy{Attempts: 5}, func() error {
		calls++
		return Permanent(boom)
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1: Permanent must not be retried", calls)
	}
	// The marker is stripped: callers match the underlying error directly.
	if !errors.Is(err, boom) || err != boom {
		t.Fatalf("err = %v, want the unwrapped original", err)
	}
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) != nil")
	}
}

func TestRetryContextCancelsBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	start := time.Now()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := Retry(ctx, RetryPolicy{Attempts: 3, Base: time.Hour}, func() error { calls++; return errors.New("x") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (cancelled during the first backoff)", calls)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation did not interrupt the backoff sleep")
	}
}

func TestRetryBackoffDoublesUpToMax(t *testing.T) {
	// Observable behaviour, not internals: 4 attempts at Base=1ms,
	// Max=2ms sleep 1+2+2 = 5ms at least.
	start := time.Now()
	Retry(context.Background(), RetryPolicy{Attempts: 4, Base: time.Millisecond, Max: 2 * time.Millisecond},
		func() error { return errors.New("x") })
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Errorf("4 attempts finished in %v, want >= 5ms of backoff", d)
	}
}
