// Package resilience holds the request-lifecycle guardrails of the
// serving path: a bounded-concurrency admission gate with a short wait
// queue (load shedding instead of unbounded queueing), a panic-recovery
// HTTP middleware, and deadline-budget helpers. The paper's Step 1 is
// quadratic in K, so a single expensive query can pin a core for seconds;
// these pieces make sure such queries are admitted deliberately, can be
// cancelled cooperatively (see core.ComputeScoresCtx / core.SelectCtx),
// and never take the process down.
package resilience

import (
	"context"
	"errors"
	"time"
)

// ErrShed is returned by Gate.Acquire when a request is rejected by
// admission control: either the wait queue is full, or the request waited
// longer than the gate's maximum queue time. HTTP handlers should map it
// to 503 with a Retry-After hint.
var ErrShed = errors.New("resilience: request shed by admission control")

// Remaining reports the time left before ctx's deadline. ok is false when
// ctx carries no deadline (remaining is then meaningless and zero).
func Remaining(ctx context.Context) (remaining time.Duration, ok bool) {
	d, ok := ctx.Deadline()
	if !ok {
		return 0, false
	}
	return time.Until(d), true
}
