package resilience

import (
	"fmt"
	"net/http"
	"runtime/debug"
)

// Recover wraps next so that a panicking handler yields a 500 JSON error
// and a logged stack trace instead of killing the connection-serving
// goroutine's request (net/http would otherwise close the connection with
// no response, and an unprotected panic in user middleware would crash the
// process). http.ErrAbortHandler is re-panicked, preserving net/http's
// idiom for deliberately aborting a response. If the handler already wrote
// a response before panicking, the 500 status cannot be applied; the stack
// is still logged.
func Recover(next http.Handler, logf func(format string, args ...any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			if logf != nil {
				logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintln(w, `{"error":"internal server error"}`)
		}()
		next.ServeHTTP(w, r)
	})
}
