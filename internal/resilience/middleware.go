package resilience

import (
	"fmt"
	"net/http"
	"runtime/debug"
	"sync/atomic"
)

// A Recoverer wraps a handler so that a panicking request yields a 500
// JSON error and a logged stack trace instead of killing the
// connection-serving goroutine's request (net/http would otherwise close
// the connection with no response, and an unprotected panic in user
// middleware would crash the process). Every recovered panic is counted;
// servers expose the count under /stats and as a metric.
// http.ErrAbortHandler is re-panicked, preserving net/http's idiom for
// deliberately aborting a response. If the handler already wrote a
// response before panicking, the 500 status cannot be applied; the stack
// is still logged and the panic still counted.
type Recoverer struct {
	next   http.Handler
	logf   func(format string, args ...any)
	panics atomic.Uint64
}

// NewRecoverer wraps next; logf (may be nil) receives the panic reports.
func NewRecoverer(next http.Handler, logf func(format string, args ...any)) *Recoverer {
	return &Recoverer{next: next, logf: logf}
}

// Panics returns the number of panics recovered so far.
func (rc *Recoverer) Panics() uint64 { return rc.panics.Load() }

// ServeHTTP implements http.Handler.
func (rc *Recoverer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == http.ErrAbortHandler {
			panic(rec)
		}
		rc.panics.Add(1)
		if rc.logf != nil {
			rc.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintln(w, `{"error":"internal server error"}`)
	}()
	rc.next.ServeHTTP(w, r)
}

// Recover wraps next in a Recoverer, for callers that don't need the
// panic count.
func Recover(next http.Handler, logf func(format string, args ...any)) http.Handler {
	return NewRecoverer(next, logf)
}
