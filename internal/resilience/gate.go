package resilience

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Gate is a bounded-concurrency admission controller: at most maxInFlight
// requests hold a slot at once, at most maxQueue more may wait for a slot,
// and a waiter is shed after maxWait. Everything beyond that is rejected
// immediately with ErrShed — the server degrades by refusing work it
// cannot finish in time instead of queueing unboundedly.
type Gate struct {
	slots   chan struct{} // tokens held by in-flight requests
	queue   chan struct{} // tokens held by waiters
	maxWait time.Duration

	// Lifetime outcome counters, exported via Stats for /stats and the
	// Prometheus registry.
	admitted      atomic.Uint64 // successful Acquires
	shed          atomic.Uint64 // rejected immediately: wait queue full
	queueTimeouts atomic.Uint64 // rejected after waiting maxWait in the queue
	cancelled     atomic.Uint64 // caller's context terminated while queued
}

// NewGate returns a gate admitting maxInFlight concurrent requests with a
// wait queue of maxQueue and a maximum queue time of maxWait. Zero or
// negative values select the defaults: 2×GOMAXPROCS in flight, a queue of
// the same size, and a 1s maximum wait.
func NewGate(maxInFlight, maxQueue int, maxWait time.Duration) *Gate {
	if maxInFlight <= 0 {
		maxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if maxQueue <= 0 {
		maxQueue = maxInFlight
	}
	if maxWait <= 0 {
		maxWait = time.Second
	}
	return &Gate{
		slots:   make(chan struct{}, maxInFlight),
		queue:   make(chan struct{}, maxQueue),
		maxWait: maxWait,
	}
}

// Acquire admits the request or rejects it. On success it returns a
// release function that must be called exactly once when the request
// finishes (calling it more than once is safe). It fails with ErrShed when
// the queue is full or the wait exceeds the gate's maximum, and with
// ctx.Err() when the caller's context terminates while queued — so a
// deadline budget spent waiting in the queue is charged to the request.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a slot is free.
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return g.releaseFunc(), nil
	default:
	}
	// Slow path: take a queue token or shed immediately.
	select {
	case g.queue <- struct{}{}:
	default:
		g.shed.Add(1)
		return nil, ErrShed
	}
	defer func() { <-g.queue }()
	timer := time.NewTimer(g.maxWait)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return g.releaseFunc(), nil
	case <-timer.C:
		g.queueTimeouts.Add(1)
		return nil, ErrShed
	case <-ctx.Done():
		g.cancelled.Add(1)
		return nil, ctx.Err()
	}
}

// Do admits the request, runs fn while holding the admission slot, and
// releases the slot when fn returns (or panics). It is the convenience
// form batch-style callers use to run many units of work through one
// gate: admission failures are returned without running fn, so every
// element of a batch is individually subject to the same load-shedding
// policy as interactive requests.
func (g *Gate) Do(ctx context.Context, fn func() error) error {
	release, err := g.Acquire(ctx)
	if err != nil {
		return err
	}
	defer release()
	return fn()
}

// GateStats is a snapshot of a gate's lifetime outcome counters and
// current occupancy. The counters are read individually, so a snapshot
// taken under concurrent traffic is consistent per field, not across
// fields.
type GateStats struct {
	// Admitted counts successful Acquires (fast path and queued).
	Admitted uint64
	// Shed counts requests rejected immediately because the wait queue
	// was full.
	Shed uint64
	// QueueTimeouts counts requests rejected after waiting the gate's
	// maximum queue time (also reported as ErrShed to the caller).
	QueueTimeouts uint64
	// Cancelled counts requests whose context terminated while queued.
	Cancelled uint64
	// InFlight, Queued, Capacity and QueueCapacity describe the current
	// occupancy and the configured bounds.
	InFlight, Queued, Capacity, QueueCapacity int
}

// Stats returns a snapshot of the gate's counters and occupancy.
func (g *Gate) Stats() GateStats {
	return GateStats{
		Admitted:      g.admitted.Load(),
		Shed:          g.shed.Load(),
		QueueTimeouts: g.queueTimeouts.Load(),
		Cancelled:     g.cancelled.Load(),
		InFlight:      g.InFlight(),
		Queued:        g.Queued(),
		Capacity:      g.Capacity(),
		QueueCapacity: cap(g.queue),
	}
}

func (g *Gate) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(func() { <-g.slots }) }
}

// InFlight returns the number of requests currently holding a slot.
func (g *Gate) InFlight() int { return len(g.slots) }

// Queued returns the number of requests currently waiting for a slot.
func (g *Gate) Queued() int { return len(g.queue) }

// Capacity returns the maximum number of concurrent in-flight requests.
func (g *Gate) Capacity() int { return cap(g.slots) }
