package resilience

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRecoverConvertsPanicTo500(t *testing.T) {
	var logged string
	h := Recover(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("injected fault")
	}), func(format string, args ...any) { logged = fmt.Sprintf(format, args...) })

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "internal server error") {
		t.Errorf("body = %q", rec.Body.String())
	}
	if !strings.Contains(logged, "injected fault") || !strings.Contains(logged, "middleware_test.go") {
		t.Errorf("log missing panic value or stack: %q", logged)
	}
}

func TestRecoverPassesThroughNormalResponses(t *testing.T) {
	h := Recover(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d, want 418", rec.Code)
	}
}

func TestRecoverRepanicsAbortHandler(t *testing.T) {
	h := Recover(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}), nil)
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Error("http.ErrAbortHandler was swallowed")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	t.Error("expected re-panic")
}

// TestRecovererCountsPanics: the panic counter advances once per
// recovered panic and is untouched by clean requests; ErrAbortHandler
// re-panics without being counted.
func TestRecovererCountsPanics(t *testing.T) {
	calls := 0
	rc := NewRecoverer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls++
		if calls <= 2 {
			panic(fmt.Sprintf("fault %d", calls))
		}
		w.WriteHeader(http.StatusOK)
	}), func(string, ...any) {})

	for i := 0; i < 3; i++ {
		rc.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	}
	if got := rc.Panics(); got != 2 {
		t.Errorf("Panics() = %d, want 2", got)
	}

	abort := NewRecoverer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}), nil)
	func() {
		defer func() { recover() }()
		abort.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	}()
	if abort.Panics() != 0 {
		t.Errorf("ErrAbortHandler counted as a recovered panic")
	}
}

func TestRemaining(t *testing.T) {
	if _, ok := Remaining(context.Background()); ok {
		t.Error("background context reported a deadline")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	d, ok := Remaining(ctx)
	if !ok || d <= 0 || d > time.Minute {
		t.Errorf("Remaining = %v, %v", d, ok)
	}
}
