package resilience

import (
	"context"
	"errors"
	"time"
)

// RetryPolicy bounds a retry loop: at most Attempts tries, sleeping Base
// between the first two and doubling up to Max. The zero value means one
// try (no retries) — Retry never silently spins forever.
type RetryPolicy struct {
	// Attempts is the total number of tries, including the first. Values
	// below 1 are treated as 1.
	Attempts int
	// Base is the sleep before the first retry; it doubles each retry.
	Base time.Duration
	// Max caps the doubled sleep. 0 means no cap.
	Max time.Duration
}

// permanentError marks an error Retry must not retry.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Retry returns it immediately instead of
// retrying; errors.Is/As still reach the wrapped error.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Retry runs fn until it succeeds, returns a Permanent error, exhausts
// p.Attempts, or ctx terminates (during a backoff sleep; fn itself is
// responsible for observing ctx). The last error is returned, unwrapped
// from any Permanent marker. Retry is the shared shape for transient
// I/O failures — WAL appends, snapshot writes — where a bounded number
// of backed-off re-tries is cheaper than failing the request outright.
func Retry(ctx context.Context, p RetryPolicy, fn func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := p.Base
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			if backoff > 0 {
				t := time.NewTimer(backoff)
				select {
				case <-ctx.Done():
					t.Stop()
					return ctx.Err()
				case <-t.C:
				}
				backoff *= 2
				if p.Max > 0 && backoff > p.Max {
					backoff = p.Max
				}
			} else if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		err = fn()
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
	}
	return err
}
