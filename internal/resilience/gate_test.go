package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGateAdmitsUpToCapacity(t *testing.T) {
	g := NewGate(3, 1, 50*time.Millisecond)
	var releases []func()
	for i := 0; i < 3; i++ {
		rel, err := g.Acquire(context.Background())
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		releases = append(releases, rel)
	}
	if got := g.InFlight(); got != 3 {
		t.Errorf("InFlight = %d, want 3", got)
	}
	for _, rel := range releases {
		rel()
	}
	if got := g.InFlight(); got != 0 {
		t.Errorf("InFlight after release = %d, want 0", got)
	}
}

func TestGateShedsWhenQueueFull(t *testing.T) {
	g := NewGate(1, 1, time.Second)
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	// One waiter fits in the queue; park it there.
	waiterIn := make(chan struct{})
	waiterOut := make(chan error, 1)
	go func() {
		close(waiterIn)
		r, err := g.Acquire(context.Background())
		if err == nil {
			r()
		}
		waiterOut <- err
	}()
	<-waiterIn
	// Give the waiter time to take the queue token.
	for i := 0; i < 100 && g.Queued() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if g.Queued() != 1 {
		t.Fatalf("Queued = %d, want 1", g.Queued())
	}

	// The queue is now full: the next request must shed immediately.
	start := time.Now()
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("acquire over full queue: err = %v, want ErrShed", err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Errorf("shed took %v; want immediate", elapsed)
	}

	rel() // free the slot: the parked waiter gets in
	if err := <-waiterOut; err != nil {
		t.Errorf("queued waiter: %v, want admission", err)
	}
}

func TestGateShedsAfterMaxWait(t *testing.T) {
	g := NewGate(1, 1, 20*time.Millisecond)
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed after max wait", err)
	}
}

func TestGateHonoursContextWhileQueued(t *testing.T) {
	g := NewGate(1, 1, time.Minute)
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := g.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestGateReleaseIdempotent(t *testing.T) {
	g := NewGate(1, 1, time.Second)
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // must not free a second slot
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d, want 0", got)
	}
	// The single slot is reusable, and double-release did not corrupt it.
	rel2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel2()
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed (capacity still 1)", err)
	}
}

// TestGateStats drives the gate through every admission outcome and
// checks the counters: fast-path admission, queue-full shed, queue
// timeout, and cancellation while queued.
func TestGateStats(t *testing.T) {
	g := NewGate(1, 1, 30*time.Millisecond)
	if gs := g.Stats(); gs != (GateStats{Capacity: 1, QueueCapacity: 1}) {
		t.Fatalf("fresh gate stats = %+v", gs)
	}

	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Queue timeout: the slot is held, maxWait elapses.
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}

	// Queue-full shed: park one waiter, then overflow the queue.
	waiterOut := make(chan error, 1)
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	go func() {
		_, err := g.Acquire(waiterCtx)
		waiterOut <- err
	}()
	for i := 0; i < 1000 && g.Queued() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed over full queue", err)
	}
	// Cancellation while queued.
	cancelWaiter()
	if err := <-waiterOut; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	rel()

	gs := g.Stats()
	want := GateStats{Admitted: 1, Shed: 1, QueueTimeouts: 1, Cancelled: 1, Capacity: 1, QueueCapacity: 1}
	if gs != want {
		t.Errorf("stats = %+v, want %+v", gs, want)
	}
}

func TestGateConcurrentChurn(t *testing.T) {
	g := NewGate(4, 4, 100*time.Millisecond)
	var wg sync.WaitGroup
	var admitted, shed int
	var mu sync.Mutex
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := g.Acquire(context.Background())
			mu.Lock()
			if err != nil {
				shed++
			} else {
				admitted++
			}
			mu.Unlock()
			if err == nil {
				time.Sleep(time.Millisecond)
				rel()
			}
		}()
	}
	wg.Wait()
	if admitted == 0 {
		t.Error("no request admitted")
	}
	if admitted+shed != 64 {
		t.Errorf("admitted %d + shed %d != 64", admitted, shed)
	}
	if g.InFlight() != 0 || g.Queued() != 0 {
		t.Errorf("gate not drained: inflight %d queued %d", g.InFlight(), g.Queued())
	}
}

func TestGateDo(t *testing.T) {
	g := NewGate(1, 0, 10*time.Millisecond)

	// Do runs fn while holding a slot and releases it afterwards.
	var sawInFlight int
	if err := g.Do(context.Background(), func() error {
		sawInFlight = g.InFlight()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sawInFlight != 1 {
		t.Errorf("InFlight during fn = %d, want 1", sawInFlight)
	}
	if g.InFlight() != 0 {
		t.Errorf("InFlight after Do = %d, want 0", g.InFlight())
	}

	// fn errors pass through, and the slot is still released.
	boom := errors.New("boom")
	if err := g.Do(context.Background(), func() error { return boom }); !errors.Is(err, boom) {
		t.Errorf("err = %v, want the fn error", err)
	}
	if g.InFlight() != 0 {
		t.Errorf("InFlight after failing fn = %d, want 0", g.InFlight())
	}

	// With the only slot held, Do sheds without running fn.
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	err = g.Do(context.Background(), func() error { ran = true; return nil })
	if !errors.Is(err, ErrShed) {
		t.Errorf("err = %v, want ErrShed", err)
	}
	if ran {
		t.Error("fn ran despite shed admission")
	}
	rel()
}
