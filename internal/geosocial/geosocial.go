// Package geosocial implements a geo-social retrieval substrate in the
// style of Geo-Social Keyword Search (Ahuja, Armenatzoglou, Papadias &
// Fakas, SSTD 2015), which the paper cites as one source of its relevance
// model, and matching the paper's motivating data sources (Gowalla-style
// check-in networks). Users form a friendship graph and check in at
// places; the relevance of a place to a (user, location, keywords) query
// combines textual match, spatial proximity, and social affinity — how
// much the querying user's friends (and friends of friends) favour the
// place. The retrieved set feeds the proportionality framework unchanged.
package geosocial

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/textctx"
)

// UserID identifies a user in the social network.
type UserID int32

// PlaceID identifies a place.
type PlaceID int32

// Place is a checked-in venue with a tag context.
type Place struct {
	ID   PlaceID
	Name string
	Loc  geo.Point
	Tags textctx.Set
}

// Network is a geo-social network: users, friendships, places, and
// check-ins. It is safe for concurrent reads after loading.
type Network struct {
	users   int
	friends [][]UserID
	places  []Place
	// checkins[p] lists the users who checked in at place p (with
	// multiplicity).
	checkins [][]UserID
	// userCheckins[u] lists the places u checked in at.
	userCheckins [][]PlaceID
}

// NewNetwork returns an empty network.
func NewNetwork() *Network { return &Network{} }

// AddUser adds a user and returns its id.
func (n *Network) AddUser() UserID {
	id := UserID(n.users)
	n.users++
	n.friends = append(n.friends, nil)
	n.userCheckins = append(n.userCheckins, nil)
	return id
}

// AddFriendship records an undirected friendship between a and b.
func (n *Network) AddFriendship(a, b UserID) error {
	if !n.validUser(a) || !n.validUser(b) {
		return fmt.Errorf("geosocial: friendship (%d, %d) references unknown user", a, b)
	}
	if a == b {
		return fmt.Errorf("geosocial: self-friendship at user %d", a)
	}
	n.friends[a] = append(n.friends[a], b)
	n.friends[b] = append(n.friends[b], a)
	return nil
}

// AddPlace registers a venue and returns its id.
func (n *Network) AddPlace(name string, loc geo.Point, tags textctx.Set) (PlaceID, error) {
	if !loc.Valid() {
		return 0, fmt.Errorf("geosocial: invalid location %v for %q", loc, name)
	}
	id := PlaceID(len(n.places))
	n.places = append(n.places, Place{ID: id, Name: name, Loc: loc, Tags: tags})
	n.checkins = append(n.checkins, nil)
	return id, nil
}

// AddCheckin records that u visited p.
func (n *Network) AddCheckin(u UserID, p PlaceID) error {
	if !n.validUser(u) {
		return fmt.Errorf("geosocial: unknown user %d", u)
	}
	if !n.validPlace(p) {
		return fmt.Errorf("geosocial: unknown place %d", p)
	}
	n.checkins[p] = append(n.checkins[p], u)
	n.userCheckins[u] = append(n.userCheckins[u], p)
	return nil
}

func (n *Network) validUser(u UserID) bool   { return u >= 0 && int(u) < n.users }
func (n *Network) validPlace(p PlaceID) bool { return p >= 0 && int(p) < len(n.places) }

// NumUsers returns the number of users.
func (n *Network) NumUsers() int { return n.users }

// NumPlaces returns the number of places.
func (n *Network) NumPlaces() int { return len(n.places) }

// Place returns the place with the given id.
func (n *Network) Place(p PlaceID) (Place, bool) {
	if !n.validPlace(p) {
		return Place{}, false
	}
	return n.places[p], true
}

// Friends returns u's friends; the slice must not be modified.
func (n *Network) Friends(u UserID) []UserID {
	if !n.validUser(u) {
		return nil
	}
	return n.friends[u]
}

// Query is a geo-social keyword query.
type Query struct {
	// User is the querying user (social affinity is computed from their
	// neighbourhood).
	User UserID
	// Loc is the query location.
	Loc geo.Point
	// Keywords is the textual side of the query.
	Keywords textctx.Set
}

// Weights are the relevance mixture: rF = Text·J(kw, tags) +
// Spatial·(1 − dist/maxDist) + Social·affinity. They must be
// non-negative and sum to 1.
type Weights struct {
	Text, Spatial, Social float64
}

// DefaultWeights weighs the three components equally.
func DefaultWeights() Weights { return Weights{Text: 1.0 / 3, Spatial: 1.0 / 3, Social: 1.0 / 3} }

func (w Weights) validate() error {
	if w.Text < 0 || w.Spatial < 0 || w.Social < 0 {
		return fmt.Errorf("geosocial: negative weight in %+v", w)
	}
	if s := w.Text + w.Spatial + w.Social; math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("geosocial: weights sum to %g, want 1", s)
	}
	return nil
}

// socialAffinity returns, for every place, the normalised check-in mass
// of u's 1- and 2-hop neighbourhood (friends count double the weight of
// friends-of-friends).
func (n *Network) socialAffinity(u UserID) []float64 {
	aff := make([]float64, len(n.places))
	if !n.validUser(u) {
		return aff
	}
	weight := make(map[UserID]float64)
	for _, f := range n.friends[u] {
		weight[f] += 2
		for _, ff := range n.friends[f] {
			if ff != u {
				weight[ff] += 1
			}
		}
	}
	var max float64
	for friend, w := range weight {
		for _, p := range n.userCheckins[friend] {
			aff[p] += w
			if aff[p] > max {
				max = aff[p]
			}
		}
	}
	if max > 0 {
		for i := range aff {
			aff[i] /= max
		}
	}
	return aff
}

// Retrieve returns the K most relevant places for q under the weight
// mixture, as core.Places ready for the proportionality framework.
// maxDist normalises distances; 0 means the largest distance from q to
// any place.
func (n *Network) Retrieve(q Query, K int, w Weights, maxDist float64) ([]core.Place, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	if !q.Loc.Valid() {
		return nil, fmt.Errorf("geosocial: invalid query location %v", q.Loc)
	}
	if K <= 0 {
		return nil, fmt.Errorf("geosocial: K = %d must be positive", K)
	}
	if len(n.places) == 0 {
		return nil, fmt.Errorf("geosocial: no places")
	}
	if maxDist <= 0 {
		for _, p := range n.places {
			if d := p.Loc.Dist(q.Loc); d > maxDist {
				maxDist = d
			}
		}
		if maxDist == 0 {
			maxDist = 1
		}
	}
	aff := n.socialAffinity(q.User)
	type scored struct {
		idx int
		rel float64
	}
	all := make([]scored, len(n.places))
	for i, p := range n.places {
		prox := 1 - p.Loc.Dist(q.Loc)/maxDist
		if prox < 0 {
			prox = 0
		}
		rel := w.Text*q.Keywords.Jaccard(p.Tags) + w.Spatial*prox + w.Social*aff[i]
		all[i] = scored{idx: i, rel: rel}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].rel != all[b].rel {
			return all[a].rel > all[b].rel
		}
		return all[a].idx < all[b].idx
	})
	if K > len(all) {
		K = len(all)
	}
	out := make([]core.Place, K)
	for i := 0; i < K; i++ {
		p := n.places[all[i].idx]
		out[i] = core.Place{ID: p.Name, Loc: p.Loc, Rel: all[i].rel, Context: p.Tags}
	}
	return out, nil
}
