package geosocial

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/textctx"
)

// gowallaLike builds a miniature check-in network: three friend circles,
// each favouring a different venue cluster.
func gowallaLike(t testing.TB) (*Network, *textctx.Dict, []UserID) {
	t.Helper()
	n := NewNetwork()
	d := textctx.NewDict()
	users := make([]UserID, 12)
	for i := range users {
		users[i] = n.AddUser()
	}
	// Circles: {0..3}, {4..7}, {8..11}.
	for c := 0; c < 3; c++ {
		base := c * 4
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if err := n.AddFriendship(users[base+i], users[base+j]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	kinds := []struct {
		tag string
		x   float64
	}{{"coffee", 1}, {"ramen", 5}, {"books", 9}}
	var places []PlaceID
	for c, k := range kinds {
		for i := 0; i < 4; i++ {
			id, err := n.AddPlace(
				k.tag+"-"+string(rune('a'+i)),
				geo.Pt(k.x+float64(i)*0.1, 1),
				textctx.NewSetFromStrings(d, []string{k.tag, "venue"}),
			)
			if err != nil {
				t.Fatal(err)
			}
			places = append(places, id)
			// Circle c checks in heavily at its own cluster.
			for u := 0; u < 4; u++ {
				if err := n.AddCheckin(users[c*4+u], id); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	_ = places
	return n, d, users
}

func TestNetworkValidation(t *testing.T) {
	n := NewNetwork()
	u := n.AddUser()
	if err := n.AddFriendship(u, u); err == nil {
		t.Error("self-friendship accepted")
	}
	if err := n.AddFriendship(u, 99); err == nil {
		t.Error("unknown friend accepted")
	}
	if _, err := n.AddPlace("bad", geo.Pt(math.NaN(), 0), textctx.Set{}); err == nil {
		t.Error("NaN place accepted")
	}
	if err := n.AddCheckin(99, 0); err == nil {
		t.Error("unknown user check-in accepted")
	}
	p, err := n.AddPlace("ok", geo.Pt(0, 0), textctx.Set{})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddCheckin(u, p+5); err == nil {
		t.Error("unknown place check-in accepted")
	}
	if _, ok := n.Place(42); ok {
		t.Error("unknown place found")
	}
	if n.Friends(77) != nil {
		t.Error("unknown user has friends")
	}
}

func TestWeightsValidation(t *testing.T) {
	n, d, users := gowallaLike(t)
	q := Query{User: users[0], Loc: geo.Pt(5, 1), Keywords: textctx.NewSetFromStrings(d, []string{"venue"})}
	bad := []Weights{
		{Text: 0.5, Spatial: 0.5, Social: 0.5},
		{Text: -0.2, Spatial: 0.6, Social: 0.6},
	}
	for _, w := range bad {
		if _, err := n.Retrieve(q, 5, w, 0); err == nil {
			t.Errorf("weights %+v accepted", w)
		}
	}
	if _, err := n.Retrieve(q, 0, DefaultWeights(), 0); err == nil {
		t.Error("K = 0 accepted")
	}
	if _, err := n.Retrieve(Query{Loc: geo.Pt(math.Inf(1), 0)}, 5, DefaultWeights(), 0); err == nil {
		t.Error("invalid location accepted")
	}
	if _, err := NewNetwork().Retrieve(q, 5, DefaultWeights(), 0); err == nil {
		t.Error("empty network accepted")
	}
}

// TestSocialAffinityShapesRanking: with an equidistant, equally-matching
// choice, the querying user's circle pulls the ranking towards the venues
// their friends frequent.
func TestSocialAffinityShapesRanking(t *testing.T) {
	n, d, users := gowallaLike(t)
	kw := textctx.NewSetFromStrings(d, []string{"venue"})
	// Query from the middle so every cluster is spatially comparable;
	// social weight dominates.
	w := Weights{Text: 0.1, Spatial: 0.1, Social: 0.8}
	for circle := 0; circle < 3; circle++ {
		q := Query{User: users[circle*4], Loc: geo.Pt(5, 1), Keywords: kw}
		got, err := n.Retrieve(q, 4, w, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantTag := []string{"coffee", "ramen", "books"}[circle]
		for _, p := range got {
			words := p.Context.Words(d)
			found := false
			for _, wd := range words {
				if wd == wantTag {
					found = true
				}
			}
			if !found {
				t.Fatalf("circle %d: top-4 contains %q (%v), want only %s venues",
					circle, p.ID, words, wantTag)
			}
		}
	}
}

// TestNoSocialSignalFallsBackToGeoText: a user with no friends ranks by
// text and proximity only.
func TestNoSocialSignalFallsBackToGeoText(t *testing.T) {
	n, d, _ := gowallaLike(t)
	loner := n.AddUser()
	kw := textctx.NewSetFromStrings(d, []string{"ramen"})
	q := Query{User: loner, Loc: geo.Pt(5, 1), Keywords: kw}
	got, err := n.Retrieve(q, 3, DefaultWeights(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range got {
		if p.Context.Words(d)[0] != "ramen" && !contains(p.Context.Words(d), "ramen") {
			t.Fatalf("loner's top results should be ramen venues, got %q", p.ID)
		}
	}
}

func contains(words []string, w string) bool {
	for _, x := range words {
		if x == w {
			return true
		}
	}
	return false
}

// TestFeedsProportionalSelection: the retrieved geo-social set flows into
// the proportionality framework end to end.
func TestFeedsProportionalSelection(t *testing.T) {
	n, d, users := gowallaLike(t)
	kw := textctx.NewSetFromStrings(d, []string{"venue"})
	q := Query{User: users[0], Loc: geo.Pt(5, 1), Keywords: kw}
	places, err := n.Retrieve(q, 12, DefaultWeights(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := core.ComputeScores(q.Loc, places, core.ScoreOptions{Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := core.ABP(ss, core.Params{K: 4, Lambda: 0.5, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Indices) != 4 {
		t.Fatalf("|R| = %d", len(sel.Indices))
	}
	// A proportional pick over three equal-size clusters must not take
	// all four from one cluster.
	tags := map[string]int{}
	for _, i := range sel.Indices {
		tags[ss.Places[i].Context.Words(d)[0]]++
	}
	for tag, c := range tags {
		if c == 4 {
			t.Errorf("selection collapsed onto %s only", tag)
		}
	}
}

// TestRetrieveDeterministic: equal scores break ties by place order.
func TestRetrieveDeterministic(t *testing.T) {
	n, d, users := gowallaLike(t)
	kw := textctx.NewSetFromStrings(d, []string{"venue"})
	q := Query{User: users[0], Loc: geo.Pt(5, 1), Keywords: kw}
	a, err := n.Retrieve(q, 6, DefaultWeights(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Retrieve(q, 6, DefaultWeights(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("retrieval not deterministic")
		}
	}
}

func BenchmarkRetrieve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := NewNetwork()
	d := textctx.NewDict()
	users := make([]UserID, 2000)
	for i := range users {
		users[i] = n.AddUser()
	}
	for i := 0; i < 6000; i++ {
		a, c := users[rng.Intn(len(users))], users[rng.Intn(len(users))]
		if a != c {
			_ = n.AddFriendship(a, c)
		}
	}
	for i := 0; i < 3000; i++ {
		tags := textctx.NewSetFromStrings(d, []string{
			"tag" + string(rune('a'+i%20)), "venue"})
		p, err := n.AddPlace("p", geo.Pt(rng.Float64()*100, rng.Float64()*100), tags)
		if err != nil {
			b.Fatal(err)
		}
		for c := 0; c < 3; c++ {
			_ = n.AddCheckin(users[rng.Intn(len(users))], p)
		}
	}
	q := Query{User: users[0], Loc: geo.Pt(50, 50), Keywords: textctx.NewSetFromStrings(d, []string{"venue"})}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Retrieve(q, 100, DefaultWeights(), 0); err != nil {
			b.Fatal(err)
		}
	}
}
