package rdf

import (
	"fmt"
	"sort"

	"repro/internal/textctx"
)

// FilteredOSOptions extends OSOptions with predicate and class filters —
// the "important entities" selection of the OS paradigm: a spatial OS
// keeps only the neighbour kinds that describe the root (e.g. types and
// collections), dropping housekeeping links.
type FilteredOSOptions struct {
	OSOptions
	// Predicates restricts traversal to edges whose predicate name is in
	// the set; empty means all predicates.
	Predicates []string
	// Classes restricts collected neighbours to entities of the given
	// classes; empty means all classes.
	Classes []string
}

// SpatialOSFiltered builds a spatial object summary like SpatialOS, but
// honouring predicate and class filters.
func (g *Graph) SpatialOSFiltered(root EntityID, dict *textctx.Dict, opt FilteredOSOptions) (ObjectSummary, error) {
	e, ok := g.Entity(root)
	if !ok {
		return ObjectSummary{}, fmt.Errorf("rdf: unknown entity %d", root)
	}
	if !e.Spatial {
		return ObjectSummary{}, fmt.Errorf("rdf: entity %d (%q) is not spatial", root, e.Label)
	}
	if dict == nil {
		dict = textctx.NewDict()
	}
	depth := opt.MaxDepth
	if depth <= 0 {
		depth = 2
	}

	var predOK func(PredID) bool
	if len(opt.Predicates) == 0 {
		predOK = func(PredID) bool { return true }
	} else {
		allowed := make(map[PredID]bool, len(opt.Predicates))
		for _, name := range opt.Predicates {
			if id, ok := g.preds[name]; ok {
				allowed[id] = true
			}
		}
		predOK = func(p PredID) bool { return allowed[p] }
	}
	var classOK func(string) bool
	if len(opt.Classes) == 0 {
		classOK = func(string) bool { return true }
	} else {
		allowed := make(map[string]bool, len(opt.Classes))
		for _, c := range opt.Classes {
			allowed[c] = true
		}
		classOK = func(c string) bool { return allowed[c] }
	}

	visited := map[EntityID]bool{root: true}
	frontier := []EntityID{root}
	var nodes []EntityID
	for d := 0; d < depth && len(frontier) > 0; d++ {
		var next []EntityID
		expand := func(u EntityID, edges []Edge) {
			for _, ed := range edges {
				if !predOK(ed.Pred) || visited[ed.To] {
					continue
				}
				visited[ed.To] = true
				next = append(next, ed.To)
			}
		}
		for _, u := range frontier {
			expand(u, g.out[u])
			expand(u, g.in[u])
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, n := range next {
			if classOK(g.entities[n].Class) {
				nodes = append(nodes, n)
			}
		}
		if opt.MaxNodes > 0 && len(nodes) >= opt.MaxNodes {
			nodes = nodes[:opt.MaxNodes]
			break
		}
		frontier = next
	}
	ids := make([]textctx.ItemID, len(nodes))
	for i, n := range nodes {
		ids[i] = dict.Intern(g.entities[n].Label)
	}
	return ObjectSummary{Root: root, Nodes: nodes, Context: textctx.NewSet(ids...)}, nil
}
