package rdf

import (
	"bytes"
	"testing"

	"repro/internal/textctx"
)

func TestSpatialOSFilteredByPredicate(t *testing.T) {
	g, ids := museumGraph(t)
	dict := textctx.NewDict()
	// Only "type" edges: the Swedish History Museum's OS keeps its two
	// type entities and drops the collections.
	os, err := g.SpatialOSFiltered(ids["Swedish History Museum"], dict, FilteredOSOptions{
		OSOptions:  OSOptions{MaxDepth: 1},
		Predicates: []string{"type"},
	})
	if err != nil {
		t.Fatal(err)
	}
	words := os.Context.Words(dict)
	if len(words) != 2 {
		t.Fatalf("filtered context = %v, want 2 type entities", words)
	}
	for _, w := range words {
		if w != "History museum" && w != "Nordic museum" {
			t.Errorf("unexpected item %q", w)
		}
	}
	// An unknown predicate filters everything out.
	os, err = g.SpatialOSFiltered(ids["Swedish History Museum"], dict, FilteredOSOptions{
		OSOptions:  OSOptions{MaxDepth: 2},
		Predicates: []string{"no-such-predicate"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if os.Context.Len() != 0 {
		t.Errorf("unknown predicate produced %d items", os.Context.Len())
	}
}

func TestSpatialOSFilteredByClass(t *testing.T) {
	g, ids := museumGraph(t)
	dict := textctx.NewDict()
	os, err := g.SpatialOSFiltered(ids["Nobel Museum"], dict, FilteredOSOptions{
		OSOptions: OSOptions{MaxDepth: 1},
		Classes:   []string{"Collection"},
	})
	if err != nil {
		t.Fatal(err)
	}
	words := os.Context.Words(dict)
	if len(words) != 1 || words[0] != "Laureates works" {
		t.Errorf("class-filtered context = %v", words)
	}
}

func TestSpatialOSFilteredMatchesUnfiltered(t *testing.T) {
	g, ids := museumGraph(t)
	d1, d2 := textctx.NewDict(), textctx.NewDict()
	a, err := g.SpatialOS(ids["The Nordic Museum"], d1, OSOptions{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.SpatialOSFiltered(ids["The Nordic Museum"], d2, FilteredOSOptions{
		OSOptions: OSOptions{MaxDepth: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatal("node order differs between filtered (no filters) and unfiltered")
		}
	}
}

func TestSpatialOSFilteredErrors(t *testing.T) {
	g, ids := museumGraph(t)
	if _, err := g.SpatialOSFiltered(999, nil, FilteredOSOptions{}); err == nil {
		t.Error("unknown root accepted")
	}
	if _, err := g.SpatialOSFiltered(ids["History museum"], nil, FilteredOSOptions{}); err == nil {
		t.Error("non-spatial root accepted")
	}
}

func TestGraphSaveLoadRoundTrip(t *testing.T) {
	g, ids := museumGraph(t)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats() != g2.Stats() {
		t.Fatalf("stats differ: %v vs %v", g.Stats(), g2.Stats())
	}
	// Entity identity and structure preserved.
	for label, id := range ids {
		e1, _ := g.Entity(id)
		e2, ok := g2.Entity(id)
		if !ok || e1 != e2 {
			t.Fatalf("entity %q differs after round trip: %+v vs %+v", label, e1, e2)
		}
		if len(g.OutEdges(id)) != len(g2.OutEdges(id)) {
			t.Fatalf("out-degree of %q differs", label)
		}
	}
	// Object summaries agree on the loaded graph.
	d1, d2 := textctx.NewDict(), textctx.NewDict()
	a, err := g.SpatialOS(ids["Nobel Museum"], d1, OSOptions{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g2.SpatialOS(ids["Nobel Museum"], d2, OSOptions{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	aw, bw := a.Context.Words(d1), b.Context.Words(d2)
	if len(aw) != len(bw) {
		t.Fatal("OS contexts differ after round trip")
	}
}

func TestLoadGraphGarbage(t *testing.T) {
	if _, err := LoadGraph(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage accepted")
	}
}
