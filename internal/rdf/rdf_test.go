package rdf

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/textctx"
)

// museumGraph builds a miniature version of the paper's Figure 1 DBpedia
// example: museums in Stockholm with attribute entities as neighbours.
func museumGraph(t testing.TB) (*Graph, map[string]EntityID) {
	t.Helper()
	g := NewGraph()
	ids := map[string]EntityID{}
	addPlace := func(label string, x, y float64) {
		id, err := g.AddSpatialEntity(label, "Museum", geo.Pt(x, y))
		if err != nil {
			t.Fatal(err)
		}
		ids[label] = id
	}
	addPlace("Swedish History Museum", 2, 1)
	addPlace("The Nordic Museum", 2.2, 0.8)
	addPlace("ABBA The Museum", 2.4, 0.6)
	addPlace("Nobel Museum", -1, -0.5)

	add := func(label, class string) {
		ids[label] = g.AddEntity(label, class)
	}
	add("History museum", "Type")
	add("Nordic museum", "Type")
	add("Viking collection", "Collection")
	add("Jewellery works", "Collection")
	add("Music museum", "Type")
	add("Natural science", "Type")
	add("Literature museum", "Type")
	add("Laureates works", "Collection")

	triple := func(s, p, o string) {
		if err := g.AddTriple(ids[s], p, ids[o]); err != nil {
			t.Fatal(err)
		}
	}
	triple("Swedish History Museum", "type", "History museum")
	triple("Swedish History Museum", "type", "Nordic museum")
	triple("Swedish History Museum", "collection", "Viking collection")
	triple("Swedish History Museum", "collection", "Jewellery works")
	triple("The Nordic Museum", "type", "History museum")
	triple("The Nordic Museum", "type", "Nordic museum")
	triple("The Nordic Museum", "collection", "Viking collection")
	triple("The Nordic Museum", "collection", "Jewellery works")
	triple("ABBA The Museum", "type", "Music museum")
	triple("Nobel Museum", "type", "Natural science")
	triple("Nobel Museum", "type", "Literature museum")
	triple("Nobel Museum", "collection", "Laureates works")
	return g, ids
}

func TestGraphBasics(t *testing.T) {
	g, ids := museumGraph(t)
	st := g.Stats()
	if st.Entities != 12 || st.SpatialEntities != 4 || st.Triples != 12 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.Predicates != 2 {
		t.Errorf("Predicates = %d, want 2 (type, collection)", st.Predicates)
	}
	if st.String() == "" {
		t.Error("empty Stats string")
	}
	e, ok := g.Entity(ids["Nobel Museum"])
	if !ok || !e.Spatial || e.Class != "Museum" {
		t.Errorf("Entity = %+v, %v", e, ok)
	}
	if _, ok := g.Entity(999); ok {
		t.Error("unknown entity found")
	}
	if got := len(g.OutEdges(ids["Swedish History Museum"])); got != 4 {
		t.Errorf("out-degree = %d, want 4", got)
	}
	if got := len(g.InEdges(ids["Viking collection"])); got != 2 {
		t.Errorf("in-degree of Viking collection = %d, want 2", got)
	}
	if g.OutEdges(999) != nil || g.InEdges(-1) != nil {
		t.Error("edges of unknown entity not nil")
	}
	pred := g.OutEdges(ids["Swedish History Museum"])[0].Pred
	if g.Predicate(pred) != "type" {
		t.Errorf("Predicate = %q", g.Predicate(pred))
	}
	if g.Predicate(99) != "" {
		t.Error("unknown predicate not empty")
	}
}

func TestAddTripleValidation(t *testing.T) {
	g := NewGraph()
	a := g.AddEntity("a", "X")
	if err := g.AddTriple(a, "p", 42); err == nil {
		t.Error("dangling object accepted")
	}
	if err := g.AddTriple(77, "p", a); err == nil {
		t.Error("dangling subject accepted")
	}
}

func TestAddSpatialEntityValidation(t *testing.T) {
	g := NewGraph()
	if _, err := g.AddSpatialEntity("bad", "X", geo.Pt(math.NaN(), 0)); err == nil {
		t.Error("NaN location accepted")
	}
}

func TestSpatialEntities(t *testing.T) {
	g, _ := museumGraph(t)
	sp := g.SpatialEntities()
	if len(sp) != 4 {
		t.Fatalf("SpatialEntities = %d, want 4", len(sp))
	}
	for _, id := range sp {
		e, _ := g.Entity(id)
		if !e.Spatial {
			t.Errorf("entity %d not spatial", id)
		}
	}
}

func TestSpatialOSFigure1(t *testing.T) {
	g, ids := museumGraph(t)
	dict := textctx.NewDict()
	os1, err := g.SpatialOS(ids["Swedish History Museum"], dict, OSOptions{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	words := map[string]bool{}
	for _, w := range os1.Context.Words(dict) {
		words[w] = true
	}
	for _, want := range []string{"History museum", "Nordic museum", "Viking collection", "Jewellery works"} {
		if !words[want] {
			t.Errorf("OS1 missing %q", want)
		}
	}
	if os1.Context.Len() != 4 {
		t.Errorf("|OS1 context| = %d, want 4", os1.Context.Len())
	}

	// The two history museums share their full context: Jaccard = 1.
	os2, err := g.SpatialOS(ids["The Nordic Museum"], dict, OSOptions{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := os1.Context.Jaccard(os2.Context); got != 1 {
		t.Errorf("J(OS1, OS2) = %g, want 1", got)
	}
	// The Nobel museum shares nothing with them.
	os4, err := g.SpatialOS(ids["Nobel Museum"], dict, OSOptions{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := os1.Context.Jaccard(os4.Context); got != 0 {
		t.Errorf("J(OS1, OS4) = %g, want 0", got)
	}
}

func TestSpatialOSDepth2ReachesSiblings(t *testing.T) {
	g, ids := museumGraph(t)
	dict := textctx.NewDict()
	// At depth 2, the Swedish History Museum's OS also reaches The Nordic
	// Museum through their shared attribute entities.
	os, err := g.SpatialOS(ids["Swedish History Museum"], dict, OSOptions{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range os.Nodes {
		if e, _ := g.Entity(n); e.Label == "The Nordic Museum" {
			found = true
		}
	}
	if !found {
		t.Error("depth-2 OS does not reach the sibling museum")
	}
}

func TestSpatialOSMaxNodes(t *testing.T) {
	g, ids := museumGraph(t)
	dict := textctx.NewDict()
	os, err := g.SpatialOS(ids["Swedish History Museum"], dict, OSOptions{MaxDepth: 3, MaxNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(os.Nodes) != 2 {
		t.Errorf("MaxNodes=2 collected %d nodes", len(os.Nodes))
	}
}

func TestSpatialOSErrors(t *testing.T) {
	g, ids := museumGraph(t)
	if _, err := g.SpatialOS(999, nil, OSOptions{}); err == nil {
		t.Error("unknown root accepted")
	}
	// A non-spatial entity cannot be the root of a *spatial* OS.
	if _, err := g.SpatialOS(ids["History museum"], nil, OSOptions{}); err == nil {
		t.Error("non-spatial root accepted")
	}
}

func TestSpatialOSDefaultDict(t *testing.T) {
	g, ids := museumGraph(t)
	os, err := g.SpatialOS(ids["Nobel Museum"], nil, OSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if os.Context.Len() == 0 {
		t.Error("nil dict produced empty context")
	}
}

func TestSpatialOSDeterministic(t *testing.T) {
	g, ids := museumGraph(t)
	d1, d2 := textctx.NewDict(), textctx.NewDict()
	a, _ := g.SpatialOS(ids["Swedish History Museum"], d1, OSOptions{MaxDepth: 2})
	b, _ := g.SpatialOS(ids["Swedish History Museum"], d2, OSOptions{MaxDepth: 2})
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatal("node counts differ across runs")
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatal("node order differs across runs")
		}
	}
}
