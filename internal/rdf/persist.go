package rdf

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/geo"
)

const graphFileVersion = 1

type graphFile struct {
	Version  int
	Entities []fileEntity
	Preds    []string
	Triples  []fileTriple
}

type fileEntity struct {
	Label, Class string
	X, Y         float64
	Spatial      bool
}

type fileTriple struct {
	Subj int32
	Pred int32
	Obj  int32
}

// Save writes the graph to w in a self-contained binary format.
func (g *Graph) Save(w io.Writer) error {
	gf := graphFile{Version: graphFileVersion, Preds: append([]string(nil), g.predName...)}
	gf.Entities = make([]fileEntity, len(g.entities))
	for i, e := range g.entities {
		gf.Entities[i] = fileEntity{Label: e.Label, Class: e.Class, X: e.Loc.X, Y: e.Loc.Y, Spatial: e.Spatial}
	}
	for subj, edges := range g.out {
		for _, e := range edges {
			gf.Triples = append(gf.Triples, fileTriple{Subj: int32(subj), Pred: int32(e.Pred), Obj: int32(e.To)})
		}
	}
	return gob.NewEncoder(w).Encode(gf)
}

// LoadGraph reads a graph written by Save.
func LoadGraph(r io.Reader) (*Graph, error) {
	var gf graphFile
	if err := gob.NewDecoder(r).Decode(&gf); err != nil {
		return nil, fmt.Errorf("rdf: decode: %w", err)
	}
	if gf.Version != graphFileVersion {
		return nil, fmt.Errorf("rdf: unsupported graph file version %d", gf.Version)
	}
	g := NewGraph()
	for _, fe := range gf.Entities {
		if fe.Spatial {
			if _, err := g.AddSpatialEntity(fe.Label, fe.Class, geo.Pt(fe.X, fe.Y)); err != nil {
				return nil, err
			}
		} else {
			g.AddEntity(fe.Label, fe.Class)
		}
	}
	for _, tr := range gf.Triples {
		if int(tr.Pred) < 0 || int(tr.Pred) >= len(gf.Preds) {
			return nil, fmt.Errorf("rdf: triple references unknown predicate %d", tr.Pred)
		}
		if err := g.AddTriple(EntityID(tr.Subj), gf.Preds[tr.Pred], EntityID(tr.Obj)); err != nil {
			return nil, err
		}
	}
	return g, nil
}
