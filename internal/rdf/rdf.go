// Package rdf provides an in-memory RDF-style knowledge graph: entities
// (some of which are spatial, i.e. carry a location) connected by
// predicate-labelled triples. It implements the implicit-context side of
// the paper: the contextual set of a spatial entity is derived from its
// spatial Object Summary (OS) — the neighbouring entities linked to it
// directly or indirectly (Fakas et al.) — as in the paper's DBpedia /
// Yago2 experiments and the Figure 1 museum example.
package rdf

import (
	"fmt"
	"sort"

	"repro/internal/geo"
	"repro/internal/textctx"
)

// EntityID identifies an entity in a Graph.
type EntityID int32

// PredID identifies a predicate (edge label).
type PredID int32

// Entity is a node of the knowledge graph.
type Entity struct {
	ID    EntityID
	Label string
	// Class is the entity's type (e.g. "Museum", "Person").
	Class string
	// Loc is the entity's location; meaningful only when Spatial is true.
	Loc geo.Point
	// Spatial marks entities that are places.
	Spatial bool
}

// Edge is one directed, predicate-labelled connection.
type Edge struct {
	Pred PredID
	To   EntityID
}

// Graph is an in-memory triple store. It is safe for concurrent reads
// after all writes complete.
type Graph struct {
	entities []Entity
	preds    map[string]PredID
	predName []string
	out      [][]Edge
	in       [][]Edge
	triples  int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{preds: make(map[string]PredID)}
}

// AddEntity adds a non-spatial entity and returns its identifier.
func (g *Graph) AddEntity(label, class string) EntityID {
	id := EntityID(len(g.entities))
	g.entities = append(g.entities, Entity{ID: id, Label: label, Class: class})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddSpatialEntity adds a place entity with a location.
func (g *Graph) AddSpatialEntity(label, class string, loc geo.Point) (EntityID, error) {
	if !loc.Valid() {
		return 0, fmt.Errorf("rdf: invalid location %v for %q", loc, label)
	}
	id := g.AddEntity(label, class)
	g.entities[id].Loc = loc
	g.entities[id].Spatial = true
	return id, nil
}

// AddTriple records the triple (subj, pred, obj).
func (g *Graph) AddTriple(subj EntityID, pred string, obj EntityID) error {
	if !g.valid(subj) || !g.valid(obj) {
		return fmt.Errorf("rdf: triple (%d, %q, %d) references unknown entity", subj, pred, obj)
	}
	p, ok := g.preds[pred]
	if !ok {
		p = PredID(len(g.predName))
		g.preds[pred] = p
		g.predName = append(g.predName, pred)
	}
	g.out[subj] = append(g.out[subj], Edge{Pred: p, To: obj})
	g.in[obj] = append(g.in[obj], Edge{Pred: p, To: subj})
	g.triples++
	return nil
}

func (g *Graph) valid(id EntityID) bool { return id >= 0 && int(id) < len(g.entities) }

// Entity returns the entity with the given id.
func (g *Graph) Entity(id EntityID) (Entity, bool) {
	if !g.valid(id) {
		return Entity{}, false
	}
	return g.entities[id], true
}

// Predicate returns the name of p.
func (g *Graph) Predicate(p PredID) string {
	if int(p) < 0 || int(p) >= len(g.predName) {
		return ""
	}
	return g.predName[p]
}

// OutEdges returns the outgoing edges of id; the slice must not be
// modified.
func (g *Graph) OutEdges(id EntityID) []Edge {
	if !g.valid(id) {
		return nil
	}
	return g.out[id]
}

// InEdges returns the incoming edges of id (Edge.To is the source).
func (g *Graph) InEdges(id EntityID) []Edge {
	if !g.valid(id) {
		return nil
	}
	return g.in[id]
}

// NumEntities returns the number of entities.
func (g *Graph) NumEntities() int { return len(g.entities) }

// NumTriples returns the number of triples.
func (g *Graph) NumTriples() int { return g.triples }

// SpatialEntities returns the identifiers of all place entities.
func (g *Graph) SpatialEntities() []EntityID {
	var out []EntityID
	for _, e := range g.entities {
		if e.Spatial {
			out = append(out, e.ID)
		}
	}
	return out
}

// OSOptions bounds a spatial object summary.
type OSOptions struct {
	// MaxDepth limits how many links away from the root neighbours are
	// collected; 0 means 2, a typical OS depth.
	MaxDepth int
	// MaxNodes caps the number of collected neighbour entities (the
	// "important" size-l restriction of the OS paradigm); 0 means
	// unlimited.
	MaxNodes int
}

// ObjectSummary is a spatial OS: the tree of neighbouring entities rooted
// at a spatial entity, flattened to its node set, plus the contextual set
// of interned node labels used by the proportionality framework.
type ObjectSummary struct {
	Root EntityID
	// Nodes are the collected neighbour entities in BFS order (root
	// excluded).
	Nodes []EntityID
	// Context holds the interned labels of the collected nodes.
	Context textctx.Set
}

// SpatialOS builds the spatial object summary of root: a breadth-first
// expansion over both edge directions up to MaxDepth links, collecting at
// most MaxNodes neighbour entities (nearest levels first, ties by entity
// id for determinism), whose labels form the contextual set.
func (g *Graph) SpatialOS(root EntityID, dict *textctx.Dict, opt OSOptions) (ObjectSummary, error) {
	e, ok := g.Entity(root)
	if !ok {
		return ObjectSummary{}, fmt.Errorf("rdf: unknown entity %d", root)
	}
	if !e.Spatial {
		return ObjectSummary{}, fmt.Errorf("rdf: entity %d (%q) is not spatial", root, e.Label)
	}
	if dict == nil {
		dict = textctx.NewDict()
	}
	depth := opt.MaxDepth
	if depth <= 0 {
		depth = 2
	}
	visited := map[EntityID]bool{root: true}
	frontier := []EntityID{root}
	var nodes []EntityID
	for d := 0; d < depth && len(frontier) > 0; d++ {
		var next []EntityID
		for _, u := range frontier {
			for _, ed := range g.out[u] {
				if !visited[ed.To] {
					visited[ed.To] = true
					next = append(next, ed.To)
				}
			}
			for _, ed := range g.in[u] {
				if !visited[ed.To] {
					visited[ed.To] = true
					next = append(next, ed.To)
				}
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		nodes = append(nodes, next...)
		if opt.MaxNodes > 0 && len(nodes) >= opt.MaxNodes {
			nodes = nodes[:opt.MaxNodes]
			break
		}
		frontier = next
	}
	ids := make([]textctx.ItemID, len(nodes))
	for i, n := range nodes {
		ids[i] = dict.Intern(g.entities[n].Label)
	}
	return ObjectSummary{Root: root, Nodes: nodes, Context: textctx.NewSet(ids...)}, nil
}

// Stats summarises the graph.
type Stats struct {
	Entities, SpatialEntities, Triples, Predicates int
}

// Stats returns summary statistics.
func (g *Graph) Stats() Stats {
	s := Stats{Entities: len(g.entities), Triples: g.triples, Predicates: len(g.predName)}
	for _, e := range g.entities {
		if e.Spatial {
			s.SpatialEntities++
		}
	}
	return s
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("entities=%d (spatial=%d) triples=%d predicates=%d",
		s.Entities, s.SpatialEntities, s.Triples, s.Predicates)
}
