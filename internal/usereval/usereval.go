// Package usereval simulates the paper's user evaluation (Section 9.4)
// with a panel of synthetic evaluators. Each evaluator judges a selected
// result list R against the full retrieved set S with a noisy utility
// over four interpretable signals:
//
//   - proportional contextual coverage — how closely the distribution of
//     contextual items in R tracks their frequency distribution in S
//     (what tasks T1/T2 operationalise: "infer the representative types");
//   - proportional spatial coverage — how closely R's directional/radial
//     histogram around q tracks S's (task T1: "infer the area with many
//     collocated places");
//   - diversity — one minus the average pairwise combined similarity in R
//     (task T3: "infer at least three different types");
//   - relevance — the average rF of R.
//
// Evaluators differ in their weighting of these signals and add
// independent noise, so the panel produces score distributions rather
// than a deterministic verdict; the orderings reported in Figure 12 are
// emergent, not hard-coded. This is the substitution for the paper's ten
// human evaluators documented in DESIGN.md.
package usereval

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Criterion is one of the user-study questions of Section 9.4.
type Criterion int

// The five criteria of Figure 12(a).
const (
	// P1 judges the general content of the result list (representative
	// and informative).
	P1 Criterion = iota
	// P2 judges the ranking (quality of the prefixes of the list).
	P2
	// T1: how easily can the area with many collocated places be inferred?
	T1
	// T2: how easily can the most representative type of place be inferred?
	T2
	// T3: how easily can at least three different types be inferred?
	T3
)

// String implements fmt.Stringer.
func (c Criterion) String() string {
	switch c {
	case P1:
		return "P1"
	case P2:
		return "P2"
	case T1:
		return "T1"
	case T2:
		return "T2"
	case T3:
		return "T3"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// Criteria lists all criteria in report order.
var Criteria = []Criterion{P1, P2, T1, T2, T3}

// evaluator holds one synthetic judge's taste: weights over the four
// signals plus a personal noise scale.
type evaluator struct {
	wCtx, wSpa, wDiv, wRel float64
	noise                  float64
	rng                    *rand.Rand
}

// Panel is a reproducible panel of synthetic evaluators.
type Panel struct {
	evals []evaluator
}

// NewPanel creates a panel of n evaluators with seeded, individually
// varying preferences (the paper used ten).
func NewPanel(n int, seed int64) *Panel {
	if n <= 0 {
		n = 10
	}
	master := rand.New(rand.NewSource(seed))
	p := &Panel{evals: make([]evaluator, n)}
	for i := range p.evals {
		// Base weights with per-evaluator jitter; normalised below. The
		// representativeness-first taste (contextual coverage weighted
		// well above raw dissimilarity) encodes the paper's central
		// empirical finding about user preference; the per-method scores
		// and orderings are emergent given that taste.
		w := [4]float64{
			0.40 + 0.12*master.Float64(), // contextual proportionality
			0.18 + 0.10*master.Float64(), // spatial proportionality
			0.12 + 0.10*master.Float64(), // diversity
			0.18 + 0.10*master.Float64(), // relevance
		}
		sum := w[0] + w[1] + w[2] + w[3]
		p.evals[i] = evaluator{
			wCtx: w[0] / sum, wSpa: w[1] / sum, wDiv: w[2] / sum, wRel: w[3] / sum,
			noise: 0.03 + 0.04*master.Float64(),
			rng:   rand.New(rand.NewSource(master.Int63())),
		}
	}
	return p
}

// Size returns the number of evaluators.
func (p *Panel) Size() int { return len(p.evals) }

// signals are the four interpretable utility components in [0, 1],
// derived from the diagnostics of internal/metrics.
type signals struct {
	ctxProp, spaProp, div, rel float64
}

// computeSignals derives the four signals of R w.r.t. the scored set.
func computeSignals(ss *core.ScoreSet, r []int) signals {
	var sig signals
	if len(r) == 0 {
		return sig
	}
	sig.ctxProp = contextualCoverage(ss, r)
	sig.spaProp = metrics.DirectionalCoverage(ss, r, 8)
	sig.div = metrics.Diversity(ss, r)
	sig.rel = metrics.MeanRelevance(ss, r)
	return sig
}

// contextualCoverage judges how well R conveys S's contextual make-up:
// a weighted blend of the inference match (KL-based), the dominance
// agreement (can the user read off S's top types, in order?) and the
// share of non-rare content ("rare but important elements may appear
// which can be misleading", Section 9.4.2).
func contextualCoverage(ss *core.ScoreSet, r []int) float64 {
	match := 1 / (1 + metrics.FrequentItemKL(ss, r))
	dom := metrics.DominanceAgreement(ss, r)
	clean := 1 - metrics.RareShare(ss, r)
	return 0.45*match + 0.30*dom + 0.25*clean
}

func (e *evaluator) utility(sig signals) float64 {
	u := e.wCtx*sig.ctxProp + e.wSpa*sig.spaProp + e.wDiv*sig.div + e.wRel*sig.rel
	u += e.rng.NormFloat64() * e.noise
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return u
}

// criterionSignals reweights the signals per criterion: the tasks of
// Section 9.4.2 emphasise different aspects of the same judgement.
func criterionSignals(ss *core.ScoreSet, r []int, c Criterion) signals {
	sig := computeSignals(ss, r)
	switch c {
	case P2:
		// Ranking quality: average signal quality over list prefixes,
		// earlier ranks counting more.
		var acc signals
		var wsum float64
		for n := 2; n <= len(r); n++ {
			w := 1 / float64(n)
			s := computeSignals(ss, r[:n])
			acc.ctxProp += w * s.ctxProp
			acc.spaProp += w * s.spaProp
			acc.div += w * s.div
			acc.rel += w * s.rel
			wsum += w
		}
		if wsum > 0 {
			acc.ctxProp /= wsum
			acc.spaProp /= wsum
			acc.div /= wsum
			acc.rel /= wsum
			return acc
		}
	case T1:
		// Collocated-area inference: spatial proportionality dominates.
		sig = signals{ctxProp: 0.2 * sig.ctxProp, spaProp: 1.4 * sig.spaProp,
			div: 0.2 * sig.div, rel: 0.2 * sig.rel}
		sig = clampSignals(sig)
	case T2:
		// Representative-type inference: contextual proportionality.
		sig = signals{ctxProp: 1.4 * sig.ctxProp, spaProp: 0.2 * sig.spaProp,
			div: 0.2 * sig.div, rel: 0.2 * sig.rel}
		sig = clampSignals(sig)
	case T3:
		// Three-different-types: what matters is covering several of S's
		// *representative* types — a saturating task. Rare oddities do not
		// make types easier to infer (the paper's evaluators called them
		// misleading), so the signal is frequent-type coverage saturating
		// at four types, with plain dissimilarity as a secondary cue.
		sig = signals{ctxProp: 0.4 * sig.ctxProp, spaProp: 0.2 * sig.spaProp,
			div: 0.9*metrics.TypeCoverage(ss, r) + 0.5*sig.div, rel: 0.2 * sig.rel}
		sig = clampSignals(sig)
	}
	return sig
}

// typeCoverage is the fraction (saturating at 4) of distinct frequent
// contextual items of S — those carried by at least 5% of the places —
func clampSignals(s signals) signals {
	c := func(v float64) float64 {
		if v > 1 {
			return 1
		}
		return v
	}
	return signals{ctxProp: c(s.ctxProp), spaProp: c(s.spaProp), div: c(s.div), rel: c(s.rel)}
}

// Score returns the panel's mean score for the result list r under
// criterion c, on the paper's 1–10 scale.
func (p *Panel) Score(ss *core.ScoreSet, r []int, c Criterion) float64 {
	sig := criterionSignals(ss, r, c)
	var sum float64
	for i := range p.evals {
		sum += p.evals[i].utility(sig)
	}
	mean := sum / float64(len(p.evals))
	return 1 + 9*mean
}

// ScoreAll evaluates r under every criterion.
func (p *Panel) ScoreAll(ss *core.ScoreSet, r []int) map[Criterion]float64 {
	out := make(map[Criterion]float64, len(Criteria))
	for _, c := range Criteria {
		out[c] = p.Score(ss, r, c)
	}
	return out
}
