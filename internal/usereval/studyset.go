package usereval

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/textctx"
)

// SyntheticStudySet builds one user-study retrieved set S (K = 100) with
// the structure the paper's evaluation queries exhibit and its Figure 1
// illustrates: several contextual/spatial groups of decreasing size — the
// dominant museum quarter east of q (cf. Gamla Stan), a second cluster on
// the opposite side, smaller pockets elsewhere — plus a long tail of
// outlier places with rare, disjoint contexts scattered at the periphery.
// Relevance varies little within S (it holds the top-K most relevant
// results) and is marginally higher for the dominant group.
//
// On such sets, top-k selection concentrates on the dominant group,
// diversification surfaces the rare outliers, and proportional selection
// represents the large groups with proportional repetition — the three
// behaviours the user study compares.
func SyntheticStudySet(seed int64) (*core.ScoreSet, error) {
	rng := rand.New(rand.NewSource(seed))
	d := textctx.NewDict()
	q := geo.Pt(0, 0)
	groups := []struct {
		name string
		size int
		ang  float64 // radians
	}{
		{"history", 18, 0}, {"art", 16, 0.45}, {"science", 14, 3.14},
		{"maritime", 12, 0.9}, {"music", 10, 1.57}, {"royal", 8, 3.6},
		{"photo", 6, 4.71}, {"tech", 6, 2.36},
	}
	var places []core.Place
	gi := 0
	for g, grp := range groups {
		relBase := 0.68 - 0.005*float64(g)
		for i := 0; i < grp.size; i++ {
			words := []string{grp.name, grp.name + "-wing", "museum",
				studyWord(grp.name, i%7), studyWord(grp.name+"x", i%11)}
			loc := geo.Pt(
				2*math.Cos(grp.ang)+rng.NormFloat64()*0.55,
				2*math.Sin(grp.ang)+rng.NormFloat64()*0.55,
			)
			places = append(places, core.Place{
				ID:      fmt.Sprintf("%s-%d", grp.name, gi),
				Loc:     loc,
				Rel:     relBase + rng.Float64()*0.02,
				Context: textctx.NewSetFromStrings(d, words),
			})
			gi++
		}
	}
	for i := 0; i < 10; i++ {
		words := []string{fmt.Sprintf("rare-%d", i), fmt.Sprintf("oddity-%d", i),
			fmt.Sprintf("one-off-%d", i)}
		ang := rng.Float64() * 2 * math.Pi
		rad := 2.5 + rng.Float64()
		places = append(places, core.Place{
			ID:      fmt.Sprintf("outlier-%d", i),
			Loc:     geo.Pt(rad*math.Cos(ang), rad*math.Sin(ang)),
			Rel:     0.63 + rng.Float64()*0.02,
			Context: textctx.NewSetFromStrings(d, words),
		})
	}
	return core.ComputeScores(q, places, core.ScoreOptions{Gamma: 0.5})
}

func studyWord(p string, i int) string { return p + string(rune('a'+i%26)) }
