package usereval

import (
	"testing"

	"repro/internal/core"
)

// clusteredScoreSet wraps the exported study-set generator.
func clusteredScoreSet(t testing.TB, seed int64) *core.ScoreSet {
	t.Helper()
	ss, err := SyntheticStudySet(seed)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

func TestPanelBasics(t *testing.T) {
	p := NewPanel(10, 1)
	if p.Size() != 10 {
		t.Fatalf("Size = %d", p.Size())
	}
	if NewPanel(0, 1).Size() != 10 {
		t.Error("default size not applied")
	}
}

func TestCriterionString(t *testing.T) {
	want := map[Criterion]string{P1: "P1", P2: "P2", T1: "T1", T2: "T2", T3: "T3"}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("String(%d) = %q", int(c), c.String())
		}
	}
	if Criterion(9).String() == "" {
		t.Error("unknown criterion empty")
	}
}

func TestScoresInRange(t *testing.T) {
	ss := clusteredScoreSet(t, 1)
	panel := NewPanel(10, 2)
	params := core.Params{K: 10, Lambda: 0.5, Gamma: 0.5}
	sel, err := core.ABP(ss, params)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range Criteria {
		s := panel.Score(ss, sel.Indices, c)
		if s < 1 || s > 10 {
			t.Errorf("%v score %g outside [1, 10]", c, s)
		}
	}
	all := panel.ScoreAll(ss, sel.Indices)
	if len(all) != len(Criteria) {
		t.Errorf("ScoreAll returned %d entries", len(all))
	}
}

func TestPanelDeterministicPerSeed(t *testing.T) {
	ss := clusteredScoreSet(t, 3)
	sel, _ := core.TopK(ss, core.Params{K: 10, Lambda: 0.5, Gamma: 0.5})
	a := NewPanel(10, 7).Score(ss, sel.Indices, P1)
	b := NewPanel(10, 7).Score(ss, sel.Indices, P1)
	if a != b {
		t.Errorf("same seed, different scores: %g vs %g", a, b)
	}
}

// TestEmergentPreferenceOrdering reproduces the headline Figure 12(a)
// finding: averaged over queries, the panel prefers proportional (ABP)
// over diversified (ABP_D) over plain top-k results, on P1 and on the
// aggregate of the task criteria. The ordering must emerge from the
// utility model — nothing in the scorer knows which method produced R.
func TestEmergentPreferenceOrdering(t *testing.T) {
	panel := NewPanel(10, 11)
	params := core.Params{K: 10, Lambda: 0.5, Gamma: 0.5}
	var prop, div, topk float64
	const queries = 12
	for seed := int64(0); seed < queries; seed++ {
		ss := clusteredScoreSet(t, 100+seed)
		selP, err := core.ABP(ss, params)
		if err != nil {
			t.Fatal(err)
		}
		selD, err := core.ABPDiv(ss, params)
		if err != nil {
			t.Fatal(err)
		}
		selT, err := core.TopK(ss, params)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range Criteria {
			prop += panel.Score(ss, selP.Indices, c)
			div += panel.Score(ss, selD.Indices, c)
			topk += panel.Score(ss, selT.Indices, c)
		}
	}
	n := float64(queries * len(Criteria))
	prop, div, topk = prop/n, div/n, topk/n
	if !(prop > div && div > topk) {
		t.Errorf("expected proportional > diversified > top-k, got %.2f, %.2f, %.2f",
			prop, div, topk)
	}
}

// TestDiversitySignal: a redundant list scores below a diverse one on T3.
func TestDiversitySignal(t *testing.T) {
	ss := clusteredScoreSet(t, 5)
	panel := NewPanel(10, 13)
	// Redundant: 10 history museums (indices 0..17 are the history group).
	redundant := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	// Mixed: spread across the groups and the outlier tail.
	mixed := []int{0, 1, 18, 19, 34, 48, 60, 70, 78, 90}
	if r, m := panel.Score(ss, redundant, T3), panel.Score(ss, mixed, T3); r >= m {
		t.Errorf("T3: redundant %g ≥ mixed %g", r, m)
	}
}

func TestDegenerateInputs(t *testing.T) {
	ss := clusteredScoreSet(t, 7)
	panel := NewPanel(5, 17)
	if s := panel.Score(ss, nil, P1); s < 1 || s > 10 {
		t.Errorf("empty R score %g outside range", s)
	}
	if s := panel.Score(ss, []int{3}, T3); s < 1 || s > 10 {
		t.Errorf("singleton R score %g outside range", s)
	}
}
