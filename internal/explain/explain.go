// Package explain collects algorithm-level introspection events from the
// proportionality pipeline: the per-round decisions of the Step-2 greedy
// algorithms, the pruning effectiveness of the msJh contextual engine
// (Section 6), and the approximation behaviour of the Step-1 grids
// (Section 7). It follows the same pattern as telemetry.Trace: a nil
// *Collector is a valid no-op receiver, the collector travels through
// context.Context, and instrumented code pays one context lookup plus a
// nil check when collection is disabled — nothing else. Heavier
// introspection work (runner-up scans, error sampling) must be gated on
// FromContext(ctx) != nil so the serving hot path stays untouched.
package explain

import (
	"context"
	"sync"
)

// GreedyRound is one round of a Step-2 greedy selection: the place (or,
// for ABP, the pair) added to R, its marginal HPF gain, and the runner-up
// the algorithm would have chosen instead.
type GreedyRound struct {
	// Round numbers selection events from 1.
	Round int `json:"round"`
	// Chosen lists the score-set indices added this round (one place for
	// IAdU, two for an ABP pair); ChosenIDs are the matching place IDs.
	Chosen    []int    `json:"chosen"`
	ChosenIDs []string `json:"chosen_ids,omitempty"`
	// Gain is the marginal HPF contribution of the chosen place or pair
	// (cHPF of Eq. 17 for IAdU, HPF(p_i, p_j) of Eq. 15 for ABP; the
	// relevance score rF for a first pick over an empty R).
	Gain float64 `json:"gain"`
	// RunnerUp lists the indices of the best alternative the algorithm
	// passed over this round (empty when no alternative remained), with
	// RunnerUpGain its marginal gain. The gap Gain − RunnerUpGain measures
	// how decisive the round was.
	RunnerUp     []int    `json:"runner_up,omitempty"`
	RunnerUpIDs  []string `json:"runner_up_ids,omitempty"`
	RunnerUpGain float64  `json:"runner_up_gain,omitempty"`
}

// Pruning reports how much all-pairs contextual work the Step-1 engine
// avoided. CandidatePairs is K(K−1)/2; ComparedPairs counts pairs whose
// intersection was actually accumulated; PrunedPairs is the difference —
// pairs dismissed without any per-pair work because they provably share
// no element. For msJh, PostingsCut additionally counts inverted-list
// entries skipped by the reverse-order j > i early cut-off (Algorithm 1),
// against PostingsScanned entries actually visited.
type Pruning struct {
	Engine          string  `json:"engine"`
	Sets            int     `json:"sets"`
	CandidatePairs  int64   `json:"candidate_pairs"`
	ComparedPairs   int64   `json:"compared_pairs"`
	PrunedPairs     int64   `json:"pruned_pairs"`
	PrunedRatio     float64 `json:"pruned_ratio"`
	PostingsScanned int64   `json:"postings_scanned,omitempty"`
	PostingsCut     int64   `json:"postings_cut,omitempty"`
}

// GridStats describes the Step-1 spatial approximation: the grid's
// occupancy and a sampled estimate of the error the cell-centre (or
// sector-representative) approximation introduced versus the exact sS.
type GridStats struct {
	// Kind is "squared", "radial", "exact" or "custom".
	Kind string `json:"kind"`
	// Cells is |G| (or |R|); OccupiedCells the non-empty ones; Places the
	// number of assigned points; PlacesPerCell = Places / OccupiedCells.
	Cells         int     `json:"cells,omitempty"`
	OccupiedCells int     `json:"occupied_cells,omitempty"`
	Places        int     `json:"places"`
	PlacesPerCell float64 `json:"places_per_cell,omitempty"`
	// SampledPairs counts the random place pairs on which exact sS was
	// recomputed and compared against the approximate matrix;
	// MeanAbsError and MaxAbsError summarise the differences. All zero
	// for the exact method (nothing to approximate).
	SampledPairs int     `json:"sampled_pairs,omitempty"`
	MeanAbsError float64 `json:"mean_abs_error,omitempty"`
	MaxAbsError  float64 `json:"max_abs_error,omitempty"`
}

// Report is a point-in-time snapshot of everything a collector gathered,
// shaped for JSON responses and slow-query log lines.
type Report struct {
	Algorithm string        `json:"algorithm,omitempty"`
	Rounds    []GreedyRound `json:"rounds,omitempty"`
	Pruning   *Pruning      `json:"pruning,omitempty"`
	Grid      *GridStats    `json:"grid,omitempty"`
}

// Collector accumulates introspection events for one query. A nil
// *Collector is valid and records nothing, so instrumented code can call
// its methods unconditionally; code that must do extra work to produce an
// event (runner-up scans, error sampling) should skip that work when the
// collector is nil. Safe for concurrent use.
type Collector struct {
	mu      sync.Mutex
	algo    string
	rounds  []GreedyRound
	pruning *Pruning
	grid    *GridStats
}

// New returns an empty collector.
func New() *Collector { return &Collector{} }

// SetAlgorithm records the Step-2 algorithm name the rounds belong to.
func (c *Collector) SetAlgorithm(name string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.algo = name
	c.mu.Unlock()
}

// Round appends one greedy round.
func (c *Collector) Round(r GreedyRound) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.rounds = append(c.rounds, r)
	c.mu.Unlock()
}

// SetPruning records the Step-1 contextual pruning counters, deriving
// PrunedRatio from the pair counts.
func (c *Collector) SetPruning(p Pruning) {
	if c == nil {
		return
	}
	if p.CandidatePairs > 0 {
		p.PrunedRatio = float64(p.PrunedPairs) / float64(p.CandidatePairs)
	}
	c.mu.Lock()
	c.pruning = &p
	c.mu.Unlock()
}

// SetGrid records the Step-1 spatial grid statistics.
func (c *Collector) SetGrid(g GridStats) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.grid = &g
	c.mu.Unlock()
}

// Report snapshots the collected events. The returned value shares no
// mutable state with the collector.
func (c *Collector) Report() *Report {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r := &Report{Algorithm: c.algo}
	if len(c.rounds) > 0 {
		r.Rounds = make([]GreedyRound, len(c.rounds))
		copy(r.Rounds, c.rounds)
	}
	if c.pruning != nil {
		p := *c.pruning
		r.Pruning = &p
	}
	if c.grid != nil {
		g := *c.grid
		r.Grid = &g
	}
	return r
}

type collectorKey struct{}

// WithCollector returns a context carrying c; the instrumented pipeline
// stages retrieve it with FromContext.
func WithCollector(ctx context.Context, c *Collector) context.Context {
	return context.WithValue(ctx, collectorKey{}, c)
}

// FromContext returns the collector carried by ctx, or nil (a valid
// no-op receiver) when there is none.
func FromContext(ctx context.Context) *Collector {
	c, _ := ctx.Value(collectorKey{}).(*Collector)
	return c
}
