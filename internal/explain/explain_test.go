package explain

import (
	"context"
	"testing"
)

// TestNilCollectorIsNoOp pins the nil-safety contract: every method is
// callable on a nil *Collector without panicking and reports nothing.
func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	c.SetAlgorithm("abp")
	c.Round(GreedyRound{Round: 1, Chosen: []int{0}})
	c.SetPruning(Pruning{Engine: "msJh", CandidatePairs: 10})
	c.SetGrid(GridStats{Kind: "squared"})
	if r := c.Report(); r != nil {
		t.Fatalf("nil collector Report() = %+v, want nil", r)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(background) = %v, want nil", got)
	}
	c := New()
	ctx := WithCollector(context.Background(), c)
	if got := FromContext(ctx); got != c {
		t.Fatalf("FromContext returned %v, want the installed collector", got)
	}
}

func TestCollectAndReport(t *testing.T) {
	c := New()
	c.SetAlgorithm("iadu")
	c.Round(GreedyRound{Round: 1, Chosen: []int{3}, Gain: 2.5})
	c.Round(GreedyRound{Round: 2, Chosen: []int{7}, Gain: 1.25, RunnerUp: []int{4}, RunnerUpGain: 1.0})
	c.SetPruning(Pruning{Engine: "msJh", Sets: 5, CandidatePairs: 10, ComparedPairs: 4, PrunedPairs: 6})
	c.SetGrid(GridStats{Kind: "squared", Cells: 100, OccupiedCells: 20, Places: 50, SampledPairs: 64, MeanAbsError: 0.01, MaxAbsError: 0.05})

	r := c.Report()
	if r.Algorithm != "iadu" {
		t.Errorf("Algorithm = %q, want iadu", r.Algorithm)
	}
	if len(r.Rounds) != 2 || r.Rounds[1].RunnerUpGain != 1.0 {
		t.Errorf("Rounds = %+v, want 2 rounds with recorded runner-up", r.Rounds)
	}
	if r.Pruning == nil || r.Pruning.PrunedRatio != 0.6 {
		t.Errorf("Pruning = %+v, want derived PrunedRatio 0.6", r.Pruning)
	}
	if r.Grid == nil || r.Grid.OccupiedCells != 20 {
		t.Errorf("Grid = %+v, want recorded stats", r.Grid)
	}

	// The report must be a snapshot: later rounds do not leak into it.
	c.Round(GreedyRound{Round: 3})
	if len(r.Rounds) != 2 {
		t.Errorf("report mutated by later collection: %d rounds", len(r.Rounds))
	}
}

func TestPrunedRatioZeroWhenNoCandidates(t *testing.T) {
	c := New()
	c.SetPruning(Pruning{Engine: "baseline"})
	if got := c.Report().Pruning.PrunedRatio; got != 0 {
		t.Errorf("PrunedRatio = %v, want 0 for zero candidate pairs", got)
	}
}

func TestConcurrentCollection(t *testing.T) {
	c := New()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				c.Round(GreedyRound{Round: i, Chosen: []int{g}})
				_ = c.Report()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := len(c.Report().Rounds); got != 400 {
		t.Errorf("collected %d rounds, want 400", got)
	}
}
