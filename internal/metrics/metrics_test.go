package metrics

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/textctx"
)

// studySet builds a scored set with two dominant groups and a rare tail.
func studySet(t testing.TB) *core.ScoreSet {
	t.Helper()
	d := textctx.NewDict()
	var places []core.Place
	add := func(id string, x, y float64, words ...string) {
		places = append(places, core.Place{
			ID: id, Loc: geo.Pt(x, y), Rel: 0.7,
			Context: textctx.NewSetFromStrings(d, words),
		})
	}
	for i := 0; i < 30; i++ {
		add("hist", 2, 0.1*float64(i%5), "history", "museum")
	}
	for i := 0; i < 25; i++ {
		add("art", -2, 0.1*float64(i%5), "art", "museum")
	}
	for i := 0; i < 10; i++ {
		add("rare", 0, 2+0.1*float64(i), "oddity-"+string(rune('a'+i)))
	}
	ss, err := core.ComputeScores(geo.Pt(0, 0), places, core.ScoreOptions{Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

// Selections over studySet: history 0..29, art 30..54, rares 55..64.
var (
	propSel = []int{0, 1, 2, 3, 30, 31, 32, 55}     // proportional-ish
	histSel = []int{0, 1, 2, 3, 4, 5, 6, 7}         // all history
	rareSel = []int{55, 56, 57, 58, 59, 60, 61, 62} // all rares
)

func TestFrequentItemKLOrdering(t *testing.T) {
	ss := studySet(t)
	klProp := FrequentItemKL(ss, propSel)
	klHist := FrequentItemKL(ss, histSel)
	klRare := FrequentItemKL(ss, rareSel)
	// The proportional selection is the least misleading. Note the
	// rare-only selection carries no frequent items at all, so smoothing
	// reduces it to a uniform prior — "knows nothing" scores better on KL
	// than "confidently biased"; RareShare is the signal that separates
	// it (see the composite check below).
	if !(klProp < klHist && klProp < klRare) {
		t.Errorf("KL ordering wrong: prop %g, hist %g, rare %g", klProp, klHist, klRare)
	}
	if !math.IsInf(FrequentItemKL(ss, nil), 1) {
		t.Error("empty R should have infinite KL")
	}
	// Composite (inference match + cleanliness) orders all three the way
	// a reader of the list would.
	comp := func(r []int) float64 {
		return 0.6/(1+FrequentItemKL(ss, r)) + 0.4*(1-RareShare(ss, r))
	}
	if !(comp(propSel) > comp(histSel) && comp(histSel) > comp(rareSel)) {
		t.Errorf("composite ordering wrong: %g, %g, %g",
			comp(propSel), comp(histSel), comp(rareSel))
	}
}

func TestRareShare(t *testing.T) {
	ss := studySet(t)
	if got := RareShare(ss, rareSel); got != 1 {
		t.Errorf("rare selection RareShare = %g, want 1", got)
	}
	if got := RareShare(ss, histSel); got != 0 {
		t.Errorf("history selection RareShare = %g, want 0", got)
	}
	if got := RareShare(ss, nil); got != 1 {
		t.Errorf("empty RareShare = %g, want 1", got)
	}
}

func TestDominanceAgreement(t *testing.T) {
	ss := studySet(t)
	// propSel repeats history most, then art — matching S's order.
	if got := DominanceAgreement(ss, propSel); got < 0.8 {
		t.Errorf("proportional dominance = %g, want ≥ 0.8", got)
	}
	// A rare-only selection identifies nothing.
	if got := DominanceAgreement(ss, rareSel); got != 0 {
		t.Errorf("rare dominance = %g, want 0", got)
	}
}

func TestTypeCoverage(t *testing.T) {
	ss := studySet(t)
	if a, b := TypeCoverage(ss, propSel), TypeCoverage(ss, rareSel); a <= b {
		t.Errorf("coverage: prop %g not above rare %g", a, b)
	}
	if got := TypeCoverage(ss, nil); got != 0 {
		t.Errorf("empty coverage = %g", got)
	}
}

func TestDirectionalCoverage(t *testing.T) {
	ss := studySet(t)
	// propSel spans east and west like S; histSel is east-only.
	if a, b := DirectionalCoverage(ss, propSel, 8), DirectionalCoverage(ss, histSel, 8); a <= b {
		t.Errorf("directional: prop %g not above hist %g", a, b)
	}
	if got := DirectionalCoverage(ss, nil, 8); got != 0 {
		t.Error("empty directional coverage not 0")
	}
	if got := DirectionalCoverage(ss, propSel, 0); got != 0 {
		t.Error("zero sectors not 0")
	}
}

func TestDiversityAndRelevance(t *testing.T) {
	ss := studySet(t)
	if a, b := Diversity(ss, propSel), Diversity(ss, histSel); a <= b {
		t.Errorf("diversity: prop %g not above hist %g", a, b)
	}
	if got := Diversity(ss, []int{1}); got != 0 {
		t.Error("singleton diversity not 0")
	}
	if got := MeanRelevance(ss, histSel); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("MeanRelevance = %g", got)
	}
	if got := MeanRelevance(ss, nil); got != 0 {
		t.Error("empty relevance not 0")
	}
}

func TestEvaluateReport(t *testing.T) {
	ss := studySet(t)
	rep := Evaluate(ss, propSel)
	if rep.InferenceMatch <= 0 || rep.InferenceMatch > 1 {
		t.Errorf("InferenceMatch = %g", rep.InferenceMatch)
	}
	if math.Abs(rep.InferenceMatch-1/(1+rep.FrequentKL)) > 1e-12 {
		t.Error("InferenceMatch inconsistent with FrequentKL")
	}
	for name, v := range map[string]float64{
		"RareShare": rep.RareShare, "Dominance": rep.Dominance,
		"TypeCoverage": rep.TypeCoverage, "DirectionalCoverage": rep.DirectionalCoverage,
		"Diversity": rep.Diversity, "MeanRelevance": rep.MeanRelevance,
	} {
		if v < 0 || v > 1 {
			t.Errorf("%s = %g outside [0, 1]", name, v)
		}
	}
}
