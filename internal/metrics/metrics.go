// Package metrics provides selection-quality diagnostics for a result
// set R chosen from a scored set S: how proportionally R represents S's
// frequent contextual items and directions, how diverse and relevant it
// is, and whether a user could read S's dominant types off R. The
// simulated user study (internal/usereval) builds its evaluator utilities
// from these signals, and downstream applications can report them next to
// any selection.
package metrics

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/textctx"
)

// DefaultMinSupportFrac is the support threshold separating "frequent"
// items (types) from rare ones: items carried by at least this fraction
// of the places in S.
const DefaultMinSupportFrac = 0.05

// Report bundles every diagnostic for one selection.
type Report struct {
	// FrequentKL is KL(S‖R) over the frequent-item distributions
	// (0 = R's emphasis matches S exactly; larger = more misleading).
	FrequentKL float64
	// InferenceMatch is 1 / (1 + FrequentKL) ∈ (0, 1].
	InferenceMatch float64
	// RareShare is the fraction of R's item occurrences that are rare in
	// S (one-off oddities read as noise).
	RareShare float64
	// Dominance ∈ [0, 1] scores whether R's most repeated informative
	// items are S's most frequent ones, in order.
	Dominance float64
	// TypeCoverage ∈ [0, 1] saturates as R covers several frequent items.
	TypeCoverage float64
	// DirectionalCoverage is 1 − TV distance between the angular
	// histograms of R and S around the query.
	DirectionalCoverage float64
	// Diversity is 1 − mean pairwise combined similarity within R.
	Diversity float64
	// MeanRelevance is the average rF of R.
	MeanRelevance float64
}

// Evaluate computes the full report for r against ss.
func Evaluate(ss *core.ScoreSet, r []int) Report {
	rep := Report{
		FrequentKL:          FrequentItemKL(ss, r),
		RareShare:           RareShare(ss, r),
		Dominance:           DominanceAgreement(ss, r),
		TypeCoverage:        TypeCoverage(ss, r),
		DirectionalCoverage: DirectionalCoverage(ss, r, 8),
		Diversity:           Diversity(ss, r),
		MeanRelevance:       MeanRelevance(ss, r),
	}
	rep.InferenceMatch = 1 / (1 + rep.FrequentKL)
	return rep
}

// supportOf counts, for every contextual item, the number of places in S
// carrying it.
func supportOf(ss *core.ScoreSet) map[textctx.ItemID]int {
	sup := make(map[textctx.ItemID]int)
	for i := range ss.Places {
		for _, it := range ss.Places[i].Context.Items() {
			sup[it]++
		}
	}
	return sup
}

// minSupport converts the default fraction into an absolute count.
func minSupport(n int) int {
	m := int(float64(n) * DefaultMinSupportFrac)
	if m < 3 {
		m = 3
	}
	return m
}

// FrequentItemKL returns KL(S‖R) between the distributions of frequent
// items in S and in R (additively smoothed). Under-representing a
// dominant item costs much more than over-representing it — the right
// asymmetry for "how wrong is a user's inference about the area".
func FrequentItemKL(ss *core.ScoreSet, r []int) float64 {
	if len(r) == 0 {
		return math.Inf(1)
	}
	sup := supportOf(ss)
	minSup := minSupport(len(ss.Places))
	// Accumulate in sorted item order: float addition is order-dependent,
	// and map iteration order would make repeated evaluations of the same
	// selection differ in the last bits.
	frequent := make([]textctx.ItemID, 0, len(sup))
	for it, c := range sup {
		if c >= minSup {
			frequent = append(frequent, it)
		}
	}
	sort.Slice(frequent, func(a, b int) bool { return frequent[a] < frequent[b] })
	freqS := make(map[textctx.ItemID]float64, len(frequent))
	var totS float64
	for _, it := range frequent {
		freqS[it] = float64(sup[it])
		totS += float64(sup[it])
	}
	if totS == 0 {
		return 0 // no frequent structure to misrepresent
	}
	freqR := make(map[textctx.ItemID]float64)
	var totR float64
	for _, i := range r {
		for _, it := range ss.Places[i].Context.Items() {
			if _, ok := freqS[it]; ok {
				freqR[it]++
				totR++
			}
		}
	}
	const alpha = 0.5
	denom := totR + alpha*float64(len(freqS))
	var kl float64
	for _, it := range frequent {
		ps := freqS[it] / totS
		pr := (freqR[it] + alpha) / denom
		kl += ps * math.Log(ps/pr)
	}
	if kl < 0 {
		kl = 0
	}
	return kl
}

// RareShare returns the fraction of R's contextual item occurrences that
// are rare in S. An empty R returns 1 (all noise, vacuously).
func RareShare(ss *core.ScoreSet, r []int) float64 {
	sup := supportOf(ss)
	minSup := minSupport(len(ss.Places))
	var rare, occ float64
	for _, i := range r {
		for _, it := range ss.Places[i].Context.Items() {
			occ++
			if sup[it] < minSup {
				rare++
			}
		}
	}
	if occ == 0 {
		return 1
	}
	return rare / occ
}

// DominanceAgreement scores whether R's most repeated informative items
// (frequent in S but not universal — an item carried by over half the
// places identifies nothing) match S's top-3, weighting the top type
// heaviest: 0.5·[top-1 agrees] + 0.3·overlap(top-2)/2 + 0.2·overlap(top-3)/3.
func DominanceAgreement(ss *core.ScoreSet, r []int) float64 {
	sup := supportOf(ss)
	minSup := minSupport(len(ss.Places))
	maxSup := len(ss.Places) / 2
	informative := func(it textctx.ItemID) bool {
		return sup[it] >= minSup && sup[it] <= maxSup
	}
	topS := topItems(toFloat(sup), informative, 3, nil)
	countR := make(map[textctx.ItemID]float64)
	for _, i := range r {
		for _, it := range ss.Places[i].Context.Items() {
			if informative(it) {
				countR[it]++
			}
		}
	}
	topR := topItems(countR, informative, 3, toFloat(sup))
	var score float64
	if len(topS) > 0 && len(topR) > 0 && topS[0] == topR[0] {
		score += 0.5
	}
	score += 0.3 * overlap(topS, topR, 2)
	score += 0.2 * overlap(topS, topR, 3)
	return score
}

// TypeCoverage returns the fraction (saturating at six items ≈ three
// two-word types) of distinct frequent items of S appearing in R.
func TypeCoverage(ss *core.ScoreSet, r []int) float64 {
	if len(r) == 0 {
		return 0
	}
	sup := supportOf(ss)
	minSup := minSupport(len(ss.Places))
	covered := make(map[textctx.ItemID]bool)
	for _, i := range r {
		for _, it := range ss.Places[i].Context.Items() {
			if sup[it] >= minSup {
				covered[it] = true
			}
		}
	}
	c := float64(len(covered)) / 6
	if c > 1 {
		c = 1
	}
	return c
}

// DirectionalCoverage returns 1 − total-variation distance between the
// angular histograms (the given number of sectors around the query) of R
// and S.
func DirectionalCoverage(ss *core.ScoreSet, r []int, sectors int) float64 {
	if len(r) == 0 || sectors <= 0 {
		return 0
	}
	bin := func(i int) int {
		a := ss.Places[i].Loc.Angle(ss.Q)
		s := int(a / (2 * math.Pi / float64(sectors)))
		if s >= sectors {
			s = sectors - 1
		}
		return s
	}
	hs := make([]float64, sectors)
	hr := make([]float64, sectors)
	for i := range ss.Places {
		hs[bin(i)]++
	}
	for _, i := range r {
		hr[bin(i)]++
	}
	var tv float64
	for b := range hs {
		tv += math.Abs(hs[b]/float64(len(ss.Places)) - hr[b]/float64(len(r)))
	}
	return 1 - tv/2
}

// Diversity returns 1 − mean pairwise combined similarity sF within R
// (0 for fewer than two places).
func Diversity(ss *core.ScoreSet, r []int) float64 {
	if len(r) < 2 {
		return 0
	}
	var sum float64
	var n int
	for a := 0; a < len(r); a++ {
		for b := a + 1; b < len(r); b++ {
			sum += ss.SF.At(r[a], r[b])
			n++
		}
	}
	return 1 - sum/float64(n)
}

// MeanRelevance returns the average rF over R (0 for empty R).
func MeanRelevance(ss *core.ScoreSet, r []int) float64 {
	if len(r) == 0 {
		return 0
	}
	var sum float64
	for _, i := range r {
		sum += ss.Places[i].Rel
	}
	return sum / float64(len(r))
}

func toFloat(m map[textctx.ItemID]int) map[textctx.ItemID]float64 {
	out := make(map[textctx.ItemID]float64, len(m))
	for k, v := range m {
		out[k] = float64(v)
	}
	return out
}

// topItems returns up to n keys with the largest counts, ties broken by
// higher secondary count (if given) then smaller id, for determinism.
func topItems(counts map[textctx.ItemID]float64, ok func(textctx.ItemID) bool, n int, secondary map[textctx.ItemID]float64) []textctx.ItemID {
	items := make([]textctx.ItemID, 0, len(counts))
	for it, c := range counts {
		if c > 0 && ok(it) {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(a, b int) bool {
		ca, cb := counts[items[a]], counts[items[b]]
		if ca != cb {
			return ca > cb
		}
		if secondary != nil && secondary[items[a]] != secondary[items[b]] {
			return secondary[items[a]] > secondary[items[b]]
		}
		return items[a] < items[b]
	})
	if len(items) > n {
		items = items[:n]
	}
	return items
}

// overlap is |prefix_n(a) ∩ prefix_n(b)| / n.
func overlap(a, b []textctx.ItemID, n int) float64 {
	na, nb := a, b
	if len(na) > n {
		na = na[:n]
	}
	if len(nb) > n {
		nb = nb[:n]
	}
	set := make(map[textctx.ItemID]bool, len(na))
	for _, it := range na {
		set[it] = true
	}
	var inter int
	for _, it := range nb {
		if set[it] {
			inter++
		}
	}
	return float64(inter) / float64(n)
}
