package engine

// Engine-level shard equivalence: an engine built with Options.Shards
// answers every query — and keeps answering after mutations — exactly
// like the unsharded engine over the same corpus.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/dataset"
)

func sameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if got.Sel.HPF != want.Sel.HPF || !sameIndices(got.Sel.Indices, want.Sel.Indices) {
		t.Fatalf("%s: selection diverged: sharded %v (%v), unsharded %v (%v)",
			label, got.Sel.Indices, got.Sel.HPF, want.Sel.Indices, want.Sel.HPF)
	}
	if got.Breakdown != want.Breakdown {
		t.Fatalf("%s: breakdown diverged: sharded %+v, unsharded %+v", label, got.Breakdown, want.Breakdown)
	}
	if got.SS.K() != want.SS.K() {
		t.Fatalf("%s: retrieved %d places sharded, %d unsharded", label, got.SS.K(), want.SS.K())
	}
	for i := 0; i < want.SS.K(); i++ {
		if got.SS.Places[i].ID != want.SS.Places[i].ID || got.SS.Places[i].Rel != want.SS.Places[i].Rel {
			t.Fatalf("%s: rank %d: sharded (%q, %v), unsharded (%q, %v)", label, i,
				got.SS.Places[i].ID, got.SS.Places[i].Rel, want.SS.Places[i].ID, want.SS.Places[i].Rel)
		}
	}
}

// TestShardedEngineEquivalence runs a parameter grid through a sharded
// and an unsharded engine and requires bitwise-identical results.
func TestShardedEngineEquivalence(t *testing.T) {
	d := testData(t)
	flat := New(d, Options{})
	sharded := New(d, Options{Shards: 4})
	if st := sharded.Stats(); st.Shards != 4 {
		t.Fatalf("Stats.Shards = %d, want 4", st.Shards)
	}
	if info := sharded.ShardInfo(); len(info) != 4 {
		t.Fatalf("ShardInfo reports %d shards, want 4", len(info))
	}
	if flat.ShardInfo() != nil {
		t.Fatal("unsharded engine reports shard info")
	}

	for _, tc := range []struct {
		K, k    int
		lambda  float64
		gamma   float64
		algo    string
		spatial string
	}{
		{100, 10, 0.5, 0.5, "abp", "squared"},
		{100, 10, 0.5, 0.5, "iadu", "exact"},
		{200, 20, 0.25, 0.75, "abp", "radial"},
		{60, 6, 0.9, 0.1, "iadu", "squared"},
		{400, 8, 0.5, 0.5, "topk", "exact"},
	} {
		label := fmt.Sprintf("K=%d k=%d λ=%v γ=%v %s/%s", tc.K, tc.k, tc.lambda, tc.gamma, tc.algo, tc.spatial)
		mk := func(e *Engine) *QueryRequest {
			req := e.NewRequest()
			req.K, req.SmallK = tc.K, tc.k
			req.Lambda, req.Gamma = tc.lambda, tc.gamma
			req.Algo, req.Spatial = tc.algo, tc.spatial
			req.Keywords = []string{"park", "museum"}
			return req
		}
		want, err := flat.Query(context.Background(), mk(flat))
		if err != nil {
			t.Fatalf("%s: unsharded: %v", label, err)
		}
		got, err := sharded.Query(context.Background(), mk(sharded))
		if err != nil {
			t.Fatalf("%s: sharded: %v", label, err)
		}
		sameResult(t, label, want, got)
	}
}

// TestShardedEngineMutationEquivalence feeds both engines the same
// mutation stream and re-checks equivalence at every epoch, including
// that shard epochs never exceed the corpus epoch.
func TestShardedEngineMutationEquivalence(t *testing.T) {
	d := testData(t)
	flat := New(d, Options{})
	sharded := New(d, Options{Shards: 4})

	for gen := 1; gen <= 4; gen++ {
		m := Mutation{
			Upserts: []dataset.Upsert{
				{ID: fmt.Sprintf("shard-live:%d", gen), X: 30 + float64(gen), Y: 60, Context: []string{"shard-live"}},
			},
			Deletes: []string{d.Places[gen*11].Label},
		}
		wantRes, err := flat.Mutate(context.Background(), m)
		if err != nil {
			t.Fatalf("gen %d: unsharded mutate: %v", gen, err)
		}
		gotRes, err := sharded.Mutate(context.Background(), m)
		if err != nil {
			t.Fatalf("gen %d: sharded mutate: %v", gen, err)
		}
		if gotRes.Epoch != wantRes.Epoch || gotRes.Places != wantRes.Places ||
			gotRes.Upserted != wantRes.Upserted || gotRes.Deleted != wantRes.Deleted {
			t.Fatalf("gen %d: mutation results diverged: sharded %+v, unsharded %+v", gen, gotRes, wantRes)
		}

		for _, kw := range [][]string{{"shard-live"}, {"park"}, nil} {
			mk := func(e *Engine) *QueryRequest {
				req := e.NewRequest()
				req.K, req.SmallK = 120, 12
				req.Keywords = kw
				return req
			}
			want, err := flat.Query(context.Background(), mk(flat))
			if err != nil {
				t.Fatalf("gen %d: unsharded query: %v", gen, err)
			}
			got, err := sharded.Query(context.Background(), mk(sharded))
			if err != nil {
				t.Fatalf("gen %d: sharded query: %v", gen, err)
			}
			sameResult(t, fmt.Sprintf("gen=%d kw=%v", gen, kw), want, got)
		}

		corpusEpoch := sharded.Epoch()
		for i, info := range sharded.ShardInfo() {
			if info.Epoch > corpusEpoch {
				t.Fatalf("gen %d: shard %d epoch %d exceeds corpus epoch %d", gen, i, info.Epoch, corpusEpoch)
			}
		}
	}
}
