package engine

import (
	"context"
	"encoding/json"
	"errors"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/textctx"
)

var (
	testDataOnce sync.Once
	testDataVal  *dataset.Dataset
)

// testData generates one 500-place corpus shared by the whole package
// (read-only, exactly as an Engine requires).
func testData(t testing.TB) *dataset.Dataset {
	t.Helper()
	testDataOnce.Do(func() {
		cfg := dataset.DBpediaLike(5)
		cfg.Places = 500
		d, err := dataset.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		testDataVal = d
	})
	return testDataVal
}

// uncached recomputes req's result through the raw pipeline, with no
// tables, no cache and no engine, as the ground truth the cached paths
// must reproduce exactly.
func uncached(t *testing.T, d *dataset.Dataset, req *QueryRequest) (core.Selection, core.Breakdown) {
	t.Helper()
	if _, err := req.Normalize(); err != nil { // idempotent; resolves spatial + keywords
		t.Fatal(err)
	}
	loc := geo.Pt(req.X, req.Y)
	places, err := d.Retrieve(dataset.Query{Loc: loc, Keywords: req.KeywordSet()}, req.K)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := core.ComputeScores(loc, places, core.ScoreOptions{
		Gamma: req.Gamma, Spatial: req.SpatialMethod(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := core.Select(core.Algorithm(req.Algo), ss, core.Params{
		K: req.SmallK, Lambda: req.Lambda, Gamma: req.Gamma,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sel, ss.Evaluate(sel.Indices, req.Lambda)
}

func sameIndices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestQueryCacheStatuses(t *testing.T) {
	e := New(testData(t), Options{})
	req := e.NewRequest()
	req.K, req.SmallK = 60, 5

	res1, err := e.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cache != CacheMiss {
		t.Errorf("first query cache = %q, want miss", res1.Cache)
	}
	req2 := e.NewRequest()
	req2.K, req2.SmallK = 60, 5
	res2, err := e.Query(context.Background(), req2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cache != CacheHit {
		t.Errorf("second query cache = %q, want hit", res2.Cache)
	}
	if res1.SS != res2.SS {
		t.Error("hit did not return the shared score set")
	}
	if !sameIndices(res1.Sel.Indices, res2.Sel.Indices) || res1.Breakdown.Total != res2.Breakdown.Total {
		t.Error("hit result differs from miss result")
	}

	st := e.Stats()
	if st.Builds != 1 || st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want builds/misses/hits 1/1/1", st)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
}

// TestQueryMatchesUncachedPath: for every spatial method and a spread of
// algorithms, the engine's answers (miss path and hit path) must be
// identical to the raw per-request pipeline — the grid tables only
// precompute the very values the raw path computes on the fly
// (Theorem 7.1), so even the floats must match exactly.
func TestQueryMatchesUncachedPath(t *testing.T) {
	d := testData(t)
	e := New(d, Options{})
	for _, spatial := range []string{"squared", "radial", "exact"} {
		for _, algo := range []string{"abp", "iadu", "topk"} {
			req := e.NewRequest()
			req.K, req.SmallK = 60, 5
			req.Spatial, req.Algo = spatial, algo
			req.X, req.Y = 42, 57

			res, err := e.Query(context.Background(), req)
			if err != nil {
				t.Fatalf("%s/%s: %v", spatial, algo, err)
			}
			wantSel, wantB := uncached(t, d, req)
			if !sameIndices(res.Sel.Indices, wantSel.Indices) {
				t.Errorf("%s/%s: indices %v != uncached %v", spatial, algo, res.Sel.Indices, wantSel.Indices)
			}
			if res.Breakdown.Total != wantB.Total {
				t.Errorf("%s/%s: HPF %v != uncached %v", spatial, algo, res.Breakdown.Total, wantB.Total)
			}

			// And the hit path returns the very same answer.
			req2 := e.NewRequest()
			req2.K, req2.SmallK = 60, 5
			req2.Spatial, req2.Algo = spatial, algo
			req2.X, req2.Y = 42, 57
			res2, err := e.Query(context.Background(), req2)
			if err != nil {
				t.Fatal(err)
			}
			if res2.Cache != CacheHit {
				t.Errorf("%s/%s: repeat cache = %q, want hit", spatial, algo, res2.Cache)
			}
			if !sameIndices(res2.Sel.Indices, wantSel.Indices) || res2.Breakdown.Total != wantB.Total {
				t.Errorf("%s/%s: hit result differs from uncached", spatial, algo)
			}
		}
	}
}

// TestScoreSetSharedAcrossStep2Params: algorithm, k and λ are not part of
// the cache key, so varying them reuses the same score set.
func TestScoreSetSharedAcrossStep2Params(t *testing.T) {
	e := New(testData(t), Options{})
	var ss *core.ScoreSet
	for i, q := range []struct {
		algo   string
		k      int
		lambda float64
	}{{"abp", 5, 0.5}, {"iadu", 5, 0.5}, {"abp", 8, 0.5}, {"abp", 5, 0.9}} {
		req := e.NewRequest()
		req.K, req.SmallK = 60, q.k
		req.Algo, req.Lambda = q.algo, q.lambda
		res, err := e.Query(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ss = res.SS
			continue
		}
		if res.SS != ss {
			t.Errorf("case %d: got a different score set; want the shared one", i)
		}
		if res.Cache != CacheHit {
			t.Errorf("case %d: cache = %q, want hit", i, res.Cache)
		}
	}
	if st := e.Stats(); st.Builds != 1 {
		t.Errorf("builds = %d, want 1 across all Step-2 variations", st.Builds)
	}
}

func TestSelectionMemo(t *testing.T) {
	e := New(testData(t), Options{})
	req := e.NewRequest()
	req.K, req.SmallK = 60, 5
	if _, err := e.Query(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	// Grab the entry and check the memo is hit on repetition.
	key, _ := req.Normalize()
	ent, ok := e.cache.get(key.String())
	if !ok {
		t.Fatal("entry not cached")
	}
	if len(ent.sels) != 1 {
		t.Fatalf("memo size = %d, want 1", len(ent.sels))
	}
	req2 := e.NewRequest()
	req2.K, req2.SmallK = 60, 5
	req2.Algo = "iadu"
	if _, err := e.Query(context.Background(), req2); err != nil {
		t.Fatal(err)
	}
	if len(ent.sels) != 2 {
		t.Fatalf("memo size = %d, want 2 after a second algorithm", len(ent.sels))
	}
}

func TestLRUEviction(t *testing.T) {
	e := New(testData(t), Options{CacheEntries: 2})
	locs := []float64{10, 30, 50}
	for _, x := range locs {
		req := e.NewRequest()
		req.K, req.SmallK = 60, 5
		req.X = x
		if _, err := e.Query(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("evictions = %d entries = %d, want 1 and 2", st.Evictions, st.Entries)
	}
	// The first key was evicted: querying it again rebuilds.
	req := e.NewRequest()
	req.K, req.SmallK = 60, 5
	req.X = locs[0]
	res, err := e.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != CacheMiss {
		t.Errorf("evicted key cache = %q, want miss", res.Cache)
	}
	if got := e.Stats().Builds; got != 4 {
		t.Errorf("builds = %d, want 4", got)
	}
}

func TestNormalizeValidation(t *testing.T) {
	e := New(testData(t), Options{MaxK: 2000})
	cases := []func(*QueryRequest){
		func(r *QueryRequest) { r.K = 0 },
		func(r *QueryRequest) { r.K = -1 },
		func(r *QueryRequest) { r.SmallK = 0 },
		func(r *QueryRequest) { r.SmallK = r.K },
		func(r *QueryRequest) { r.SmallK = r.K + 5 },
		func(r *QueryRequest) { r.Lambda = 1.5 },
		func(r *QueryRequest) { r.Lambda = -0.1 },
		func(r *QueryRequest) { r.Gamma = 7 },
		func(r *QueryRequest) { r.Algo = "sorcery" },
		func(r *QueryRequest) { r.Spatial = "wormhole" },
	}
	for i, mutate := range cases {
		req := e.NewRequest()
		mutate(req)
		if _, err := req.Normalize(); !errors.Is(err, ErrBadRequest) {
			t.Errorf("case %d: err = %v, want ErrBadRequest", i, err)
		}
	}
}

func TestNormalizeClampsK(t *testing.T) {
	e := New(testData(t), Options{MaxK: 50})
	req := e.NewRequest()
	req.K, req.SmallK = 400, 5
	key, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if req.K != 50 || req.ClampedFrom() != 400 {
		t.Errorf("K = %d clampedFrom = %d, want 50 and 400", req.K, req.ClampedFrom())
	}
	// The clamped request shares its cache key with a native K=50 request.
	native := e.NewRequest()
	native.K, native.SmallK = 50, 5
	nkey, err := native.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if key.String() != nkey.String() {
		t.Errorf("clamped key %q != native key %q", key, nkey)
	}

	// k beyond the ceiling cannot be satisfied: a bad request.
	req2 := e.NewRequest()
	req2.K, req2.SmallK = 400, 60
	if _, err := req2.Normalize(); !errors.Is(err, ErrBadRequest) {
		t.Errorf("err = %v, want ErrBadRequest", err)
	}
}

func TestKeywordResolution(t *testing.T) {
	d := testData(t)
	e := New(d, Options{})
	word := d.Places[0].Context.Words(d.Dict)[0]

	req := e.NewRequest()
	req.Keywords = []string{" " + word + " ", "", "no-such-word-xyzzy"}
	if _, err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	if req.KeywordSet().Len() != 1 {
		t.Errorf("resolved %d keywords, want 1", req.KeywordSet().Len())
	}

	// Distinct keyword sets must map to distinct cache keys; resolved-
	// identical ones (unknown words dropped) must share a key.
	a := e.NewRequest()
	a.Keywords = []string{word}
	akey, _ := a.Normalize()
	b := e.NewRequest()
	b.Keywords = []string{word, "no-such-word-xyzzy"}
	bkey, _ := b.Normalize()
	c := e.NewRequest()
	ckey, _ := c.Normalize()
	if akey.String() != bkey.String() {
		t.Errorf("keys differ for resolved-identical keyword sets")
	}
	if akey.String() == ckey.String() {
		t.Errorf("keyword and no-keyword requests share a key")
	}
}

func TestRequestFromValues(t *testing.T) {
	e := New(testData(t), Options{})
	q, _ := url.ParseQuery("x=10&y=20&K=60&k=5&lambda=0.25&gamma=0.75&algo=iadu&spatial=radial&keywords=a,b")
	req, err := e.RequestFromValues(q)
	if err != nil {
		t.Fatal(err)
	}
	if req.X != 10 || req.Y != 20 || req.K != 60 || req.SmallK != 5 ||
		req.Lambda != 0.25 || req.Gamma != 0.75 || req.Algo != "iadu" ||
		req.Spatial != "radial" || len(req.Keywords) != 2 {
		t.Errorf("parsed request = %+v", req)
	}

	// Defaults survive absent parameters.
	req2, err := e.RequestFromValues(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	center := e.Corpus().Config.Extent / 2
	if req2.X != center || req2.K != 100 || req2.SmallK != 10 || req2.Algo != "abp" {
		t.Errorf("defaults = %+v", req2)
	}

	// Malformed and non-finite values are rejected.
	for _, raw := range []string{"x=notanumber", "K=abc", "x=NaN", "y=+Inf", "x=-Inf"} {
		q, _ := url.ParseQuery(raw)
		if _, err := e.RequestFromValues(q); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", raw, err)
		}
	}
}

// TestBatchElementDecoding mirrors how /v1/batch seeds each element with
// the corpus defaults before decoding: absent fields keep defaults.
func TestBatchElementDecoding(t *testing.T) {
	e := New(testData(t), Options{})
	req := e.NewRequest()
	if err := json.Unmarshal([]byte(`{"K":60,"k":5,"algo":"iadu"}`), req); err != nil {
		t.Fatal(err)
	}
	center := e.Corpus().Config.Extent / 2
	if req.X != center || req.Y != center {
		t.Errorf("location = (%v, %v), want corpus centre", req.X, req.Y)
	}
	if req.K != 60 || req.SmallK != 5 || req.Algo != "iadu" || req.Lambda != 0.5 {
		t.Errorf("decoded request = %+v", req)
	}
	if _, err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
}

func TestTooFewPlacesIsBadRequest(t *testing.T) {
	e := New(testData(t), Options{})
	req := e.NewRequest()
	req.K, req.SmallK = 20, 19
	// Retrieval may return up to K places; forcing k just below K with a
	// tiny K exercises the post-cache size check without tripping
	// Normalize. If retrieval returns a full K places this is simply a
	// valid query, so only assert on the error's type when it fires.
	if _, err := e.Query(context.Background(), req); err != nil && !errors.Is(err, ErrBadRequest) {
		t.Errorf("err = %v, want nil or ErrBadRequest", err)
	}
}

func TestExactSolverTooLargeSurfacesTyped(t *testing.T) {
	e := New(testData(t), Options{})
	req := e.NewRequest()
	req.K, req.SmallK = 100, 30
	req.Algo = "exact"
	_, err := e.Query(context.Background(), req)
	if !errors.Is(err, core.ErrTooLarge) {
		t.Errorf("err = %v, want core.ErrTooLarge", err)
	}
}

func TestCancelledContextSurfacesTyped(t *testing.T) {
	e := New(testData(t), Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := e.NewRequest()
	req.K, req.SmallK = 60, 5
	_, err := e.Query(ctx, req)
	if !errors.Is(err, core.ErrCancelled) {
		t.Errorf("err = %v, want core.ErrCancelled", err)
	}
	// A failed build is never cached.
	if st := e.Stats(); st.Entries != 0 || st.BuildErrors != 1 {
		t.Errorf("stats after failed build = %+v", st)
	}
}

func TestGridTablesMemoised(t *testing.T) {
	e := New(testData(t), Options{})
	if t1, t2 := e.SquaredTable(), e.SquaredTable(); t1 != t2 {
		t.Error("squared table rebuilt")
	}
	if t1, t2 := e.RadialTable(), e.RadialTable(); t1 != t2 {
		t.Error("radial table rebuilt")
	}
	st := e.Stats()
	if st.SquaredTables != 1 {
		t.Errorf("squared tables = %d, want 1", st.SquaredTables)
	}
	if st.TableBytes == 0 {
		t.Error("table bytes = 0")
	}
	// Serving a radial query materialises that ring count's matrix.
	req := e.NewRequest()
	req.K, req.SmallK = 60, 5
	req.Spatial = "radial"
	if _, err := e.Query(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().RadialResolutions; got != 1 {
		t.Errorf("radial resolutions = %d, want 1", got)
	}
}

func TestBuildResponseShape(t *testing.T) {
	e := New(testData(t), Options{})
	req := e.NewRequest()
	req.K, req.SmallK = 60, 5
	res, err := e.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	resp := e.BuildResponse(req, res, nil)
	if resp.Query.K != 60 || resp.Query.SmallK != 5 || resp.Query.Algo != "abp" {
		t.Errorf("query echo = %+v", resp.Query)
	}
	if resp.HPF != res.Breakdown.Total {
		t.Errorf("hpf = %v, want %v", resp.HPF, res.Breakdown.Total)
	}
	if len(resp.Results) != 5 {
		t.Errorf("results = %d, want 5", len(resp.Results))
	}
	if resp.Diagnostics["cache"] != CacheMiss {
		t.Errorf("diagnostics cache = %v, want miss", resp.Diagnostics["cache"])
	}
	if _, ok := resp.Diagnostics["stage_ms"]; ok {
		t.Error("stage_ms present without a trace")
	}
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"query"`, `"hpf"`, `"breakdown"`, `"diagnostics"`, `"results"`} {
		if !strings.Contains(string(b), field) {
			t.Errorf("marshalled response missing %s", field)
		}
	}
}

// TestFingerprintKeysAreCanonical guards the textctx helper the cache key
// leans on: order and duplicates must not matter.
func TestFingerprintKeysAreCanonical(t *testing.T) {
	a := textctx.NewSet(3, 1, 2)
	b := textctx.NewSet(2, 2, 1, 3)
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("fingerprints differ: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
	if got := textctx.NewSet().Fingerprint(); got != "" {
		t.Errorf("empty set fingerprint = %q", got)
	}
}
