package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
)

// ErrWAL marks a mutation rejected because its write-ahead-log append
// failed: the batch was NOT applied, NOT published, and must not be
// considered acknowledged. Servers map it to 503 — the corpus keeps
// serving reads, the client may retry.
var ErrWAL = errors.New("engine: write-ahead log append failed")

// Mutation is one corpus mutation batch: deletes apply first, then
// upserts in order (dataset.Batch semantics).
type Mutation struct {
	Upserts []dataset.Upsert `json:"upserts,omitempty"`
	Deletes []string         `json:"deletes,omitempty"`
}

// Size returns the number of individual operations in the batch.
func (m Mutation) Size() int { return len(m.Upserts) + len(m.Deletes) }

// EncodeMutation serialises m as a WAL record payload; DecodeMutation
// inverts it during replay. JSON keeps the log self-describing and
// versionable (unknown fields are ignored on decode).
func EncodeMutation(m Mutation) ([]byte, error) { return json.Marshal(m) }

// DecodeMutation parses a WAL record payload written by EncodeMutation.
func DecodeMutation(payload []byte) (Mutation, error) {
	var m Mutation
	if err := json.Unmarshal(payload, &m); err != nil {
		return Mutation{}, fmt.Errorf("engine: decode mutation record: %w", err)
	}
	return m, nil
}

// MutationResult reports what one Mutate call published.
type MutationResult struct {
	// Epoch is the corpus epoch this batch published.
	Epoch uint64 `json:"epoch"`
	// Upserted and Deleted count the operations that took effect; Missing
	// lists delete IDs that named no live place.
	Upserted int      `json:"upserted"`
	Deleted  int      `json:"deleted"`
	Missing  []string `json:"missing,omitempty"`
	// Swept is the number of stale-epoch score sets removed from the LRU.
	Swept int `json:"swept_entries"`
	// Places is the corpus size after the batch.
	Places int `json:"places"`
}

// Mutate applies m as one atomic batch and publishes the next corpus
// epoch. The new epoch is built copy-on-write off the current one
// (dataset.ApplyCtx), so in-flight queries — pinned to the snapshot their
// request was created on — keep reading their epoch undisturbed and no
// query ever observes a half-applied batch. After the swap, every cached
// score set of an older epoch is unreachable (cache keys carry the epoch)
// and is proactively swept from the LRU; the singleflight key carries the
// epoch too, so a herd racing the mutation can never be handed a
// stale-epoch build under the new epoch's key. The shared grid tables are
// untouched: they are corpus-independent (Theorem 7.1).
//
// Durability ordering: when a WAL is attached, the batch is appended to
// the log — and fsynced, under the log's SyncAlways policy — strictly
// before the epoch pointer swap. The last context check sits before the
// append: once the record is durable the mutation is committed and WILL
// be replayed after a crash, so nothing may fail it anymore, and
// conversely a batch whose append failed (ErrWAL) was never published
// and can never be resurrected. ctx termination earlier in the call —
// while waiting for the mutation lock, or during the O(n) copy, which
// ApplyCtx checks periodically — abandons the batch with the context's
// error before any of it becomes visible.
//
// Batches are serialised; each Mutate call costs one O(n) corpus copy
// plus an index rebuild, which is the price of strict snapshot isolation
// at this corpus scale. Validation failures wrap ErrBadRequest.
func (e *Engine) Mutate(ctx context.Context, m Mutation) (*MutationResult, error) {
	if m.Size() == 0 {
		return nil, fmt.Errorf("%w: empty mutation batch", ErrBadRequest)
	}
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	// Serialised batches can queue on mutMu; re-check before paying for
	// the copy a departed caller no longer wants.
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}

	cur := e.snap.Load()
	batch := dataset.Batch{Upserts: m.Upserts, Deletes: m.Deletes}
	var (
		next       *dataset.Dataset
		nextShards *dataset.ShardView
		st         dataset.ApplyStats
		err        error
	)
	if cur.shards != nil {
		// Sharded corpus: the view's Apply runs the same copy-on-write
		// ApplyCtx and additionally rebuilds only the shards the batch
		// touches, stamping them with the new epoch (untouched shards keep
		// their tree and epoch — that is how per-shard epochs compose into
		// the corpus epoch).
		next, nextShards, st, err = cur.shards.Apply(ctx, batch, cur.epoch+1)
	} else {
		next, st, err = cur.data.ApplyCtx(ctx, batch)
	}
	if err != nil {
		if errors.Is(err, core.ErrCancelled) || errors.Is(err, core.ErrDeadline) {
			return nil, err
		}
		// Every other Apply failure mode is a caller error (empty IDs,
		// non-finite coordinates, emptying the corpus).
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}

	// Point of no return: after a successful WAL append the batch is
	// durable and will be replayed on restart, so it must also be
	// published now — no error or cancellation path may exist between
	// the append and the pointer swap.
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	if e.wal != nil {
		payload, err := EncodeMutation(m)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		if err := e.wal.Append(ctx, cur.epoch+1, payload); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrWAL, err)
		}
	}
	ns := &corpusSnapshot{epoch: cur.epoch + 1, data: next, shards: nextShards}
	e.snap.Store(ns)

	// Every cache key is prefixed with its epoch; after the swap nothing
	// can look up an older epoch's key except requests already pinned to
	// it, so sweep the stale entries rather than waiting for capacity
	// pressure to push them out.
	prefix := fmt.Sprintf("e=%d;", ns.epoch)
	swept := e.cache.sweep(func(key string) bool { return !strings.HasPrefix(key, prefix) })

	e.mutations.Add(1)
	e.upserted.Add(uint64(st.Upserted))
	e.deleted.Add(uint64(st.Deleted))
	e.swept.Add(uint64(swept))
	return &MutationResult{
		Epoch:    ns.epoch,
		Upserted: st.Upserted,
		Deleted:  st.Deleted,
		Missing:  st.Missing,
		Swept:    swept,
		Places:   len(next.Places),
	}, nil
}
