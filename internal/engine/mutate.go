package engine

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/dataset"
)

// Mutation is one corpus mutation batch: deletes apply first, then
// upserts in order (dataset.Batch semantics).
type Mutation struct {
	Upserts []dataset.Upsert `json:"upserts,omitempty"`
	Deletes []string         `json:"deletes,omitempty"`
}

// Size returns the number of individual operations in the batch.
func (m Mutation) Size() int { return len(m.Upserts) + len(m.Deletes) }

// MutationResult reports what one Mutate call published.
type MutationResult struct {
	// Epoch is the corpus epoch this batch published.
	Epoch uint64 `json:"epoch"`
	// Upserted and Deleted count the operations that took effect; Missing
	// lists delete IDs that named no live place.
	Upserted int      `json:"upserted"`
	Deleted  int      `json:"deleted"`
	Missing  []string `json:"missing,omitempty"`
	// Swept is the number of stale-epoch score sets removed from the LRU.
	Swept int `json:"swept_entries"`
	// Places is the corpus size after the batch.
	Places int `json:"places"`
}

// Mutate applies m as one atomic batch and publishes the next corpus
// epoch. The new epoch is built copy-on-write off the current one
// (dataset.Apply), so in-flight queries — pinned to the snapshot their
// request was created on — keep reading their epoch undisturbed and no
// query ever observes a half-applied batch. After the swap, every cached
// score set of an older epoch is unreachable (cache keys carry the epoch)
// and is proactively swept from the LRU; the singleflight key carries the
// epoch too, so a herd racing the mutation can never be handed a
// stale-epoch build under the new epoch's key. The shared grid tables are
// untouched: they are corpus-independent (Theorem 7.1).
//
// Batches are serialised; each Mutate call costs one O(n) corpus copy
// plus an index rebuild, which is the price of strict snapshot isolation
// at this corpus scale. Validation failures wrap ErrBadRequest.
func (e *Engine) Mutate(ctx context.Context, m Mutation) (*MutationResult, error) {
	if m.Size() == 0 {
		return nil, fmt.Errorf("%w: empty mutation batch", ErrBadRequest)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.mutMu.Lock()
	defer e.mutMu.Unlock()

	cur := e.snap.Load()
	next, st, err := cur.data.Apply(dataset.Batch{Upserts: m.Upserts, Deletes: m.Deletes})
	if err != nil {
		// Every Apply failure mode is a caller error (empty IDs, non-finite
		// coordinates, emptying the corpus).
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	ns := &corpusSnapshot{epoch: cur.epoch + 1, data: next}
	e.snap.Store(ns)

	// Every cache key is prefixed with its epoch; after the swap nothing
	// can look up an older epoch's key except requests already pinned to
	// it, so sweep the stale entries rather than waiting for capacity
	// pressure to push them out.
	prefix := fmt.Sprintf("e=%d;", ns.epoch)
	swept := e.cache.sweep(func(key string) bool { return !strings.HasPrefix(key, prefix) })

	e.mutations.Add(1)
	e.upserted.Add(uint64(st.Upserted))
	e.deleted.Add(uint64(st.Deleted))
	e.swept.Add(uint64(swept))
	return &MutationResult{
		Epoch:    ns.epoch,
		Upserted: st.Upserted,
		Deleted:  st.Deleted,
		Missing:  st.Missing,
		Swept:    swept,
		Places:   len(next.Places),
	}, nil
}
