package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
)

// mutTestData generates a fresh corpus per test: mutation tests must not
// share the package-wide read-only dataset.
func mutTestData(t *testing.T, seed int64, places int) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DBpediaLike(seed)
	cfg.Places = places
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMutatePublishesNewEpoch(t *testing.T) {
	e := New(mutTestData(t, 21, 300), Options{})
	if e.Epoch() != 0 {
		t.Fatalf("fresh engine epoch = %d, want 0", e.Epoch())
	}
	before := len(e.Corpus().Places)
	victim := e.Corpus().Places[0].Label

	res, err := e.Mutate(context.Background(), Mutation{
		Upserts: []dataset.Upsert{{ID: "poi:new", X: 5, Y: 5, Context: []string{"fresh-word"}}},
		Deletes: []string{victim, "ghost"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || e.Epoch() != 1 {
		t.Errorf("epoch = %d / %d, want 1", res.Epoch, e.Epoch())
	}
	if res.Upserted != 1 || res.Deleted != 1 || len(res.Missing) != 1 {
		t.Errorf("result = %+v", res)
	}
	if res.Places != before || len(e.Corpus().Places) != before {
		t.Errorf("places = %d, want %d", res.Places, before)
	}

	st := e.Stats()
	if st.Epoch != 1 || st.Mutations != 1 || st.PlacesUpserted != 1 || st.PlacesDeleted != 1 {
		t.Errorf("stats = %+v", st)
	}

	// Invalid batches are caller errors and publish nothing.
	if _, err := e.Mutate(context.Background(), Mutation{}); err == nil {
		t.Error("empty mutation accepted")
	}
	if _, err := e.Mutate(context.Background(), Mutation{
		Upserts: []dataset.Upsert{{ID: ""}},
	}); err == nil {
		t.Error("invalid upsert accepted")
	} else if !strings.Contains(err.Error(), "bad request") {
		t.Errorf("invalid upsert error %v does not wrap ErrBadRequest", err)
	}
	if e.Epoch() != 1 {
		t.Errorf("failed mutations moved the epoch to %d", e.Epoch())
	}
}

// TestMutationSweepsStaleEntries: after a mutation, score sets of older
// epochs are unreachable (new requests pin the new epoch, so their keys
// differ) and are proactively removed from the LRU rather than lingering
// until capacity pressure.
func TestMutationSweepsStaleEntries(t *testing.T) {
	e := New(mutTestData(t, 22, 300), Options{})
	ctx := context.Background()
	ask := func() *QueryRequest {
		req := e.NewRequest()
		req.K, req.SmallK = 60, 5
		return req
	}

	if res, err := e.Query(ctx, ask()); err != nil || res.Cache != CacheMiss {
		t.Fatalf("first query: %v / %v", res, err)
	}
	if res, err := e.Query(ctx, ask()); err != nil || res.Cache != CacheHit {
		t.Fatalf("second query: %v / %v", res, err)
	}
	if st := e.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}

	// Pin a request to epoch 0 before mutating.
	old := ask()

	if _, err := e.Mutate(ctx, Mutation{
		Upserts: []dataset.Upsert{{ID: "poi:far", X: 99, Y: 99, Context: []string{"far"}}},
	}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.SweptEntries != 1 || st.Entries != 0 {
		t.Errorf("after mutation: swept = %d entries = %d, want 1 and 0", st.SweptEntries, st.Entries)
	}

	// Identical parameters on the new epoch rebuild under a new key
	// (exactly one build per (epoch, key))...
	if res, err := e.Query(ctx, ask()); err != nil || res.Cache != CacheMiss {
		t.Fatalf("post-mutation query: %v / %v", res, err)
	}
	if res, err := e.Query(ctx, ask()); err != nil || res.Cache != CacheHit {
		t.Fatalf("post-mutation repeat: %v / %v", res, err)
	}

	// ...and the epoch-0 request still evaluates against its pinned
	// corpus: its key was swept, so it rebuilds, on epoch-0 data.
	resOld, err := e.Query(ctx, old)
	if err != nil {
		t.Fatal(err)
	}
	if resOld.Cache != CacheMiss {
		t.Errorf("old-epoch query cache = %q, want miss (stale entry swept)", resOld.Cache)
	}
	if old.Epoch() != 0 {
		t.Errorf("old request epoch = %d, want 0", old.Epoch())
	}
	for _, p := range resOld.SS.Places {
		if p.ID == "poi:far" {
			t.Error("epoch-0 query observed an epoch-1 place")
		}
	}

	if builds := e.Stats().Builds; builds != 3 {
		t.Errorf("builds = %d, want 3 (one per (epoch, key) actually queried)", builds)
	}
}

// TestMutationRekeysThunderingHerd: requests pinned to different epochs
// never share a cache key or a singleflight flight, so a herd racing a
// mutation cannot be handed a stale-epoch build.
func TestMutationRekeysThunderingHerd(t *testing.T) {
	e := New(mutTestData(t, 23, 300), Options{})
	ctx := context.Background()

	oldReq := e.NewRequest()
	oldReq.K, oldReq.SmallK = 60, 5
	oldKey, err := oldReq.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Mutate(ctx, Mutation{
		Upserts: []dataset.Upsert{{ID: "poi:shift", X: 1, Y: 1, Context: []string{"shift"}}},
	}); err != nil {
		t.Fatal(err)
	}
	newReq := e.NewRequest()
	newReq.K, newReq.SmallK = 60, 5
	newKey, err := newReq.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if oldKey.String() == newKey.String() {
		t.Fatalf("identical parameters share key %q across epochs", oldKey)
	}
	if !strings.HasPrefix(oldKey.String(), "e=0;") || !strings.HasPrefix(newKey.String(), "e=1;") {
		t.Errorf("keys missing epoch prefixes: %q / %q", oldKey, newKey)
	}
}

// TestConcurrentMutateAndQueryEpochPinned is the isolation test the
// tentpole stands on, run under -race by the Makefile race target: a
// mutator republishes a block of places generation after generation while
// queries run; every query must observe exactly one generation — never a
// torn batch — because it reads the snapshot its request pinned.
func TestConcurrentMutateAndQueryEpochPinned(t *testing.T) {
	d := mutTestData(t, 24, 300)
	e := New(d, Options{CacheEntries: 64})
	ctx := context.Background()

	const block = 40
	ids := make([]string, block)
	for i := range ids {
		ids[i] = fmt.Sprintf("mut:%d", i)
	}
	// Generation g rewrites every block place's context to exactly
	// {"gen:<g>"}: within one epoch all block places have Equal contexts,
	// so a mixed-generation retrieval is immediately visible.
	mutate := func(g int) error {
		m := Mutation{}
		word := fmt.Sprintf("gen:%d", g)
		for i, id := range ids {
			m.Upserts = append(m.Upserts, dataset.Upsert{
				ID: id, X: 10 + float64(i%8), Y: 10 + float64(i/8), Context: []string{word},
			})
		}
		_, err := e.Mutate(ctx, m)
		return err
	}
	if err := mutate(0); err != nil {
		t.Fatal(err)
	}

	const generations = 25
	done := make(chan struct{})
	go func() {
		defer close(done)
		for g := 1; g <= generations; g++ {
			if err := mutate(g); err != nil {
				t.Errorf("generation %d: %v", g, err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				req := e.NewRequest()
				req.X, req.Y = 12, 12
				req.K, req.SmallK = 30, 4
				epoch := req.Epoch()
				res, err := e.Query(ctx, req)
				if err != nil {
					t.Errorf("worker %d query %d: %v", w, i, err)
					return
				}
				if req.Epoch() != epoch {
					t.Errorf("worker %d: request epoch moved %d -> %d", w, epoch, req.Epoch())
					return
				}
				var gen *int
				for _, p := range res.SS.Places {
					if !strings.HasPrefix(p.ID, "mut:") {
						continue
					}
					items := p.Context.Items()
					if len(items) != 1 {
						t.Errorf("worker %d: block place %q context %v", w, p.ID, items)
						return
					}
					g := int(items[0])
					if gen == nil {
						gen = &g
					} else if *gen != g {
						t.Errorf("worker %d query %d (epoch %d): torn batch — saw generation words %d and %d",
							w, i, epoch, *gen, g)
						return
					}
				}
			}
		}(w)
	}
	<-done
	wg.Wait()

	st := e.Stats()
	if st.Epoch != generations+1 || st.Mutations != generations+1 {
		t.Errorf("epoch = %d mutations = %d, want %d", st.Epoch, st.Mutations, generations+1)
	}

	// Quiesced: a final query sees the final generation on every block
	// place it retrieves.
	req := e.NewRequest()
	req.X, req.Y = 12, 12
	req.K, req.SmallK = 30, 4
	res, err := e.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	finalWord := fmt.Sprintf("gen:%d", generations)
	finalID, ok := e.Corpus().Dict.Lookup(finalWord)
	if !ok {
		t.Fatalf("final generation word %q not interned", finalWord)
	}
	sawBlock := false
	for _, p := range res.SS.Places {
		if strings.HasPrefix(p.ID, "mut:") {
			sawBlock = true
			if !p.Context.Contains(finalID) {
				t.Errorf("place %q does not carry the final generation", p.ID)
			}
		}
	}
	if !sawBlock {
		t.Error("final query retrieved no block places; test exercised nothing")
	}
}
