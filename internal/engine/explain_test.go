package engine

import (
	"context"
	"testing"
)

// TestExplainReturnsReport: Explain evaluates the query and yields a
// self-contained report with the greedy trace, pruning counters and grid
// statistics, matching what Query would have selected.
func TestExplainReturnsReport(t *testing.T) {
	e := New(testData(t), Options{})
	req := e.NewRequest()
	req.K, req.SmallK = 80, 8

	res, rep, err := e.Explain(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != CacheBypass {
		t.Errorf("Cache = %q, want %q", res.Cache, CacheBypass)
	}
	if rep.Algorithm != req.Algo {
		t.Errorf("Algorithm = %q, want %q", rep.Algorithm, req.Algo)
	}
	if len(rep.Rounds) == 0 {
		t.Error("report has no greedy rounds")
	}
	if rep.Pruning == nil || rep.Pruning.CandidatePairs == 0 {
		t.Errorf("Pruning = %+v, want populated", rep.Pruning)
	}
	if rep.Grid == nil || rep.Grid.Kind != "squared" || rep.Grid.SampledPairs == 0 {
		t.Errorf("Grid = %+v, want squared stats with a sampled error", rep.Grid)
	}

	// The same request through Query must select identically — explain is
	// read-only introspection.
	q := e.NewRequest()
	q.K, q.SmallK = 80, 8
	qres, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIndices(res.Sel.Indices, qres.Sel.Indices) {
		t.Errorf("Explain selected %v, Query selected %v", res.Sel.Indices, qres.Sel.Indices)
	}
}

// TestExplainBypassesCache: a resident score set does not satisfy an
// Explain (which must recompute to collect events), but an Explain on a
// cold key warms the cache for subsequent queries.
func TestExplainBypassesCache(t *testing.T) {
	e := New(testData(t), Options{})

	// Cold key: Explain builds, warms the cache.
	req := e.NewRequest()
	req.K, req.SmallK = 70, 7
	if _, _, err := e.Explain(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Explains != 1 || s.Builds != 1 {
		t.Errorf("after cold explain: Explains = %d, Builds = %d, want 1, 1", s.Explains, s.Builds)
	}
	q := e.NewRequest()
	q.K, q.SmallK = 70, 7
	res, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != CacheHit {
		t.Errorf("query after explain: Cache = %q, want hit (explain warms cold keys)", res.Cache)
	}

	// Warm key: Explain still rebuilds (report must be fresh), leaving the
	// resident entry in place.
	req2 := e.NewRequest()
	req2.K, req2.SmallK = 70, 7
	res2, rep, err := e.Explain(context.Background(), req2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cache != CacheBypass || len(rep.Rounds) == 0 {
		t.Errorf("warm explain: Cache = %q, rounds = %d; want bypass with a trace", res2.Cache, len(rep.Rounds))
	}
	if s := e.Stats(); s.Builds != 2 {
		t.Errorf("warm explain did not rebuild: Builds = %d, want 2", s.Builds)
	}
	// Hits/misses unchanged by the explains themselves: one query → one hit.
	if s := e.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Errorf("Hits = %d, Misses = %d, want 1, 0 (explains are not lookups)", s.Hits, s.Misses)
	}
}

// TestStatsHitRatio pins the hit-ratio definition: hits over lookups,
// zero before any lookup.
func TestStatsHitRatio(t *testing.T) {
	e := New(testData(t), Options{})
	if r := e.Stats().HitRatio(); r != 0 {
		t.Errorf("HitRatio before any lookup = %v, want 0", r)
	}
	req := e.NewRequest()
	req.K, req.SmallK = 60, 6
	for i := 0; i < 4; i++ {
		r := e.NewRequest()
		r.K, r.SmallK = 60, 6
		if _, err := e.Query(context.Background(), r); err != nil {
			t.Fatal(err)
		}
	}
	// 1 miss + 3 hits = 0.75.
	if r := e.Stats().HitRatio(); r != 0.75 {
		t.Errorf("HitRatio = %v, want 0.75 (3 hits / 4 lookups)", r)
	}
}
