package engine

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/explain"
)

// CacheBypass is the Result.Cache value reported by Explain: the score set
// was recomputed regardless of cache state, so none of the ordinary
// dispositions (hit, miss, coalesced) applies.
const CacheBypass = "bypass"

// Explain evaluates req like Query but recomputes both steps under an
// explain collector, returning the algorithm-level introspection report
// alongside the result. The LRU and singleflight layers are deliberately
// bypassed: a cached score set carries no pruning counters and a memoised
// selection carries no greedy trace, so serving either would return an
// empty report. The recomputed entry still warms the cache when the key
// was not already resident (the work is done, so keep it), but never
// displaces a resident entry's memoised selections.
//
// The report's second return is self-contained (deep-copied by
// Collector.Report), safe to retain and serialise after the call.
func (e *Engine) Explain(ctx context.Context, req *QueryRequest) (*Result, *explain.Report, error) {
	key, err := req.Normalize()
	if err != nil {
		return nil, nil, err
	}
	e.explains.Add(1)

	col := explain.New()
	ctx = explain.WithCollector(ctx, col)

	cached := e.cache.contains(key.String())
	ent, err := e.build(ctx, req)
	if err != nil {
		e.buildErrors.Add(1)
		return nil, nil, err
	}
	if !cached {
		e.cache.add(key.String(), ent)
	}

	if ent.ss.K() <= req.SmallK {
		return nil, nil, fmt.Errorf("%w: retrieved %d places; need more than k=%d",
			ErrBadRequest, ent.ss.K(), req.SmallK)
	}
	p := core.Params{K: req.SmallK, Lambda: req.Lambda, Gamma: req.Gamma}
	// Step 2 runs directly, not through the entry's selection memo: the
	// greedy rounds must actually execute for the trace to exist.
	sel, err := core.SelectCtx(ctx, core.Algorithm(req.Algo), ent.ss, p)
	if err != nil {
		return nil, nil, fmt.Errorf("select: %w", err)
	}
	res := &Result{
		SS:        ent.ss,
		Sel:       sel,
		Breakdown: ent.ss.Evaluate(sel.Indices, req.Lambda),
		Cache:     CacheBypass,
	}
	return res, col.Report(), nil
}
