package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestConcurrentQueriesBuildOncePerKey hammers the LRU + singleflight with
// a mixed workload — many goroutines per key across several distinct keys
// — and asserts the cross-query invariants: exactly one score-set build
// per distinct key, every request accounted as hit, miss or coalesced,
// and every result identical to the uncached per-request pipeline. Run
// under -race this is the concurrency test the serving path leans on.
func TestConcurrentQueriesBuildOncePerKey(t *testing.T) {
	d := testData(t)
	e := New(d, Options{CacheEntries: 32})

	const distinctKeys = 5
	const workersPerKey = 16
	reqFor := func(key int) *QueryRequest {
		req := e.NewRequest()
		req.K, req.SmallK = 60, 5
		req.X = 15 + float64(key)*12
		req.Y = 20 + float64(key)*9
		return req
	}

	results := make([][]*Result, distinctKeys)
	errs := make([][]error, distinctKeys)
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	for key := 0; key < distinctKeys; key++ {
		results[key] = make([]*Result, workersPerKey)
		errs[key] = make([]error, workersPerKey)
		for w := 0; w < workersPerKey; w++ {
			wg.Add(1)
			go func(key, w int) {
				defer wg.Done()
				start.Wait() // maximise contention: everyone starts together
				res, err := e.Query(context.Background(), reqFor(key))
				results[key][w], errs[key][w] = res, err
			}(key, w)
		}
	}
	start.Done()
	wg.Wait()

	for key := range errs {
		for w, err := range errs[key] {
			if err != nil {
				t.Fatalf("key %d worker %d: %v", key, w, err)
			}
		}
	}

	st := e.Stats()
	if st.Builds != distinctKeys {
		t.Errorf("builds = %d, want exactly %d (one per distinct key)", st.Builds, distinctKeys)
	}
	if st.BuildErrors != 0 {
		t.Errorf("build errors = %d, want 0", st.BuildErrors)
	}
	if total := st.Hits + st.Misses + st.Coalesced; total != distinctKeys*workersPerKey {
		t.Errorf("hits+misses+coalesced = %d, want %d", total, distinctKeys*workersPerKey)
	}
	if st.Entries != distinctKeys {
		t.Errorf("cache entries = %d, want %d", st.Entries, distinctKeys)
	}

	// Every worker on a key saw the same shared score set and the same
	// selection, and the shared answer equals the uncached pipeline's.
	for key := range results {
		wantSel, wantB := uncached(t, d, reqFor(key))
		for w, res := range results[key] {
			if res.SS != results[key][0].SS {
				t.Errorf("key %d worker %d: score set not shared", key, w)
			}
			if !sameIndices(res.Sel.Indices, wantSel.Indices) {
				t.Errorf("key %d worker %d: indices %v != uncached %v", key, w, res.Sel.Indices, wantSel.Indices)
			}
			if res.Breakdown.Total != wantB.Total {
				t.Errorf("key %d worker %d: HPF %v != uncached %v", key, w, res.Breakdown.Total, wantB.Total)
			}
			switch res.Cache {
			case CacheHit, CacheMiss, CacheCoalesced:
			default:
				t.Errorf("key %d worker %d: cache status %q", key, w, res.Cache)
			}
		}
	}
}

// TestConcurrentStep2Variants drives one score set's selection memo from
// many goroutines with distinct (algorithm, k, λ) triples: still one
// build, and each triple's answer is deterministic across goroutines.
func TestConcurrentStep2Variants(t *testing.T) {
	e := New(testData(t), Options{})
	variants := []struct {
		algo   string
		k      int
		lambda float64
	}{
		{"abp", 5, 0.5}, {"abp", 8, 0.5}, {"abp", 5, 0.9},
		{"iadu", 5, 0.5}, {"iadu", 8, 0.2}, {"topk", 6, 0.5},
	}
	const rounds = 8
	got := make([][]*Result, len(variants))
	var wg sync.WaitGroup
	for vi := range variants {
		got[vi] = make([]*Result, rounds)
		for r := 0; r < rounds; r++ {
			wg.Add(1)
			go func(vi, r int) {
				defer wg.Done()
				v := variants[vi]
				req := e.NewRequest()
				req.K, req.SmallK = 60, v.k
				req.Algo, req.Lambda = v.algo, v.lambda
				res, err := e.Query(context.Background(), req)
				if err != nil {
					panic(fmt.Sprintf("variant %d: %v", vi, err))
				}
				got[vi][r] = res
			}(vi, r)
		}
	}
	wg.Wait()

	if st := e.Stats(); st.Builds != 1 {
		t.Errorf("builds = %d, want 1 (Step-2 parameters are not in the cache key)", st.Builds)
	}
	for vi := range got {
		for r := 1; r < rounds; r++ {
			if !sameIndices(got[vi][r].Sel.Indices, got[vi][0].Sel.Indices) {
				t.Errorf("variant %d: selection differs across goroutines", vi)
			}
		}
	}
}

// TestWaiterSurvivesLeaderCancellation: when the flight leader's context
// is cancelled mid-build, a healthy waiter retries and becomes the new
// leader instead of inheriting the cancellation.
func TestWaiterSurvivesLeaderCancellation(t *testing.T) {
	e := New(testData(t), Options{})
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	cancelLeader() // the leader is doomed from the start

	req := e.NewRequest()
	req.K, req.SmallK = 60, 5
	if _, err := e.Query(leaderCtx, req); err == nil {
		t.Fatal("cancelled leader unexpectedly succeeded")
	}

	// A fresh caller with a live context succeeds: the failed build was
	// not cached and does not poison the key.
	req2 := e.NewRequest()
	req2.K, req2.SmallK = 60, 5
	res, err := e.Query(context.Background(), req2)
	if err != nil {
		t.Fatalf("follow-up query after cancelled build: %v", err)
	}
	if res.Cache != CacheMiss {
		t.Errorf("follow-up cache = %q, want miss (rebuild)", res.Cache)
	}
}

// TestWaiterSurvivesLeaderPanic: a waiter whose flight leader panics
// mid-build retries, becomes the new leader and succeeds. The panic stays
// with the leader (where HTTP recovery middleware handles it) and the
// errFlightPanic sentinel never escapes to a caller.
func TestWaiterSurvivesLeaderPanic(t *testing.T) {
	e := New(testData(t), Options{})
	newReq := func() *QueryRequest {
		req := e.NewRequest()
		req.K, req.SmallK = 60, 5
		return req
	}

	var once int32
	entered := make(chan struct{})
	release := make(chan struct{})
	restore := core.SetCheckpointHook(func(stage string) {
		if stage == "scores:start" && atomic.CompareAndSwapInt32(&once, 0, 1) {
			close(entered) // the leader is inside the build; waiters can join
			<-release
			panic("injected build panic")
		}
	})
	defer restore()

	leaderPanic := make(chan any, 1)
	go func() {
		defer func() { leaderPanic <- recover() }()
		_, err := e.Query(context.Background(), newReq())
		t.Errorf("doomed leader returned without panicking (err = %v)", err)
	}()

	<-entered
	waiterRes := make(chan error, 1)
	var res *Result
	go func() {
		r, err := e.Query(context.Background(), newReq())
		res = r
		waiterRes <- err
	}()
	// Give the waiter time to join the flight before the leader blows up;
	// if it joins late it simply leads a clean build, which the assertions
	// below still accept.
	time.Sleep(100 * time.Millisecond)
	close(release)

	if p := <-leaderPanic; p == nil {
		t.Fatal("leader did not panic")
	}
	if err := <-waiterRes; err != nil {
		if errors.Is(err, errFlightPanic) {
			t.Fatalf("errFlightPanic escaped to a caller: %v", err)
		}
		t.Fatalf("waiter after leader panic: %v", err)
	}
	if res == nil || len(res.Sel.Indices) != 5 {
		t.Fatalf("waiter result = %+v, want a full selection", res)
	}
	if res.Cache != CacheMiss {
		t.Errorf("waiter cache = %q, want miss (waiter became the new leader)", res.Cache)
	}

	// The panicked build neither cached an entry nor poisoned the key: a
	// later identical request hits the waiter's rebuilt entry.
	after, err := e.Query(context.Background(), newReq())
	if err != nil {
		t.Fatal(err)
	}
	if after.Cache != CacheHit {
		t.Errorf("follow-up cache = %q, want hit", after.Cache)
	}
}
