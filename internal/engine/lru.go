package engine

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// lruCache is a size-bounded, mutex-guarded LRU over score-set entries.
// Capacity is counted in entries, not bytes: a score set's footprint is
// ~12·K² bytes (three packed K×K symmetric matrices), so the caller picks
// the capacity for its K ceiling (see Options.CacheEntries).
type lruCache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions atomic.Uint64
}

type lruItem struct {
	key string
	val *entry
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// get returns the entry for key, marking it most recently used.
func (c *lruCache) get(key string) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).val, true
}

// add inserts (or refreshes) key, evicting the least recently used entry
// beyond capacity.
func (c *lruCache) add(key string, v *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruItem{key: key, val: v})
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruItem).key)
		c.evictions.Add(1)
	}
}

// sweep removes every resident entry whose key stale reports true and
// returns how many were removed. Swept entries are not counted as
// evictions: eviction is capacity pressure, sweeping is invalidation
// (stale corpus epochs after a mutation).
func (c *lruCache) sweep(stale func(key string) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		it := el.Value.(*lruItem)
		if stale(it.key) {
			c.ll.Remove(el)
			delete(c.items, it.key)
			n++
		}
		el = next
	}
	return n
}

// contains reports whether key is resident without promoting it — a pure
// peek for callers (Engine.Explain) that must not perturb recency order.
func (c *lruCache) contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *lruCache) evicted() uint64 { return c.evictions.Load() }
