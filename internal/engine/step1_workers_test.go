package engine

import (
	"context"
	"math"
	"testing"
)

// TestStep1WorkersInvisibleToCachingAndResults: the Step1Workers knob may
// only change how fast a miss computes, never what it computes. The cache
// key must not encode it (so a restart with a different worker count
// still hits WAL-warmed keys), and results — including the memoised
// Step-2 selections keyed only by (algo, k, λ) — must be bit-identical
// across worker settings. This is sound because the parallel Step-1
// fills are bit-identical to the sequential ones, which
// core.TestComputeScoresWorkersBitIdentical pins down, tie-heavy and
// NaN-adjacent instances included.
func TestStep1WorkersInvisibleToCachingAndResults(t *testing.T) {
	d := testData(t)
	serial := New(d, Options{})
	parallel := New(d, Options{Step1Workers: 4})

	for _, spatial := range []string{"exact", "squared"} {
		reqA := serial.NewRequest()
		reqA.K, reqA.SmallK, reqA.Spatial = 120, 9, spatial
		reqB := parallel.NewRequest()
		reqB.K, reqB.SmallK, reqB.Spatial = 120, 9, spatial

		keyA, err := reqA.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		keyB, err := reqB.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		if keyA.String() != keyB.String() {
			t.Fatalf("%s: cache keys differ across Step1Workers: %q vs %q", spatial, keyA, keyB)
		}

		resA, err := serial.Query(context.Background(), reqA)
		if err != nil {
			t.Fatal(err)
		}
		resB, err := parallel.Query(context.Background(), reqB)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIndices(resA.Sel.Indices, resB.Sel.Indices) {
			t.Errorf("%s: selections differ: %v vs %v", spatial, resA.Sel.Indices, resB.Sel.Indices)
		}
		if math.Float64bits(resA.Sel.HPF) != math.Float64bits(resB.Sel.HPF) {
			t.Errorf("%s: HPF bits differ: %v vs %v", spatial, resA.Sel.HPF, resB.Sel.HPF)
		}
		if math.Float64bits(resA.Breakdown.Total) != math.Float64bits(resB.Breakdown.Total) {
			t.Errorf("%s: breakdown totals differ: %v vs %v", spatial, resA.Breakdown.Total, resB.Breakdown.Total)
		}

		// Second identical query on the parallel engine: must come from the
		// selection memo / cache and still match the serial result.
		reqC := parallel.NewRequest()
		reqC.K, reqC.SmallK, reqC.Spatial = 120, 9, spatial
		resC, err := parallel.Query(context.Background(), reqC)
		if err != nil {
			t.Fatal(err)
		}
		if resC.Cache != CacheHit {
			t.Errorf("%s: repeat query cache = %q, want hit", spatial, resC.Cache)
		}
		if !sameIndices(resA.Sel.Indices, resC.Sel.Indices) {
			t.Errorf("%s: memoised selection differs from serial: %v vs %v",
				spatial, resC.Sel.Indices, resA.Sel.Indices)
		}
	}
}
