package engine

import (
	"context"
	"errors"
	"sync"
)

// errFlightPanic is the error waiters observe when the leader of their
// flight panicked mid-build. The panic itself keeps unwinding the
// leader's goroutine (so HTTP recovery middleware sees it); waiters treat
// the sentinel as a leader failure and retry.
var errFlightPanic = errors.New("engine: concurrent identical request panicked")

// call is one in-flight computation.
type call[V any] struct {
	done     chan struct{}
	val      V
	err      error
	finished bool // false in the deferred cleanup iff fn panicked
}

// group deduplicates concurrent computations by key (a minimal
// singleflight; the module deliberately has no dependencies). Unlike
// x/sync's singleflight the leader runs fn synchronously in its own
// goroutine — panics and cancellation stay with the leader — and waiters
// are context-aware: a waiter abandons the flight when its own context
// terminates, without disturbing the leader.
type group[V any] struct {
	mu sync.Mutex
	m  map[string]*call[V]
}

// do returns the result of fn for key, running fn at most once across
// concurrent callers. shared reports whether the caller joined an
// existing flight (true) or led its own (false). A joining caller whose
// context terminates first returns its ctx error with shared = true.
func (g *group[V]) do(ctx context.Context, key string, fn func() (V, error)) (v V, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call[V])
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			var zero V
			return zero, true, ctx.Err()
		}
	}
	c := &call[V]{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	defer func() {
		if !c.finished {
			// fn panicked: fail the flight for the waiters, then let the
			// panic continue unwinding the leader.
			c.err = errFlightPanic
			g.settle(key, c)
		}
	}()
	c.val, c.err = fn()
	c.finished = true
	g.settle(key, c)
	return c.val, false, c.err
}

// settle removes the flight from the group (so the next caller starts a
// fresh one) and releases the waiters.
func (g *group[V]) settle(key string, c *call[V]) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
}
