// Package engine is the cross-query serving core: a long-lived Engine
// owns a registered corpus (places plus the interned textctx.Dict) and
// amortises the paper's per-query work across requests.
//
// Three reuse layers, ordered by generality:
//
//  1. Maximal grid tables. By Theorem 7.1 the cell-centre similarities of
//     the squared grid (and the sector-representative similarities of the
//     radial grid) depend only on cell positions relative to the grid
//     centre measured in whole cells — never on the query location or the
//     grid's physical size. The Engine therefore builds each table lazily,
//     exactly once per (grid kind, resolution), and shares it across every
//     query forever.
//  2. Score sets. The Step-1 output (*core.ScoreSet: retrieved set S plus
//     the all-pairs contextual/spatial similarity caches) is valid only
//     for the full Step-1 parameter key — location, interned keyword set,
//     retrieval size K, γ, and spatial method. Score sets are cached in a
//     size-bounded LRU keyed by that canonicalised key.
//  3. Selections. Step 2 is deterministic given a score set, so each
//     cache entry memoises selections per (algorithm, k, λ).
//
// Concurrent identical requests are deduplicated with a singleflight
// group: one caller (the leader) computes Step 1 in its own goroutine —
// so panics surface through the caller's recovery middleware and the
// caller's deadline governs the build — while the thundering herd waits
// on the shared result. A waiter whose leader was cancelled retries and
// becomes the new leader, so one impatient client cannot fail the herd.
//
// The Engine is safe for concurrent use. The corpus is held behind an
// epoch-versioned, atomically swapped snapshot: Mutate builds the next
// immutable epoch copy-on-write (dataset.Apply) and publishes it with one
// pointer swap, while every request pins the snapshot current when it was
// created and reads it for its whole lifetime — a query never observes a
// half-applied batch. Score-set cache keys carry the epoch (stale-epoch
// entries are proactively swept after each mutation), whereas the maximal
// grid tables are deliberately epoch-free: by Theorem 7.1 they depend
// only on cell geometry, never on corpus content, and so are shared
// across every epoch forever.
package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/telemetry"
)

// Cache-status values reported in Result.Cache and the response
// diagnostics' "cache" field.
const (
	// CacheHit: the score set came straight from the LRU.
	CacheHit = "hit"
	// CacheMiss: this request computed the score set (and cached it).
	CacheMiss = "miss"
	// CacheCoalesced: an identical concurrent request was already
	// computing the score set; this request waited for its result.
	CacheCoalesced = "coalesced"
)

// MutationLog is the durability hook Mutate writes through: Append must
// durably record (epoch, payload) — or fail — before returning, because
// the engine publishes the epoch and acknowledges the batch the moment
// Append returns nil. internal/wal's Log satisfies it; the engine keeps
// only this interface so the wal package stays free of engine types.
type MutationLog interface {
	Append(ctx context.Context, epoch uint64, payload []byte) error
}

// Options configures an Engine. Zero values select the documented
// defaults.
type Options struct {
	// MaxK is the ceiling on the retrieval size K; larger requests are
	// clamped during Normalize (the clamp is observable via
	// QueryRequest.ClampedFrom). 0 disables clamping.
	MaxK int
	// CacheEntries bounds the score-set LRU. A score set holds three
	// K×K/2 float64 matrices (~12·K² bytes), so the right capacity
	// depends on the expected K; 0 means 128.
	CacheEntries int
	// GridTableCells is |G_MAX| for the shared maximal squared-grid
	// table; queries whose per-query grid exceeds it fall back to direct
	// cell-centre computation (grid.SquaredTable.At). 0 means 1024,
	// covering the paper's |G| ≈ K rule up to K = 1024.
	GridTableCells int
	// SelectionMemo bounds the per-entry (algorithm, k, λ) selection
	// memo. 0 means 64.
	SelectionMemo int
	// InitialEpoch is the corpus epoch the registered dataset represents.
	// 0 for a fresh corpus; recovery passes the loaded snapshot's epoch so
	// replayed and future mutations continue the numbering the WAL
	// records carry.
	InitialEpoch uint64
	// WAL, when non-nil, receives every mutation batch before its epoch
	// is published (see Mutate). Recovery attaches it after replay via
	// SetWAL instead, so replayed batches are not re-logged.
	WAL MutationLog
	// Shards, when >= 2, splits the corpus into that many spatial shards
	// (grid-cell partitions, each with its own IR-tree) and runs Step-1
	// retrieval as a parallel fan-out with an exact merge — results are
	// bitwise identical to the unsharded engine (see dataset.ShardView).
	// 0 or 1 serves the single unsharded tree.
	Shards int
	// Step1Workers fans the quadratic Step-1 fills of a cache miss
	// (contextual all-pairs, spatial all-pairs or grid matrix fill) out
	// over this many goroutines. ≤ 1 keeps Step 1 sequential. The
	// parallel variants are bit-identical to the sequential ones, so the
	// knob never changes a response — which is why cache keys and the
	// selection memo deliberately do not encode it.
	Step1Workers int
}

func (o Options) withDefaults() Options {
	if o.CacheEntries <= 0 {
		o.CacheEntries = 128
	}
	if o.GridTableCells <= 0 {
		o.GridTableCells = 1024
	}
	if o.SelectionMemo <= 0 {
		o.SelectionMemo = 64
	}
	return o
}

// corpusSnapshot is one immutable corpus epoch. Requests pin the snapshot
// current when they were created (NewRequest) and read it — places, index
// and dictionary — for their whole lifetime, so a mutation published
// mid-query is invisible to them.
type corpusSnapshot struct {
	epoch uint64
	data  *dataset.Dataset
	// shards is the sharded view of data when Options.Shards >= 2, nil
	// otherwise. It is immutable like data: Mutate derives a successor
	// view (sharing untouched shards) and publishes both together.
	shards *dataset.ShardView
}

// retrieve answers q from this snapshot — parallel shard fan-out when
// sharded, the single IR-tree otherwise. Both paths return bitwise
// identical results.
func (s *corpusSnapshot) retrieve(ctx context.Context, q dataset.Query, K int) ([]core.Place, error) {
	if s.shards != nil {
		return s.shards.Retrieve(ctx, q, K)
	}
	return s.data.Retrieve(q, K)
}

// Engine serves proportionality queries over one registered corpus,
// reusing grid tables, score sets and selections across requests.
type Engine struct {
	snap atomic.Pointer[corpusSnapshot]
	opt  Options

	cache  *lruCache
	flight group[*entry]

	// mutMu serialises Mutate calls: each batch builds the next epoch off
	// the published one, so concurrent batches must not interleave. It
	// also guards wal, which recovery attaches after replay.
	mutMu sync.Mutex
	wal   MutationLog

	tblMu   sync.Mutex
	squared map[int]*grid.SquaredTable // keyed by maximal side
	radial  *grid.RadialTable

	hits        atomic.Uint64
	misses      atomic.Uint64
	coalesced   atomic.Uint64
	builds      atomic.Uint64
	buildErrors atomic.Uint64
	explains    atomic.Uint64
	mutations   atomic.Uint64
	upserted    atomic.Uint64
	deleted     atomic.Uint64
	swept       atomic.Uint64
}

// New registers d as the Engine's corpus at Options.InitialEpoch
// (epoch 0 for a fresh corpus). The dataset (places, dictionary and
// index) must be treated as read-only from now on; all later change
// goes through Mutate, which publishes fresh epochs and never touches
// d.
func New(d *dataset.Dataset, opt Options) *Engine {
	o := opt.withDefaults()
	e := &Engine{
		opt:     o,
		cache:   newLRU(o.CacheEntries),
		squared: make(map[int]*grid.SquaredTable),
		wal:     o.WAL,
	}
	snap := &corpusSnapshot{epoch: o.InitialEpoch, data: d}
	if o.Shards >= 2 {
		sv, err := dataset.NewShardView(d, o.Shards, o.InitialEpoch)
		if err != nil {
			// Unreachable for a dataset whose own index was built over the
			// same locations; a failure here means the dataset invariant
			// (valid locations) is already broken.
			panic(fmt.Sprintf("engine: shard corpus: %v", err))
		}
		snap.shards = sv
	}
	e.snap.Store(snap)
	return e
}

// SetWAL attaches (or detaches, with nil) the mutation log. Recovery
// replays the log through Mutate with no WAL attached — the records are
// already durable — and attaches it here before mutations are served.
func (e *Engine) SetWAL(w MutationLog) {
	e.mutMu.Lock()
	e.wal = w
	e.mutMu.Unlock()
}

// Corpus returns the currently published corpus epoch's dataset.
func (e *Engine) Corpus() *dataset.Dataset { return e.snap.Load().data }

// Snapshot returns the currently published corpus dataset and its epoch
// as one consistent pair — what a compaction must read, since Corpus()
// and Epoch() individually can straddle a concurrent mutation.
func (e *Engine) Snapshot() (*dataset.Dataset, uint64) {
	s := e.snap.Load()
	return s.data, s.epoch
}

// Epoch returns the currently published corpus epoch (0 until the first
// mutation).
func (e *Engine) Epoch() uint64 { return e.snap.Load().epoch }

// ShardInfo returns the published snapshot's per-shard footprints (size
// and last-rebuild epoch), or nil when the engine is unsharded.
func (e *Engine) ShardInfo() []dataset.ShardInfo {
	s := e.snap.Load()
	if s.shards == nil {
		return nil
	}
	return s.shards.Info()
}

// SquaredTable returns the shared maximal squared-grid table, building it
// on first use (once per resolution; see Theorem 7.1 for why one table
// serves every query location and grid size).
func (e *Engine) SquaredTable() *grid.SquaredTable {
	side := grid.SideForCells(e.opt.GridTableCells)
	e.tblMu.Lock()
	defer e.tblMu.Unlock()
	t, ok := e.squared[side]
	if !ok {
		t = grid.NewSquaredTable(side)
		e.squared[side] = t
	}
	return t
}

// RadialTable returns the shared radial-grid table. The table itself
// memoises one matrix per ring count on first use, so it covers every
// radial resolution queries select.
func (e *Engine) RadialTable() *grid.RadialTable {
	e.tblMu.Lock()
	defer e.tblMu.Unlock()
	if e.radial == nil {
		e.radial = grid.NewRadialTable()
	}
	return e.radial
}

// Result is the evaluated output of one query.
type Result struct {
	// SS is the (possibly shared) score set. Callers must treat it as
	// read-only: it may be serving other requests concurrently.
	SS *core.ScoreSet
	// Sel is the Step-2 selection; its Indices slice may be shared with
	// other requests and must not be mutated.
	Sel core.Selection
	// Breakdown is HPF(R) with the Figure-11 decomposition.
	Breakdown core.Breakdown
	// Cache reports how the score set was obtained: CacheHit, CacheMiss
	// or CacheCoalesced.
	Cache string
}

// Query evaluates req end to end: Normalize (validate, clamp, resolve
// keywords, derive the cache key), obtain the score set (LRU →
// singleflight → build), select, and evaluate. Errors wrapping
// ErrBadRequest or core.ErrBadParams/core.ErrTooLarge are caller errors;
// everything else is an internal or lifecycle (cancelled/deadline)
// failure.
func (e *Engine) Query(ctx context.Context, req *QueryRequest) (*Result, error) {
	key, err := req.Normalize()
	if err != nil {
		return nil, err
	}
	ent, status, err := e.scoreSet(ctx, req, key.String())
	if err != nil {
		return nil, err
	}
	if ent.ss.K() <= req.SmallK {
		return nil, fmt.Errorf("%w: retrieved %d places; need more than k=%d",
			ErrBadRequest, ent.ss.K(), req.SmallK)
	}
	p := core.Params{K: req.SmallK, Lambda: req.Lambda, Gamma: req.Gamma}
	sel, err := ent.selection(ctx, core.Algorithm(req.Algo), p, e.opt.SelectionMemo)
	if err != nil {
		return nil, fmt.Errorf("select: %w", err)
	}
	return &Result{
		SS:        ent.ss,
		Sel:       sel,
		Breakdown: ent.ss.Evaluate(sel.Indices, req.Lambda),
		Cache:     status,
	}, nil
}

// scoreSet returns the cached score-set entry for key, computing it at
// most once per key across concurrent callers.
func (e *Engine) scoreSet(ctx context.Context, req *QueryRequest, key string) (*entry, string, error) {
	for {
		if ent, ok := e.cache.get(key); ok {
			e.hits.Add(1)
			return ent, CacheHit, nil
		}
		ent, shared, err := e.flight.do(ctx, key, func() (*entry, error) {
			// Double-check under the flight: a previous leader may have
			// cached the entry between our lookup and winning the flight,
			// which keeps "builds per key" at exactly one.
			if ent, ok := e.cache.get(key); ok {
				return ent, nil
			}
			ent, err := e.build(ctx, req)
			if err != nil {
				return nil, err
			}
			e.cache.add(key, ent)
			return ent, nil
		})
		if err == nil {
			if shared {
				e.coalesced.Add(1)
				return ent, CacheCoalesced, nil
			}
			e.misses.Add(1)
			return ent, CacheMiss, nil
		}
		if shared && ctx.Err() == nil {
			// The shared failure was the leader's (its cancellation, or its
			// panic), not ours: retry, becoming the new leader if needed. A
			// deterministic build failure recurs on the retry and is then
			// returned as our own (shared = false).
			continue
		}
		if !shared {
			e.buildErrors.Add(1)
		}
		return nil, "", err
	}
}

// build runs retrieval plus Step 1 for req on the caller's context,
// against the corpus epoch the request pinned when it was created. The
// per-stage spans land on the caller's trace, and the caller's deadline
// and cancellation govern the computation through the core checkpoints.
func (e *Engine) build(ctx context.Context, req *QueryRequest) (*entry, error) {
	e.builds.Add(1)
	loc := geo.Pt(req.X, req.Y)
	// BeginSpan rather than StartSpan: a sharded retrieve records one
	// child span per shard plus the merge under this span.
	rctx, endRetrieve := telemetry.BeginSpan(ctx, telemetry.StageRetrieve)
	places, err := req.snapshot(e).retrieve(rctx, dataset.Query{Loc: loc, Keywords: req.kwSet}, req.K)
	endRetrieve()
	if err != nil {
		return nil, fmt.Errorf("retrieve: %w", err)
	}
	if len(places) < 2 {
		return nil, fmt.Errorf("%w: retrieved %d places; need more than k=1",
			ErrBadRequest, len(places))
	}
	opt := core.ScoreOptions{Gamma: req.Gamma, Spatial: req.spatial, Workers: e.opt.Step1Workers}
	switch req.spatial {
	case core.SpatialSquaredGrid:
		opt.SquaredTable = e.SquaredTable()
	case core.SpatialRadialGrid:
		opt.RadialTable = e.RadialTable()
	}
	ss, err := core.ComputeScoresCtx(ctx, loc, places, opt)
	if err != nil {
		return nil, fmt.Errorf("score: %w", err)
	}
	return newEntry(ss), nil
}

// Stats is a point-in-time snapshot of the Engine's reuse counters. The
// counters are read individually; a snapshot under concurrent traffic is
// consistent per field, not across fields.
type Stats struct {
	// Hits counts requests served a score set straight from the LRU.
	Hits uint64
	// Misses counts requests that computed (and cached) a score set.
	Misses uint64
	// Coalesced counts requests that waited on an identical concurrent
	// request's computation instead of duplicating it.
	Coalesced uint64
	// Evictions counts LRU evictions.
	Evictions uint64
	// Builds counts score-set builds started; BuildErrors the ones that
	// failed (failures are never cached).
	Builds, BuildErrors uint64
	// Explains counts cache-bypassing Explain evaluations.
	Explains uint64
	// Epoch is the currently published corpus epoch; Mutations counts the
	// batches that advanced it.
	Epoch, Mutations uint64
	// PlacesUpserted and PlacesDeleted count individual mutation
	// operations that took effect across all batches.
	PlacesUpserted, PlacesDeleted uint64
	// SweptEntries counts stale-epoch score sets proactively removed from
	// the LRU after mutations (distinct from capacity Evictions).
	SweptEntries uint64
	// Places is the current corpus size.
	Places int
	// Entries and Capacity describe the LRU occupancy.
	Entries, Capacity int
	// SquaredTables and RadialResolutions count the memoised maximal
	// grid tables per kind; TableBytes is their combined footprint.
	SquaredTables, RadialResolutions int
	TableBytes                       int
	// Shards is the spatial shard count (0 when unsharded).
	Shards int
}

// HitRatio returns Hits over cache lookups (hits + misses + coalesced),
// or 0 before any lookup has happened. Explain bypasses are not lookups.
func (s Stats) HitRatio() float64 {
	lookups := s.Hits + s.Misses + s.Coalesced
	if lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(lookups)
}

// Stats returns a snapshot of the Engine's counters.
func (e *Engine) Stats() Stats {
	snap := e.snap.Load()
	s := Stats{
		Hits:           e.hits.Load(),
		Misses:         e.misses.Load(),
		Coalesced:      e.coalesced.Load(),
		Evictions:      e.cache.evicted(),
		Builds:         e.builds.Load(),
		BuildErrors:    e.buildErrors.Load(),
		Explains:       e.explains.Load(),
		Epoch:          snap.epoch,
		Mutations:      e.mutations.Load(),
		PlacesUpserted: e.upserted.Load(),
		PlacesDeleted:  e.deleted.Load(),
		SweptEntries:   e.swept.Load(),
		Places:         len(snap.data.Places),
		Entries:        e.cache.len(),
		Capacity:       e.opt.CacheEntries,
	}
	if snap.shards != nil {
		s.Shards = snap.shards.NumShards()
	}
	e.tblMu.Lock()
	s.SquaredTables = len(e.squared)
	for _, t := range e.squared {
		s.TableBytes += t.Bytes()
	}
	if e.radial != nil {
		s.RadialResolutions = e.radial.Resolutions()
		s.TableBytes += e.radial.Bytes()
	}
	e.tblMu.Unlock()
	return s
}

// entry is one LRU slot: a score set plus its per-(algorithm, k, λ)
// selection memo.
type entry struct {
	ss   *core.ScoreSet
	mu   sync.Mutex
	sels map[selKey]core.Selection
}

type selKey struct {
	algo   core.Algorithm
	k      int
	lambda float64
}

func newEntry(ss *core.ScoreSet) *entry {
	return &entry{ss: ss, sels: make(map[selKey]core.Selection)}
}

// selection returns the memoised Step-2 selection for (alg, p), computing
// it outside the entry lock so distinct parameter sets never serialise.
// Selection is deterministic given a score set, so a duplicated
// computation under contention is wasted work, never a wrong answer.
func (en *entry) selection(ctx context.Context, alg core.Algorithm, p core.Params, memoCap int) (core.Selection, error) {
	k := selKey{algo: alg, k: p.K, lambda: p.Lambda}
	en.mu.Lock()
	sel, ok := en.sels[k]
	en.mu.Unlock()
	if ok {
		return sel, nil
	}
	sel, err := core.SelectCtx(ctx, alg, en.ss, p)
	if err != nil {
		return core.Selection{}, err
	}
	en.mu.Lock()
	if len(en.sels) >= memoCap {
		for stale := range en.sels { // drop one arbitrary memo to stay bounded
			delete(en.sels, stale)
			break
		}
	}
	en.sels[k] = sel
	en.mu.Unlock()
	return sel, nil
}
