package engine

import (
	"errors"
	"fmt"
	"math"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/telemetry"
	"repro/internal/textctx"
)

// ErrBadRequest marks request-validation failures (malformed or
// out-of-range parameters, unknown algorithm or spatial method names,
// too-small retrieved sets). Servers map errors wrapping it to HTTP 400.
var ErrBadRequest = errors.New("engine: bad request")

// QueryRequest is the one canonical query schema, shared by GET
// /v1/search (via RequestFromValues) and every element of POST /v1/batch
// (via JSON decoding over a NewRequest-seeded value, so absent fields
// keep the corpus defaults). Normalize validates it and derives the
// score-set cache key.
type QueryRequest struct {
	// X, Y is the query location q; the corpus default is the extent
	// centre.
	X float64 `json:"x"`
	Y float64 `json:"y"`
	// Keywords are resolved against the corpus dictionary during
	// Normalize; unknown words match nothing and are dropped from the
	// retrieval set (DroppedKeywords lists them, and responses surface
	// them as diagnostics.keywords_dropped so an all-unknown query is
	// distinguishable from a keywordless one).
	Keywords []string `json:"keywords,omitempty"`
	// K is the retrieval size |S| (default 100); SmallK the result size
	// k < K (default 10).
	K      int `json:"K"`
	SmallK int `json:"k"`
	// Lambda trades relevance against proportionality, Gamma contextual
	// against spatial proportionality; both default to 0.5.
	Lambda float64 `json:"lambda"`
	Gamma  float64 `json:"gamma"`
	// Algo names the selection algorithm (default "abp").
	Algo string `json:"algo"`
	// Spatial is "squared", "radial" or "exact" (default "squared").
	Spatial string `json:"spatial"`

	// Filled by NewRequest / Normalize.
	snap        *corpusSnapshot
	maxK        int
	kwSet       textctx.Set
	droppedKw   []string
	spatial     core.SpatialMethod
	clampedFrom int
	normalized  bool
}

// NewRequest returns a request seeded with the corpus defaults (location
// at the extent centre, K=100, k=10, λ=γ=0.5, abp over the squared grid)
// and pinned to the corpus epoch published at this moment: the request
// resolves keywords, retrieves and renders against that snapshot for its
// whole lifetime, regardless of mutations racing it.
func (e *Engine) NewRequest() *QueryRequest {
	snap := e.snap.Load()
	center := snap.data.Config.Extent / 2
	return &QueryRequest{
		X: center, Y: center,
		K: 100, SmallK: 10,
		Lambda: 0.5, Gamma: 0.5,
		Algo: string(core.AlgABP), Spatial: "squared",
		snap: snap, maxK: e.opt.MaxK,
	}
}

// corpus returns the dataset the request is pinned to, falling back to
// the engine's current epoch for requests not built via NewRequest.
func (r *QueryRequest) corpus(e *Engine) *dataset.Dataset {
	if r.snap != nil {
		return r.snap.data
	}
	return e.Corpus()
}

// snapshot returns the corpus snapshot the request is pinned to (data
// plus the sharded view when the engine shards), falling back to the
// engine's current epoch for requests not built via NewRequest.
func (r *QueryRequest) snapshot(e *Engine) *corpusSnapshot {
	if r.snap != nil {
		return r.snap
	}
	return e.snap.Load()
}

// Epoch returns the corpus epoch the request is pinned to (0 for requests
// not built via NewRequest).
func (r *QueryRequest) Epoch() uint64 {
	if r.snap == nil {
		return 0
	}
	return r.snap.epoch
}

// RequestFromValues builds a request from URL query parameters, replacing
// the scattered per-parameter parsing servers used to carry. Parameters
// absent from q keep the NewRequest defaults; malformed or non-finite
// numbers fail with an error wrapping ErrBadRequest.
func (e *Engine) RequestFromValues(q url.Values) (*QueryRequest, error) {
	r := e.NewRequest()
	getF := func(name string, dst *float64) error {
		v := q.Get(name)
		if v == "" {
			return nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("%w: parameter %q: %v", ErrBadRequest, name, err)
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("%w: parameter %q = %v must be finite", ErrBadRequest, name, f)
		}
		*dst = f
		return nil
	}
	getI := func(name string, dst *int) error {
		v := q.Get(name)
		if v == "" {
			return nil
		}
		i, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("%w: parameter %q: %v", ErrBadRequest, name, err)
		}
		*dst = i
		return nil
	}
	if err := getF("x", &r.X); err != nil {
		return nil, err
	}
	if err := getF("y", &r.Y); err != nil {
		return nil, err
	}
	if err := getI("K", &r.K); err != nil {
		return nil, err
	}
	if err := getI("k", &r.SmallK); err != nil {
		return nil, err
	}
	if err := getF("lambda", &r.Lambda); err != nil {
		return nil, err
	}
	if err := getF("gamma", &r.Gamma); err != nil {
		return nil, err
	}
	if v := q.Get("algo"); v != "" {
		r.Algo = v
	}
	if v := q.Get("spatial"); v != "" {
		r.Spatial = v
	}
	if v := q.Get("keywords"); v != "" {
		r.Keywords = strings.Split(v, ",")
	}
	return r, nil
}

// CacheKey is the canonical score-set cache key: the exact bits of the
// Step-1 parameters (location, K after clamping, γ, spatial method) plus
// the interned keyword-set fingerprint. Step-2 parameters (algorithm, k,
// λ) are deliberately absent — they do not affect the score set (see
// DESIGN.md).
type CacheKey struct{ s string }

// String returns the canonical encoding.
func (k CacheKey) String() string { return k.s }

// Normalize validates every field, applies the engine's K ceiling,
// resolves the keywords against the corpus dictionary, and returns the
// canonicalised cache key. All failures wrap ErrBadRequest. Normalize is
// idempotent and must be called (directly or via Query) before the
// SpatialMethod/ClampedFrom/KeywordSet accessors mean anything.
func (r *QueryRequest) Normalize() (CacheKey, error) {
	bad := func(format string, args ...any) (CacheKey, error) {
		return CacheKey{}, fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
	}
	for _, f := range [...]struct {
		name string
		v    float64
	}{{"x", r.X}, {"y", r.Y}, {"lambda", r.Lambda}, {"gamma", r.Gamma}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return bad("parameter %q = %v must be finite", f.name, f.v)
		}
	}
	if r.K <= 0 {
		return bad("K = %d must be positive", r.K)
	}
	if r.SmallK <= 0 {
		return bad("k = %d must be positive", r.SmallK)
	}
	if r.SmallK >= r.K {
		return bad("k = %d must be smaller than K = %d", r.SmallK, r.K)
	}
	if r.Lambda < 0 || r.Lambda > 1 {
		return bad("lambda = %v outside [0, 1]", r.Lambda)
	}
	if r.Gamma < 0 || r.Gamma > 1 {
		return bad("gamma = %v outside [0, 1]", r.Gamma)
	}
	if r.Algo == "" {
		r.Algo = string(core.AlgABP)
	}
	if !core.Registered(core.Algorithm(r.Algo)) {
		return bad("unknown algorithm %q (have %v)", r.Algo, core.Algorithms())
	}
	if r.Spatial == "" {
		r.Spatial = "squared"
	}
	switch r.Spatial {
	case "squared":
		r.spatial = core.SpatialSquaredGrid
	case "radial":
		r.spatial = core.SpatialRadialGrid
	case "exact":
		r.spatial = core.SpatialExact
	default:
		return bad("unknown spatial method %q (have exact, squared, radial)", r.Spatial)
	}
	if r.maxK > 0 && r.K > r.maxK {
		if r.clampedFrom == 0 {
			r.clampedFrom = r.K
		}
		r.K = r.maxK
		if r.SmallK >= r.K {
			return bad("k = %d must be smaller than the server's K ceiling %d", r.SmallK, r.maxK)
		}
	}
	if r.snap != nil {
		var ids []textctx.ItemID
		r.droppedKw = nil // recomputed each call, so Normalize stays idempotent
		for _, w := range r.Keywords {
			w = strings.TrimSpace(w)
			if w == "" {
				continue
			}
			if id, ok := r.snap.data.Dict.Lookup(w); ok {
				ids = append(ids, id)
			} else {
				r.droppedKw = append(r.droppedKw, w)
			}
		}
		r.kwSet = textctx.NewSet(ids...)
	}
	r.normalized = true
	return r.cacheKey(), nil
}

// cacheKey encodes the Step-1 parameters exactly (float bit patterns, so
// no two distinct parameter sets collide). The pinned corpus epoch leads
// the key: a score set is only valid for the corpus it was computed on,
// and the epoch prefix is what Engine.Mutate sweeps stale entries by. The
// singleflight group uses the same string, so a herd racing a mutation
// can never coalesce onto another epoch's build.
func (r *QueryRequest) cacheKey() CacheKey {
	return CacheKey{s: fmt.Sprintf("e=%d;x=%016x;y=%016x;K=%d;g=%016x;s=%d;kw=%s",
		r.Epoch(), math.Float64bits(r.X), math.Float64bits(r.Y), r.K,
		math.Float64bits(r.Gamma), int(r.spatial), r.kwSet.Fingerprint())}
}

// SpatialMethod returns the resolved spatial method (valid after
// Normalize).
func (r *QueryRequest) SpatialMethod() core.SpatialMethod { return r.spatial }

// ClampedFrom returns the original K of a request clamped by the engine's
// ceiling, or 0 if no clamp applied (valid after Normalize).
func (r *QueryRequest) ClampedFrom() int { return r.clampedFrom }

// KeywordSet returns the interned keyword set (valid after Normalize).
func (r *QueryRequest) KeywordSet() textctx.Set { return r.kwSet }

// DroppedKeywords returns the requested keywords that resolved to nothing
// in the corpus dictionary (valid after Normalize). The returned slice
// must not be modified.
func (r *QueryRequest) DroppedKeywords() []string { return r.droppedKw }

// maxContextWords bounds the context echo per place in responses; the
// full size is always reported as context_total.
const maxContextWords = 6

// PlaceResult is one selected place in a QueryResponse. Context carries at
// most maxContextWords words; ContextTotal is the true contextual-set size
// and ContextTruncated marks places whose echo was cut, so clients judging
// contextual proportionality know they are seeing a prefix.
type PlaceResult struct {
	Rank             int      `json:"rank"`
	ID               string   `json:"id"`
	X                float64  `json:"x"`
	Y                float64  `json:"y"`
	Rel              float64  `json:"rel"`
	Context          []string `json:"context"`
	ContextTotal     int      `json:"context_total"`
	ContextTruncated bool     `json:"context_truncated,omitempty"`
}

// QueryResponse is the canonical response schema, shared by /v1/search,
// the deprecated /search alias, and every element of a /v1/batch
// response. The JSON layout is unchanged from the pre-engine /search
// payload so existing clients keep working; diagnostics gains "cache".
type QueryResponse struct {
	RequestID string `json:"request_id,omitempty"`
	Query     struct {
		X        float64  `json:"x"`
		Y        float64  `json:"y"`
		Keywords []string `json:"keywords,omitempty"`
		K        int      `json:"K"`
		SmallK   int      `json:"k"`
		Lambda   float64  `json:"lambda"`
		Gamma    float64  `json:"gamma"`
		Algo     string   `json:"algo"`
	} `json:"query"`
	HPF         float64        `json:"hpf"`
	Breakdown   map[string]any `json:"breakdown"`
	Diagnostics map[string]any `json:"diagnostics"`
	Results     []PlaceResult  `json:"results"`
	// Explain carries the *explain.Report of a /v1/explain evaluation;
	// absent from every other endpoint's payload.
	Explain any `json:"explain,omitempty"`
}

// BuildResponse renders a Result into the canonical response schema. tr,
// when non-nil, contributes the per-stage timing diagnostics; the caller
// owns policy-level diagnostics (degradation reports, request IDs) and
// may add them to the returned value before encoding.
func (e *Engine) BuildResponse(req *QueryRequest, res *Result, tr *telemetry.Trace) *QueryResponse {
	var resp QueryResponse
	resp.Query.X, resp.Query.Y = req.X, req.Y
	resp.Query.K, resp.Query.SmallK = req.K, req.SmallK
	resp.Query.Lambda, resp.Query.Gamma = req.Lambda, req.Gamma
	resp.Query.Algo = req.Algo
	// Echo the keywords as requested, not as resolved: a query whose words
	// all missed the dictionary must not read back as keywordless.
	resp.Query.Keywords = append([]string(nil), req.Keywords...)
	resp.HPF = res.Breakdown.Total
	resp.Breakdown = map[string]any{
		"rel": res.Breakdown.Rel, "pC": res.Breakdown.PC, "pS": res.Breakdown.PS,
	}
	diag := metrics.Evaluate(res.SS, res.Sel.Indices)
	resp.Diagnostics = map[string]any{
		"inference_match":      diag.InferenceMatch,
		"dominance":            diag.Dominance,
		"rare_share":           diag.RareShare,
		"type_coverage":        diag.TypeCoverage,
		"directional_coverage": diag.DirectionalCoverage,
		"diversity":            diag.Diversity,
		"mean_relevance":       diag.MeanRelevance,
		"spatial_method":       req.spatial.String(),
		"cache":                res.Cache,
		"corpus_epoch":         req.Epoch(),
	}
	if len(req.droppedKw) > 0 {
		resp.Diagnostics["keywords_dropped"] = append([]string(nil), req.droppedKw...)
	}
	if tr != nil {
		stages := map[string]any{}
		for stage, d := range tr.Stages() {
			stages[stage] = round3(d.Seconds() * 1e3)
		}
		resp.Diagnostics["stage_ms"] = stages
		resp.Diagnostics["elapsed_ms"] = round3(tr.Elapsed().Seconds() * 1e3)
	}
	dict := req.corpus(e).Dict
	for rank, idx := range res.Sel.Indices {
		p := res.SS.Places[idx]
		ctxWords := p.Context.Words(dict)
		total := len(ctxWords)
		if total > maxContextWords {
			ctxWords = ctxWords[:maxContextWords]
		}
		resp.Results = append(resp.Results, PlaceResult{
			Rank: rank + 1, ID: p.ID, X: p.Loc.X, Y: p.Loc.Y, Rel: p.Rel,
			Context: ctxWords, ContextTotal: total, ContextTruncated: total > maxContextWords,
		})
	}
	return &resp
}

func round3(v float64) float64 { return math.Round(v*1e3) / 1e3 }
