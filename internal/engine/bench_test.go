package engine

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
)

var (
	benchDataOnce sync.Once
	benchDataVal  *dataset.Dataset
)

// benchData mirrors the propserve demo corpus (DBpediaLike seed 7, 1500
// places) so BENCH_engine.json reflects the served configuration.
func benchData(tb testing.TB) *dataset.Dataset {
	tb.Helper()
	benchDataOnce.Do(func() {
		cfg := dataset.DBpediaLike(7)
		cfg.Places = 1500
		d, err := dataset.Generate(cfg)
		if err != nil {
			tb.Fatal(err)
		}
		benchDataVal = d
	})
	return benchDataVal
}

func benchRequest(e *Engine, x float64) *QueryRequest {
	req := e.NewRequest()
	req.K, req.SmallK = 200, 10
	req.X, req.Y = x, 50
	return req
}

// BenchmarkEngineHit measures the repeated-query path: score set and
// selection both served from cache.
func BenchmarkEngineHit(b *testing.B) {
	e := New(benchData(b), Options{})
	if _, err := e.Query(context.Background(), benchRequest(e, 50)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(context.Background(), benchRequest(e, 50)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineMiss measures the cold path: every iteration queries a
// fresh location, so Step 1 (retrieval + all-pairs scoring) runs in full.
// A tiny LRU keeps the working set bounded while guaranteeing misses.
func BenchmarkEngineMiss(b *testing.B) {
	e := New(benchData(b), Options{CacheEntries: 2})
	e.SquaredTable() // table cost is one-time and shared; exclude it
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := 5 + float64(i%100000)*1e-4 // distinct key every iteration
		if _, err := e.Query(context.Background(), benchRequest(e, x)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchServe, gated on BENCH_SERVE_OUT, times the hit and miss paths
// directly and writes the comparison to the named JSON file (the
// `make bench-serve` target; CI runs it non-blocking). The acceptance
// bar for the cross-query engine is a ≥5x repeated-query speedup.
func TestBenchServe(t *testing.T) {
	out := os.Getenv("BENCH_SERVE_OUT")
	if out == "" {
		t.Skip("set BENCH_SERVE_OUT=<path> to write BENCH_engine.json")
	}
	d := benchData(t)
	// BENCH_SERVE_SHARDS times the sharded fan-out instead of the single
	// tree; the shard-equivalence suite guarantees identical results, so
	// the two configurations are benchdiff-comparable on the same keys.
	shards, _ := strconv.Atoi(os.Getenv("BENCH_SERVE_SHARDS"))
	e := New(d, Options{CacheEntries: 4, Shards: shards})
	e.SquaredTable()

	const missRuns = 40
	const hitRuns = 4000

	time0 := time.Now()
	for i := 0; i < missRuns; i++ {
		x := 5 + float64(i)*1e-3
		if _, err := e.Query(context.Background(), benchRequest(e, x)); err != nil {
			t.Fatal(err)
		}
	}
	missNs := float64(time.Since(time0).Nanoseconds()) / missRuns

	if _, err := e.Query(context.Background(), benchRequest(e, 50)); err != nil {
		t.Fatal(err)
	}
	time1 := time.Now()
	for i := 0; i < hitRuns; i++ {
		if _, err := e.Query(context.Background(), benchRequest(e, 50)); err != nil {
			t.Fatal(err)
		}
	}
	hitNs := float64(time.Since(time1).Nanoseconds()) / hitRuns

	speedup := missNs / hitNs
	st := e.Stats()
	report := map[string]any{
		"benchmark":  "engine_repeated_query",
		"dataset":    map[string]any{"name": d.Config.Name, "places": d.Config.Places, "seed": d.Config.Seed},
		"query":      map[string]any{"K": 200, "k": 10, "spatial": "squared", "algo": "abp"},
		"runs":       map[string]any{"miss": missRuns, "hit": hitRuns},
		"miss_ns_op": missNs,
		"hit_ns_op":  hitNs,
		"speedup":    speedup,
		"engine": map[string]any{
			"shards":        st.Shards,
			"cache_entries": st.Capacity,
			"table_bytes":   st.TableBytes,
			"builds":        st.Builds,
			"evictions":     st.Evictions,
		},
		"go":   runtime.Version(),
		"cpus": runtime.NumCPU(),
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("miss %.0f ns/op, hit %.0f ns/op, speedup %.1fx -> %s", missNs, hitNs, speedup, out)
	if speedup < 5 {
		t.Errorf("repeated-query speedup %.2fx below the 5x acceptance bar", speedup)
	}
}
