package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// fakeWAL records appends and can be told to fail, standing in for
// internal/wal so the engine's ordering contract is testable in
// isolation.
type fakeWAL struct {
	appends []uint64
	fail    error
}

func (f *fakeWAL) Append(_ context.Context, epoch uint64, payload []byte) error {
	if f.fail != nil {
		return f.fail
	}
	if _, err := DecodeMutation(payload); err != nil {
		return fmt.Errorf("unreadable payload logged: %w", err)
	}
	f.appends = append(f.appends, epoch)
	return nil
}

func walMutation(i int) Mutation {
	return Mutation{Upserts: []dataset.Upsert{{
		ID: fmt.Sprintf("wal:%d", i), X: 1, Y: 1, Context: []string{"w"},
	}}}
}

// TestMutateAppendsBeforePublish: every published epoch was logged with
// exactly that epoch number, and the log never runs behind the engine.
func TestMutateAppendsBeforePublish(t *testing.T) {
	w := &fakeWAL{}
	e := New(mutTestData(t, 31, 200), Options{WAL: w})
	for i := 1; i <= 3; i++ {
		res, err := e.Mutate(context.Background(), walMutation(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Epoch != uint64(i) {
			t.Fatalf("published epoch %d, want %d", res.Epoch, i)
		}
	}
	if len(w.appends) != 3 {
		t.Fatalf("wal saw %d appends, want 3", len(w.appends))
	}
	for i, ep := range w.appends {
		if ep != uint64(i+1) {
			t.Errorf("append %d logged epoch %d", i, ep)
		}
	}
}

// TestMutateWALFailureNotPublished: an append failure returns ErrWAL and
// the epoch does not move — the batch was neither acknowledged nor made
// visible, so a restart cannot resurrect it.
func TestMutateWALFailureNotPublished(t *testing.T) {
	w := &fakeWAL{fail: errors.New("disk gone")}
	e := New(mutTestData(t, 32, 200), Options{WAL: w})
	places := len(e.Corpus().Places)

	_, err := e.Mutate(context.Background(), walMutation(1))
	if !errors.Is(err, ErrWAL) {
		t.Fatalf("err = %v, want ErrWAL", err)
	}
	if e.Epoch() != 0 || len(e.Corpus().Places) != places {
		t.Fatalf("failed append published state: epoch %d, %d places", e.Epoch(), len(e.Corpus().Places))
	}

	// The failure is transient from the engine's view: once the log
	// recovers, the same batch goes through at the same epoch.
	w.fail = nil
	res, err := e.Mutate(context.Background(), walMutation(1))
	if err != nil || res.Epoch != 1 {
		t.Fatalf("retry after wal recovery: %v, epoch %v", err, res)
	}
}

// TestMutateInitialEpoch: an engine built at a recovered epoch publishes
// from there, so replayed history and new mutations share one sequence.
func TestMutateInitialEpoch(t *testing.T) {
	w := &fakeWAL{}
	e := New(mutTestData(t, 33, 200), Options{InitialEpoch: 41, WAL: w})
	if e.Epoch() != 41 {
		t.Fatalf("initial epoch = %d, want 41", e.Epoch())
	}
	res, err := e.Mutate(context.Background(), walMutation(1))
	if err != nil || res.Epoch != 42 {
		t.Fatalf("mutate from recovered epoch: %v, %+v", err, res)
	}
	if len(w.appends) != 1 || w.appends[0] != 42 {
		t.Fatalf("wal appends = %v, want [42]", w.appends)
	}
}

// TestSetWALAttachesAfterReplay: mutations before SetWAL (replay) are
// not logged; mutations after it are.
func TestSetWALAttachesAfterReplay(t *testing.T) {
	e := New(mutTestData(t, 34, 200), Options{})
	if _, err := e.Mutate(context.Background(), walMutation(1)); err != nil {
		t.Fatal(err)
	}
	w := &fakeWAL{}
	e.SetWAL(w)
	if _, err := e.Mutate(context.Background(), walMutation(2)); err != nil {
		t.Fatal(err)
	}
	if len(w.appends) != 1 || w.appends[0] != 2 {
		t.Fatalf("wal appends = %v, want only the post-attach epoch 2", w.appends)
	}
}

// TestMutateHonoursContext: a cancelled context abandons the batch
// before anything is logged or published.
func TestMutateHonoursContext(t *testing.T) {
	w := &fakeWAL{}
	e := New(mutTestData(t, 35, 500), Options{WAL: w})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Mutate(ctx, walMutation(1))
	if !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if e.Epoch() != 0 || len(w.appends) != 0 {
		t.Fatalf("cancelled mutation left traces: epoch %d, %d appends", e.Epoch(), len(w.appends))
	}

	// An already-expired deadline maps to the deadline error.
	dctx, dcancel := context.WithTimeout(context.Background(), -time.Nanosecond)
	defer dcancel()
	if _, err := e.Mutate(dctx, walMutation(1)); !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

// TestSnapshotConsistentPair: Snapshot returns the dataset and epoch of
// one published state, the pair compaction persists together.
func TestSnapshotConsistentPair(t *testing.T) {
	e := New(mutTestData(t, 36, 200), Options{InitialEpoch: 7})
	d, epoch := e.Snapshot()
	if epoch != 7 || d == nil || len(d.Places) != 200 {
		t.Fatalf("snapshot = %d places at epoch %d, want 200 at 7", len(d.Places), epoch)
	}
	if _, err := e.Mutate(context.Background(), walMutation(1)); err != nil {
		t.Fatal(err)
	}
	if _, epoch = e.Snapshot(); epoch != 8 {
		t.Fatalf("post-mutation snapshot epoch = %d, want 8", epoch)
	}
}
