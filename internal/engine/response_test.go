package engine

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// TestNormalizeIdempotentAfterClamp: /v1/batch normalizes an element once
// to admission-check it and the engine normalizes again inside Query, so a
// second Normalize after the K-clamp fired must be a no-op — same cache
// key, same clamp provenance — not a second clamp that forgets the
// caller's original K.
func TestNormalizeIdempotentAfterClamp(t *testing.T) {
	e := New(testData(t), Options{MaxK: 50})
	req := e.NewRequest()
	req.K, req.SmallK = 400, 5

	key1, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if req.K != 50 || req.ClampedFrom() != 400 {
		t.Fatalf("after first Normalize: K = %d clampedFrom = %d", req.K, req.ClampedFrom())
	}

	key2, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if key2.String() != key1.String() {
		t.Errorf("repeated Normalize changed the key: %q -> %q", key1, key2)
	}
	if req.K != 50 || req.ClampedFrom() != 400 {
		t.Errorf("after second Normalize: K = %d clampedFrom = %d, want 50 and 400", req.K, req.ClampedFrom())
	}
}

// TestAllUnknownKeywordsAreVisible: a query whose every keyword missed the
// dictionary resolves to the same score set as a keywordless one (unknown
// words match nothing), but the response must not read back as
// keywordless — the raw request is echoed and the dropped words named.
func TestAllUnknownKeywordsAreVisible(t *testing.T) {
	e := New(testData(t), Options{})
	ctx := context.Background()

	req := e.NewRequest()
	req.K, req.SmallK = 60, 5
	req.Keywords = []string{"zzz-unknown-1", "zzz-unknown-2"}
	if _, err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	if req.KeywordSet().Len() != 0 {
		t.Fatalf("keyword set = %d items, want 0 (all unknown)", req.KeywordSet().Len())
	}
	if got := req.DroppedKeywords(); !reflect.DeepEqual(got, []string{"zzz-unknown-1", "zzz-unknown-2"}) {
		t.Fatalf("dropped = %v", got)
	}

	res, err := e.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	resp := e.BuildResponse(req, res, nil)
	if !reflect.DeepEqual(resp.Query.Keywords, []string{"zzz-unknown-1", "zzz-unknown-2"}) {
		t.Errorf("query echo = %v, want the raw requested keywords", resp.Query.Keywords)
	}
	dropped, ok := resp.Diagnostics["keywords_dropped"].([]string)
	if !ok || len(dropped) != 2 {
		t.Errorf("diagnostics keywords_dropped = %v", resp.Diagnostics["keywords_dropped"])
	}

	// A genuinely keywordless query carries neither.
	bare := e.NewRequest()
	bare.K, bare.SmallK = 60, 5
	bres, err := e.Query(ctx, bare)
	if err != nil {
		t.Fatal(err)
	}
	bresp := e.BuildResponse(bare, bres, nil)
	if len(bresp.Query.Keywords) != 0 {
		t.Errorf("keywordless echo = %v", bresp.Query.Keywords)
	}
	if _, ok := bresp.Diagnostics["keywords_dropped"]; ok {
		t.Error("keywordless response reports dropped keywords")
	}
}

// TestResponseReportsContextTruncation: the per-place context echo is
// capped at maxContextWords, and places richer than the cap say so instead
// of silently posing as six-word places.
func TestResponseReportsContextTruncation(t *testing.T) {
	e := New(testData(t), Options{})
	ctx := context.Background()

	// Plant a cluster of rich places (10 context words each) at one spot
	// so the selection there must include truncated results.
	m := Mutation{}
	for i := 0; i < 30; i++ {
		words := make([]string, 10)
		for w := range words {
			words[w] = fmt.Sprintf("rich:%d:%d", i, w)
		}
		m.Upserts = append(m.Upserts, dataset.Upsert{
			ID: fmt.Sprintf("rich:%d", i), X: 7 + float64(i%6)*0.1, Y: 7 + float64(i/6)*0.1,
			Context: words,
		})
	}
	if _, err := e.Mutate(ctx, m); err != nil {
		t.Fatal(err)
	}

	req := e.NewRequest()
	req.X, req.Y = 7.2, 7.2
	req.K, req.SmallK = 25, 8
	res, err := e.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	resp := e.BuildResponse(req, res, nil)

	sawTruncated := false
	for _, p := range resp.Results {
		if len(p.Context) > maxContextWords {
			t.Errorf("place %q echoes %d context words, cap is %d", p.ID, len(p.Context), maxContextWords)
		}
		if p.ContextTruncated {
			sawTruncated = true
			if p.ContextTotal <= maxContextWords || len(p.Context) != maxContextWords {
				t.Errorf("place %q: truncated but total = %d echo = %d", p.ID, p.ContextTotal, len(p.Context))
			}
		} else if p.ContextTotal != len(p.Context) {
			t.Errorf("place %q: total %d != echoed %d without truncation flag", p.ID, p.ContextTotal, len(p.Context))
		}
		if strings.HasPrefix(p.ID, "rich:") {
			if p.ContextTotal != 10 || !p.ContextTruncated {
				t.Errorf("rich place %q: total = %d truncated = %v, want 10 and true", p.ID, p.ContextTotal, p.ContextTruncated)
			}
		}
	}
	if !sawTruncated {
		t.Error("no truncated place selected; test exercised nothing")
	}
}
