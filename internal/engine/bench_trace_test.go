package engine

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// BenchmarkTraceOff measures the cache-hit query path with no trace in
// the context — the -traces=false configuration. The tracing claim is
// that this path pays only nil checks, so this number must stay on the
// BenchmarkEngineHit baseline.
func BenchmarkTraceOff(b *testing.B) {
	e := New(benchData(b), Options{})
	if _, err := e.Query(context.Background(), benchRequest(e, 50)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(context.Background(), benchRequest(e, 50)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceOn measures the same hit path carrying a fresh trace
// per iteration, as each served request does: the span-recording cost
// the enabled configuration actually pays.
func BenchmarkTraceOn(b *testing.B) {
	e := New(benchData(b), Options{})
	if _, err := e.Query(context.Background(), benchRequest(e, 50)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := telemetry.WithTrace(context.Background(), telemetry.NewTrace())
		if _, err := e.Query(ctx, benchRequest(e, 50)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchTrace, gated on BENCH_TRACE_OUT, times the hit and sharded
// miss paths with tracing off and on and writes the comparison to the
// named JSON file (the `make bench-trace` target; benchdiff gates the
// *_ns_op fields at 15%). hit_ns_op is directly comparable to
// BENCH_engine.json's hit_ns_op — the untraced hit path is the same
// code either way.
func TestBenchTrace(t *testing.T) {
	out := os.Getenv("BENCH_TRACE_OUT")
	if out == "" {
		t.Skip("set BENCH_TRACE_OUT=<path> to write BENCH_trace.json")
	}
	d := benchData(t)
	const shards = 4
	e := New(d, Options{CacheEntries: 2, Shards: shards})
	e.SquaredTable()

	const missRuns = 40
	const hitRuns = 4000

	timeHit := func(traced bool) float64 {
		if _, err := e.Query(context.Background(), benchRequest(e, 50)); err != nil {
			t.Fatal(err)
		}
		t0 := time.Now()
		for i := 0; i < hitRuns; i++ {
			ctx := context.Background()
			if traced {
				ctx = telemetry.WithTrace(ctx, telemetry.NewTrace())
			}
			if _, err := e.Query(ctx, benchRequest(e, 50)); err != nil {
				t.Fatal(err)
			}
		}
		return float64(time.Since(t0).Nanoseconds()) / hitRuns
	}
	// The sharded miss is where the span tree is widest: per-shard prime
	// spans, merge span, merge-wait annotations.
	timeMiss := func(traced bool, xBase float64) float64 {
		t0 := time.Now()
		for i := 0; i < missRuns; i++ {
			ctx := context.Background()
			if traced {
				ctx = telemetry.WithTrace(ctx, telemetry.NewTrace())
			}
			if _, err := e.Query(ctx, benchRequest(e, xBase+float64(i)*1e-3)); err != nil {
				t.Fatal(err)
			}
		}
		return float64(time.Since(t0).Nanoseconds()) / missRuns
	}

	hitOff := timeHit(false)
	hitOn := timeHit(true)
	missOff := timeMiss(false, 5)
	missOn := timeMiss(true, 25)

	report := map[string]any{
		"benchmark":          "trace_off_on",
		"dataset":            map[string]any{"name": d.Config.Name, "places": d.Config.Places, "seed": d.Config.Seed},
		"query":              map[string]any{"K": 200, "k": 10, "spatial": "squared", "algo": "abp"},
		"runs":               map[string]any{"miss": missRuns, "hit": hitRuns, "shards": shards},
		"hit_ns_op":          hitOff,
		"hit_traced_ns_op":   hitOn,
		"miss_ns_op":         missOff,
		"miss_traced_ns_op":  missOn,
		"hit_overhead_ratio": hitOn / hitOff,
		"go":                 runtime.Version(),
		"cpus":               runtime.NumCPU(),
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("hit off %.0f / on %.0f ns/op, miss off %.0f / on %.0f ns/op -> %s",
		hitOff, hitOn, missOff, missOn, out)
}
