package invindex

import (
	"math/rand"
	"testing"

	"repro/internal/textctx"
)

func buildIndex(t testing.TB) (*Index, *textctx.Dict) {
	t.Helper()
	d := textctx.NewDict()
	ix := New()
	docs := map[DocID][]string{
		1: {"history", "museum", "viking"},
		2: {"nordic", "museum", "viking"},
		3: {"abba", "music", "museum"},
		4: {"nobel", "science", "museum", "literature"},
		5: {"park", "garden"},
	}
	for id, words := range docs {
		ix.Add(id, textctx.NewSetFromStrings(d, words))
	}
	return ix, d
}

func TestAddAndLookup(t *testing.T) {
	ix, d := buildIndex(t)
	if ix.Len() != 5 {
		t.Fatalf("Len = %d, want 5", ix.Len())
	}
	museum, _ := d.Lookup("museum")
	if got := ix.DocFreq(museum); got != 4 {
		t.Errorf("DocFreq(museum) = %d, want 4", got)
	}
	if got := len(ix.Postings(museum)); got != 4 {
		t.Errorf("Postings(museum) = %d entries, want 4", got)
	}
	if terms, ok := ix.Terms(5); !ok || terms.Len() != 2 {
		t.Errorf("Terms(5) = %v, %v", terms, ok)
	}
	if _, ok := ix.Terms(42); ok {
		t.Error("Terms(42) found a missing doc")
	}
	if ix.Vocabulary() == 0 {
		t.Error("Vocabulary = 0")
	}
}

func TestReAddReplaces(t *testing.T) {
	ix, d := buildIndex(t)
	ix.Add(1, textctx.NewSetFromStrings(d, []string{"castle"}))
	if ix.Len() != 5 {
		t.Fatalf("Len = %d after re-add, want 5", ix.Len())
	}
	museum, _ := d.Lookup("museum")
	if got := ix.DocFreq(museum); got != 3 {
		t.Errorf("DocFreq(museum) after re-add = %d, want 3", got)
	}
	castle, _ := d.Lookup("castle")
	if got := ix.Postings(castle); len(got) != 1 || got[0] != 1 {
		t.Errorf("Postings(castle) = %v", got)
	}
}

func TestDelete(t *testing.T) {
	ix, d := buildIndex(t)
	ix.Delete(2)
	if ix.Len() != 4 {
		t.Fatalf("Len = %d after delete, want 4", ix.Len())
	}
	nordic, _ := d.Lookup("nordic")
	if got := ix.DocFreq(nordic); got != 0 {
		t.Errorf("DocFreq(nordic) = %d, want 0", got)
	}
	ix.Delete(999) // must be a no-op
	if ix.Len() != 4 {
		t.Error("deleting a missing doc changed Len")
	}
}

func TestSearchScoring(t *testing.T) {
	ix, d := buildIndex(t)
	q := textctx.NewSetFromStrings(d, []string{"museum", "viking"})
	hits := ix.Search(q)
	if len(hits) != 4 {
		t.Fatalf("got %d hits, want 4", len(hits))
	}
	// Docs 1 and 2 share both terms: J = 2/3; doc 3: 1/4; doc 4: 1/5.
	if hits[0].Score != 2.0/3 || hits[1].Score != 2.0/3 {
		t.Errorf("top scores = %g, %g, want 2/3", hits[0].Score, hits[1].Score)
	}
	if hits[0].Doc != 1 || hits[1].Doc != 2 {
		t.Errorf("tie not broken by DocID: %v, %v", hits[0].Doc, hits[1].Doc)
	}
	if hits[2].Score != 0.25 || hits[3].Score != 0.2 {
		t.Errorf("tail scores = %g, %g", hits[2].Score, hits[3].Score)
	}
}

func TestSearchEmptyQuery(t *testing.T) {
	ix, _ := buildIndex(t)
	if hits := ix.Search(textctx.Set{}); hits != nil {
		t.Errorf("empty query returned %v", hits)
	}
}

func TestSearchNoMatch(t *testing.T) {
	ix, d := buildIndex(t)
	q := textctx.NewSetFromStrings(d, []string{"zzz-unknown"})
	if hits := ix.Search(q); len(hits) != 0 {
		t.Errorf("unknown term returned %v", hits)
	}
}

func TestTopK(t *testing.T) {
	ix, d := buildIndex(t)
	q := textctx.NewSetFromStrings(d, []string{"museum"})
	hits := ix.TopK(q, 2)
	if len(hits) != 2 {
		t.Fatalf("TopK returned %d hits", len(hits))
	}
	all := ix.TopK(q, 100)
	if len(all) != 4 {
		t.Errorf("TopK(100) returned %d, want all 4", len(all))
	}
}

func TestStats(t *testing.T) {
	ix, _ := buildIndex(t)
	s := ix.Stats()
	if s.Docs != 5 || s.Terms != ix.Vocabulary() {
		t.Errorf("Stats = %+v", s)
	}
	if s.MaxListLen != 4 { // "museum"
		t.Errorf("MaxListLen = %d, want 4", s.MaxListLen)
	}
	if s.String() == "" {
		t.Error("empty Stats string")
	}
}

// Property-style test: Search scores always equal the direct Jaccard of
// query and document term sets.
func TestSearchMatchesDirectJaccard(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ix := New()
	sets := make(map[DocID]textctx.Set)
	for d := DocID(0); d < 50; d++ {
		n := 1 + rng.Intn(10)
		ids := make([]textctx.ItemID, n)
		for i := range ids {
			ids[i] = textctx.ItemID(rng.Intn(40))
		}
		sets[d] = textctx.NewSet(ids...)
		ix.Add(d, sets[d])
	}
	for trial := 0; trial < 20; trial++ {
		qids := make([]textctx.ItemID, 1+rng.Intn(5))
		for i := range qids {
			qids[i] = textctx.ItemID(rng.Intn(40))
		}
		q := textctx.NewSet(qids...)
		for _, h := range ix.Search(q) {
			if want := q.Jaccard(sets[h.Doc]); h.Score != want {
				t.Fatalf("doc %d: score %g, want %g", h.Doc, h.Score, want)
			}
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ix := New()
	for d := DocID(0); d < 10000; d++ {
		ids := make([]textctx.ItemID, 10)
		for i := range ids {
			ids[i] = textctx.ItemID(rng.Intn(1000))
		}
		ix.Add(d, textctx.NewSet(ids...))
	}
	q := textctx.NewSet(1, 2, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(q)
	}
}
