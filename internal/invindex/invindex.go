// Package invindex provides an in-memory inverted index over the
// contextual sets of documents (places). It serves two roles in the
// system: the leaf-level keyword index of the IR-tree's inverted files,
// and a standalone keyword retrieval engine used to compute the textual
// component of the relevance score rF.
package invindex

import (
	"fmt"
	"sort"

	"repro/internal/textctx"
)

// DocID identifies a document (place) in the index.
type DocID int32

// Index maps contextual items to the documents containing them. The zero
// value is ready to use. Index is safe for concurrent reads after all
// writes complete; it is not safe for concurrent mutation.
type Index struct {
	lists map[textctx.ItemID][]DocID
	docs  map[DocID]textctx.Set
}

// New returns an empty index.
func New() *Index {
	return &Index{
		lists: make(map[textctx.ItemID][]DocID),
		docs:  make(map[DocID]textctx.Set),
	}
}

// Add indexes doc under every item of its contextual set. Adding the same
// document twice replaces its terms.
func (ix *Index) Add(doc DocID, terms textctx.Set) {
	if old, ok := ix.docs[doc]; ok {
		ix.remove(doc, old)
	}
	ix.docs[doc] = terms
	for _, t := range terms.Items() {
		ix.lists[t] = append(ix.lists[t], doc)
	}
}

func (ix *Index) remove(doc DocID, terms textctx.Set) {
	for _, t := range terms.Items() {
		list := ix.lists[t]
		for i, d := range list {
			if d == doc {
				ix.lists[t] = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(ix.lists[t]) == 0 {
			delete(ix.lists, t)
		}
	}
}

// Delete removes doc from the index; it is a no-op for unknown documents.
func (ix *Index) Delete(doc DocID) {
	if terms, ok := ix.docs[doc]; ok {
		ix.remove(doc, terms)
		delete(ix.docs, doc)
	}
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.docs) }

// Terms returns the document's contextual set and whether it is indexed.
func (ix *Index) Terms(doc DocID) (textctx.Set, bool) {
	s, ok := ix.docs[doc]
	return s, ok
}

// Postings returns the documents containing term, in insertion order. The
// returned slice must not be modified.
func (ix *Index) Postings(term textctx.ItemID) []DocID { return ix.lists[term] }

// DocFreq returns the number of documents containing term.
func (ix *Index) DocFreq(term textctx.ItemID) int { return len(ix.lists[term]) }

// Vocabulary returns the number of distinct indexed terms.
func (ix *Index) Vocabulary() int { return len(ix.lists) }

// Hit is one search result.
type Hit struct {
	Doc DocID
	// Score is the Jaccard similarity between the query set and the
	// document's contextual set.
	Score float64
}

// Search returns all documents sharing at least one term with query,
// scored by Jaccard similarity, best first (ties broken by DocID for
// determinism).
func (ix *Index) Search(query textctx.Set) []Hit {
	if query.Len() == 0 {
		return nil
	}
	overlap := make(map[DocID]int)
	for _, t := range query.Items() {
		for _, d := range ix.lists[t] {
			overlap[d]++
		}
	}
	hits := make([]Hit, 0, len(overlap))
	for d, inter := range overlap {
		union := query.Len() + ix.docs[d].Len() - inter
		hits = append(hits, Hit{Doc: d, Score: float64(inter) / float64(union)})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		return hits[a].Doc < hits[b].Doc
	})
	return hits
}

// TopK returns the k best hits for query (fewer if the index has fewer
// matching documents).
func (ix *Index) TopK(query textctx.Set, k int) []Hit {
	hits := ix.Search(query)
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// Stats summarises the index for diagnostics.
type Stats struct {
	Docs, Terms, Postings int
	MaxListLen            int
}

// Stats returns summary statistics.
func (ix *Index) Stats() Stats {
	s := Stats{Docs: len(ix.docs), Terms: len(ix.lists)}
	for _, l := range ix.lists {
		s.Postings += len(l)
		if len(l) > s.MaxListLen {
			s.MaxListLen = len(l)
		}
	}
	return s
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("docs=%d terms=%d postings=%d maxlist=%d",
		s.Docs, s.Terms, s.Postings, s.MaxListLen)
}
