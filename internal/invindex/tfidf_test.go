package invindex

import (
	"math"
	"testing"

	"repro/internal/textctx"
)

func TestSearchCosineBasics(t *testing.T) {
	ix, d := buildIndex(t)
	q := textctx.NewSetFromStrings(d, []string{"museum", "viking"})
	hits := ix.SearchCosine(q)
	if len(hits) != 4 {
		t.Fatalf("got %d hits, want 4", len(hits))
	}
	// Docs 1 and 2 match both terms and must rank above the rest; scores
	// in (0, 1], non-increasing.
	top := map[DocID]bool{hits[0].Doc: true, hits[1].Doc: true}
	if !top[1] || !top[2] {
		t.Errorf("top-2 = %v, %v; want docs 1, 2", hits[0].Doc, hits[1].Doc)
	}
	for i, h := range hits {
		if h.Score <= 0 || h.Score > 1+1e-12 {
			t.Errorf("hit %d score %g outside (0, 1]", i, h.Score)
		}
		if i > 0 && h.Score > hits[i-1].Score+1e-12 {
			t.Error("scores not sorted")
		}
	}
}

// TestCosineIDFWeighting: matching a rare term must outrank matching an
// equally-sized common term — the property Jaccard lacks.
func TestCosineIDFWeighting(t *testing.T) {
	d := textctx.NewDict()
	ix := New()
	// "common" appears in 9 documents, "rare" in 1.
	for i := DocID(0); i < 9; i++ {
		ix.Add(i, textctx.NewSetFromStrings(d, []string{"common", "fillerA", "fillerB"}))
	}
	ix.Add(100, textctx.NewSetFromStrings(d, []string{"rare", "fillerC", "fillerD"}))

	q := textctx.NewSetFromStrings(d, []string{"common", "rare"})
	hits := ix.SearchCosine(q)
	if len(hits) != 10 {
		t.Fatalf("got %d hits", len(hits))
	}
	if hits[0].Doc != 100 {
		t.Errorf("top hit = %v, want the rare-term document", hits[0].Doc)
	}
	// Jaccard, by contrast, cannot distinguish them.
	j := ix.Search(q)
	if j[0].Score != j[1].Score {
		t.Error("setup broken: Jaccard should tie the rare and common matches")
	}
}

func TestCosineIdentical(t *testing.T) {
	d := textctx.NewDict()
	ix := New()
	set := textctx.NewSetFromStrings(d, []string{"a", "b", "c"})
	ix.Add(1, set)
	ix.Add(2, textctx.NewSetFromStrings(d, []string{"a", "x", "y"}))
	hits := ix.SearchCosine(set)
	if hits[0].Doc != 1 || math.Abs(hits[0].Score-1) > 1e-12 {
		t.Errorf("self-similarity = %+v, want doc 1 at 1.0", hits[0])
	}
}

func TestCosineEdgeCases(t *testing.T) {
	ix, d := buildIndex(t)
	if got := ix.SearchCosine(textctx.Set{}); got != nil {
		t.Error("empty query returned hits")
	}
	unknown := textctx.NewSetFromStrings(d, []string{"zzz-unknown"})
	if got := ix.SearchCosine(unknown); got != nil {
		t.Errorf("unknown-term query returned %v", got)
	}
	if got := New().SearchCosine(textctx.NewSet(1)); got != nil {
		t.Error("empty index returned hits")
	}
	if got := ix.TopKCosine(textctx.NewSetFromStrings(d, []string{"museum"}), 2); len(got) != 2 {
		t.Errorf("TopKCosine returned %d", len(got))
	}
}
