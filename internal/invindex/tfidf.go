package invindex

import (
	"math"
	"sort"

	"repro/internal/textctx"
)

// SearchCosine scores documents against query by tf-idf cosine similarity
// — the alternative IR relevance model the paper cites for explicit
// contexts (Section 1). Contexts are sets, so term frequency is binary
// and a term's weight is its inverse document frequency
// idf(t) = ln(1 + N/df(t)); the score of document d is
//
//	Σ_{t ∈ q∩d} idf(t)² / (‖q‖·‖d‖)
//
// under those weights. Results are best first, ties broken by DocID.
func (ix *Index) SearchCosine(query textctx.Set) []Hit {
	if query.Len() == 0 || len(ix.docs) == 0 {
		return nil
	}
	n := float64(len(ix.docs))
	idf := func(t textctx.ItemID) float64 {
		df := len(ix.lists[t])
		if df == 0 {
			return 0
		}
		return math.Log(1 + n/float64(df))
	}

	var qNorm float64
	for _, t := range query.Items() {
		w := idf(t)
		qNorm += w * w
	}
	if qNorm == 0 {
		return nil
	}
	qNorm = math.Sqrt(qNorm)

	// Accumulate dot products via the postings of the query terms.
	dots := make(map[DocID]float64)
	for _, t := range query.Items() {
		w := idf(t)
		if w == 0 {
			continue
		}
		for _, d := range ix.lists[t] {
			dots[d] += w * w
		}
	}

	hits := make([]Hit, 0, len(dots))
	for d, dot := range dots {
		var dNorm float64
		for _, t := range ix.docs[d].Items() {
			w := idf(t)
			dNorm += w * w
		}
		hits = append(hits, Hit{Doc: d, Score: dot / (qNorm * math.Sqrt(dNorm))})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		return hits[a].Doc < hits[b].Doc
	})
	return hits
}

// TopKCosine returns the k best cosine hits.
func (ix *Index) TopKCosine(query textctx.Set, k int) []Hit {
	hits := ix.SearchCosine(query)
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}
