package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
)

func TestParseServerTiming(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"app;dur=1.5", 1500 * time.Microsecond, true},
		{"app;dur=0.0420", 42 * time.Microsecond, true},
		{`cache;desc="hit", app;dur=2`, 2 * time.Millisecond, true},
		{"app;desc=x;dur=3", 3 * time.Millisecond, true},
		{"db;dur=9", 0, false},
		{"app;dur=banana", 0, false},
		{"app;dur=-1", 0, false},
		{"", 0, false},
	} {
		got, ok := parseServerTiming(tc.in)
		if ok != tc.ok || got != tc.want {
			t.Errorf("parseServerTiming(%q) = %v, %v; want %v, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestQuantilesExact(t *testing.T) {
	var durs []time.Duration
	for i := 1; i <= 100; i++ {
		durs = append(durs, time.Duration(i)*time.Millisecond)
	}
	q := quantiles(durs)
	if q.Samples != 100 || q.P50MS != 50 || q.P95MS != 95 || q.P99MS != 99 || q.MaxMS != 100 {
		t.Errorf("quantiles over 1..100ms = %+v", q)
	}
	r := &Report{ServerDurations: durs}
	// ⌈p·n⌉-th smallest: the sketch's rank convention.
	if got := r.ExactQuantile(0.50); got != 50*time.Millisecond {
		t.Errorf("ExactQuantile(0.50) = %v", got)
	}
	if got := r.ExactQuantile(0.999); got != 100*time.Millisecond {
		t.Errorf("ExactQuantile(0.999) = %v", got)
	}
	if got := (&Report{}).ExactQuantile(0.5); got != 0 {
		t.Errorf("empty ExactQuantile = %v", got)
	}
}

// TestRunCountsOutcomes exercises the full loop against a stub server
// that sheds every third request, checking arrival accounting, status
// classification and Server-Timing extraction without a real engine.
func TestRunCountsOutcomes(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/search") {
			t.Errorf("unexpected path %q", r.URL.Path)
		}
		w.Header().Set("Server-Timing", "app;dur=1.25")
		if n.Add(1)%3 == 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("{}"))
	}))
	defer ts.Close()

	d, err := dataset.Generate(dataset.DBpediaLike(3))
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(context.Background(), Options{
		BaseURL:  ts.URL,
		RPS:      200,
		Duration: 500 * time.Millisecond,
		Mix:      MixHitHeavy,
		Data:     d,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Sent == 0 {
		t.Fatal("no arrivals generated")
	}
	if report.Sent != report.OK+report.Shed {
		t.Errorf("sent %d != ok %d + shed %d", report.Sent, report.OK, report.Shed)
	}
	if report.Shed == 0 || report.ShedRate <= 0 {
		t.Errorf("shedding server produced shed=%d rate=%v", report.Shed, report.ShedRate)
	}
	if report.Server.Samples != report.Sent {
		t.Errorf("Server-Timing parsed on %d of %d", report.Server.Samples, report.Sent)
	}
	if report.Server.P99MS != 1.25 {
		t.Errorf("server p99 = %v, want the stubbed 1.25ms", report.Server.P99MS)
	}
	if report.Mutations != 0 || report.Searches != report.Sent {
		t.Errorf("hit-heavy mix sent %d mutations", report.Mutations)
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	if _, err := Run(context.Background(), Options{}); err == nil {
		t.Error("missing BaseURL accepted")
	}
	if _, err := Run(context.Background(), Options{BaseURL: "http://x"}); err == nil {
		t.Error("missing Data accepted")
	}
}
