// Package loadgen drives sustained HTTP load against a propserve
// instance and reports latency quantiles, throughput and shed rate.
//
// The generator is open-loop: arrivals follow a Poisson process at the
// target rate, independent of how fast responses come back. A closed
// loop (fixed worker pool issuing the next request when the previous
// one answers) slows its own arrival rate exactly when the server slows
// down, hiding the queueing collapse a tail-latency harness exists to
// measure; the open loop keeps pushing and lets the admission gate shed,
// which is the behaviour production overload shows.
//
// Latency is measured twice per request: the client-observed wall time
// (what a caller experiences, including HTTP overhead) and the
// server-side duration stamped in the response's Server-Timing header
// (the exact value the server recorded into its SLO tracker). The second
// series lets harnesses check /v1/slo quantile estimates against exact
// sample quantiles without network skew drowning the microsecond hit
// path.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dataset"
)

// Traffic mixes.
const (
	// MixHitHeavy samples a small query pool with Zipf skew: after the
	// first computation nearly every request is a cache hit.
	MixHitHeavy = "hit-heavy"
	// MixMissHeavy perturbs every query location so each request carries
	// a unique cache key and must compute.
	MixMissHeavy = "miss-heavy"
	// MixMutationInterleaved is hit-heavy search traffic with a fraction
	// of corpus mutations interleaved (requires -enable-mutation); each
	// mutation publishes a new epoch and invalidates the cache, so hits
	// and misses alternate in waves.
	MixMutationInterleaved = "mutation-interleaved"
)

// Options configures one load run. Zero values select the noted
// defaults.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Corpus targets a named corpus through the corpus-scoped routes
	// (/v1/corpora/<name>/search|corpus). Empty drives the un-scoped
	// /v1 aliases, i.e. the default corpus.
	Corpus string
	// RPS is the target arrival rate. Default 50.
	RPS float64
	// Duration is the measured phase length. Default 5s.
	Duration time.Duration
	// Warmup runs load without recording first — cache fill, connection
	// setup, scheduler warm-up. Default 0 (no warmup).
	Warmup time.Duration
	// Mix selects the traffic shape. Default MixHitHeavy.
	Mix string
	// Data generates the query workload (dataset.GenQueries); required.
	Data *dataset.Dataset
	// Seed makes the workload reproducible. Default 1.
	Seed int64
	// PoolSize is the distinct-query pool for the Zipf-skewed mixes.
	// Default 32.
	PoolSize int
	// ZipfS is the Zipf skew parameter (>1; larger = more repetition).
	// Default 1.3.
	ZipfS float64
	// K and SmallK are the retrieval and result sizes sent with every
	// search. Defaults 100 and 10.
	K, SmallK int
	// MutationFraction is the share of arrivals that POST /v1/corpus
	// under MixMutationInterleaved. Default 0.02.
	MutationFraction float64
	// MaxInFlight caps concurrently outstanding requests; an arrival past
	// the cap blocks until a slot frees (bounding client memory while
	// staying effectively open-loop at sane rates). Default 512.
	MaxInFlight int
	// Client is the HTTP client. Default: 10s timeout.
	Client *http.Client
	// Logf receives progress lines. Default: discard.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.RPS <= 0 {
		o.RPS = 50
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.Mix == "" {
		o.Mix = MixHitHeavy
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 32
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.3
	}
	if o.K <= 0 {
		o.K = 100
	}
	if o.SmallK <= 0 {
		o.SmallK = 10
	}
	if o.MutationFraction <= 0 {
		o.MutationFraction = 0.02
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 512
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Quantiles summarises one latency series with exact sorted-sample
// quantiles in fractional milliseconds.
type Quantiles struct {
	Samples int     `json:"samples"`
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	P99MS   float64 `json:"p99_ms"`
	MaxMS   float64 `json:"max_ms"`
	MeanMS  float64 `json:"mean_ms"`
}

// Report is the outcome of one measured load phase.
type Report struct {
	Mix             string  `json:"mix"`
	TargetRPS       float64 `json:"target_rps"`
	MeasuredSeconds float64 `json:"measured_seconds"`
	Sent            int     `json:"sent"`
	OK              int     `json:"ok"`
	Shed            int     `json:"shed"`
	Errors5xx       int     `json:"errors_5xx"`
	Client4xx       int     `json:"client_4xx"`
	TransportErrors int     `json:"transport_errors"`
	Searches        int     `json:"searches"`
	Mutations       int     `json:"mutations"`
	// ThroughputRPS counts completed (any status) requests per measured
	// second; ShedRate is shed / sent.
	ThroughputRPS float64 `json:"throughput_rps"`
	ShedRate      float64 `json:"shed_rate"`
	// Client is the caller-experienced latency; Server the server-side
	// latency parsed from Server-Timing headers.
	Client Quantiles `json:"client"`
	Server Quantiles `json:"server"`

	// ServerDurations holds the raw server-side samples for agreement
	// checks against /v1/slo; omitted from JSON reports.
	ServerDurations []time.Duration `json:"-"`
}

// sample is one completed request.
type sample struct {
	client   time.Duration
	server   time.Duration
	hasSrv   bool
	status   int // 0 for transport errors
	mutation bool
}

// Run executes warmup then the measured phase and reports. It returns an
// error only for unusable options or a fully unreachable server; request
// failures are counted, not fatal.
func Run(ctx context.Context, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL is required")
	}
	if opts.Data == nil {
		return nil, fmt.Errorf("loadgen: Data is required")
	}
	base := strings.TrimRight(opts.BaseURL, "/")
	if opts.Corpus != "" {
		base += "/v1/corpora/" + url.PathEscape(opts.Corpus)
	} else {
		base += "/v1"
	}
	queries, err := opts.Data.GenQueries(opts.PoolSize, opts.SmallK, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("loadgen: generating query pool: %w", err)
	}
	searchURL := func(i int, jitter float64) string {
		q := queries[i%len(queries)]
		v := url.Values{}
		v.Set("x", strconv.FormatFloat(q.Loc.X+jitter, 'g', -1, 64))
		v.Set("y", strconv.FormatFloat(q.Loc.Y, 'g', -1, 64))
		v.Set("keywords", strings.Join(q.Keywords.Words(opts.Data.Dict), ","))
		v.Set("K", strconv.Itoa(opts.K))
		v.Set("k", strconv.Itoa(opts.SmallK))
		return base + "/search?" + v.Encode()
	}
	pool := make([]string, len(queries))
	for i := range queries {
		pool[i] = searchURL(i, 0)
	}
	words := opts.Data.Dict.Words()
	if len(words) == 0 {
		return nil, fmt.Errorf("loadgen: dataset dictionary is empty")
	}

	// target builds one arrival's request. The x perturbation in the
	// miss-heavy mix makes each cache key unique: keys hash exact float
	// bits, so even a nanoscale jitter forces a fresh computation.
	target := func(rng *rand.Rand, zipf *rand.Zipf, reqID int) (string, string) {
		if opts.Mix == MixMutationInterleaved && rng.Float64() < opts.MutationFraction {
			return base + "/corpus", mutationBody(rng, words, reqID)
		}
		if opts.Mix == MixMissHeavy {
			return searchURL(reqID, float64(reqID+1)*1e-9), ""
		}
		return pool[zipf.Uint64()], ""
	}

	if opts.Warmup > 0 {
		opts.Logf("loadgen: warmup %v at %.0f rps (%s)", opts.Warmup, opts.RPS, opts.Mix)
		runPhase(ctx, opts, target, opts.Warmup, nil)
	}
	opts.Logf("loadgen: measuring %v at %.0f rps (%s)", opts.Duration, opts.RPS, opts.Mix)
	var (
		mu      sync.Mutex
		samples []sample
	)
	start := time.Now()
	runPhase(ctx, opts, target, opts.Duration, func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	})
	measured := time.Since(start)
	return summarize(opts, samples, measured), nil
}

// runPhase issues open-loop Poisson arrivals for dur; record receives
// every completed sample (nil during warmup).
func runPhase(ctx context.Context, opts Options, target func(*rand.Rand, *rand.Zipf, int) (string, string), dur time.Duration, record func(sample)) {
	rng := rand.New(rand.NewSource(opts.Seed + int64(dur)))
	zipf := rand.NewZipf(rng, opts.ZipfS, 1, uint64(opts.PoolSize-1))
	sem := make(chan struct{}, opts.MaxInFlight)
	var wg sync.WaitGroup
	deadline := time.Now().Add(dur)
	next := time.Now()
	for reqID := 0; ; reqID++ {
		// Poisson process: exponentially distributed inter-arrival gaps.
		next = next.Add(time.Duration(rng.ExpFloat64() / opts.RPS * float64(time.Second)))
		if next.After(deadline) {
			break
		}
		if d := time.Until(next); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				wg.Wait()
				return
			}
		}
		reqURL, body := target(rng, zipf, reqID)
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			wg.Wait()
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			s := issue(ctx, opts.Client, reqURL, body)
			s.mutation = body != ""
			if record != nil {
				record(s)
			}
		}()
	}
	wg.Wait()
}

// mutationBody builds one single-upsert /v1/corpus payload with a
// workload-owned ID (so repeated runs overwrite their own places rather
// than growing the corpus without bound) and dictionary words the live
// queries actually search for.
func mutationBody(rng *rand.Rand, words []string, reqID int) string {
	w1 := words[rng.Intn(len(words))]
	w2 := words[rng.Intn(len(words))]
	return fmt.Sprintf(`{"upserts":[{"id":"load-%d","x":%.4f,"y":%.4f,"context":[%q,%q]}]}`,
		reqID%64, rng.Float64()*10, rng.Float64()*10, w1, w2)
}

// issue performs one request and extracts the sample.
func issue(ctx context.Context, client *http.Client, target, body string) sample {
	var (
		req *http.Request
		err error
	)
	if body != "" {
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, target, strings.NewReader(body))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	} else {
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	}
	if err != nil {
		return sample{}
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return sample{client: time.Since(start)}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	s := sample{client: time.Since(start), status: resp.StatusCode}
	if d, ok := parseServerTiming(resp.Header.Get("Server-Timing")); ok {
		s.server, s.hasSrv = d, true
	}
	return s
}

// parseServerTiming extracts the app;dur=<ms> value propserve stamps on
// SLO-tracked responses.
func parseServerTiming(h string) (time.Duration, bool) {
	for _, part := range strings.Split(h, ",") {
		part = strings.TrimSpace(part)
		if !strings.HasPrefix(part, "app;") {
			continue
		}
		for _, field := range strings.Split(part, ";") {
			if v, ok := strings.CutPrefix(field, "dur="); ok {
				ms, err := strconv.ParseFloat(v, 64)
				if err != nil || ms < 0 {
					return 0, false
				}
				return time.Duration(ms * float64(time.Millisecond)), true
			}
		}
	}
	return 0, false
}

func summarize(opts Options, samples []sample, measured time.Duration) *Report {
	r := &Report{
		Mix:             opts.Mix,
		TargetRPS:       opts.RPS,
		MeasuredSeconds: round3(measured.Seconds()),
		Sent:            len(samples),
	}
	var clientDur, serverDur []time.Duration
	for _, s := range samples {
		switch {
		case s.status == 0:
			r.TransportErrors++
		case s.status == http.StatusServiceUnavailable:
			r.Shed++
		case s.status >= 500:
			r.Errors5xx++
		case s.status >= 400:
			r.Client4xx++
		default:
			r.OK++
		}
		if s.mutation {
			r.Mutations++
		} else {
			r.Searches++
		}
		if s.status != 0 {
			clientDur = append(clientDur, s.client)
		}
		if s.hasSrv {
			serverDur = append(serverDur, s.server)
		}
	}
	if measured > 0 {
		r.ThroughputRPS = round3(float64(len(samples)) / measured.Seconds())
	}
	if r.Sent > 0 {
		r.ShedRate = round3(float64(r.Shed) / float64(r.Sent))
	}
	r.Client = quantiles(clientDur)
	r.Server = quantiles(serverDur)
	r.ServerDurations = serverDur
	return r
}

// quantiles computes exact order statistics over one latency series.
func quantiles(durs []time.Duration) Quantiles {
	q := Quantiles{Samples: len(durs)}
	if len(durs) == 0 {
		return q
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	// ⌈p·n⌉-th smallest, matching ExactQuantile and the slo sketch.
	at := func(p float64) time.Duration {
		rank := int(math.Ceil(p*float64(len(sorted)))) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= len(sorted) {
			rank = len(sorted) - 1
		}
		return sorted[rank]
	}
	q.P50MS = ms(at(0.50))
	q.P95MS = ms(at(0.95))
	q.P99MS = ms(at(0.99))
	q.MaxMS = ms(sorted[len(sorted)-1])
	q.MeanMS = ms(sum / time.Duration(len(sorted)))
	return q
}

// ExactQuantile returns the p-quantile of the report's server-side
// samples (the ⌈p·n⌉-th smallest), for agreement checks against the
// sketch estimates /v1/slo reports.
func (r *Report) ExactQuantile(p float64) time.Duration {
	if len(r.ServerDurations) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.ServerDurations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Same rank convention as slo.Counts.Quantile, so agreement checks
	// compare the same order statistic.
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func ms(d time.Duration) float64 { return round3(d.Seconds() * 1e3) }

func round3(v float64) float64 {
	return float64(int64(v*1e3+0.5)) / 1e3
}
