package textctx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDictIntern(t *testing.T) {
	d := NewDict()
	a := d.Intern("museum")
	b := d.Intern("viking")
	if a == b {
		t.Fatal("distinct words interned to same id")
	}
	if got := d.Intern("museum"); got != a {
		t.Errorf("re-interning returned %d, want %d", got, a)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if w := d.Word(a); w != "museum" {
		t.Errorf("Word(%d) = %q", a, w)
	}
	if id, ok := d.Lookup("viking"); !ok || id != b {
		t.Errorf("Lookup = %d, %v", id, ok)
	}
	if _, ok := d.Lookup("absent"); ok {
		t.Error("Lookup found absent word")
	}
}

func TestDictZeroValue(t *testing.T) {
	var d Dict
	id := d.Intern("x")
	if d.Word(id) != "x" {
		t.Error("zero-value Dict broken")
	}
}

func TestDictWordPanics(t *testing.T) {
	d := NewDict()
	defer func() {
		if recover() == nil {
			t.Error("Word(unknown) did not panic")
		}
	}()
	d.Word(42)
}

func TestNewSetDedup(t *testing.T) {
	s := NewSet(3, 1, 3, 2, 1)
	want := []ItemID{1, 2, 3}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for i, id := range s.Items() {
		if id != want[i] {
			t.Errorf("Items[%d] = %d, want %d", i, id, want[i])
		}
	}
}

func TestSetContains(t *testing.T) {
	s := NewSet(2, 4, 6)
	for _, id := range []ItemID{2, 4, 6} {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false", id)
		}
	}
	for _, id := range []ItemID{1, 3, 5, 7} {
		if s.Contains(id) {
			t.Errorf("Contains(%d) = true", id)
		}
	}
	if (Set{}).Contains(1) {
		t.Error("empty set contains 1")
	}
}

func TestSetFromStringsAndWords(t *testing.T) {
	d := NewDict()
	s := NewSetFromStrings(d, []string{"b", "a", "b"})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	words := s.Words(d)
	// Interning order: "b" then "a", so ids sort as b < a.
	if len(words) != 2 || words[0] != "b" || words[1] != "a" {
		t.Errorf("Words = %v", words)
	}
}

func TestJaccardBasics(t *testing.T) {
	a := NewSet(1, 2, 3, 4)
	b := NewSet(1, 4)
	if got := a.IntersectionSize(b); got != 2 {
		t.Errorf("IntersectionSize = %d, want 2", got)
	}
	if got := a.UnionSize(b); got != 4 {
		t.Errorf("UnionSize = %d, want 4", got)
	}
	if got := a.Jaccard(b); got != 0.5 {
		t.Errorf("Jaccard = %g, want 0.5", got)
	}
	if got := a.Jaccard(a); got != 1 {
		t.Errorf("Jaccard(self) = %g, want 1", got)
	}
	if got := (Set{}).Jaccard(Set{}); got != 0 {
		t.Errorf("Jaccard(empty, empty) = %g, want 0", got)
	}
	if got := a.Jaccard(Set{}); got != 0 {
		t.Errorf("Jaccard(a, empty) = %g, want 0", got)
	}
}

func TestSetEqual(t *testing.T) {
	if !NewSet(1, 2).Equal(NewSet(2, 1)) {
		t.Error("equal sets reported unequal")
	}
	if NewSet(1, 2).Equal(NewSet(1, 3)) || NewSet(1).Equal(NewSet(1, 2)) {
		t.Error("unequal sets reported equal")
	}
}

// randomSet derives a deterministic pseudo-random set from raw values,
// bounded to a small universe so collisions are common.
func randomSet(raw []uint8) Set {
	ids := make([]ItemID, 0, len(raw))
	for _, r := range raw {
		ids = append(ids, ItemID(r%64))
	}
	return NewSet(ids...)
}

// Property: Jaccard is symmetric and in [0, 1].
func TestJaccardSymmetryRange(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		a, b := randomSet(ra), randomSet(rb)
		j1, j2 := a.Jaccard(b), b.Jaccard(a)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: 1 − Jaccard is a metric (Levandowsky & Winter 1971), which
// Section 8 relies on for the approximation bounds.
func TestJaccardDistanceTriangle(t *testing.T) {
	f := func(ra, rb, rc []uint8) bool {
		a, b, c := randomSet(ra), randomSet(rb), randomSet(rc)
		dab := 1 - a.Jaccard(b)
		dbc := 1 - b.Jaccard(c)
		dac := 1 - a.Jaccard(c)
		return dab+dbc >= dac-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPairScoresIndexing(t *testing.T) {
	ps := NewPairScores(4)
	v := 0.0
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			v += 1
			ps.Set(i, j, v)
		}
	}
	if got := ps.At(0, 1); got != 1 {
		t.Errorf("At(0,1) = %g", got)
	}
	if got := ps.At(2, 3); got != 6 {
		t.Errorf("At(2,3) = %g", got)
	}
	if got := ps.At(3, 2); got != 6 {
		t.Error("At is not symmetric:", got)
	}
	ps.Add(0, 3, 0.5)
	if got := ps.At(3, 0); got != 3.5 {
		t.Errorf("Add/At = %g, want 3.5", got)
	}
}

func TestPairScoresDiagonalPanics(t *testing.T) {
	ps := NewPairScores(3)
	defer func() {
		if recover() == nil {
			t.Error("At(i, i) did not panic")
		}
	}()
	ps.At(1, 1)
}

func TestPairScoresOutOfRangePanics(t *testing.T) {
	ps := NewPairScores(3)
	for _, pair := range [][2]int{{-1, 0}, {0, 3}, {3, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d, %d) did not panic", pair[0], pair[1])
				}
			}()
			ps.At(pair[0], pair[1])
		}()
	}
}

func TestPairScoresRowSums(t *testing.T) {
	ps := NewPairScores(3)
	ps.Set(0, 1, 0.5)
	ps.Set(0, 2, 0.25)
	ps.Set(1, 2, 1)
	sums := ps.RowSums()
	want := []float64{0.75, 1.5, 1.25}
	for i := range want {
		if math.Abs(sums[i]-want[i]) > 1e-12 {
			t.Errorf("RowSums[%d] = %g, want %g", i, sums[i], want[i])
		}
	}
}

func TestPairScoresMaxAbsDiff(t *testing.T) {
	a, b := NewPairScores(3), NewPairScores(3)
	a.Set(0, 2, 0.5)
	b.Set(0, 2, 0.8)
	b.Set(1, 2, 0.1)
	if got := a.MaxAbsDiff(b); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("MaxAbsDiff = %g, want 0.3", got)
	}
}
