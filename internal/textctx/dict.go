// Package textctx models the contextual side of spatial keyword search:
// contextual sets (keywords, tags, or RDF entity identifiers) attached to
// places, and the all-pairs Jaccard-similarity engines of Section 6 of the
// paper — the baseline hash-join, the micro set Jaccard hashing (msJh)
// algorithm (Algorithm 1), and a MinHash comparator used as the eminent
// technique the paper compares against.
//
// Contextual items of any origin (words, tags, dataset nodes, RDF graph
// nodes) are interned into dense int32 identifiers by a Dict, so the
// similarity engines are agnostic to the item type, exactly as the paper's
// use of Jaccard similarity is.
package textctx

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ItemID is the dense identifier of an interned contextual item.
type ItemID int32

// Dict interns contextual item strings to dense ItemIDs. The zero value is
// ready to use. Dict is not safe for concurrent mutation.
type Dict struct {
	ids   map[string]ItemID
	words []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]ItemID)}
}

// Intern returns the identifier of w, assigning a fresh one if needed.
func (d *Dict) Intern(w string) ItemID {
	if d.ids == nil {
		d.ids = make(map[string]ItemID)
	}
	if id, ok := d.ids[w]; ok {
		return id
	}
	id := ItemID(len(d.words))
	d.ids[w] = id
	d.words = append(d.words, w)
	return id
}

// Clone returns an independent copy of the dictionary: interning into the
// clone never mutates the original, while every identifier the original
// assigned keeps its meaning in the clone (interning is append-only, so a
// clone is a superset-in-waiting of its source). Corpus snapshots lean on
// this to share a dictionary across epochs until a mutation batch actually
// introduces new words.
func (d *Dict) Clone() *Dict {
	c := &Dict{
		ids:   make(map[string]ItemID, len(d.ids)),
		words: append([]string(nil), d.words...),
	}
	for w, id := range d.ids {
		c.ids[w] = id
	}
	return c
}

// Lookup returns the identifier of w and whether it is interned.
func (d *Dict) Lookup(w string) (ItemID, bool) {
	id, ok := d.ids[w]
	return id, ok
}

// Word returns the string for id. It panics on an unknown identifier.
func (d *Dict) Word(id ItemID) string {
	if int(id) < 0 || int(id) >= len(d.words) {
		panic(fmt.Sprintf("textctx: unknown ItemID %d", id))
	}
	return d.words[id]
}

// Len returns the number of interned items.
func (d *Dict) Len() int { return len(d.words) }

// Set is a contextual set: a sorted slice of unique item identifiers.
// The zero value is the empty set.
type Set struct {
	items []ItemID
}

// NewSet builds a Set from ids, sorting and deduplicating them.
func NewSet(ids ...ItemID) Set {
	if len(ids) == 0 {
		return Set{}
	}
	s := make([]ItemID, len(ids))
	copy(s, ids)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return Set{items: out}
}

// NewSetFromStrings interns each word in d and builds the resulting Set.
func NewSetFromStrings(d *Dict, words []string) Set {
	ids := make([]ItemID, len(words))
	for i, w := range words {
		ids[i] = d.Intern(w)
	}
	return NewSet(ids...)
}

// Len returns |s|, the number of elements in the contextual set.
func (s Set) Len() int { return len(s.items) }

// Items returns the sorted identifiers. The returned slice must not be
// modified.
func (s Set) Items() []ItemID { return s.items }

// Contains reports whether id is in s.
func (s Set) Contains(id ItemID) bool {
	i := sort.Search(len(s.items), func(i int) bool { return s.items[i] >= id })
	return i < len(s.items) && s.items[i] == id
}

// Fingerprint returns a compact canonical encoding of the set's item
// identifiers ("3,17,42"). Two sets have equal fingerprints iff they are
// Equal, which makes the fingerprint usable as (part of) a cache key for
// query results keyed on an interned keyword set.
func (s Set) Fingerprint() string {
	if len(s.items) == 0 {
		return ""
	}
	var b strings.Builder
	for i, id := range s.items {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(id)))
	}
	return b.String()
}

// Words resolves the set back to strings using d.
func (s Set) Words(d *Dict) []string {
	out := make([]string, len(s.items))
	for i, id := range s.items {
		out[i] = d.Word(id)
	}
	return out
}

// IntersectionSize returns |s ∩ o| by merging the two sorted slices.
func (s Set) IntersectionSize(o Set) int {
	i, j, n := 0, 0, 0
	for i < len(s.items) && j < len(o.items) {
		switch {
		case s.items[i] < o.items[j]:
			i++
		case s.items[i] > o.items[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// UnionSize returns |s ∪ o|.
func (s Set) UnionSize(o Set) int {
	return len(s.items) + len(o.items) - s.IntersectionSize(o)
}

// Jaccard returns |s ∩ o| / |s ∪ o|. Two empty sets have similarity 0,
// the conventional choice that keeps empty contexts from attracting each
// other in the proportionality scores.
func (s Set) Jaccard(o Set) float64 {
	u := s.UnionSize(o)
	if u == 0 {
		return 0
	}
	return float64(s.IntersectionSize(o)) / float64(u)
}

// Equal reports whether s and o contain exactly the same items.
func (s Set) Equal(o Set) bool {
	if len(s.items) != len(o.items) {
		return false
	}
	for i := range s.items {
		if s.items[i] != o.items[i] {
			return false
		}
	}
	return true
}
