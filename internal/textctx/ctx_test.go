package textctx

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

func ctxTestSets(n, vocab int, seed int64) []Set {
	rng := rand.New(rand.NewSource(seed))
	sets := make([]Set, n)
	for i := range sets {
		ids := make([]ItemID, 1+rng.Intn(8))
		for j := range ids {
			ids[j] = ItemID(rng.Intn(vocab))
		}
		sets[i] = NewSet(ids...)
	}
	return sets
}

// TestContextEnginesCancelled verifies every ContextEngine rejects a dead
// context instead of completing the quadratic comparison work.
func TestContextEnginesCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sets := ctxTestSets(200, 40, 1)
	for _, e := range []ContextEngine{MSJHEngine{}, BaselineEngine{}, MSJHParallelEngine{Workers: 4}} {
		if _, err := e.AllPairsCtx(ctx, sets); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", e.Name(), err)
		}
	}
}

// TestContextEnginesLiveMatchAllPairs pins that the ctx variants compute
// the same matrix as the context-free entry points.
func TestContextEnginesLiveMatchAllPairs(t *testing.T) {
	sets := ctxTestSets(120, 30, 2)
	want := MSJHEngine{}.AllPairs(sets)
	for _, e := range []ContextEngine{MSJHEngine{}, BaselineEngine{}, MSJHParallelEngine{Workers: 4}} {
		got, err := e.AllPairsCtx(context.Background(), sets)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		for i := 0; i < len(sets); i++ {
			for j := i + 1; j < len(sets); j++ {
				if got.At(i, j) != want.At(i, j) {
					t.Fatalf("%s: At(%d,%d) = %v, want %v", e.Name(), i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}
}
