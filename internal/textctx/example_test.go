package textctx_test

import (
	"fmt"

	"repro/internal/textctx"
)

// ExampleMSJHEngine reproduces the paper's Figure 4 worked example with
// the msJh algorithm.
func ExampleMSJHEngine() {
	d := textctx.NewDict()
	sets := []textctx.Set{
		textctx.NewSetFromStrings(d, []string{"a", "b", "c", "d"}),
		textctx.NewSetFromStrings(d, []string{"a", "d"}),
		textctx.NewSetFromStrings(d, []string{"e", "f", "g"}),
		textctx.NewSetFromStrings(d, []string{"a", "b", "h"}),
		textctx.NewSetFromStrings(d, []string{"b", "c", "i"}),
	}
	sim := textctx.MSJHEngine{}.AllPairs(sets)
	fmt.Printf("sC(p1, p2) = %.2f\n", sim.At(0, 1))
	fmt.Printf("sC(p1, p3) = %.2f\n", sim.At(0, 2))
	fmt.Printf("sC(p4, p5) = %.2f\n", sim.At(3, 4))
	// Output:
	// sC(p1, p2) = 0.50
	// sC(p1, p3) = 0.00
	// sC(p4, p5) = 0.20
}

// ExampleSet_Jaccard shows direct Jaccard similarity between two
// contextual sets.
func ExampleSet_Jaccard() {
	d := textctx.NewDict()
	a := textctx.NewSetFromStrings(d, []string{"history", "museum", "viking"})
	b := textctx.NewSetFromStrings(d, []string{"history", "museum", "nordic"})
	fmt.Printf("%.1f\n", a.Jaccard(b))
	// Output:
	// 0.5
}
