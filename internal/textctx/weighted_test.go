package textctx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestWeightedUniformEqualsPlainJaccard: with uniform (or nil) weights
// the engine reduces exactly to the unweighted engines.
func TestWeightedUniformEqualsPlainJaccard(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		sets := randomSets(rng, 2+rng.Intn(40), 1+rng.Intn(80), 15)
		plain := MSJHEngine{}.AllPairs(sets)
		for _, eng := range []WeightedJaccardEngine{
			{}, // nil Weight
			{Weight: func(ItemID) float64 { return 1 }},
			{Weight: func(ItemID) float64 { return 2.5 }}, // any constant cancels
		} {
			got := eng.AllPairs(sets)
			if d := plain.MaxAbsDiff(got); d > 1e-12 {
				t.Fatalf("trial %d: weighted (uniform) differs by %g", trial, d)
			}
		}
	}
}

// TestWeightedMatchesDefinition: compare against a direct computation of
// Σ min / Σ max over random weights.
func TestWeightedMatchesDefinition(t *testing.T) {
	weights := map[ItemID]float64{}
	rng := rand.New(rand.NewSource(5))
	weight := func(t ItemID) float64 {
		if w, ok := weights[t]; ok {
			return w
		}
		w := rng.Float64() * 3
		weights[t] = w
		return w
	}
	f := func(ra, rb []uint8) bool {
		a, b := randomSet(ra), randomSet(rb)
		got := WeightedJaccardEngine{Weight: weight}.AllPairs([]Set{a, b}).At(0, 1)
		var inter, union float64
		for _, v := range a.Union(b).Items() {
			w := weight(v)
			union += w
			if a.Contains(v) && b.Contains(v) {
				inter += w
			}
		}
		want := 0.0
		if union > 0 {
			want = inter / union
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestWeightedEmphasisesRareItems: under IDF weights, sharing a rare item
// similarity-dominates sharing a ubiquitous one.
func TestWeightedEmphasisesRareItems(t *testing.T) {
	d := NewDict()
	common := d.Intern("museum") // in every set
	rare := d.Intern("viking")   // in two sets
	corpus := make([]Set, 20)
	for i := range corpus {
		ids := []ItemID{common, ItemID(100 + i)}
		if i < 2 {
			ids = append(ids, rare)
		}
		corpus[i] = NewSet(ids...)
	}
	eng := WeightedJaccardEngine{Weight: IDFWeight(corpus)}
	sim := eng.AllPairs(corpus)
	// Sets 0 and 1 share {museum, viking}; sets 2 and 3 share {museum}.
	if sim.At(0, 1) <= sim.At(2, 3) {
		t.Errorf("rare-sharing pair %g not above common-only pair %g",
			sim.At(0, 1), sim.At(2, 3))
	}
	// Plain Jaccard sees a much smaller relative gap.
	plain := MSJHEngine{}.AllPairs(corpus)
	gapW := sim.At(0, 1) / sim.At(2, 3)
	gapP := plain.At(0, 1) / plain.At(2, 3)
	if gapW <= gapP {
		t.Errorf("IDF weighting did not amplify the gap: %g vs %g", gapW, gapP)
	}
}

// TestWeightedZeroWeightItemsIgnored: items with zero weight contribute
// to neither intersection nor union.
func TestWeightedZeroWeightItemsIgnored(t *testing.T) {
	stop := ItemID(0)
	eng := WeightedJaccardEngine{Weight: func(t ItemID) float64 {
		if t == stop {
			return 0
		}
		return 1
	}}
	a := NewSet(0, 1, 2)
	b := NewSet(0, 1, 3)
	// Ignoring item 0: J = |{1}| / |{1,2,3}| = 1/3.
	if got := eng.AllPairs([]Set{a, b}).At(0, 1); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("got %g, want 1/3", got)
	}
}

func TestIDFWeight(t *testing.T) {
	corpus := []Set{NewSet(1, 2), NewSet(1), NewSet(1)}
	w := IDFWeight(corpus)
	if w(1) >= w(2) {
		t.Errorf("ubiquitous item weight %g not below rare %g", w(1), w(2))
	}
	if w(99) < w(2) {
		t.Error("unseen item should get the maximum weight")
	}
	if (WeightedJaccardEngine{}).Name() != "weighted-jaccard" {
		t.Error("wrong name")
	}
}
