package textctx

import "repro/internal/pairs"

// PairScores is the all-pairs contextual similarity cache. It is an alias
// of pairs.Matrix so that contextual (sC) and spatial (sS) caches share one
// representation and can be combined into the weighted sF of Eq. 13.
type PairScores = pairs.Matrix

// NewPairScores returns an all-zero n×n symmetric score cache.
func NewPairScores(n int) *PairScores { return pairs.New(n) }
