package textctx

import "math"

// WeightedJaccardEngine computes all-pairs weighted Jaccard similarity
//
//	sC_w(A, B) = Σ_{t ∈ A∩B} w(t) / Σ_{t ∈ A∪B} w(t),
//
// the contextual-side counterpart of the paper's future-work item on
// alternative scoring functions. With item weights such as inverse
// document frequency, sharing a rare attribute counts for more than
// sharing a ubiquitous one ("museum" in a museum query identifies
// nothing; "Viking collection" does). It plugs into
// core.ScoreOptions.Contextual like any other engine; uniform weights
// reduce it exactly to plain Jaccard.
type WeightedJaccardEngine struct {
	// Weight returns the weight of an item; nil means uniform weights
	// (plain Jaccard). Weights must be non-negative; items with zero
	// weight are ignored entirely.
	Weight func(ItemID) float64
}

// Name implements JaccardEngine.
func (WeightedJaccardEngine) Name() string { return "weighted-jaccard" }

// AllPairs implements JaccardEngine with the msJh inverted-list strategy,
// accumulating weighted intersections instead of counts.
func (e WeightedJaccardEngine) AllPairs(sets []Set) *PairScores {
	w := e.Weight
	if w == nil {
		w = func(ItemID) float64 { return 1 }
	}
	n := len(sets)
	ps := NewPairScores(n)

	// Total weight per set (the union is computed from totals and the
	// intersection, as in the unweighted case).
	totals := make([]float64, n)
	for i, s := range sets {
		for _, v := range s.Items() {
			totals[i] += w(v)
		}
	}

	msht := make(map[ItemID][]int32)
	for i, s := range sets {
		for _, v := range s.Items() {
			msht[v] = append(msht[v], int32(i))
		}
	}

	inter := make([]float64, n)
	touched := make([]int32, 0, 64)
	for i, s := range sets {
		touched = touched[:0]
		for _, v := range s.Items() {
			wv := w(v)
			if wv == 0 {
				continue
			}
			list := msht[v]
			for t := len(list) - 1; t >= 0; t-- {
				j := list[t]
				if int(j) <= i {
					break
				}
				if inter[j] == 0 {
					touched = append(touched, j)
				}
				inter[j] += wv
			}
		}
		for _, j := range touched {
			wInter := inter[j]
			inter[j] = 0
			union := totals[i] + totals[j] - wInter
			if union > 0 {
				ps.Set(i, int(j), wInter/union)
			}
		}
	}
	return ps
}

// IDFWeight builds a Weight function from the document frequencies of the
// given corpus of sets: w(t) = ln(1 + N/df(t)), with unseen items given
// the maximum weight (df = 1). It is the natural companion of
// WeightedJaccardEngine for rare-attribute emphasis.
func IDFWeight(corpus []Set) func(ItemID) float64 {
	df := make(map[ItemID]int)
	for _, s := range corpus {
		for _, v := range s.Items() {
			df[v]++
		}
	}
	n := float64(len(corpus))
	return func(t ItemID) float64 {
		d := df[t]
		if d == 0 {
			d = 1
		}
		return math.Log(1 + n/float64(d))
	}
}
