package textctx

import (
	"math/rand"
	"testing"
)

// TestMSJHParallelIdentical: the parallel engine must be bit-identical to
// the sequential one on arbitrary inputs and worker counts.
func TestMSJHParallelIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 20; trial++ {
		sets := randomSets(rng, 2+rng.Intn(120), 1+rng.Intn(200), 25)
		want := MSJHEngine{}.AllPairs(sets)
		for _, workers := range []int{0, 1, 2, 3, 8, 200} {
			got := MSJHParallelEngine{Workers: workers}.AllPairs(sets)
			if d := want.MaxAbsDiff(got); d != 0 {
				t.Fatalf("trial %d workers %d: differs by %g", trial, workers, d)
			}
		}
	}
}

func TestMSJHParallelEmpty(t *testing.T) {
	e := MSJHParallelEngine{Workers: 4}
	if got := e.AllPairs(nil); got.N() != 0 {
		t.Error("empty input mishandled")
	}
	if e.Name() != "msJh-parallel" {
		t.Errorf("Name = %q", e.Name())
	}
}

func BenchmarkMSJHSequentialK2000(b *testing.B) { benchEngine(b, MSJHEngine{}, 2000, 100) }
func BenchmarkMSJHParallelK2000(b *testing.B) {
	benchEngine(b, MSJHParallelEngine{}, 2000, 100)
}
