package textctx

import (
	"testing"
	"testing/quick"
)

func TestSetAlgebraBasics(t *testing.T) {
	a := NewSet(1, 2, 3, 5)
	b := NewSet(2, 4, 5, 6)
	if got := a.Union(b); !got.Equal(NewSet(1, 2, 3, 4, 5, 6)) {
		t.Errorf("Union = %v", got.Items())
	}
	if got := a.Intersect(b); !got.Equal(NewSet(2, 5)) {
		t.Errorf("Intersect = %v", got.Items())
	}
	if got := a.Difference(b); !got.Equal(NewSet(1, 3)) {
		t.Errorf("Difference = %v", got.Items())
	}
	if got := b.Difference(a); !got.Equal(NewSet(4, 6)) {
		t.Errorf("Difference = %v", got.Items())
	}
}

func TestSetAlgebraEmpty(t *testing.T) {
	a := NewSet(1, 2)
	e := Set{}
	if !a.Union(e).Equal(a) || !e.Union(a).Equal(a) {
		t.Error("union with empty broken")
	}
	if a.Intersect(e).Len() != 0 || e.Intersect(a).Len() != 0 {
		t.Error("intersect with empty broken")
	}
	if !a.Difference(e).Equal(a) || e.Difference(a).Len() != 0 {
		t.Error("difference with empty broken")
	}
}

// Properties: |A∪B| = |A| + |B| − |A∩B|; A\B, A∩B partition A;
// operations agree with the counting primitives used by Jaccard.
func TestSetAlgebraProperties(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		a, b := randomSet(ra), randomSet(rb)
		u, x, d := a.Union(b), a.Intersect(b), a.Difference(b)
		if u.Len() != a.Len()+b.Len()-x.Len() {
			return false
		}
		if x.Len() != a.IntersectionSize(b) || u.Len() != a.UnionSize(b) {
			return false
		}
		if d.Len()+x.Len() != a.Len() {
			return false
		}
		// Every element of the intersection is in both inputs; every
		// element of the difference only in a.
		for _, v := range x.Items() {
			if !a.Contains(v) || !b.Contains(v) {
				return false
			}
		}
		for _, v := range d.Items() {
			if !a.Contains(v) || b.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDictWords(t *testing.T) {
	d := NewDict()
	d.Intern("b")
	d.Intern("a")
	words := d.Words()
	if len(words) != 2 || words[0] != "b" || words[1] != "a" {
		t.Errorf("Words = %v", words)
	}
	words[0] = "mutated"
	if d.Word(0) != "b" {
		t.Error("Words did not return a copy")
	}
}
