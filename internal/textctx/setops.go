package textctx

// Union returns s ∪ o as a new Set.
func (s Set) Union(o Set) Set {
	out := make([]ItemID, 0, len(s.items)+len(o.items))
	i, j := 0, 0
	for i < len(s.items) && j < len(o.items) {
		switch {
		case s.items[i] < o.items[j]:
			out = append(out, s.items[i])
			i++
		case s.items[i] > o.items[j]:
			out = append(out, o.items[j])
			j++
		default:
			out = append(out, s.items[i])
			i++
			j++
		}
	}
	out = append(out, s.items[i:]...)
	out = append(out, o.items[j:]...)
	return Set{items: out}
}

// Intersect returns s ∩ o as a new Set.
func (s Set) Intersect(o Set) Set {
	var out []ItemID
	i, j := 0, 0
	for i < len(s.items) && j < len(o.items) {
		switch {
		case s.items[i] < o.items[j]:
			i++
		case s.items[i] > o.items[j]:
			j++
		default:
			out = append(out, s.items[i])
			i++
			j++
		}
	}
	return Set{items: out}
}

// Difference returns s \ o as a new Set.
func (s Set) Difference(o Set) Set {
	var out []ItemID
	i, j := 0, 0
	for i < len(s.items) {
		switch {
		case j >= len(o.items) || s.items[i] < o.items[j]:
			out = append(out, s.items[i])
			i++
		case s.items[i] > o.items[j]:
			j++
		default:
			i++
			j++
		}
	}
	return Set{items: out}
}

// Words returns all interned words in id order. The returned slice is a
// copy.
func (d *Dict) Words() []string {
	return append([]string(nil), d.words...)
}
