package textctx

import (
	"context"
	"math/rand"

	"repro/internal/explain"
	"repro/internal/telemetry"
)

// A JaccardEngine computes the all-pairs contextual similarity matrix
// sC(p_i, p_j) for a slice of contextual sets (Step 1 of the framework).
// Engines differ only in speed and, for MinHash, exactness.
type JaccardEngine interface {
	// AllPairs returns the pairwise Jaccard similarity of sets.
	AllPairs(sets []Set) *PairScores
	// Name identifies the engine in benchmark output.
	Name() string
}

// A ContextEngine is a JaccardEngine that supports cooperative
// cancellation: AllPairsCtx polls ctx on the outer comparison loop (every
// ctxCheckStride rows, so a few thousand pair comparisons at most pass
// between polls) and returns ctx.Err() instead of completing the
// quadratic work. Callers on a serving path should prefer it.
type ContextEngine interface {
	JaccardEngine
	// AllPairsCtx is AllPairs with cancellation checkpoints; on
	// cancellation the partial matrix is discarded and ctx.Err() returned.
	AllPairsCtx(ctx context.Context, sets []Set) (*PairScores, error)
}

// ctxCheckStride is the number of outer-loop rows between context polls in
// the all-pairs comparison loops — frequent enough that cancellation is
// observed within a few thousand pair comparisons, rare enough that the
// poll cost vanishes against the O(K) row work.
const ctxCheckStride = 32

// BaselineEngine is the paper's baseline: every one of the O(K²) pairs is
// compared by probing a per-set hash table with the elements of the other
// set. The hash tables for all K sets are built once (the "hashing phase"),
// then each pair costs O(|p|) probes.
type BaselineEngine struct{}

// Name implements JaccardEngine.
func (BaselineEngine) Name() string { return "baseline" }

// AllPairs implements JaccardEngine.
func (e BaselineEngine) AllPairs(sets []Set) *PairScores {
	ps, _ := e.AllPairsCtx(context.Background(), sets)
	return ps
}

// AllPairsCtx implements ContextEngine.
func (BaselineEngine) AllPairsCtx(ctx context.Context, sets []Set) (*PairScores, error) {
	defer telemetry.StartSpan(ctx, telemetry.StagePCS)()
	n := len(sets)
	ps := NewPairScores(n)
	if ec := explain.FromContext(ctx); ec != nil {
		// The baseline probes every pair unconditionally; it prunes
		// nothing. Recording that makes engine comparisons explicit in
		// /v1/explain output.
		cand := int64(n) * int64(n-1) / 2
		ec.SetPruning(explain.Pruning{
			Engine: "baseline", Sets: n,
			CandidatePairs: cand, ComparedPairs: cand,
		})
	}
	// Hashing phase: one hash table per set.
	tables := make([]map[ItemID]struct{}, n)
	for i, s := range sets {
		t := make(map[ItemID]struct{}, s.Len())
		for _, v := range s.Items() {
			t[v] = struct{}{}
		}
		tables[i] = t
	}
	// Comparison phase: probe table i with the elements of set j.
	for i := 0; i < n; i++ {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		ti := tables[i]
		li := sets[i].Len()
		for j := i + 1; j < n; j++ {
			inter := 0
			for _, v := range sets[j].Items() {
				if _, ok := ti[v]; ok {
					inter++
				}
			}
			if inter == 0 {
				continue
			}
			union := li + sets[j].Len() - inter
			ps.Set(i, j, float64(inter)/float64(union))
		}
	}
	return ps, nil
}

// MSJHEngine implements micro set Jaccard hashing (Algorithm 1). An
// inverted list is built per element holding the sets it appears in, in
// reverse (descending-index) order; pairs are then compared only if they
// provably share an element, and each list scan stops as soon as it reaches
// an index ≤ i, avoiding every redundant check. The result is exact.
type MSJHEngine struct{}

// Name implements JaccardEngine.
func (MSJHEngine) Name() string { return "msJh" }

// AllPairs implements JaccardEngine.
func (e MSJHEngine) AllPairs(sets []Set) *PairScores {
	ps, _ := e.AllPairsCtx(context.Background(), sets)
	return ps
}

// AllPairsCtx implements ContextEngine.
func (MSJHEngine) AllPairsCtx(ctx context.Context, sets []Set) (*PairScores, error) {
	defer telemetry.StartSpan(ctx, telemetry.StagePCS)()
	n := len(sets)
	ps := NewPairScores(n)

	// Step 1: generate the micro set hash table (msht). msHT[v] lists the
	// indices of the sets containing v. Appending while scanning sets in
	// increasing index order and then reading the list back-to-front is
	// equivalent to the paper's "add in front" reverse lists; we store
	// ascending and scan from the end so that the first index ≤ i
	// terminates the scan.
	msht := make(map[ItemID][]int32)
	for i, s := range sets {
		for _, v := range s.Items() {
			msht[v] = append(msht[v], int32(i))
		}
	}

	// Step 2: compare sets economically. For each p_i we accumulate the
	// intersection size against every later set that shares at least one
	// element, using a scratch counter array plus a touched list so the
	// per-i cost is proportional to the actual number of collisions.
	// Introspection (candidate vs compared pairs, postings cut by the
	// reverse-order rule) is gated on the context-carried collector: the
	// disabled path adds one per-set branch, never per-posting work.
	ec := explain.FromContext(ctx)
	var compared, postingsScanned, postingsCut int64
	counts := make([]int32, n)
	touched := make([]int32, 0, 64)
	for i, s := range sets {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		touched = touched[:0]
		for _, v := range s.Items() {
			list := msht[v]
			// Reverse order: indices descend from the end of the list, so
			// stop at the first j ≤ i (that prefix was already processed
			// in earlier iterations, or is i itself).
			t := len(list) - 1
			for ; t >= 0; t-- {
				j := list[t]
				if int(j) <= i {
					break
				}
				if counts[j] == 0 {
					touched = append(touched, j)
				}
				counts[j]++
			}
			if ec != nil {
				// The scan visited entries (t, len−1]; the prefix [0, t]
				// is exactly what the j > i early cut-off skipped.
				postingsScanned += int64(len(list) - 1 - t)
				postingsCut += int64(t + 1)
			}
		}
		if ec != nil {
			compared += int64(len(touched))
		}
		li := s.Len()
		for _, j := range touched {
			inter := counts[j]
			counts[j] = 0
			union := li + sets[j].Len() - int(inter)
			ps.Set(i, int(j), float64(inter)/float64(union))
		}
	}
	if ec != nil {
		cand := int64(n) * int64(n-1) / 2
		ec.SetPruning(explain.Pruning{
			Engine: "msJh", Sets: n,
			CandidatePairs: cand, ComparedPairs: compared,
			PrunedPairs:     cand - compared,
			PostingsScanned: postingsScanned, PostingsCut: postingsCut,
		})
	}
	return ps, nil
}

// MinHashEngine approximates all-pairs Jaccard with t independent min-wise
// hash signatures. It matches the paper's described use of minhash: a
// signature phase of K·t operations followed by K²·t/2 signature
// comparisons, with cost independent of |p| — effective only for large sets.
type MinHashEngine struct {
	// T is the signature length (number of hash functions); the paper's t.
	T int
	// Seed makes signatures reproducible.
	Seed int64
}

// Name implements JaccardEngine.
func (e MinHashEngine) Name() string { return "minhash" }

// AllPairs implements JaccardEngine.
func (e MinHashEngine) AllPairs(sets []Set) *PairScores {
	t := e.T
	if t <= 0 {
		t = 64
	}
	n := len(sets)
	ps := NewPairScores(n)

	// Universal-style hash family: h_r(v) = (a_r*v + b_r) mod 2^61-1,
	// with odd multipliers drawn from a seeded PRNG.
	const mersenne61 = (1 << 61) - 1
	rng := rand.New(rand.NewSource(e.Seed))
	as := make([]uint64, t)
	bs := make([]uint64, t)
	for r := 0; r < t; r++ {
		as[r] = uint64(rng.Int63())*2 + 1
		bs[r] = uint64(rng.Int63())
	}

	// Signature phase.
	sigs := make([][]uint64, n)
	for i, s := range sets {
		sig := make([]uint64, t)
		for r := range sig {
			sig[r] = ^uint64(0)
		}
		for _, v := range s.Items() {
			x := uint64(v) + 1
			for r := 0; r < t; r++ {
				h := (as[r]*x + bs[r]) % mersenne61
				if h < sig[r] {
					sig[r] = h
				}
			}
		}
		sigs[i] = sig
	}

	// Comparison phase: estimated Jaccard = fraction of matching minima.
	for i := 0; i < n; i++ {
		si := sigs[i]
		if sets[i].Len() == 0 {
			continue // empty sets have similarity 0 to everything
		}
		for j := i + 1; j < n; j++ {
			if sets[j].Len() == 0 {
				continue
			}
			match := 0
			sj := sigs[j]
			for r := 0; r < t; r++ {
				if si[r] == sj[r] {
					match++
				}
			}
			if match > 0 {
				ps.Set(i, j, float64(match)/float64(t))
			}
		}
	}
	return ps
}

// PCS computes the contextual proportionality vector pCS(p_i) (Eq. 3) for
// all sets using the given engine, returning both the vector and the
// pairwise cache for reuse by the greedy algorithms.
func PCS(engine JaccardEngine, sets []Set) ([]float64, *PairScores) {
	ps := engine.AllPairs(sets)
	return ps.RowSums(), ps
}
