package textctx

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// MSJHParallelEngine is msJh with the comparison step fanned out over
// worker goroutines. Each worker owns a private intersection-counter
// scratch array and claims source sets i dynamically (an atomic cursor,
// since the per-i work shrinks as i grows under the reverse-order
// cut-off); all writes to the shared score matrix land in disjoint rows,
// so no further synchronisation is needed. The result is bit-identical to
// MSJHEngine.
type MSJHParallelEngine struct {
	// Workers is the number of goroutines; 0 means GOMAXPROCS.
	Workers int
}

// Name implements JaccardEngine.
func (e MSJHParallelEngine) Name() string { return "msJh-parallel" }

// AllPairs implements JaccardEngine.
func (e MSJHParallelEngine) AllPairs(sets []Set) *PairScores {
	ps, _ := e.AllPairsCtx(context.Background(), sets)
	return ps
}

// AllPairsCtx implements ContextEngine: every worker polls ctx before
// claiming its next source set, so on cancellation all workers return
// within one row of work and the partial matrix is discarded. No
// goroutines outlive the call.
func (e MSJHParallelEngine) AllPairsCtx(ctx context.Context, sets []Set) (*PairScores, error) {
	n := len(sets)
	ps := NewPairScores(n)
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return MSJHEngine{}.AllPairsCtx(ctx, sets)
	}
	// The sequential fallback above records its own span; record one here
	// only for the genuinely parallel path, so the stage is never counted
	// twice.
	defer telemetry.StartSpan(ctx, telemetry.StagePCS)()

	// Step 1 (sequential): the micro set hash table.
	msht := make(map[ItemID][]int32)
	for i, s := range sets {
		for _, v := range s.Items() {
			msht[v] = append(msht[v], int32(i))
		}
	}

	// Step 2 (parallel): dynamic i-claiming.
	var cursor atomic.Int64
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			counts := make([]int32, n)
			touched := make([]int32, 0, 64)
			for {
				if ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				s := sets[i]
				touched = touched[:0]
				for _, v := range s.Items() {
					list := msht[v]
					for t := len(list) - 1; t >= 0; t-- {
						j := list[t]
						if int(j) <= i {
							break
						}
						if counts[j] == 0 {
							touched = append(touched, j)
						}
						counts[j]++
					}
				}
				li := s.Len()
				for _, j := range touched {
					inter := counts[j]
					counts[j] = 0
					union := li + sets[j].Len() - int(inter)
					ps.Set(i, int(j), float64(inter)/float64(union))
				}
			}
		}()
	}
	wg.Wait()
	if cancelled.Load() {
		return nil, ctx.Err()
	}
	return ps, nil
}
