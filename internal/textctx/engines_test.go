package textctx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// figure4Sets reproduces the worked example of Figure 4 of the paper:
// p1:{a,b,c,d}, p2:{a,d}, p3:{e,f,g}, p4:{a,b,h}, p5:{b,c,i}.
func figure4Sets() ([]Set, *Dict) {
	d := NewDict()
	sets := []Set{
		NewSetFromStrings(d, []string{"a", "b", "c", "d"}),
		NewSetFromStrings(d, []string{"a", "d"}),
		NewSetFromStrings(d, []string{"e", "f", "g"}),
		NewSetFromStrings(d, []string{"a", "b", "h"}),
		NewSetFromStrings(d, []string{"b", "c", "i"}),
	}
	return sets, d
}

// figure4Want is the expected similarity matrix from Figure 4.
var figure4Want = map[[2]int]float64{
	{0, 1}: 2.0 / 4, {0, 2}: 0, {0, 3}: 2.0 / 5, {0, 4}: 2.0 / 5,
	{1, 2}: 0, {1, 3}: 1.0 / 4, {1, 4}: 0,
	{2, 3}: 0, {2, 4}: 0,
	{3, 4}: 1.0 / 5,
}

func checkFigure4(t *testing.T, name string, ps *PairScores) {
	t.Helper()
	for pair, want := range figure4Want {
		if got := ps.At(pair[0], pair[1]); math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: sC(p%d, p%d) = %g, want %g", name, pair[0]+1, pair[1]+1, got, want)
		}
	}
}

func TestBaselineFigure4(t *testing.T) {
	sets, _ := figure4Sets()
	checkFigure4(t, "baseline", BaselineEngine{}.AllPairs(sets))
}

func TestMSJHFigure4(t *testing.T) {
	sets, _ := figure4Sets()
	checkFigure4(t, "msJh", MSJHEngine{}.AllPairs(sets))
}

func TestEnginesEmptyAndSingleton(t *testing.T) {
	for _, e := range []JaccardEngine{BaselineEngine{}, MSJHEngine{}, MinHashEngine{T: 16}} {
		ps := e.AllPairs(nil)
		if ps.N() != 0 {
			t.Errorf("%s: AllPairs(nil).N = %d", e.Name(), ps.N())
		}
		ps = e.AllPairs([]Set{NewSet(1, 2)})
		if ps.N() != 1 {
			t.Errorf("%s: singleton N = %d", e.Name(), ps.N())
		}
	}
}

func TestEnginesWithEmptySets(t *testing.T) {
	sets := []Set{{}, NewSet(1, 2), {}, NewSet(1, 2)}
	for _, e := range []JaccardEngine{BaselineEngine{}, MSJHEngine{}, MinHashEngine{T: 32}} {
		ps := e.AllPairs(sets)
		if got := ps.At(0, 2); got != 0 {
			t.Errorf("%s: sC(empty, empty) = %g, want 0", e.Name(), got)
		}
		if got := ps.At(0, 1); got != 0 {
			t.Errorf("%s: sC(empty, nonempty) = %g, want 0", e.Name(), got)
		}
	}
	// The exact engines must still see identical non-empty sets as 1.
	for _, e := range []JaccardEngine{BaselineEngine{}, MSJHEngine{}} {
		if got := e.AllPairs(sets).At(1, 3); got != 1 {
			t.Errorf("%s: sC(identical) = %g, want 1", e.Name(), got)
		}
	}
}

// randomSets generates n sets over a universe of size u with sizes up to m.
func randomSets(rng *rand.Rand, n, u, m int) []Set {
	sets := make([]Set, n)
	for i := range sets {
		sz := rng.Intn(m + 1)
		ids := make([]ItemID, sz)
		for j := range ids {
			ids[j] = ItemID(rng.Intn(u))
		}
		sets[i] = NewSet(ids...)
	}
	return sets
}

// Property: msJh is exactly equivalent to the baseline (and hence to the
// set-theoretic definition) on arbitrary inputs.
func TestMSJHEquivalentToBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		sets := randomSets(rng, 2+rng.Intn(40), 1+rng.Intn(100), 20)
		base := BaselineEngine{}.AllPairs(sets)
		ms := MSJHEngine{}.AllPairs(sets)
		if d := base.MaxAbsDiff(ms); d != 0 {
			t.Fatalf("trial %d: msJh differs from baseline by %g", trial, d)
		}
	}
}

// Property: both exact engines agree with the direct merge-based Jaccard.
func TestEnginesMatchDefinition(t *testing.T) {
	f := func(ra, rb, rc []uint8) bool {
		sets := []Set{randomSet(ra), randomSet(rb), randomSet(rc)}
		for _, e := range []JaccardEngine{BaselineEngine{}, MSJHEngine{}} {
			ps := e.AllPairs(sets)
			for i := 0; i < 3; i++ {
				for j := i + 1; j < 3; j++ {
					if math.Abs(ps.At(i, j)-sets[i].Jaccard(sets[j])) > 1e-12 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// MinHash is an unbiased estimator: with a long signature it must land
// close to the exact similarity on average.
func TestMinHashApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sets := randomSets(rng, 30, 60, 40)
	exact := BaselineEngine{}.AllPairs(sets)
	est := MinHashEngine{T: 512, Seed: 1}.AllPairs(sets)
	var sumErr float64
	var cnt int
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			sumErr += math.Abs(exact.At(i, j) - est.At(i, j))
			cnt++
		}
	}
	if mean := sumErr / float64(cnt); mean > 0.05 {
		t.Errorf("minhash mean abs error = %g, want ≤ 0.05 with t=512", mean)
	}
}

func TestMinHashDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sets := randomSets(rng, 10, 40, 15)
	a := MinHashEngine{T: 64, Seed: 9}.AllPairs(sets)
	b := MinHashEngine{T: 64, Seed: 9}.AllPairs(sets)
	if a.MaxAbsDiff(b) != 0 {
		t.Error("same seed produced different estimates")
	}
}

func TestMinHashDefaultT(t *testing.T) {
	// T ≤ 0 must fall back to a sane default rather than panic.
	sets := []Set{NewSet(1, 2, 3), NewSet(2, 3, 4)}
	ps := MinHashEngine{}.AllPairs(sets)
	if got := ps.At(0, 1); got < 0 || got > 1 {
		t.Errorf("estimate out of range: %g", got)
	}
}

func TestPCS(t *testing.T) {
	sets, _ := figure4Sets()
	pcs, cache := PCS(MSJHEngine{}, sets)
	// pCS(p1) = 1/2 + 0 + 2/5 + 2/5 = 1.3 (Figure 4 row sums).
	want := []float64{1.3, 0.75, 0, 0.85, 0.6}
	for i := range want {
		if math.Abs(pcs[i]-want[i]) > 1e-12 {
			t.Errorf("pCS(p%d) = %g, want %g", i+1, pcs[i], want[i])
		}
	}
	if cache.N() != len(sets) {
		t.Error("cache has wrong size")
	}
}

func TestEngineNames(t *testing.T) {
	names := map[string]JaccardEngine{
		"baseline":       BaselineEngine{},
		"msJh":           MSJHEngine{},
		"minhash":        MinHashEngine{},
		"naive-inverted": NaiveInvertedEngine{},
	}
	for want, e := range names {
		if e.Name() != want {
			t.Errorf("Name = %q, want %q", e.Name(), want)
		}
	}
}

func benchSets(k, p int) []Set {
	rng := rand.New(rand.NewSource(11))
	// Universe sized so that sets overlap moderately, like contextual sets
	// drawn from a shared vocabulary.
	return randomSets(rng, k, p*10, p)
}

func BenchmarkBaselineK100(b *testing.B)  { benchEngine(b, BaselineEngine{}, 100, 100) }
func BenchmarkMSJHK100(b *testing.B)      { benchEngine(b, MSJHEngine{}, 100, 100) }
func BenchmarkBaselineK1000(b *testing.B) { benchEngine(b, BaselineEngine{}, 1000, 100) }
func BenchmarkMSJHK1000(b *testing.B)     { benchEngine(b, MSJHEngine{}, 1000, 100) }

func benchEngine(b *testing.B, e JaccardEngine, k, p int) {
	sets := benchSets(k, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.AllPairs(sets)
	}
}
