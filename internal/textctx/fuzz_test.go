package textctx

import (
	"bytes"
	"testing"
)

// FuzzEnginesAgree feeds arbitrary byte strings as set contents and
// checks that msJh, the naive inverted engine and the baseline compute
// identical similarity matrices, and that Jaccard stays within [0, 1].
func FuzzEnginesAgree(f *testing.F) {
	f.Add([]byte("abcd"), []byte("ad"), []byte("efg"))
	f.Add([]byte(""), []byte("aa"), []byte("a"))
	f.Add([]byte{0, 1, 2, 255}, []byte{255, 255}, []byte{7})
	f.Fuzz(func(t *testing.T, a, b, c []byte) {
		toSet := func(raw []byte) Set {
			ids := make([]ItemID, len(raw))
			for i, v := range raw {
				ids[i] = ItemID(v)
			}
			return NewSet(ids...)
		}
		sets := []Set{toSet(a), toSet(b), toSet(c)}
		base := BaselineEngine{}.AllPairs(sets)
		msjh := MSJHEngine{}.AllPairs(sets)
		naive := NaiveInvertedEngine{}.AllPairs(sets)
		if base.MaxAbsDiff(msjh) != 0 {
			t.Fatal("msJh disagrees with baseline")
		}
		if base.MaxAbsDiff(naive) != 0 {
			t.Fatal("naive-inverted disagrees with baseline")
		}
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if v := base.At(i, j); v < 0 || v > 1 {
					t.Fatalf("similarity %g outside [0, 1]", v)
				}
			}
		}
	})
}

// FuzzDictRoundTrip: interning arbitrary byte strings round-trips.
func FuzzDictRoundTrip(f *testing.F) {
	f.Add([]byte("hello"), []byte("world"))
	f.Add([]byte{}, []byte{0xff, 0x00})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		d := NewDict()
		ia := d.Intern(string(a))
		ib := d.Intern(string(b))
		if !bytes.Equal([]byte(d.Word(ia)), a) || !bytes.Equal([]byte(d.Word(ib)), b) {
			t.Fatal("round trip failed")
		}
		if bytes.Equal(a, b) != (ia == ib) {
			t.Fatal("identity broken")
		}
	})
}
