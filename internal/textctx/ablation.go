package textctx

// NaiveInvertedEngine is the ablation counterpart of MSJHEngine: it builds
// the same per-element inverted lists but does not exploit their reverse
// order, so every element occurrence scans its full list and symmetric
// pairs are filtered with an explicit comparison instead of an early
// break. It quantifies what the msJh "reverse list + j > i cut-off" trick
// buys (DESIGN.md, ablations).
type NaiveInvertedEngine struct{}

// Name implements JaccardEngine.
func (NaiveInvertedEngine) Name() string { return "naive-inverted" }

// AllPairs implements JaccardEngine.
func (NaiveInvertedEngine) AllPairs(sets []Set) *PairScores {
	n := len(sets)
	ps := NewPairScores(n)
	msht := make(map[ItemID][]int32)
	for i, s := range sets {
		for _, v := range s.Items() {
			msht[v] = append(msht[v], int32(i))
		}
	}
	counts := make([]int32, n)
	touched := make([]int32, 0, 64)
	for i, s := range sets {
		touched = touched[:0]
		for _, v := range s.Items() {
			for _, j := range msht[v] { // full scan: no early termination
				if int(j) <= i {
					continue
				}
				if counts[j] == 0 {
					touched = append(touched, j)
				}
				counts[j]++
			}
		}
		li := s.Len()
		for _, j := range touched {
			inter := counts[j]
			counts[j] = 0
			union := li + sets[j].Len() - int(inter)
			ps.Set(i, int(j), float64(inter)/float64(union))
		}
	}
	return ps
}
