package slo

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Canonical request classes tracked by propserve. Classes are fixed at
// tracker construction — per-class storage is preallocated, so Record
// never allocates or locks on the hot path.
const (
	ClassSearchHit  = "search_hit"
	ClassSearchMiss = "search_miss"
	ClassBatch      = "batch"
	ClassMutate     = "mutate"
)

// Objective is one class's service-level objective: the target quantile
// must stay under Threshold, and the fraction of non-OK outcomes must
// stay under 1−Availability. Both define an error budget; burn rates
// report how fast each budget is being consumed.
type Objective struct {
	// Quantile is the latency target quantile, e.g. 0.99. Defaults to
	// 0.99 when zero.
	Quantile float64
	// Threshold is the latency bound the quantile must stay under.
	Threshold time.Duration
	// Availability is the success-ratio target, e.g. 0.999. Defaults to
	// 0.999 when zero.
	Availability float64
}

func (o Objective) withDefaults() Objective {
	if o.Quantile <= 0 {
		o.Quantile = 0.99
	}
	if o.Quantile >= 1 {
		o.Quantile = 0.9999
	}
	if o.Availability <= 0 {
		o.Availability = 0.999
	}
	if o.Availability >= 1 {
		o.Availability = 0.9999
	}
	if o.Threshold <= 0 {
		o.Threshold = time.Second
	}
	return o
}

// Options configures a Tracker.
type Options struct {
	// Windows are the rolling spans reported per class; default
	// 1m, 5m, 1h — the multi-window layout burn-rate alerting expects.
	Windows []time.Duration
	// SubWindows is the ring size per window (rotation granularity =
	// window/SubWindows). Default 12.
	SubWindows int
	// Now is the clock; default time.Now. Injectable for tests.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if len(o.Windows) == 0 {
		o.Windows = []time.Duration{time.Minute, 5 * time.Minute, time.Hour}
	}
	if o.SubWindows <= 0 {
		o.SubWindows = 12
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Tracker records request latency and outcome per class into a lifetime
// record plus one rolling window per configured span. All methods are
// safe for concurrent use; a nil *Tracker ignores Record calls and
// snapshots empty, so callers need no "is SLO enabled" branches.
type Tracker struct {
	opt     Options
	start   time.Time
	names   []string // sorted
	classes map[string]*classState
}

type classState struct {
	obj     Objective
	total   record
	windows []*Window
	ex      exemplars
}

// exemplars remembers, per sketch bucket, the last retained trace whose
// latency landed there — the bridge from a quantile estimate to a
// concrete span tree. Lifetime (not windowed): "the last retained trace
// observed at this latency" stays useful after the window rotates, and
// a stale pointer is still a real request at that latency.
type exemplars struct {
	slots [NumBuckets]atomic.Pointer[string]
}

func (e *exemplars) note(d time.Duration, traceID string) {
	e.slots[BucketIndex(d)].Store(&traceID)
}

func (e *exemplars) at(i int) string {
	if i < 0 || i >= NumBuckets {
		return ""
	}
	if p := e.slots[i].Load(); p != nil {
		return *p
	}
	return ""
}

// NewTracker builds a tracker for exactly the given classes.
func NewTracker(objectives map[string]Objective, opt Options) *Tracker {
	opt = opt.withDefaults()
	t := &Tracker{opt: opt, start: opt.Now(), classes: make(map[string]*classState, len(objectives))}
	for name, obj := range objectives {
		cs := &classState{obj: obj.withDefaults()}
		for _, dur := range opt.Windows {
			cs.windows = append(cs.windows, NewWindow(dur, opt.SubWindows, opt.Now))
		}
		t.classes[name] = cs
		t.names = append(t.names, name)
	}
	sort.Strings(t.names)
	return t
}

// Record stores one request's latency and outcome into its class. An
// unknown class (or a nil tracker) is ignored: Record sits on every
// request path and must never panic or allocate.
func (t *Tracker) Record(class string, d time.Duration, o Outcome) {
	if t == nil {
		return
	}
	cs := t.classes[class]
	if cs == nil {
		return
	}
	slow := d > cs.obj.Threshold
	cs.total.observe(d, o, slow)
	for _, w := range cs.windows {
		w.Observe(d, o, slow)
	}
}

// NoteExemplar records traceID as the latest retained trace for the
// latency bucket d falls into, in class's exemplar table. Called by the
// tail sampler only for retained traces; unknown classes, empty IDs and
// nil trackers are ignored.
func (t *Tracker) NoteExemplar(class string, d time.Duration, traceID string) {
	if t == nil || traceID == "" {
		return
	}
	if cs := t.classes[class]; cs != nil {
		cs.ex.note(d, traceID)
	}
}

// Windows returns the configured rolling spans.
func (t *Tracker) Windows() []time.Duration {
	if t == nil {
		return nil
	}
	return t.opt.Windows
}

// Objective returns the objective of class (zero value when unknown).
func (t *Tracker) Objective(class string) Objective {
	if t == nil {
		return Objective{}
	}
	if cs := t.classes[class]; cs != nil {
		return cs.obj
	}
	return Objective{}
}

// WindowStats is one window's view of one class: counts, quantile
// estimates, and error-budget burn rates against the class objective.
type WindowStats struct {
	// Window is the rolling span (0 for the lifetime record).
	Window time.Duration
	// Count is the number of requests observed in the window; OK/Errors/
	// Shed partition it by outcome, Slow counts threshold breaches.
	Count, OK, Errors, Shed, Slow uint64
	// Quantile estimates over the window's merged sketch.
	P50, P95, P99, Max, Mean time.Duration
	// AvailabilityBurn is the availability budget burn rate:
	// (errors+shed)/count scaled by 1/(1−availability). Sustained at 1.0
	// it exactly exhausts the budget; above 1.0 the budget shrinks.
	AvailabilityBurn float64
	// LatencyBurn is the latency budget burn rate: the fraction of
	// requests over Threshold scaled by 1/(1−quantile target).
	LatencyBurn float64
	// BudgetRemaining is 1 − max(AvailabilityBurn, LatencyBurn): the
	// fraction of this window's error budget left, negative when the
	// window has overspent.
	BudgetRemaining float64
	// Exemplars maps quantile names ("p50", "p95", "p99") to the trace ID
	// of the last retained trace whose latency landed in that quantile's
	// sketch bucket — resolvable via GET /v1/traces/{id}. Absent when no
	// retained trace has been observed near the quantile.
	Exemplars map[string]string
}

// ClassSnapshot is one class's full SLO view.
type ClassSnapshot struct {
	Class     string
	Objective Objective
	// Total aggregates since tracker start (Window = 0).
	Total WindowStats
	// Windows parallels Tracker.Windows().
	Windows []WindowStats
}

// Snapshot is a point-in-time view of every class.
type Snapshot struct {
	Start   time.Time
	Windows []time.Duration
	Classes []ClassSnapshot // sorted by class name
}

// Snapshot merges every class's sub-windows and computes quantiles and
// burn rates. It is read-only and never blocks writers; scrape-time cost
// is proportional to classes × windows × NumBuckets.
func (t *Tracker) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	snap := Snapshot{Start: t.start, Windows: t.opt.Windows}
	for _, name := range t.names {
		cs := t.classes[name]
		var totals WindowCounts
		cs.total.addTo(&totals)
		c := ClassSnapshot{
			Class:     name,
			Objective: cs.obj,
			Total:     windowStats(0, totals, cs.obj, &cs.ex),
		}
		for i, w := range cs.windows {
			c.Windows = append(c.Windows, windowStats(t.opt.Windows[i], w.Snapshot(), cs.obj, &cs.ex))
		}
		snap.Classes = append(snap.Classes, c)
	}
	return snap
}

// Class returns the snapshot of one class, or false when untracked.
func (s Snapshot) Class(name string) (ClassSnapshot, bool) {
	for _, c := range s.Classes {
		if c.Class == name {
			return c, true
		}
	}
	return ClassSnapshot{}, false
}

func windowStats(dur time.Duration, c WindowCounts, obj Objective, ex *exemplars) WindowStats {
	ws := WindowStats{
		Window: dur,
		Count:  c.Total,
		OK:     c.Outcomes[OutcomeOK],
		Errors: c.Outcomes[OutcomeError],
		Shed:   c.Outcomes[OutcomeShed],
		Slow:   c.Slow,
		P50:    c.Quantile(0.50),
		P95:    c.Quantile(0.95),
		P99:    c.Quantile(0.99),
		Max:    c.Max(),
		Mean:   c.Mean(),
	}
	if c.Total > 0 {
		n := float64(c.Total)
		ws.AvailabilityBurn = (float64(ws.Errors+ws.Shed) / n) / (1 - obj.Availability)
		ws.LatencyBurn = (float64(ws.Slow) / n) / (1 - obj.Quantile)
	}
	burn := ws.AvailabilityBurn
	if ws.LatencyBurn > burn {
		burn = ws.LatencyBurn
	}
	ws.BudgetRemaining = 1 - burn
	if ex != nil && c.Total > 0 {
		m := make(map[string]string, 3)
		for _, q := range [...]struct {
			name string
			p    float64
		}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
			b := c.QuantileBucket(q.p)
			// The sampler notes the exemplar moments after the tracker
			// records the latency (the note includes response encoding), so
			// the two measurements can land one bucket apart; the quantile
			// estimate already carries one-bucket error, so a neighbouring
			// bucket's trace is a fair exemplar.
			for _, cand := range [3]int{b, b + 1, b - 1} {
				if id := ex.at(cand); id != "" {
					m[q.name] = id
					break
				}
			}
		}
		if len(m) > 0 {
			ws.Exemplars = m
		}
	}
	return ws
}

// DefaultObjectives returns propserve's stock per-class objectives: the
// cache-hit path promises single-digit milliseconds, the miss path a
// Step-2-dominated bound, batches and mutations looser ones. Callers
// override thresholds per deployment.
func DefaultObjectives(hit, miss, batch, mutate time.Duration, availability float64) map[string]Objective {
	mk := func(th time.Duration) Objective {
		return Objective{Quantile: 0.99, Threshold: th, Availability: availability}.withDefaults()
	}
	return map[string]Objective{
		ClassSearchHit:  mk(hit),
		ClassSearchMiss: mk(miss),
		ClassBatch:      mk(batch),
		ClassMutate:     mk(mutate),
	}
}

// FormatDurationMS renders a duration as fractional milliseconds rounded
// to 3 decimals — the JSON convention responses use elsewhere.
func FormatDurationMS(d time.Duration) float64 {
	return math.Round(d.Seconds()*1e6) / 1e3
}
