package slo

import (
	"math"
	"sync"
	"testing"
	"time"
)

func testTracker(clk *fakeClock) *Tracker {
	return NewTracker(DefaultObjectives(10*time.Millisecond, 250*time.Millisecond, 500*time.Millisecond, time.Second, 0.999),
		Options{Now: clk.now})
}

func TestTrackerSnapshot(t *testing.T) {
	clk := newFakeClock()
	tr := testTracker(clk)

	for i := 0; i < 97; i++ {
		tr.Record(ClassSearchHit, 2*time.Microsecond, OutcomeOK)
	}
	tr.Record(ClassSearchHit, 50*time.Millisecond, OutcomeOK) // breaches the 10ms threshold
	tr.Record(ClassSearchHit, 3*time.Microsecond, OutcomeError)
	tr.Record(ClassSearchHit, time.Microsecond, OutcomeShed)
	tr.Record(ClassMutate, 20*time.Millisecond, OutcomeOK)
	tr.Record("unknown-class", time.Second, OutcomeError) // silently ignored

	snap := tr.Snapshot()
	if len(snap.Classes) != 4 {
		t.Fatalf("classes = %d, want 4", len(snap.Classes))
	}
	hit, ok := snap.Class(ClassSearchHit)
	if !ok {
		t.Fatal("no search_hit class")
	}
	tot := hit.Total
	if tot.Count != 100 || tot.OK != 98 || tot.Errors != 1 || tot.Shed != 1 || tot.Slow != 1 {
		t.Fatalf("totals = %+v", tot)
	}
	// Burn rates: 2/100 bad over a 0.1% availability budget burns at 20x;
	// 1/100 slow over a 1% latency budget burns at 1x.
	if got, want := tot.AvailabilityBurn, (2.0/100)/0.001; math.Abs(got-want) > 1e-9 {
		t.Errorf("availability burn = %g, want %g", got, want)
	}
	if got, want := tot.LatencyBurn, (1.0/100)/0.01; math.Abs(got-want) > 1e-9 {
		t.Errorf("latency burn = %g, want %g", got, want)
	}
	if got, want := tot.BudgetRemaining, 1-20.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("budget remaining = %g, want %g (overspent)", got, want)
	}
	if tot.P50 > 10*time.Microsecond {
		t.Errorf("p50 = %v, want fast mode", tot.P50)
	}
	if tot.Max != 50*time.Millisecond {
		t.Errorf("max = %v", tot.Max)
	}
	// The three rolling windows carry the same young observations.
	if len(hit.Windows) != 3 {
		t.Fatalf("windows = %d", len(hit.Windows))
	}
	for i, ws := range hit.Windows {
		if ws.Count != 100 {
			t.Errorf("window %v count = %d, want 100", snap.Windows[i], ws.Count)
		}
	}

	// Rolling expiry: an hour later the windows are empty but the
	// lifetime totals remain.
	clk.advance(2 * time.Hour)
	snap = tr.Snapshot()
	hit, _ = snap.Class(ClassSearchHit)
	if hit.Total.Count != 100 {
		t.Errorf("lifetime count after expiry = %d, want 100", hit.Total.Count)
	}
	for i, ws := range hit.Windows {
		if ws.Count != 0 {
			t.Errorf("window %v count after expiry = %d, want 0", snap.Windows[i], ws.Count)
		}
	}
	if hit.Windows[0].BudgetRemaining != 1 {
		t.Errorf("empty window budget = %g, want 1", hit.Windows[0].BudgetRemaining)
	}
}

func TestTrackerNilSafe(t *testing.T) {
	var tr *Tracker
	tr.Record(ClassSearchHit, time.Millisecond, OutcomeOK) // must not panic
	if snap := tr.Snapshot(); len(snap.Classes) != 0 {
		t.Errorf("nil snapshot = %+v", snap)
	}
	if w := tr.Windows(); w != nil {
		t.Errorf("nil windows = %v", w)
	}
	if o := tr.Objective(ClassBatch); o != (Objective{}) {
		t.Errorf("nil objective = %+v", o)
	}
}

func TestObjectiveDefaults(t *testing.T) {
	o := Objective{}.withDefaults()
	if o.Quantile != 0.99 || o.Availability != 0.999 || o.Threshold != time.Second {
		t.Errorf("defaults = %+v", o)
	}
	// Degenerate targets are clamped so burn-rate denominators stay
	// positive and finite.
	o = Objective{Quantile: 1, Availability: 1, Threshold: time.Millisecond}.withDefaults()
	if o.Quantile >= 1 || o.Availability >= 1 {
		t.Errorf("clamped = %+v", o)
	}
}

func TestOutcomeForStatus(t *testing.T) {
	for _, tc := range []struct {
		status int
		want   Outcome
	}{{200, OutcomeOK}, {400, OutcomeOK}, {404, OutcomeOK}, {503, OutcomeShed}, {500, OutcomeError}, {504, OutcomeError}} {
		if got := OutcomeForStatus(tc.status); got != tc.want {
			t.Errorf("OutcomeForStatus(%d) = %v, want %v", tc.status, got, tc.want)
		}
	}
}

// TestTrackerConcurrent exercises Record racing Snapshot across classes
// under -race (see `make race`).
func TestTrackerConcurrent(t *testing.T) {
	clk := newFakeClock()
	tr := testTracker(clk)
	classes := []string{ClassSearchHit, ClassSearchMiss, ClassBatch, ClassMutate}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = tr.Snapshot()
			}
		}
	}()
	var obs sync.WaitGroup
	for g := 0; g < 8; g++ {
		obs.Add(1)
		go func(g int) {
			defer obs.Done()
			for i := 0; i < 5000; i++ {
				tr.Record(classes[(g+i)%len(classes)], time.Duration(i%1000)*time.Microsecond, Outcome(i%3))
			}
		}(g)
	}
	obs.Wait()
	close(stop)
	wg.Wait()
	var total uint64
	for _, c := range tr.Snapshot().Classes {
		total += c.Total.Count
	}
	if want := uint64(8 * 5000); total != want {
		t.Fatalf("lifetime total = %d, want %d", total, want)
	}
}

func TestFormatDurationMS(t *testing.T) {
	if got := FormatDurationMS(1234567 * time.Nanosecond); got != 1.235 {
		t.Errorf("FormatDurationMS = %v, want 1.235", got)
	}
}
