package slo

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an atomically advancing test clock, safe for concurrent
// readers.
type fakeClock struct {
	ns atomic.Int64
}

func newFakeClock() *fakeClock {
	c := &fakeClock{}
	// Start well past 1970 so zero-valued ring slots (period 0) read as
	// expired, exactly like production.
	c.ns.Store(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano())
	return c
}

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

func TestWindowRollsAndExpires(t *testing.T) {
	clk := newFakeClock()
	w := NewWindow(time.Minute, 12, clk.now) // 5s sub-windows

	for i := 0; i < 100; i++ {
		w.Observe(time.Millisecond, OutcomeOK, false)
	}
	if c := w.Snapshot(); c.Total != 100 {
		t.Fatalf("fresh window count = %d, want 100", c.Total)
	}

	// Half a window later the old observations are still in range.
	clk.advance(30 * time.Second)
	for i := 0; i < 50; i++ {
		w.Observe(2*time.Millisecond, OutcomeError, true)
	}
	c := w.Snapshot()
	if c.Total != 150 {
		t.Fatalf("mid-window count = %d, want 150", c.Total)
	}
	if c.Outcomes[OutcomeError] != 50 || c.Slow != 50 {
		t.Fatalf("outcome counts = %+v slow=%d", c.Outcomes, c.Slow)
	}

	// 35s more: the first burst (now 65s old) has rolled out, the second
	// (35s old) remains.
	clk.advance(35 * time.Second)
	if c := w.Snapshot(); c.Total != 50 {
		t.Fatalf("partial expiry count = %d, want 50", c.Total)
	}

	// Beyond the full window everything is gone — with no writes at all,
	// expiry is pure read-side period comparison.
	clk.advance(2 * time.Minute)
	if c := w.Snapshot(); c.Total != 0 {
		t.Fatalf("expired window count = %d, want 0", c.Total)
	}
}

func TestWindowSlotRecycled(t *testing.T) {
	clk := newFakeClock()
	w := NewWindow(time.Minute, 6, clk.now) // 10s sub-windows
	w.Observe(time.Millisecond, OutcomeOK, false)
	// One full ring lap later the same slot is reused for a new period;
	// its old contents must not leak into the fresh sub-window.
	clk.advance(time.Minute)
	w.Observe(5*time.Millisecond, OutcomeShed, false)
	c := w.Snapshot()
	if c.Total != 1 || c.Outcomes[OutcomeShed] != 1 || c.Outcomes[OutcomeOK] != 0 {
		t.Fatalf("recycled slot snapshot = total %d outcomes %+v, want exactly the new observation", c.Total, c.Outcomes)
	}
}

func TestWindowConcurrent(t *testing.T) {
	// Concurrent observers, a rotating clock, and snapshot readers must
	// be race-clean (run under -race via `make race`) and lose at most a
	// bounded handful of observations to rotation races. Observers pace
	// the clock: every 128th observation advances it one second, so the
	// run crosses a few sub-window boundaries (50s each) while staying
	// far inside the 10m window.
	clk := newFakeClock()
	w := NewWindow(10*time.Minute, 12, clk.now)
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snaps atomic.Uint64
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = w.Snapshot()
				snaps.Add(1)
			}
		}
	}()
	var obs sync.WaitGroup
	for g := 0; g < workers; g++ {
		obs.Add(1)
		go func(g int) {
			defer obs.Done()
			for i := 0; i < perWorker; i++ {
				if i%128 == 0 {
					clk.advance(time.Second)
				}
				w.Observe(time.Duration(g+1)*time.Microsecond, OutcomeOK, false)
			}
		}(g)
	}
	obs.Wait()
	close(stop)
	wg.Wait()
	if snaps.Load() == 0 {
		t.Fatal("reader never ran")
	}
	got := w.Snapshot().Total
	// ~125s of simulated time elapsed inside a 10m window, so every
	// observation is still in range bar the bounded rotation losses.
	if want := uint64(workers * perWorker); got < want-2*workers || got > want {
		t.Fatalf("concurrent count = %d, want ~%d", got, want)
	}
}

func TestWindowLabel(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{{time.Minute, "1m"}, {5 * time.Minute, "5m"}, {time.Hour, "1h"}, {30 * time.Second, "30s"}} {
		if got := WindowLabel(tc.d); got != tc.want {
			t.Errorf("WindowLabel(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}
