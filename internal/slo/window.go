package slo

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Outcome classifies how a request ended for availability accounting.
type Outcome uint8

const (
	// OutcomeOK: the request was served (2xx–4xx; client errors are a
	// correctly delivered answer, not unavailability).
	OutcomeOK Outcome = iota
	// OutcomeError: the server failed the request (5xx other than shed).
	OutcomeError
	// OutcomeShed: the request was deliberately rejected under overload
	// or durability degradation (503). Shed burns availability budget —
	// the client did not get an answer — but is tracked separately so
	// overload is distinguishable from breakage.
	OutcomeShed

	numOutcomes = 3
)

// String returns the outcome's stable lower-case name.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeError:
		return "error"
	case OutcomeShed:
		return "shed"
	}
	return "unknown"
}

// OutcomeForStatus maps an HTTP status code onto the outcome taxonomy:
// 503 is shed, any other 5xx an error, everything else OK.
func OutcomeForStatus(status int) Outcome {
	switch {
	case status == 503:
		return OutcomeShed
	case status >= 500:
		return OutcomeError
	default:
		return OutcomeOK
	}
}

// record couples a latency sketch with outcome and threshold-breach
// counters — the unit stored per sub-window and per class total.
type record struct {
	sketch   Sketch
	outcomes [numOutcomes]atomic.Uint64
	slow     atomic.Uint64
}

func (r *record) observe(d time.Duration, o Outcome, slow bool) {
	r.sketch.Observe(d)
	r.outcomes[o].Add(1)
	if slow {
		r.slow.Add(1)
	}
}

func (r *record) reset() {
	r.sketch.reset()
	for i := range r.outcomes {
		r.outcomes[i].Store(0)
	}
	r.slow.Store(0)
}

func (r *record) addTo(c *WindowCounts) {
	r.sketch.AddTo(&c.Counts)
	for i := range r.outcomes {
		c.Outcomes[i] += r.outcomes[i].Load()
	}
	c.Slow += r.slow.Load()
}

// WindowCounts is the merged read-side snapshot of a window (or of a
// class's lifetime record): latency buckets plus outcome and slow
// counts.
type WindowCounts struct {
	Counts
	Outcomes [numOutcomes]uint64
	Slow     uint64
}

// Window is a rolling time window of observations, implemented as a ring
// of sub-window records stamped with the coarse-clock period they
// accumulate. Observing costs the sketch's atomic ops plus one atomic
// period check; the rotation mutex is contended only by the first
// observers of a fresh period. Reads merge the slots whose period is
// still within the window, so expiry is a comparison, not a deletion.
// The effective span at read time is between dur−dur/len(subs) and dur
// (the current sub-window is partially filled).
type Window struct {
	dur    time.Duration
	subDur time.Duration
	subs   []windowSub
	mu     sync.Mutex // serialises slot recycling only
	now    func() time.Time
}

type windowSub struct {
	period atomic.Int64
	rec    record
}

// NewWindow builds a window covering dur with subs ring slots (rotation
// granularity dur/subs). now is the clock (nil: time.Now) — injectable
// so tests can drive rotation deterministically.
func NewWindow(dur time.Duration, subs int, now func() time.Time) *Window {
	if dur <= 0 || subs <= 0 {
		panic(fmt.Sprintf("slo: invalid window %v / %d sub-windows", dur, subs))
	}
	if now == nil {
		now = time.Now
	}
	w := &Window{dur: dur, subDur: dur / time.Duration(subs), subs: make([]windowSub, subs), now: now}
	if w.subDur <= 0 {
		panic(fmt.Sprintf("slo: window %v too short for %d sub-windows", dur, subs))
	}
	// Zero-valued slots carry period 0 (≈1970), which is already outside
	// any realistic window — they read as empty until first recycled.
	return w
}

// Duration returns the window's nominal span.
func (w *Window) Duration() time.Duration { return w.dur }

// Observe records one observation into the current sub-window.
func (w *Window) Observe(d time.Duration, o Outcome, slow bool) {
	if s := w.slot(w.period()); s != nil {
		s.observe(d, o, slow)
	}
}

func (w *Window) period() int64 { return w.now().UnixNano() / int64(w.subDur) }

// slot returns the record for period p, lazily recycling the ring slot
// when it still holds an expired period. A caller that raced so far
// behind that its period was already overwritten by a newer one gets
// nil — its observation belongs to a sub-window that has left the ring.
func (w *Window) slot(p int64) *record {
	s := &w.subs[int(p%int64(len(w.subs)))]
	switch cur := s.period.Load(); {
	case cur == p:
		return &s.rec
	case cur > p:
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	switch cur := s.period.Load(); {
	case cur == p:
		return &s.rec
	case cur > p:
		return nil
	}
	s.rec.reset()
	s.period.Store(p)
	return &s.rec
}

// Snapshot merges the sub-windows still inside the rolling window into
// one read-side value. It never blocks observers.
func (w *Window) Snapshot() WindowCounts {
	p := w.period()
	ring := int64(len(w.subs))
	var c WindowCounts
	for i := range w.subs {
		per := w.subs[i].period.Load()
		if per > p-ring && per <= p {
			w.subs[i].rec.addTo(&c)
		}
	}
	return c
}

// WindowLabel renders a window duration the way dashboards expect:
// "30s", "1m", "5m", "1h".
func WindowLabel(d time.Duration) string {
	switch {
	case d >= time.Hour && d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d >= time.Minute && d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	default:
		return fmt.Sprintf("%ds", d/time.Second)
	}
}
