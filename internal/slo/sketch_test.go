package slo

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestBucketGeometry(t *testing.T) {
	if got := BucketIndex(0); got != 0 {
		t.Errorf("BucketIndex(0) = %d, want 0", got)
	}
	if got := BucketIndex(500 * time.Nanosecond); got != 0 {
		t.Errorf("BucketIndex(500ns) = %d, want underflow bucket 0", got)
	}
	if got := BucketIndex(10 * time.Minute); got != NumBuckets-1 {
		t.Errorf("BucketIndex(10m) = %d, want overflow bucket %d", got, NumBuckets-1)
	}
	// Boundaries are strictly increasing and each boundary value lands in
	// the bucket it opens (half-open [b[i-1], b[i]) intervals).
	for i := 1; i < numBounds; i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not increasing at %d: %g <= %g", i, bounds[i], bounds[i-1])
		}
		// The seconds→Duration→seconds round trip can perturb an exact
		// boundary value by one ULP in either direction, so the probe may
		// land in the bucket the boundary opens or the one just below it.
		d := time.Duration(bounds[i-1] * 1e9)
		if got := BucketIndex(d); got < i-1 || got > i+1 {
			t.Errorf("BucketIndex(bound %d = %v) = %d, want within one of %d", i-1, d, got, i)
		}
	}
	// A latency and its 1.21x multiple can never share a bucket; a 1.19x
	// multiple may. This is the resolution the base-1.2 geometry promises.
	for _, base := range []time.Duration{2 * time.Microsecond, time.Millisecond, 100 * time.Millisecond, 5 * time.Second} {
		lo, hi := BucketIndex(base), BucketIndex(time.Duration(float64(base)*1.21))
		if lo == hi {
			t.Errorf("%v and 1.21x share bucket %d", base, lo)
		}
	}
}

// quantileAgrees checks the one-bucket error bound: the sketch estimate
// and the exact sorted quantile must land in the same or adjacent
// buckets for every probed p.
func quantileAgrees(t *testing.T, name string, samples []time.Duration) {
	t.Helper()
	var s Sketch
	for _, d := range samples {
		s.Observe(d)
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	c := s.Counts()
	if c.Total != uint64(len(samples)) {
		t.Fatalf("%s: count = %d, want %d", name, c.Total, len(samples))
	}
	for _, p := range []float64{0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0} {
		rank := int(math.Ceil(p * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		exact := sorted[rank-1]
		est := c.Quantile(p)
		if diff := BucketIndex(est) - BucketIndex(exact); diff < -1 || diff > 1 {
			t.Errorf("%s: p=%g estimate %v (bucket %d) vs exact %v (bucket %d): off by %d buckets",
				name, p, est, BucketIndex(est), exact, BucketIndex(exact), diff)
		}
		if exact > est {
			// The estimate is a bucket upper bound, so it can only be below
			// the exact order statistic when both share the overflow bucket.
			if BucketIndex(exact) != NumBuckets-1 {
				t.Errorf("%s: p=%g estimate %v below exact %v", name, p, est, exact)
			}
		}
	}
}

func TestQuantileUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]time.Duration, 20000)
	for i := range samples {
		samples[i] = time.Duration(rng.Int63n(int64(time.Second-time.Microsecond))) + time.Microsecond
	}
	quantileAgrees(t, "uniform", samples)
}

func TestQuantileZipf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := rand.NewZipf(rng, 1.3, 1, 1<<20)
	samples := make([]time.Duration, 20000)
	for i := range samples {
		// Heavy-tailed latencies from ~1µs up to ~1s.
		samples[i] = time.Duration(z.Uint64())*time.Microsecond + time.Microsecond
	}
	quantileAgrees(t, "zipf", samples)
}

func TestQuantileBimodal(t *testing.T) {
	// The serving path's adversarial shape: a huge fast mode (cache hits
	// ~2µs) and a small slow mode (misses ~5ms), over three orders of
	// magnitude apart. Quantiles that fall between the modes must not be
	// smeared: p50 sits in the fast mode, p99 in the slow one when the
	// slow mode holds 2% of the mass.
	rng := rand.New(rand.NewSource(3))
	samples := make([]time.Duration, 50000)
	for i := range samples {
		if rng.Float64() < 0.98 {
			samples[i] = 2*time.Microsecond + time.Duration(rng.Int63n(int64(time.Microsecond)))
		} else {
			samples[i] = 5*time.Millisecond + time.Duration(rng.Int63n(int64(2*time.Millisecond)))
		}
	}
	quantileAgrees(t, "bimodal", samples)

	var s Sketch
	for _, d := range samples {
		s.Observe(d)
	}
	c := s.Counts()
	if p50 := c.Quantile(0.5); p50 > 10*time.Microsecond {
		t.Errorf("bimodal p50 = %v, want fast mode (≤10µs)", p50)
	}
	if p99 := c.Quantile(0.999); p99 < time.Millisecond {
		t.Errorf("bimodal p99.9 = %v, want slow mode (≥1ms)", p99)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var c Counts
	if q := c.Quantile(0.99); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
	var s Sketch
	s.Observe(90 * time.Second) // overflow bucket
	s.Observe(100 * time.Second)
	c = s.Counts()
	if q := c.Quantile(1.0); q != 100*time.Second {
		t.Errorf("overflow quantile = %v, want observed max 100s", q)
	}
	if m := c.Max(); m != 100*time.Second {
		t.Errorf("max = %v", m)
	}
	s.Observe(-5 * time.Second) // clamps to 0
	if got := s.Counts().Buckets[0]; got != 1 {
		t.Errorf("negative observation: underflow bucket = %d, want 1", got)
	}
}

func TestSketchMean(t *testing.T) {
	var s Sketch
	s.Observe(time.Millisecond)
	s.Observe(3 * time.Millisecond)
	c := s.Counts()
	if m := c.Mean(); m != 2*time.Millisecond {
		t.Errorf("mean = %v, want 2ms", m)
	}
}
