package slo

import (
	"testing"
	"time"
)

// The acceptance bar: a disabled (nil) tracker must cost nothing beyond
// a branch, and an enabled tracker a binary search plus a bounded run of
// atomic adds per window — no locks, no allocations.

func BenchmarkRecordDisabled(b *testing.B) {
	var tr *Tracker
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(ClassSearchHit, 2*time.Microsecond, OutcomeOK)
	}
}

func BenchmarkRecord(b *testing.B) {
	tr := NewTracker(DefaultObjectives(10*time.Millisecond, 250*time.Millisecond, 500*time.Millisecond, time.Second, 0.999), Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(ClassSearchHit, 2*time.Microsecond, OutcomeOK)
	}
}

func BenchmarkRecordParallel(b *testing.B) {
	tr := NewTracker(DefaultObjectives(10*time.Millisecond, 250*time.Millisecond, 500*time.Millisecond, time.Second, 0.999), Options{})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr.Record(ClassSearchMiss, 5*time.Millisecond, OutcomeOK)
		}
	})
}

func BenchmarkSketchObserve(b *testing.B) {
	var s Sketch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe(time.Duration(i%1000) * time.Microsecond)
	}
}

func BenchmarkSnapshot(b *testing.B) {
	tr := NewTracker(DefaultObjectives(10*time.Millisecond, 250*time.Millisecond, 500*time.Millisecond, time.Second, 0.999), Options{})
	for i := 0; i < 10000; i++ {
		tr.Record(ClassSearchHit, time.Duration(i)*time.Microsecond, OutcomeOK)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tr.Snapshot()
	}
}
