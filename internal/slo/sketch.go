// Package slo measures service-level objectives on the serving path: a
// lock-light log-bucketed latency sketch, rolling time windows built from
// rings of sub-window sketches, and per-class trackers that turn
// latency/outcome streams into quantiles, error-budget burn rates and
// remaining budget.
//
// The design trades exactness for a bounded, provable error at near-zero
// coordination cost. Observations land in geometrically spaced buckets
// (base 1.2, spanning 1µs–60s) via a handful of atomic adds; quantiles
// are estimated at read time by walking merged bucket counts and
// reporting the bucket's upper bound, so every estimate is within one
// multiplicative bucket (a factor of 1.2) of the true sorted quantile.
// Rolling windows are rings of sub-window sketches stamped with a coarse
// clock period: rotation is lazy (the first observer of a new period
// recycles the expired slot under a mutex taken once per sub-window
// duration), reads merge only the slots whose period is still inside the
// window, and expiry therefore needs no background goroutine at all.
package slo

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Bucket geometry: numBounds boundaries b[i] = 1µs · growth^i. Bucket 0
// holds sub-µs observations, bucket i (1 ≤ i ≤ numBounds-1) the range
// [b[i-1], b[i]), and the last bucket everything ≥ b[numBounds-1] ≈ 69s.
const (
	growth          = 1.2
	minTrackSeconds = 1e-6 // 1µs
	maxTrackSeconds = 60.0
	numBounds       = 100
	// NumBuckets is the total bucket count of every sketch (underflow +
	// log-spaced interior + overflow).
	NumBuckets = numBounds + 1
)

var bounds [numBounds]float64

func init() {
	bounds[0] = minTrackSeconds
	for i := 1; i < numBounds; i++ {
		bounds[i] = bounds[i-1] * growth
	}
	// The geometry must bracket the tracked span: the second-to-last
	// boundary below 60s, the last at or above it. Violations mean the
	// constants drifted apart — a programming error.
	if bounds[numBounds-2] >= maxTrackSeconds || bounds[numBounds-1] < maxTrackSeconds {
		panic("slo: bucket geometry does not span the tracked latency range")
	}
}

// bucketOf maps a latency in seconds onto its bucket index: the smallest
// i whose boundary exceeds v, found by binary search (no float log, so
// boundary values bucket deterministically).
func bucketOf(v float64) int {
	return sort.Search(numBounds, func(j int) bool { return bounds[j] > v })
}

// BucketIndex returns the sketch bucket the duration falls into. Two
// estimates whose indices differ by at most one are "within one sketch
// bucket" of each other — the agreement unit used by the load-harness
// acceptance checks.
func BucketIndex(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	return bucketOf(d.Seconds())
}

// BucketUpper returns the upper boundary of bucket i (the value Quantile
// reports for observations landing there). The overflow bucket has no
// boundary; it reports the largest tracked boundary.
func BucketUpper(i int) time.Duration {
	switch {
	case i <= 0:
		return time.Duration(minTrackSeconds * 1e9)
	case i < numBounds:
		return time.Duration(bounds[i] * 1e9)
	default:
		return time.Duration(bounds[numBounds-1] * 1e9)
	}
}

// Sketch is a fixed-size log-bucketed latency histogram mutated with
// atomic operations only; the zero value is ready to use. One Observe
// costs a ~7-step binary search plus four atomic adds and (rarely) a
// compare-and-swap for the max.
type Sketch struct {
	counts [NumBuckets]atomic.Uint64
	total  atomic.Uint64
	sumNs  atomic.Uint64
	maxNs  atomic.Int64
}

// Observe records one latency. Negative durations clamp to zero.
func (s *Sketch) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.counts[bucketOf(d.Seconds())].Add(1)
	s.total.Add(1)
	s.sumNs.Add(uint64(d))
	for {
		m := s.maxNs.Load()
		if int64(d) <= m || s.maxNs.CompareAndSwap(m, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (s *Sketch) Count() uint64 { return s.total.Load() }

// AddTo accumulates the sketch's counters into c, merging this sketch
// into a read-side snapshot. Concurrent Observes may or may not be
// included — each observation is read atomically, so c is always a sum
// of complete observations.
func (s *Sketch) AddTo(c *Counts) {
	for i := range s.counts {
		c.Buckets[i] += s.counts[i].Load()
	}
	c.Total += s.total.Load()
	c.SumNs += s.sumNs.Load()
	if m := s.maxNs.Load(); m > c.MaxNs {
		c.MaxNs = m
	}
}

// Counts returns the sketch's own counters as a snapshot.
func (s *Sketch) Counts() Counts {
	var c Counts
	s.AddTo(&c)
	return c
}

// reset zeroes every counter with atomic stores. An Observe racing the
// reset may lose exactly that one observation (or survive into the fresh
// sub-window); the error is bounded by one observation per rotation and
// the operation stays clean under the race detector.
func (s *Sketch) reset() {
	for i := range s.counts {
		s.counts[i].Store(0)
	}
	s.total.Store(0)
	s.sumNs.Store(0)
	s.maxNs.Store(0)
}

// Counts is a plain (non-atomic) bucket snapshot, mergeable across
// sub-windows and classes; quantiles are estimated on the merged value.
type Counts struct {
	Buckets [NumBuckets]uint64
	Total   uint64
	SumNs   uint64
	MaxNs   int64
}

// Quantile estimates the p-quantile (p in [0, 1]) of the recorded
// latencies: the upper boundary of the bucket holding the ⌈p·n⌉-th
// smallest observation. Because the true order statistic lies inside
// that bucket, the estimate exceeds it by at most one bucket width (a
// factor of growth = 1.2); sub-µs observations report 1µs, and the
// overflow bucket reports the observed maximum. Zero observations
// estimate zero.
func (c *Counts) Quantile(p float64) time.Duration {
	i := c.QuantileBucket(p)
	switch {
	case i < 0:
		return 0
	case i == NumBuckets-1:
		return time.Duration(c.MaxNs)
	}
	return BucketUpper(i)
}

// QuantileBucket returns the index of the bucket holding the ⌈p·n⌉-th
// smallest observation, or -1 with no observations. It is the join key
// for exemplars: a trace noted at BucketIndex(d) of an observation lands
// in exactly this index, whereas re-bucketing the Quantile estimate
// (the bucket's upper boundary) would land one bucket up.
func (c *Counts) QuantileBucket(p float64) int {
	if c.Total == 0 {
		return -1
	}
	if math.IsNaN(p) || p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(c.Total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range c.Buckets {
		cum += n
		if cum >= rank {
			return i
		}
	}
	return NumBuckets - 1 // unreachable: cum sums to Total
}

// Mean returns the arithmetic mean of the recorded latencies (exact —
// the sum is tracked outside the buckets).
func (c *Counts) Mean() time.Duration {
	if c.Total == 0 {
		return 0
	}
	return time.Duration(c.SumNs / c.Total)
}

// Max returns the largest recorded latency.
func (c *Counts) Max() time.Duration { return time.Duration(c.MaxNs) }
