package slo

import (
	"testing"
	"time"
)

func TestExemplarJoinsQuantileBucket(t *testing.T) {
	tr := NewTracker(map[string]Objective{ClassSearchMiss: {Threshold: time.Second}}, Options{})
	// One slow observation dominates the tail; its exemplar must surface
	// at p99 (and, with a single observation, every quantile).
	d := 40 * time.Millisecond
	tr.Record(ClassSearchMiss, d, OutcomeOK)
	tr.NoteExemplar(ClassSearchMiss, d, "trace-slow")

	cs, ok := tr.Snapshot().Class(ClassSearchMiss)
	if !ok {
		t.Fatal("class missing from snapshot")
	}
	if got := cs.Total.Exemplars["p99"]; got != "trace-slow" {
		t.Fatalf("total p99 exemplar = %q, want trace-slow (exemplars: %v)", got, cs.Total.Exemplars)
	}
	if len(cs.Windows) == 0 || cs.Windows[0].Exemplars["p99"] != "trace-slow" {
		t.Fatalf("window p99 exemplar missing: %+v", cs.Windows)
	}
}

// The sampler measures its duration slightly after the tracker does, so
// an exemplar noted one bucket above the recorded observation must still
// resolve (neighbour fallback).
func TestExemplarNeighbourBucket(t *testing.T) {
	tr := NewTracker(map[string]Objective{ClassSearchMiss: {Threshold: time.Second}}, Options{})
	d := 10 * time.Millisecond
	tr.Record(ClassSearchMiss, d, OutcomeOK)
	tr.NoteExemplar(ClassSearchMiss, BucketUpper(BucketIndex(d)), "trace-next") // lands one bucket up

	cs, _ := tr.Snapshot().Class(ClassSearchMiss)
	if got := cs.Total.Exemplars["p99"]; got != "trace-next" {
		t.Fatalf("neighbour exemplar not found: %v", cs.Total.Exemplars)
	}
}

func TestNoteExemplarIgnoresUnknownAndNil(t *testing.T) {
	var nilTr *Tracker
	nilTr.NoteExemplar(ClassSearchMiss, time.Millisecond, "x") // must not panic

	tr := NewTracker(map[string]Objective{ClassSearchHit: {}}, Options{})
	tr.NoteExemplar("no-such-class", time.Millisecond, "x")
	tr.NoteExemplar(ClassSearchHit, time.Millisecond, "") // empty ID ignored
	tr.Record(ClassSearchHit, time.Millisecond, OutcomeOK)
	cs, _ := tr.Snapshot().Class(ClassSearchHit)
	if cs.Total.Exemplars != nil {
		t.Fatalf("unexpected exemplars: %v", cs.Total.Exemplars)
	}
}

func TestQuantileBucketMatchesQuantile(t *testing.T) {
	var c Counts
	if c.QuantileBucket(0.5) != -1 {
		t.Fatal("empty counts must report bucket -1")
	}
	for _, d := range []time.Duration{time.Microsecond, time.Millisecond, 7 * time.Millisecond, 2 * time.Second} {
		c.Buckets[BucketIndex(d)]++
		c.Total++
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
		b := c.QuantileBucket(p)
		if got, want := c.Quantile(p), BucketUpper(b); got != want {
			t.Fatalf("p=%v: Quantile=%v but BucketUpper(QuantileBucket)=%v", p, got, want)
		}
	}
}
