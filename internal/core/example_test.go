package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/textctx"
)

// Example demonstrates the two-step framework on a tiny retrieved set:
// Step 1 computes and caches the proportionality scores, Step 2 selects
// k = 2 places with ABP. Three of the four places are history museums,
// so the proportional pair repeats the dominant cluster.
func Example() {
	dict := textctx.NewDict()
	place := func(id string, x, y, rel float64, words ...string) core.Place {
		return core.Place{
			ID: id, Loc: geo.Pt(x, y), Rel: rel,
			Context: textctx.NewSetFromStrings(dict, words),
		}
	}
	q := geo.Pt(0, 0)
	s := []core.Place{
		place("hist-1", 2, 0, 0.9, "history", "museum"),
		place("hist-2", 2.1, 0.1, 0.88, "history", "museum"),
		place("hist-3", 1.9, -0.1, 0.86, "history", "museum"),
		place("nobel", -2, 0, 0.85, "science", "museum"),
	}
	scores, err := core.ComputeScores(q, s, core.ScoreOptions{Gamma: 0.5})
	if err != nil {
		fmt.Println(err)
		return
	}
	sel, err := core.ABP(scores, core.Params{K: 2, Lambda: 0.5, Gamma: 0.5})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, i := range sel.Indices {
		fmt.Println(scores.Places[i].ID)
	}
	// Output:
	// hist-1
	// hist-2
}

// ExampleScoreSet_Evaluate shows the HPF(R) breakdown used by Figure 11.
func ExampleScoreSet_Evaluate() {
	dict := textctx.NewDict()
	q := geo.Pt(0, 0)
	s := []core.Place{
		{ID: "a", Loc: geo.Pt(1, 0), Rel: 1, Context: textctx.NewSetFromStrings(dict, []string{"x"})},
		{ID: "b", Loc: geo.Pt(-1, 0), Rel: 1, Context: textctx.NewSetFromStrings(dict, []string{"y"})},
		{ID: "c", Loc: geo.Pt(0, 1), Rel: 1, Context: textctx.NewSetFromStrings(dict, []string{"x"})},
	}
	scores, err := core.ComputeScores(q, s, core.ScoreOptions{Gamma: 0})
	if err != nil {
		fmt.Println(err)
		return
	}
	b := scores.Evaluate([]int{0, 1}, 0.5)
	// R = {a, b}: contexts are disjoint, so the contextual part is a's
	// similarity to c (J = 1) minus nothing — pC sums pCS − pCR.
	fmt.Printf("rel=%.0f pC=%.0f\n", b.Rel, b.PC)
	// Output:
	// rel=2 pC=1
}

// ExampleSelect shows name-based algorithm dispatch.
func ExampleSelect() {
	dict := textctx.NewDict()
	q := geo.Pt(0, 0)
	var s []core.Place
	for i := 0; i < 6; i++ {
		s = append(s, core.Place{
			ID:      fmt.Sprintf("p%d", i),
			Loc:     geo.Pt(float64(i), 1),
			Rel:     0.5 + float64(i)/100,
			Context: textctx.NewSetFromStrings(dict, []string{"tag", fmt.Sprintf("t%d", i)}),
		})
	}
	scores, err := core.ComputeScores(q, s, core.ScoreOptions{Gamma: 0.5})
	if err != nil {
		fmt.Println(err)
		return
	}
	sel, err := core.Select(core.AlgTopK, scores, core.Params{K: 1, Lambda: 0.5, Gamma: 0.5})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(scores.Places[sel.Indices[0]].ID)
	// Output:
	// p5
}
