package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/explain"
	"repro/internal/geo"
	"repro/internal/textctx"
)

// abpRunTraced runs alg under a fresh explain collector and returns the
// selection together with the recorded greedy rounds.
func abpRunTraced(t *testing.T, alg Algorithm, ss *ScoreSet, p Params) (Selection, []explain.GreedyRound) {
	t.Helper()
	col := explain.New()
	ctx := explain.WithCollector(context.Background(), col)
	sel, err := SelectCtx(ctx, alg, ss, p)
	if err != nil {
		t.Fatalf("%s: %v", alg, err)
	}
	return sel, col.Report().Rounds
}

// requireIdenticalRuns asserts that two (selection, trace) runs agree
// bit-for-bit: same indices, same total HPF bits, and per-round identical
// chosen sets, gains, runner-ups and runner-up gains.
func requireIdenticalRuns(t *testing.T, label string,
	aSel Selection, aRounds []explain.GreedyRound,
	bSel Selection, bRounds []explain.GreedyRound) {
	t.Helper()
	if !equalInts(aSel.Indices, bSel.Indices) {
		t.Fatalf("%s: selections differ: %v vs %v", label, aSel.Indices, bSel.Indices)
	}
	if math.Float64bits(aSel.HPF) != math.Float64bits(bSel.HPF) {
		t.Fatalf("%s: HPF bits differ: %v vs %v", label, aSel.HPF, bSel.HPF)
	}
	if len(aRounds) != len(bRounds) {
		t.Fatalf("%s: round counts differ: %d vs %d", label, len(aRounds), len(bRounds))
	}
	for i := range aRounds {
		a, b := aRounds[i], bRounds[i]
		if a.Round != b.Round || !equalInts(a.Chosen, b.Chosen) {
			t.Fatalf("%s round %d: chosen differ: %+v vs %+v", label, i+1, a, b)
		}
		if math.Float64bits(a.Gain) != math.Float64bits(b.Gain) {
			t.Fatalf("%s round %d: gain bits differ: %v vs %v", label, i+1, a.Gain, b.Gain)
		}
		if !equalInts(a.RunnerUp, b.RunnerUp) {
			t.Fatalf("%s round %d: runner-ups differ: %v vs %v", label, i+1, a.RunnerUp, b.RunnerUp)
		}
		if math.Float64bits(a.RunnerUpGain) != math.Float64bits(b.RunnerUpGain) {
			t.Fatalf("%s round %d: runner-up gain bits differ: %v vs %v",
				label, i+1, a.RunnerUpGain, b.RunnerUpGain)
		}
	}
}

// TestABPIncrementalEquivRescan is the property behind the heap rewrite:
// the incremental lazy-deletion heap must reproduce the sort-based rescan
// exactly — selections, gains and explain traces — across instance sizes,
// result-size parities and the λ/γ weight grid. Both variants rank by the
// shared abpBefore total order over the shared abpScores materialisation,
// so any divergence is a heap bug, not a float artefact.
func TestABPIncrementalEquivRescan(t *testing.T) {
	type cfg struct {
		n     int
		seeds []int64
		ks    []int
		ws    []float64 // λ and γ values crossed
	}
	cfgs := []cfg{
		{n: 10, seeds: []int64{1, 2, 3}, ks: []int{2, 3, 5, 9}, ws: []float64{0, 0.5, 1}},
		{n: 50, seeds: []int64{1, 2}, ks: []int{2, 5, 10, 11}, ws: []float64{0, 0.5, 1}},
		{n: 200, seeds: []int64{1}, ks: []int{10, 11}, ws: []float64{0.5}},
		{n: 999, seeds: []int64{1}, ks: []int{10, 11}, ws: []float64{0.5}},
	}
	for _, c := range cfgs {
		for _, seed := range c.seeds {
			for _, gamma := range c.ws {
				q := geo.Pt(0, 0)
				rng := rand.New(rand.NewSource(seed))
				places := makePlaces(rng, q, c.n, 12, 40, 0.2)
				ss := mustScores(t, q, places, ScoreOptions{Gamma: gamma})
				for _, k := range c.ks {
					if k >= c.n {
						continue
					}
					for _, lambda := range c.ws {
						p := Params{K: k, Lambda: lambda, Gamma: gamma}
						hSel, hRounds := abpRunTraced(t, AlgABP, ss, p)
						rSel, rRounds := abpRunTraced(t, AlgABPRescan, ss, p)
						label := formatABPLabel(c.n, seed, k, lambda, gamma)
						requireIdenticalRuns(t, label, hSel, hRounds, rSel, rRounds)
					}
				}
			}
		}
	}
}

func formatABPLabel(n int, seed int64, k int, lambda, gamma float64) string {
	return "n=" + itoaTest(n) + " seed=" + itoaTest(int(seed)) + " k=" + itoaTest(k) +
		" λ=" + ftoaTest(lambda) + " γ=" + ftoaTest(gamma)
}

func itoaTest(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func ftoaTest(f float64) string {
	switch f {
	case 0:
		return "0"
	case 0.5:
		return "0.5"
	case 1:
		return "1"
	}
	return "?"
}

// TestABPVariantsAgreeOnTies pins the tie-break canonicalisation: when
// many pairs share one exact score (identical places → every pair scores
// the same), the heap, rescan and eager variants must all fall back to
// the (i, j)-ascending order rather than whatever their data structure
// happens to surface first.
func TestABPVariantsAgreeOnTies(t *testing.T) {
	q := geo.Pt(0, 0)
	ctxSet := textctx.NewSet(1, 2, 3)
	places := make([]Place, 24)
	for i := range places {
		places[i] = Place{ID: word(i), Loc: geo.Pt(1, 1), Rel: 0.7, Context: ctxSet}
	}
	ss := mustScores(t, q, places, ScoreOptions{Gamma: 0.5})
	for _, k := range []int{2, 5, 6, 23} {
		p := Params{K: k, Lambda: 0.5, Gamma: 0.5}
		want, err := ABPRescan(ss, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{AlgABP, AlgABPEager} {
			got, err := Select(alg, ss, p)
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			if !equalInts(got.Indices, want.Indices) {
				t.Errorf("k=%d: %s selected %v; abp-rescan selected %v", k, alg, got.Indices, want.Indices)
			}
		}
	}
}

// TestABPHeapOrderMatchesSort cross-checks the hand-rolled heap against
// TestABPScoresMatchPairHPF pins the hoisted-constant materialiser loop
// to its definition: every materialised pair score must carry exactly the
// bits of ss.PairHPF(i, j, k, λ). Any reassociation slipped into the
// inlined arithmetic shows up here before it can perturb a tie.
func TestABPScoresMatchPairHPF(t *testing.T) {
	q := geo.Pt(0, 0)
	rng := rand.New(rand.NewSource(23))
	places := makePlaces(rng, q, 80, 12, 40, 0.2)
	ss := mustScores(t, q, places, ScoreOptions{Gamma: 0.5})
	for _, k := range []int{2, 7, 10} {
		for _, lambda := range []float64{0, 0.3, 1} {
			ps, err := abpScores(context.Background(), ss, k, lambda, "test")
			if err != nil {
				t.Fatal(err)
			}
			if len(ps) != 80*79/2 {
				t.Fatalf("k=%d λ=%v: %d pairs, want %d", k, lambda, len(ps), 80*79/2)
			}
			for _, p := range ps {
				want := ss.PairHPF(int(p.i), int(p.j), k, lambda)
				if math.Float64bits(p.score) != math.Float64bits(want) {
					t.Fatalf("k=%d λ=%v: score(%d,%d) = %v, PairHPF = %v",
						k, lambda, p.i, p.j, p.score, want)
				}
			}
		}
	}
}

// sort.Slice under the same total order on adversarial inputs (duplicate
// scores, already-sorted, reversed): popping every element must yield the
// sorted sequence exactly.
func TestABPHeapOrderMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		ps := make([]abpPair, n)
		for i := range ps {
			// Few distinct scores force heavy tie-breaking.
			ps[i] = abpPair{i: int32(rng.Intn(10)), j: int32(rng.Intn(10)), score: float64(rng.Intn(4))}
		}
		want := make([]abpPair, n)
		copy(want, ps)
		sortAbpPairs(want)
		h := make([]abpPair, n)
		copy(h, ps)
		abpHeapify(h)
		for i := 0; i < n; i++ {
			var top abpPair
			h, top = abpPop(h)
			if top != want[i] {
				t.Fatalf("trial %d: pop %d = %+v, want %+v", trial, i, top, want[i])
			}
		}
	}
}

func sortAbpPairs(ps []abpPair) {
	// Insertion sort — independent of the comparator usage under test.
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && abpBefore(ps[j], ps[j-1]); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
