package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

// TestEvaluateAffineInLambda: HPF(R) is affine in λ, so the value at any
// λ is the λ-interpolation of the endpoints.
func TestEvaluateAffineInLambda(t *testing.T) {
	ss := defaultScoreSet(t, 20, 61)
	r := []int{0, 4, 9, 15}
	at0 := ss.Evaluate(r, 0).Total
	at1 := ss.Evaluate(r, 1).Total
	f := func(raw uint8) bool {
		lambda := float64(raw) / 255
		want := (1-lambda)*at0 + lambda*at1
		got := ss.Evaluate(r, lambda).Total
		return almostEqual(got, want, 1e-9*(1+abs(want)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestEvaluateOrderInvariant: HPF(R) does not depend on the order of the
// indices in R.
func TestEvaluateOrderInvariant(t *testing.T) {
	ss := defaultScoreSet(t, 18, 67)
	rng := rand.New(rand.NewSource(1))
	base := []int{2, 5, 8, 11, 14}
	want := ss.Evaluate(base, 0.5).Total
	for trial := 0; trial < 20; trial++ {
		perm := append([]int(nil), base...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if got := ss.Evaluate(perm, 0.5).Total; !almostEqual(got, want, 1e-9) {
			t.Fatalf("order-dependent HPF: %g vs %g", got, want)
		}
	}
}

// TestPairHPFSymmetric: HPF(p_i, p_j) = HPF(p_j, p_i).
func TestPairHPFSymmetric(t *testing.T) {
	ss := defaultScoreSet(t, 15, 71)
	f := func(ri, rj, rk, rl uint8) bool {
		i := int(ri) % ss.K()
		j := int(rj) % ss.K()
		if i == j {
			return true
		}
		k := 2 + int(rk)%8
		lambda := float64(rl) / 255
		return almostEqual(ss.PairHPF(i, j, k, lambda), ss.PairHPF(j, i, k, lambda), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestScoreRanges: pCS, pSS ∈ [0, K−1] and sF ∈ [0, 1] on arbitrary
// inputs — the ranges the paper's normalisations rely on.
func TestScoreRanges(t *testing.T) {
	q := geo.Pt(0, 0)
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		places := makePlaces(rng, q, 30, 8, 20, 0)
		ss := mustScores(t, q, places, ScoreOptions{Gamma: 0.5})
		kMax := float64(ss.K() - 1)
		for i := 0; i < ss.K(); i++ {
			if ss.PCS[i] < 0 || ss.PCS[i] > kMax+1e-9 {
				t.Fatalf("pCS[%d] = %g outside [0, %g]", i, ss.PCS[i], kMax)
			}
			if ss.PSS[i] < 0 || ss.PSS[i] > kMax+1e-9 {
				t.Fatalf("pSS[%d] = %g outside [0, %g]", i, ss.PSS[i], kMax)
			}
			for j := i + 1; j < ss.K(); j++ {
				if sf := ss.SF.At(i, j); sf < -1e-12 || sf > 1+1e-12 {
					t.Fatalf("sF(%d,%d) = %g outside [0, 1]", i, j, sf)
				}
			}
		}
	}
}

// TestScoreSetConcurrentReads: a ScoreSet is read-only after Step 1, so
// concurrent Step-2 runs over the same set must be race-free and agree.
func TestScoreSetConcurrentReads(t *testing.T) {
	ss := defaultScoreSet(t, 60, 73)
	p := Params{K: 8, Lambda: 0.5, Gamma: 0.5}
	want, err := ABP(ss, p)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := ABP(ss, p)
			if err != nil {
				errs <- err
				return
			}
			if !equalInts(got.Indices, want.Indices) {
				errs <- errMismatch
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent ABP runs disagreed" }
