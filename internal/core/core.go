// Package core implements the proportional selection framework of
// "Proportionality in Spatial Keyword Search" (SIGMOD 2021): the place
// model, the contextual/spatial proportionality score functions of
// Section 4 (Eq. 2–16), the two-step algorithmic framework of Section 5
// (Step 1 computes and caches all pairwise scores; Step 2 runs a greedy
// selection), the greedy algorithms IAdU and ABP, the diversification and
// top-k baselines they are compared against, and an exact solver for small
// instances together with the NP-hardness reduction of Theorem 4.1.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/textctx"
)

// Place is a retrieved spatial object: a location, a relevance score
// rF(p) ∈ [0, 1] w.r.t. the query, and a contextual set of items
// (keywords, tags, or graph entities).
type Place struct {
	// ID identifies the place to callers (e.g. an entity URI or name).
	ID string
	// Loc is the place's location.
	Loc geo.Point
	// Rel is the relevance score rF(p) in [0, 1], supplied by the
	// retrieval model (e.g. a combination of keyword similarity and
	// distance to the query location).
	Rel float64
	// Context is the place's contextual set C(p).
	Context textctx.Set
}

// Validate reports the first problem with p, or nil.
func (p *Place) Validate() error {
	if !p.Loc.Valid() {
		return fmt.Errorf("core: place %q has invalid location %v", p.ID, p.Loc)
	}
	if math.IsNaN(p.Rel) || p.Rel < 0 || p.Rel > 1 {
		return fmt.Errorf("core: place %q has relevance %v outside [0, 1]", p.ID, p.Rel)
	}
	return nil
}

// Params are the selection parameters of the paper.
type Params struct {
	// K is the result size k (the paper's k < K); the K of the paper is
	// implicit in the number of scored places.
	K int
	// Lambda trades relevance (0) against proportionality (1); Eq. 9.
	Lambda float64
	// Gamma trades contextual (0) against spatial (1) proportionality;
	// Eq. 8. Gamma is fixed at scoring time (it weights the cached sF
	// matrix), and recorded here for bookkeeping.
	Gamma float64
}

// DefaultParams returns the paper's default setting k=10, λ=γ=0.5.
func DefaultParams() Params { return Params{K: 10, Lambda: 0.5, Gamma: 0.5} }

func (p Params) validate(n int) error {
	if p.K <= 0 {
		return fmt.Errorf("%w: k = %d must be positive", ErrBadParams, p.K)
	}
	if p.K >= n {
		return fmt.Errorf("%w: k = %d must be smaller than K = %d", ErrBadParams, p.K, n)
	}
	if math.IsNaN(p.Lambda) || p.Lambda < 0 || p.Lambda > 1 {
		return fmt.Errorf("%w: λ = %v outside [0, 1]", ErrBadParams, p.Lambda)
	}
	if math.IsNaN(p.Gamma) || p.Gamma < 0 || p.Gamma > 1 {
		return fmt.Errorf("%w: γ = %v outside [0, 1]", ErrBadParams, p.Gamma)
	}
	return nil
}

// ErrBadParams marks selection-parameter validation failures (non-positive
// or oversized k, λ/γ outside [0, 1]). Like ErrTooLarge it is a caller
// error: servers surface errors matching it as HTTP 400, not 500.
var ErrBadParams = errors.New("core: invalid selection parameters")

// ErrTooLarge is returned by Exact for instances beyond brute force.
var ErrTooLarge = errors.New("core: instance too large for exact solver")

// Selection is the output of a selection algorithm: the chosen indices
// into the scored set S (in selection order) and the holistic score
// HPF(R) the algorithm achieved under its score set.
type Selection struct {
	Indices []int
	HPF     float64
}

// Breakdown decomposes HPF(R) into the three stacked components reported
// in Figure 11: the relevance part (K−k)·Σ rF, the contextual part Σ pC,
// and the spatial part Σ pS (each λ/γ-weighted into Total).
type Breakdown struct {
	Rel, PC, PS float64
	// Total is the holistic score HPF(R) of Eq. 10.
	Total float64
}
