package core

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geo"
)

// TestIAdUHeapMatchesArray: the heap-based IAdU must achieve the same HPF
// as the array-scan version (selections can differ only on exact ties).
func TestIAdUHeapMatchesArray(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		q := geo.Pt(0, 0)
		rng := rand.New(rand.NewSource(seed))
		places := makePlaces(rng, q, 50, 10, 40, 0.2)
		ss := mustScores(t, q, places, ScoreOptions{Gamma: 0.5})
		for _, k := range []int{1, 2, 5, 10} {
			p := Params{K: k, Lambda: 0.5, Gamma: 0.5}
			a, err := IAdU(ss, p)
			if err != nil {
				t.Fatal(err)
			}
			h, err := IAdUHeap(ss, p)
			if err != nil {
				t.Fatal(err)
			}
			selectionOK(t, "IAdUHeap", h, k, ss.K())
			if !almostEqual(a.HPF, h.HPF, 1e-9*(1+a.HPF)) {
				t.Errorf("seed %d k=%d: array HPF %g vs heap HPF %g", seed, k, a.HPF, h.HPF)
			}
		}
	}
}

// TestABPEagerMatchesLazy: eager compaction must select the same pairs as
// lazy skipping (same sort order, same greedy choices).
func TestABPEagerMatchesLazy(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		q := geo.Pt(0, 0)
		rng := rand.New(rand.NewSource(100 + seed))
		places := makePlaces(rng, q, 40, 10, 40, 0.2)
		ss := mustScores(t, q, places, ScoreOptions{Gamma: 0.5})
		for _, k := range []int{2, 3, 6, 11} {
			p := Params{K: k, Lambda: 0.5, Gamma: 0.5}
			a, err := ABP(ss, p)
			if err != nil {
				t.Fatal(err)
			}
			e, err := ABPEager(ss, p)
			if err != nil {
				t.Fatal(err)
			}
			as := append([]int(nil), a.Indices...)
			es := append([]int(nil), e.Indices...)
			sort.Ints(as)
			sort.Ints(es)
			if !equalInts(as, es) {
				// Pair-sort ties can reorder equal-score pairs; fall back
				// to comparing achieved HPF.
				if !almostEqual(a.HPF, e.HPF, 1e-9*(1+a.HPF)) {
					t.Errorf("seed %d k=%d: lazy %v (%g) vs eager %v (%g)",
						seed, k, as, a.HPF, es, e.HPF)
				}
			}
		}
	}
}

func TestVariantValidation(t *testing.T) {
	ss := defaultScoreSet(t, 10, 3)
	for _, alg := range []func(*ScoreSet, Params) (Selection, error){IAdUHeap, ABPEager} {
		if _, err := alg(ss, Params{K: 0, Lambda: 0.5}); err == nil {
			t.Error("variant accepted k = 0")
		}
		if _, err := alg(ss, Params{K: 10, Lambda: 0.5}); err == nil {
			t.Error("variant accepted k = K")
		}
	}
}

func TestVariantK1(t *testing.T) {
	ss := defaultScoreSet(t, 10, 5)
	p := Params{K: 1, Lambda: 0.5, Gamma: 0.5}
	h, err := IAdUHeap(ss, p)
	if err != nil {
		t.Fatal(err)
	}
	e, err := ABPEager(ss, p)
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i := range ss.Places {
		if ss.Places[i].Rel > ss.Places[best].Rel {
			best = i
		}
	}
	if h.Indices[0] != best {
		t.Errorf("IAdUHeap k=1 picked %d, want %d", h.Indices[0], best)
	}
	if len(e.Indices) != 1 {
		t.Errorf("ABPEager k=1 size %d", len(e.Indices))
	}
}

func BenchmarkIAdUArrayK400(b *testing.B) { benchGreedy(b, IAdU, 400, 10) }
func BenchmarkIAdUHeapK400(b *testing.B)  { benchGreedy(b, IAdUHeap, 400, 10) }
func BenchmarkABPLazyK400(b *testing.B)   { benchGreedy(b, ABP, 400, 10) }
func BenchmarkABPEagerK400(b *testing.B)  { benchGreedy(b, ABPEager, 400, 10) }
