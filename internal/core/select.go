package core

import (
	"fmt"
	"sort"
)

// Algorithm names a selection algorithm for dispatch from configuration
// or command-line flags.
type Algorithm string

// The registered selection algorithms.
const (
	AlgABP      Algorithm = "abp"       // proportional, best-pair greedy (recommended)
	AlgIAdU     Algorithm = "iadu"      // proportional, incremental-add greedy
	AlgIAdUHeap Algorithm = "iadu-heap" // IAdU with heap-based selection
	AlgABPEager Algorithm = "abp-eager" // ABP with eager pair invalidation
	AlgTopK     Algorithm = "topk"      // top-k by relevance (S_k baseline)
	AlgABPDiv   Algorithm = "abp-div"   // diversification-only ABP (ABP_D)
	AlgIAdUDiv  Algorithm = "iadu-div"  // diversification-only IAdU
	AlgExact    Algorithm = "exact"     // brute force (small instances only)
)

var registry = map[Algorithm]func(*ScoreSet, Params) (Selection, error){
	AlgABP:      ABP,
	AlgIAdU:     IAdU,
	AlgIAdUHeap: IAdUHeap,
	AlgABPEager: ABPEager,
	AlgTopK:     TopK,
	AlgABPDiv:   ABPDiv,
	AlgIAdUDiv:  IAdUDiv,
	AlgExact:    Exact,
}

// Algorithms lists the registered algorithm names, sorted.
func Algorithms() []Algorithm {
	out := make([]Algorithm, 0, len(registry))
	for a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Select runs the named algorithm on the score set.
func Select(alg Algorithm, ss *ScoreSet, p Params) (Selection, error) {
	f, ok := registry[alg]
	if !ok {
		return Selection{}, fmt.Errorf("core: unknown algorithm %q (have %v)", alg, Algorithms())
	}
	return f(ss, p)
}
