package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/explain"
	"repro/internal/telemetry"
)

// Algorithm names a selection algorithm for dispatch from configuration
// or command-line flags.
type Algorithm string

// The registered selection algorithms.
const (
	AlgABP       Algorithm = "abp"        // proportional, best-pair greedy (recommended)
	AlgABPRescan Algorithm = "abp-rescan" // ABP with full-sort best-pair maintenance (reference)
	AlgIAdU      Algorithm = "iadu"       // proportional, incremental-add greedy
	AlgIAdUHeap  Algorithm = "iadu-heap"  // IAdU with heap-based selection
	AlgABPEager  Algorithm = "abp-eager"  // ABP with eager pair invalidation
	AlgTopK      Algorithm = "topk"     // top-k by relevance (S_k baseline)
	AlgABPDiv    Algorithm = "abp-div"  // diversification-only ABP (ABP_D)
	AlgIAdUDiv   Algorithm = "iadu-div" // diversification-only IAdU
	AlgExact     Algorithm = "exact"    // brute force (small instances only)
)

// Every registered implementation threads a context through its greedy
// loops; the context-free entry points pass context.Background().
var registry = map[Algorithm]func(context.Context, *ScoreSet, Params) (Selection, error){
	AlgABP:       abpCtx,
	AlgABPRescan: abpRescanCtx,
	AlgIAdU:      iaduCtx,
	AlgIAdUHeap:  iaduHeapCtx,
	AlgABPEager:  abpEagerCtx,
	AlgTopK:      topKCtx,
	AlgABPDiv:    abpDivCtx,
	AlgIAdUDiv:   iaduDivCtx,
	AlgExact:     exactCtx,
}

// Algorithms lists the registered algorithm names, sorted.
func Algorithms() []Algorithm {
	out := make([]Algorithm, 0, len(registry))
	for a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Registered reports whether alg names a registered selection algorithm —
// servers use it to reject unknown algorithms before any scoring work.
func Registered(alg Algorithm) bool {
	_, ok := registry[alg]
	return ok
}

// Select runs the named algorithm on the score set.
func Select(alg Algorithm, ss *ScoreSet, p Params) (Selection, error) {
	return SelectCtx(context.Background(), alg, ss, p)
}

// SelectCtx runs the named algorithm with cooperative cancellation: the
// greedy loops poll ctx once per outer iteration and return an error
// matching ErrCancelled or ErrDeadline as soon as ctx terminates.
func SelectCtx(ctx context.Context, alg Algorithm, ss *ScoreSet, p Params) (Selection, error) {
	f, ok := registry[alg]
	if !ok {
		return Selection{}, fmt.Errorf("core: unknown algorithm %q (have %v)", alg, Algorithms())
	}
	explain.FromContext(ctx).SetAlgorithm(string(alg))
	defer telemetry.StartSpan(ctx, telemetry.StageSelect)()
	return f(ctx, ss, p)
}
