package core

import (
	"context"
	"math/rand"
	"sort"
)

// TopK returns the k most relevant places (the paper's S_k baseline from
// the user study: top-k by rF with no diversification).
func TopK(ss *ScoreSet, p Params) (Selection, error) {
	return topKCtx(context.Background(), ss, p)
}

func topKCtx(ctx context.Context, ss *ScoreSet, p Params) (Selection, error) {
	n := ss.K()
	if err := p.validate(n); err != nil {
		return Selection{}, err
	}
	// TopK is O(K log K) — a single checkpoint covers it.
	if err := checkpoint(ctx, "select:topk"); err != nil {
		return Selection{}, err
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return ss.Places[idx[a]].Rel > ss.Places[idx[b]].Rel
	})
	r := idx[:p.K]
	return Selection{Indices: r, HPF: ss.Evaluate(r, p.Lambda).Total}, nil
}

// RandomSelect returns k places drawn uniformly without replacement — the
// random-selection baseline the abstract's user evaluation refers to.
func RandomSelect(ss *ScoreSet, p Params, seed int64) (Selection, error) {
	n := ss.K()
	if err := p.validate(n); err != nil {
		return Selection{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	r := perm[:p.K]
	return Selection{Indices: r, HPF: ss.Evaluate(r, p.Lambda).Total}, nil
}

// divPair is the pairwise objective of the diversification framework of
// Cai et al. [5] (MaxSum relevance + diversity, no proportionality term):
//
//	f(u, v) = ((1−λ)·(rF(u) + rF(v)) + 2λ·dF(u, v)) / (k−1)
//
// where dF = 1 − sF combines Jaccard distance and Ptolemy's diversity.
// Summing f over all pairs of R gives (1−λ)·Σ rF + (2λ/(k−1))·Σ dF, so
// both terms live on the same k-proportional scale and λ genuinely trades
// them off.
func (ss *ScoreSet) divPair(i, j, k int, lambda float64) float64 {
	rel := (1 - lambda) * (ss.Places[i].Rel + ss.Places[j].Rel) / float64(k-1)
	div := 2 * lambda / float64(k-1) * (1 - ss.sf(i, j))
	return rel + div
}

// EvaluateDiv computes the diversification objective of R (relevance plus
// pairwise dissimilarity), for comparing diversified baselines.
func (ss *ScoreSet) EvaluateDiv(r []int, lambda float64) float64 {
	var total float64
	for a := 0; a < len(r); a++ {
		for b := a + 1; b < len(r); b++ {
			total += ss.divPair(r[a], r[b], len(r), lambda)
		}
	}
	return total
}

// IAdUDiv is the diversification-only variant of IAdU (the framework of
// Cai et al. [5] that the paper adapts): greedy insertion maximising
// relevance + dissimilarity to the current R, with no proportional-to-S
// term. Used as the ABP_D/IAdU_D baseline in the user evaluation.
func IAdUDiv(ss *ScoreSet, p Params) (Selection, error) {
	return iaduDivCtx(context.Background(), ss, p)
}

func iaduDivCtx(ctx context.Context, ss *ScoreSet, p Params) (Selection, error) {
	n := ss.K()
	if err := p.validate(n); err != nil {
		return Selection{}, err
	}
	k := p.K
	r := make([]int, 0, k)
	used := make([]bool, n)
	best := 0
	for i := 1; i < n; i++ {
		if ss.Places[i].Rel > ss.Places[best].Rel {
			best = i
		}
	}
	r = append(r, best)
	used[best] = true
	if k == 1 {
		return Selection{Indices: r, HPF: ss.Evaluate(r, p.Lambda).Total}, nil
	}
	contrib := make([]float64, n)
	for i := 0; i < n; i++ {
		if !used[i] {
			contrib[i] = ss.divPair(i, best, k, p.Lambda)
		}
	}
	for len(r) < k {
		if err := checkpoint(ctx, "select:iadu-div"); err != nil {
			return Selection{}, err
		}
		bi := -1
		for i := 0; i < n; i++ {
			if !used[i] && (bi < 0 || contrib[i] > contrib[bi]) {
				bi = i
			}
		}
		r = append(r, bi)
		used[bi] = true
		if len(r) == k {
			break
		}
		for i := 0; i < n; i++ {
			if !used[i] {
				contrib[i] += ss.divPair(i, bi, k, p.Lambda)
			}
		}
	}
	return Selection{Indices: r, HPF: ss.Evaluate(r, p.Lambda).Total}, nil
}

// ABPDiv is the diversification-only variant of ABP: best unused pair by
// the diversification objective, lazily invalidated.
func ABPDiv(ss *ScoreSet, p Params) (Selection, error) {
	return abpDivCtx(context.Background(), ss, p)
}

func abpDivCtx(ctx context.Context, ss *ScoreSet, p Params) (Selection, error) {
	n := ss.K()
	if err := p.validate(n); err != nil {
		return Selection{}, err
	}
	k := p.K
	if k == 1 {
		return iaduDivCtx(ctx, ss, p)
	}
	type pair struct {
		i, j  int32
		score float64
	}
	ps := make([]pair, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		if err := checkpoint(ctx, "select:abp-div"); err != nil {
			return Selection{}, err
		}
		for j := i + 1; j < n; j++ {
			ps = append(ps, pair{int32(i), int32(j), ss.divPair(i, j, k, p.Lambda)})
		}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].score > ps[b].score })
	r := make([]int, 0, k)
	used := make([]bool, n)
	for _, pr := range ps {
		if len(r)+2 > k {
			break
		}
		if used[pr.i] || used[pr.j] {
			continue
		}
		used[pr.i], used[pr.j] = true, true
		r = append(r, int(pr.i), int(pr.j))
	}
	if len(r) < k {
		bi := -1
		var bc float64
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			var c float64
			for _, j := range r {
				c += ss.divPair(i, j, k, p.Lambda)
			}
			if bi < 0 || c > bc {
				bi, bc = i, c
			}
		}
		r = append(r, bi)
	}
	return Selection{Indices: r, HPF: ss.Evaluate(r, p.Lambda).Total}, nil
}

// Exact solves Problem 1 by enumerating every k-subset of S and returning
// the one with maximum HPF(R). It is exponential and guarded: instances
// with C(K, k) above ~2 million subsets return ErrTooLarge. Used to
// validate the greedy algorithms' approximation quality on small inputs.
func Exact(ss *ScoreSet, p Params) (Selection, error) {
	return exactCtx(context.Background(), ss, p)
}

func exactCtx(ctx context.Context, ss *ScoreSet, p Params) (Selection, error) {
	n := ss.K()
	if err := p.validate(n); err != nil {
		return Selection{}, err
	}
	if binomialExceeds(n, p.K, 2_000_000) {
		return Selection{}, ErrTooLarge
	}
	k := p.K
	cur := make([]int, k)
	best := Selection{HPF: negInf}
	var evals int
	var ctxErr error
	// rec returns false to abort the enumeration after a checkpoint fires.
	var rec func(start, depth int) bool
	rec = func(start, depth int) bool {
		if depth == k {
			if evals%4096 == 0 {
				if err := checkpoint(ctx, "select:exact"); err != nil {
					ctxErr = err
					return false
				}
			}
			evals++
			if h := ss.Evaluate(cur, p.Lambda).Total; h > best.HPF {
				best.HPF = h
				best.Indices = append([]int(nil), cur...)
			}
			return true
		}
		for i := start; i <= n-(k-depth); i++ {
			cur[depth] = i
			if !rec(i+1, depth+1) {
				return false
			}
		}
		return true
	}
	if !rec(0, 0) {
		return Selection{}, ctxErr
	}
	return best, nil
}

const negInf = -1e308

// binomialExceeds reports whether C(n, k) > limit, without overflowing.
func binomialExceeds(n, k, limit int) bool {
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c *= float64(n-i) / float64(i+1)
		if c > float64(limit) {
			return true
		}
	}
	return false
}
