package core

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/textctx"
)

// IndependentSetInstance performs the polynomial reduction of Theorem 4.1:
// it converts an undirected graph (adjacency lists over vertices 0..n−1)
// into an instance of the proportional selection problem such that, with
// λ = 1 and γ = 0, the k-subset maximising HPF(R) restricted to the first
// n places is a k-independent set of the graph whenever one exists.
//
// Construction: every vertex becomes a place whose context holds one item
// per incident edge; vertices below the maximum degree d are padded with
// new places (one shared item with the vertex plus d−1 unique items) so
// that every original place has exactly d context items and the same
// maximal pCS score. The first len(adj) returned places correspond to the
// graph's vertices in order.
func IndependentSetInstance(adj [][]int, dict *textctx.Dict) ([]Place, error) {
	n := len(adj)
	if dict == nil {
		dict = textctx.NewDict()
	}
	// Validate symmetry and compute degrees.
	deg := make([]int, n)
	for u, nbrs := range adj {
		for _, v := range nbrs {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("core: edge (%d, %d) out of range", u, v)
			}
			if v == u {
				return nil, fmt.Errorf("core: self-loop at vertex %d", u)
			}
			deg[u]++
		}
	}
	d := 0
	for _, dg := range deg {
		if dg > d {
			d = dg
		}
	}

	ctx := make([][]string, n)
	for u, nbrs := range adj {
		for _, v := range nbrs {
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			ctx[u] = append(ctx[u], fmt.Sprintf("e_%d_%d", a, b))
		}
	}

	places := make([]Place, 0, n)
	loc := geo.Pt(0, 0) // locations are irrelevant under γ = 0
	for u := 0; u < n; u++ {
		places = append(places, Place{
			ID:      fmt.Sprintf("v%d", u),
			Loc:     loc,
			Rel:     1,
			Context: textctx.NewSetFromStrings(dict, ctx[u]),
		})
	}
	// Pad every vertex with degree < d with d−deg(u) new places, each
	// sharing exactly one element with u and carrying d−1 unique ones.
	for u := 0; u < n; u++ {
		for t := deg[u]; t < d; t++ {
			items := []string{fmt.Sprintf("pad_%d_%d", u, t)}
			for x := 0; x < d-1; x++ {
				items = append(items, fmt.Sprintf("uniq_%d_%d_%d", u, t, x))
			}
			places[u].Context = textctx.NewSetFromStrings(dict,
				append(places[u].Context.Words(dict), items[0]))
			places = append(places, Place{
				ID:      fmt.Sprintf("pad%d_%d", u, t),
				Loc:     loc,
				Rel:     1,
				Context: textctx.NewSetFromStrings(dict, items),
			})
		}
	}
	return places, nil
}
