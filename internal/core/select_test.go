package core

import "testing"

func TestSelectDispatch(t *testing.T) {
	ss := defaultScoreSet(t, 20, 51)
	p := Params{K: 5, Lambda: 0.5, Gamma: 0.5}
	for _, alg := range Algorithms() {
		sel, err := Select(alg, ss, p)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		selectionOK(t, string(alg), sel, 5, ss.K())
	}
	if _, err := Select("sorcery", ss, p); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestSelectMatchesDirectCalls(t *testing.T) {
	ss := defaultScoreSet(t, 25, 53)
	p := Params{K: 6, Lambda: 0.5, Gamma: 0.5}
	direct, err := ABP(ss, p)
	if err != nil {
		t.Fatal(err)
	}
	viaName, err := Select(AlgABP, ss, p)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(direct.Indices, viaName.Indices) {
		t.Error("dispatch result differs from direct call")
	}
}

func TestAlgorithmsSortedAndComplete(t *testing.T) {
	algs := Algorithms()
	if len(algs) != 9 {
		t.Fatalf("expected 9 registered algorithms, got %d: %v", len(algs), algs)
	}
	for i := 1; i < len(algs); i++ {
		if algs[i] <= algs[i-1] {
			t.Fatal("Algorithms not sorted")
		}
	}
}
