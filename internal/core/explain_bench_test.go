package core

import (
	"context"
	"testing"

	"repro/internal/explain"
	"repro/internal/geo"
	"repro/internal/textctx"
)

// The explain collector must be zero-overhead when disabled: every extra
// scan (runner-up search, posting counters, error sampling) is gated on a
// nil check of the context-carried collector. These benchmarks compare the
// plain path against the collecting path; run with
//
//	go test ./internal/core -bench Explain -benchmem
//
// The *Off variants should match the pre-instrumentation numbers.

func benchSelect(b *testing.B, alg Algorithm, ctx context.Context) {
	b.Helper()
	places := explainPlaces(200, 7)
	ss, err := ComputeScores(geo.Pt(50, 50), places, ScoreOptions{Gamma: 0.5, Spatial: SpatialSquaredGrid})
	if err != nil {
		b.Fatal(err)
	}
	p := Params{K: 20, Lambda: 0.5, Gamma: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelectCtx(ctx, alg, ss, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExplainIAdUOff(b *testing.B) {
	benchSelect(b, AlgIAdU, context.Background())
}

func BenchmarkExplainIAdUOn(b *testing.B) {
	benchSelect(b, AlgIAdU, explain.WithCollector(context.Background(), explain.New()))
}

func BenchmarkExplainABPOff(b *testing.B) {
	benchSelect(b, AlgABP, context.Background())
}

func BenchmarkExplainABPOn(b *testing.B) {
	benchSelect(b, AlgABP, explain.WithCollector(context.Background(), explain.New()))
}

func benchMSJH(b *testing.B, ctx context.Context) {
	b.Helper()
	places := explainPlaces(200, 7)
	sets := make([]textctx.Set, len(places))
	for i := range places {
		sets[i] = places[i].Context
	}
	eng := textctx.MSJHEngine{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.AllPairsCtx(ctx, sets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExplainMSJHOff(b *testing.B) {
	benchMSJH(b, context.Background())
}

func BenchmarkExplainMSJHOn(b *testing.B) {
	benchMSJH(b, explain.WithCollector(context.Background(), explain.New()))
}
