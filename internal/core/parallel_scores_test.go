package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/telemetry"
	"repro/internal/textctx"
)

// tiePronePlaces builds an instance designed to surface any serial-vs-
// parallel float divergence: clusters of places sharing one exact
// location (the den == 0 spatial path and exact score ties), shared
// contexts (contextual ties), and shared relevance values.
func tiePronePlaces(n int) []Place {
	ctxA := textctx.NewSet(1, 2, 3)
	ctxB := textctx.NewSet(2, 3, 4, 5)
	places := make([]Place, n)
	for i := range places {
		p := Place{ID: word(i), Rel: 0.5}
		switch i % 3 {
		case 0:
			p.Loc, p.Context = geo.Pt(0, 0), ctxA // coincides with q
		case 1:
			p.Loc, p.Context = geo.Pt(2, 1), ctxA
		default:
			p.Loc, p.Context, p.Rel = geo.Pt(2, 1), ctxB, 0.9
		}
		places[i] = p
	}
	return places
}

// requireSameScoreSet asserts two score sets are bit-identical: every
// vector entry and every pairwise matrix entry must share float bits.
func requireSameScoreSet(t *testing.T, label string, a, b *ScoreSet) {
	t.Helper()
	n := a.K()
	if b.K() != n {
		t.Fatalf("%s: sizes differ: %d vs %d", label, n, b.K())
	}
	vecs := [][2][]float64{{a.PCS, b.PCS}, {a.PSS, b.PSS}, {a.PFS, b.PFS}}
	names := []string{"PCS", "PSS", "PFS"}
	for v, pair := range vecs {
		for i := range pair[0] {
			if math.Float64bits(pair[0][i]) != math.Float64bits(pair[1][i]) {
				t.Fatalf("%s: %s[%d] bits differ: %v vs %v", label, names[v], i, pair[0][i], pair[1][i])
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Float64bits(a.SC.At(i, j)) != math.Float64bits(b.SC.At(i, j)) {
				t.Fatalf("%s: SC(%d,%d) bits differ", label, i, j)
			}
			if math.Float64bits(a.SS.At(i, j)) != math.Float64bits(b.SS.At(i, j)) {
				t.Fatalf("%s: SS(%d,%d) bits differ", label, i, j)
			}
			if math.Float64bits(a.SF.At(i, j)) != math.Float64bits(b.SF.At(i, j)) {
				t.Fatalf("%s: SF(%d,%d) bits differ", label, i, j)
			}
		}
	}
}

// TestComputeScoresWorkersBitIdentical: Step 1 with Workers > 1 must
// produce the same score set, bit for bit, as the sequential path — the
// invariant that lets the engine share cache keys and memoised selections
// across worker settings. Covers random instances and the tie-prone
// instance, both spatial methods, and sizes straddling the parallel
// fallback thresholds.
func TestComputeScoresWorkersBitIdentical(t *testing.T) {
	q := geo.Pt(0, 0)
	rng := rand.New(rand.NewSource(9))
	instances := map[string][]Place{
		"random40":   makePlaces(rng, q, 40, 12, 40, 0.2),
		"random200":  makePlaces(rng, q, 200, 12, 40, 0.2),
		"tieprone90": tiePronePlaces(90),
	}
	for name, places := range instances {
		for _, spatial := range []SpatialMethod{SpatialExact, SpatialSquaredGrid} {
			serial := mustScores(t, q, places, ScoreOptions{Gamma: 0.5, Spatial: spatial})
			for _, workers := range []int{2, 4, 7} {
				par := mustScores(t, q, places, ScoreOptions{Gamma: 0.5, Spatial: spatial, Workers: workers})
				requireSameScoreSet(t, name+"/"+spatial.String(), serial, par)
			}
		}
	}
}

// TestSelectionTiesBreakIdenticallySerialParallel: the float-bit
// canonicalisation property behind the engine's worker-agnostic selection
// memo — on a tie-heavy instance, Step 2 over a parallel-built score set
// must select exactly what it selects over the serial one.
func TestSelectionTiesBreakIdenticallySerialParallel(t *testing.T) {
	q := geo.Pt(0, 0)
	places := tiePronePlaces(90)
	serial := mustScores(t, q, places, ScoreOptions{Gamma: 0.5})
	par := mustScores(t, q, places, ScoreOptions{Gamma: 0.5, Workers: 4})
	for _, alg := range []Algorithm{AlgABP, AlgABPRescan, AlgIAdU, AlgIAdUHeap} {
		p := Params{K: 9, Lambda: 0.5, Gamma: 0.5}
		a, err := Select(alg, serial, p)
		if err != nil {
			t.Fatalf("%s serial: %v", alg, err)
		}
		b, err := Select(alg, par, p)
		if err != nil {
			t.Fatalf("%s parallel: %v", alg, err)
		}
		if !equalInts(a.Indices, b.Indices) {
			t.Errorf("%s: serial selected %v, parallel-scored selected %v", alg, a.Indices, b.Indices)
		}
		if math.Float64bits(a.HPF) != math.Float64bits(b.HPF) {
			t.Errorf("%s: HPF bits differ: %v vs %v", alg, a.HPF, b.HPF)
		}
	}
}

// TestStep1SpanDedupeUnderParallelFallback: each Step-1 stage must be
// recorded exactly once per query, whether the parallel variant runs its
// fan-out or falls back to the sequential implementation under small
// inputs. A double span would double the stage's latency attribution in
// traces and the /metrics stage histograms.
func TestStep1SpanDedupeUnderParallelFallback(t *testing.T) {
	q := geo.Pt(0, 0)
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct {
		name    string
		n       int // 40 < the grid fallback threshold 64 ≤ 100
		workers int
		spatial SpatialMethod
	}{
		{"exact/fallback", 40, 4, SpatialExact},
		{"exact/parallel", 100, 4, SpatialExact},
		{"exact/serial", 100, 0, SpatialExact},
		{"squared/fallback", 40, 4, SpatialSquaredGrid},
		{"squared/parallel", 100, 4, SpatialSquaredGrid},
		{"squared/serial", 100, 0, SpatialSquaredGrid},
	} {
		places := makePlaces(rng, q, tc.n, 12, 40, 0.2)
		tr := telemetry.NewTrace()
		ctx := telemetry.WithTrace(context.Background(), tr)
		opt := ScoreOptions{Gamma: 0.5, Spatial: tc.spatial, Workers: tc.workers}
		if _, err := ComputeScoresCtx(ctx, q, places, opt); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		counts := map[string]int{}
		for _, sp := range tr.Spans() {
			counts[sp.Stage]++
		}
		if counts[telemetry.StagePSS] != 1 {
			t.Errorf("%s: %d pSS spans, want exactly 1", tc.name, counts[telemetry.StagePSS])
		}
		if counts[telemetry.StagePCS] != 1 {
			t.Errorf("%s: %d pCS spans, want exactly 1", tc.name, counts[telemetry.StagePCS])
		}
	}
}
