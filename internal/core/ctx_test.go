package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/textctx"
)

func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func expiredCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	t.Cleanup(cancel)
	<-ctx.Done()
	return ctx
}

func TestComputeScoresCtxCancelled(t *testing.T) {
	q := geo.Pt(0, 0)
	places := makePlaces(rand.New(rand.NewSource(1)), q, 64, 12, 40, 0.2)
	for _, spatial := range []SpatialMethod{SpatialExact, SpatialSquaredGrid, SpatialRadialGrid} {
		_, err := ComputeScoresCtx(cancelledCtx(), q, places, ScoreOptions{Gamma: 0.5, Spatial: spatial})
		if !errors.Is(err, ErrCancelled) {
			t.Errorf("%v: err = %v, want ErrCancelled", spatial, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want to match context.Canceled too", spatial, err)
		}
	}
}

func TestComputeScoresCtxDeadline(t *testing.T) {
	q := geo.Pt(0, 0)
	places := makePlaces(rand.New(rand.NewSource(2)), q, 64, 12, 40, 0.2)
	_, err := ComputeScoresCtx(expiredCtx(t), q, places, ScoreOptions{Gamma: 0.5})
	if !errors.Is(err, ErrDeadline) {
		t.Errorf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want to match context.DeadlineExceeded too", err)
	}
}

func TestComputeScoresCtxLiveContextSucceeds(t *testing.T) {
	q := geo.Pt(0, 0)
	places := makePlaces(rand.New(rand.NewSource(3)), q, 64, 12, 40, 0.2)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	ss, err := ComputeScoresCtx(ctx, q, places, ScoreOptions{Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ComputeScores(q, places, ScoreOptions{Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ss.PFS {
		if ss.PFS[i] != ref.PFS[i] {
			t.Fatalf("PFS[%d] = %v, want %v (ctx variant must match)", i, ss.PFS[i], ref.PFS[i])
		}
	}
}

func TestSelectCtxCancelledAllAlgorithms(t *testing.T) {
	ss := defaultScoreSet(t, 40, 4)
	p := Params{K: 5, Lambda: 0.5, Gamma: 0.5}
	for _, alg := range Algorithms() {
		_, err := SelectCtx(cancelledCtx(), alg, ss, p)
		if !errors.Is(err, ErrCancelled) {
			t.Errorf("%s: err = %v, want ErrCancelled", alg, err)
		}
	}
}

func TestSelectCtxDeadlineAllAlgorithms(t *testing.T) {
	ss := defaultScoreSet(t, 40, 5)
	p := Params{K: 5, Lambda: 0.5, Gamma: 0.5}
	for _, alg := range Algorithms() {
		_, err := SelectCtx(expiredCtx(t), alg, ss, p)
		if !errors.Is(err, ErrDeadline) {
			t.Errorf("%s: err = %v, want ErrDeadline", alg, err)
		}
	}
}

func TestSelectCtxLiveContextMatchesSelect(t *testing.T) {
	ss := defaultScoreSet(t, 40, 6)
	p := Params{K: 5, Lambda: 0.5, Gamma: 0.5}
	for _, alg := range Algorithms() {
		want, err := Select(alg, ss, p)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		got, err := SelectCtx(context.Background(), alg, ss, p)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if got.HPF != want.HPF {
			t.Errorf("%s: HPF = %v, want %v", alg, got.HPF, want.HPF)
		}
	}
}

// TestCancellationObservedMidScoring injects a fault hook that cancels the
// context at the first scoring checkpoint: the pipeline must abandon work
// at that same checkpoint instead of completing Step 1.
func TestCancellationObservedMidScoring(t *testing.T) {
	q := geo.Pt(0, 0)
	places := makePlaces(rand.New(rand.NewSource(7)), q, 64, 12, 40, 0.2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	restore := SetCheckpointHook(func(stage string) {
		if stage == "scores:contextual" {
			cancel()
		}
	})
	defer restore()
	_, err := ComputeScoresCtx(ctx, q, places, ScoreOptions{Gamma: 0.5})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled observed at the cancelling checkpoint", err)
	}
}

// TestCancellationObservedMidSelection cancels inside the greedy loop of
// every registered algorithm and requires the loop to stop there.
func TestCancellationObservedMidSelection(t *testing.T) {
	ss := defaultScoreSet(t, 40, 8)
	p := Params{K: 5, Lambda: 0.5, Gamma: 0.5}
	for _, alg := range Algorithms() {
		ctx, cancel := context.WithCancel(context.Background())
		restore := SetCheckpointHook(func(stage string) {
			if len(stage) > 7 && stage[:7] == "select:" {
				cancel()
			}
		})
		_, err := SelectCtx(ctx, alg, ss, p)
		restore()
		cancel()
		if !errors.Is(err, ErrCancelled) {
			t.Errorf("%s: err = %v, want ErrCancelled from mid-selection cancel", alg, err)
		}
	}
}

// TestCheckpointHookStages records the stages the pipeline passes through,
// pinning the fault-injection surface the serving tests rely on.
func TestCheckpointHookStages(t *testing.T) {
	q := geo.Pt(0, 0)
	places := makePlaces(rand.New(rand.NewSource(9)), q, 48, 12, 40, 0.2)
	seen := map[string]bool{}
	restore := SetCheckpointHook(func(stage string) { seen[stage] = true })
	defer restore()
	ss, err := ComputeScoresCtx(context.Background(), q, places, ScoreOptions{Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SelectCtx(context.Background(), AlgABP, ss, Params{K: 5, Lambda: 0.5, Gamma: 0.5}); err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"scores:start", "scores:contextual", "scores:spatial", "select:abp"} {
		if !seen[stage] {
			t.Errorf("checkpoint stage %q never fired (saw %v)", stage, seen)
		}
	}
}

func TestCtxErrNilAndLive(t *testing.T) {
	if err := CtxErr(nil); err != nil {
		t.Errorf("CtxErr(nil) = %v", err)
	}
	if err := CtxErr(context.Background()); err != nil {
		t.Errorf("CtxErr(background) = %v", err)
	}
}

// TestContextEngineCancellation pins that the default contextual engine
// supports in-loop cancellation (the quadratic Step-1 loop the tentpole
// targets).
func TestContextEngineCancellation(t *testing.T) {
	var engine textctx.JaccardEngine = textctx.MSJHEngine{}
	ce, ok := engine.(textctx.ContextEngine)
	if !ok {
		t.Fatal("MSJHEngine does not implement ContextEngine")
	}
	sets := make([]textctx.Set, 100)
	for i := range sets {
		sets[i] = textctx.NewSet(textctx.ItemID(i % 7))
	}
	if _, err := ce.AllPairsCtx(cancelledCtx(), sets); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
