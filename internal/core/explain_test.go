package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/explain"
	"repro/internal/geo"
	"repro/internal/textctx"
)

// explainPlaces builds a deterministic random instance large enough that
// greedy rounds have real alternatives.
func explainPlaces(n int, seed int64) []Place {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Place, n)
	for i := range out {
		items := make([]textctx.ItemID, 0, 8)
		for j := 0; j < 8; j++ {
			items = append(items, textctx.ItemID(rng.Intn(40)))
		}
		out[i] = Place{
			ID:      string(rune('A' + i%26)),
			Loc:     geo.Pt(rng.Float64()*100, rng.Float64()*100),
			Rel:     rng.Float64(),
			Context: textctx.NewSet(items...),
		}
	}
	return out
}

func explainScoreSet(t testing.TB, n int, spatial SpatialMethod) (*ScoreSet, *explain.Collector) {
	t.Helper()
	places := explainPlaces(n, 11)
	col := explain.New()
	ctx := explain.WithCollector(context.Background(), col)
	ss, err := ComputeScoresCtx(ctx, geo.Pt(50, 50), places, ScoreOptions{Gamma: 0.5, Spatial: spatial})
	if err != nil {
		t.Fatal(err)
	}
	return ss, col
}

// TestExplainStep1Collection checks that Step 1 under a collector records
// msJh pruning counters and squared-grid statistics with a sampled error.
func TestExplainStep1Collection(t *testing.T) {
	_, col := explainScoreSet(t, 60, SpatialSquaredGrid)
	rep := col.Report()

	p := rep.Pruning
	if p == nil {
		t.Fatal("no pruning stats collected")
	}
	if p.Engine != "msJh" {
		t.Errorf("Engine = %q, want msJh", p.Engine)
	}
	want := int64(60 * 59 / 2)
	if p.CandidatePairs != want {
		t.Errorf("CandidatePairs = %d, want %d", p.CandidatePairs, want)
	}
	if p.ComparedPairs <= 0 || p.ComparedPairs > want {
		t.Errorf("ComparedPairs = %d outside (0, %d]", p.ComparedPairs, want)
	}
	if p.PrunedPairs != want-p.ComparedPairs {
		t.Errorf("PrunedPairs = %d, want candidate − compared = %d", p.PrunedPairs, want-p.ComparedPairs)
	}
	if p.PostingsScanned <= 0 {
		t.Errorf("PostingsScanned = %d, want > 0", p.PostingsScanned)
	}

	g := rep.Grid
	if g == nil {
		t.Fatal("no grid stats collected")
	}
	if g.Kind != "squared" || g.OccupiedCells <= 0 || g.OccupiedCells > g.Cells {
		t.Errorf("grid stats implausible: %+v", g)
	}
	if g.SampledPairs <= 0 {
		t.Errorf("SampledPairs = %d, want > 0", g.SampledPairs)
	}
	if g.MeanAbsError < 0 || g.MaxAbsError < g.MeanAbsError {
		t.Errorf("error sample implausible: mean %v max %v", g.MeanAbsError, g.MaxAbsError)
	}
}

// TestExplainExactMethodRecordsKind: the exact path records its kind with
// no sampled error (there is no approximation to measure).
func TestExplainExactMethodRecordsKind(t *testing.T) {
	_, col := explainScoreSet(t, 30, SpatialExact)
	g := col.Report().Grid
	if g == nil || g.Kind != "exact" || g.SampledPairs != 0 {
		t.Errorf("Grid = %+v, want kind exact with zero sampled pairs", g)
	}
}

// TestExplainGreedyTrace checks the per-round traces of IAdU and ABP:
// round numbering, chosen-set sizes, gains ordered against runner-ups,
// and agreement with the returned selection.
func TestExplainGreedyTrace(t *testing.T) {
	ss, _ := explainScoreSet(t, 60, SpatialSquaredGrid)
	p := Params{K: 10, Lambda: 0.5, Gamma: 0.5}

	t.Run("iadu", func(t *testing.T) {
		col := explain.New()
		ctx := explain.WithCollector(context.Background(), col)
		sel, err := SelectCtx(ctx, AlgIAdU, ss, p)
		if err != nil {
			t.Fatal(err)
		}
		rep := col.Report()
		if rep.Algorithm != "iadu" {
			t.Errorf("Algorithm = %q, want iadu", rep.Algorithm)
		}
		if len(rep.Rounds) != p.K {
			t.Fatalf("IAdU recorded %d rounds, want %d", len(rep.Rounds), p.K)
		}
		var traced []int
		for i, r := range rep.Rounds {
			if r.Round != i+1 {
				t.Errorf("round %d numbered %d", i, r.Round)
			}
			if len(r.Chosen) != 1 || len(r.ChosenIDs) != 1 {
				t.Errorf("round %d chose %v (%v), want one place", i, r.Chosen, r.ChosenIDs)
			}
			if len(r.RunnerUp) == 1 && r.Gain < r.RunnerUpGain {
				t.Errorf("round %d gain %v below runner-up %v", i, r.Gain, r.RunnerUpGain)
			}
			traced = append(traced, r.Chosen...)
		}
		for i := range traced {
			if traced[i] != sel.Indices[i] {
				t.Fatalf("trace %v disagrees with selection %v", traced, sel.Indices)
			}
		}
	})

	t.Run("abp", func(t *testing.T) {
		col := explain.New()
		ctx := explain.WithCollector(context.Background(), col)
		sel, err := SelectCtx(ctx, AlgABP, ss, p)
		if err != nil {
			t.Fatal(err)
		}
		rep := col.Report()
		if rep.Algorithm != "abp" {
			t.Errorf("Algorithm = %q, want abp", rep.Algorithm)
		}
		if len(rep.Rounds) != p.K/2 {
			t.Fatalf("ABP recorded %d rounds for even k=%d, want %d", len(rep.Rounds), p.K, p.K/2)
		}
		var traced []int
		for i, r := range rep.Rounds {
			if len(r.Chosen) != 2 {
				t.Errorf("round %d chose %v, want a pair", i, r.Chosen)
			}
			if len(r.RunnerUp) == 2 && r.Gain < r.RunnerUpGain {
				t.Errorf("round %d pair gain %v below runner-up %v", i, r.Gain, r.RunnerUpGain)
			}
			traced = append(traced, r.Chosen...)
		}
		for i := range traced {
			if traced[i] != sel.Indices[i] {
				t.Fatalf("trace %v disagrees with selection %v", traced, sel.Indices)
			}
		}
	})

	t.Run("abp-odd-k", func(t *testing.T) {
		col := explain.New()
		ctx := explain.WithCollector(context.Background(), col)
		sel, err := SelectCtx(ctx, AlgABP, ss, Params{K: 7, Lambda: 0.5, Gamma: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		rounds := col.Report().Rounds
		if len(rounds) != 4 { // 3 pairs + 1 single
			t.Fatalf("recorded %d rounds for k=7, want 4", len(rounds))
		}
		last := rounds[len(rounds)-1]
		if len(last.Chosen) != 1 || last.Chosen[0] != sel.Indices[6] {
			t.Errorf("odd-k round = %+v, want the final single pick %d", last, sel.Indices[6])
		}
	})
}

// TestExplainCollectionDoesNotChangeResults: selections computed with and
// without a collector are identical (introspection is read-only).
func TestExplainCollectionDoesNotChangeResults(t *testing.T) {
	ss, _ := explainScoreSet(t, 50, SpatialSquaredGrid)
	p := Params{K: 9, Lambda: 0.5, Gamma: 0.5}
	for _, alg := range []Algorithm{AlgIAdU, AlgABP} {
		plain, err := Select(alg, ss, p)
		if err != nil {
			t.Fatal(err)
		}
		ctx := explain.WithCollector(context.Background(), explain.New())
		collected, err := SelectCtx(ctx, alg, ss, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(plain.Indices) != len(collected.Indices) || plain.HPF != collected.HPF {
			t.Errorf("%s: collector changed the result: %v vs %v", alg, plain, collected)
		}
		for i := range plain.Indices {
			if plain.Indices[i] != collected.Indices[i] {
				t.Errorf("%s: collector changed the selection order: %v vs %v", alg, plain.Indices, collected.Indices)
			}
		}
	}
}
