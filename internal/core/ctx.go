package core

import (
	"context"
	"errors"
	"sync/atomic"
)

// Cancellation sentinels returned by the context-accepting entry points
// (ComputeScoresCtx, SelectCtx). Both wrap the underlying context error,
// so errors.Is also matches context.Canceled / context.DeadlineExceeded.
var (
	// ErrCancelled reports that the caller's context was cancelled while
	// a computation was in progress (e.g. the client hung up).
	ErrCancelled = errors.New("core: computation cancelled")
	// ErrDeadline reports that the caller's deadline budget expired while
	// a computation was in progress.
	ErrDeadline = errors.New("core: computation deadline exceeded")
)

// ctxError ties one of the package sentinels to the context error that
// produced it; both are reachable through errors.Is/As.
type ctxError struct {
	sentinel error
	cause    error
}

func (e *ctxError) Error() string   { return e.sentinel.Error() + ": " + e.cause.Error() }
func (e *ctxError) Unwrap() []error { return []error{e.sentinel, e.cause} }

// CtxErr maps the termination state of ctx onto the package's typed
// errors: nil while ctx is live, ErrDeadline after its deadline expired,
// ErrCancelled after any other cancellation.
func CtxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	err := ctx.Err()
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return &ctxError{sentinel: ErrDeadline, cause: err}
	default:
		return &ctxError{sentinel: ErrCancelled, cause: err}
	}
}

// checkpointHook, when non-nil, runs at every cancellation checkpoint in
// the scoring and selection loops. It exists for fault injection: tests
// install hooks that sleep (to widen race windows), panic (to exercise
// recovery middleware), or cancel contexts mid-computation.
var checkpointHook atomic.Pointer[func(stage string)]

// SetCheckpointHook installs h as the fault-injection hook called at every
// cancellation checkpoint, identified by a stage label such as
// "scores:contextual" or "select:abp". It returns a restore function that
// removes the hook. Passing nil removes any installed hook. Safe for
// concurrent use; intended for tests only.
func SetCheckpointHook(h func(stage string)) (restore func()) {
	if h == nil {
		checkpointHook.Store(nil)
		return func() {}
	}
	checkpointHook.Store(&h)
	return func() { checkpointHook.Store(nil) }
}

// checkpoint is the cooperative cancellation point placed on the outer
// loops of the quadratic Step-1/Step-2 work: it fires the fault-injection
// hook (if any) and reports whether ctx has terminated.
func checkpoint(ctx context.Context, stage string) error {
	if h := checkpointHook.Load(); h != nil {
		(*h)(stage)
	}
	return CtxErr(ctx)
}
