package core

import (
	"context"
	"fmt"

	"repro/internal/explain"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/pairs"
	"repro/internal/telemetry"
	"repro/internal/textctx"
)

// explainErrSamples is the number of random place pairs on which the grid
// approximation error is estimated when an explain collector is attached
// (exact sS recomputed and compared against the approximate matrix).
const explainErrSamples = 64

// SpatialMethod selects how Step 1 computes the spatial similarities.
type SpatialMethod int

const (
	// SpatialExact computes sS for every pair directly (the baseline of
	// Section 7, ~20 operations per pair).
	SpatialExact SpatialMethod = iota
	// SpatialSquaredGrid approximates points by squared-grid cell centres
	// (Section 7.1.1) with precomputed cell-centre similarities.
	SpatialSquaredGrid
	// SpatialRadialGrid approximates points by radial-grid sector
	// representatives (Section 7.1.2).
	SpatialRadialGrid
	// SpatialCustom delegates to ScoreOptions.CustomSpatial — e.g. a
	// road-network scorer (the paper's future-work extension).
	SpatialCustom
)

// String implements fmt.Stringer.
func (m SpatialMethod) String() string {
	switch m {
	case SpatialExact:
		return "exact"
	case SpatialSquaredGrid:
		return "squared-grid"
	case SpatialRadialGrid:
		return "radial-grid"
	case SpatialCustom:
		return "custom"
	default:
		return fmt.Sprintf("SpatialMethod(%d)", int(m))
	}
}

// ScoreOptions configures Step 1 of the framework.
type ScoreOptions struct {
	// Contextual is the all-pairs Jaccard engine; nil means msJh, the
	// paper's recommended choice.
	Contextual textctx.JaccardEngine
	// Spatial selects exact or grid-based spatial similarity.
	Spatial SpatialMethod
	// GridCells is |G| (or |R| for the radial grid); 0 means ≈ K, the
	// paper's recommended setting.
	GridCells int
	// SquaredTable optionally supplies precomputed cell-centre scores.
	SquaredTable *grid.SquaredTable
	// RadialTable optionally supplies precomputed sector scores.
	RadialTable *grid.RadialTable
	// Gamma is the weight γ of spatial vs contextual similarity (Eq. 8,
	// 13); the paper's default is 0.5.
	Gamma float64
	// CustomSpatial supplies the pairwise spatial similarity matrix when
	// Spatial is SpatialCustom. It must return an n×n matrix with values
	// in [0, 1]; pSS is derived from its row sums. Used to swap Euclidean
	// Ptolemy similarity for alternatives such as road-network distance.
	CustomSpatial func(q geo.Point, places []Place) (*pairs.Matrix, error)
	// Workers fans the quadratic Step-1 fills (contextual all-pairs when
	// Contextual is nil, the exact spatial all-pairs, and the squared-grid
	// matrix fill) out over this many goroutines. ≤ 1 keeps every phase
	// sequential; the parallel variants are bit-identical to the
	// sequential ones, so Workers never changes any score. A non-nil
	// Contextual engine is used as configured — it carries its own
	// parallelism if any.
	Workers int
}

// ScoreSet is the Step-1 output: every per-place and pairwise score the
// greedy algorithms need, computed once and reused (Section 5).
type ScoreSet struct {
	// Places is the retrieved set S in scoring order.
	Places []Place
	// Q is the query location.
	Q geo.Point
	// Gamma is the γ the combined scores were built with.
	Gamma float64
	// PCS[i] is pCS(p_i) (Eq. 3); PSS[i] is pSS(p_i) (Eq. 6).
	PCS, PSS []float64
	// PFS[i] is pFS(p_i) = (1−γ)·pCS + γ·pSS (Eq. 11).
	PFS []float64
	// SC and SS are the pairwise contextual and spatial similarity
	// caches; SF is the γ-weighted combination (Eq. 13).
	SC, SS, SF *pairs.Matrix
}

// K returns |S|, the number of scored places.
func (ss *ScoreSet) K() int { return len(ss.Places) }

// ComputeScores runs Step 1 of the framework: it computes the pairwise
// contextual and spatial similarities of all places with the configured
// engines, caches them, and derives the pCS, pSS and pFS vectors.
func ComputeScores(q geo.Point, places []Place, opt ScoreOptions) (*ScoreSet, error) {
	return ComputeScoresCtx(context.Background(), q, places, opt)
}

// ComputeScoresCtx is ComputeScores with cooperative cancellation: the
// quadratic all-pairs phases poll ctx (directly when the configured
// engines support it, at stage boundaries otherwise) and abandon the
// computation as soon as ctx terminates, returning an error matching
// ErrCancelled or ErrDeadline. No goroutines outlive the call.
func ComputeScoresCtx(ctx context.Context, q geo.Point, places []Place, opt ScoreOptions) (*ScoreSet, error) {
	if err := checkpoint(ctx, "scores:start"); err != nil {
		return nil, err
	}
	if !q.Valid() {
		return nil, fmt.Errorf("core: invalid query location %v", q)
	}
	for i := range places {
		if err := places[i].Validate(); err != nil {
			return nil, fmt.Errorf("place %d: %w", i, err)
		}
	}
	if opt.Gamma < 0 || opt.Gamma > 1 || opt.Gamma != opt.Gamma {
		return nil, fmt.Errorf("core: γ = %v outside [0, 1]", opt.Gamma)
	}
	engine := opt.Contextual
	if engine == nil {
		if opt.Workers > 1 {
			engine = textctx.MSJHParallelEngine{Workers: opt.Workers}
		} else {
			engine = textctx.MSJHEngine{}
		}
	}

	sets := make([]textctx.Set, len(places))
	pts := make([]geo.Point, len(places))
	for i := range places {
		sets[i] = places[i].Context
		pts[i] = places[i].Loc
	}

	var sc *textctx.PairScores
	if ce, ok := engine.(textctx.ContextEngine); ok {
		var err error
		if sc, err = ce.AllPairsCtx(ctx, sets); err != nil {
			if ce := CtxErr(ctx); ce != nil {
				return nil, ce
			}
			return nil, err
		}
	} else {
		// Context-free engines cannot record the pCS span themselves
		// (ContextEngine implementations do, inside AllPairsCtx).
		endPCS := telemetry.StartSpan(ctx, telemetry.StagePCS)
		sc = engine.AllPairs(sets)
		endPCS()
	}
	if err := checkpoint(ctx, "scores:contextual"); err != nil {
		return nil, err
	}

	cells := opt.GridCells
	if cells <= 0 {
		cells = len(places) // the paper's |G| ≈ K rule
	}
	var sp *pairs.Matrix
	var pss []float64
	switch opt.Spatial {
	case SpatialExact:
		var err error
		if opt.Workers > 1 {
			// Bit-identical to the sequential fill; the parallel variant
			// records the pSS span itself (once, on whichever path runs).
			if sp, err = grid.AllPairsSpatialParallelCtx(ctx, q, pts, opt.Workers); err == nil {
				pss = sp.RowSums()
			}
		} else {
			pss, sp, err = grid.PSSBaselineCtx(ctx, q, pts)
		}
		if err != nil {
			if ce := CtxErr(ctx); ce != nil {
				return nil, ce
			}
			return nil, err
		}
		if ec := explain.FromContext(ctx); ec != nil {
			// Nothing is approximated; record the method so explain
			// output still names the spatial path taken.
			ec.SetGrid(explain.GridStats{Kind: "exact", Places: len(pts)})
		}
	case SpatialSquaredGrid:
		// The pSS span is recorded here at the stage boundary; the grid
		// fill variants (sequential or parallel, including the parallel
		// variant's sequential fallback) record none, so the stage is
		// counted exactly once. The exact path instead records it inside
		// grid.AllPairsSpatial(Parallel)Ctx.
		endPSS := telemetry.StartSpan(ctx, telemetry.StagePSS)
		g, err := grid.NewSquared(q, pts, cells)
		if err != nil {
			endPSS()
			return nil, err
		}
		pss = g.PSS(opt.SquaredTable)
		if opt.Workers > 1 {
			sp, err = g.ApproxAllPairsParallelCtx(ctx, opt.SquaredTable, opt.Workers)
		} else {
			sp, err = g.ApproxAllPairsCtx(ctx, opt.SquaredTable)
		}
		if err != nil {
			endPSS()
			if ce := CtxErr(ctx); ce != nil {
				return nil, ce
			}
			return nil, err
		}
		endPSS()
		if ec := explain.FromContext(ctx); ec != nil {
			ec.SetGrid(gridStats("squared", g.Cells(), g.OccupiedCells(), q, pts, sp))
		}
	case SpatialRadialGrid:
		endPSS := telemetry.StartSpan(ctx, telemetry.StagePSS)
		g, err := grid.NewRadial(q, pts, cells)
		if err != nil {
			endPSS()
			return nil, err
		}
		pss = g.PSS(opt.RadialTable)
		sp = g.ApproxAllPairs(opt.RadialTable)
		endPSS()
		if ec := explain.FromContext(ctx); ec != nil {
			ec.SetGrid(gridStats("radial", g.Sectors(), g.OccupiedSectors(), q, pts, sp))
		}
	case SpatialCustom:
		if opt.CustomSpatial == nil {
			return nil, fmt.Errorf("core: SpatialCustom requires CustomSpatial")
		}
		endPSS := telemetry.StartSpan(ctx, telemetry.StagePSS)
		var err error
		if sp, err = opt.CustomSpatial(q, places); err != nil {
			endPSS()
			return nil, err
		}
		endPSS()
		if sp == nil || sp.N() != len(places) {
			return nil, fmt.Errorf("core: CustomSpatial returned a matrix of wrong size")
		}
		pss = sp.RowSums()
		if ec := explain.FromContext(ctx); ec != nil {
			ec.SetGrid(explain.GridStats{Kind: "custom", Places: len(places)})
		}
	default:
		return nil, fmt.Errorf("core: unknown spatial method %v", opt.Spatial)
	}
	if err := checkpoint(ctx, "scores:spatial"); err != nil {
		return nil, err
	}

	pcs := sc.RowSums()
	pfs := make([]float64, len(places))
	for i := range pfs {
		pfs[i] = (1-opt.Gamma)*pcs[i] + opt.Gamma*pss[i]
	}
	return &ScoreSet{
		Places: places,
		Q:      q,
		Gamma:  opt.Gamma,
		PCS:    pcs,
		PSS:    pss,
		PFS:    pfs,
		SC:     sc,
		SS:     sp,
		SF:     pairs.Combine(sc, sp, 1-opt.Gamma, opt.Gamma),
	}, nil
}

// gridStats assembles the explain grid statistics for an approximating
// spatial method, including the sampled approximation error (exact sS
// recomputed on explainErrSamples random pairs). Call only under an
// explain collector: the sampling costs ~64 Ptolemy evaluations.
func gridStats(kind string, cells, occupied int, q geo.Point, pts []geo.Point, approx *pairs.Matrix) explain.GridStats {
	gs := explain.GridStats{Kind: kind, Cells: cells, OccupiedCells: occupied, Places: len(pts)}
	if occupied > 0 {
		gs.PlacesPerCell = float64(len(pts)) / float64(occupied)
	}
	es := grid.SampleApproxError(q, pts, approx, explainErrSamples)
	gs.SampledPairs, gs.MeanAbsError, gs.MaxAbsError = es.Pairs, es.MeanAbs, es.MaxAbs
	return gs
}

// SF returns the combined similarity sF(p_i, p_j) (Eq. 13).
func (ss *ScoreSet) sf(i, j int) float64 { return ss.SF.At(i, j) }

// PairHPF returns the pairwise holistic score HPF(p_i, p_j) of Eq. 15 for
// result size k and weight λ. It requires k ≥ 2 (the formula divides by
// k−1); selection of a single place degenerates to ranking by rF.
func (ss *ScoreSet) PairHPF(i, j, k int, lambda float64) float64 {
	K := len(ss.Places)
	kf := float64(k - 1)
	rel := (1 - lambda) * float64(K-k) * (ss.Places[i].Rel + ss.Places[j].Rel) / kf
	prop := lambda * ((ss.PFS[i]+ss.PFS[j])/kf - 2*ss.sf(i, j))
	return rel + prop
}

// PlaceHPF returns the per-place holistic score HPF(p_i) of Eq. 9 w.r.t.
// the (partial) result set R, using the identity
// HPF(p_i) = (1−λ)(K−k)·rF(p_i) + λ·(pFS(p_i) − pFR(p_i)).
func (ss *ScoreSet) PlaceHPF(i int, r []int, k int, lambda float64) float64 {
	K := len(ss.Places)
	var pfr float64
	for _, j := range r {
		if j != i {
			pfr += ss.sf(i, j)
		}
	}
	return (1-lambda)*float64(K-k)*ss.Places[i].Rel + lambda*(ss.PFS[i]-pfr)
}

// Evaluate computes HPF(R) (Eq. 10) for the candidate subset r, together
// with the Figure-11 breakdown. The subset's size is used as k.
func (ss *ScoreSet) Evaluate(r []int, lambda float64) Breakdown {
	K := len(ss.Places)
	k := len(r)
	var b Breakdown
	for _, i := range r {
		b.Rel += ss.Places[i].Rel
		var scr, ssr float64
		for _, j := range r {
			if j != i {
				scr += ss.SC.At(i, j)
				ssr += ss.SS.At(i, j)
			}
		}
		b.PC += ss.PCS[i] - scr // pC(p_i) = pCS − pCR (Eq. 2)
		b.PS += ss.PSS[i] - ssr // pS(p_i) = pSS − pSR (Eq. 5)
	}
	b.Rel *= float64(K - k)
	b.Total = (1-lambda)*b.Rel + lambda*((1-ss.Gamma)*b.PC+ss.Gamma*b.PS)
	return b
}

// EvaluatePairwise computes HPF(R) through the pairwise decomposition
// Σ_{p_i≠p_j∈R} HPF(p_i, p_j); by construction of Eq. 15 it equals
// Evaluate(r).Total for |r| ≥ 2. Exposed for testing the identity.
func (ss *ScoreSet) EvaluatePairwise(r []int, lambda float64) float64 {
	var total float64
	for a := 0; a < len(r); a++ {
		for b := a + 1; b < len(r); b++ {
			total += ss.PairHPF(r[a], r[b], len(r), lambda)
		}
	}
	return total
}
