package core

import (
	"context"
	"sort"

	"repro/internal/explain"
)

// explainRound records one greedy round on the context-carried collector,
// resolving place IDs from the score set. Call sites gate the extra work
// of finding runner-ups on ec != nil; this helper only shapes the event.
func explainRound(ec *explain.Collector, ss *ScoreSet, round int, chosen []int, gain float64, runnerUp []int, runnerUpGain float64) {
	r := explain.GreedyRound{Round: round, Chosen: chosen, Gain: gain}
	for _, i := range chosen {
		r.ChosenIDs = append(r.ChosenIDs, ss.Places[i].ID)
	}
	if len(runnerUp) > 0 {
		r.RunnerUp = runnerUp
		r.RunnerUpGain = runnerUpGain
		for _, i := range runnerUp {
			r.RunnerUpIDs = append(r.RunnerUpIDs, ss.Places[i].ID)
		}
	}
	ec.Round(r)
}

// IAdU implements the Incremental Add and Update greedy algorithm
// (Section 5, adapted from Cai et al.): it iteratively adds to R the place
// with the largest contribution cHPF (Eq. 17) — the relevance score for
// the first pick, then Σ_{p_j∈R} HPF(p_i, p_j) — updating the remaining
// contributions incrementally after every insertion. Complexity
// O(K·k + K log K); a 4-approximation when HPF satisfies the triangle
// inequality (Theorem 8.2).
func IAdU(ss *ScoreSet, p Params) (Selection, error) {
	return iaduCtx(context.Background(), ss, p)
}

func iaduCtx(ctx context.Context, ss *ScoreSet, p Params) (Selection, error) {
	n := ss.K()
	if err := p.validate(n); err != nil {
		return Selection{}, err
	}
	k := p.K
	r := make([]int, 0, k)
	used := make([]bool, n)
	ec := explain.FromContext(ctx)

	// First pick: R is empty, so cHPF(p_i) = rF(p_i).
	best := 0
	for i := 1; i < n; i++ {
		if ss.Places[i].Rel > ss.Places[best].Rel {
			best = i
		}
	}
	r = append(r, best)
	used[best] = true
	if ec != nil {
		// Runner-up of the first pick: the second-largest relevance.
		ru := -1
		for i := 0; i < n; i++ {
			if i != best && (ru < 0 || ss.Places[i].Rel > ss.Places[ru].Rel) {
				ru = i
			}
		}
		if ru >= 0 {
			explainRound(ec, ss, 1, []int{best}, ss.Places[best].Rel, []int{ru}, ss.Places[ru].Rel)
		} else {
			explainRound(ec, ss, 1, []int{best}, ss.Places[best].Rel, nil, 0)
		}
	}
	if k == 1 {
		return Selection{Indices: r, HPF: ss.Evaluate(r, p.Lambda).Total}, nil
	}

	// Contributions of all remaining places against the current R,
	// maintained incrementally: adding p_new adds HPF(p_i, p_new) to
	// every candidate's contribution.
	contrib := make([]float64, n)
	for i := 0; i < n; i++ {
		if !used[i] {
			contrib[i] = ss.PairHPF(i, best, k, p.Lambda)
		}
	}
	for len(r) < k {
		// Each iteration costs O(K); polling here bounds the cancellation
		// latency by one outer iteration.
		if err := checkpoint(ctx, "select:iadu"); err != nil {
			return Selection{}, err
		}
		bi := -1
		for i := 0; i < n; i++ {
			if !used[i] && (bi < 0 || contrib[i] > contrib[bi]) {
				bi = i
			}
		}
		if ec != nil {
			// Runner-up: the second-largest contribution among candidates.
			ru := -1
			for i := 0; i < n; i++ {
				if !used[i] && i != bi && (ru < 0 || contrib[i] > contrib[ru]) {
					ru = i
				}
			}
			if ru >= 0 {
				explainRound(ec, ss, len(r)+1, []int{bi}, contrib[bi], []int{ru}, contrib[ru])
			} else {
				explainRound(ec, ss, len(r)+1, []int{bi}, contrib[bi], nil, 0)
			}
		}
		r = append(r, bi)
		used[bi] = true
		if len(r) == k {
			break
		}
		for i := 0; i < n; i++ {
			if !used[i] {
				contrib[i] += ss.PairHPF(i, bi, k, p.Lambda)
			}
		}
	}
	return Selection{Indices: r, HPF: ss.Evaluate(r, p.Lambda).Total}, nil
}

// abpPair is one materialised candidate pair: endpoint indices into the
// score set plus HPF(p_i, p_j).
type abpPair struct {
	i, j  int32
	score float64
}

// abpBefore is the total order every ABP variant ranks pairs by: score
// descending, ties broken by (i, j) ascending. A total order (rather than
// the raw score comparison alone) makes equal-score selections identical
// across the heap-based, sort-based and eager implementations — the
// invariant the abp ≡ abp-rescan property tests pin down.
func abpBefore(a, b abpPair) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	if a.i != b.i {
		return a.i < b.i
	}
	return a.j < b.j
}

// abpScores materialises the O(K²) pair scores. Both the heap-based ABP
// and the sort-based rescan build their ranking from this one function,
// so their inputs are bit-identical by construction. stage labels the
// cancellation checkpoints (polled once per row).
//
// The loop is PairHPF inlined with the per-call constants hoisted and the
// sF matrix walked row-wise: every arithmetic operation appears in the
// same order as in PairHPF, so each score is bit-identical to
// ss.PairHPF(i, j, k, lambda) — only the per-pair struct loads, matrix
// index arithmetic and recomputed constants are gone. This matters
// because materialisation is the cost shared by every ABP variant: it
// bounds the speedup the incremental heap can show over the rescan.
func abpScores(ctx context.Context, ss *ScoreSet, k int, lambda float64, stage string) ([]abpPair, error) {
	n := ss.K()
	kf := float64(k - 1)
	c1 := (1 - lambda) * float64(n-k) // (1−λ)(K−k), the relevance weight
	rels := make([]float64, n)
	for i := range rels {
		rels[i] = ss.Places[i].Rel
	}
	pfs := ss.PFS
	ps := make([]abpPair, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		if err := checkpoint(ctx, stage); err != nil {
			return nil, err
		}
		ri, pi := rels[i], pfs[i]
		for t, s := range ss.SF.Row(i) {
			j := i + 1 + t
			score := c1*(ri+rels[j])/kf + lambda*((pi+pfs[j])/kf-2*s)
			ps = append(ps, abpPair{int32(i), int32(j), score})
		}
	}
	return ps, nil
}

// abpSiftDown restores the max-heap property (w.r.t. abpBefore) below
// position i. Hand-rolled rather than container/heap: the interface-free
// inner loop is what makes heap maintenance cheaper than sorting the
// whole pair list.
func abpSiftDown(h []abpPair, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		best := l
		if r := l + 1; r < len(h) && abpBefore(h[r], h[l]) {
			best = r
		}
		if !abpBefore(h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// abpHeapify builds the max-heap in place in O(n).
func abpHeapify(h []abpPair) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		abpSiftDown(h, i)
	}
}

// abpPop removes and returns the best pair; the returned slice aliases
// the input with the last slot freed.
func abpPop(h []abpPair) ([]abpPair, abpPair) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	if len(h) > 0 {
		abpSiftDown(h, 0)
	}
	return h, top
}

// abpPush reinserts a pair (used by the explain runner-up peek).
func abpPush(h []abpPair, p abpPair) []abpPair {
	h = append(h, p)
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !abpBefore(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

// abpFirstPick handles the degenerate k=1 instance shared by the ABP
// variants: rank by relevance alone.
func abpFirstPick(ec *explain.Collector, ss *ScoreSet, lambda float64) Selection {
	best := 0
	for i := 1; i < ss.K(); i++ {
		if ss.Places[i].Rel > ss.Places[best].Rel {
			best = i
		}
	}
	r := []int{best}
	if ec != nil {
		explainRound(ec, ss, 1, r, ss.Places[best].Rel, nil, 0)
	}
	return Selection{Indices: r, HPF: ss.Evaluate(r, lambda).Total}
}

// abpOddTail completes an odd-k result: the unused place contributing the
// most to the current R, with the second-best tracked for the explain
// trace. Shared by the heap and rescan variants so the odd-k tail
// (including its runner-up bookkeeping) cannot drift between them.
func abpOddTail(ec *explain.Collector, ss *ScoreSet, k int, lambda float64, round int, r []int, used []bool) []int {
	n := ss.K()
	bi, ri := -1, -1
	var bc, rc float64
	for i := 0; i < n; i++ {
		if used[i] {
			continue
		}
		var c float64
		for _, j := range r {
			c += ss.PairHPF(i, j, k, lambda)
		}
		if bi < 0 || c > bc {
			bi, bc, ri, rc = i, c, bi, bc
		} else if ri < 0 || c > rc {
			ri, rc = i, c
		}
	}
	if ec != nil {
		if ri >= 0 {
			explainRound(ec, ss, round+1, []int{bi}, bc, []int{ri}, rc)
		} else {
			explainRound(ec, ss, round+1, []int{bi}, bc, nil, 0)
		}
	}
	return append(r, bi)
}

// abpPollStride is the number of heap pops between cancellation polls in
// the ABP selection loop: each pop is O(log K²), so cancellation latency
// stays far below one materialisation row while the poll cost vanishes.
const abpPollStride = 256

// ABP implements the Any-Best-Pair greedy algorithm (Section 5, adapted
// from Cai et al.): all O(K²) pairs are ranked by HPF(p_i, p_j) (Eq. 15)
// and the best pair whose endpoints are both unused is repeatedly added,
// invalidating used endpoints lazily. ⌊k/2⌋ pairs are selected; for odd k
// the last place is the unused one with the largest contribution to the
// current R (the paper allows an arbitrary choice here). A
// 2-approximation under the Theorem 8.2 condition.
//
// Best-pair maintenance is incremental: the materialised pairs are
// heapified in O(K²) and popped only until ⌊k/2⌋ disjoint pairs emerge —
// a pair invalidated by an earlier selection is discarded lazily when it
// surfaces, never re-examined. This replaces the full O(K² log K²) sort
// of the rescan baseline (kept as AlgABPRescan for the equivalence
// property tests and the bench tier); selections, gains and explain
// traces are identical because both variants rank by abpBefore over the
// same abpScores materialisation.
func ABP(ss *ScoreSet, p Params) (Selection, error) {
	return abpCtx(context.Background(), ss, p)
}

func abpCtx(ctx context.Context, ss *ScoreSet, p Params) (Selection, error) {
	n := ss.K()
	if err := p.validate(n); err != nil {
		return Selection{}, err
	}
	k := p.K
	ec := explain.FromContext(ctx)
	if k == 1 {
		return abpFirstPick(ec, ss, p.Lambda), nil
	}

	h, err := abpScores(ctx, ss, k, p.Lambda, "select:abp")
	if err != nil {
		return Selection{}, err
	}
	abpHeapify(h)
	if err := checkpoint(ctx, "select:abp"); err != nil {
		return Selection{}, err
	}

	r := make([]int, 0, k)
	used := make([]bool, n)
	round := 0
	for pops := 0; len(r)+2 <= k && len(h) > 0; {
		if pops++; pops%abpPollStride == 0 {
			if err := checkpoint(ctx, "select:abp"); err != nil {
				return Selection{}, err
			}
		}
		var pr abpPair
		h, pr = abpPop(h)
		// Lazy deletion: a pair touching an already selected place is
		// invalid forever (used only grows), so it is dropped the moment
		// it surfaces instead of being hunted down at selection time.
		if used[pr.i] || used[pr.j] {
			continue
		}
		round++
		if ec != nil {
			// Runner-up: the next pair in the total order whose endpoints
			// are both unused before this selection. Invalid pairs popped
			// on the way are permanently dead and stay discarded; the
			// runner-up itself may be selected later, so it is pushed back.
			found := false
			var ru abpPair
			for len(h) > 0 {
				h, ru = abpPop(h)
				if !used[ru.i] && !used[ru.j] {
					found = true
					h = abpPush(h, ru)
					break
				}
			}
			if found {
				explainRound(ec, ss, round, []int{int(pr.i), int(pr.j)}, pr.score,
					[]int{int(ru.i), int(ru.j)}, ru.score)
			} else {
				explainRound(ec, ss, round, []int{int(pr.i), int(pr.j)}, pr.score, nil, 0)
			}
		}
		used[pr.i], used[pr.j] = true, true
		r = append(r, int(pr.i), int(pr.j))
	}
	if len(r) < k {
		r = abpOddTail(ec, ss, k, p.Lambda, round, r, used)
	}
	return Selection{Indices: r, HPF: ss.Evaluate(r, p.Lambda).Total}, nil
}

// ABPRescan is the pre-incremental ABP: a full sort of the materialised
// pairs followed by a linear scan with lazy endpoint invalidation. It is
// kept as the reference implementation the incremental heap is proven
// against (selections, gains and explain traces must match bit-for-bit)
// and as the baseline the bench-miss tier measures the speedup over.
func ABPRescan(ss *ScoreSet, p Params) (Selection, error) {
	return abpRescanCtx(context.Background(), ss, p)
}

func abpRescanCtx(ctx context.Context, ss *ScoreSet, p Params) (Selection, error) {
	n := ss.K()
	if err := p.validate(n); err != nil {
		return Selection{}, err
	}
	k := p.K
	ec := explain.FromContext(ctx)
	if k == 1 {
		return abpFirstPick(ec, ss, p.Lambda), nil
	}

	ps, err := abpScores(ctx, ss, k, p.Lambda, "select:abp-rescan")
	if err != nil {
		return Selection{}, err
	}
	sort.Slice(ps, func(a, b int) bool { return abpBefore(ps[a], ps[b]) })
	if err := checkpoint(ctx, "select:abp-rescan"); err != nil {
		return Selection{}, err
	}

	r := make([]int, 0, k)
	used := make([]bool, n)
	round := 0
	for pi := range ps {
		pr := ps[pi]
		if len(r)+2 > k {
			break
		}
		// Lazy invalidation: skip pairs touching an already selected place.
		if used[pr.i] || used[pr.j] {
			continue
		}
		round++
		if ec != nil {
			// Runner-up: the next pair in the total order whose endpoints
			// are both unused before this selection.
			ru := -1
			for t := pi + 1; t < len(ps); t++ {
				q := ps[t]
				if !used[q.i] && !used[q.j] {
					ru = t
					break
				}
			}
			if ru >= 0 {
				explainRound(ec, ss, round, []int{int(pr.i), int(pr.j)}, pr.score,
					[]int{int(ps[ru].i), int(ps[ru].j)}, ps[ru].score)
			} else {
				explainRound(ec, ss, round, []int{int(pr.i), int(pr.j)}, pr.score, nil, 0)
			}
		}
		used[pr.i], used[pr.j] = true, true
		r = append(r, int(pr.i), int(pr.j))
	}
	if len(r) < k {
		r = abpOddTail(ec, ss, k, p.Lambda, round, r, used)
	}
	return Selection{Indices: r, HPF: ss.Evaluate(r, p.Lambda).Total}, nil
}
