package core

import (
	"context"
	"sort"

	"repro/internal/explain"
)

// explainRound records one greedy round on the context-carried collector,
// resolving place IDs from the score set. Call sites gate the extra work
// of finding runner-ups on ec != nil; this helper only shapes the event.
func explainRound(ec *explain.Collector, ss *ScoreSet, round int, chosen []int, gain float64, runnerUp []int, runnerUpGain float64) {
	r := explain.GreedyRound{Round: round, Chosen: chosen, Gain: gain}
	for _, i := range chosen {
		r.ChosenIDs = append(r.ChosenIDs, ss.Places[i].ID)
	}
	if len(runnerUp) > 0 {
		r.RunnerUp = runnerUp
		r.RunnerUpGain = runnerUpGain
		for _, i := range runnerUp {
			r.RunnerUpIDs = append(r.RunnerUpIDs, ss.Places[i].ID)
		}
	}
	ec.Round(r)
}

// IAdU implements the Incremental Add and Update greedy algorithm
// (Section 5, adapted from Cai et al.): it iteratively adds to R the place
// with the largest contribution cHPF (Eq. 17) — the relevance score for
// the first pick, then Σ_{p_j∈R} HPF(p_i, p_j) — updating the remaining
// contributions incrementally after every insertion. Complexity
// O(K·k + K log K); a 4-approximation when HPF satisfies the triangle
// inequality (Theorem 8.2).
func IAdU(ss *ScoreSet, p Params) (Selection, error) {
	return iaduCtx(context.Background(), ss, p)
}

func iaduCtx(ctx context.Context, ss *ScoreSet, p Params) (Selection, error) {
	n := ss.K()
	if err := p.validate(n); err != nil {
		return Selection{}, err
	}
	k := p.K
	r := make([]int, 0, k)
	used := make([]bool, n)
	ec := explain.FromContext(ctx)

	// First pick: R is empty, so cHPF(p_i) = rF(p_i).
	best := 0
	for i := 1; i < n; i++ {
		if ss.Places[i].Rel > ss.Places[best].Rel {
			best = i
		}
	}
	r = append(r, best)
	used[best] = true
	if ec != nil {
		// Runner-up of the first pick: the second-largest relevance.
		ru := -1
		for i := 0; i < n; i++ {
			if i != best && (ru < 0 || ss.Places[i].Rel > ss.Places[ru].Rel) {
				ru = i
			}
		}
		if ru >= 0 {
			explainRound(ec, ss, 1, []int{best}, ss.Places[best].Rel, []int{ru}, ss.Places[ru].Rel)
		} else {
			explainRound(ec, ss, 1, []int{best}, ss.Places[best].Rel, nil, 0)
		}
	}
	if k == 1 {
		return Selection{Indices: r, HPF: ss.Evaluate(r, p.Lambda).Total}, nil
	}

	// Contributions of all remaining places against the current R,
	// maintained incrementally: adding p_new adds HPF(p_i, p_new) to
	// every candidate's contribution.
	contrib := make([]float64, n)
	for i := 0; i < n; i++ {
		if !used[i] {
			contrib[i] = ss.PairHPF(i, best, k, p.Lambda)
		}
	}
	for len(r) < k {
		// Each iteration costs O(K); polling here bounds the cancellation
		// latency by one outer iteration.
		if err := checkpoint(ctx, "select:iadu"); err != nil {
			return Selection{}, err
		}
		bi := -1
		for i := 0; i < n; i++ {
			if !used[i] && (bi < 0 || contrib[i] > contrib[bi]) {
				bi = i
			}
		}
		if ec != nil {
			// Runner-up: the second-largest contribution among candidates.
			ru := -1
			for i := 0; i < n; i++ {
				if !used[i] && i != bi && (ru < 0 || contrib[i] > contrib[ru]) {
					ru = i
				}
			}
			if ru >= 0 {
				explainRound(ec, ss, len(r)+1, []int{bi}, contrib[bi], []int{ru}, contrib[ru])
			} else {
				explainRound(ec, ss, len(r)+1, []int{bi}, contrib[bi], nil, 0)
			}
		}
		r = append(r, bi)
		used[bi] = true
		if len(r) == k {
			break
		}
		for i := 0; i < n; i++ {
			if !used[i] {
				contrib[i] += ss.PairHPF(i, bi, k, p.Lambda)
			}
		}
	}
	return Selection{Indices: r, HPF: ss.Evaluate(r, p.Lambda).Total}, nil
}

// ABP implements the Any-Best-Pair greedy algorithm (Section 5, adapted
// from Cai et al.): all O(K²) pairs are ranked by HPF(p_i, p_j) (Eq. 15)
// and the best pair whose endpoints are both unused is repeatedly added,
// invalidating used endpoints lazily. ⌊k/2⌋ pairs are selected; for odd k
// the last place is the unused one with the largest contribution to the
// current R (the paper allows an arbitrary choice here). Complexity
// O(K² log K²); a 2-approximation under the Theorem 8.2 condition.
func ABP(ss *ScoreSet, p Params) (Selection, error) {
	return abpCtx(context.Background(), ss, p)
}

func abpCtx(ctx context.Context, ss *ScoreSet, p Params) (Selection, error) {
	n := ss.K()
	if err := p.validate(n); err != nil {
		return Selection{}, err
	}
	k := p.K
	ec := explain.FromContext(ctx)
	if k == 1 {
		best := 0
		for i := 1; i < n; i++ {
			if ss.Places[i].Rel > ss.Places[best].Rel {
				best = i
			}
		}
		r := []int{best}
		if ec != nil {
			explainRound(ec, ss, 1, r, ss.Places[best].Rel, nil, 0)
		}
		return Selection{Indices: r, HPF: ss.Evaluate(r, p.Lambda).Total}, nil
	}

	type pair struct {
		i, j  int32
		score float64
	}
	ps := make([]pair, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		// The O(K²) materialisation is the dominant cost; poll per row.
		if err := checkpoint(ctx, "select:abp"); err != nil {
			return Selection{}, err
		}
		for j := i + 1; j < n; j++ {
			ps = append(ps, pair{int32(i), int32(j), ss.PairHPF(i, j, k, p.Lambda)})
		}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].score > ps[b].score })
	if err := checkpoint(ctx, "select:abp"); err != nil {
		return Selection{}, err
	}

	r := make([]int, 0, k)
	used := make([]bool, n)
	round := 0
	for pi := range ps {
		pr := ps[pi]
		if len(r)+2 > k {
			break
		}
		// Lazy invalidation: skip pairs touching an already selected place.
		if used[pr.i] || used[pr.j] {
			continue
		}
		round++
		if ec != nil {
			// Runner-up: the next pair in score order whose endpoints are
			// both unused before this selection. The look-ahead scan runs
			// only under an explain collector.
			ru := -1
			for t := pi + 1; t < len(ps); t++ {
				q := ps[t]
				if !used[q.i] && !used[q.j] {
					ru = t
					break
				}
			}
			if ru >= 0 {
				explainRound(ec, ss, round, []int{int(pr.i), int(pr.j)}, pr.score,
					[]int{int(ps[ru].i), int(ps[ru].j)}, ps[ru].score)
			} else {
				explainRound(ec, ss, round, []int{int(pr.i), int(pr.j)}, pr.score, nil, 0)
			}
		}
		used[pr.i], used[pr.j] = true, true
		r = append(r, int(pr.i), int(pr.j))
	}
	if len(r) < k {
		// Odd k: add the unused place contributing most to the current R.
		bi, ri := -1, -1
		var bc, rc float64
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			var c float64
			for _, j := range r {
				c += ss.PairHPF(i, j, k, p.Lambda)
			}
			if bi < 0 || c > bc {
				bi, bc, ri, rc = i, c, bi, bc
			} else if ri < 0 || c > rc {
				ri, rc = i, c
			}
		}
		if ec != nil {
			if ri >= 0 {
				explainRound(ec, ss, round+1, []int{bi}, bc, []int{ri}, rc)
			} else {
				explainRound(ec, ss, round+1, []int{bi}, bc, nil, 0)
			}
		}
		r = append(r, bi)
	}
	return Selection{Indices: r, HPF: ss.Evaluate(r, p.Lambda).Total}, nil
}
