package core

import (
	"container/heap"
	"context"
	"sort"
)

// contribHeap is an indexed max-heap over candidate contributions,
// supporting in-place updates — the structure behind the paper's
// O(K·k·log K + K²) complexity statement for IAdU.
type contribHeap struct {
	score []float64 // contribution per place index
	items []int32   // heap of place indices
	pos   []int32   // place index → heap position (−1 when removed)
}

func newContribHeap(score []float64) *contribHeap {
	h := &contribHeap{
		score: score,
		items: make([]int32, len(score)),
		pos:   make([]int32, len(score)),
	}
	for i := range h.items {
		h.items[i] = int32(i)
		h.pos[i] = int32(i)
	}
	heap.Init(h)
	return h
}

func (h *contribHeap) Len() int { return len(h.items) }
func (h *contribHeap) Less(i, j int) bool {
	return h.score[h.items[i]] > h.score[h.items[j]]
}
func (h *contribHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i]] = int32(i)
	h.pos[h.items[j]] = int32(j)
}
func (h *contribHeap) Push(x interface{}) {
	idx := x.(int32)
	h.pos[idx] = int32(len(h.items))
	h.items = append(h.items, idx)
}
func (h *contribHeap) Pop() interface{} {
	n := len(h.items)
	idx := h.items[n-1]
	h.items = h.items[:n-1]
	h.pos[idx] = -1
	return idx
}

// update adjusts the contribution of place idx and restores heap order.
func (h *contribHeap) update(idx int, delta float64) {
	h.score[idx] += delta
	if p := h.pos[idx]; p >= 0 {
		heap.Fix(h, int(p))
	}
}

// popMax removes and returns the place with the largest contribution.
func (h *contribHeap) popMax() int { return int(heap.Pop(h).(int32)) }

// IAdUHeap is IAdU with an indexed max-heap over contributions instead of
// a linear scan per iteration: selection costs O(log K) and each of the
// O(K) per-iteration contribution updates costs O(log K) — the complexity
// the paper states. It computes the same objective; ties may break
// differently, so results are compared by HPF, not by identity. Kept as
// the DESIGN.md "IAdU array-update vs heap" ablation.
func IAdUHeap(ss *ScoreSet, p Params) (Selection, error) {
	return iaduHeapCtx(context.Background(), ss, p)
}

func iaduHeapCtx(ctx context.Context, ss *ScoreSet, p Params) (Selection, error) {
	n := ss.K()
	if err := p.validate(n); err != nil {
		return Selection{}, err
	}
	k := p.K
	r := make([]int, 0, k)

	// First pick: maximum relevance.
	best := 0
	for i := 1; i < n; i++ {
		if ss.Places[i].Rel > ss.Places[best].Rel {
			best = i
		}
	}
	r = append(r, best)
	if k == 1 {
		return Selection{Indices: r, HPF: ss.Evaluate(r, p.Lambda).Total}, nil
	}

	contrib := make([]float64, n)
	for i := 0; i < n; i++ {
		if i != best {
			contrib[i] = ss.PairHPF(i, best, k, p.Lambda)
		}
	}
	h := newContribHeap(contrib)
	// Remove the already selected place from the heap.
	if pos := h.pos[best]; pos >= 0 {
		heap.Remove(h, int(pos))
	}

	for len(r) < k {
		if err := checkpoint(ctx, "select:iadu-heap"); err != nil {
			return Selection{}, err
		}
		bi := h.popMax()
		r = append(r, bi)
		if len(r) == k {
			break
		}
		for i := 0; i < n; i++ {
			if h.pos[i] >= 0 {
				h.update(i, ss.PairHPF(i, bi, k, p.Lambda))
			}
		}
	}
	return Selection{Indices: r, HPF: ss.Evaluate(r, p.Lambda).Total}, nil
}

// ABPEager is ABP with eager pair invalidation: after each selection the
// sorted pair list is compacted to drop every pair touching a used place,
// instead of skipping them lazily during the scan. Same selections; kept
// as the DESIGN.md "ABP lazy vs eager" ablation.
func ABPEager(ss *ScoreSet, p Params) (Selection, error) {
	return abpEagerCtx(context.Background(), ss, p)
}

func abpEagerCtx(ctx context.Context, ss *ScoreSet, p Params) (Selection, error) {
	n := ss.K()
	if err := p.validate(n); err != nil {
		return Selection{}, err
	}
	k := p.K
	if k == 1 {
		return abpCtx(ctx, ss, p)
	}
	ps, err := abpScores(ctx, ss, k, p.Lambda, "select:abp-eager")
	if err != nil {
		return Selection{}, err
	}
	// Sort by the shared ABP total order so equal-score ties select the
	// same pairs as the lazy variants.
	sort.Slice(ps, func(a, b int) bool { return abpBefore(ps[a], ps[b]) })

	r := make([]int, 0, k)
	used := make([]bool, n)
	for len(r)+2 <= k && len(ps) > 0 {
		// Each eager compaction pass is O(K²); poll before it.
		if err := checkpoint(ctx, "select:abp-eager"); err != nil {
			return Selection{}, err
		}
		pr := ps[0]
		used[pr.i], used[pr.j] = true, true
		r = append(r, int(pr.i), int(pr.j))
		// Eager compaction: drop every invalidated pair now.
		kept := ps[:0]
		for _, q := range ps[1:] {
			if !used[q.i] && !used[q.j] {
				kept = append(kept, q)
			}
		}
		ps = kept
	}
	if len(r) < k {
		bi := -1
		var bc float64
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			var c float64
			for _, j := range r {
				c += ss.PairHPF(i, j, k, p.Lambda)
			}
			if bi < 0 || c > bc {
				bi, bc = i, c
			}
		}
		r = append(r, bi)
	}
	return Selection{Indices: r, HPF: ss.Evaluate(r, p.Lambda).Total}, nil
}
