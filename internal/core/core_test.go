package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geo"
	"repro/internal/textctx"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// makePlaces builds n synthetic places around q with relevance in
// [relMin, 1], contexts of ~ctxSize items over a vocabulary of vocab.
func makePlaces(rng *rand.Rand, q geo.Point, n, ctxSize, vocab int, relMin float64) []Place {
	d := textctx.NewDict()
	for i := 0; i < vocab; i++ {
		d.Intern(word(i))
	}
	places := make([]Place, n)
	for i := range places {
		sz := 1 + rng.Intn(ctxSize)
		ids := make([]textctx.ItemID, sz)
		for j := range ids {
			ids[j] = textctx.ItemID(rng.Intn(vocab))
		}
		places[i] = Place{
			ID:      word(i),
			Loc:     geo.Pt(q.X+rng.NormFloat64(), q.Y+rng.NormFloat64()),
			Rel:     relMin + rng.Float64()*(1-relMin),
			Context: textctx.NewSet(ids...),
		}
	}
	return places
}

func word(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	s := []byte{letters[i%26]}
	for i /= 26; i > 0; i /= 26 {
		s = append(s, letters[i%26])
	}
	return string(s)
}

func mustScores(t testing.TB, q geo.Point, places []Place, opt ScoreOptions) *ScoreSet {
	t.Helper()
	ss, err := ComputeScores(q, places, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

func defaultScoreSet(t testing.TB, n int, seed int64) *ScoreSet {
	q := geo.Pt(0, 0)
	rng := rand.New(rand.NewSource(seed))
	places := makePlaces(rng, q, n, 12, 40, 0.2)
	return mustScores(t, q, places, ScoreOptions{Gamma: 0.5})
}

func TestPlaceValidate(t *testing.T) {
	good := Place{ID: "p", Loc: geo.Pt(1, 2), Rel: 0.5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid place rejected: %v", err)
	}
	bad := []Place{
		{Loc: geo.Pt(math.NaN(), 0), Rel: 0.5},
		{Loc: geo.Pt(0, 0), Rel: -0.1},
		{Loc: geo.Pt(0, 0), Rel: 1.5},
		{Loc: geo.Pt(0, 0), Rel: math.NaN()},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad place %d accepted", i)
		}
	}
}

func TestComputeScoresValidation(t *testing.T) {
	places := []Place{{Loc: geo.Pt(0, 0), Rel: 0.5}, {Loc: geo.Pt(1, 0), Rel: 0.5}}
	if _, err := ComputeScores(geo.Pt(math.Inf(1), 0), places, ScoreOptions{}); err == nil {
		t.Error("invalid query accepted")
	}
	badPlaces := []Place{{Loc: geo.Pt(0, 0), Rel: 2}}
	if _, err := ComputeScores(geo.Pt(0, 0), badPlaces, ScoreOptions{}); err == nil {
		t.Error("invalid place accepted")
	}
	if _, err := ComputeScores(geo.Pt(0, 0), places, ScoreOptions{Gamma: 1.5}); err == nil {
		t.Error("invalid gamma accepted")
	}
	if _, err := ComputeScores(geo.Pt(0, 0), places, ScoreOptions{Spatial: SpatialMethod(99)}); err == nil {
		t.Error("unknown spatial method accepted")
	}
}

func TestSpatialMethodString(t *testing.T) {
	if SpatialExact.String() != "exact" ||
		SpatialSquaredGrid.String() != "squared-grid" ||
		SpatialRadialGrid.String() != "radial-grid" {
		t.Error("SpatialMethod.String wrong")
	}
	if SpatialMethod(42).String() == "" {
		t.Error("unknown method has empty String")
	}
}

// TestScoreVectorsMatchDefinitions recomputes pCS, pSS, pFS from their
// definitions (Eq. 3, 6, 11) and compares with Step 1's output.
func TestScoreVectorsMatchDefinitions(t *testing.T) {
	q := geo.Pt(0.5, -0.5)
	rng := rand.New(rand.NewSource(3))
	places := makePlaces(rng, q, 30, 10, 30, 0)
	gamma := 0.3
	ss := mustScores(t, q, places, ScoreOptions{Gamma: gamma})
	for i := range places {
		var pcs, pss float64
		for j := range places {
			if j == i {
				continue
			}
			pcs += places[i].Context.Jaccard(places[j].Context)
			pss += geo.PtolemySimilarity(q, places[i].Loc, places[j].Loc)
		}
		if !almostEqual(ss.PCS[i], pcs, 1e-9) {
			t.Errorf("pCS[%d] = %g, want %g", i, ss.PCS[i], pcs)
		}
		if !almostEqual(ss.PSS[i], pss, 1e-9) {
			t.Errorf("pSS[%d] = %g, want %g", i, ss.PSS[i], pss)
		}
		want := (1-gamma)*pcs + gamma*pss
		if !almostEqual(ss.PFS[i], want, 1e-9) {
			t.Errorf("pFS[%d] = %g, want %g", i, ss.PFS[i], want)
		}
	}
}

// TestPairwiseDecompositionIdentity verifies the Eq. 15/16 identity:
// Σ_{pairs of R} HPF(p_i, p_j) = Σ_{p∈R} HPF(p_i) = HPF(R), for random
// subsets and parameter settings.
func TestPairwiseDecompositionIdentity(t *testing.T) {
	ss := defaultScoreSet(t, 25, 7)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(8)
		r := rng.Perm(ss.K())[:k]
		lambda := rng.Float64()
		want := ss.Evaluate(r, lambda).Total
		got := ss.EvaluatePairwise(r, lambda)
		if !almostEqual(got, want, 1e-9*(1+math.Abs(want))) {
			t.Fatalf("trial %d (k=%d, λ=%g): pairwise %g vs per-place %g",
				trial, k, lambda, got, want)
		}
		// And the per-place HPF sums to the same total.
		var sum float64
		for _, i := range r {
			sum += ss.PlaceHPF(i, r, k, lambda)
		}
		if !almostEqual(sum, want, 1e-9*(1+math.Abs(want))) {
			t.Fatalf("trial %d: Σ PlaceHPF = %g vs %g", trial, sum, want)
		}
	}
}

func TestEvaluateBreakdown(t *testing.T) {
	ss := defaultScoreSet(t, 20, 11)
	r := []int{0, 3, 7, 12}
	lambda := 0.4
	b := ss.Evaluate(r, lambda)
	want := (1-lambda)*b.Rel + lambda*((1-ss.Gamma)*b.PC+ss.Gamma*b.PS)
	if !almostEqual(b.Total, want, 1e-9) {
		t.Errorf("Total = %g, want %g from components", b.Total, want)
	}
	// Rel component = (K−k) · Σ rF.
	var rel float64
	for _, i := range r {
		rel += ss.Places[i].Rel
	}
	rel *= float64(ss.K() - len(r))
	if !almostEqual(b.Rel, rel, 1e-9) {
		t.Errorf("Rel = %g, want %g", b.Rel, rel)
	}
}

// TestLambdaExtremes: with λ=0 the objective is pure (normalised)
// relevance, so TopK must be optimal; with λ=1 relevance is ignored.
func TestLambdaExtremes(t *testing.T) {
	ss := defaultScoreSet(t, 15, 13)
	p := Params{K: 4, Lambda: 0, Gamma: 0.5}
	topk, err := TopK(ss, p)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Exact(ss, p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(topk.HPF, ex.HPF, 1e-9) {
		t.Errorf("λ=0: TopK HPF %g != exact %g", topk.HPF, ex.HPF)
	}
}

func selectionOK(t *testing.T, name string, sel Selection, k, n int) {
	t.Helper()
	if len(sel.Indices) != k {
		t.Fatalf("%s: |R| = %d, want %d", name, len(sel.Indices), k)
	}
	seen := map[int]bool{}
	for _, i := range sel.Indices {
		if i < 0 || i >= n {
			t.Fatalf("%s: index %d out of range", name, i)
		}
		if seen[i] {
			t.Fatalf("%s: duplicate index %d", name, i)
		}
		seen[i] = true
	}
}

func TestGreedySelectionsWellFormed(t *testing.T) {
	ss := defaultScoreSet(t, 40, 17)
	algs := map[string]func(*ScoreSet, Params) (Selection, error){
		"IAdU": IAdU, "ABP": ABP, "TopK": TopK, "IAdUDiv": IAdUDiv, "ABPDiv": ABPDiv,
	}
	for _, k := range []int{1, 2, 3, 10, 39} {
		p := Params{K: k, Lambda: 0.5, Gamma: 0.5}
		for name, alg := range algs {
			sel, err := alg(ss, p)
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			selectionOK(t, name, sel, k, ss.K())
		}
		sel, err := RandomSelect(ss, p, 5)
		if err != nil {
			t.Fatal(err)
		}
		selectionOK(t, "Random", sel, k, ss.K())
	}
}

func TestParamValidation(t *testing.T) {
	ss := defaultScoreSet(t, 10, 19)
	bad := []Params{
		{K: 0, Lambda: 0.5},
		{K: -3, Lambda: 0.5},
		{K: 10, Lambda: 0.5}, // k must be < K
		{K: 15, Lambda: 0.5}, // k > K
		{K: 5, Lambda: -0.1}, // λ out of range
		{K: 5, Lambda: 1.1},  // λ out of range
		{K: 5, Gamma: 2},     // γ out of range
		{K: 5, Lambda: math.NaN()},
	}
	for i, p := range bad {
		for name, alg := range map[string]func(*ScoreSet, Params) (Selection, error){
			"IAdU": IAdU, "ABP": ABP, "TopK": TopK, "Exact": Exact,
		} {
			if _, err := alg(ss, p); err == nil {
				t.Errorf("%s accepted bad params %d: %+v", name, i, p)
			}
		}
	}
}

func TestIAdUFirstPickIsMostRelevant(t *testing.T) {
	ss := defaultScoreSet(t, 30, 23)
	best := 0
	for i := range ss.Places {
		if ss.Places[i].Rel > ss.Places[best].Rel {
			best = i
		}
	}
	sel, err := IAdU(ss, Params{K: 5, Lambda: 0.5, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Indices[0] != best {
		t.Errorf("first pick %d, want most relevant %d", sel.Indices[0], best)
	}
}

func TestTopKOrdering(t *testing.T) {
	ss := defaultScoreSet(t, 20, 29)
	sel, err := TopK(ss, Params{K: 6, Lambda: 0.5, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sel.Indices); i++ {
		if ss.Places[sel.Indices[i]].Rel > ss.Places[sel.Indices[i-1]].Rel {
			t.Fatal("TopK not sorted by relevance")
		}
	}
}

func TestRandomSelectDeterministic(t *testing.T) {
	ss := defaultScoreSet(t, 20, 31)
	p := Params{K: 5, Lambda: 0.5, Gamma: 0.5}
	a, _ := RandomSelect(ss, p, 99)
	b, _ := RandomSelect(ss, p, 99)
	c, _ := RandomSelect(ss, p, 100)
	if !equalInts(a.Indices, b.Indices) {
		t.Error("same seed gave different selections")
	}
	if equalInts(a.Indices, c.Indices) {
		t.Error("different seeds gave identical selections (unlikely)")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestApproximationBounds checks Theorem 8.2's consequences on instances
// satisfying the triangle-inequality condition (rF ≥ λ(k−1)/((1−λ)(K−k))):
// IAdU achieves ≥ OPT/4 and ABP ≥ OPT/2.
func TestApproximationBounds(t *testing.T) {
	q := geo.Pt(0, 0)
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// K=18, k=4, λ=0.5 → threshold = 3/14 ≈ 0.214; rF ≥ 0.3 everywhere.
		places := makePlaces(rng, q, 18, 8, 25, 0.3)
		ss := mustScores(t, q, places, ScoreOptions{Gamma: 0.5})
		p := Params{K: 4, Lambda: 0.5, Gamma: 0.5}
		ex, err := Exact(ss, p)
		if err != nil {
			t.Fatal(err)
		}
		if ex.HPF <= 0 {
			t.Fatalf("seed %d: exact optimum %g not positive", seed, ex.HPF)
		}
		ia, err := IAdU(ss, p)
		if err != nil {
			t.Fatal(err)
		}
		ab, err := ABP(ss, p)
		if err != nil {
			t.Fatal(err)
		}
		if ia.HPF < ex.HPF/4-1e-9 {
			t.Errorf("seed %d: IAdU %g below OPT/4 (OPT=%g)", seed, ia.HPF, ex.HPF)
		}
		if ab.HPF < ex.HPF/2-1e-9 {
			t.Errorf("seed %d: ABP %g below OPT/2 (OPT=%g)", seed, ab.HPF, ex.HPF)
		}
		if ia.HPF > ex.HPF+1e-9 || ab.HPF > ex.HPF+1e-9 {
			t.Errorf("seed %d: greedy exceeded the optimum", seed)
		}
	}
}

func TestExactTooLarge(t *testing.T) {
	ss := defaultScoreSet(t, 60, 37)
	if _, err := Exact(ss, Params{K: 20, Lambda: 0.5, Gamma: 0.5}); err != ErrTooLarge {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestBinomialExceeds(t *testing.T) {
	if binomialExceeds(10, 3, 120) {
		t.Error("C(10,3) = 120 should not exceed 120")
	}
	if !binomialExceeds(10, 3, 119) {
		t.Error("C(10,3) = 120 should exceed 119")
	}
	if binomialExceeds(5, 5, 1) {
		t.Error("C(5,5) = 1 should not exceed 1")
	}
	if !binomialExceeds(1000, 500, 2_000_000) {
		t.Error("C(1000,500) must exceed limit without overflow")
	}
}

// TestGridScoringCloseToExact: running the full pipeline with grid-based
// spatial scores changes HPF(R) only marginally (the Figure 11 claim).
func TestGridScoringCloseToExact(t *testing.T) {
	q := geo.Pt(0, 0)
	rng := rand.New(rand.NewSource(41))
	places := makePlaces(rng, q, 100, 10, 40, 0.2)
	p := Params{K: 10, Lambda: 0.5, Gamma: 0.5}

	exactSS := mustScores(t, q, places, ScoreOptions{Gamma: 0.5, Spatial: SpatialExact})
	for _, sm := range []SpatialMethod{SpatialSquaredGrid, SpatialRadialGrid} {
		gridSS := mustScores(t, q, places, ScoreOptions{Gamma: 0.5, Spatial: sm})
		selG, err := ABP(gridSS, p)
		if err != nil {
			t.Fatal(err)
		}
		selE, err := ABP(exactSS, p)
		if err != nil {
			t.Fatal(err)
		}
		// Evaluate both selections under the exact scores.
		hG := exactSS.Evaluate(selG.Indices, p.Lambda).Total
		hE := exactSS.Evaluate(selE.Indices, p.Lambda).Total
		if hG < 0.75*hE {
			t.Errorf("%v: grid-selected HPF %g too far below exact %g", sm, hG, hE)
		}
	}
}

// TestReductionFigure3 rebuilds the worked example of Figure 3 (a star
// K_{1,3}) and checks that the exact optimum with λ=1, γ=0 recovers the
// 3-independent set {v2, v3, v4}.
func TestReductionFigure3(t *testing.T) {
	adj := [][]int{{1, 2, 3}, {0}, {0}, {0}}
	dict := textctx.NewDict()
	places, err := IndependentSetInstance(adj, dict)
	if err != nil {
		t.Fatal(err)
	}
	// d = 3; vertices 1..3 each get 2 pad places → 4 + 6 = 10 places.
	if len(places) != 10 {
		t.Fatalf("got %d places, want 10", len(places))
	}
	// Every original place has exactly d = 3 context items.
	for u := 0; u < 4; u++ {
		if got := places[u].Context.Len(); got != 3 {
			t.Errorf("|C(v%d)| = %d, want 3", u, got)
		}
	}
	ss := mustScores(t, geo.Pt(0, 0), places, ScoreOptions{Gamma: 0})
	ex, err := Exact(ss, Params{K: 3, Lambda: 1, Gamma: 0})
	if err != nil {
		t.Fatal(err)
	}
	got := append([]int(nil), ex.Indices...)
	sort.Ints(got)
	if !equalInts(got, []int{1, 2, 3}) {
		t.Errorf("optimum = %v, want the independent set [1 2 3]", got)
	}
}

// TestReductionDegrees: after padding, all original vertices have context
// size d and identical maximal pCS scores (the key invariant of the
// Theorem 4.1 proof).
func TestReductionDegrees(t *testing.T) {
	// A path 0—1—2—3 plus edge 1—3: degrees 1, 3, 2, 2 → d = 3.
	adj := [][]int{{1}, {0, 2, 3}, {1, 3}, {1, 2}}
	places, err := IndependentSetInstance(adj, nil)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 4; u++ {
		if got := places[u].Context.Len(); got != 3 {
			t.Errorf("|C(v%d)| = %d, want 3", u, got)
		}
	}
	ss := mustScores(t, geo.Pt(0, 0), places, ScoreOptions{Gamma: 0})
	// pCS of all original vertices equal; pCS of pads strictly smaller.
	for u := 1; u < 4; u++ {
		if !almostEqual(ss.PCS[u], ss.PCS[0], 1e-9) {
			t.Errorf("pCS(v%d) = %g != pCS(v0) = %g", u, ss.PCS[u], ss.PCS[0])
		}
	}
	for i := 4; i < len(places); i++ {
		if ss.PCS[i] >= ss.PCS[0] {
			t.Errorf("pad %d has pCS %g ≥ original %g", i, ss.PCS[i], ss.PCS[0])
		}
	}
}

func TestReductionInputValidation(t *testing.T) {
	if _, err := IndependentSetInstance([][]int{{5}}, nil); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := IndependentSetInstance([][]int{{0}}, nil); err == nil {
		t.Error("self-loop accepted")
	}
	places, err := IndependentSetInstance(nil, nil)
	if err != nil || len(places) != 0 {
		t.Error("empty graph should give empty instance")
	}
}

// TestABPNotWorseOnAverage reflects the paper's Figure 11 finding that ABP
// achieves (marginally) better HPF than IAdU on average. Individual
// instances may go either way; we assert the aggregate.
func TestABPNotWorseOnAverage(t *testing.T) {
	q := geo.Pt(0, 0)
	var sumIA, sumAB float64
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		places := makePlaces(rng, q, 60, 10, 40, 0.2)
		ss := mustScores(t, q, places, ScoreOptions{Gamma: 0.5})
		p := Params{K: 10, Lambda: 0.5, Gamma: 0.5}
		ia, err := IAdU(ss, p)
		if err != nil {
			t.Fatal(err)
		}
		ab, err := ABP(ss, p)
		if err != nil {
			t.Fatal(err)
		}
		sumIA += ia.HPF
		sumAB += ab.HPF
	}
	if sumAB < 0.97*sumIA {
		t.Errorf("ABP average HPF %g much worse than IAdU %g", sumAB/20, sumIA/20)
	}
}

func TestEvaluateDivConsistent(t *testing.T) {
	ss := defaultScoreSet(t, 20, 43)
	r := []int{1, 4, 9}
	lambda := 0.5
	got := ss.EvaluateDiv(r, lambda)
	// Direct: (1−λ)(k−1)·Σ rF + 2λ·Σ dF over pairs.
	var rel, div float64
	for _, i := range r {
		rel += ss.Places[i].Rel
	}
	for a := 0; a < len(r); a++ {
		for b := a + 1; b < len(r); b++ {
			div += 1 - ss.SF.At(r[a], r[b])
		}
	}
	want := (1-lambda)*rel + 2*lambda*div/float64(len(r)-1)
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("EvaluateDiv = %g, want %g", got, want)
	}
}

func BenchmarkIAdUK100(b *testing.B) { benchGreedy(b, IAdU, 100, 10) }
func BenchmarkABPK100(b *testing.B)  { benchGreedy(b, ABP, 100, 10) }
func BenchmarkIAdUK400(b *testing.B) { benchGreedy(b, IAdU, 400, 10) }
func BenchmarkABPK400(b *testing.B)  { benchGreedy(b, ABP, 400, 10) }

func benchGreedy(b *testing.B, alg func(*ScoreSet, Params) (Selection, error), k, rk int) {
	ss := defaultScoreSet(b, k, 1)
	p := Params{K: rk, Lambda: 0.5, Gamma: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg(ss, p); err != nil {
			b.Fatal(err)
		}
	}
}
