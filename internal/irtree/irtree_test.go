package irtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geo"
	"repro/internal/textctx"
)

func randomObjects(rng *rand.Rand, n, vocab, ctxSize int) []Object {
	objs := make([]Object, n)
	for i := range objs {
		sz := 1 + rng.Intn(ctxSize)
		ids := make([]textctx.ItemID, sz)
		for j := range ids {
			ids[j] = textctx.ItemID(rng.Intn(vocab))
		}
		objs[i] = Object{
			ID:    int32(i),
			Loc:   geo.Pt(rng.Float64()*100, rng.Float64()*100),
			Terms: textctx.NewSet(ids...),
		}
	}
	return objs
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Error("empty tree Len != 0")
	}
	if _, ok := tr.Bounds(); ok {
		t.Error("empty tree has bounds")
	}
	if got := tr.TopK(geo.Pt(0, 0), textctx.NewSet(1), QueryOptions{K: 5}); got != nil {
		t.Error("TopK on empty tree returned results")
	}
	if got := tr.NearestK(geo.Pt(0, 0), 3); got != nil {
		t.Error("NearestK on empty tree returned results")
	}
	if got := tr.RangeSearch(geo.NewRect(geo.Pt(0, 0), geo.Pt(1, 1))); got != nil {
		t.Error("RangeSearch on empty tree returned results")
	}
}

func TestInsertInvalid(t *testing.T) {
	tr := New()
	if err := tr.Insert(Object{Loc: geo.Pt(math.NaN(), 0)}); err == nil {
		t.Error("NaN location accepted")
	}
	if _, err := BulkLoad([]Object{{Loc: geo.Pt(0, math.Inf(1))}}); err == nil {
		t.Error("BulkLoad accepted Inf location")
	}
}

func TestInsertInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := New()
	objs := randomObjects(rng, 500, 50, 6)
	for i, o := range objs {
		if err := tr.Insert(o); err != nil {
			t.Fatal(err)
		}
		if i%97 == 0 {
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if tr.Len() != len(objs) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(objs))
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Errorf("500 objects should produce height ≥ 2, got %d", tr.Height())
	}
}

func TestBulkLoadInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 15, 16, 17, 100, 1000} {
		objs := randomObjects(rng, n, 40, 5)
		tr, err := BulkLoad(objs)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if n > 0 {
			// STR trees are balanced and within capacity, but interior
			// fill below minEntries is acceptable for the last groups, so
			// only check containment/term invariants via queries below.
			all := tr.RangeSearch(tr.root.rect)
			if len(all) != n {
				t.Fatalf("n=%d: RangeSearch(bounds) = %d", n, len(all))
			}
		}
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	objs := randomObjects(rng, 400, 30, 4)
	tr, err := BulkLoad(objs)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		a := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		b := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		r := geo.NewRect(a, b)
		got := tr.RangeSearch(r)
		var want []int32
		for _, o := range objs {
			if r.Contains(o.Loc) {
				want = append(want, o.ID)
			}
		}
		gotIDs := make([]int32, len(got))
		for i, o := range got {
			gotIDs[i] = o.ID
		}
		sortInt32s(gotIDs)
		sortInt32s(want)
		if !equalInt32s(gotIDs, want) {
			t.Fatalf("trial %d: range mismatch: got %d, want %d objects", trial, len(gotIDs), len(want))
		}
	}
}

func TestNearestKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	objs := randomObjects(rng, 300, 30, 4)
	for _, build := range []string{"insert", "bulk"} {
		var tr *Tree
		if build == "bulk" {
			var err error
			tr, err = BulkLoad(objs)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			tr = New()
			for _, o := range objs {
				if err := tr.Insert(o); err != nil {
					t.Fatal(err)
				}
			}
		}
		for trial := 0; trial < 10; trial++ {
			q := geo.Pt(rng.Float64()*100, rng.Float64()*100)
			k := 1 + rng.Intn(20)
			got := tr.NearestK(q, k)
			if len(got) != k {
				t.Fatalf("%s: NearestK returned %d, want %d", build, len(got), k)
			}
			// Distances must be sorted and match the brute-force k-th.
			dists := make([]float64, len(objs))
			for i, o := range objs {
				dists[i] = o.Loc.Dist(q)
			}
			sort.Float64s(dists)
			for i, r := range got {
				if math.Abs(r.Dist-dists[i]) > 1e-9 {
					t.Fatalf("%s trial %d: dist[%d] = %g, want %g", build, trial, i, r.Dist, dists[i])
				}
			}
		}
	}
}

func TestTopKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	objs := randomObjects(rng, 400, 25, 5)
	tr, err := BulkLoad(objs)
	if err != nil {
		t.Fatal(err)
	}
	diag := tr.root.rect.Min.Dist(tr.root.rect.Max)
	for trial := 0; trial < 15; trial++ {
		q := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		kw := textctx.NewSet(
			textctx.ItemID(rng.Intn(25)), textctx.ItemID(rng.Intn(25)), textctx.ItemID(rng.Intn(25)))
		k := 1 + rng.Intn(30)
		beta := 0.5
		got := tr.TopK(q, kw, QueryOptions{K: k, Beta: beta, MaxDist: diag})

		scores := make([]float64, len(objs))
		for i, o := range objs {
			prox := 1 - o.Loc.Dist(q)/diag
			if prox < 0 {
				prox = 0
			}
			scores[i] = beta*kw.Jaccard(o.Terms) + (1-beta)*prox
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
		if len(got) != k {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), k)
		}
		for i, r := range got {
			if math.Abs(r.Score-scores[i]) > 1e-9 {
				t.Fatalf("trial %d: score[%d] = %g, want %g", trial, i, r.Score, scores[i])
			}
		}
		// Scores are non-increasing.
		for i := 1; i < len(got); i++ {
			if got[i].Score > got[i-1].Score+1e-12 {
				t.Fatalf("trial %d: scores not sorted", trial)
			}
		}
	}
}

func TestTopKTextOnlySignal(t *testing.T) {
	// Two objects equidistant from q; the one matching the keyword must
	// rank first.
	d := textctx.NewDict()
	tr := New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(tr.Insert(Object{ID: 1, Loc: geo.Pt(1, 0), Terms: textctx.NewSetFromStrings(d, []string{"museum"})}))
	must(tr.Insert(Object{ID: 2, Loc: geo.Pt(-1, 0), Terms: textctx.NewSetFromStrings(d, []string{"park"})}))
	kw := textctx.NewSetFromStrings(d, []string{"museum"})
	got := tr.TopK(geo.Pt(0, 0), kw, QueryOptions{K: 2})
	if len(got) != 2 || got[0].Obj.ID != 1 {
		t.Fatalf("TopK = %+v, want museum first", got)
	}
	if got[0].TextSim != 1 || got[1].TextSim != 0 {
		t.Errorf("TextSim = %g, %g", got[0].TextSim, got[1].TextSim)
	}
}

func TestTopKEmptyKeywords(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	objs := randomObjects(rng, 100, 20, 4)
	tr, err := BulkLoad(objs)
	if err != nil {
		t.Fatal(err)
	}
	q := geo.Pt(50, 50)
	got := tr.TopK(q, textctx.Set{}, QueryOptions{K: 5})
	if len(got) != 5 {
		t.Fatalf("got %d results", len(got))
	}
	// With no keywords the ranking reduces to spatial proximity.
	nn := tr.NearestK(q, 5)
	for i := range got {
		if math.Abs(got[i].Dist-nn[i].Dist) > 1e-9 {
			t.Errorf("rank %d: TopK dist %g vs NearestK %g", i, got[i].Dist, nn[i].Dist)
		}
	}
}

func TestAllObjectsAtSamePoint(t *testing.T) {
	tr := New()
	for i := 0; i < 40; i++ {
		if err := tr.Insert(Object{ID: int32(i), Loc: geo.Pt(5, 5), Terms: textctx.NewSet(textctx.ItemID(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	got := tr.TopK(geo.Pt(5, 5), textctx.NewSet(3), QueryOptions{K: 1})
	if len(got) != 1 || got[0].Obj.ID != 3 {
		t.Errorf("TopK = %+v, want object 3", got)
	}
}

func TestHeightGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := New()
	if tr.Height() != 1 {
		t.Errorf("empty height = %d", tr.Height())
	}
	for _, o := range randomObjects(rng, 2000, 10, 2) {
		if err := tr.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if h := tr.Height(); h < 3 {
		t.Errorf("height = %d for 2000 objects, want ≥ 3", h)
	}
}

func sortInt32s(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func equalInt32s(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkBulkLoad10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	objs := randomObjects(rng, 10000, 1000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BulkLoad(objs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopK10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	objs := randomObjects(rng, 10000, 1000, 8)
	tr, err := BulkLoad(objs)
	if err != nil {
		b.Fatal(err)
	}
	kw := textctx.NewSet(1, 2, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TopK(geo.Pt(50, 50), kw, QueryOptions{K: 100})
	}
}
