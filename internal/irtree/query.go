package irtree

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/textctx"
)

// QueryOptions configures a top-k spatial-keyword query.
type QueryOptions struct {
	// K is the number of results to return.
	K int
	// Beta weighs textual relevance against spatial proximity in
	//   score = β·Jaccard(keywords, terms) + (1−β)·max(0, 1 − dist/MaxDist).
	// The default 0.5 weighs them equally.
	Beta float64
	// MaxDist normalises distances; 0 means the diagonal of the tree's
	// bounding rectangle (the paper normalises by the city's largest
	// distance).
	MaxDist float64
}

// Result is one ranked retrieval result.
type Result struct {
	Obj Object
	// Score is the combined relevance rF ∈ [0, 1].
	Score float64
	// Dist is the Euclidean distance to the query location.
	Dist float64
	// TextSim is the Jaccard similarity of the query keywords to the
	// object's terms.
	TextSim float64
}

type pqEntry struct {
	n     *node  // nil for object entries
	obj   Object // valid when n == nil
	bound float64
	// exact results carry their final Dist/TextSim
	dist, tsim float64
}

type pq []pqEntry

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].bound > p[j].bound }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqEntry)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	e := old[n-1]
	*p = old[:n-1]
	return e
}

// TopK returns the k objects with the highest combined spatial-keyword
// relevance to the query location and keywords, best first. It performs a
// best-first traversal, pruning subtrees by an admissible upper bound
// combining the node's MINDIST and its inverted file.
func (t *Tree) TopK(q geo.Point, keywords textctx.Set, opt QueryOptions) []Result {
	if opt.K <= 0 || t.size == 0 {
		return nil
	}
	beta := opt.Beta
	if beta == 0 {
		beta = 0.5
	}
	maxDist := opt.MaxDist
	if maxDist <= 0 {
		maxDist = t.root.rect.Min.Dist(t.root.rect.Max)
		if maxDist == 0 {
			maxDist = 1 // all objects at one point; distances are all 0
		}
	}

	score := func(o Object) (s, d, ts float64) {
		d = o.Loc.Dist(q)
		ts = keywords.Jaccard(o.Terms)
		prox := 1 - d/maxDist
		if prox < 0 {
			prox = 0
		}
		return beta*ts + (1-beta)*prox, d, ts
	}
	nodeBound := func(n *node) float64 {
		// Textual bound: Jaccard(kw, C(p)) ≤ |kw ∩ terms(N)| / |kw| for
		// every descendant p, since the union is at least |kw|.
		var tb float64
		if keywords.Len() > 0 {
			inter := 0
			for _, term := range keywords.Items() {
				if _, ok := n.terms[term]; ok {
					inter++
				}
			}
			tb = float64(inter) / float64(keywords.Len())
		}
		prox := 1 - n.rect.MinDist(q)/maxDist
		if prox < 0 {
			prox = 0
		}
		return beta*tb + (1-beta)*prox
	}

	h := &pq{{n: t.root, bound: nodeBound(t.root)}}
	var out []Result
	for h.Len() > 0 && len(out) < opt.K {
		e := heap.Pop(h).(pqEntry)
		if e.n == nil {
			out = append(out, Result{Obj: e.obj, Score: e.bound, Dist: e.dist, TextSim: e.tsim})
			continue
		}
		if e.n.leaf {
			for _, o := range e.n.objects {
				s, d, ts := score(o)
				heap.Push(h, pqEntry{obj: o, bound: s, dist: d, tsim: ts})
			}
			continue
		}
		for _, c := range e.n.children {
			heap.Push(h, pqEntry{n: c, bound: nodeBound(c)})
		}
	}
	return out
}

// NearestK returns the k objects nearest to q (pure spatial kNN via
// best-first search on MINDIST), nearest first.
func (t *Tree) NearestK(q geo.Point, k int) []Result {
	if k <= 0 || t.size == 0 {
		return nil
	}
	h := &pq{{n: t.root, bound: -t.root.rect.MinDist(q)}}
	var out []Result
	for h.Len() > 0 && len(out) < k {
		e := heap.Pop(h).(pqEntry)
		if e.n == nil {
			out = append(out, Result{Obj: e.obj, Dist: -e.bound})
			continue
		}
		if e.n.leaf {
			for _, o := range e.n.objects {
				heap.Push(h, pqEntry{obj: o, bound: -o.Loc.Dist(q)})
			}
			continue
		}
		for _, c := range e.n.children {
			heap.Push(h, pqEntry{n: c, bound: -c.rect.MinDist(q)})
		}
	}
	return out
}

// RangeSearch returns all objects inside r, in no particular order.
func (t *Tree) RangeSearch(r geo.Rect) []Object {
	if t.size == 0 {
		return nil
	}
	var out []Object
	var walk func(n *node)
	walk = func(n *node) {
		if !n.rect.Intersects(r) {
			return
		}
		if n.leaf {
			for _, o := range n.objects {
				if r.Contains(o.Loc) {
					out = append(out, o)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// BulkLoad builds an IR-tree over objs using Sort-Tile-Recursive packing,
// which produces a well-filled balanced tree much faster than repeated
// insertion. The input slice is not modified.
func BulkLoad(objs []Object) (*Tree, error) {
	t := New()
	for _, o := range objs {
		if !o.Loc.Valid() {
			return nil, &InvalidObjectError{ID: o.ID, Loc: o.Loc}
		}
	}
	if len(objs) == 0 {
		return t, nil
	}
	t.size = len(objs)

	// Pack leaves with STR.
	sorted := append([]Object(nil), objs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Loc.X < sorted[j].Loc.X })
	cap_ := t.maxEntries
	nLeaves := (len(sorted) + cap_ - 1) / cap_
	nSlices := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	sliceSz := nSlices * cap_

	var leaves []*node
	for s := 0; s < len(sorted); s += sliceSz {
		end := s + sliceSz
		if end > len(sorted) {
			end = len(sorted)
		}
		strip := sorted[s:end]
		sort.Slice(strip, func(i, j int) bool { return strip[i].Loc.Y < strip[j].Loc.Y })
		for o := 0; o < len(strip); o += cap_ {
			oe := o + cap_
			if oe > len(strip) {
				oe = len(strip)
			}
			leaf := &node{leaf: true, objects: append([]Object(nil), strip[o:oe]...)}
			leaf.recompute()
			leaves = append(leaves, leaf)
		}
	}

	// Build internal levels by packing children in groups.
	level := leaves
	for len(level) > 1 {
		var next []*node
		for s := 0; s < len(level); s += cap_ {
			e := s + cap_
			if e > len(level) {
				e = len(level)
			}
			n := &node{children: append([]*node(nil), level[s:e]...)}
			n.recompute()
			next = append(next, n)
		}
		level = next
	}
	t.root = level[0]
	return t, nil
}

// InvalidObjectError reports an object with a non-finite location.
type InvalidObjectError struct {
	ID  int32
	Loc geo.Point
}

// Error implements error.
func (e *InvalidObjectError) Error() string {
	return fmt.Sprintf("irtree: invalid location %v for object %d", e.Loc, e.ID)
}
