package irtree

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/textctx"
)

// QueryOptions configures a top-k spatial-keyword query.
type QueryOptions struct {
	// K is the number of results to return.
	K int
	// Beta weighs textual relevance against spatial proximity in
	//   score = β·Jaccard(keywords, terms) + (1−β)·max(0, 1 − dist/MaxDist).
	// The default 0.5 weighs them equally.
	Beta float64
	// MaxDist normalises distances; 0 means the diagonal of the tree's
	// bounding rectangle (the paper normalises by the city's largest
	// distance).
	MaxDist float64
}

// Result is one ranked retrieval result.
type Result struct {
	Obj Object
	// Score is the combined relevance rF ∈ [0, 1].
	Score float64
	// Dist is the Euclidean distance to the query location.
	Dist float64
	// TextSim is the Jaccard similarity of the query keywords to the
	// object's terms.
	TextSim float64
}

type pqEntry struct {
	n     *node  // nil for object entries
	obj   Object // valid when n == nil
	bound float64
	// exact results carry their final Dist/TextSim
	dist, tsim float64
}

type pq []pqEntry

func (p pq) Len() int { return len(p) }

// Less orders the frontier by descending bound, with a deterministic
// tie-break: node entries expand before object entries of equal bound
// (so every candidate with that score enters the heap before any is
// emitted), and equal-score objects emit in ascending ID. This makes
// the emitted result sequence a canonical (score desc, ID asc) order —
// independent of heap internals and of how the object set is split
// across trees — which the sharded fan-out relies on to merge per-shard
// top-k lists into the exact unsharded result.
func (p pq) Less(i, j int) bool {
	if p[i].bound != p[j].bound {
		return p[i].bound > p[j].bound
	}
	in, jn := p[i].n != nil, p[j].n != nil
	if in != jn {
		return in
	}
	if !in {
		return p[i].obj.ID < p[j].obj.ID
	}
	return false
}
func (p pq) Swap(i, j int) { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqEntry)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	e := old[n-1]
	*p = old[:n-1]
	return e
}

// TopK returns the k objects with the highest combined spatial-keyword
// relevance to the query location and keywords, best first. It performs a
// best-first traversal, pruning subtrees by an admissible upper bound
// combining the node's MINDIST and its inverted file.
func (t *Tree) TopK(q geo.Point, keywords textctx.Set, opt QueryOptions) []Result {
	if opt.K <= 0 || t.size == 0 {
		return nil
	}
	s := t.Search(q, keywords, opt)
	out := make([]Result, 0, opt.K)
	for len(out) < opt.K {
		r, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

// Searcher is an incremental top-k traversal: Next emits exactly the
// sequence TopK would return — the canonical (score desc, ID asc) order
// — one result at a time, retaining the best-first frontier between
// calls. The sharded fan-out uses it to pull only as many per-shard
// candidates as the global merge actually consumes, instead of a full
// top-K from every shard.
type Searcher struct {
	h         pq
	score     func(o Object) (s, d, ts float64)
	nodeBound func(n *node) float64
}

// Search starts an incremental traversal. QueryOptions.K is ignored —
// the caller bounds the stream by how far it pulls.
func (t *Tree) Search(q geo.Point, keywords textctx.Set, opt QueryOptions) *Searcher {
	beta := opt.Beta
	if beta == 0 {
		beta = 0.5
	}
	s := &Searcher{}
	if t.size == 0 {
		return s
	}
	maxDist := opt.MaxDist
	if maxDist <= 0 {
		maxDist = t.root.rect.Min.Dist(t.root.rect.Max)
		if maxDist == 0 {
			maxDist = 1 // all objects at one point; distances are all 0
		}
	}

	s.score = func(o Object) (sc, d, ts float64) {
		d = o.Loc.Dist(q)
		ts = keywords.Jaccard(o.Terms)
		prox := 1 - d/maxDist
		if prox < 0 {
			prox = 0
		}
		return beta*ts + (1-beta)*prox, d, ts
	}
	s.nodeBound = func(n *node) float64 {
		// Textual bound: Jaccard(kw, C(p)) ≤ |kw ∩ terms(N)| / |kw| for
		// every descendant p, since the union is at least |kw|.
		var tb float64
		if keywords.Len() > 0 {
			inter := 0
			for _, term := range keywords.Items() {
				if _, ok := n.terms[term]; ok {
					inter++
				}
			}
			tb = float64(inter) / float64(keywords.Len())
		}
		prox := 1 - n.rect.MinDist(q)/maxDist
		if prox < 0 {
			prox = 0
		}
		return beta*tb + (1-beta)*prox
	}
	s.h = pq{{n: t.root, bound: s.nodeBound(t.root)}}
	return s
}

// Next returns the next result in canonical order, or ok=false when the
// tree is exhausted.
func (s *Searcher) Next() (Result, bool) {
	for len(s.h) > 0 {
		e := heap.Pop(&s.h).(pqEntry)
		if e.n == nil {
			return Result{Obj: e.obj, Score: e.bound, Dist: e.dist, TextSim: e.tsim}, true
		}
		if e.n.leaf {
			for _, o := range e.n.objects {
				sc, d, ts := s.score(o)
				heap.Push(&s.h, pqEntry{obj: o, bound: sc, dist: d, tsim: ts})
			}
			continue
		}
		for _, c := range e.n.children {
			heap.Push(&s.h, pqEntry{n: c, bound: s.nodeBound(c)})
		}
	}
	return Result{}, false
}

// NearestK returns the k objects nearest to q (pure spatial kNN via
// best-first search on MINDIST), nearest first.
func (t *Tree) NearestK(q geo.Point, k int) []Result {
	if k <= 0 || t.size == 0 {
		return nil
	}
	h := &pq{{n: t.root, bound: -t.root.rect.MinDist(q)}}
	var out []Result
	for h.Len() > 0 && len(out) < k {
		e := heap.Pop(h).(pqEntry)
		if e.n == nil {
			out = append(out, Result{Obj: e.obj, Dist: -e.bound})
			continue
		}
		if e.n.leaf {
			for _, o := range e.n.objects {
				heap.Push(h, pqEntry{obj: o, bound: -o.Loc.Dist(q)})
			}
			continue
		}
		for _, c := range e.n.children {
			heap.Push(h, pqEntry{n: c, bound: -c.rect.MinDist(q)})
		}
	}
	return out
}

// RangeSearch returns all objects inside r, in no particular order.
func (t *Tree) RangeSearch(r geo.Rect) []Object {
	if t.size == 0 {
		return nil
	}
	var out []Object
	var walk func(n *node)
	walk = func(n *node) {
		if !n.rect.Intersects(r) {
			return
		}
		if n.leaf {
			for _, o := range n.objects {
				if r.Contains(o.Loc) {
					out = append(out, o)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// BulkLoad builds an IR-tree over objs using Sort-Tile-Recursive packing,
// which produces a well-filled balanced tree much faster than repeated
// insertion. The input slice is not modified.
func BulkLoad(objs []Object) (*Tree, error) {
	t := New()
	for _, o := range objs {
		if !o.Loc.Valid() {
			return nil, &InvalidObjectError{ID: o.ID, Loc: o.Loc}
		}
	}
	if len(objs) == 0 {
		return t, nil
	}
	t.size = len(objs)

	// Pack leaves with STR.
	sorted := append([]Object(nil), objs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Loc.X < sorted[j].Loc.X })
	cap_ := t.maxEntries
	nLeaves := (len(sorted) + cap_ - 1) / cap_
	nSlices := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	sliceSz := nSlices * cap_

	var leaves []*node
	for s := 0; s < len(sorted); s += sliceSz {
		end := s + sliceSz
		if end > len(sorted) {
			end = len(sorted)
		}
		strip := sorted[s:end]
		sort.Slice(strip, func(i, j int) bool { return strip[i].Loc.Y < strip[j].Loc.Y })
		for o := 0; o < len(strip); o += cap_ {
			oe := o + cap_
			if oe > len(strip) {
				oe = len(strip)
			}
			leaf := &node{leaf: true, objects: append([]Object(nil), strip[o:oe]...)}
			leaf.recompute()
			leaves = append(leaves, leaf)
		}
	}

	// Build internal levels by packing children in groups.
	level := leaves
	for len(level) > 1 {
		var next []*node
		for s := 0; s < len(level); s += cap_ {
			e := s + cap_
			if e > len(level) {
				e = len(level)
			}
			n := &node{children: append([]*node(nil), level[s:e]...)}
			n.recompute()
			next = append(next, n)
		}
		level = next
	}
	t.root = level[0]
	return t, nil
}

// InvalidObjectError reports an object with a non-finite location.
type InvalidObjectError struct {
	ID  int32
	Loc geo.Point
}

// Error implements error.
func (e *InvalidObjectError) Error() string {
	return fmt.Sprintf("irtree: invalid location %v for object %d", e.Loc, e.ID)
}
