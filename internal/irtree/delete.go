package irtree

import (
	"repro/internal/geo"
	"repro/internal/textctx"
)

// Delete removes the object with the given id located at loc (the
// location narrows the search to one subtree path). It returns whether an
// object was removed. Nodes that underflow below the minimum fill are
// dissolved and their remaining entries reinserted — the classic R-tree
// condense step — and rectangles and inverted files are recomputed along
// the affected paths.
func (t *Tree) Delete(id int32, loc geo.Point) bool {
	if t.size == 0 || !loc.Valid() {
		return false
	}
	leaf, path := t.findLeaf(t.root, nil, id, loc)
	if leaf == nil {
		return false
	}
	for i, o := range leaf.objects {
		if o.ID == id && o.Loc == loc {
			leaf.objects = append(leaf.objects[:i], leaf.objects[i+1:]...)
			break
		}
	}
	t.size--

	// Condense: collect entries of underflowing non-root nodes, then
	// recompute rect/terms bottom-up along the path.
	var orphanObjects []Object
	var orphanNodes []*node
	for i := len(path) - 1; i >= 1; i-- {
		n := path[i]
		parent := path[i-1]
		if n.entryCount() < t.minEntries {
			removeChild(parent, n)
			if n.leaf {
				orphanObjects = append(orphanObjects, n.objects...)
			} else {
				orphanNodes = append(orphanNodes, n.children...)
			}
		}
	}
	for i := len(path) - 1; i >= 0; i-- {
		path[i].recompute()
	}
	// Shrink the root if it lost all but one child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if !t.root.leaf && len(t.root.children) == 0 {
		t.root = &node{leaf: true, terms: map[textctx.ItemID]struct{}{}}
	}

	// Reinsert orphaned entries. Subtree orphans are flattened to their
	// objects: correct (if not optimal) and keeps the logic simple.
	for len(orphanNodes) > 0 {
		n := orphanNodes[len(orphanNodes)-1]
		orphanNodes = orphanNodes[:len(orphanNodes)-1]
		if n.leaf {
			orphanObjects = append(orphanObjects, n.objects...)
		} else {
			orphanNodes = append(orphanNodes, n.children...)
		}
	}
	for _, o := range orphanObjects {
		t.size-- // insert re-increments
		t.insert(o)
	}
	return true
}

// findLeaf locates the leaf containing the object, descending only into
// subtrees whose rectangle contains loc.
func (t *Tree) findLeaf(n *node, path []*node, id int32, loc geo.Point) (*node, []*node) {
	if !n.rect.Contains(loc) && t.size > 0 && n != t.root {
		return nil, nil
	}
	path = append(path, n)
	if n.leaf {
		for _, o := range n.objects {
			if o.ID == id && o.Loc == loc {
				return n, path
			}
		}
		return nil, nil
	}
	for _, c := range n.children {
		if c.rect.Contains(loc) {
			if leaf, p := t.findLeaf(c, path, id, loc); leaf != nil {
				return leaf, p
			}
		}
	}
	return nil, nil
}

func removeChild(parent, child *node) {
	for i, c := range parent.children {
		if c == child {
			parent.children = append(parent.children[:i], parent.children[i+1:]...)
			return
		}
	}
}
