package irtree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/textctx"
)

func TestDeleteBasic(t *testing.T) {
	tr := New()
	objs := []Object{
		{ID: 1, Loc: geo.Pt(1, 1), Terms: textctx.NewSet(1)},
		{ID: 2, Loc: geo.Pt(2, 2), Terms: textctx.NewSet(2)},
		{ID: 3, Loc: geo.Pt(3, 3), Terms: textctx.NewSet(3)},
	}
	for _, o := range objs {
		if err := tr.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if !tr.Delete(2, geo.Pt(2, 2)) {
		t.Fatal("Delete returned false for present object")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d after delete", tr.Len())
	}
	if tr.Delete(2, geo.Pt(2, 2)) {
		t.Error("double delete returned true")
	}
	if tr.Delete(99, geo.Pt(1, 1)) {
		t.Error("deleting unknown id returned true")
	}
	if tr.Delete(1, geo.Pt(9, 9)) {
		t.Error("deleting with wrong location returned true")
	}
	got := tr.NearestK(geo.Pt(2, 2), 3)
	if len(got) != 2 {
		t.Fatalf("NearestK after delete returned %d", len(got))
	}
	for _, r := range got {
		if r.Obj.ID == 2 {
			t.Error("deleted object still returned")
		}
	}
}

func TestDeleteEmptyAndInvalid(t *testing.T) {
	tr := New()
	if tr.Delete(1, geo.Pt(0, 0)) {
		t.Error("delete on empty tree returned true")
	}
	if err := tr.Insert(Object{ID: 1, Loc: geo.Pt(0, 0)}); err != nil {
		t.Fatal(err)
	}
	if tr.Delete(1, geo.Point{X: 1, Y: math.Inf(1)}) { // invalid loc
		t.Error("invalid location accepted")
	}
}

// TestDeleteManyMaintainsInvariants deletes half of a large tree in
// random order, checking structural invariants and query correctness
// along the way.
func TestDeleteManyMaintainsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	objs := randomObjects(rng, 600, 40, 5)
	tr := New()
	for _, o := range objs {
		if err := tr.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	perm := rng.Perm(len(objs))
	removed := map[int32]bool{}
	for n, pi := range perm[:300] {
		o := objs[pi]
		if !tr.Delete(o.ID, o.Loc) {
			t.Fatalf("failed to delete object %d", o.ID)
		}
		removed[o.ID] = true
		if n%50 == 0 {
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("after %d deletions: %v", n+1, err)
			}
		}
	}
	if tr.Len() != 300 {
		t.Fatalf("Len = %d, want 300", tr.Len())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every remaining object is findable; no removed one is.
	all := tr.RangeSearch(geo.NewRect(geo.Pt(-1, -1), geo.Pt(101, 101)))
	if len(all) != 300 {
		t.Fatalf("RangeSearch found %d objects", len(all))
	}
	for _, o := range all {
		if removed[o.ID] {
			t.Fatalf("removed object %d still present", o.ID)
		}
	}
}

func TestDeleteToEmptyAndReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	objs := randomObjects(rng, 80, 20, 4)
	tr := New()
	for _, o := range objs {
		if err := tr.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	for _, o := range objs {
		if !tr.Delete(o.ID, o.Loc) {
			t.Fatalf("failed to delete %d", o.ID)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	// The tree must be reusable after draining.
	for _, o := range objs[:20] {
		if err := tr.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tr.NearestK(geo.Pt(50, 50), 5); len(got) != 5 {
		t.Fatalf("NearestK after refill returned %d", len(got))
	}
}

// TestDeleteKeepsInvertedFilesTight: after deletions, node inverted files
// must not miss terms of remaining objects (checkInvariants covers the
// superset direction; here we verify queries still find matches).
func TestDeleteKeepsInvertedFilesTight(t *testing.T) {
	d := textctx.NewDict()
	tr := New()
	for i := 0; i < 60; i++ {
		term := "common"
		if i == 42 {
			term = "special"
		}
		err := tr.Insert(Object{
			ID:    int32(i),
			Loc:   geo.Pt(float64(i%10), float64(i/10)),
			Terms: textctx.NewSetFromStrings(d, []string{term}),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	special, _ := d.Lookup("special")
	kw := textctx.NewSet(special)
	// Delete a batch of commons around the special object.
	for i := 35; i < 42; i++ {
		if !tr.Delete(int32(i), geo.Pt(float64(i%10), float64(i/10))) {
			t.Fatalf("delete %d failed", i)
		}
	}
	got := tr.TopK(geo.Pt(5, 5), kw, QueryOptions{K: 1, Beta: 0.99})
	if len(got) != 1 || got[0].Obj.ID != 42 {
		t.Fatalf("TopK after deletions = %+v, want object 42", got)
	}
}
