// Package irtree implements an IR-tree (Cong, Jensen & Wu, PVLDB 2009): an
// R-tree whose every node carries an inverted file summarising the
// contextual terms of its subtree. It is the retrieval substrate of the
// reproduction — the component that, given a query location and keywords,
// produces the ranked set S of relevant places that the proportionality
// framework then selects from.
//
// The tree supports one-by-one insertion (quadratic split), Sort-Tile-
// Recursive bulk loading, top-k spatial-keyword search with best-first
// traversal and tight upper bounds, pure-spatial k-nearest-neighbour
// search, and rectangular range search.
package irtree

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/textctx"
)

// Object is an indexed spatial object with a contextual term set.
type Object struct {
	ID    int32
	Loc   geo.Point
	Terms textctx.Set
}

// Default fan-out parameters.
const (
	defaultMaxEntries = 16
	defaultMinEntries = 4
)

type node struct {
	leaf     bool
	rect     geo.Rect
	children []*node  // internal nodes
	objects  []Object // leaf nodes
	// terms is the node's inverted file: the set of distinct terms
	// appearing anywhere in the subtree. It yields the admissible textual
	// upper bound used by best-first search.
	terms map[textctx.ItemID]struct{}
}

// Tree is an IR-tree. The zero value is not usable; call New or BulkLoad.
// A Tree is safe for concurrent reads after all writes complete.
type Tree struct {
	root       *node
	maxEntries int
	minEntries int
	size       int
}

// New returns an empty IR-tree with the default fan-out.
func New() *Tree {
	return &Tree{
		root:       &node{leaf: true, terms: map[textctx.ItemID]struct{}{}},
		maxEntries: defaultMaxEntries,
		minEntries: defaultMinEntries,
	}
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.size }

// Bounds returns the minimum bounding rectangle of all indexed objects and
// whether the tree is non-empty.
func (t *Tree) Bounds() (geo.Rect, bool) {
	if t.size == 0 {
		return geo.Rect{}, false
	}
	return t.root.rect, true
}

// Insert adds obj to the tree.
func (t *Tree) Insert(obj Object) error {
	if !obj.Loc.Valid() {
		return fmt.Errorf("irtree: invalid location %v for object %d", obj.Loc, obj.ID)
	}
	t.insert(obj)
	return nil
}

func (t *Tree) insert(obj Object) {
	leaf, path := t.chooseLeaf(obj.Loc)
	leaf.objects = append(leaf.objects, obj)
	// Every node on the path has a valid rect (chooseLeaf initialises the
	// root's on the first insert), so extending is a plain union.
	r := geo.RectOf(obj.Loc)
	for _, n := range path {
		n.rect = n.rect.Union(r)
		for _, term := range obj.Terms.Items() {
			n.terms[term] = struct{}{}
		}
	}
	t.size++
	// Split overflowing nodes bottom-up.
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if n.entryCount() <= t.maxEntries {
			break
		}
		left, right := t.split(n)
		if i == 0 {
			// Root split: grow the tree.
			t.root = &node{
				leaf:     false,
				rect:     left.rect.Union(right.rect),
				children: []*node{left, right},
				terms:    unionTerms(left.terms, right.terms),
			}
		} else {
			parent := path[i-1]
			replaceChild(parent, n, left, right)
		}
	}
}

func (n *node) entryCount() int {
	if n.leaf {
		return len(n.objects)
	}
	return len(n.children)
}

// chooseLeaf descends by least area enlargement (ties by smaller area),
// returning the target leaf and the full root-to-leaf path.
func (t *Tree) chooseLeaf(p geo.Point) (*node, []*node) {
	n := t.root
	path := []*node{n}
	// Fix up the root rect for the very first insert.
	if t.size == 0 {
		n.rect = geo.RectOf(p)
	}
	for !n.leaf {
		r := geo.RectOf(p)
		var best *node
		bestEnl, bestArea := math.Inf(1), math.Inf(1)
		for _, c := range n.children {
			enl := c.rect.EnlargementArea(r)
			area := c.rect.Area()
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = c, enl, area
			}
		}
		n = best
		path = append(path, n)
	}
	return n, path
}

func replaceChild(parent, old, a, b *node) {
	for i, c := range parent.children {
		if c == old {
			parent.children[i] = a
			parent.children = append(parent.children, b)
			return
		}
	}
	panic("irtree: split child not found in parent")
}

// split performs the classic quadratic split on an overflowing node,
// returning the two halves with recomputed rectangles and inverted files.
func (t *Tree) split(n *node) (*node, *node) {
	if n.leaf {
		rects := make([]geo.Rect, len(n.objects))
		for i, o := range n.objects {
			rects[i] = geo.RectOf(o.Loc)
		}
		ga, gb := quadraticPartition(rects, t.minEntries)
		a := &node{leaf: true, terms: map[textctx.ItemID]struct{}{}}
		b := &node{leaf: true, terms: map[textctx.ItemID]struct{}{}}
		for _, i := range ga {
			a.objects = append(a.objects, n.objects[i])
		}
		for _, i := range gb {
			b.objects = append(b.objects, n.objects[i])
		}
		a.recompute()
		b.recompute()
		return a, b
	}
	rects := make([]geo.Rect, len(n.children))
	for i, c := range n.children {
		rects[i] = c.rect
	}
	ga, gb := quadraticPartition(rects, t.minEntries)
	a := &node{terms: map[textctx.ItemID]struct{}{}}
	b := &node{terms: map[textctx.ItemID]struct{}{}}
	for _, i := range ga {
		a.children = append(a.children, n.children[i])
	}
	for _, i := range gb {
		b.children = append(b.children, n.children[i])
	}
	a.recompute()
	b.recompute()
	return a, b
}

// recompute rebuilds a node's rect and inverted file from its entries.
func (n *node) recompute() {
	if n.terms == nil {
		n.terms = map[textctx.ItemID]struct{}{}
	} else {
		clear(n.terms)
	}
	if n.leaf {
		if len(n.objects) == 0 {
			n.rect = geo.Rect{}
			return
		}
		n.rect = geo.RectOf(n.objects[0].Loc)
		for _, o := range n.objects {
			n.rect = n.rect.Extend(o.Loc)
			for _, term := range o.Terms.Items() {
				n.terms[term] = struct{}{}
			}
		}
		return
	}
	if len(n.children) == 0 {
		n.rect = geo.Rect{}
		return
	}
	n.rect = n.children[0].rect
	for _, c := range n.children {
		n.rect = n.rect.Union(c.rect)
		for term := range c.terms {
			n.terms[term] = struct{}{}
		}
	}
}

func unionTerms(a, b map[textctx.ItemID]struct{}) map[textctx.ItemID]struct{} {
	out := make(map[textctx.ItemID]struct{}, len(a)+len(b))
	for k := range a {
		out[k] = struct{}{}
	}
	for k := range b {
		out[k] = struct{}{}
	}
	return out
}

// quadraticPartition splits indices 0..n−1 of rects into two groups using
// Guttman's quadratic method, honouring the minimum fill m.
func quadraticPartition(rects []geo.Rect, m int) (ga, gb []int) {
	n := len(rects)
	// Pick seeds: the pair wasting the most area if grouped together.
	si, sj := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			waste := rects[i].Union(rects[j]).Area() - rects[i].Area() - rects[j].Area()
			if waste > worst {
				worst, si, sj = waste, i, j
			}
		}
	}
	ra, rb := rects[si], rects[sj]
	ga, gb = []int{si}, []int{sj}
	assigned := make([]bool, n)
	assigned[si], assigned[sj] = true, true
	for remaining := n - 2; remaining > 0; remaining-- {
		// Force assignment if a group must take all the rest to reach m.
		if len(ga)+remaining == m {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					assigned[i] = true
					ga = append(ga, i)
					ra = ra.Union(rects[i])
				}
			}
			return ga, gb
		}
		if len(gb)+remaining == m {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					assigned[i] = true
					gb = append(gb, i)
					rb = rb.Union(rects[i])
				}
			}
			return ga, gb
		}
		// Pick the unassigned entry with the greatest preference.
		pick, pickA := -1, false
		bestDiff := math.Inf(-1)
		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			da := ra.EnlargementArea(rects[i])
			db := rb.EnlargementArea(rects[i])
			diff := math.Abs(da - db)
			if diff > bestDiff {
				bestDiff = diff
				pick = i
				pickA = da < db || (da == db && len(ga) <= len(gb))
			}
		}
		assigned[pick] = true
		if pickA {
			ga = append(ga, pick)
			ra = ra.Union(rects[pick])
		} else {
			gb = append(gb, pick)
			rb = rb.Union(rects[pick])
		}
	}
	return ga, gb
}

// Height returns the tree height (1 for a root-only tree).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// checkInvariants walks the tree verifying structural invariants; it is
// used by tests and returns the first violation found.
func (t *Tree) checkInvariants() error {
	var count int
	var walk func(n *node, depth int, root bool) (int, error)
	walk = func(n *node, depth int, root bool) (int, error) {
		if n.leaf {
			if !root && (len(n.objects) < t.minEntries || len(n.objects) > t.maxEntries) {
				return 0, fmt.Errorf("leaf fill %d outside [%d, %d]", len(n.objects), t.minEntries, t.maxEntries)
			}
			for _, o := range n.objects {
				count++
				if !n.rect.Contains(o.Loc) {
					return 0, fmt.Errorf("object %d outside leaf rect", o.ID)
				}
				for _, term := range o.Terms.Items() {
					if _, ok := n.terms[term]; !ok {
						return 0, fmt.Errorf("leaf inverted file missing term %d of object %d", term, o.ID)
					}
				}
			}
			return depth, nil
		}
		if !root && (len(n.children) < t.minEntries || len(n.children) > t.maxEntries) {
			return 0, fmt.Errorf("node fill %d outside [%d, %d]", len(n.children), t.minEntries, t.maxEntries)
		}
		leafDepth := -1
		for _, c := range n.children {
			if !n.rect.ContainsRect(c.rect) {
				return 0, fmt.Errorf("child rect escapes parent")
			}
			for term := range c.terms {
				if _, ok := n.terms[term]; !ok {
					return 0, fmt.Errorf("inverted file missing child term %d", term)
				}
			}
			d, err := walk(c, depth+1, false)
			if err != nil {
				return 0, err
			}
			if leafDepth == -1 {
				leafDepth = d
			} else if leafDepth != d {
				return 0, fmt.Errorf("unbalanced tree: leaf depths %d and %d", leafDepth, d)
			}
		}
		return leafDepth, nil
	}
	if _, err := walk(t.root, 0, true); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size %d but found %d objects", t.size, count)
	}
	return nil
}
