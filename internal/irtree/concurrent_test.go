package irtree

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geo"
	"repro/internal/textctx"
)

// TestConcurrentQueries: the tree is read-only after loading, so parallel
// TopK / NearestK / RangeSearch must be race-free and deterministic.
func TestConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	objs := randomObjects(rng, 2000, 200, 6)
	tr, err := BulkLoad(objs)
	if err != nil {
		t.Fatal(err)
	}
	q := geo.Pt(50, 50)
	kw := textctx.NewSet(1, 2, 3)
	want := tr.TopK(q, kw, QueryOptions{K: 20})

	var wg sync.WaitGroup
	fail := make(chan string, 24)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := tr.TopK(q, kw, QueryOptions{K: 20})
			if len(got) != len(want) {
				fail <- "TopK length mismatch"
				return
			}
			for i := range got {
				if got[i].Score != want[i].Score {
					fail <- "TopK score mismatch"
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := tr.NearestK(q, 15); len(got) != 15 {
				fail <- "NearestK length mismatch"
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := geo.NewRect(geo.Pt(25, 25), geo.Pt(75, 75))
			if got := tr.RangeSearch(r); len(got) == 0 {
				fail <- "RangeSearch empty"
			}
		}()
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
}
