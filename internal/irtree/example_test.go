package irtree_test

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/irtree"
	"repro/internal/textctx"
)

// Example shows top-k spatial keyword retrieval over a bulk-loaded
// IR-tree: a query location plus keywords rank objects by combined
// textual and spatial relevance — the nearby partial match (the music
// museum next door) outranks the perfect match on the far side of town.
func Example() {
	d := textctx.NewDict()
	objs := []irtree.Object{
		{ID: 1, Loc: geo.Pt(1, 0), Terms: textctx.NewSetFromStrings(d, []string{"history", "museum"})},
		{ID: 2, Loc: geo.Pt(0, 2), Terms: textctx.NewSetFromStrings(d, []string{"park"})},
		{ID: 3, Loc: geo.Pt(5, 5), Terms: textctx.NewSetFromStrings(d, []string{"history", "museum"})},
		{ID: 4, Loc: geo.Pt(-1, 0), Terms: textctx.NewSetFromStrings(d, []string{"music", "museum"})},
	}
	tree, err := irtree.BulkLoad(objs)
	if err != nil {
		fmt.Println(err)
		return
	}
	kw := textctx.NewSetFromStrings(d, []string{"history", "museum"})
	for _, r := range tree.TopK(geo.Pt(0, 0), kw, irtree.QueryOptions{K: 2}) {
		fmt.Printf("object %d (text %.2f)\n", r.Obj.ID, r.TextSim)
	}
	// Output:
	// object 1 (text 1.00)
	// object 4 (text 0.33)
}
