// Package registry holds the multi-tenant corpus registry: a named set
// of tenants, each owning one engine (corpus + caches), one admission
// gate, one SLO tracker and its own durability state (per-corpus WAL,
// recovery progress, degradation latch). The server routes corpus-scoped
// requests (/v1/corpora/{name}/...) to the tenant of that name and the
// un-scoped /v1 aliases to the tenant named "default".
//
// Isolation is structural: tenants share no engine, no score-set LRU,
// no gate and no log, so one tenant's cache keys, admission pressure or
// WAL failures cannot leak into another's. The registry itself is only
// a concurrent name → tenant map.
package registry

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/resilience"
	"repro/internal/slo"
	"repro/internal/tracestore"
	"repro/internal/wal"
)

// DefaultName is the tenant the un-scoped /v1 routes address.
const DefaultName = "default"

// ErrExists marks an Add rejected because the name is taken; servers
// map it to 409 Conflict.
var ErrExists = errors.New("corpus already exists")

// nameRE is the corpus-name grammar: path-safe (names become WAL
// directory names and URL path segments), lowercase, no leading
// punctuation, at most 64 characters.
var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]{0,63}$`)

// ValidName reports whether name is an acceptable corpus name.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// Tenant is one named corpus with its full serving stack: the engine,
// its admission gate, its SLO tracker, and its durability state. The
// exported fields are set at construction and immutable afterwards; the
// durability state is atomic and safe for concurrent use.
type Tenant struct {
	// Name is the registry key and the {corpus} path segment.
	Name string
	// Eng owns the corpus, its epoch snapshots and its score-set LRU.
	Eng *engine.Engine
	// Gate is the tenant's admission gate: per-tenant accounting, so one
	// tenant's load sheds against its own bound.
	Gate *resilience.Gate
	// SLO is the tenant's tracker; nil when SLO tracking is disabled
	// (the tracker is nil-safe).
	SLO *slo.Tracker
	// Traces is the tenant's retained-trace ring; nil when tracing is
	// disabled (the store is nil-safe). Per-tenant like the gate and the
	// tracker: a noisy corpus evicts only its own traces.
	Traces *tracestore.Store
	// WALDir is the tenant's log directory; "" when not durable.
	WALDir string

	// Durability state, mirroring the single-corpus server's lifecycle:
	// ready gates mutations while WAL replay runs; walLog enables
	// compaction and metrics; walDegraded latches the reads-only mode.
	ready           atomic.Bool
	walLog          atomic.Pointer[wal.Log]
	walDegraded     atomic.Pointer[string]
	compacting      atomic.Bool
	replayedRecords atomic.Uint64
	recoveredEpoch  atomic.Uint64
	recoveryNanos   atomic.Int64
}

// NewTenant builds a ready tenant. gate must be non-nil; tracker may be
// nil (SLO tracking disabled).
func NewTenant(name string, eng *engine.Engine, gate *resilience.Gate, tracker *slo.Tracker) *Tenant {
	t := &Tenant{Name: name, Eng: eng, Gate: gate, SLO: tracker}
	t.ready.Store(true)
	return t
}

// Ready reports whether the tenant accepts mutations (recovery, if any,
// has completed).
func (t *Tenant) Ready() bool { return t.ready.Load() }

// BeginRecovery marks the tenant not ready: mutations are shed until
// FinishRecovery, reads keep serving the engine's current epoch.
func (t *Tenant) BeginRecovery() { t.ready.Store(false) }

// FinishRecovery records the recovery outcome and flips the tenant
// ready.
func (t *Tenant) FinishRecovery(replayed int, epoch uint64, dur time.Duration) {
	t.replayedRecords.Store(uint64(replayed))
	t.recoveredEpoch.Store(epoch)
	t.recoveryNanos.Store(int64(dur))
	t.ready.Store(true)
}

// RecoveryStats returns what the last recovery replayed: record count,
// re-established epoch and replay duration.
func (t *Tenant) RecoveryStats() (replayed int, epoch uint64, dur time.Duration) {
	return int(t.replayedRecords.Load()), t.recoveredEpoch.Load(), time.Duration(t.recoveryNanos.Load())
}

// AttachWAL hands the tenant its open log for compaction and metrics.
// The engine's own hookup (Engine.SetWAL) is separate: during replay
// the engine must mutate without re-logging.
func (t *Tenant) AttachWAL(l *wal.Log) { t.walLog.Store(l) }

// WAL returns the attached log, nil when the tenant is not durable.
func (t *Tenant) WAL() *wal.Log { return t.walLog.Load() }

// WALStats snapshots the attached log's counters, or zeros without one.
func (t *Tenant) WALStats() wal.Stats {
	if l := t.walLog.Load(); l != nil {
		return l.Stats()
	}
	return wal.Stats{}
}

// Degrade latches the tenant into degraded durability: reads keep
// serving, every mutation is shed naming reason, and the tenant counts
// as ready (it is ready — just read-mostly).
func (t *Tenant) Degrade(err error) {
	msg := err.Error()
	t.walDegraded.Store(&msg)
	t.ready.Store(true)
}

// DegradedReason returns the degradation cause, or "" when healthy.
func (t *Tenant) DegradedReason() string {
	if r := t.walDegraded.Load(); r != nil {
		return *r
	}
	return ""
}

// WALState summarises the tenant's durability mode: "degraded",
// "recovering", "broken", "active" or "disabled".
func (t *Tenant) WALState() string {
	switch {
	case t.walDegraded.Load() != nil:
		return "degraded"
	case !t.ready.Load():
		return "recovering"
	case t.WALStats().Broken:
		return "broken"
	case t.walLog.Load() != nil:
		return "active"
	default:
		return "disabled"
	}
}

// TryCompact claims the tenant's single background-compaction slot;
// the caller must EndCompact when done. False when a compaction is
// already running.
func (t *Tenant) TryCompact() bool { return t.compacting.CompareAndSwap(false, true) }

// EndCompact releases the compaction slot.
func (t *Tenant) EndCompact() { t.compacting.Store(false) }

// Registry is a concurrent name → tenant map.
type Registry struct {
	mu      sync.RWMutex
	tenants map[string]*Tenant
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{tenants: make(map[string]*Tenant)}
}

// Add registers t under its name. Invalid names and duplicates fail.
func (r *Registry) Add(t *Tenant) error {
	if !ValidName(t.Name) {
		return fmt.Errorf("registry: invalid corpus name %q (want %s)", t.Name, nameRE)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[t.Name]; ok {
		return fmt.Errorf("registry: %q: %w", t.Name, ErrExists)
	}
	r.tenants[t.Name] = t
	return nil
}

// Get returns the tenant of that name.
func (r *Registry) Get(name string) (*Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tenants[name]
	return t, ok
}

// Remove unregisters and returns the tenant of that name. Requests
// in flight on the tenant finish undisturbed; new lookups miss.
func (r *Registry) Remove(name string) (*Tenant, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[name]
	if ok {
		delete(r.tenants, name)
	}
	return t, ok
}

// Len returns the number of registered tenants.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tenants)
}

// Names returns the registered corpus names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.tenants))
	for name := range r.tenants {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns the registered tenants, sorted by name.
func (r *Registry) All() []*Tenant {
	r.mu.RLock()
	out := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
