package registry

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/resilience"
)

func testTenant(t *testing.T, name string) *Tenant {
	t.Helper()
	cfg := dataset.DBpediaLike(11)
	cfg.Places = 60
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewTenant(name, engine.New(d, engine.Options{}), resilience.NewGate(2, 2, time.Second), nil)
}

func TestValidName(t *testing.T) {
	for _, ok := range []string{"default", "tenant-2", "a", "geo_eu", "x9"} {
		if !ValidName(ok) {
			t.Errorf("ValidName(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "-lead", "_lead", "UPPER", "has space", "a/b", "a.b",
		"waytoolong" + string(make([]byte, 64))} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true", bad)
		}
	}
}

func TestRegistryAddGetRemove(t *testing.T) {
	r := New()
	a, b := testTenant(t, "alpha"), testTenant(t, "beta")
	if err := r.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(b); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(testTenant(t, "alpha")); err == nil {
		t.Error("duplicate Add accepted")
	}
	if err := r.Add(testTenant(t, "Bad Name")); err == nil {
		t.Error("invalid name accepted")
	}
	if got, ok := r.Get("alpha"); !ok || got != a {
		t.Fatalf("Get(alpha) = %v, %v", got, ok)
	}
	if names := r.Names(); len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("Names = %v", names)
	}
	if all := r.All(); len(all) != 2 || all[0] != a || all[1] != b {
		t.Fatalf("All = %v", all)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if got, ok := r.Remove("alpha"); !ok || got != a {
		t.Fatalf("Remove(alpha) = %v, %v", got, ok)
	}
	if _, ok := r.Get("alpha"); ok {
		t.Error("removed tenant still resolvable")
	}
	if _, ok := r.Remove("alpha"); ok {
		t.Error("second Remove found a tenant")
	}
}

func TestTenantLifecycle(t *testing.T) {
	tn := testTenant(t, "life")
	if !tn.Ready() || tn.WALState() != "disabled" {
		t.Fatalf("fresh tenant: ready=%v state=%q", tn.Ready(), tn.WALState())
	}
	tn.BeginRecovery()
	if tn.Ready() || tn.WALState() != "recovering" {
		t.Fatalf("recovering tenant: ready=%v state=%q", tn.Ready(), tn.WALState())
	}
	tn.FinishRecovery(7, 3, 50*time.Millisecond)
	if !tn.Ready() {
		t.Fatal("tenant not ready after FinishRecovery")
	}
	replayed, epoch, dur := tn.RecoveryStats()
	if replayed != 7 || epoch != 3 || dur != 50*time.Millisecond {
		t.Fatalf("RecoveryStats = %d, %d, %v", replayed, epoch, dur)
	}

	tn.Degrade(fmt.Errorf("disk gone"))
	if !tn.Ready() || tn.WALState() != "degraded" || tn.DegradedReason() != "disk gone" {
		t.Fatalf("degraded tenant: ready=%v state=%q reason=%q", tn.Ready(), tn.WALState(), tn.DegradedReason())
	}

	if !tn.TryCompact() {
		t.Fatal("first TryCompact failed")
	}
	if tn.TryCompact() {
		t.Fatal("second TryCompact claimed a held slot")
	}
	tn.EndCompact()
	if !tn.TryCompact() {
		t.Fatal("TryCompact after EndCompact failed")
	}
}

// TestTenantIsolation: distinct tenants share no engine state — a cache
// entry built through one never hits in another, even for the same
// query over an identical corpus.
func TestTenantIsolation(t *testing.T) {
	a, b := testTenant(t, "iso-a"), testTenant(t, "iso-b")
	run := func(tn *Tenant) {
		req := tn.Eng.NewRequest()
		req.K, req.SmallK = 40, 5
		if _, err := tn.Eng.Query(t.Context(), req); err != nil {
			t.Fatal(err)
		}
	}
	run(a)
	run(a)
	run(b)
	as, bs := a.Eng.Stats(), b.Eng.Stats()
	if as.Misses != 1 || as.Hits != 1 {
		t.Fatalf("tenant a stats: %d misses, %d hits; want 1 and 1", as.Misses, as.Hits)
	}
	if bs.Misses != 1 || bs.Hits != 0 {
		t.Fatalf("tenant b saw a's cache: %d misses, %d hits; want 1 and 0", bs.Misses, bs.Hits)
	}
}

// TestRegistryConcurrent exercises the map under the race detector.
func TestRegistryConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("c%d", i)
			_ = r.Add(testTenant(t, name))
			for j := 0; j < 50; j++ {
				r.Get(name)
				r.Names()
				r.All()
				r.Len()
			}
			if i%2 == 0 {
				r.Remove(name)
			}
		}(i)
	}
	wg.Wait()
	if r.Len() != 4 {
		t.Fatalf("Len after churn = %d, want 4", r.Len())
	}
}
