package tracestore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func mkTrace(id string, status int, reason string, d time.Duration, spans int) *Trace {
	t := &Trace{
		ID:       id,
		Status:   status,
		Reason:   reason,
		Duration: d,
	}
	for i := 0; i < spans; i++ {
		t.Spans = append(t.Spans, telemetry.Span{
			ID: i + 1, Stage: "stage", Start: time.Duration(i), Dur: time.Millisecond,
			Attrs: []telemetry.Attr{{Key: "i", Value: i}},
		})
	}
	return t
}

func TestNilStoreIsNoOp(t *testing.T) {
	var s *Store
	s.Add(mkTrace("a", 200, "slow", time.Millisecond, 1))
	if _, ok := s.Get("a"); ok {
		t.Fatal("nil store returned a trace")
	}
	if got := s.List(Filter{}); got != nil {
		t.Fatalf("nil store listed %d traces", len(got))
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil store stats = %+v", st)
	}
}

func TestAddGetList(t *testing.T) {
	s := New(10, 1<<20)
	s.Add(mkTrace("a", 200, "sampled", 1*time.Millisecond, 2))
	s.Add(mkTrace("b", 503, "shed", 2*time.Millisecond, 2))
	s.Add(mkTrace("c", 200, "slow", 9*time.Millisecond, 3))

	if tr, ok := s.Get("b"); !ok || tr.Status != 503 {
		t.Fatalf("Get(b) = %+v, %v", tr, ok)
	}
	all := s.List(Filter{})
	if len(all) != 3 || all[0].ID != "c" || all[2].ID != "a" {
		t.Fatalf("List order wrong: %v", ids(all))
	}
	if got := s.List(Filter{Status: 503}); len(got) != 1 || got[0].ID != "b" {
		t.Fatalf("status filter: %v", ids(got))
	}
	if got := s.List(Filter{Reason: "slow"}); len(got) != 1 || got[0].ID != "c" {
		t.Fatalf("reason filter: %v", ids(got))
	}
	if got := s.List(Filter{MinDuration: 5 * time.Millisecond}); len(got) != 1 || got[0].ID != "c" {
		t.Fatalf("min-duration filter: %v", ids(got))
	}
	if got := s.List(Filter{Limit: 2}); len(got) != 2 || got[0].ID != "c" || got[1].ID != "b" {
		t.Fatalf("limit: %v", ids(got))
	}
}

func TestCountEviction(t *testing.T) {
	s := New(3, 1<<20)
	for i := 0; i < 5; i++ {
		s.Add(mkTrace(fmt.Sprintf("t%d", i), 200, "sampled", time.Millisecond, 1))
	}
	st := s.Stats()
	if st.Retained != 5 || st.Dropped != 2 || st.Traces != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if _, ok := s.Get("t0"); ok {
		t.Fatal("evicted trace still resolvable")
	}
	if _, ok := s.Get("t4"); !ok {
		t.Fatal("newest trace missing")
	}
}

func TestByteEviction(t *testing.T) {
	one := estimateSize(mkTrace("x", 200, "sampled", time.Millisecond, 4))
	s := New(100, one*2+one/2) // room for two, not three
	for i := 0; i < 4; i++ {
		s.Add(mkTrace(fmt.Sprintf("t%d", i), 200, "sampled", time.Millisecond, 4))
	}
	st := s.Stats()
	if st.Traces != 2 || st.Dropped != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes > one*3 {
		t.Fatalf("bytes %d exceeds budget shape", st.Bytes)
	}
}

// An oversized trace must be admitted alone rather than rejected: the
// outlier is exactly what tail sampling exists to keep.
func TestOversizedTraceAdmitted(t *testing.T) {
	s := New(100, 64)
	big := mkTrace("big", 500, "error", time.Second, 50)
	s.Add(big)
	if _, ok := s.Get("big"); !ok {
		t.Fatal("oversized trace was not admitted")
	}
	if st := s.Stats(); st.Traces != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// Concurrent adders, readers and stat scrapers must never race or
// observe a trace with a torn span slice (run under -race via the
// Makefile race list).
func TestConcurrentChurn(t *testing.T) {
	s := New(16, 1<<14)
	var wg, rwg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Add(mkTrace(fmt.Sprintf("w%d-%d", w, i), 200, "sampled", time.Millisecond, 3))
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, tr := range s.List(Filter{Limit: 8}) {
					if len(tr.Spans) != 3 {
						t.Errorf("torn trace %s: %d spans", tr.ID, len(tr.Spans))
						return
					}
				}
				s.Stats()
			}
		}()
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	st := s.Stats()
	if st.Retained != 800 {
		t.Fatalf("retained = %d, want 800", st.Retained)
	}
	if st.Traces > 16 {
		t.Fatalf("ring over count bound: %d", st.Traces)
	}
}

func ids(ts []*Trace) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.ID
	}
	return out
}
