// Package tracestore retains sampled request traces in a bounded
// in-memory ring so operators can walk from an SLO quantile or a log
// line to a concrete span tree without any external tracing backend.
//
// Retention is decided by the caller at request end (tail-based
// sampling: slow/error/shed/degraded requests always, a probabilistic
// remainder otherwise); the store only enforces the bounds. Each tenant
// owns one Store, so a noisy corpus can only evict its own traces —
// isolation is structural, like the per-tenant engines and gates.
//
// A nil *Store is valid and retains nothing, which keeps the disabled
// path nil-check-only in the handlers (the PR 4 explain-collector
// pattern).
package tracestore

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Default bounds applied when New is given zero values.
const (
	// DefaultMaxTraces bounds the ring by count even when the byte
	// budget would admit more (a flood of tiny traces should still age
	// out in bounded time).
	DefaultMaxTraces = 512
	// DefaultByteBudget bounds the ring's estimated footprint.
	DefaultByteBudget = 4 << 20
)

// Trace is one retained request: identity, outcome, and the completed
// span tree. Spans are sorted by start offset and immutable once
// stored — eviction drops whole traces, never individual spans, so a
// reader holding a *Trace can never observe a torn tree.
type Trace struct {
	ID        string
	RequestID string
	Corpus    string
	Endpoint  string
	Status    int
	// Reason is why the tail sampler kept the trace: slow, error, shed,
	// degraded, wal, or sampled.
	Reason string
	Cache  string
	Epoch  uint64
	// Remote is the caller's traceparent span ("trace-id/span-id") when
	// the request joined a distributed trace; "" for fresh traces.
	Remote   string
	Start    time.Time
	Duration time.Duration
	Spans    []telemetry.Span

	size int // estimated bytes, fixed at Add time
}

// estimateSize approximates the trace's in-memory footprint for the
// byte budget. Exactness doesn't matter; monotonicity in span and attr
// count does.
func estimateSize(t *Trace) int {
	n := 256 + len(t.ID) + len(t.RequestID) + len(t.Corpus) + len(t.Endpoint) + len(t.Reason) + len(t.Cache) + len(t.Remote)
	for i := range t.Spans {
		s := &t.Spans[i]
		n += 64 + len(s.Stage)
		for _, a := range s.Attrs {
			n += 48 + len(a.Key)
		}
	}
	return n
}

// Filter selects traces for List. Zero values match everything.
type Filter struct {
	// Status matches the exact HTTP status when non-zero.
	Status int
	// Reason matches the retention reason when non-empty.
	Reason string
	// MinDuration drops traces faster than this.
	MinDuration time.Duration
	// Limit caps the number of traces returned (newest first); 0 means
	// no cap.
	Limit int
}

// Stats is the store's lifetime accounting.
type Stats struct {
	// Retained counts every trace ever added.
	Retained uint64
	// Dropped counts traces evicted by the count or byte bound.
	Dropped uint64
	// Traces is the current ring occupancy.
	Traces int
	// Bytes is the current estimated footprint.
	Bytes int
}

// Store is one tenant's retained-trace ring: newest-wins eviction by
// count and estimated bytes, with an ID index for point lookups. The
// mutex guards only ring bookkeeping (append/evict/lookup) — span trees
// are built before Add and shared immutably after, so readers never
// block writers for longer than a slice copy.
type Store struct {
	mu       sync.Mutex
	max      int
	budget   int
	ring     []*Trace // oldest first
	byID     map[string]*Trace
	bytes    int
	retained atomic.Uint64
	dropped  atomic.Uint64
}

// New returns a store bounded by maxTraces and byteBudget; zero or
// negative values take the package defaults.
func New(maxTraces, byteBudget int) *Store {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	if byteBudget <= 0 {
		byteBudget = DefaultByteBudget
	}
	return &Store{max: maxTraces, budget: byteBudget, byID: make(map[string]*Trace)}
}

// Add retains t, evicting the oldest traces until the ring fits both
// bounds again. A trace larger than the whole budget is admitted alone
// (retaining the outlier is the point of tail sampling).
func (s *Store) Add(t *Trace) {
	if s == nil || t == nil {
		return
	}
	t.size = estimateSize(t)
	s.retained.Add(1)
	s.mu.Lock()
	s.ring = append(s.ring, t)
	s.byID[t.ID] = t
	s.bytes += t.size
	for len(s.ring) > 1 && (len(s.ring) > s.max || s.bytes > s.budget) {
		old := s.ring[0]
		s.ring = s.ring[1:]
		s.bytes -= old.size
		// Only unindex the evicted trace if the ID still maps to it — a
		// duplicate ID re-Add must not orphan the newer trace.
		if s.byID[old.ID] == old {
			delete(s.byID, old.ID)
		}
		s.dropped.Add(1)
	}
	s.mu.Unlock()
}

// Get returns the retained trace with the given ID.
func (s *Store) Get(id string) (*Trace, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	t, ok := s.byID[id]
	s.mu.Unlock()
	return t, ok
}

// List returns the retained traces matching f, newest first.
func (s *Store) List(f Filter) []*Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Trace
	for i := len(s.ring) - 1; i >= 0; i-- {
		t := s.ring[i]
		if f.Status != 0 && t.Status != f.Status {
			continue
		}
		if f.Reason != "" && t.Reason != f.Reason {
			continue
		}
		if f.MinDuration > 0 && t.Duration < f.MinDuration {
			continue
		}
		out = append(out, t)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Stats returns the store's lifetime accounting; zero for a nil store.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	n, b := len(s.ring), s.bytes
	s.mu.Unlock()
	return Stats{
		Retained: s.retained.Load(),
		Dropped:  s.dropped.Load(),
		Traces:   n,
		Bytes:    b,
	}
}
