// Package wal is the durability layer under the live corpus: a
// length-prefixed, CRC32C-checksummed append-only log of corpus
// mutations plus epoch-named snapshot files. The engine appends each
// mutation batch to the log *before* publishing its epoch, so a process
// killed at any moment recovers by loading the newest valid snapshot
// and replaying the log suffix — every acknowledged batch survives,
// and a batch can only ever be recovered whole (epoch atomicity is
// preserved across crashes, not just across concurrent readers).
//
// On-disk layout (one directory):
//
//	wal.log               append-only record log (see record framing below)
//	snapshot-<epoch>.gob  dataset.Save output for the corpus at <epoch>
//
// Record framing: an 8-byte file magic, then per record
//
//	[4B little-endian length n][4B CRC32C of body][body: 8B epoch + payload]
//
// where n = len(body). A truncated or checksum-failing *final* record is
// a torn tail — the expected residue of a crash mid-append — and is
// dropped with a warning and truncated away. Any earlier corruption
// (a checksum failure followed by more data, an invalid length, an
// out-of-order epoch) cannot be explained by a torn write and is a hard
// ErrCorrupt: recovery must not guess its way past real damage.
//
// Fsync policy is configurable (SyncAlways / SyncInterval / SyncNever):
// "always" gives zero acknowledged-batch loss on power failure at the
// cost of one fsync per mutation (measured in BENCH_wal.json), the
// other two trade a bounded window of acknowledged batches for
// throughput. Transient append failures are retried with bounded
// backoff (resilience.Retry); a failure that leaves the file state
// unknowable (an fsync error, a failed truncate-back after a partial
// write) latches the log broken so no later append can silently land
// after garbage.
package wal

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
)

// ErrCorrupt marks damage the log cannot safely skip: a mid-log
// checksum failure, invalid record framing, or epochs out of order.
// A torn tail is NOT ErrCorrupt — it is repaired silently with a
// warning.
var ErrCorrupt = errors.New("wal: log corrupt")

// ErrBroken is wrapped by every Append after a failure left the file
// state unknowable (fsync error, failed truncate-back). The log sheds
// writes until the process restarts and recovery re-establishes a
// known-good tail.
var ErrBroken = errors.New("wal: log broken")

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged batch
	// survives kill -9 and power loss.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker: a crash loses at most
	// the last interval's acknowledged batches.
	SyncInterval
	// SyncNever leaves flushing to the OS: a crash loses whatever the
	// page cache held.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy maps the -wal-sync flag values onto a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (have always, interval, never)", s)
}

// Options configures a Log. Zero values select the documented defaults.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the background fsync period under SyncInterval
	// (default 100ms).
	SyncInterval time.Duration
	// Retry bounds the append retry loop on transient write errors
	// (default 3 attempts, 5ms base backoff, 100ms cap).
	Retry resilience.RetryPolicy
	// MaxRecordBytes rejects absurd record lengths during both append
	// and scan (default 64 MiB). A scanned length beyond it is ErrCorrupt.
	MaxRecordBytes int
	// Logf receives torn-tail warnings and background-sync errors
	// (default log.Printf).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	if o.Retry.Attempts == 0 {
		o.Retry = resilience.RetryPolicy{Attempts: 3, Base: 5 * time.Millisecond, Max: 100 * time.Millisecond}
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = 64 << 20
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// Record is one logged mutation batch: the epoch it published and the
// serialised batch payload.
type Record struct {
	Epoch   uint64
	Payload []byte
}

const (
	logName   = "wal.log"
	fileMagic = "PROPWAL\x01"
	recHeader = 8 // 4B length + 4B CRC32C
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is an open write-ahead log. It is safe for concurrent use;
// appends are serialised internally.
type Log struct {
	dir string
	opt Options

	mu      sync.Mutex
	f       *os.File
	size    int64 // end offset of the last valid record
	records int   // records currently in the file
	last    uint64
	broken  error // latched unrecoverable-state error

	appends     atomic.Uint64
	fsyncs      atomic.Uint64
	errs        atomic.Uint64
	retries     atomic.Uint64
	compactions atomic.Uint64
	tornDrops   atomic.Uint64

	stopSync chan struct{}
	syncDone chan struct{}
}

// Stats is a point-in-time snapshot of a Log's counters and state.
type Stats struct {
	// Appends counts records durably accepted; Fsyncs successful fsync
	// calls; Errors failed I/O operations (before retry); Retries
	// re-attempted appends; Compactions completed prefix truncations;
	// TornDrops torn-tail records dropped during open.
	Appends, Fsyncs, Errors, Retries, Compactions, TornDrops uint64
	// Records and Bytes describe the current log file; LastEpoch is the
	// newest logged epoch (0 when the log is empty).
	Records   int
	Bytes     int64
	LastEpoch uint64
	// Broken reports a latched unrecoverable failure; BrokenReason is
	// its message.
	Broken       bool
	BrokenReason string
}

// Open opens (creating if absent) the log in dir and scans it: valid
// records are returned for replay, a torn tail is truncated away with a
// warning, and real corruption fails with ErrCorrupt. Stray temp files
// from an interrupted compaction or snapshot are removed.
func Open(dir string, opt Options) (*Log, []Record, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	removeStrayTemps(dir, opt.Logf)

	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	recs, valid, warn, serr := scanLog(data, opt.MaxRecordBytes)
	if serr != nil {
		f.Close()
		return nil, nil, serr
	}
	l := &Log{dir: dir, opt: opt, f: f}
	if warn != "" {
		opt.Logf("wal: %s at offset %d of %s; dropping torn tail (%d bytes)", warn, valid, path, int64(len(data))-valid)
		l.tornDrops.Add(1)
	}
	if valid < int64(len(fileMagic)) {
		// Fresh log, or a crash during creation left a partial magic:
		// (re)write the header so a later torn append cannot be mistaken
		// for a headerless file.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncate partial magic: %w", err)
		}
		if _, err := f.WriteAt([]byte(fileMagic), 0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: write magic: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: sync magic: %w", err)
		}
		valid = int64(len(fileMagic))
	} else if valid != int64(len(data)) {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: sync after truncate: %w", err)
		}
	}
	l.size = valid
	l.records = len(recs)
	if len(recs) > 0 {
		l.last = recs[len(recs)-1].Epoch
	}
	if opt.Sync == SyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, recs, nil
}

// scanLog walks the framed records in data. It returns the valid
// records, the byte length of the valid prefix, a non-empty warning when
// a torn tail was dropped, and ErrCorrupt for damage that is not a torn
// tail.
func scanLog(data []byte, maxRecord int) (recs []Record, valid int64, warn string, err error) {
	if len(data) == 0 {
		return nil, 0, "", nil
	}
	if len(data) < len(fileMagic) {
		// The file exists but even the magic is incomplete: a crash
		// during creation. Start over.
		return nil, 0, "truncated file magic", nil
	}
	if string(data[:len(fileMagic)]) != fileMagic {
		return nil, 0, "", fmt.Errorf("%w: bad file magic", ErrCorrupt)
	}
	off := len(fileMagic)
	for off < len(data) {
		rem := len(data) - off
		if rem < recHeader {
			return recs, int64(off), "truncated record header", nil
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n < 8 || n > maxRecord {
			// A torn write is always a strict prefix of one append, so the
			// length field of a partially persisted record is either absent
			// (rem < recHeader above) or correct. A nonsense length is bit
			// damage, and framing damage cannot be skipped.
			return nil, 0, "", fmt.Errorf("%w: record at offset %d has invalid length %d", ErrCorrupt, off, n)
		}
		if rem < recHeader+n {
			return recs, int64(off), "truncated record body", nil
		}
		body := data[off+recHeader : off+recHeader+n]
		if crc32.Checksum(body, castagnoli) != sum {
			if off+recHeader+n == len(data) {
				return recs, int64(off), "checksum mismatch in final record", nil
			}
			return nil, 0, "", fmt.Errorf("%w: checksum mismatch at offset %d (not the final record)", ErrCorrupt, off)
		}
		epoch := binary.LittleEndian.Uint64(body)
		if len(recs) > 0 && epoch <= recs[len(recs)-1].Epoch {
			return nil, 0, "", fmt.Errorf("%w: epoch %d at offset %d not after %d", ErrCorrupt, epoch, off, recs[len(recs)-1].Epoch)
		}
		recs = append(recs, Record{Epoch: epoch, Payload: append([]byte(nil), body[8:]...)})
		off += recHeader + n
	}
	return recs, int64(off), "", nil
}

func encodeRecord(epoch uint64, payload []byte) []byte {
	n := 8 + len(payload)
	buf := make([]byte, recHeader+n)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(n))
	binary.LittleEndian.PutUint64(buf[recHeader:recHeader+8], epoch)
	copy(buf[recHeader+8:], payload)
	binary.LittleEndian.PutUint32(buf[4:recHeader], crc32.Checksum(buf[recHeader:], castagnoli))
	return buf
}

// Append durably logs (epoch, payload) as one record. Transient write
// failures are retried with bounded backoff after truncating any
// partial bytes back off the file; a failure that leaves the tail state
// unknowable latches the log broken (ErrBroken) so no later append can
// land after garbage. Append returns only after the record is written
// (and, under SyncAlways, fsynced) — the caller may acknowledge the
// mutation the moment Append returns nil.
func (l *Log) Append(ctx context.Context, epoch uint64, payload []byte) error {
	if len(payload)+8 > l.opt.MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte limit", len(payload), l.opt.MaxRecordBytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("%w: %v", ErrBroken, l.broken)
	}
	if epoch <= l.last {
		return fmt.Errorf("wal: epoch %d not after last logged epoch %d", epoch, l.last)
	}
	buf := encodeRecord(epoch, payload)
	attempt := 0
	err := resilience.Retry(ctx, l.opt.Retry, func() error {
		attempt++
		if attempt > 1 {
			l.retries.Add(1)
		}
		werr := l.writeRecord(buf)
		if werr == nil {
			return nil
		}
		l.errs.Add(1)
		// Truncate any partially written bytes back off so a retry (or a
		// later append) starts from the last valid record, never after
		// garbage. Failing THAT leaves the tail unknowable: latch broken.
		if terr := l.f.Truncate(l.size); terr != nil {
			l.broken = fmt.Errorf("truncate-back after failed append: %v (append error: %v)", terr, werr)
			return resilience.Permanent(fmt.Errorf("%w: %v", ErrBroken, l.broken))
		}
		return werr
	})
	if err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(buf))
	l.records++
	l.last = epoch
	l.appends.Add(1)
	if l.opt.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			// After a failed fsync the kernel may have dropped the dirty
			// pages; whether the record is on disk is unknowable. Latch
			// broken: the caller must not acknowledge, and no later append
			// may assume this tail exists.
			l.errs.Add(1)
			l.broken = fmt.Errorf("fsync after append: %v", err)
			return fmt.Errorf("%w: %v", ErrBroken, l.broken)
		}
	}
	return nil
}

// writeRecord writes buf at the current tail. When a fault hook is
// installed the write is split in two so tests can kill the process (or
// fail the second half) with a genuinely torn record on disk.
func (l *Log) writeRecord(buf []byte) error {
	if hookInstalled() {
		if err := fault(OpAppendWrite); err != nil {
			var pw *PartialWrite
			if errors.As(err, &pw) {
				n := pw.N
				if n > len(buf) {
					n = len(buf)
				}
				l.f.WriteAt(buf[:n], l.size)
				return err
			}
			return err
		}
		half := len(buf) / 2
		if _, err := l.f.WriteAt(buf[:half], l.size); err != nil {
			return err
		}
		if err := fault(OpAppendMid); err != nil {
			return err
		}
		if _, err := l.f.WriteAt(buf[half:], l.size+int64(half)); err != nil {
			return err
		}
		return nil
	}
	_, err := l.f.WriteAt(buf, l.size)
	return err
}

// Sync flushes the log to stable storage (a no-op risk-wise under
// SyncAlways, the heartbeat under SyncInterval).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("%w: %v", ErrBroken, l.broken)
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := fault(OpAppendSync); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.fsyncs.Add(1)
	return nil
}

func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opt.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stopSync:
			return
		case <-t.C:
			l.mu.Lock()
			if l.broken == nil {
				if err := l.syncLocked(); err != nil {
					l.errs.Add(1)
					l.broken = fmt.Errorf("interval fsync: %v", err)
					l.opt.Logf("wal: interval fsync failed, log latched broken: %v", err)
				}
			}
			l.mu.Unlock()
		}
	}
}

// CompactThrough rewrites the log keeping only records with epochs
// beyond epoch — the suffix a snapshot at that epoch does not cover.
// The rewrite goes through a temp file and one rename, so a crash at
// any point leaves either the old log (records re-covered by the
// snapshot are skipped during replay by their epochs) or the new one.
func (l *Log) CompactThrough(epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("%w: %v", ErrBroken, l.broken)
	}
	data, err := os.ReadFile(filepath.Join(l.dir, logName))
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	if int64(len(data)) > l.size {
		data = data[:l.size]
	}
	recs, _, _, err := scanLog(data, l.opt.MaxRecordBytes)
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	tmpPath := filepath.Join(l.dir, logName+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	kept, keptBytes, lastKept := 0, int64(len(fileMagic)), uint64(0)
	write := func() error {
		if err := fault(OpCompactWrite); err != nil {
			return err
		}
		if _, err := tmp.Write([]byte(fileMagic)); err != nil {
			return err
		}
		for _, r := range recs {
			if r.Epoch <= epoch {
				continue
			}
			buf := encodeRecord(r.Epoch, r.Payload)
			if _, err := tmp.Write(buf); err != nil {
				return err
			}
			kept++
			keptBytes += int64(len(buf))
			lastKept = r.Epoch
		}
		return tmp.Sync()
	}
	if err := write(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := fault(OpCompactRename); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(l.dir, logName)); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("wal: compact: %w", err)
	}
	syncDir(l.dir)
	// The old fd now names the unlinked inode; reopen the live file.
	nf, err := os.OpenFile(filepath.Join(l.dir, logName), os.O_RDWR, 0o644)
	if err != nil {
		l.broken = fmt.Errorf("reopen after compaction: %v", err)
		return fmt.Errorf("%w: %v", ErrBroken, l.broken)
	}
	l.f.Close()
	l.f = nf
	l.size = keptBytes
	l.records = kept
	if kept > 0 {
		l.last = lastKept
	} // else last keeps its value: epochs stay monotonic across compaction
	l.compactions.Add(1)
	return nil
}

// Dir returns the directory the log (and its snapshots) live in.
func (l *Log) Dir() string { return l.dir }

// SyncPolicy returns the fsync policy the log was opened with.
func (l *Log) SyncPolicy() SyncPolicy { return l.opt.Sync }

// Records returns the number of records currently in the log file —
// the compaction trigger reads it after each append.
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Stats returns a snapshot of the log's counters and state.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Stats{
		Appends:     l.appends.Load(),
		Fsyncs:      l.fsyncs.Load(),
		Errors:      l.errs.Load(),
		Retries:     l.retries.Load(),
		Compactions: l.compactions.Load(),
		TornDrops:   l.tornDrops.Load(),
		Records:     l.records,
		Bytes:       l.size,
		LastEpoch:   l.last,
	}
	if l.broken != nil {
		s.Broken = true
		s.BrokenReason = l.broken.Error()
	}
	return s
}

// Close stops the background sync (if any), flushes, and closes the
// file. The log must not be used afterwards.
func (l *Log) Close() error {
	if l.stopSync != nil {
		close(l.stopSync)
		<-l.syncDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var serr error
	if l.broken == nil {
		serr = l.f.Sync()
	}
	cerr := l.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// syncDir best-effort fsyncs a directory so a rename within it is
// durable. Errors are ignored: not every filesystem supports it, and
// the rename itself already happened.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// removeStrayTemps deletes temp files an interrupted compaction or
// snapshot left behind. They were never renamed into place, so they are
// dead weight by construction.
func removeStrayTemps(dir string, logf func(string, ...any)) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if len(name) > 4 && name[len(name)-4:] == ".tmp" {
			logf("wal: removing stray temp file %s", name)
			os.Remove(filepath.Join(dir, name))
		}
	}
}
