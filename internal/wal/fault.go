package wal

import (
	"fmt"
	"sync/atomic"
)

// Fault-point labels passed to the hook installed by SetFaultHook. Each
// names one I/O operation the hook may fail (by returning an error) or
// crash at (by killing the process) — the seams a real disk, filesystem
// or power failure would hit.
const (
	// OpAppendWrite fires before an append's record write.
	OpAppendWrite = "append:write"
	// OpAppendMid fires between the two halves of a record write (the
	// write is split only while a hook is installed), so a kill here
	// leaves a genuinely torn record on disk.
	OpAppendMid = "append:mid"
	// OpAppendSync fires before an fsync (per-append or interval).
	OpAppendSync = "append:sync"
	// OpSnapshotWrite fires before a snapshot's temp-file write,
	// OpSnapshotSync before its fsync, OpSnapshotRename before the
	// rename that publishes it.
	OpSnapshotWrite  = "snapshot:write"
	OpSnapshotSync   = "snapshot:sync"
	OpSnapshotRename = "snapshot:rename"
	// OpCompactWrite fires before the log rewrite, OpCompactRename
	// before the rename that replaces the log with its compacted form.
	OpCompactWrite  = "compact:write"
	OpCompactRename = "compact:rename"
)

// PartialWrite is a hook return value for OpAppendWrite that makes the
// log write only the first N bytes of the record before failing — a
// simulated torn write with the partial bytes really on disk.
type PartialWrite struct{ N int }

func (e *PartialWrite) Error() string {
	return fmt.Sprintf("wal: injected partial write of %d bytes", e.N)
}

// faultHook mirrors core.SetCheckpointHook: a process-wide injection
// point for tests. When nil (the default) every fault call is free
// beyond one atomic load.
var faultHook atomic.Pointer[func(op string) error]

// SetFaultHook installs h at every WAL fault point, identified by the
// Op* labels. Returning a non-nil error from h makes the operation fail
// as if the underlying I/O had; returning a *PartialWrite from
// OpAppendWrite leaves a torn record on disk; killing the process from
// inside h simulates a crash at that exact point. It returns a restore
// function that removes the hook. Passing nil removes any installed
// hook. Safe for concurrent use; intended for tests only.
func SetFaultHook(h func(op string) error) (restore func()) {
	if h == nil {
		faultHook.Store(nil)
		return func() {}
	}
	faultHook.Store(&h)
	return func() { faultHook.Store(nil) }
}

func hookInstalled() bool { return faultHook.Load() != nil }

func fault(op string) error {
	if h := faultHook.Load(); h != nil {
		return (*h)(op)
	}
	return nil
}
