package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	snapshotPrefix = "snapshot-"
	snapshotSuffix = ".gob"
)

// SnapshotName returns the file name of the snapshot covering epoch.
func SnapshotName(epoch uint64) string {
	return fmt.Sprintf("%s%d%s", snapshotPrefix, epoch, snapshotSuffix)
}

// SnapshotInfo names one snapshot file in a WAL directory.
type SnapshotInfo struct {
	Epoch uint64
	Path  string
}

// Snapshots lists the snapshot files in dir, newest epoch first.
// Files that merely look snapshot-ish but do not parse are ignored.
func Snapshots(dir string) ([]SnapshotInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []SnapshotInfo
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, snapshotPrefix) || !strings.HasSuffix(name, snapshotSuffix) {
			continue
		}
		mid := name[len(snapshotPrefix) : len(name)-len(snapshotSuffix)]
		epoch, err := strconv.ParseUint(mid, 10, 64)
		if err != nil {
			continue
		}
		out = append(out, SnapshotInfo{Epoch: epoch, Path: filepath.Join(dir, name)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch > out[j].Epoch })
	return out, nil
}

// WriteSnapshot durably writes a snapshot of the corpus at epoch into
// dir via save (normally dataset.Save): temp file, fsync, one rename,
// directory fsync. A crash at any point leaves either no new snapshot
// or a complete one — never a partial file under the snapshot name.
func WriteSnapshot(dir string, epoch uint64, save func(io.Writer) error) (path string, err error) {
	final := filepath.Join(dir, SnapshotName(epoch))
	tmpPath := final + ".tmp"
	if err := fault(OpSnapshotWrite); err != nil {
		return "", fmt.Errorf("wal: snapshot: %w", err)
	}
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := save(tmp); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return "", fmt.Errorf("wal: snapshot: %w", err)
	}
	if ferr := fault(OpSnapshotSync); ferr != nil {
		err = ferr
	} else {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return "", fmt.Errorf("wal: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return "", fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := fault(OpSnapshotRename); err != nil {
		os.Remove(tmpPath)
		return "", fmt.Errorf("wal: snapshot rename: %w", err)
	}
	if err := os.Rename(tmpPath, final); err != nil {
		os.Remove(tmpPath)
		return "", fmt.Errorf("wal: snapshot rename: %w", err)
	}
	syncDir(dir)
	return final, nil
}

// RemoveSnapshotsBefore deletes snapshots older than epoch, keeping the
// one at epoch itself. Removal failures are logged, not fatal: a stale
// snapshot is wasted disk, never wrong recovery (the newest valid one
// wins).
func RemoveSnapshotsBefore(dir string, epoch uint64, logf func(format string, args ...any)) {
	snaps, err := Snapshots(dir)
	if err != nil {
		return
	}
	for _, s := range snaps {
		if s.Epoch >= epoch {
			continue
		}
		if err := os.Remove(s.Path); err != nil && logf != nil {
			logf("wal: removing old snapshot %s: %v", s.Path, err)
		}
	}
}
