package wal

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, opt Options) (*Log, []Record) {
	t.Helper()
	if opt.Logf == nil {
		opt.Logf = t.Logf
	}
	l, recs, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, recs
}

func appendN(t *testing.T, l *Log, from, to uint64) {
	t.Helper()
	for e := from; e <= to; e++ {
		if err := l.Append(context.Background(), e, []byte(fmt.Sprintf("batch-%d", e))); err != nil {
			t.Fatalf("Append(%d): %v", e, err)
		}
	}
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs := openT(t, dir, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh log returned %d records", len(recs))
	}
	appendN(t, l, 1, 5)
	st := l.Stats()
	if st.Appends != 5 || st.Records != 5 || st.LastEpoch != 5 || st.Fsyncs < 5 {
		t.Errorf("stats after 5 appends = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs := openT(t, dir, Options{})
	defer l2.Close()
	if len(recs) != 5 {
		t.Fatalf("reopen returned %d records, want 5", len(recs))
	}
	for i, r := range recs {
		want := uint64(i + 1)
		if r.Epoch != want || string(r.Payload) != fmt.Sprintf("batch-%d", want) {
			t.Errorf("record %d = {%d, %q}", i, r.Epoch, r.Payload)
		}
	}
	// Appends continue from the recovered tail; stale epochs are refused.
	if err := l2.Append(context.Background(), 5, nil); err == nil {
		t.Error("replayed epoch 5 accepted again")
	}
	if err := l2.Append(context.Background(), 6, []byte("x")); err != nil {
		t.Errorf("Append(6) after reopen: %v", err)
	}
}

// TestTornTailAtEveryOffset is the crash-safety property test: whatever
// byte the final append was cut at, reopening recovers exactly the fully
// written records — never an error, never a partial batch.
func TestTornTailAtEveryOffset(t *testing.T) {
	ref := t.TempDir()
	l, _ := openT(t, ref, Options{Sync: SyncNever})
	appendN(t, l, 1, 3)
	full, err := os.ReadFile(filepath.Join(ref, logName))
	if err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Offsets of the record boundaries: magic, then 3 records.
	recs, _, _, err := scanLog(full, 64<<20)
	if err != nil || len(recs) != 3 {
		t.Fatalf("reference log scan: %d records, err %v", len(recs), err)
	}
	boundaries := []int{len(fileMagic)}
	off := len(fileMagic)
	for _, r := range recs {
		off += recHeader + 8 + len(r.Payload)
		boundaries = append(boundaries, off)
	}
	wantComplete := func(cut int) int {
		n := 0
		for _, b := range boundaries[1:] {
			if cut >= b {
				n++
			}
		}
		return n
	}

	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, got, err := Open(dir, Options{Sync: SyncNever, Logf: func(string, ...any) {}})
		if err != nil {
			t.Fatalf("cut at %d: Open failed: %v", cut, err)
		}
		if want := wantComplete(cut); len(got) != want {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(got), want)
		}
		// The repaired log must accept the next epoch and survive reopening.
		next := uint64(len(got)) + 1
		if err := l.Append(context.Background(), next, []byte("after-crash")); err != nil {
			t.Fatalf("cut at %d: append after repair: %v", cut, err)
		}
		l.Close()
		l2, got2 := openT(t, dir, Options{Sync: SyncNever})
		if len(got2) != len(got)+1 {
			t.Fatalf("cut at %d: second reopen has %d records, want %d", cut, len(got2), len(got)+1)
		}
		l2.Close()
	}
}

// TestChecksumFlip: a bit flip in the FINAL record is indistinguishable
// from a torn write and is dropped with a warning; the same flip mid-log
// is real damage and must refuse to open.
func TestChecksumFlip(t *testing.T) {
	build := func(t *testing.T, n uint64) (string, []byte) {
		dir := t.TempDir()
		l, _ := openT(t, dir, Options{Sync: SyncNever})
		appendN(t, l, 1, n)
		l.Close()
		data, err := os.ReadFile(filepath.Join(dir, logName))
		if err != nil {
			t.Fatal(err)
		}
		return dir, data
	}

	t.Run("final-record-dropped", func(t *testing.T) {
		dir, data := build(t, 3)
		data[len(data)-1] ^= 0xFF
		if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		var warned bool
		l, recs, err := Open(dir, Options{Sync: SyncNever, Logf: func(format string, args ...any) {
			if strings.Contains(fmt.Sprintf(format, args...), "torn tail") {
				warned = true
			}
		}})
		if err != nil {
			t.Fatalf("flip in final record should repair, got %v", err)
		}
		defer l.Close()
		if len(recs) != 2 {
			t.Errorf("recovered %d records, want 2", len(recs))
		}
		if !warned {
			t.Error("torn-tail drop not warned about")
		}
		if l.Stats().TornDrops != 1 {
			t.Errorf("TornDrops = %d, want 1", l.Stats().TornDrops)
		}
	})

	t.Run("mid-log-is-corrupt", func(t *testing.T) {
		dir, data := build(t, 3)
		// Flip a payload byte of the FIRST record: its checksum fails with
		// more data following.
		data[len(fileMagic)+recHeader+8] ^= 0xFF
		if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := Open(dir, Options{Sync: SyncNever, Logf: t.Logf})
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("mid-log flip opened with err = %v, want ErrCorrupt", err)
		}
	})

	t.Run("bad-magic-is-corrupt", func(t *testing.T) {
		dir, data := build(t, 1)
		data[0] ^= 0xFF
		if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(dir, Options{Sync: SyncNever, Logf: t.Logf}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bad magic opened with err = %v, want ErrCorrupt", err)
		}
	})
}

// TestAppendRetriesTransientFailure: a write that fails once succeeds on
// the bounded retry, with the failure and the retry both counted and no
// garbage left in the file.
func TestAppendRetriesTransientFailure(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	defer l.Close()
	appendN(t, l, 1, 1)

	fails := 1
	restore := SetFaultHook(func(op string) error {
		if op == OpAppendWrite && fails > 0 {
			fails--
			return &PartialWrite{N: 3}
		}
		return nil
	})
	defer restore()

	if err := l.Append(context.Background(), 2, []byte("retried")); err != nil {
		t.Fatalf("append with one transient failure: %v", err)
	}
	st := l.Stats()
	if st.Errors != 1 || st.Retries != 1 || st.Appends != 2 {
		t.Errorf("stats = %+v, want 1 error, 1 retry, 2 appends", st)
	}
	restore()
	l.Close()
	_, recs := openT(t, dir, Options{})
	if len(recs) != 2 || string(recs[1].Payload) != "retried" {
		t.Fatalf("reopen after retried append: %d records", len(recs))
	}
}

// TestAppendExhaustedRetriesFails: a persistent write failure returns an
// error after the bounded attempts, and the file holds no partial bytes.
func TestAppendExhaustedRetriesFails(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	defer l.Close()
	appendN(t, l, 1, 1)
	sizeBefore := l.Stats().Bytes

	restore := SetFaultHook(func(op string) error {
		if op == OpAppendWrite {
			return &PartialWrite{N: 5}
		}
		return nil
	})
	if err := l.Append(context.Background(), 2, []byte("doomed")); err == nil {
		t.Fatal("append succeeded despite persistent write failure")
	}
	restore()

	st := l.Stats()
	if st.Broken {
		t.Errorf("exhausted retries latched broken: %+v", st)
	}
	if st.Bytes != sizeBefore || st.Records != 1 {
		t.Errorf("partial bytes left behind: %+v", st)
	}
	// The log still works once the fault clears.
	if err := l.Append(context.Background(), 2, []byte("recovered")); err != nil {
		t.Fatalf("append after fault cleared: %v", err)
	}
}

// TestFsyncFailureLatchesBroken is the fsyncgate rule: after a failed
// fsync the tail state is unknowable, so the log sheds every later
// append until restart.
func TestFsyncFailureLatchesBroken(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	defer l.Close()
	appendN(t, l, 1, 1)

	boom := errors.New("simulated fsync failure")
	restore := SetFaultHook(func(op string) error {
		if op == OpAppendSync {
			return boom
		}
		return nil
	})
	err := l.Append(context.Background(), 2, []byte("x"))
	restore()
	if !errors.Is(err, ErrBroken) {
		t.Fatalf("append with failed fsync = %v, want ErrBroken", err)
	}
	st := l.Stats()
	if !st.Broken || !strings.Contains(st.BrokenReason, "fsync") {
		t.Errorf("stats = %+v, want broken with an fsync reason", st)
	}
	// Latched: even with the fault gone, appends are refused.
	if err := l.Append(context.Background(), 3, []byte("y")); !errors.Is(err, ErrBroken) {
		t.Fatalf("append on broken log = %v, want ErrBroken", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrBroken) {
		t.Fatalf("sync on broken log = %v, want ErrBroken", err)
	}
}

func TestCompactThrough(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendN(t, l, 1, 10)
	if err := l.CompactThrough(7); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Records != 3 || st.LastEpoch != 10 || st.Compactions != 1 {
		t.Errorf("stats after compaction = %+v", st)
	}
	// The live fd is the new file: appends keep working and land in it.
	appendN(t, l, 11, 12)
	l.Close()
	_, recs := openT(t, dir, Options{})
	if len(recs) != 5 || recs[0].Epoch != 8 || recs[4].Epoch != 12 {
		t.Fatalf("reopen after compaction: %d records, first %d", len(recs), recs[0].Epoch)
	}
}

// TestCompactAllRecords: compacting through the last epoch empties the
// log but keeps the epoch watermark, so the next append continues the
// sequence rather than restarting it.
func TestCompactAllRecords(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	defer l.Close()
	appendN(t, l, 1, 4)
	if err := l.CompactThrough(4); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Records != 0 || st.LastEpoch != 4 {
		t.Errorf("stats = %+v, want 0 records with watermark 4", st)
	}
	if err := l.Append(context.Background(), 4, nil); err == nil {
		t.Error("compaction forgot the epoch watermark: epoch 4 re-accepted")
	}
	appendN(t, l, 5, 5)
}

// TestCompactionCrashMidRename: a fault at the rename leaves the old log
// intact plus a stray temp file; the next Open removes the temp and
// replays the full log.
func TestCompactionCrashMidRename(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendN(t, l, 1, 6)

	restore := SetFaultHook(func(op string) error {
		if op == OpCompactRename {
			return errors.New("killed before rename")
		}
		return nil
	})
	err := l.CompactThrough(4)
	restore()
	if err == nil {
		t.Fatal("compaction succeeded through the rename fault")
	}
	l.Close()

	l2, recs := openT(t, dir, Options{})
	defer l2.Close()
	if len(recs) != 6 {
		t.Fatalf("recovered %d records, want all 6 (old log intact)", len(recs))
	}
	if ents, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(ents) != 0 {
		t.Errorf("stray temp files survived reopen: %v", ents)
	}
}

func TestMaxRecordBytes(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{MaxRecordBytes: 64})
	defer l.Close()
	if err := l.Append(context.Background(), 1, bytes.Repeat([]byte("x"), 64)); err == nil {
		t.Error("oversized record accepted")
	}
	if err := l.Append(context.Background(), 1, bytes.Repeat([]byte("x"), 32)); err != nil {
		t.Errorf("record within the limit rejected: %v", err)
	}
}

func TestSyncIntervalPolicy(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Sync: SyncInterval, SyncInterval: 5 * time.Millisecond})
	appendN(t, l, 1, 3)
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background sync never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := openT(t, dir, Options{})
	if len(recs) != 3 {
		t.Fatalf("reopen after interval-synced close: %d records", len(recs))
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "never": SyncNever} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("String() round-trip broken for %q: %q", s, got.String())
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestEpochMonotonicityEnforced(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	defer l.Close()
	appendN(t, l, 1, 2)
	if err := l.Append(context.Background(), 2, nil); err == nil {
		t.Error("duplicate epoch accepted")
	}
	if err := l.Append(context.Background(), 1, nil); err == nil {
		t.Error("regressing epoch accepted")
	}
	if err := l.Append(context.Background(), 4, nil); err != nil {
		t.Errorf("epoch gaps are the caller's business, append refused: %v", err)
	}
}
