package wal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func writeSnap(t *testing.T, dir string, epoch uint64, body string) string {
	t.Helper()
	path, err := WriteSnapshot(dir, epoch, func(w io.Writer) error {
		_, err := io.WriteString(w, body)
		return err
	})
	if err != nil {
		t.Fatalf("WriteSnapshot(%d): %v", epoch, err)
	}
	return path
}

func TestSnapshotWriteListRemove(t *testing.T) {
	dir := t.TempDir()
	writeSnap(t, dir, 3, "three")
	writeSnap(t, dir, 10, "ten")
	writeSnap(t, dir, 7, "seven")

	snaps, err := Snapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 || snaps[0].Epoch != 10 || snaps[1].Epoch != 7 || snaps[2].Epoch != 3 {
		t.Fatalf("snapshots = %+v, want epochs 10,7,3 newest-first", snaps)
	}
	b, err := os.ReadFile(snaps[0].Path)
	if err != nil || string(b) != "ten" {
		t.Fatalf("newest snapshot body = %q, %v", b, err)
	}

	RemoveSnapshotsBefore(dir, 7, t.Logf)
	snaps, _ = Snapshots(dir)
	if len(snaps) != 2 || snaps[1].Epoch != 7 {
		t.Fatalf("after removal: %+v, want epochs 10 and 7 (the boundary is kept)", snaps)
	}
}

// TestSnapshotWriteFailureLeavesNoTrace: a failure at any stage of the
// write must leave neither a partial snapshot nor a temp file — the
// previous snapshot generation stays the recovery source.
func TestSnapshotWriteFailureLeavesNoTrace(t *testing.T) {
	for _, op := range []string{OpSnapshotWrite, OpSnapshotSync, OpSnapshotRename} {
		t.Run(op, func(t *testing.T) {
			dir := t.TempDir()
			writeSnap(t, dir, 1, "good")
			restore := SetFaultHook(func(got string) error {
				if got == op {
					return errors.New("injected " + op)
				}
				return nil
			})
			_, err := WriteSnapshot(dir, 2, func(w io.Writer) error {
				_, werr := io.WriteString(w, "doomed")
				return werr
			})
			restore()
			if err == nil {
				t.Fatalf("WriteSnapshot succeeded through %s fault", op)
			}
			snaps, _ := Snapshots(dir)
			if len(snaps) != 1 || snaps[0].Epoch != 1 {
				t.Errorf("snapshots after failed write = %+v, want only epoch 1", snaps)
			}
			if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
				t.Errorf("temp files left behind: %v", tmps)
			}
		})
	}
}

// TestSnapshotSaveErrorPropagates: the save callback failing (e.g. a gob
// encode error) aborts the snapshot cleanly.
func TestSnapshotSaveErrorPropagates(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("encode failed")
	if _, err := WriteSnapshot(dir, 1, func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the save error", err)
	}
	if snaps, _ := Snapshots(dir); len(snaps) != 0 {
		t.Errorf("failed save produced snapshots: %+v", snaps)
	}
}

func TestSnapshotsIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	writeSnap(t, dir, 2, "two")
	for _, name := range []string{"wal.log", "snapshot-x.gob", "snapshot-.gob", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	snaps, err := Snapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].Epoch != 2 {
		t.Fatalf("snapshots = %+v, want only epoch 2", snaps)
	}
}
