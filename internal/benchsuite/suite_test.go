package benchsuite

// The three bench-suite measurements, gated on BENCH_SUITE_DIR (the
// directory the BENCH_*.json files are written into). `make bench-suite`
// sets it; a plain `go test ./...` skips the timing work entirely.

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/textctx"
)

func suiteDir(t *testing.T) string {
	dir := os.Getenv("BENCH_SUITE_DIR")
	if dir == "" {
		t.Skip("set BENCH_SUITE_DIR=<dir> to run the bench suite (make bench-suite)")
	}
	return dir
}

// TestBenchStep1 compares the Step-1 all-pairs contextual-similarity
// engines (Section 4): the probing baseline, msJh (Algorithm 1), and the
// minhash approximation. Writes BENCH_step1.json.
func TestBenchStep1(t *testing.T) {
	dir := suiteDir(t)
	_, places, err := Instance()
	if err != nil {
		t.Fatal(err)
	}
	sets := make([]textctx.Set, len(places))
	for i := range places {
		sets[i] = places[i].Context
	}

	const runs = 30
	engines := []textctx.JaccardEngine{
		textctx.BaselineEngine{},
		textctx.MSJHEngine{},
		textctx.MinHashEngine{T: 64, Seed: 1},
	}
	fields := map[string]any{"sets": len(sets)}
	var baselineNs, msjhNs float64
	for _, eng := range engines {
		ns, err := TimeNs(runs, func() error { eng.AllPairs(sets); return nil })
		if err != nil {
			t.Fatal(err)
		}
		switch eng.Name() {
		case "baseline":
			baselineNs = ns
			fields["baseline_ns_op"] = ns
		case "msJh":
			msjhNs = ns
			fields["msjh_ns_op"] = ns
		case "minhash":
			fields["minhash_ns_op"] = ns
		}
		t.Logf("%-8s %12.0f ns/op", eng.Name(), ns)
	}
	fields["msjh_speedup"] = baselineNs / msjhNs

	report, err := Report("step1_engines", map[string]any{"per_engine": runs}, fields)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "BENCH_step1.json")
	if err := WriteReport(out, report); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// TestBenchSpatial compares the spatial proportionality methods (Section
// 7): the exact O(K²) Ptolemy baseline against the squared and radial
// grids (with their shared maximal tables pre-built, as the serving path
// holds them), including each grid's sampled approximation error. Writes
// BENCH_spatial.json.
func TestBenchSpatial(t *testing.T) {
	dir := suiteDir(t)
	loc, places, err := Instance()
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]geo.Point, len(places))
	for i := range places {
		pts[i] = places[i].Loc
	}
	cells := len(pts) // the paper's |G| ≈ K rule

	const runs = 50
	fields := map[string]any{"points": len(pts), "cells": cells}

	exactNs, err := TimeNs(runs, func() error { grid.AllPairsSpatial(loc, pts); return nil })
	if err != nil {
		t.Fatal(err)
	}
	fields["exact_ns_op"] = exactNs

	stbl := grid.NewSquaredTable(grid.SideForCells(cells))
	squaredNs, err := TimeNs(runs, func() error {
		g, err := grid.NewSquared(loc, pts, cells)
		if err != nil {
			return err
		}
		g.ApproxAllPairs(stbl)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fields["squared_ns_op"] = squaredNs

	rtbl := grid.NewRadialTable()
	radialNs, err := TimeNs(runs, func() error {
		g, err := grid.NewRadial(loc, pts, cells)
		if err != nil {
			return err
		}
		g.ApproxAllPairs(rtbl)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fields["radial_ns_op"] = radialNs

	// Approximation quality rides along so a speedup can never silently
	// trade away accuracy between commits.
	if g, err := grid.NewSquared(loc, pts, cells); err == nil {
		es := grid.SampleApproxError(loc, pts, g.ApproxAllPairs(stbl), 256)
		fields["squared_mean_abs_err"] = es.MeanAbs
	}
	if g, err := grid.NewRadial(loc, pts, cells); err == nil {
		es := grid.SampleApproxError(loc, pts, g.ApproxAllPairs(rtbl), 256)
		fields["radial_mean_abs_err"] = es.MeanAbs
	}
	fields["squared_speedup"] = exactNs / squaredNs

	report, err := Report("spatial_pss", map[string]any{"per_method": runs}, fields)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "BENCH_spatial.json")
	if err := WriteReport(out, report); err != nil {
		t.Fatal(err)
	}
	t.Logf("exact %.0f, squared %.0f, radial %.0f ns/op -> %s", exactNs, squaredNs, radialNs, out)
}

// TestBenchSelect compares the Step-2 greedy algorithms (Section 5): IAdU
// against ABP on one shared score set. Writes BENCH_select.json.
func TestBenchSelect(t *testing.T) {
	dir := suiteDir(t)
	loc, places, err := Instance()
	if err != nil {
		t.Fatal(err)
	}
	ss, err := core.ComputeScoresCtx(context.Background(), loc, places,
		core.ScoreOptions{Gamma: 0.5, Spatial: core.SpatialSquaredGrid})
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{K: 10, Lambda: 0.5, Gamma: 0.5}

	const runs = 50
	fields := map[string]any{
		"instance": len(places),
		"k":        p.K,
	}
	for _, alg := range []core.Algorithm{core.AlgIAdU, core.AlgABP} {
		alg := alg
		ns, err := TimeNs(runs, func() error {
			_, err := core.Select(alg, ss, p)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		fields[string(alg)+"_ns_op"] = ns
		t.Logf("%-6s %12.0f ns/op", alg, ns)
	}

	report, err := Report("step2_select", map[string]any{"per_algorithm": runs}, fields)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "BENCH_select.json")
	if err := WriteReport(out, report); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
