// Package benchsuite drives `make bench-suite`: wall-clock comparisons of
// the paper's competing implementations — Step-1 all-pairs engines
// (baseline / msJh / minhash), spatial similarity methods (exact vs the
// squared and radial grids), and the Step-2 greedy algorithms (IAdU vs
// ABP) — over the demo corpus. Each comparison is written as one
// BENCH_*.json file in the same schema as BENCH_engine.json (top-level
// "benchmark", "dataset", "runs", *_ns_op numbers, "go", "cpus") so
// cmd/benchdiff can track the performance trajectory across commits.
//
// The measurements live in gated tests (see suite_test.go) keyed on the
// BENCH_SUITE_DIR environment variable; without it the package is inert
// and `go test ./...` skips the timing work.
package benchsuite

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geo"
)

// corpusPlaces and corpusSeed mirror the propserve demo corpus
// (DBpediaLike seed 7, 1500 places) so the suite measures the served
// configuration, like BENCH_engine.json does.
const (
	corpusSeed   = 7
	corpusPlaces = 1500

	// RetrieveK is the per-measurement instance size |S|: large enough
	// that the quadratic phases dominate, small enough that the full
	// suite stays in CI-friendly territory.
	RetrieveK = 200
)

var (
	corpusOnce sync.Once
	corpusVal  *dataset.Dataset
	corpusErr  error
)

// Corpus returns the shared demo corpus, generated once per process.
func Corpus() (*dataset.Dataset, error) {
	corpusOnce.Do(func() {
		cfg := dataset.DBpediaLike(corpusSeed)
		cfg.Places = corpusPlaces
		corpusVal, corpusErr = dataset.Generate(cfg)
	})
	return corpusVal, corpusErr
}

// Instance retrieves the standard RetrieveK-place instance at the corpus
// centre, the common input of every comparison in the suite.
func Instance() (geo.Point, []core.Place, error) {
	d, err := Corpus()
	if err != nil {
		return geo.Point{}, nil, err
	}
	loc := geo.Pt(d.Config.Extent/2, d.Config.Extent/2)
	places, err := d.Retrieve(dataset.Query{Loc: loc}, RetrieveK)
	if err != nil {
		return geo.Point{}, nil, err
	}
	return loc, places, nil
}

// TimeNs runs f runs times after one untimed warm-up and returns the mean
// wall-clock nanoseconds per run.
func TimeNs(runs int, f func() error) (float64, error) {
	if err := f(); err != nil { // warm-up: first-touch allocations, table builds
		return 0, err
	}
	start := time.Now()
	for i := 0; i < runs; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(runs), nil
}

// Report assembles the shared envelope of a suite report: the benchmark
// name, the corpus identity, the run counts, and the toolchain stamp.
// Comparison-specific numbers are passed through fields.
func Report(benchmark string, runs map[string]any, fields map[string]any) (map[string]any, error) {
	d, err := Corpus()
	if err != nil {
		return nil, err
	}
	r := map[string]any{
		"benchmark": benchmark,
		"dataset": map[string]any{
			"name": d.Config.Name, "places": d.Config.Places, "seed": d.Config.Seed,
		},
		"runs": runs,
		"go":   runtime.Version(),
		"cpus": runtime.NumCPU(),
	}
	for k, v := range fields {
		r[k] = v
	}
	return r, nil
}

// WriteReport writes the report as indented JSON (trailing newline, like
// BENCH_engine.json).
func WriteReport(path string, report map[string]any) error {
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("benchsuite: marshal %s: %w", path, err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
