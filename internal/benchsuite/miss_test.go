package benchsuite

// The large-corpus miss tier, gated on BENCH_MISS_DIR (the directory
// BENCH_miss.json is written into). `make bench-miss` sets it; a plain
// `go test ./...` skips the corpus generation and timing work entirely.
//
// Where the bench-suite measures the demo corpus (1500 places, K=200),
// this tier measures the regimes the miss-path optimisations were built
// for: 100k- and 1M-place corpora with K=2000 retrieved instances for
// the spatial Step-1 comparison, and the incremental-heap ABP against
// its rescan reference on the standard K=200 Step-2 instance.

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/grid"
)

// missRetrieveK is the instance size |S| of the spatial comparison: large
// enough that the O(K²) exact fill is firmly past the squared grid's
// crossover, matching the paper's large-K evaluation range.
const missRetrieveK = 2000

func missDir(t *testing.T) string {
	dir := os.Getenv("BENCH_MISS_DIR")
	if dir == "" {
		t.Skip("set BENCH_MISS_DIR=<dir> to run the large-corpus miss tier (make bench-miss)")
	}
	return dir
}

// TestBenchMiss measures the miss path at scale and writes BENCH_miss.json:
//
//   - pss_exact_<tier>_ns_op vs pss_squared_<tier>_ns_op — the Step-1
//     spatial fill over a K=2000 instance retrieved from each corpus
//     tier, with |G| ≈ K cells as the paper prescribes. The acceptance
//     bar is pss_squared_100k_speedup > 1.0: the approximation must
//     actually win where the serving path's size-aware downshift
//     chooses it.
//   - abp_ns_op vs abp_rescan_ns_op (plus iadu_ns_op for context) — the
//     incremental lazy-deletion heap against the per-round rescan it
//     replaced, on the standard K=200, k=10 instance of the 100k corpus.
//     The selections are asserted bitwise identical before timing, so
//     abp_speedup can never be bought with a divergent answer.
func TestBenchMiss(t *testing.T) {
	dir := missDir(t)
	fields := map[string]any{
		"instance_places": missRetrieveK,
		"step2_instance":  RetrieveK,
		"step2_k":         10,
	}

	const pssRuns = 15
	tiers := []struct {
		name   string
		places int
	}{
		{"100k", 100_000},
		{"1m", 1_000_000},
	}
	var d100k *dataset.Dataset
	for _, tier := range tiers {
		cfg := dataset.DBpediaLike(corpusSeed)
		cfg.Places = tier.places
		genStart := time.Now()
		d, err := dataset.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: generated %d places in %v", tier.name, tier.places, time.Since(genStart))
		if tier.places == 100_000 {
			d100k = d
		}

		loc := geo.Pt(d.Config.Extent/2, d.Config.Extent/2)
		places, err := d.Retrieve(dataset.Query{Loc: loc}, missRetrieveK)
		if err != nil {
			t.Fatal(err)
		}
		pts := make([]geo.Point, len(places))
		for i := range places {
			pts[i] = places[i].Loc
		}
		cells := len(pts) // the paper's |G| ≈ K rule

		exactNs, err := TimeNs(pssRuns, func() error { grid.AllPairsSpatial(loc, pts); return nil })
		if err != nil {
			t.Fatal(err)
		}
		fields["pss_exact_"+tier.name+"_ns_op"] = exactNs

		tbl := grid.NewSquaredTable(grid.SideForCells(cells))
		squaredNs, err := TimeNs(pssRuns, func() error {
			g, err := grid.NewSquared(loc, pts, cells)
			if err != nil {
				return err
			}
			g.ApproxAllPairs(tbl)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		fields["pss_squared_"+tier.name+"_ns_op"] = squaredNs
		fields["pss_squared_"+tier.name+"_speedup"] = exactNs / squaredNs
		t.Logf("%s: pSS exact %.0f, squared %.0f ns/op (%.2fx)",
			tier.name, exactNs, squaredNs, exactNs/squaredNs)
	}

	// Step-2 tier: the incremental-heap ABP against its rescan reference
	// on the standard instance, retrieved from the 100k corpus.
	loc := geo.Pt(d100k.Config.Extent/2, d100k.Config.Extent/2)
	places, err := d100k.Retrieve(dataset.Query{Loc: loc}, RetrieveK)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := core.ComputeScoresCtx(context.Background(), loc, places,
		core.ScoreOptions{Gamma: 0.5, Spatial: core.SpatialSquaredGrid})
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{K: 10, Lambda: 0.5, Gamma: 0.5}

	// The speedup only counts if the answers agree, bit for bit.
	heapSel, err := core.Select(core.AlgABP, ss, p)
	if err != nil {
		t.Fatal(err)
	}
	rescanSel, err := core.Select(core.AlgABPRescan, ss, p)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(heapSel.Indices) != fmt.Sprint(rescanSel.Indices) ||
		math.Float64bits(heapSel.HPF) != math.Float64bits(rescanSel.HPF) {
		t.Fatalf("abp heap and rescan diverge: %v (HPF %v) vs %v (HPF %v)",
			heapSel.Indices, heapSel.HPF, rescanSel.Indices, rescanSel.HPF)
	}

	const selectRuns = 40
	for _, alg := range []struct {
		alg   core.Algorithm
		field string
	}{
		{core.AlgABP, "abp_ns_op"},
		{core.AlgABPRescan, "abp_rescan_ns_op"},
		{core.AlgIAdU, "iadu_ns_op"},
	} {
		ns, err := TimeNs(selectRuns, func() error {
			_, err := core.Select(alg.alg, ss, p)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		fields[alg.field] = ns
		t.Logf("%-10s %12.0f ns/op", alg.alg, ns)
	}
	fields["abp_speedup"] = fields["abp_rescan_ns_op"].(float64) / fields["abp_ns_op"].(float64)

	// The envelope is assembled by hand: Report() stamps the demo corpus,
	// and this suite deliberately runs on its own tiers.
	report := map[string]any{
		"benchmark": "miss_path_large_corpus",
		"dataset":   map[string]any{"name": "dbpedia-like", "seed": corpusSeed, "tiers": []int{100_000, 1_000_000}},
		"runs":      map[string]any{"per_pss_method": pssRuns, "per_algorithm": selectRuns},
		"go":        runtime.Version(),
		"cpus":      runtime.NumCPU(),
	}
	for k, v := range fields {
		report[k] = v
	}
	out := filepath.Join(dir, "BENCH_miss.json")
	if err := WriteReport(out, report); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
