// Package pairs provides a compact symmetric pairwise-score matrix used as
// the Step-1 cache of the proportionality framework: contextual (sC) and
// spatial (sS) similarities are computed once for all pairs of retrieved
// places and then reused as many times as necessary by the greedy selection
// algorithms of Step 2.
package pairs

import "fmt"

// Matrix stores a symmetric pairwise score matrix over n objects with an
// implicit zero diagonal, packed as the strict upper triangle in row-major
// order.
type Matrix struct {
	n   int
	val []float64
}

// New returns an all-zero n×n symmetric score matrix.
func New(n int) *Matrix {
	if n < 0 {
		panic("pairs: negative Matrix size")
	}
	return &Matrix{n: n, val: make([]float64, n*(n-1)/2)}
}

// N returns the number of objects.
func (m *Matrix) N() int { return m.n }

func (m *Matrix) idx(i, j int) int {
	if i == j || i < 0 || j < 0 || i >= m.n || j >= m.n {
		panic(fmt.Sprintf("pairs: index (%d, %d) out of range for n=%d", i, j, m.n))
	}
	if i > j {
		i, j = j, i
	}
	return i*m.n - i*(i+1)/2 + (j - i - 1)
}

// At returns the score of the pair (i, j), i ≠ j.
func (m *Matrix) At(i, j int) float64 { return m.val[m.idx(i, j)] }

// Row returns the mutable slice of scores of the pairs (i, i+1) … (i, n−1):
// entry t of the returned slice is the score of (i, i+1+t). Bulk fills use
// it to write a whole row without per-entry index arithmetic; the slice
// aliases the matrix. Row(n−1) is empty.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.n {
		panic(fmt.Sprintf("pairs: row %d out of range for n=%d", i, m.n))
	}
	base := i*m.n - i*(i+1)/2
	return m.val[base : base+m.n-i-1]
}

// Set stores the score of the pair (i, j), i ≠ j.
func (m *Matrix) Set(i, j int, v float64) { m.val[m.idx(i, j)] = v }

// Add accumulates v into the score of the pair (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.val[m.idx(i, j)] += v }

// RowSums returns, for every object i, the sum of its scores against all
// other objects — the pCS(p_i) / pSS(p_i) vectors of Eq. 3 and Eq. 6.
func (m *Matrix) RowSums() []float64 {
	sums := make([]float64, m.n)
	k := 0
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			v := m.val[k]
			k++
			sums[i] += v
			sums[j] += v
		}
	}
	return sums
}

// Sum returns the sum of all pairwise scores (each unordered pair once).
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.val {
		s += v
	}
	return s
}

// MaxAbsDiff returns the largest absolute difference between corresponding
// entries of m and o. It panics if the sizes differ.
func (m *Matrix) MaxAbsDiff(o *Matrix) float64 {
	if m.n != o.n {
		panic("pairs: Matrix size mismatch")
	}
	var max float64
	for k, v := range m.val {
		d := v - o.val[k]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// Combine returns a new matrix whose entries are wa·a + wb·b, the weighted
// similarity sF of Eq. 13 when a holds sC and b holds sS.
func Combine(a, b *Matrix, wa, wb float64) *Matrix {
	if a.n != b.n {
		panic("pairs: Matrix size mismatch")
	}
	out := New(a.n)
	for k := range out.val {
		out.val[k] = wa*a.val[k] + wb*b.val[k]
	}
	return out
}
