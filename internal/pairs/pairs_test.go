package pairs

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIndexRoundTrip(t *testing.T) {
	m := New(5)
	v := 1.0
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			m.Set(i, j, v)
			if got := m.At(j, i); got != v {
				t.Fatalf("At(%d,%d) = %g, want %g", j, i, got, v)
			}
			v++
		}
	}
	// All ten entries must be distinct slots.
	seen := map[float64]bool{}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			x := m.At(i, j)
			if seen[x] {
				t.Fatalf("slot collision at (%d,%d)", i, j)
			}
			seen[x] = true
		}
	}
}

func TestSumAndRowSums(t *testing.T) {
	m := New(4)
	m.Set(0, 1, 1)
	m.Set(1, 2, 2)
	m.Set(2, 3, 4)
	if got := m.Sum(); got != 7 {
		t.Errorf("Sum = %g, want 7", got)
	}
	rs := m.RowSums()
	want := []float64{1, 3, 6, 4}
	for i := range want {
		if rs[i] != want[i] {
			t.Errorf("RowSums[%d] = %g, want %g", i, rs[i], want[i])
		}
	}
	// Invariant: Σ RowSums = 2 · Sum (every pair counted from both ends).
	var tot float64
	for _, v := range rs {
		tot += v
	}
	if tot != 2*m.Sum() {
		t.Errorf("ΣRowSums = %g, want %g", tot, 2*m.Sum())
	}
}

func TestCombine(t *testing.T) {
	a, b := New(3), New(3)
	a.Set(0, 1, 1)
	a.Set(1, 2, 2)
	b.Set(0, 1, 10)
	b.Set(0, 2, 20)
	c := Combine(a, b, 0.5, 0.25)
	if got := c.At(0, 1); got != 0.5*1+0.25*10 {
		t.Errorf("Combine[0,1] = %g", got)
	}
	if got := c.At(0, 2); got != 5 {
		t.Errorf("Combine[0,2] = %g", got)
	}
	if got := c.At(1, 2); got != 1 {
		t.Errorf("Combine[1,2] = %g", got)
	}
}

func TestCombineSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Combine with mismatched sizes did not panic")
		}
	}()
	Combine(New(2), New(3), 1, 1)
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestZeroAndOneObject(t *testing.T) {
	for _, n := range []int{0, 1} {
		m := New(n)
		if m.N() != n {
			t.Errorf("N = %d, want %d", m.N(), n)
		}
		if s := m.RowSums(); len(s) != n {
			t.Errorf("RowSums len = %d, want %d", len(s), n)
		}
		if m.Sum() != 0 {
			t.Error("empty matrix Sum != 0")
		}
	}
}

// Property: RowSums is consistent with direct recomputation via At.
func TestRowSumsConsistent(t *testing.T) {
	f := func(vals []float64, nRaw uint8) bool {
		n := int(nRaw%10) + 2
		m := New(n)
		k := 0
		for i := 0; i < n && k < len(vals); i++ {
			for j := i + 1; j < n && k < len(vals); j++ {
				v := vals[k]
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0
				}
				m.Set(i, j, v)
				k++
			}
		}
		rs := m.RowSums()
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				if j != i {
					s += m.At(i, j)
				}
			}
			if math.Abs(s-rs[i]) > 1e-9*(1+math.Abs(s)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPanics(t *testing.T) {
	m := New(3)
	cases := []func(){
		func() { m.At(1, 1) },
		func() { m.At(-1, 0) },
		func() { m.At(0, 3) },
		func() { m.Set(3, 0, 1) },
		func() { m.Add(1, 1, 1) },
		func() { m.MaxAbsDiff(New(4)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAddAccumulates(t *testing.T) {
	m := New(3)
	m.Add(0, 2, 1.5)
	m.Add(2, 0, 0.5)
	if got := m.At(0, 2); got != 2 {
		t.Errorf("Add result = %g, want 2", got)
	}
}

func TestMaxAbsDiffDirections(t *testing.T) {
	a, b := New(2), New(2)
	a.Set(0, 1, 5)
	b.Set(0, 1, 7)
	if a.MaxAbsDiff(b) != 2 || b.MaxAbsDiff(a) != 2 {
		t.Error("MaxAbsDiff not symmetric")
	}
}
