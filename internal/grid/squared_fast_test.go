package grid

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func randomPts(rng *rand.Rand, n int) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	return pts
}

// TestSquaredTableDrivenMatchesPerPairLookup pins the occupied-cell table
// optimisation to the semantics it replaced: every matrix entry and every
// pSS value must match, bit for bit, what per-pair SquaredTable.At (or
// unitSS without a table) produces.
func TestSquaredTableDrivenMatchesPerPairLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := geo.Pt(50, 50)
	for _, n := range []int{1, 2, 37, 200} {
		pts := randomPts(rng, n)
		for _, tbl := range []*SquaredTable{nil, NewSquaredTable(16), NewSquaredTable(4)} {
			g, err := NewSquared(q, pts, n)
			if err != nil {
				t.Fatal(err)
			}
			m := g.ApproxAllPairs(tbl)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					ci, cj := int(g.cellOf[i]), int(g.cellOf[j])
					var want float64
					switch {
					case ci == cj:
						want = 1
					case tbl != nil:
						want = tbl.At(g.side, ci, cj)
					default:
						want = unitSS(ci, cj, g.side)
					}
					if math.Float64bits(m.At(i, j)) != math.Float64bits(want) {
						t.Fatalf("n=%d: entry (%d,%d) = %v, want %v", n, i, j, m.At(i, j), want)
					}
				}
			}
			// pSS must equal the per-cell aggregation over the same values.
			pss := g.PSS(tbl)
			cellScore := make(map[int32]float64, len(g.occ))
			for a, ci := range g.occ {
				for b := a; b < len(g.occ); b++ {
					cj := g.occ[b]
					var s float64
					if ci == cj {
						s = 1
					} else if tbl != nil {
						s = tbl.At(g.side, int(ci), int(cj))
					} else {
						s = unitSS(int(ci), int(cj), g.side)
					}
					cellScore[ci] += float64(g.counts[cj]) * s
					if ci != cj {
						cellScore[cj] += float64(g.counts[ci]) * s
					}
				}
			}
			for i, c := range g.cellOf {
				want := cellScore[c] - 1
				if math.Float64bits(pss[i]) != math.Float64bits(want) {
					t.Fatalf("n=%d: pSS[%d] = %v, want %v", n, i, pss[i], want)
				}
			}
		}
	}
}

// TestApproxAllPairsParallelMatchesSequential: the parallel fill (and its
// small-input sequential fallback) must reproduce the sequential matrix
// bit for bit.
func TestApproxAllPairsParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q := geo.Pt(50, 50)
	tbl := NewSquaredTable(16)
	for _, n := range []int{30, 64, 300} { // 30 exercises the fallback
		pts := randomPts(rng, n)
		g, err := NewSquared(q, pts, n)
		if err != nil {
			t.Fatal(err)
		}
		want := g.ApproxAllPairs(tbl)
		for _, workers := range []int{1, 3, 8} {
			got, err := g.ApproxAllPairsParallelCtx(context.Background(), tbl, workers)
			if err != nil {
				t.Fatal(err)
			}
			if d := want.MaxAbsDiff(got); d != 0 {
				t.Errorf("n=%d workers=%d: max diff %v, want 0", n, workers, d)
			}
		}
	}
}

// TestApproxAllPairsParallelCancelled: cancellation during the fan-out
// discards the partial matrix and reports ctx.Err().
func TestApproxAllPairsParallelCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := randomPts(rng, 500)
	g, err := NewSquared(geo.Pt(50, 50), pts, 500)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if m, err := g.ApproxAllPairsParallelCtx(ctx, nil, 4); err == nil || m != nil {
		t.Errorf("cancelled fill returned (%v, %v), want (nil, ctx error)", m, err)
	}
}

// TestSampleApproxErrorSampleSizeExactUnderSampling: when sampling is not
// exhaustive, exactly samples distinct pairs contribute (drawing without
// replacement), so Pairs is the sample size, not a collision-deflated or
// duplicate-inflated count.
func TestSampleApproxErrorSampleSizeExactUnderSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	q := geo.Pt(50, 50)
	// 12 points → 66 pairs, just above 64 samples: collisions are near
	// certain when drawing with replacement, so a regression here would
	// show up as Pairs < 64 distinct contributions.
	pts := randomPts(rng, 12)
	exact := AllPairsSpatial(q, pts)
	es := SampleApproxError(q, pts, exact, 64)
	if es.Pairs != 64 {
		t.Errorf("Pairs = %d, want 64", es.Pairs)
	}
	if es.MaxAbs != 0 || es.MeanAbs != 0 {
		t.Errorf("error against exact matrix = %+v, want zero", es)
	}
	if again := SampleApproxError(q, pts, exact, 64); again != es {
		t.Errorf("sampling not deterministic: %+v vs %+v", again, es)
	}
}
