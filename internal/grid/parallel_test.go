package grid

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
)

// TestParallelSpatialIdentical: the parallel all-pairs computation must
// match the sequential baseline exactly, for assorted worker counts.
func TestParallelSpatialIdentical(t *testing.T) {
	q := geo.Pt(0.3, 0.7)
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{0, 1, 10, 63, 64, 200} {
		pts := uniformPoints(rng, q, n, 3)
		want := AllPairsSpatial(q, pts)
		for _, workers := range []int{0, 1, 2, 7, 500} {
			got := AllPairsSpatialParallel(q, pts, workers)
			if want.N() != got.N() {
				t.Fatalf("n=%d workers=%d: size mismatch", n, workers)
			}
			if n > 1 {
				if d := want.MaxAbsDiff(got); d != 0 {
					t.Fatalf("n=%d workers=%d: differs by %g", n, workers, d)
				}
			}
		}
	}
}

func TestPSSBaselineParallel(t *testing.T) {
	q := geo.Pt(0, 0)
	rng := rand.New(rand.NewSource(29))
	pts := gaussianPoints(rng, q, 150, 1)
	want, _ := PSSBaseline(q, pts)
	got, cache := PSSBaselineParallel(q, pts, 4)
	if cache.N() != len(pts) {
		t.Fatal("cache size wrong")
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("pSS[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func BenchmarkPSSBaselineSequentialK2000(b *testing.B) {
	q := geo.Pt(0, 0)
	rng := rand.New(rand.NewSource(1))
	pts := uniformPoints(rng, q, 2000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PSSBaseline(q, pts)
	}
}

func BenchmarkPSSBaselineParallelK2000(b *testing.B) {
	q := geo.Pt(0, 0)
	rng := rand.New(rand.NewSource(1))
	pts := uniformPoints(rng, q, 2000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PSSBaselineParallel(q, pts, 0)
	}
}
