package grid_test

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/grid"
)

// Example shows the grid-based pSS computation of Algorithm 2: a squared
// grid sized by the |G| ≈ K rule, with cell-centre similarities coming
// from a table precomputed once for all queries (Theorem 7.1).
func Example() {
	q := geo.Pt(0, 0)
	rng := rand.New(rand.NewSource(1))
	pts := dataset.UniformPoints(rng, q, 100, 1)

	table := grid.NewSquaredTable(grid.SideForCells(100)) // reusable across queries
	g, err := grid.NewSquared(q, pts, len(pts))           // |G| ≈ K
	if err != nil {
		fmt.Println(err)
		return
	}
	approx := g.PSS(table)
	exact, _ := grid.PSSBaseline(q, pts)

	fmt.Printf("cells: %d (side %d)\n", g.Cells(), g.Side())
	fmt.Printf("relative error below 5%%: %v\n", grid.RelativeError(approx, exact) < 0.05)
	// Output:
	// cells: 100 (side 10)
	// relative error below 5%: true
}
