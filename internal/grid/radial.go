package grid

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/geo"
	"repro/internal/pairs"
)

// Radial is the radial grid of Section 7.1.2: r_c homocentric circles
// centred at the query location q with radii that are multiples of a
// constant c_z (the outermost circle has diameter 2·fp̄), crossed by R_d
// diameters that split the plane into 2·R_d equal slices. With the paper's
// setting R_d = 2·r_c this yields |R| = 2·R_d·r_c = R_d² sectors. Sector
// sizes shrink towards q, which can approximate better when many places
// are close to the query.
type Radial struct {
	center geo.Point
	rings  int     // r_c
	slices int     // 2·R_d = 4·r_c
	cz     float64 // ring width (c_z)
	counts []int32 // |s_i| per sector, index = ring·slices + slice
	cellOf []int32 // sector index of every assigned point
	occ    []int32 // indices of non-empty sectors, ascending
}

// RingsForCells returns r_c for a requested total sector count |R| = R_d²
// with R_d = 2·r_c: the smallest r_c with (2·r_c)² ≥ cells.
func RingsForCells(cells int) int {
	if cells < 4 {
		return 1
	}
	return int(math.Ceil(math.Sqrt(float64(cells)) / 2))
}

// NewRadial builds the radial grid for q covering pts with approximately
// cells sectors, and assigns every point to its sector.
func NewRadial(q geo.Point, pts []geo.Point, cells int) (*Radial, error) {
	if !q.Valid() {
		return nil, fmt.Errorf("grid: invalid query location %v", q)
	}
	for i, p := range pts {
		if !p.Valid() {
			return nil, fmt.Errorf("grid: invalid point %d: %v", i, p)
		}
	}
	rings := RingsForCells(cells)
	fp := geo.FarthestDist(q, pts)
	r := &Radial{
		center: q,
		rings:  rings,
		slices: 4 * rings,
		counts: make([]int32, rings*4*rings),
		cellOf: make([]int32, len(pts)),
	}
	if fp > 0 {
		r.cz = fp / float64(rings)
	}
	for i, p := range pts {
		c := r.SectorOf(p)
		r.cellOf[i] = int32(c)
		if r.counts[c] == 0 {
			r.occ = append(r.occ, int32(c))
		}
		r.counts[c]++
	}
	sortInt32(r.occ)
	return r, nil
}

// Rings returns r_c.
func (r *Radial) Rings() int { return r.rings }

// Sectors returns |R|, the total number of sectors.
func (r *Radial) Sectors() int { return r.rings * r.slices }

// OccupiedSectors returns the number of non-empty sectors.
func (r *Radial) OccupiedSectors() int { return len(r.occ) }

// SectorOf returns the index (ring·slices + slice) of the sector
// containing p. Points beyond the outermost circle are clamped to it.
func (r *Radial) SectorOf(p geo.Point) int {
	if r.cz == 0 {
		return 0 // degenerate: all points coincide with q
	}
	d := p.Dist(r.center)
	ring := int(d / r.cz)
	if ring >= r.rings {
		ring = r.rings - 1
	}
	slice := int(p.Angle(r.center) / (2 * math.Pi / float64(r.slices)))
	if slice >= r.slices {
		slice = r.slices - 1 // angle == 2π from rounding
	}
	return ring*r.slices + slice
}

// Representative returns the world coordinates of the representative point
// of sector idx: the intersection of the circle with the sector's average
// radius and the ray with the sector's average angle.
func (r *Radial) Representative(idx int) geo.Point {
	cz := r.cz
	if cz == 0 {
		cz = 1
	}
	ring, slice := idx/r.slices, idx%r.slices
	rad := (float64(ring) + 0.5) * cz
	ang := (float64(slice) + 0.5) * 2 * math.Pi / float64(r.slices)
	return geo.Pt(r.center.X+rad*math.Cos(ang), r.center.Y+rad*math.Sin(ang))
}

// unitRepresentative is Representative at unit c_z with the grid centre at
// the origin — scale-free per Theorem 7.1.
func unitRepresentative(idx, slices int) geo.Point {
	ring, slice := idx/slices, idx%slices
	rad := float64(ring) + 0.5
	ang := (float64(slice) + 0.5) * 2 * math.Pi / float64(slices)
	return geo.Pt(rad*math.Cos(ang), rad*math.Sin(ang))
}

// PSS computes the approximate pSS(p) for every assigned point using the
// sector representatives (Algorithm 2 on the radial grid); a nil tbl
// computes representative similarities on the fly.
func (r *Radial) PSS(tbl *RadialTable) []float64 {
	cellScore := make(map[int32]float64, len(r.occ))
	for a, ci := range r.occ {
		for b := a; b < len(r.occ); b++ {
			cj := r.occ[b]
			var s float64
			if ci == cj {
				s = 1
			} else if tbl != nil {
				s = tbl.At(r.rings, int(ci), int(cj))
			} else {
				s = unitRadialSS(int(ci), int(cj), r.slices)
			}
			cellScore[ci] += float64(r.counts[cj]) * s
			if ci != cj {
				cellScore[cj] += float64(r.counts[ci]) * s
			}
		}
	}
	out := make([]float64, len(r.cellOf))
	for i, c := range r.cellOf {
		out[i] = cellScore[c] - 1
	}
	return out
}

// ApproxAllPairs returns the approximate pairwise sS matrix in which each
// point is replaced by its sector representative.
func (r *Radial) ApproxAllPairs(tbl *RadialTable) *pairs.Matrix {
	n := len(r.cellOf)
	m := pairs.New(n)
	for i := 0; i < n; i++ {
		ci := int(r.cellOf[i])
		for j := i + 1; j < n; j++ {
			cj := int(r.cellOf[j])
			switch {
			case ci == cj:
				m.Set(i, j, 1)
			case tbl != nil:
				m.Set(i, j, tbl.At(r.rings, ci, cj))
			default:
				m.Set(i, j, unitRadialSS(ci, cj, r.slices))
			}
		}
	}
	return m
}

func unitRadialSS(ci, cj, slices int) float64 {
	return geo.PtolemySimilarity(geo.Pt(0, 0),
		unitRepresentative(ci, slices), unitRepresentative(cj, slices))
}

// RadialTable precomputes sS between sector representatives. Unlike the
// squared grid, a radial grid with fewer rings is not a sub-grid of a
// larger one (the slice count changes with r_c), so the table memoises one
// matrix per ring count. It is safe for concurrent use.
type RadialTable struct {
	mu  sync.Mutex
	per map[int][]float64 // rings → sectors×sectors similarity matrix
}

// NewRadialTable returns an empty memoising table.
func NewRadialTable() *RadialTable {
	return &RadialTable{per: make(map[int][]float64)}
}

// Resolutions returns the number of ring counts whose matrices have been
// built and memoised so far.
func (t *RadialTable) Resolutions() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.per)
}

// Bytes returns the memory footprint of all memoised matrices.
func (t *RadialTable) Bytes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int
	for _, m := range t.per {
		n += len(m) * 8
	}
	return n
}

// At returns the precomputed sS between the representatives of sectors ci
// and cj of a radial grid with the given ring count, computing and caching
// the matrix for that ring count on first use.
func (t *RadialTable) At(rings, ci, cj int) float64 {
	t.mu.Lock()
	m, ok := t.per[rings]
	if !ok {
		m = buildRadialMatrix(rings)
		t.per[rings] = m
	}
	t.mu.Unlock()
	sectors := rings * 4 * rings
	return m[ci*sectors+cj]
}

func buildRadialMatrix(rings int) []float64 {
	slices := 4 * rings
	sectors := rings * slices
	reps := make([]geo.Point, sectors)
	for i := range reps {
		reps[i] = unitRepresentative(i, slices)
	}
	v := make([]float64, sectors*sectors)
	origin := geo.Pt(0, 0)
	for i := 0; i < sectors; i++ {
		v[i*sectors+i] = 1
		for j := i + 1; j < sectors; j++ {
			s := geo.PtolemySimilarity(origin, reps[i], reps[j])
			v[i*sectors+j] = s
			v[j*sectors+i] = s
		}
	}
	return v
}
