package grid

import (
	"math"
	"math/rand"

	"repro/internal/geo"
	"repro/internal/pairs"
)

// ErrorSample summarises how far an approximate pairwise sS matrix
// deviates from the exact Ptolemy similarity on a sample of place pairs.
type ErrorSample struct {
	// Pairs is the number of distinct pairs compared.
	Pairs int
	// MeanAbs and MaxAbs are the mean and maximum |exact − approx| over
	// the sampled pairs; sS values live in [0, 1], so both are absolute
	// error on that scale.
	MeanAbs float64
	MaxAbs  float64
}

// SampleApproxError estimates the error a grid approximation introduced
// by recomputing the exact sS (Eq. 7) for up to samples random pairs of
// pts and comparing against the approximate matrix. When the instance has
// no more than samples pairs the comparison is exhaustive; otherwise
// samples distinct pairs are drawn (without replacement — every sampled
// pair contributes exactly once). Sampling is deterministic in
// (len(pts), samples) so repeated runs over the same instance agree — the estimate feeds the /v1/explain introspection
// surface and the propserve_grid_err_sampled gauge, where jitter between
// identical requests would read as noise.
func SampleApproxError(q geo.Point, pts []geo.Point, approx *pairs.Matrix, samples int) ErrorSample {
	n := len(pts)
	if n < 2 || samples <= 0 || approx == nil || approx.N() != n {
		return ErrorSample{}
	}
	var es ErrorSample
	var sum float64
	observe := func(i, j int) {
		d := math.Abs(geo.PtolemySimilarity(q, pts[i], pts[j]) - approx.At(i, j))
		sum += d
		if d > es.MaxAbs {
			es.MaxAbs = d
		}
		es.Pairs++
	}
	if total := n * (n - 1) / 2; total <= samples {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				observe(i, j)
			}
		}
	} else {
		// Sample without replacement: a redrawn duplicate pair would count
		// twice in Pairs and skew MeanAbs toward whatever it happened to
		// hit — on small instances (total barely above samples) collisions
		// are common enough to matter. total > samples here, so enough
		// distinct pairs exist for the redraw loop to terminate.
		rng := rand.New(rand.NewSource(int64(n)*1_000_003 + int64(samples)))
		seen := make(map[int]struct{}, samples)
		for s := 0; s < samples; s++ {
			for {
				i := rng.Intn(n)
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				if i > j {
					i, j = j, i
				}
				key := i*n + j
				if _, dup := seen[key]; dup {
					continue
				}
				seen[key] = struct{}{}
				observe(i, j)
				break
			}
		}
	}
	es.MeanAbs = sum / float64(es.Pairs)
	return es
}
