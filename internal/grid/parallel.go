package grid

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/geo"
	"repro/internal/pairs"
	"repro/internal/telemetry"
)

// AllPairsSpatialParallel is AllPairsSpatial with the pair loop fanned out
// over worker goroutines. Rows are distributed in strides so the shrinking
// per-row work balances; each (i, j) slot is written exactly once, so the
// shared matrix needs no locking. Results are identical to the sequential
// baseline.
func AllPairsSpatialParallel(q geo.Point, pts []geo.Point, workers int) *pairs.Matrix {
	m, _ := AllPairsSpatialParallelCtx(context.Background(), q, pts, workers)
	return m
}

// AllPairsSpatialParallelCtx is AllPairsSpatialParallel with cooperative
// cancellation: every worker polls ctx once per row, so on cancellation
// all workers return within one row of work, the partial matrix is
// discarded, and ctx.Err() is returned. Workers never outlive the call —
// the wait-group join runs in both the completed and cancelled paths.
func AllPairsSpatialParallelCtx(ctx context.Context, q geo.Point, pts []geo.Point, workers int) (*pairs.Matrix, error) {
	n := len(pts)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 64 {
		return AllPairsSpatialCtx(ctx, q, pts)
	}
	// The sequential fallback records its own span; span only the
	// genuinely parallel path so the stage is never counted twice.
	defer telemetry.StartSpan(ctx, telemetry.StagePSS)()
	m := pairs.New(n)
	dq := make([]float64, n)
	for i, p := range pts {
		dq[i] = p.Dist(q)
	}
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				for j := i + 1; j < n; j++ {
					den := dq[i] + dq[j]
					if den == 0 {
						m.Set(i, j, 1)
						continue
					}
					d := pts[i].Dist(pts[j]) / den
					if d > 1 {
						d = 1
					}
					m.Set(i, j, 1-d)
				}
			}
		}(w)
	}
	wg.Wait()
	if cancelled.Load() {
		return nil, ctx.Err()
	}
	return m, nil
}

// PSSBaselineParallel returns the exact pSS vector and pair cache using
// the parallel all-pairs computation.
func PSSBaselineParallel(q geo.Point, pts []geo.Point, workers int) ([]float64, *pairs.Matrix) {
	m := AllPairsSpatialParallel(q, pts, workers)
	return m.RowSums(), m
}
