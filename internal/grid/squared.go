package grid

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/pairs"
)

// Squared is the squared grid of Section 7.1: a regular |g| × |g| grid of
// square cells centred on the query location q, with side length
// G_z = 2·fp̄ (twice the distance from q to the farthest place). Every
// place is represented by the centre of its cell.
type Squared struct {
	center geo.Point // G_c, the query location
	size   float64   // G_z, the grid's side length
	side   int       // |g| = √|G| cells per row/column (even)
	cellsz float64   // side length of one cell
	counts []int32   // |c_i| for every cell, row-major
	cellOf []int32   // cell index of every assigned point
	occ    []int32   // indices of non-empty cells, ascending
}

// SideForCells returns the per-axis cell count |g| for a requested total
// number of cells |G|: the smallest even integer with side² ≥ cells.
func SideForCells(cells int) int {
	if cells < 1 {
		cells = 1
	}
	side := int(math.Ceil(math.Sqrt(float64(cells))))
	if side%2 == 1 {
		side++
	}
	return side
}

// NewSquared builds the grid for query location q covering pts, with
// approximately cells cells (|G| ≈ K is the paper's recommended setting),
// and assigns every point to its cell (Steps 1–2 of Algorithm 2).
func NewSquared(q geo.Point, pts []geo.Point, cells int) (*Squared, error) {
	if !q.Valid() {
		return nil, fmt.Errorf("grid: invalid query location %v", q)
	}
	for i, p := range pts {
		if !p.Valid() {
			return nil, fmt.Errorf("grid: invalid point %d: %v", i, p)
		}
	}
	side := SideForCells(cells)
	fp := geo.FarthestDist(q, pts)
	g := &Squared{
		center: q,
		size:   2 * fp,
		side:   side,
		counts: make([]int32, side*side),
		cellOf: make([]int32, len(pts)),
	}
	if fp > 0 {
		g.cellsz = g.size / float64(side)
	}
	for i, p := range pts {
		c := g.CellOf(p)
		g.cellOf[i] = int32(c)
		if g.counts[c] == 0 {
			g.occ = append(g.occ, int32(c))
		}
		g.counts[c]++
	}
	sortInt32(g.occ)
	return g, nil
}

// Side returns |g|, the number of cells per row.
func (g *Squared) Side() int { return g.side }

// Cells returns |G| = side², the total number of cells.
func (g *Squared) Cells() int { return g.side * g.side }

// OccupiedCells returns the number of non-empty cells.
func (g *Squared) OccupiedCells() int { return len(g.occ) }

// CellOf returns the row-major index of the cell containing p. Points on
// (or marginally beyond, from floating-point drift) the boundary are
// clamped into the grid.
func (g *Squared) CellOf(p geo.Point) int {
	if g.cellsz == 0 {
		// Degenerate grid: every point coincides with q; use the cell just
		// above-right of the centre.
		return (g.side/2)*g.side + g.side/2
	}
	half := g.size / 2
	cx := clampCell(int(math.Floor((p.X-(g.center.X-half))/g.cellsz)), g.side)
	cy := clampCell(int(math.Floor((p.Y-(g.center.Y-half))/g.cellsz)), g.side)
	return cy*g.side + cx
}

// CellCenter returns the world coordinates of the centre of cell idx.
func (g *Squared) CellCenter(idx int) geo.Point {
	cx, cy := idx%g.side, idx/g.side
	half := g.size / 2
	cs := g.cellsz
	if cs == 0 {
		cs = 1 // degenerate grid; centres are only meaningful relatively
	}
	return geo.Pt(
		g.center.X-half+(float64(cx)+0.5)*cs,
		g.center.Y-half+(float64(cy)+0.5)*cs,
	)
}

// unitCenter returns the centre of cell idx in grid-relative units (cell
// size 1, grid centre at the origin) — the representation under which
// Theorem 7.1 makes sS independent of the actual cell size.
func unitCenter(idx, side int) geo.Point {
	cx, cy := idx%side, idx/side
	h := float64(side) / 2
	return geo.Pt(float64(cx)+0.5-h, float64(cy)+0.5-h)
}

// PSS computes the approximate pSS(p) score for every assigned point
// (Step 3 of Algorithm 2, Eq. 18), using tbl for precomputed cell-centre
// similarities; a nil tbl computes them on the fly.
func (g *Squared) PSS(tbl *SquaredTable) []float64 {
	cellScore := make(map[int32]float64, len(g.occ))
	for a, ci := range g.occ {
		for b := a; b < len(g.occ); b++ {
			cj := g.occ[b]
			var s float64
			if ci == cj {
				s = 1
			} else if tbl != nil {
				s = tbl.At(g.side, int(ci), int(cj))
			} else {
				s = unitSS(int(ci), int(cj), g.side)
			}
			cellScore[ci] += float64(g.counts[cj]) * s
			if ci != cj {
				cellScore[cj] += float64(g.counts[ci]) * s
			}
		}
	}
	out := make([]float64, len(g.cellOf))
	for i, c := range g.cellOf {
		out[i] = cellScore[c] - 1 // disregard the place's comparison to itself
	}
	return out
}

// ApproxAllPairs returns the approximate pairwise sS matrix in which each
// point is replaced by its cell centre. This is what the optimised greedy
// pipeline uses for the pairwise sF scores, at one table lookup per pair.
func (g *Squared) ApproxAllPairs(tbl *SquaredTable) *pairs.Matrix {
	n := len(g.cellOf)
	m := pairs.New(n)
	for i := 0; i < n; i++ {
		ci := int(g.cellOf[i])
		for j := i + 1; j < n; j++ {
			cj := int(g.cellOf[j])
			switch {
			case ci == cj:
				m.Set(i, j, 1)
			case tbl != nil:
				m.Set(i, j, tbl.At(g.side, ci, cj))
			default:
				m.Set(i, j, unitSS(ci, cj, g.side))
			}
		}
	}
	return m
}

// unitSS computes sS between the unit-scale centres of two cells of a grid
// with the given side, w.r.t. the grid centre (Theorem 7.1 guarantees this
// equals the true-scale value).
func unitSS(ci, cj, side int) float64 {
	return geo.PtolemySimilarity(geo.Pt(0, 0), unitCenter(ci, side), unitCenter(cj, side))
}

// SquaredTable precomputes sS between the cell centres of a maximal
// squared grid G_MAX. Because cell-centre similarity depends only on the
// cells' positions relative to the grid centre measured in whole cells
// (Theorem 7.1), one table serves every query location, grid size G_z, and
// any grid with side ≤ MaxSide (an even-sided grid is a centred sub-grid
// of G_MAX).
type SquaredTable struct {
	maxSide int
	v       []float64 // v[ci*cells + cj] for the maximal grid
}

// NewSquaredTable precomputes the table for grids up to maxSide cells per
// row. maxSide is rounded up to an even number.
func NewSquaredTable(maxSide int) *SquaredTable {
	if maxSide < 2 {
		maxSide = 2
	}
	if maxSide%2 == 1 {
		maxSide++
	}
	cells := maxSide * maxSide
	t := &SquaredTable{maxSide: maxSide, v: make([]float64, cells*cells)}
	centers := make([]geo.Point, cells)
	for i := range centers {
		centers[i] = unitCenter(i, maxSide)
	}
	origin := geo.Pt(0, 0)
	for i := 0; i < cells; i++ {
		t.v[i*cells+i] = 1
		for j := i + 1; j < cells; j++ {
			s := geo.PtolemySimilarity(origin, centers[i], centers[j])
			t.v[i*cells+j] = s
			t.v[j*cells+i] = s
		}
	}
	return t
}

// MaxSide returns the largest grid side the table covers.
func (t *SquaredTable) MaxSide() int { return t.maxSide }

// Cells returns |G_MAX| = MaxSide², the number of cells of the maximal
// grid the table was built for.
func (t *SquaredTable) Cells() int { return t.maxSide * t.maxSide }

// Bytes returns the memory footprint of the precomputed matrix, for
// capacity planning and stats endpoints (the table is |G_MAX|² float64s).
func (t *SquaredTable) Bytes() int { return len(t.v) * 8 }

// At returns the precomputed sS between the centres of cells ci and cj of
// a grid with the given (even) side ≤ MaxSide; larger grids fall back to
// direct computation.
func (t *SquaredTable) At(side, ci, cj int) float64 {
	if side > t.maxSide {
		return unitSS(ci, cj, side)
	}
	off := (t.maxSide - side) / 2
	mi := (ci/side+off)*t.maxSide + ci%side + off
	mj := (cj/side+off)*t.maxSide + cj%side + off
	return t.v[mi*t.maxSide*t.maxSide+mj]
}

func clampCell(c, side int) int {
	if c < 0 {
		return 0
	}
	if c >= side {
		return side - 1
	}
	return c
}

func sortInt32(s []int32) {
	// Insertion sort: occupied-cell lists are short and nearly sorted
	// (points are appended in first-touch order).
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
