package grid

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/geo"
	"repro/internal/pairs"
)

// Squared is the squared grid of Section 7.1: a regular |g| × |g| grid of
// square cells centred on the query location q, with side length
// G_z = 2·fp̄ (twice the distance from q to the farthest place). Every
// place is represented by the centre of its cell.
type Squared struct {
	center geo.Point // G_c, the query location
	size   float64   // G_z, the grid's side length
	side   int       // |g| = √|G| cells per row/column (even)
	cellsz float64   // side length of one cell
	counts []int32   // |c_i| for every cell, row-major
	cellOf []int32   // cell index of every assigned point
	occ    []int32   // indices of non-empty cells, ascending
	occIdx []int32   // per point, the position of its cell in occ

	// cs caches the dense occupied-cell similarity table (cs[a*len(occ)+b]
	// = sS between the centres of occ[a] and occ[b], diagonal 1) built by
	// cellScores for the fallback paths that compute similarities on the
	// fly. mrow/pmi cache the maximal-grid index translation for the
	// table-driven paths (keyed by mtbl). PSS and the ApproxAllPairs
	// variants share the builds; not safe for concurrent first use.
	cs   []float64
	mrow []int32 // per occupied cell: flat index of its centre in the maximal grid
	pmi  []int32 // per point: mrow of its cell
	mtbl *SquaredTable
}

// SideForCells returns the per-axis cell count |g| for a requested total
// number of cells |G|: the smallest even integer with side² ≥ cells.
func SideForCells(cells int) int {
	if cells < 1 {
		cells = 1
	}
	side := int(math.Ceil(math.Sqrt(float64(cells))))
	if side%2 == 1 {
		side++
	}
	return side
}

// NewSquared builds the grid for query location q covering pts, with
// approximately cells cells (|G| ≈ K is the paper's recommended setting),
// and assigns every point to its cell (Steps 1–2 of Algorithm 2).
func NewSquared(q geo.Point, pts []geo.Point, cells int) (*Squared, error) {
	if !q.Valid() {
		return nil, fmt.Errorf("grid: invalid query location %v", q)
	}
	for i, p := range pts {
		if !p.Valid() {
			return nil, fmt.Errorf("grid: invalid point %d: %v", i, p)
		}
	}
	side := SideForCells(cells)
	fp := geo.FarthestDist(q, pts)
	g := &Squared{
		center: q,
		size:   2 * fp,
		side:   side,
		counts: make([]int32, side*side),
		cellOf: make([]int32, len(pts)),
	}
	if fp > 0 {
		g.cellsz = g.size / float64(side)
	}
	for i, p := range pts {
		c := g.CellOf(p)
		g.cellOf[i] = int32(c)
		if g.counts[c] == 0 {
			g.occ = append(g.occ, int32(c))
		}
		g.counts[c]++
	}
	sortInt32(g.occ)
	// Compact per-point index into occ: the aggregation loops work over
	// the dense occupied-cell table instead of the sparse side² cell space.
	pos := make([]int32, side*side)
	for a, c := range g.occ {
		pos[c] = int32(a)
	}
	g.occIdx = make([]int32, len(pts))
	for i, c := range g.cellOf {
		g.occIdx[i] = pos[c]
	}
	return g, nil
}

// Side returns |g|, the number of cells per row.
func (g *Squared) Side() int { return g.side }

// Cells returns |G| = side², the total number of cells.
func (g *Squared) Cells() int { return g.side * g.side }

// OccupiedCells returns the number of non-empty cells.
func (g *Squared) OccupiedCells() int { return len(g.occ) }

// CellOf returns the row-major index of the cell containing p. Points on
// (or marginally beyond, from floating-point drift) the boundary are
// clamped into the grid.
func (g *Squared) CellOf(p geo.Point) int {
	if g.cellsz == 0 {
		// Degenerate grid: every point coincides with q; use the cell just
		// above-right of the centre.
		return (g.side/2)*g.side + g.side/2
	}
	half := g.size / 2
	cx := clampCell(int(math.Floor((p.X-(g.center.X-half))/g.cellsz)), g.side)
	cy := clampCell(int(math.Floor((p.Y-(g.center.Y-half))/g.cellsz)), g.side)
	return cy*g.side + cx
}

// CellCenter returns the world coordinates of the centre of cell idx.
func (g *Squared) CellCenter(idx int) geo.Point {
	cx, cy := idx%g.side, idx/g.side
	half := g.size / 2
	cs := g.cellsz
	if cs == 0 {
		cs = 1 // degenerate grid; centres are only meaningful relatively
	}
	return geo.Pt(
		g.center.X-half+(float64(cx)+0.5)*cs,
		g.center.Y-half+(float64(cy)+0.5)*cs,
	)
}

// unitCenter returns the centre of cell idx in grid-relative units (cell
// size 1, grid centre at the origin) — the representation under which
// Theorem 7.1 makes sS independent of the actual cell size.
func unitCenter(idx, side int) geo.Point {
	cx, cy := idx%side, idx/side
	h := float64(side) / 2
	return geo.Pt(float64(cx)+0.5-h, float64(cy)+0.5-h)
}

// tableDriven reports whether tbl covers this grid, i.e. whether the
// aggregation loops can gather similarities straight out of the maximal
// table instead of computing (or densifying) them.
func (g *Squared) tableDriven(tbl *SquaredTable) bool {
	return tbl != nil && g.side <= tbl.maxSide
}

// maximalIdx returns the cached maximal-grid index translation for tbl:
// mrow[a] is the flat G_MAX index of occ[a]'s centre, pmi[i] that of
// point i's cell. One div/mod per occupied cell replaces SquaredTable.At's
// per-pair translation; with it the table-driven loops read tbl.v rows
// directly — the same elements At would return, so every similarity keeps
// its exact bits — without materialising an occupied-cell copy first.
// Only meaningful when tableDriven(tbl) holds.
func (g *Squared) maximalIdx(tbl *SquaredTable) (mrow, pmi []int32) {
	if g.mrow != nil && g.mtbl == tbl {
		return g.mrow, g.pmi
	}
	off := (tbl.maxSide - g.side) / 2
	mrow = make([]int32, len(g.occ))
	for a, c := range g.occ {
		ci := int(c)
		mrow[a] = int32((ci/g.side+off)*tbl.maxSide + ci%g.side + off)
	}
	pmi = make([]int32, len(g.cellOf))
	for i, a := range g.occIdx {
		pmi[i] = mrow[a]
	}
	g.mrow, g.pmi, g.mtbl = mrow, pmi, tbl
	return mrow, pmi
}

// cellScores returns the dense occupied-cell similarity table for the
// fallback paths — no precomputed table, or a grid wider than the table
// covers: entry a*len(occ)+b is sS between the centres of occ[a] and
// occ[b] (diagonal 1), computed by Ptolemy on unit-scale centres. Built
// once per grid and cached so PSS and the fills share one build. The
// table-driven paths never call this: they gather from tbl.v through
// maximalIdx instead of densifying a copy.
func (g *Squared) cellScores() []float64 {
	if g.cs != nil {
		return g.cs
	}
	ns := len(g.occ)
	cs := make([]float64, ns*ns)
	for a := 0; a < ns; a++ {
		cs[a*ns+a] = 1
		for b := a + 1; b < ns; b++ {
			s := unitSS(int(g.occ[a]), int(g.occ[b]), g.side)
			cs[a*ns+b] = s
			cs[b*ns+a] = s
		}
	}
	g.cs = cs
	return cs
}

// PSS computes the approximate pSS(p) score for every assigned point
// (Step 3 of Algorithm 2, Eq. 18), using tbl for precomputed cell-centre
// similarities; a nil tbl computes them on the fly.
func (g *Squared) PSS(tbl *SquaredTable) []float64 {
	ns := len(g.occ)
	// Aggregate per occupied cell in the same (a ≤ b) order as the
	// per-pair implementation so the sums stay bit-identical.
	acc := make([]float64, ns)
	if g.tableDriven(tbl) {
		mrow, _ := g.maximalIdx(tbl)
		mc := tbl.maxSide * tbl.maxSide
		for a := 0; a < ns; a++ {
			ca := float64(g.counts[g.occ[a]])
			acc[a] += ca // s = 1 on the diagonal
			trow := tbl.v[int(mrow[a])*mc : int(mrow[a])*mc+mc]
			for b := a + 1; b < ns; b++ {
				s := trow[mrow[b]]
				acc[a] += float64(g.counts[g.occ[b]]) * s
				acc[b] += ca * s
			}
		}
	} else {
		cs := g.cellScores()
		for a := 0; a < ns; a++ {
			ca := float64(g.counts[g.occ[a]])
			acc[a] += ca // s = 1 on the diagonal
			for b := a + 1; b < ns; b++ {
				s := cs[a*ns+b]
				acc[a] += float64(g.counts[g.occ[b]]) * s
				acc[b] += ca * s
			}
		}
	}
	out := make([]float64, len(g.cellOf))
	for i, a := range g.occIdx {
		out[i] = acc[a] - 1 // disregard the place's comparison to itself
	}
	return out
}

// ApproxAllPairs returns the approximate pairwise sS matrix in which each
// point is replaced by its cell centre. This is what the optimised greedy
// pipeline uses for the pairwise sF scores: with the occupied-cell table
// in hand the n²/2 fill is one small-table load and one store per pair.
func (g *Squared) ApproxAllPairs(tbl *SquaredTable) *pairs.Matrix {
	m, _ := g.ApproxAllPairsCtx(context.Background(), tbl)
	return m
}

// ApproxAllPairsCtx is ApproxAllPairs with cancellation checkpoints on
// the row loop; on cancellation the partial matrix is discarded and
// ctx.Err() returned.
func (g *Squared) ApproxAllPairsCtx(ctx context.Context, tbl *SquaredTable) (*pairs.Matrix, error) {
	n := len(g.cellOf)
	m := pairs.New(n)
	if g.tableDriven(tbl) {
		// Gather each matrix row straight out of the maximal table's row
		// for the point's cell: one translated index per point (pmi), one
		// load and one store per pair, and no O(occupied²) densified copy
		// to build or allocate first.
		_, pmi := g.maximalIdx(tbl)
		mc := tbl.maxSide * tbl.maxSide
		for i := 0; i < n; i++ {
			if i%ctxCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			trow := tbl.v[int(pmi[i])*mc : int(pmi[i])*mc+mc]
			row := m.Row(i)
			for t, mj := range pmi[i+1:] {
				row[t] = trow[mj]
			}
		}
		return m, nil
	}
	ns := len(g.occ)
	cs := g.cellScores()
	for i := 0; i < n; i++ {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		crow := cs[int(g.occIdx[i])*ns : int(g.occIdx[i])*ns+ns]
		row := m.Row(i)
		for t, oj := range g.occIdx[i+1:] {
			row[t] = crow[oj]
		}
	}
	return m, nil
}

// ApproxAllPairsParallelCtx is ApproxAllPairsCtx with the row fill fanned
// out over worker goroutines in row strides; each slot is written exactly
// once, so the shared matrix needs no locking, and results are identical
// to the sequential fill. Small inputs fall back to the sequential
// variant. Neither path records a telemetry span — the squared-grid pSS
// stage is spanned by the caller at the stage boundary, so the fallback
// cannot double-count the stage.
func (g *Squared) ApproxAllPairsParallelCtx(ctx context.Context, tbl *SquaredTable, workers int) (*pairs.Matrix, error) {
	n := len(g.cellOf)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 64 {
		return g.ApproxAllPairsCtx(ctx, tbl)
	}
	// Row sources are built before the fan-out; workers only read them.
	var rowOf func(i int) []float64
	if g.tableDriven(tbl) {
		_, pmi := g.maximalIdx(tbl)
		mc := tbl.maxSide * tbl.maxSide
		rowOf = func(i int) []float64 {
			return tbl.v[int(pmi[i])*mc : int(pmi[i])*mc+mc]
		}
	} else {
		ns := len(g.occ)
		cs := g.cellScores()
		rowOf = func(i int) []float64 {
			return cs[int(g.occIdx[i])*ns : int(g.occIdx[i])*ns+ns]
		}
	}
	idx := g.occIdx
	if g.tableDriven(tbl) {
		idx = g.pmi
	}
	m := pairs.New(n)
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				crow := rowOf(i)
				row := m.Row(i)
				for t, oj := range idx[i+1:] {
					row[t] = crow[oj]
				}
			}
		}(w)
	}
	wg.Wait()
	if cancelled.Load() {
		return nil, ctx.Err()
	}
	return m, nil
}

// unitSS computes sS between the unit-scale centres of two cells of a grid
// with the given side, w.r.t. the grid centre (Theorem 7.1 guarantees this
// equals the true-scale value).
func unitSS(ci, cj, side int) float64 {
	return geo.PtolemySimilarity(geo.Pt(0, 0), unitCenter(ci, side), unitCenter(cj, side))
}

// SquaredTable precomputes sS between the cell centres of a maximal
// squared grid G_MAX. Because cell-centre similarity depends only on the
// cells' positions relative to the grid centre measured in whole cells
// (Theorem 7.1), one table serves every query location, grid size G_z, and
// any grid with side ≤ MaxSide (an even-sided grid is a centred sub-grid
// of G_MAX).
type SquaredTable struct {
	maxSide int
	v       []float64 // v[ci*cells + cj] for the maximal grid
}

// NewSquaredTable precomputes the table for grids up to maxSide cells per
// row. maxSide is rounded up to an even number.
func NewSquaredTable(maxSide int) *SquaredTable {
	if maxSide < 2 {
		maxSide = 2
	}
	if maxSide%2 == 1 {
		maxSide++
	}
	cells := maxSide * maxSide
	t := &SquaredTable{maxSide: maxSide, v: make([]float64, cells*cells)}
	centers := make([]geo.Point, cells)
	for i := range centers {
		centers[i] = unitCenter(i, maxSide)
	}
	origin := geo.Pt(0, 0)
	for i := 0; i < cells; i++ {
		t.v[i*cells+i] = 1
		for j := i + 1; j < cells; j++ {
			s := geo.PtolemySimilarity(origin, centers[i], centers[j])
			t.v[i*cells+j] = s
			t.v[j*cells+i] = s
		}
	}
	return t
}

// MaxSide returns the largest grid side the table covers.
func (t *SquaredTable) MaxSide() int { return t.maxSide }

// Cells returns |G_MAX| = MaxSide², the number of cells of the maximal
// grid the table was built for.
func (t *SquaredTable) Cells() int { return t.maxSide * t.maxSide }

// Bytes returns the memory footprint of the precomputed matrix, for
// capacity planning and stats endpoints (the table is |G_MAX|² float64s).
func (t *SquaredTable) Bytes() int { return len(t.v) * 8 }

// At returns the precomputed sS between the centres of cells ci and cj of
// a grid with the given (even) side ≤ MaxSide; larger grids fall back to
// direct computation.
func (t *SquaredTable) At(side, ci, cj int) float64 {
	if side > t.maxSide {
		return unitSS(ci, cj, side)
	}
	off := (t.maxSide - side) / 2
	mi := (ci/side+off)*t.maxSide + ci%side + off
	mj := (cj/side+off)*t.maxSide + cj%side + off
	return t.v[mi*t.maxSide*t.maxSide+mj]
}

// squaredCrossoverPlaces is the instance size above which the squared-grid
// approximation reliably beats the exact all-pairs baseline on this
// implementation (measured: squared wins from ~64 places, is a wash around
// 128 when |G| ≈ K keeps occupancy high, and wins 1.3–2x beyond; exact
// wins below 64 where grid construction dominates). Chosen conservatively
// so an estimated downshift never makes a query slower.
const squaredCrossoverPlaces = 128

// SquaredLikelyFaster estimates whether the squared-grid approximation
// (NewSquared + PSS + ApproxAllPairs at |G| ≈ K) is faster than the exact
// all-pairs baseline for an instance of n places. Degradation paths use it
// to decide whether an exact→grid downshift actually buys latency: the
// grid's per-pair work is a table load while the exact path pays two
// square roots, but below the crossover the grid's fixed costs (cell
// assignment and the occupied-cell table) outweigh the saving.
func SquaredLikelyFaster(n int) bool { return n >= squaredCrossoverPlaces }

func clampCell(c, side int) int {
	if c < 0 {
		return 0
	}
	if c >= side {
		return side - 1
	}
	return c
}

func sortInt32(s []int32) {
	// Insertion sort: occupied-cell lists are short and nearly sorted
	// (points are appended in first-touch order).
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
