// Package grid implements the spatial-proportionality computation of
// Section 7 of the paper: the exact (baseline) all-pairs Ptolemy similarity,
// and the squared- and radial-grid approximations of Algorithm 2 with their
// precomputed similarity tables (valid for every query location and grid
// size by the scale-free property of Theorem 7.1).
package grid

import (
	"context"

	"repro/internal/geo"
	"repro/internal/pairs"
	"repro/internal/telemetry"
)

// ctxCheckStride is the number of outer-loop rows between context polls in
// the cancellable all-pairs loops: cancellation is observed within O(K)
// pair computations while the poll cost stays negligible.
const ctxCheckStride = 32

// AllPairsSpatial computes the exact Ptolemy spatial similarity
// sS(p_i, p_j) w.r.t. q for every pair of points — the baseline algorithm,
// costing ~20 arithmetic operations per pair.
func AllPairsSpatial(q geo.Point, pts []geo.Point) *pairs.Matrix {
	m, _ := AllPairsSpatialCtx(context.Background(), q, pts)
	return m
}

// AllPairsSpatialCtx is AllPairsSpatial with cancellation checkpoints on
// the outer row loop; on cancellation the partial matrix is discarded and
// ctx.Err() returned.
func AllPairsSpatialCtx(ctx context.Context, q geo.Point, pts []geo.Point) (*pairs.Matrix, error) {
	defer telemetry.StartSpan(ctx, telemetry.StagePSS)()
	n := len(pts)
	m := pairs.New(n)
	// Hoist the per-point distances to q: the baseline recomputes them per
	// pair, but sharing them is the natural implementation in Go and only
	// strengthens the baseline we compare the grids against.
	dq := make([]float64, n)
	for i, p := range pts {
		dq[i] = p.Dist(q)
	}
	for i := 0; i < n; i++ {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for j := i + 1; j < n; j++ {
			den := dq[i] + dq[j]
			if den == 0 {
				m.Set(i, j, 1) // both points coincide with q
				continue
			}
			d := pts[i].Dist(pts[j]) / den
			if d > 1 {
				d = 1
			}
			m.Set(i, j, 1-d)
		}
	}
	return m, nil
}

// PSSBaseline returns the exact pSS(p_i) vector (Eq. 6) and the pairwise
// cache it was derived from.
func PSSBaseline(q geo.Point, pts []geo.Point) ([]float64, *pairs.Matrix) {
	m := AllPairsSpatial(q, pts)
	return m.RowSums(), m
}

// PSSBaselineCtx is PSSBaseline with cancellation checkpoints.
func PSSBaselineCtx(ctx context.Context, q geo.Point, pts []geo.Point) ([]float64, *pairs.Matrix, error) {
	m, err := AllPairsSpatialCtx(ctx, q, pts)
	if err != nil {
		return nil, nil, err
	}
	return m.RowSums(), m, nil
}

// RelativeError returns |Σ approx − Σ exact| / Σ exact, the relative
// approximation error of Σ_{p∈S} pSS(p) reported in Figure 9. It returns 0
// when the exact sum is 0.
func RelativeError(approx, exact []float64) float64 {
	var sa, se float64
	for _, v := range approx {
		sa += v
	}
	for _, v := range exact {
		se += v
	}
	if se == 0 {
		return 0
	}
	d := sa - se
	if d < 0 {
		d = -d
	}
	return d / se
}
