package grid

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func uniformPoints(rng *rand.Rand, q geo.Point, n int, radius float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(q.X+(rng.Float64()*2-1)*radius, q.Y+(rng.Float64()*2-1)*radius)
	}
	return pts
}

func gaussianPoints(rng *rand.Rand, q geo.Point, n int, sigma float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(q.X+rng.NormFloat64()*sigma, q.Y+rng.NormFloat64()*sigma)
	}
	return pts
}

func TestAllPairsSpatialMatchesGeo(t *testing.T) {
	q := geo.Pt(0.3, -0.7)
	rng := rand.New(rand.NewSource(1))
	pts := uniformPoints(rng, q, 20, 5)
	m := AllPairsSpatial(q, pts)
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			want := geo.PtolemySimilarity(q, pts[i], pts[j])
			if got := m.At(i, j); !almostEqual(got, want, 1e-12) {
				t.Fatalf("sS(%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestAllPairsSpatialDegenerate(t *testing.T) {
	q := geo.Pt(1, 1)
	pts := []geo.Point{q, q, geo.Pt(2, 1)}
	m := AllPairsSpatial(q, pts)
	if got := m.At(0, 1); got != 1 {
		t.Errorf("sS of two points at q = %g, want 1", got)
	}
	if got := m.At(0, 2); got != 0 {
		t.Errorf("sS(q, other) = %g, want 0 (dS = 1 when one point is at q)", got)
	}
}

func TestPSSBaseline(t *testing.T) {
	q := geo.Pt(0, 0)
	pts := []geo.Point{geo.Pt(1, 0), geo.Pt(-1, 0), geo.Pt(0, 1)}
	pss, m := PSSBaseline(q, pts)
	if m.N() != 3 {
		t.Fatal("pair cache wrong size")
	}
	// sS(p0,p1) = 0 (opposite), sS(p0,p2) = sS(p1,p2) = 1 − √2/2.
	want0 := 0 + (1 - math.Sqrt2/2)
	if !almostEqual(pss[0], want0, 1e-12) {
		t.Errorf("pSS(p0) = %g, want %g", pss[0], want0)
	}
	if !almostEqual(pss[2], 2*(1-math.Sqrt2/2), 1e-12) {
		t.Errorf("pSS(p2) = %g", pss[2])
	}
}

func TestSideForCells(t *testing.T) {
	tests := []struct{ cells, want int }{
		{36, 6}, {64, 8}, {100, 10}, {144, 12}, {196, 14},
		{1, 2}, {0, 2}, {-5, 2}, {37, 8}, {101, 12},
	}
	for _, tc := range tests {
		if got := SideForCells(tc.cells); got != tc.want {
			t.Errorf("SideForCells(%d) = %d, want %d", tc.cells, got, tc.want)
		}
	}
}

func TestRingsForCells(t *testing.T) {
	tests := []struct{ cells, want int }{
		{100, 5}, {36, 3}, {64, 4}, {144, 6}, {196, 7}, {4, 1}, {1, 1}, {0, 1},
	}
	for _, tc := range tests {
		if got := RingsForCells(tc.cells); got != tc.want {
			t.Errorf("RingsForCells(%d) = %d, want %d", tc.cells, got, tc.want)
		}
	}
}

// TestFigure6GoldenValue checks the paper's worked example: in Figure 6,
// sS(cc_{−1,1}, cc_{−1,−1}) = 1 − 1/√2, independent of the cell size.
func TestFigure6GoldenValue(t *testing.T) {
	// In a 2×2 unit grid centred at the origin, cell (0, 1) has centre
	// (−0.5, +0.5) (the paper's cc_{−1,1}) and cell (0, 0) has centre
	// (−0.5, −0.5) (the paper's cc_{−1,−1}).
	want := 1 - 1/math.Sqrt2
	if got := unitSS(1*2+0, 0, 2); !almostEqual(got, want, 1e-12) {
		t.Errorf("sS(cc_{-1,1}, cc_{-1,-1}) = %g, want %g", got, want)
	}
	// And via the precomputed table, for several grid sizes: the same two
	// cells adjacent to the centre give the same value (Theorem 7.1).
	tbl := NewSquaredTable(14)
	for _, side := range []int{2, 6, 10, 14} {
		h := side / 2
		ci := h*side + (h - 1)     // one left, one up of centre
		cj := (h-1)*side + (h - 1) // one left, one down
		if got := tbl.At(side, ci, cj); !almostEqual(got, want, 1e-12) {
			t.Errorf("side %d: table sS = %g, want %g", side, got, want)
		}
	}
}

func TestSquaredAssignment(t *testing.T) {
	q := geo.Pt(0, 0)
	pts := []geo.Point{
		geo.Pt(1, 1), geo.Pt(-1, -1), geo.Pt(1, -1), geo.Pt(-1, 1),
		geo.Pt(2, 0), // farthest: fp = 2, so G_z = 4
	}
	g, err := NewSquared(q, pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Side() != 2 || g.Cells() != 4 {
		t.Fatalf("side = %d", g.Side())
	}
	// Quadrant checks: cell 0 = SW, 1 = SE, 2 = NW, 3 = NE.
	if c := g.CellOf(geo.Pt(1, 1)); c != 3 {
		t.Errorf("NE point in cell %d", c)
	}
	if c := g.CellOf(geo.Pt(-1, -1)); c != 0 {
		t.Errorf("SW point in cell %d", c)
	}
	// The farthest point sits exactly on the grid boundary and on the
	// horizontal centre line; it must be clamped into an eastern cell.
	if c := g.CellOf(geo.Pt(2, 0)); c != 1 && c != 3 {
		t.Errorf("boundary point in cell %d, want 1 or 3", c)
	}
	if g.OccupiedCells() != 4 {
		t.Errorf("occupied = %d, want 4", g.OccupiedCells())
	}
}

func TestSquaredCellCenterRoundTrip(t *testing.T) {
	q := geo.Pt(10, -3)
	rng := rand.New(rand.NewSource(5))
	pts := uniformPoints(rng, q, 50, 7)
	g, err := NewSquared(q, pts, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Each cell centre must map back to its own cell.
	for idx := 0; idx < g.Cells(); idx++ {
		if got := g.CellOf(g.CellCenter(idx)); got != idx {
			t.Fatalf("CellOf(CellCenter(%d)) = %d", idx, got)
		}
	}
}

func TestSquaredInvalidInputs(t *testing.T) {
	if _, err := NewSquared(geo.Pt(math.NaN(), 0), nil, 4); err == nil {
		t.Error("NaN query accepted")
	}
	if _, err := NewSquared(geo.Pt(0, 0), []geo.Point{geo.Pt(math.Inf(1), 0)}, 4); err == nil {
		t.Error("Inf point accepted")
	}
}

func TestSquaredDegenerateAllAtQuery(t *testing.T) {
	q := geo.Pt(2, 2)
	pts := []geo.Point{q, q, q, q}
	g, err := NewSquared(q, pts, 16)
	if err != nil {
		t.Fatal(err)
	}
	pss := g.PSS(nil)
	for i, v := range pss {
		if !almostEqual(v, 3, 1e-12) { // K−1 collocated places
			t.Errorf("pSS[%d] = %g, want 3", i, v)
		}
	}
}

func TestSquaredPSSAccuracy(t *testing.T) {
	q := geo.Pt(0.5, 0.5)
	rng := rand.New(rand.NewSource(9))
	pts := uniformPoints(rng, q, 200, 1)
	exact, _ := PSSBaseline(q, pts)
	tbl := NewSquaredTable(20)
	for _, cells := range []int{36, 100, 196, 400} {
		g, err := NewSquared(q, pts, cells)
		if err != nil {
			t.Fatal(err)
		}
		approx := g.PSS(tbl)
		if e := RelativeError(approx, exact); e > 0.12 {
			t.Errorf("|G|=%d: relative error %g too large", cells, e)
		}
	}
	// The paper: |G| ≈ K gives ≤ ~5% error in practice.
	g, _ := NewSquared(q, pts, 196)
	if e := RelativeError(g.PSS(tbl), exact); e > 0.05 {
		t.Errorf("|G|≈K relative error = %g, want ≤ 0.05", e)
	}
}

func TestSquaredPSSTableMatchesOnTheFly(t *testing.T) {
	q := geo.Pt(-4, 4)
	rng := rand.New(rand.NewSource(13))
	pts := gaussianPoints(rng, q, 120, 2)
	g, err := NewSquared(q, pts, 100)
	if err != nil {
		t.Fatal(err)
	}
	withTbl := g.PSS(NewSquaredTable(10))
	without := g.PSS(nil)
	for i := range withTbl {
		if !almostEqual(withTbl[i], without[i], 1e-9) {
			t.Fatalf("pSS[%d]: table %g vs direct %g", i, withTbl[i], without[i])
		}
	}
}

func TestSquaredTableSubGrid(t *testing.T) {
	tbl := NewSquaredTable(12)
	if tbl.MaxSide() != 12 {
		t.Fatalf("MaxSide = %d", tbl.MaxSide())
	}
	for _, side := range []int{2, 4, 6, 8, 10, 12} {
		cells := side * side
		for trial := 0; trial < 50; trial++ {
			ci, cj := trial%cells, (trial*7+3)%cells
			want := unitSS(ci, cj, side)
			if ci == cj {
				want = 1
			}
			if got := tbl.At(side, ci, cj); !almostEqual(got, want, 1e-12) {
				t.Fatalf("side %d At(%d,%d) = %g, want %g", side, ci, cj, got, want)
			}
		}
	}
	// Sides beyond MaxSide fall back to direct computation.
	if got, want := tbl.At(20, 5, 7), unitSS(5, 7, 20); !almostEqual(got, want, 1e-12) {
		t.Errorf("fallback = %g, want %g", got, want)
	}
}

func TestSquaredTableOddSizeRoundsUp(t *testing.T) {
	tbl := NewSquaredTable(7)
	if tbl.MaxSide() != 8 {
		t.Errorf("MaxSide = %d, want 8", tbl.MaxSide())
	}
	tbl = NewSquaredTable(0)
	if tbl.MaxSide() != 2 {
		t.Errorf("MaxSide = %d, want 2", tbl.MaxSide())
	}
}

func TestApproxAllPairsConsistentWithPSS(t *testing.T) {
	// The row sums of the approximate pair matrix must equal the grid PSS:
	// both replace points by cell centres.
	q := geo.Pt(0, 0)
	rng := rand.New(rand.NewSource(21))
	pts := uniformPoints(rng, q, 80, 3)
	g, err := NewSquared(q, pts, 64)
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewSquaredTable(8)
	sums := g.ApproxAllPairs(tbl).RowSums()
	pss := g.PSS(tbl)
	for i := range sums {
		if !almostEqual(sums[i], pss[i], 1e-9) {
			t.Fatalf("point %d: pair-matrix row sum %g vs PSS %g", i, sums[i], pss[i])
		}
	}
}

func TestRadialAssignment(t *testing.T) {
	q := geo.Pt(0, 0)
	pts := []geo.Point{
		geo.Pt(0.5, 0.01),  // ring 0, slice 0 (just above +x axis)
		geo.Pt(-1.5, 0.01), // outer ring, opposite side
		geo.Pt(0, 2),       // farthest: fp = 2
	}
	r, err := NewRadial(q, pts, 4) // r_c = 1? RingsForCells(4) = 1 → 4 sectors
	if err != nil {
		t.Fatal(err)
	}
	if r.Rings() != 1 || r.Sectors() != 4 {
		t.Fatalf("rings = %d sectors = %d", r.Rings(), r.Sectors())
	}
	if got := r.SectorOf(geo.Pt(0.5, 0.01)); got != 0 {
		t.Errorf("sector of +x point = %d", got)
	}
	// Farthest point lies on the outermost circle; clamped into last ring.
	if got := r.SectorOf(geo.Pt(0, 2)); got >= r.Sectors() {
		t.Errorf("boundary point out of range: %d", got)
	}
}

func TestRadialRepresentativeRoundTrip(t *testing.T) {
	q := geo.Pt(3, 3)
	rng := rand.New(rand.NewSource(17))
	pts := uniformPoints(rng, q, 60, 4)
	r, err := NewRadial(q, pts, 100)
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < r.Sectors(); idx++ {
		if got := r.SectorOf(r.Representative(idx)); got != idx {
			t.Fatalf("SectorOf(Representative(%d)) = %d", idx, got)
		}
	}
}

func TestRadialDegenerateAllAtQuery(t *testing.T) {
	q := geo.Pt(1, 1)
	pts := []geo.Point{q, q, q}
	r, err := NewRadial(q, pts, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range r.PSS(nil) {
		if !almostEqual(v, 2, 1e-12) {
			t.Errorf("pSS[%d] = %g, want 2", i, v)
		}
	}
}

func TestRadialPSSAccuracy(t *testing.T) {
	q := geo.Pt(0, 0)
	rng := rand.New(rand.NewSource(29))
	pts := gaussianPoints(rng, q, 200, 0.5)
	exact, _ := PSSBaseline(q, pts)
	tbl := NewRadialTable()
	for _, cells := range []int{36, 100, 196} {
		r, err := NewRadial(q, pts, cells)
		if err != nil {
			t.Fatal(err)
		}
		if e := RelativeError(r.PSS(tbl), exact); e > 0.15 {
			t.Errorf("|R|=%d: relative error %g too large", cells, e)
		}
	}
}

func TestRadialPSSTableMatchesOnTheFly(t *testing.T) {
	q := geo.Pt(0, 0)
	rng := rand.New(rand.NewSource(31))
	pts := uniformPoints(rng, q, 90, 2)
	r, err := NewRadial(q, pts, 100)
	if err != nil {
		t.Fatal(err)
	}
	withTbl := r.PSS(NewRadialTable())
	without := r.PSS(nil)
	for i := range withTbl {
		if !almostEqual(withTbl[i], without[i], 1e-9) {
			t.Fatalf("pSS[%d]: table %g vs direct %g", i, withTbl[i], without[i])
		}
	}
}

func TestRadialApproxAllPairsConsistent(t *testing.T) {
	q := geo.Pt(0, 0)
	rng := rand.New(rand.NewSource(37))
	pts := uniformPoints(rng, q, 70, 2)
	r, err := NewRadial(q, pts, 64)
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewRadialTable()
	sums := r.ApproxAllPairs(tbl).RowSums()
	pss := r.PSS(tbl)
	for i := range sums {
		if !almostEqual(sums[i], pss[i], 1e-9) {
			t.Fatalf("point %d: %g vs %g", i, sums[i], pss[i])
		}
	}
}

func TestRadialInvalidInputs(t *testing.T) {
	if _, err := NewRadial(geo.Pt(0, math.NaN()), nil, 4); err == nil {
		t.Error("NaN query accepted")
	}
	if _, err := NewRadial(geo.Pt(0, 0), []geo.Point{geo.Pt(0, math.NaN())}, 4); err == nil {
		t.Error("NaN point accepted")
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError([]float64{1, 1}, []float64{1, 1}); got != 0 {
		t.Errorf("identical vectors: %g", got)
	}
	if got := RelativeError([]float64{3}, []float64{2}); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("RelativeError = %g, want 0.5", got)
	}
	if got := RelativeError([]float64{1}, []float64{2}); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("RelativeError = %g, want 0.5 (symmetric under sign)", got)
	}
	if got := RelativeError([]float64{5}, []float64{0}); got != 0 {
		t.Errorf("zero exact sum: %g", got)
	}
}

// TestErrorShrinksWithFinerGrid verifies the Figure 9(b) trend: increasing
// |G| reduces the relative approximation error (monotone on average; we
// check coarse vs fine).
func TestErrorShrinksWithFinerGrid(t *testing.T) {
	q := geo.Pt(0, 0)
	rng := rand.New(rand.NewSource(43))
	var coarse, fine float64
	for trial := 0; trial < 10; trial++ {
		pts := uniformPoints(rng, q, 150, 1)
		exact, _ := PSSBaseline(q, pts)
		g1, _ := NewSquared(q, pts, 16)
		g2, _ := NewSquared(q, pts, 400)
		coarse += RelativeError(g1.PSS(nil), exact)
		fine += RelativeError(g2.PSS(nil), exact)
	}
	if fine >= coarse {
		t.Errorf("finer grid not more accurate: coarse %g vs fine %g", coarse/10, fine/10)
	}
}

func BenchmarkPSSBaselineK100(b *testing.B)  { benchPSSBaseline(b, 100) }
func BenchmarkPSSBaselineK1000(b *testing.B) { benchPSSBaseline(b, 1000) }

func benchPSSBaseline(b *testing.B, k int) {
	q := geo.Pt(0, 0)
	rng := rand.New(rand.NewSource(1))
	pts := uniformPoints(rng, q, k, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PSSBaseline(q, pts)
	}
}

func BenchmarkPSSSquaredK100(b *testing.B)  { benchPSSSquared(b, 100) }
func BenchmarkPSSSquaredK1000(b *testing.B) { benchPSSSquared(b, 1000) }

func benchPSSSquared(b *testing.B, k int) {
	q := geo.Pt(0, 0)
	rng := rand.New(rand.NewSource(1))
	pts := uniformPoints(rng, q, k, 1)
	tbl := NewSquaredTable(SideForCells(k))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := NewSquared(q, pts, k)
		if err != nil {
			b.Fatal(err)
		}
		g.PSS(tbl)
	}
}
