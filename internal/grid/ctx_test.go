package grid

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func ctxTestPoints(n int, seed int64) []geo.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	return pts
}

func TestAllPairsSpatialCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := geo.Pt(50, 50)
	pts := ctxTestPoints(200, 1)
	if _, err := AllPairsSpatialCtx(ctx, q, pts); !errors.Is(err, context.Canceled) {
		t.Errorf("sequential: err = %v, want context.Canceled", err)
	}
	if _, err := AllPairsSpatialParallelCtx(ctx, q, pts, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("parallel: err = %v, want context.Canceled", err)
	}
	if _, _, err := PSSBaselineCtx(ctx, q, pts); !errors.Is(err, context.Canceled) {
		t.Errorf("pss: err = %v, want context.Canceled", err)
	}
}

func TestAllPairsSpatialCtxMatchesSequential(t *testing.T) {
	q := geo.Pt(50, 50)
	pts := ctxTestPoints(150, 2)
	want := AllPairsSpatial(q, pts)
	got, err := AllPairsSpatialParallelCtx(context.Background(), q, pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("At(%d,%d) = %v, want %v", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

// TestParallelCancelMidFlight cancels while workers are running; the call
// must return an error (not a partial matrix) and leave no goroutine
// stuck — the deferred wait-group join would deadlock the test otherwise.
func TestParallelCancelMidFlight(t *testing.T) {
	q := geo.Pt(50, 50)
	pts := ctxTestPoints(2000, 3)
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	m, err := AllPairsSpatialParallelCtx(ctx, q, pts, 8)
	if err == nil {
		// The race is legal: workers may finish before the cancel lands.
		if m == nil {
			t.Fatal("nil matrix without error")
		}
		return
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if m != nil {
		t.Error("partial matrix returned alongside error")
	}
}
