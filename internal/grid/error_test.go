package grid

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func samplePts(n int, seed int64) []geo.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	return pts
}

// TestSampleApproxErrorExactMatrix pins the baseline: comparing the exact
// matrix against itself yields zero error.
func TestSampleApproxErrorExactMatrix(t *testing.T) {
	q := geo.Pt(50, 50)
	pts := samplePts(40, 1)
	exact := AllPairsSpatial(q, pts)
	es := SampleApproxError(q, pts, exact, 64)
	if es.Pairs == 0 {
		t.Fatal("no pairs sampled")
	}
	if es.MeanAbs != 0 || es.MaxAbs != 0 {
		t.Errorf("exact matrix vs itself: mean %v max %v, want 0", es.MeanAbs, es.MaxAbs)
	}
}

// TestSampleApproxErrorGrid checks that the squared-grid approximation
// reports a small but non-zero sampled error, and that sampling is
// deterministic across calls.
func TestSampleApproxErrorGrid(t *testing.T) {
	q := geo.Pt(50, 50)
	pts := samplePts(120, 2)
	g, err := NewSquared(q, pts, len(pts))
	if err != nil {
		t.Fatal(err)
	}
	approx := g.ApproxAllPairs(nil)

	es := SampleApproxError(q, pts, approx, 64)
	if es.Pairs != 64 {
		t.Errorf("Pairs = %d, want 64", es.Pairs)
	}
	if es.MeanAbs <= 0 {
		t.Errorf("MeanAbs = %v, want > 0 for a grid approximation", es.MeanAbs)
	}
	if es.MaxAbs < es.MeanAbs {
		t.Errorf("MaxAbs %v < MeanAbs %v", es.MaxAbs, es.MeanAbs)
	}
	// |G| ≈ K keeps the error small (the paper reports ≤5%); allow slack.
	if es.MeanAbs > 0.2 {
		t.Errorf("MeanAbs = %v, implausibly large for |G| ≈ K", es.MeanAbs)
	}
	if again := SampleApproxError(q, pts, approx, 64); again != es {
		t.Errorf("sampling not deterministic: %+v vs %+v", es, again)
	}
}

// TestSampleApproxErrorExhaustiveSmall: instances with ≤ samples pairs are
// compared exhaustively.
func TestSampleApproxErrorExhaustive(t *testing.T) {
	q := geo.Pt(50, 50)
	pts := samplePts(8, 3) // 28 pairs < 64 samples
	g, err := NewSquared(q, pts, len(pts))
	if err != nil {
		t.Fatal(err)
	}
	es := SampleApproxError(q, pts, g.ApproxAllPairs(nil), 64)
	if es.Pairs != 28 {
		t.Errorf("Pairs = %d, want exhaustive 28", es.Pairs)
	}
}

func TestSampleApproxErrorDegenerate(t *testing.T) {
	q := geo.Pt(0, 0)
	if es := SampleApproxError(q, nil, nil, 64); es.Pairs != 0 {
		t.Errorf("empty input sampled %d pairs", es.Pairs)
	}
	pts := samplePts(10, 4)
	if es := SampleApproxError(q, pts, nil, 64); es.Pairs != 0 {
		t.Errorf("nil matrix sampled %d pairs", es.Pairs)
	}
}
