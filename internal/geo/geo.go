// Package geo provides the planar geometry primitives used throughout the
// proportional spatial keyword search library: points, Euclidean distances,
// bounding rectangles, and Ptolemy's spatial diversity/similarity measure
// (Cai et al., VLDB J. 2020; Eq. 1 of the SIGMOD'21 paper).
//
// All coordinates are float64 and all measures are pure functions, so the
// package is safe for concurrent use.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist returns the Euclidean distance between p and o.
func (p Point) Dist(o Point) float64 {
	dx := p.X - o.X
	dy := p.Y - o.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// SqDist returns the squared Euclidean distance between p and o. It avoids
// the square root and is the right primitive for comparisons.
func (p Point) SqDist(o Point) float64 {
	dx := p.X - o.X
	dy := p.Y - o.Y
	return dx*dx + dy*dy
}

// Add returns p translated by o.
func (p Point) Add(o Point) Point { return Point{p.X + o.X, p.Y + o.Y} }

// Sub returns the vector from o to p.
func (p Point) Sub(o Point) Point { return Point{p.X - o.X, p.Y - o.Y} }

// Scale returns p with both coordinates multiplied by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Angle returns the polar angle of the vector from q to p, in [0, 2π).
// The angle of the zero vector is 0.
func (p Point) Angle(q Point) float64 {
	a := math.Atan2(p.Y-q.Y, p.X-q.X)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Valid reports whether both coordinates are finite numbers.
func (p Point) Valid() bool {
	return !math.IsNaN(p.X) && !math.IsNaN(p.Y) &&
		!math.IsInf(p.X, 0) && !math.IsInf(p.Y, 0)
}

// PtolemyDiversity returns dS(pi, pj) w.r.t. the query location q (Eq. 1):
//
//	dS(pi, pj) = ||pi, pj|| / (||pi, q|| + ||pj, q||)
//
// The value is in [0, 1] by the triangle inequality; it is 1 when pi and pj
// are diametrically opposite w.r.t. q and 0 when they coincide. The
// degenerate case pi = pj = q (zero denominator) is defined as 0 diversity,
// matching the limit of two coincident points.
func PtolemyDiversity(q, pi, pj Point) float64 {
	den := pi.Dist(q) + pj.Dist(q)
	if den == 0 {
		return 0
	}
	d := pi.Dist(pj) / den
	// Guard against floating-point drift pushing the ratio above 1.
	if d > 1 {
		return 1
	}
	return d
}

// PtolemySimilarity returns sS(pi, pj) = 1 − dS(pi, pj) w.r.t. q.
func PtolemySimilarity(q, pi, pj Point) float64 {
	return 1 - PtolemyDiversity(q, pi, pj)
}

// Rect is an axis-aligned rectangle with Min ≤ Max in both dimensions.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanned by two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// RectOf returns the degenerate rectangle containing only p.
func RectOf(p Point) Rect { return Rect{Min: p, Max: p} }

// Contains reports whether p lies in r (boundaries included).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether o lies entirely within r.
func (r Rect) ContainsRect(o Rect) bool {
	return r.Contains(o.Min) && r.Contains(o.Max)
}

// Intersects reports whether r and o share any point.
func (r Rect) Intersects(o Rect) bool {
	return r.Min.X <= o.Max.X && o.Min.X <= r.Max.X &&
		r.Min.Y <= o.Max.Y && o.Min.Y <= r.Max.Y
}

// Union returns the smallest rectangle covering both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, o.Min.X), math.Min(r.Min.Y, o.Min.Y)},
		Max: Point{math.Max(r.Max.X, o.Max.X), math.Max(r.Max.Y, o.Max.Y)},
	}
}

// Extend grows r in place to cover o and returns the result.
func (r Rect) Extend(p Point) Rect {
	return r.Union(RectOf(p))
}

// Area returns the area of r.
func (r Rect) Area() float64 {
	return (r.Max.X - r.Min.X) * (r.Max.Y - r.Min.Y)
}

// Perimeter returns half the perimeter (the R*-tree "margin" measure).
func (r Rect) Perimeter() float64 {
	return (r.Max.X - r.Min.X) + (r.Max.Y - r.Min.Y)
}

// EnlargementArea returns the increase in area needed for r to cover o.
func (r Rect) EnlargementArea(o Rect) float64 {
	return r.Union(o).Area() - r.Area()
}

// Center returns the centroid of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// MinDist returns the minimum Euclidean distance from p to any point of r
// (zero if p is inside r). This is the classic R-tree MINDIST bound.
func (r Rect) MinDist(p Point) float64 {
	dx := axisDist(p.X, r.Min.X, r.Max.X)
	dy := axisDist(p.Y, r.Min.Y, r.Max.Y)
	return math.Sqrt(dx*dx + dy*dy)
}

// MaxDist returns the maximum Euclidean distance from p to any point of r.
func (r Rect) MaxDist(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.Min.X), math.Abs(p.X-r.Max.X))
	dy := math.Max(math.Abs(p.Y-r.Min.Y), math.Abs(p.Y-r.Max.Y))
	return math.Sqrt(dx*dx + dy*dy)
}

func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// BoundingRect returns the smallest rectangle covering all pts.
// It panics if pts is empty.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geo: BoundingRect of empty point set")
	}
	r := RectOf(pts[0])
	for _, p := range pts[1:] {
		r = r.Extend(p)
	}
	return r
}

// FarthestDist returns the largest distance from q to any point in pts
// (the paper's "fp̄", used to size grids). It returns 0 for an empty slice.
func FarthestDist(q Point, pts []Point) float64 {
	var maxSq float64
	for _, p := range pts {
		if d := q.SqDist(p); d > maxSq {
			maxSq = d
		}
	}
	return math.Sqrt(maxSq)
}
