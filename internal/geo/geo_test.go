package geo

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDist(t *testing.T) {
	tests := []struct {
		a, b Point
		want float64
	}{
		{Pt(0, 0), Pt(0, 0), 0},
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(-1, -1), Pt(2, 3), 5},
		{Pt(1, 1), Pt(1, 5), 4},
	}
	for _, tc := range tests {
		if got := tc.a.Dist(tc.b); !almostEqual(got, tc.want, eps) {
			t.Errorf("Dist(%v, %v) = %g, want %g", tc.a, tc.b, got, tc.want)
		}
		if got := tc.a.SqDist(tc.b); !almostEqual(got, tc.want*tc.want, eps) {
			t.Errorf("SqDist(%v, %v) = %g, want %g", tc.a, tc.b, got, tc.want*tc.want)
		}
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Pt(1, 2)
	if got := p.Add(Pt(3, -1)); got != Pt(4, 1) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(Pt(3, -1)); got != Pt(-2, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
}

func TestAngle(t *testing.T) {
	q := Pt(0, 0)
	tests := []struct {
		p    Point
		want float64
	}{
		{Pt(1, 0), 0},
		{Pt(0, 1), math.Pi / 2},
		{Pt(-1, 0), math.Pi},
		{Pt(0, -1), 3 * math.Pi / 2},
		{Pt(1, 1), math.Pi / 4},
	}
	for _, tc := range tests {
		if got := tc.p.Angle(q); !almostEqual(got, tc.want, eps) {
			t.Errorf("Angle(%v) = %g, want %g", tc.p, got, tc.want)
		}
	}
}

func TestAngleRange(t *testing.T) {
	f := func(px, py, qx, qy float64) bool {
		a := Pt(px, py).Angle(Pt(qx, qy))
		return a >= 0 && a < 2*math.Pi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointValid(t *testing.T) {
	if !Pt(1, 2).Valid() {
		t.Error("finite point reported invalid")
	}
	for _, p := range []Point{
		{math.NaN(), 0}, {0, math.NaN()},
		{math.Inf(1), 0}, {0, math.Inf(-1)},
	} {
		if p.Valid() {
			t.Errorf("point %v reported valid", p)
		}
	}
}

// TestPtolemyDiametricallyOpposite checks the paper's motivating property:
// diametrically opposite points w.r.t. q get maximum diversity 1.
func TestPtolemyDiametricallyOpposite(t *testing.T) {
	q := Pt(3, 7)
	pi := Pt(5, 7)
	pj := Pt(1, 7)
	if got := PtolemyDiversity(q, pi, pj); !almostEqual(got, 1, eps) {
		t.Errorf("dS(opposite) = %g, want 1", got)
	}
	if got := PtolemySimilarity(q, pi, pj); !almostEqual(got, 0, eps) {
		t.Errorf("sS(opposite) = %g, want 0", got)
	}
}

// TestPtolemySameDirection reproduces the Figure 2 intuition: a pair in the
// same direction w.r.t. q has lower diversity than an equally distant pair
// in opposite directions.
func TestPtolemySameDirection(t *testing.T) {
	q := Pt(0, 0)
	// Pair A: opposite directions, distance 2 apart.
	dA := PtolemyDiversity(q, Pt(-1, 0), Pt(1, 0))
	// Pair C: same direction (both north of q), also distance 2 apart.
	dC := PtolemyDiversity(q, Pt(0, 1), Pt(0, 3))
	// Pair B: same direction but further from each other than C.
	dB := PtolemyDiversity(q, Pt(0, 1), Pt(0, 6))
	if !(dA > dB && dB > dC) {
		t.Errorf("want dS(A) > dS(B) > dS(C), got %g, %g, %g", dA, dB, dC)
	}
	if !almostEqual(dA, 1, eps) {
		t.Errorf("dS(A) = %g, want 1", dA)
	}
}

func TestPtolemyCoincident(t *testing.T) {
	q := Pt(0, 0)
	if got := PtolemyDiversity(q, Pt(2, 2), Pt(2, 2)); got != 0 {
		t.Errorf("dS(coincident points) = %g, want 0", got)
	}
	// Degenerate: both points at the query location.
	if got := PtolemyDiversity(q, q, q); got != 0 {
		t.Errorf("dS(q, q) = %g, want 0", got)
	}
	if got := PtolemySimilarity(q, q, q); got != 1 {
		t.Errorf("sS(q, q) = %g, want 1", got)
	}
}

// Property: dS is always in [0, 1] and symmetric.
func TestPtolemyRangeAndSymmetry(t *testing.T) {
	f := func(qx, qy, ax, ay, bx, by int16) bool {
		q, a, b := Pt(float64(qx), float64(qy)), Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by))
		d1 := PtolemyDiversity(q, a, b)
		d2 := PtolemyDiversity(q, b, a)
		return d1 >= 0 && d1 <= 1 && almostEqual(d1, d2, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: dS satisfies the triangle inequality (needed by the Section 8
// approximation-bound analysis, which cites Cai et al. for this fact).
func TestPtolemyTriangleInequality(t *testing.T) {
	f := func(qx, qy, ux, uy, vx, vy, wx, wy int8) bool {
		q := Pt(float64(qx), float64(qy))
		u := Pt(float64(ux), float64(uy))
		v := Pt(float64(vx), float64(vy))
		w := Pt(float64(wx), float64(wy))
		duv := PtolemyDiversity(q, u, v)
		dvw := PtolemyDiversity(q, v, w)
		duw := PtolemyDiversity(q, u, w)
		return duv+dvw >= duw-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestPtolemyScaleFree verifies Theorem 7.1: scaling both points' offsets
// from q by any positive factor leaves sS unchanged.
func TestPtolemyScaleFree(t *testing.T) {
	f := func(qx, qy, ax, ay, bx, by int16, fraw uint16) bool {
		q, a, b := Pt(float64(qx), float64(qy)), Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by))
		factor := 0.001 + float64(fraw)/128 // positive, spans (0.001, ~512]
		a2 := q.Add(a.Sub(q).Scale(factor))
		b2 := q.Add(b.Sub(q).Scale(factor))
		s1 := PtolemySimilarity(q, a, b)
		s2 := PtolemySimilarity(q, a2, b2)
		return almostEqual(s1, s2, 1e-6)
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPtolemyScaleFreeTranslation: sS depends only on offsets from q, so
// translating the whole configuration leaves it unchanged.
func TestPtolemyScaleFreeTranslation(t *testing.T) {
	f := func(qx, qy, ax, ay, bx, by, tx, ty int16) bool {
		q, a, b := Pt(float64(qx), float64(qy)), Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by))
		tr := Pt(float64(tx), float64(ty))
		s1 := PtolemySimilarity(q, a, b)
		s2 := PtolemySimilarity(q.Add(tr), a.Add(tr), b.Add(tr))
		return almostEqual(s1, s2, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Pt(2, 3), Pt(0, 1))
	if r.Min != Pt(0, 1) || r.Max != Pt(2, 3) {
		t.Fatalf("NewRect normalised wrong: %+v", r)
	}
	if !r.Contains(Pt(1, 2)) || !r.Contains(Pt(0, 1)) || !r.Contains(Pt(2, 3)) {
		t.Error("Contains failed for interior/boundary points")
	}
	if r.Contains(Pt(3, 2)) || r.Contains(Pt(1, 0)) {
		t.Error("Contains accepted exterior point")
	}
	if got := r.Area(); !almostEqual(got, 4, eps) {
		t.Errorf("Area = %g, want 4", got)
	}
	if got := r.Perimeter(); !almostEqual(got, 4, eps) {
		t.Errorf("Perimeter (half) = %g, want 4", got)
	}
	if got := r.Center(); got != Pt(1, 2) {
		t.Errorf("Center = %v, want (1, 2)", got)
	}
}

func TestRectUnionIntersect(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(2, 2))
	b := NewRect(Pt(1, 1), Pt(3, 3))
	c := NewRect(Pt(5, 5), Pt(6, 6))
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping rects reported disjoint")
	}
	if a.Intersects(c) {
		t.Error("disjoint rects reported intersecting")
	}
	u := a.Union(b)
	if u.Min != Pt(0, 0) || u.Max != Pt(3, 3) {
		t.Errorf("Union = %+v", u)
	}
	if !u.ContainsRect(a) || !u.ContainsRect(b) {
		t.Error("union does not contain operands")
	}
	if got := a.EnlargementArea(c); !almostEqual(got, 32, eps) {
		t.Errorf("EnlargementArea = %g, want 32", got)
	}
}

func TestRectTouchingEdgesIntersect(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(1, 1))
	b := NewRect(Pt(1, 0), Pt(2, 1))
	if !a.Intersects(b) {
		t.Error("rects sharing an edge should intersect")
	}
}

func TestMinMaxDist(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(2, 2))
	tests := []struct {
		p        Point
		min, max float64
	}{
		{Pt(1, 1), 0, math.Sqrt2},       // inside
		{Pt(3, 1), 1, math.Sqrt(9 + 1)}, // right of rect; max dist to corner (0,0) or (0,2)
		{Pt(-1, -1), math.Sqrt2, 3 * math.Sqrt2},
	}
	for _, tc := range tests {
		if got := r.MinDist(tc.p); !almostEqual(got, tc.min, eps) {
			t.Errorf("MinDist(%v) = %g, want %g", tc.p, got, tc.min)
		}
		if got := r.MaxDist(tc.p); !almostEqual(got, tc.max, eps) {
			t.Errorf("MaxDist(%v) = %g, want %g", tc.p, got, tc.max)
		}
	}
}

// Property: MinDist ≤ dist to center ≤ MaxDist for any point.
func TestMinMaxDistBracket(t *testing.T) {
	f := func(ax, ay, bx, by, px, py int16) bool {
		r := NewRect(Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by)))
		p := Pt(float64(px), float64(py))
		d := p.Dist(r.Center())
		return r.MinDist(p) <= d+1e-9 && d <= r.MaxDist(p)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBoundingRect(t *testing.T) {
	pts := []Point{Pt(1, 5), Pt(-2, 0), Pt(4, 3)}
	r := BoundingRect(pts)
	if r.Min != Pt(-2, 0) || r.Max != Pt(4, 5) {
		t.Errorf("BoundingRect = %+v", r)
	}
	defer func() {
		if recover() == nil {
			t.Error("BoundingRect(empty) did not panic")
		}
	}()
	BoundingRect(nil)
}

func TestFarthestDist(t *testing.T) {
	q := Pt(0, 0)
	if got := FarthestDist(q, nil); got != 0 {
		t.Errorf("FarthestDist(empty) = %g, want 0", got)
	}
	pts := []Point{Pt(1, 0), Pt(0, -7), Pt(3, 4)}
	if got := FarthestDist(q, pts); !almostEqual(got, 7, eps) {
		t.Errorf("FarthestDist = %g, want 7", got)
	}
}

func BenchmarkPtolemySimilarity(b *testing.B) {
	q, p1, p2 := Pt(0.5, 0.5), Pt(0.25, 0.75), Pt(0.9, 0.1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += PtolemySimilarity(q, p1, p2)
	}
	_ = sink
}
