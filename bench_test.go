// Root-level benchmarks: one testing.B benchmark (or group) per figure of
// the paper's evaluation, exercising the exact operation the figure
// measures at the paper's default setting (K = 100, |p| = 100, |G| = 100,
// k = 10, λ = γ = 0.5). `go test -bench=. -benchmem` regenerates the
// numbers; cmd/experiments regenerates the full parameter sweeps.
package repro_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/textctx"
	"repro/internal/usereval"
)

// fixture is the shared benchmark workload: a DBpedia-like corpus, one
// query, and its retrieved set at the paper defaults.
type fixture struct {
	db     *dataset.Dataset
	query  dataset.Query
	places []core.Place // K = 1000, |p| = 100, sorted by rF
	sqTbl  *grid.SquaredTable
	radTbl *grid.RadialTable
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func getFixture(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		cfg := dataset.DBpediaLike(1)
		cfg.Places = 2000
		db, err := dataset.Generate(cfg)
		if err != nil {
			fixErr = err
			return
		}
		qs, err := db.GenQueries(1, 1000, 3)
		if err != nil {
			fixErr = err
			return
		}
		places, err := db.Retrieve(qs[0], 1000)
		if err != nil {
			fixErr = err
			return
		}
		fix = &fixture{
			db:     db,
			query:  qs[0],
			places: db.AdjustContextSizes(places, 100, 9),
			sqTbl:  grid.NewSquaredTable(grid.SideForCells(1000)),
			radTbl: grid.NewRadialTable(),
		}
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fix
}

func (f *fixture) topK(k int) []core.Place { return f.places[:k] }

func (f *fixture) sets(k int) []textctx.Set {
	out := make([]textctx.Set, k)
	for i := 0; i < k; i++ {
		out[i] = f.places[i].Context
	}
	return out
}

func (f *fixture) locs(k int) []geo.Point {
	out := make([]geo.Point, k)
	for i := 0; i < k; i++ {
		out[i] = f.places[i].Loc
	}
	return out
}

// ---- Figure 7: contextual proportionality (pCS for all of S) ----

func BenchmarkFig7aContextualBaselineK100(b *testing.B) { benchCtx(b, textctx.BaselineEngine{}, 100) }
func BenchmarkFig7aContextualMSJHK100(b *testing.B)     { benchCtx(b, textctx.MSJHEngine{}, 100) }
func BenchmarkFig7aContextualBaselineK1000(b *testing.B) {
	benchCtx(b, textctx.BaselineEngine{}, 1000)
}
func BenchmarkFig7aContextualMSJHK1000(b *testing.B) { benchCtx(b, textctx.MSJHEngine{}, 1000) }

func benchCtx(b *testing.B, e textctx.JaccardEngine, k int) {
	f := getFixture(b)
	sets := f.sets(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.AllPairs(sets)
	}
}

func BenchmarkFig7bContextualBaselineP400(b *testing.B) { benchCtxP(b, textctx.BaselineEngine{}, 400) }
func BenchmarkFig7bContextualMSJHP400(b *testing.B)     { benchCtxP(b, textctx.MSJHEngine{}, 400) }

func benchCtxP(b *testing.B, e textctx.JaccardEngine, p int) {
	f := getFixture(b)
	adj := f.db.AdjustContextSizes(f.topK(100), p, 1)
	sets := make([]textctx.Set, len(adj))
	for i := range adj {
		sets[i] = adj[i].Context
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.AllPairs(sets)
	}
}

func BenchmarkFig7xMinHashK1000(b *testing.B) {
	benchCtx(b, textctx.MinHashEngine{T: 128, Seed: 1}, 1000)
}

// ---- Figure 8: spatial proportionality (pSS for all of S) ----

func BenchmarkFig8aSpatialBaselineK100(b *testing.B) {
	f := getFixture(b)
	pts := f.locs(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid.PSSBaseline(f.query.Loc, pts)
	}
}

func BenchmarkFig8aSpatialSquaredK100(b *testing.B) { benchSquared(b, 100, 100) }
func BenchmarkFig8aSpatialRadialK100(b *testing.B)  { benchRadial(b, 100, 100) }

func BenchmarkFig8bSpatialSquaredG196(b *testing.B) { benchSquared(b, 100, 196) }

func benchSquared(b *testing.B, k, cells int) {
	f := getFixture(b)
	pts := f.locs(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := grid.NewSquared(f.query.Loc, pts, cells)
		if err != nil {
			b.Fatal(err)
		}
		g.PSS(f.sqTbl)
	}
}

func benchRadial(b *testing.B, k, cells int) {
	f := getFixture(b)
	pts := f.locs(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := grid.NewRadial(f.query.Loc, pts, cells)
		if err != nil {
			b.Fatal(err)
		}
		g.PSS(f.radTbl)
	}
}

func BenchmarkFig8dSpatialSquaredGaussian(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	q := geo.Pt(0, 0)
	pts := dataset.GaussianPoints(rng, q, 200, 0.25)
	tbl := grid.NewSquaredTable(grid.SideForCells(200))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := grid.NewSquared(q, pts, 200)
		if err != nil {
			b.Fatal(err)
		}
		g.PSS(tbl)
	}
}

// ---- Figure 9: approximation error measurement pipeline ----

func BenchmarkFig9ErrorMeasurement(b *testing.B) {
	f := getFixture(b)
	pts := f.locs(100)
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exact, _ := grid.PSSBaseline(f.query.Loc, pts)
		g, err := grid.NewSquared(f.query.Loc, pts, 100)
		if err != nil {
			b.Fatal(err)
		}
		sink += grid.RelativeError(g.PSS(f.sqTbl), exact)
	}
	_ = sink
}

// ---- Figure 10: full pipeline (Step 1 + Step 2) ----

func BenchmarkFig10PipelineIAdUOptimised(b *testing.B) { benchPipeline(b, core.IAdU, true) }
func BenchmarkFig10PipelineIAdUBaseline(b *testing.B)  { benchPipeline(b, core.IAdU, false) }
func BenchmarkFig10PipelineABPOptimised(b *testing.B)  { benchPipeline(b, core.ABP, true) }
func BenchmarkFig10PipelineABPBaseline(b *testing.B)   { benchPipeline(b, core.ABP, false) }

func benchPipeline(b *testing.B, alg func(*core.ScoreSet, core.Params) (core.Selection, error), optimised bool) {
	f := getFixture(b)
	places := f.topK(100)
	opt := core.ScoreOptions{Gamma: 0.5}
	if optimised {
		opt.Contextual = textctx.MSJHEngine{}
		opt.Spatial = core.SpatialSquaredGrid
		opt.SquaredTable = f.sqTbl
	} else {
		opt.Contextual = textctx.BaselineEngine{}
		opt.Spatial = core.SpatialExact
	}
	params := core.Params{K: 10, Lambda: 0.5, Gamma: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss, err := core.ComputeScores(f.query.Loc, places, opt)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := alg(ss, params); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 11: HPF evaluation ----

func BenchmarkFig11EvaluateHPF(b *testing.B) {
	f := getFixture(b)
	ss, err := core.ComputeScores(f.query.Loc, f.topK(100), core.ScoreOptions{Gamma: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	sel, err := core.ABP(ss, core.Params{K: 10, Lambda: 0.5, Gamma: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.Evaluate(sel.Indices, 0.5)
	}
}

// ---- Figure 12: simulated user study ----

func BenchmarkFig12aPanelScore(b *testing.B) {
	ss, err := usereval.SyntheticStudySet(1)
	if err != nil {
		b.Fatal(err)
	}
	sel, err := core.ABP(ss, core.Params{K: 10, Lambda: 0.5, Gamma: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	panel := usereval.NewPanel(10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range usereval.Criteria {
			panel.Score(ss, sel.Indices, c)
		}
	}
}

// ---- Ablation: naive inverted lists vs msJh ----

func BenchmarkAblationNaiveInvertedK1000(b *testing.B) {
	benchCtx(b, textctx.NaiveInvertedEngine{}, 1000)
}
