# Convenience targets for the reproduction. Everything is plain `go` —
# the Makefile only names the common invocations.

GO ?= go

.PHONY: all build test vet race race-all cover bench bench-serve bench-suite bench-miss bench-wal bench-load bench-trace bench-diff crash-test check profile report report-small examples clean

all: check

# Default verification path: build, vet, tests, and the race detector on
# the concurrency-bearing packages (serving path, parallel Step 1, stream).
check: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# internal/engine carries the epoch-snapshot concurrency tests (mutations
# racing pinned queries, singleflight leader panic/cancellation),
# internal/wal the durability layer's locking, cmd/propserve the
# /v1/corpus surface plus queries-during-replay, and internal/core +
# internal/textctx the parallel Step-1 fills (bit-identity tests run the
# worker fan-outs) — all must stay in this list.
race:
	$(GO) test -race ./internal/core ./internal/textctx ./internal/engine ./internal/registry ./internal/dataset ./internal/resilience ./internal/telemetry ./internal/tracestore ./internal/explain ./internal/grid ./internal/stream ./internal/wal ./internal/slo ./internal/loadgen ./cmd/propserve

# The kill-recovery suite: child processes SIGKILL themselves at injected
# WAL fault points; the parent recovers each directory and verifies no
# acknowledged mutation is lost and no torn batch survives.
crash-test:
	$(GO) test ./cmd/propserve -run 'TestCrashRecovery' -count=1 -v

race-all:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Measure the cross-query engine's repeated-query speedup (cache hit vs
# miss) and write BENCH_engine.json. The acceptance bar is a ≥5x speedup.
# SHARDS (default 4) times the sharded fan-out; SHARDS=0 the single tree.
SHARDS ?= 4
bench-serve:
	BENCH_SERVE_OUT=$(CURDIR)/BENCH_engine.json BENCH_SERVE_SHARDS=$(SHARDS) $(GO) test ./internal/engine -run TestBenchServe -v
	@cat BENCH_engine.json

# Run the full perf-trajectory suite over the demo corpus: Step-1 engines
# (baseline/msJh/minhash), spatial pSS methods (exact vs grids), and the
# Step-2 greedy algorithms (IAdU vs ABP). Writes BENCH_step1.json,
# BENCH_spatial.json and BENCH_select.json; compare two snapshots with
# `go run ./cmd/benchdiff old.json new.json`.
bench-suite:
	BENCH_SUITE_DIR=$(CURDIR) $(GO) test ./internal/benchsuite -run 'TestBench(Step1|Spatial|Select)' -count=1 -v
	@ls -l BENCH_step1.json BENCH_spatial.json BENCH_select.json

# The large-corpus miss tier: spatial Step-1 (exact vs squared grid) on
# K=2000 instances from 100k- and 1M-place corpora, and the incremental
# ABP heap vs its rescan reference on the standard K=200 instance.
# Writes BENCH_miss.json; benchdiff gates its *_ns_op fields. Corpus
# generation dominates the runtime (the 1M tier takes ~20s to build).
bench-miss:
	BENCH_MISS_DIR=$(CURDIR) $(GO) test ./internal/benchsuite -run TestBenchMiss -count=1 -v -timeout 600s
	@cat BENCH_miss.json

# Measure the durability overhead of mutations: no WAL vs sync=never vs
# sync=always (one fsync per acknowledged batch). Writes BENCH_wal.json.
bench-wal:
	BENCH_WAL_OUT=$(CURDIR)/BENCH_wal.json $(GO) test ./cmd/propserve -run TestBenchWAL -count=1 -v
	@cat BENCH_wal.json

# Drive sustained open-loop load through an in-process server — one run
# per traffic mix (hit-heavy, miss-heavy, mutation-interleaved) — and
# write tail-latency/throughput/shed figures to BENCH_serve_load.json.
# benchdiff gates the *_p99_ms and *_shed_rate fields between snapshots.
bench-load:
	BENCH_LOAD_OUT=$(CURDIR)/BENCH_serve_load.json $(GO) test ./cmd/propserve -run TestBenchServeLoad -count=1 -v -timeout 300s
	@cat BENCH_serve_load.json

# Prove the disabled-tracing path is nil-check-only: time the hit and
# sharded-miss query paths with and without a per-request trace and
# write BENCH_trace.json. hit_ns_op is comparable to BENCH_engine.json's
# hit_ns_op; benchdiff gates the *_ns_op fields between snapshots.
bench-trace:
	BENCH_TRACE_OUT=$(CURDIR)/BENCH_trace.json $(GO) test ./internal/engine -run TestBenchTrace -count=1 -v
	@cat BENCH_trace.json

# Compare the working tree's fresh bench results against the committed
# baselines (OLD=<dir> overrides where the baselines are read from).
# benchdiff tolerates a missing baseline file (a new suite's first run
# reports every field as "new" and passes).
OLD ?= .
bench-diff:
	@for f in BENCH_step1 BENCH_spatial BENCH_select BENCH_miss BENCH_wal BENCH_serve_load BENCH_trace; do \
		echo "--- $$f"; \
		$(GO) run ./cmd/benchdiff $(OLD)/$$f.json $$f.json || true; \
	done

# Start propserve with the pprof debug listener and capture a 10s CPU
# profile into cpu.pprof (inspect with: go tool pprof cpu.pprof).
profile:
	$(GO) build -o /tmp/propserve-profile ./cmd/propserve
	/tmp/propserve-profile -addr 127.0.0.1:18080 -debug-addr 127.0.0.1:16060 -access-log=false & \
	pid=$$!; \
	sleep 2; \
	( for i in $$(seq 1 200); do \
		curl -s -o /dev/null "http://127.0.0.1:18080/v1/search?K=400&k=10&spatial=exact"; \
	  done ) & \
	curl -s -o cpu.pprof "http://127.0.0.1:16060/debug/pprof/profile?seconds=10"; \
	kill $$pid; wait; \
	echo "wrote cpu.pprof"

# Regenerate every figure of the paper's evaluation (full parameter ranges).
report:
	$(GO) run ./cmd/experiments -scale full -out experiments_report.txt -csv results_csv

report-small:
	$(GO) run ./cmd/experiments -scale small

examples:
	for ex in quickstart museums geotags rdfplaces roadnet stream geosocial; do \
		echo "--- $$ex"; $(GO) run ./examples/$$ex || exit 1; \
	done

clean:
	rm -f experiments_report.txt test_output.txt bench_output.txt cpu.pprof
	rm -rf results_csv
