# Convenience targets for the reproduction. Everything is plain `go` —
# the Makefile only names the common invocations.

GO ?= go

.PHONY: all build test vet race race-all cover bench check report report-small examples clean

all: check

# Default verification path: build, vet, tests, and the race detector on
# the concurrency-bearing packages (serving path, parallel Step 1, stream).
check: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/resilience ./internal/grid ./internal/stream ./cmd/propserve

race-all:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure of the paper's evaluation (full parameter ranges).
report:
	$(GO) run ./cmd/experiments -scale full -out experiments_report.txt -csv results_csv

report-small:
	$(GO) run ./cmd/experiments -scale small

examples:
	for ex in quickstart museums geotags rdfplaces roadnet stream geosocial; do \
		echo "--- $$ex"; $(GO) run ./examples/$$ex || exit 1; \
	done

clean:
	rm -f experiments_report.txt test_output.txt bench_output.txt
	rm -rf results_csv
