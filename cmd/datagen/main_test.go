package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAndStats(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "db.gob")
	var buf bytes.Buffer
	if err := run([]string{"-preset", "dbpedia", "-places", "300", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "300 places") {
		t.Errorf("unexpected output: %s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"-stats", out}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dbpedia-like") {
		t.Errorf("stats output: %s", buf.String())
	}
}

func TestYago2Preset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "yg.gob")
	var buf bytes.Buffer
	if err := run([]string{"-preset", "yago2", "-places", "200", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "yago2-like") {
		t.Errorf("output: %s", buf.String())
	}
}

func TestErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-preset", "unknown"}, &buf); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := run([]string{"-stats", "/nonexistent.gob"}, &buf); err == nil {
		t.Error("missing stats file accepted")
	}
	if err := run([]string{"-places", "200", "-out", "/nonexistent-dir/x.gob"}, &buf); err == nil {
		t.Error("unwritable output accepted")
	}
}
