// Command datagen generates a synthetic spatial-keyword corpus (a
// DBpedia-like or Yago2-like knowledge graph with places, contexts and an
// IR-tree) and writes it to a file that cmd/propsearch can load.
//
// Usage:
//
//	datagen -preset dbpedia -places 4000 -seed 1 -out db.gob
//	datagen -stats db.gob
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	preset := fs.String("preset", "dbpedia", "dataset preset: dbpedia or yago2")
	places := fs.Int("places", 4000, "number of spatial entities")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("out", "dataset.gob", "output file")
	stats := fs.String("stats", "", "print statistics of an existing dataset file and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *stats != "" {
		f, err := os.Open(*stats)
		if err != nil {
			return err
		}
		defer f.Close()
		d, err := dataset.Load(f)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "dataset %q: %d places, vocabulary %d, index size %d\n",
			d.Config.Name, len(d.Places), d.Dict.Len(), d.Index.Len())
		return nil
	}

	var cfg dataset.Config
	switch *preset {
	case "dbpedia":
		cfg = dataset.DBpediaLike(*seed)
	case "yago2":
		cfg = dataset.Yago2Like(*seed)
	default:
		return fmt.Errorf("unknown preset %q (want dbpedia or yago2)", *preset)
	}
	cfg.Places = *places

	d, err := dataset.Generate(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.Save(f); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %q: %s, %d places, vocabulary %d\n",
		*out, cfg.Name, len(d.Places), d.Dict.Len())
	return nil
}
