package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
)

func testServer(t *testing.T) *Server {
	return testServerCfg(t, Config{})
}

func testServerCfg(t *testing.T, cfg Config) *Server {
	t.Helper()
	dcfg := dataset.DBpediaLike(5)
	dcfg.Places = 500
	d, err := dataset.Generate(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf // keep panic stacks out of stderr
	}
	return NewServer(d, cfg)
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var body map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Errorf("body = %v", body)
	}
}

func TestStats(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/v1/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "dbpedia-like") {
		t.Errorf("body = %s", rec.Body.String())
	}
}

func TestSearchDefaults(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/v1/search?K=80&k=8")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 8 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	if resp.HPF <= 0 {
		t.Errorf("HPF = %g", resp.HPF)
	}
	for _, key := range []string{"diversity", "inference_match", "mean_relevance"} {
		if _, ok := resp.Diagnostics[key]; !ok {
			t.Errorf("diagnostics missing %q: %v", key, resp.Diagnostics)
		}
	}
	for i, r := range resp.Results {
		if r.Rank != i+1 || r.ID == "" || len(r.Context) == 0 {
			t.Errorf("result %d malformed: %+v", i, r)
		}
	}
}

func TestSearchAllAlgorithms(t *testing.T) {
	s := testServer(t)
	for _, algo := range []string{"abp", "iadu", "topk", "abp-div", "iadu-div"} {
		rec := get(t, s, "/v1/search?K=60&k=5&algo="+algo)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", algo, rec.Code, rec.Body.String())
		}
	}
}

func TestSearchWithKeywordsAndLocation(t *testing.T) {
	s := testServer(t)
	// Use a real vocabulary word so the keyword resolves.
	word := s.data.Places[0].Context.Words(s.data.Dict)[0]
	rec := get(t, s, "/v1/search?x=50&y=50&K=60&k=5&keywords="+word)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Query.Keywords) != 1 || resp.Query.Keywords[0] != word {
		t.Errorf("keywords echoed wrong: %v", resp.Query.Keywords)
	}
}

func TestSearchErrors(t *testing.T) {
	s := testServer(t)
	cases := []string{
		"/v1/search?x=notanumber",
		"/v1/search?K=abc",
		"/v1/search?lambda=2",
		"/v1/search?lambda=-0.1",
		"/v1/search?algo=sorcery",     // unknown algorithm
		"/v1/search?spatial=wormhole", // unknown spatial method
		"/v1/search?K=5&k=10",         // k ≥ K
		"/v1/search?K=10&k=10",
		"/v1/search?k=0",
		"/v1/search?k=-3",
		"/v1/search?K=0",
		"/v1/search?K=-1",
		"/v1/search?K=60&k=5&gamma=7",
		"/v1/search?K=60&k=5&gamma=NaN",
		"/v1/search?x=NaN",  // strconv.ParseFloat accepts NaN; the server must not
		"/v1/search?y=+Inf", // likewise for infinities
		"/v1/search?x=-Inf",
	}
	for _, path := range cases {
		rec := get(t, s, path)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", path, rec.Code, rec.Body.String())
		}
		if !strings.Contains(rec.Body.String(), "error") {
			t.Errorf("%s: no error field: %s", path, rec.Body.String())
		}
	}
}

// TestSearchSpatialMethods exercises the spatial method selector,
// including the exact (quadratic baseline) path.
func TestSearchSpatialMethods(t *testing.T) {
	s := testServer(t)
	for _, spatial := range []string{"exact", "squared", "radial"} {
		rec := get(t, s, "/v1/search?K=60&k=5&spatial="+spatial)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", spatial, rec.Code, rec.Body.String())
		}
		var resp searchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Diagnostics["spatial_method"] == "" {
			t.Errorf("%s: diagnostics missing spatial_method: %v", spatial, resp.Diagnostics)
		}
	}
}

// TestSearchClampsK verifies the graceful-degradation ceiling: requests
// beyond -max-K are clamped and the clamp is reported in diagnostics.
func TestSearchClampsK(t *testing.T) {
	s := testServerCfg(t, Config{MaxK: 50})
	rec := get(t, s, "/v1/search?K=400&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Query.K != 50 {
		t.Errorf("K = %d, want clamped 50", resp.Query.K)
	}
	deg, ok := resp.Diagnostics["degraded"].(map[string]any)
	if !ok {
		t.Fatalf("diagnostics missing degraded: %v", resp.Diagnostics)
	}
	if deg["K_clamped_from"] != float64(400) {
		t.Errorf("K_clamped_from = %v, want 400", deg["K_clamped_from"])
	}

	// k larger than the ceiling cannot be satisfied at all: a client error.
	if rec := get(t, s, "/v1/search?K=400&k=60"); rec.Code != http.StatusBadRequest {
		t.Errorf("k beyond ceiling: status = %d, want 400 (%s)", rec.Code, rec.Body.String())
	}
}

// TestDowngradeBudgetSizeAware verifies the size-aware downshift: with
// the budget threshold permanently exceeded, a large exact query is
// downshifted to the squared grid while a small one — below the grid's
// measured crossover, where the approximation is slower than exact —
// keeps its exact method, and both decisions appear in diagnostics.
func TestDowngradeBudgetSizeAware(t *testing.T) {
	// DegradeBudget ≥ QueryTimeout: every request observes a remaining
	// budget below the threshold, so the downshift decision always runs.
	s := testServerCfg(t, Config{QueryTimeout: 5 * time.Second, DegradeBudget: 10 * time.Second})

	rec := get(t, s, "/v1/search?K=200&k=5&spatial=exact")
	if rec.Code != http.StatusOK {
		t.Fatalf("large: status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if m := resp.Diagnostics["spatial_method"]; m != "squared-grid" {
		t.Errorf("large: spatial_method = %v, want squared-grid", m)
	}
	deg, ok := resp.Diagnostics["degraded"].(map[string]any)
	if !ok {
		t.Fatalf("large: diagnostics missing degraded: %v", resp.Diagnostics)
	}
	if sp, _ := deg["spatial"].(string); !strings.Contains(sp, "exact→squared-grid") {
		t.Errorf("large: degraded.spatial = %v, want applied downshift", deg["spatial"])
	}
	if deg["remaining_budget_ms"] == nil {
		t.Errorf("large: degraded missing remaining_budget_ms: %v", deg)
	}

	rec = get(t, s, "/v1/search?K=60&k=5&spatial=exact")
	if rec.Code != http.StatusOK {
		t.Fatalf("small: status = %d: %s", rec.Code, rec.Body.String())
	}
	resp = searchResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if m := resp.Diagnostics["spatial_method"]; m != "exact" {
		t.Errorf("small: spatial_method = %v, want exact (downshift skipped)", m)
	}
	deg, ok = resp.Diagnostics["degraded"].(map[string]any)
	if !ok {
		t.Fatalf("small: diagnostics missing degraded: %v", resp.Diagnostics)
	}
	if sp, _ := deg["spatial"].(string); !strings.Contains(sp, "downshift skipped") {
		t.Errorf("small: degraded.spatial = %v, want skipped decision", deg["spatial"])
	}
}

func TestNotFoundAndMethod(t *testing.T) {
	s := testServer(t)
	if rec := get(t, s, "/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown path status = %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/search", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed && rec.Code != http.StatusNotFound {
		t.Errorf("POST /search status = %d", rec.Code)
	}
}

func TestConcurrentSearches(t *testing.T) {
	// Identical concurrent queries coalesce in the engine: the waiters
	// park (holding admission slots) while one leader computes, so a
	// simultaneous burst genuinely overlaps at the gate. Give the burst
	// explicit headroom instead of relying on scheduling to spread it.
	s := testServerCfg(t, Config{MaxInFlight: 4, MaxQueue: 8})
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			req := httptest.NewRequest(http.MethodGet, "/v1/search?K=60&k=5", nil)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				done <- fmt.Errorf("status %d: %s", rec.Code, rec.Body.String())
				return
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
