package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

func TestCorpusDisabledByDefault(t *testing.T) {
	s := testServer(t)
	rec := postJSON(t, s, "/v1/corpus", map[string]any{
		"upserts": []map[string]any{{"id": "poi:x", "x": 1, "y": 2, "context": []string{"w"}}},
	})
	if rec.Code != http.StatusForbidden {
		t.Fatalf("status = %d, want 403 without -enable-mutation: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "enable-mutation") {
		t.Errorf("error body does not name the flag: %s", rec.Body.String())
	}
}

func TestCorpusMutationRoundTrip(t *testing.T) {
	s := testServerCfg(t, Config{EnableMutation: true})

	// Before the mutation: epoch 0, and the beacon word is unknown.
	rec := get(t, s, "/v1/search?x=40&y=40&K=40&k=8&keywords=live-beacon")
	if rec.Code != http.StatusOK {
		t.Fatalf("pre-mutation search: %d: %s", rec.Code, rec.Body.String())
	}
	var pre searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pre); err != nil {
		t.Fatal(err)
	}
	if got := pre.Diagnostics["corpus_epoch"]; got != float64(0) {
		t.Errorf("pre-mutation corpus_epoch = %v, want 0", got)
	}
	if _, ok := pre.Diagnostics["keywords_dropped"]; !ok {
		t.Errorf("unknown keyword not reported as dropped: %v", pre.Diagnostics)
	}

	// Publish a cluster of places carrying the beacon word at the query
	// point, and delete nothing that exists.
	var ups []map[string]any
	for i := 0; i < 10; i++ {
		ups = append(ups, map[string]any{
			"id": fmt.Sprintf("live:%d", i), "x": 40 + float64(i)*0.01, "y": 40,
			"context": []string{"live-beacon"},
		})
	}
	rec = postJSON(t, s, "/v1/corpus", map[string]any{"upserts": ups, "deletes": []string{"no-such-id"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("mutation: %d: %s", rec.Code, rec.Body.String())
	}
	var mres struct {
		RequestID string   `json:"request_id"`
		Epoch     uint64   `json:"epoch"`
		Upserted  int      `json:"upserted"`
		Deleted   int      `json:"deleted"`
		Missing   []string `json:"missing"`
		Swept     int      `json:"swept_entries"`
		Places    int      `json:"places"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &mres); err != nil {
		t.Fatal(err)
	}
	if mres.Epoch != 1 || mres.Upserted != 10 || mres.Deleted != 0 || len(mres.Missing) != 1 {
		t.Errorf("mutation result = %+v", mres)
	}
	if mres.Places != 510 {
		t.Errorf("places = %d, want 510", mres.Places)
	}
	if mres.Swept != 1 {
		t.Errorf("swept = %d, want 1 (the pre-mutation search's cached score set)", mres.Swept)
	}

	// After: the same search runs on epoch 1, resolves the keyword, and
	// selects from the cluster.
	rec = get(t, s, "/v1/search?x=40&y=40&K=40&k=8&keywords=live-beacon")
	if rec.Code != http.StatusOK {
		t.Fatalf("post-mutation search: %d: %s", rec.Code, rec.Body.String())
	}
	var post searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &post); err != nil {
		t.Fatal(err)
	}
	if got := post.Diagnostics["corpus_epoch"]; got != float64(1) {
		t.Errorf("post-mutation corpus_epoch = %v, want 1", got)
	}
	if _, ok := post.Diagnostics["keywords_dropped"]; ok {
		t.Errorf("keyword still reported dropped after the upsert: %v", post.Diagnostics)
	}
	found := false
	for _, p := range post.Results {
		if strings.HasPrefix(p.ID, "live:") {
			found = true
		}
	}
	if !found {
		t.Errorf("no upserted place selected: %s", rec.Body.String())
	}

	// The epoch and mutation counters surface everywhere an operator looks.
	var stats map[string]any
	if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats["corpus_epoch"] != float64(1) {
		t.Errorf("/v1/stats corpus_epoch = %v", stats["corpus_epoch"])
	}
	corpus, _ := stats["corpus"].(map[string]any)
	if corpus == nil || corpus["mutations"] != float64(1) || corpus["mutation_api"] != true {
		t.Errorf("/v1/stats corpus section = %v", stats["corpus"])
	}

	var health map[string]any
	if err := json.Unmarshal(get(t, s, "/healthz").Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["corpus_epoch"] != float64(1) || health["places"] != float64(510) {
		t.Errorf("/healthz = %v", health)
	}

	metrics := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		"propserve_corpus_epoch 1",
		"propserve_corpus_places 510",
		"propserve_corpus_mutations_total 1",
		"propserve_corpus_mutation_requests_total 1",
		"propserve_corpus_swept_entries_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestCorpusRejectsBadBatches(t *testing.T) {
	s := testServerCfg(t, Config{EnableMutation: true, MaxMutationBatch: 2})

	// Over the operation cap.
	rec := postJSON(t, s, "/v1/corpus", map[string]any{
		"deletes": []string{"a", "b", "c"},
	})
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "limit of 2") {
		t.Errorf("oversize batch: %d: %s", rec.Code, rec.Body.String())
	}

	// Empty and malformed bodies.
	if rec := postJSON(t, s, "/v1/corpus", map[string]any{}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch: %d", rec.Code)
	}
	req := postJSON(t, s, "/v1/corpus", "not an object")
	if req.Code != http.StatusBadRequest {
		t.Errorf("malformed body: %d", req.Code)
	}

	// An invalid upsert is a 400 from the engine's typed error, and the
	// epoch does not move.
	rec = postJSON(t, s, "/v1/corpus", map[string]any{
		"upserts": []map[string]any{{"id": "", "x": 1, "y": 2}},
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("invalid upsert: %d: %s", rec.Code, rec.Body.String())
	}
	var health map[string]any
	if err := json.Unmarshal(get(t, s, "/healthz").Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["corpus_epoch"] != float64(0) {
		t.Errorf("rejected batches moved the epoch: %v", health["corpus_epoch"])
	}
}
