package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// traceConfig forces tail retention deterministically: a 1ns miss
// objective makes every computed search "slow", and a negative sample
// rate turns the probabilistic remainder off so retention is exactly
// the tail rules.
func traceConfig() Config {
	return Config{SLOMissP99: time.Nanosecond, TraceSample: -1}
}

func getJSON(t *testing.T, s *Server, path string) map[string]any {
	t.Helper()
	rec := get(t, s, path)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", path, rec.Code, rec.Body.String())
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return body
}

// The acceptance path end to end: a forced-slow sharded miss is
// retained, its ID surfaces as the miss class's p99 exemplar in
// /v1/slo, and fetching that ID yields the span tree with one
// shard_retrieve child per shard under the retrieve span.
func TestTraceSlowSearchExemplarResolvesWithShardSpans(t *testing.T) {
	cfg := traceConfig()
	cfg.Shards = 4
	s := testServerCfg(t, cfg)

	rec := get(t, s, "/v1/search?K=60&k=6")
	if rec.Code != http.StatusOK {
		t.Fatalf("search = %d: %s", rec.Code, rec.Body.String())
	}
	tp := rec.Header().Get("traceparent")
	parts := strings.Split(tp, "-")
	if len(parts) != 4 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		t.Fatalf("egress traceparent = %q, want 00-<32hex>-<16hex>-01", tp)
	}

	slo := getJSON(t, s, "/v1/slo")
	miss := slo["classes"].(map[string]any)["search_miss"].(map[string]any)
	total := miss["total"].(map[string]any)
	ex, _ := total["exemplar_trace"].(map[string]any)
	if ex == nil {
		t.Fatalf("search_miss total has no exemplar_trace: %v", total)
	}
	id, _ := ex["p99"].(string)
	if id == "" {
		t.Fatalf("no p99 exemplar in %v", ex)
	}
	if id != parts[1] {
		t.Errorf("exemplar %s != egress trace ID %s", id, parts[1])
	}

	tr := getJSON(t, s, "/v1/traces/"+id)
	if tr["trace_id"] != id || tr["corpus"] != "default" || tr["reason"] != "slow" {
		t.Fatalf("trace identity = %v/%v/%v", tr["trace_id"], tr["corpus"], tr["reason"])
	}
	if tr["status"] != 200.0 || tr["endpoint"] != "/v1/search" {
		t.Fatalf("trace outcome = %v %v", tr["status"], tr["endpoint"])
	}
	spans := tr["spans"].([]any)
	retrieveID := 0.0
	for _, v := range spans {
		sp := v.(map[string]any)
		if sp["stage"] == "retrieve" {
			retrieveID = sp["id"].(float64)
		}
	}
	if retrieveID == 0 {
		t.Fatalf("no retrieve span in %v", spans)
	}
	shardSpans, mergeSpans := 0, 0
	stages := map[string]bool{}
	for _, v := range spans {
		sp := v.(map[string]any)
		stages[sp["stage"].(string)] = true
		switch sp["stage"] {
		case "shard_retrieve":
			shardSpans++
			if sp["parent"] != retrieveID {
				t.Errorf("shard span parent = %v, want %v", sp["parent"], retrieveID)
			}
			attrs, _ := sp["attrs"].(map[string]any)
			for _, k := range []string{"shard", "primed", "refills", "merge_wait_ms"} {
				if _, ok := attrs[k]; !ok {
					t.Errorf("shard span missing attr %q: %v", k, attrs)
				}
			}
		case "merge":
			mergeSpans++
			if sp["parent"] != retrieveID {
				t.Errorf("merge span parent = %v, want %v", sp["parent"], retrieveID)
			}
		}
	}
	if shardSpans != 4 {
		t.Errorf("shard spans = %d, want one per shard (4)", shardSpans)
	}
	if mergeSpans != 1 {
		t.Errorf("merge spans = %d, want 1", mergeSpans)
	}
	for _, want := range []string{"parse", "admission_wait", "step2_select", "encode"} {
		if !stages[want] {
			t.Errorf("trace missing stage %q (has %v)", want, stages)
		}
	}
}

// An ingress W3C traceparent is adopted (the retained trace carries the
// caller's trace ID and remembers its span as remote_parent) and the
// egress header answers under the same trace with this server's span.
func TestTraceParentIngressEgress(t *testing.T) {
	s := testServerCfg(t, traceConfig())
	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const callerSpan = "00f067aa0ba902b7"

	req := httptest.NewRequest(http.MethodGet, "/v1/search?K=60&k=6", nil)
	req.Header.Set("traceparent", "00-"+callerTrace+"-"+callerSpan+"-01")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("search = %d", rec.Code)
	}
	parts := strings.Split(rec.Header().Get("traceparent"), "-")
	if len(parts) != 4 || parts[1] != callerTrace {
		t.Fatalf("egress traceparent = %q, want caller trace %s", rec.Header().Get("traceparent"), callerTrace)
	}
	if parts[2] == callerSpan {
		t.Error("egress span ID must be this server's, not the caller's")
	}

	tr := getJSON(t, s, "/v1/traces/"+callerTrace)
	if tr["remote_parent"] != callerSpan {
		t.Errorf("remote_parent = %v, want %s", tr["remote_parent"], callerSpan)
	}

	// A malformed header starts a fresh trace instead of failing.
	req = httptest.NewRequest(http.MethodGet, "/v1/search?K=60&k=6&x=12", nil)
	req.Header.Set("traceparent", "00-ZZZNOTHEX-bad-01")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("search with bad traceparent = %d", rec.Code)
	}
	parts = strings.Split(rec.Header().Get("traceparent"), "-")
	if len(parts) != 4 || len(parts[1]) != 32 || parts[1] == callerTrace {
		t.Errorf("bad ingress should yield a fresh trace ID, got %q", rec.Header().Get("traceparent"))
	}
}

func TestTracesListFilters(t *testing.T) {
	s := testServerCfg(t, traceConfig())
	for i := 0; i < 3; i++ {
		rec := get(t, s, fmt.Sprintf("/v1/search?K=60&k=6&x=%d", 10+i))
		if rec.Code != http.StatusOK {
			t.Fatalf("search %d = %d", i, rec.Code)
		}
	}
	list := getJSON(t, s, "/v1/traces")
	if list["count"].(float64) < 3 {
		t.Fatalf("count = %v, want >= 3", list["count"])
	}
	rows := list["traces"].([]any)
	for _, v := range rows {
		row := v.(map[string]any)
		if row["corpus"] != "default" || row["reason"] != "slow" {
			t.Errorf("row = %v, want default/slow", row)
		}
	}
	if n := getJSON(t, s, "/v1/traces?limit=1")["count"].(float64); n != 1 {
		t.Errorf("limit=1 count = %v", n)
	}
	if n := getJSON(t, s, "/v1/traces?reason=sampled")["count"].(float64); n != 0 {
		t.Errorf("reason=sampled count = %v, want 0 (sampling disabled)", n)
	}
	if n := getJSON(t, s, "/v1/traces?status=503")["count"].(float64); n != 0 {
		t.Errorf("status=503 count = %v, want 0", n)
	}
	if n := getJSON(t, s, "/v1/traces?min_duration_ms=60000")["count"].(float64); n != 0 {
		t.Errorf("min_duration_ms=60000 count = %v, want 0", n)
	}
	if rec := get(t, s, "/v1/traces?corpus=nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown corpus = %d, want 404", rec.Code)
	}
	if rec := get(t, s, "/v1/traces?status=banana"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad status filter = %d, want 400", rec.Code)
	}
	if rec := get(t, s, "/v1/traces/deadbeef"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown trace = %d, want 404", rec.Code)
	}
}

func TestTracesDisabled(t *testing.T) {
	s := testServerCfg(t, Config{DisableTraces: true})
	if rec := get(t, s, "/v1/search?K=60&k=6"); rec.Code != http.StatusOK {
		t.Fatalf("search = %d", rec.Code)
	}
	if rec := get(t, s, "/v1/traces"); rec.Code != http.StatusForbidden {
		t.Errorf("/v1/traces = %d, want 403", rec.Code)
	}
	if rec := get(t, s, "/v1/traces/abc"); rec.Code != http.StatusForbidden {
		t.Errorf("/v1/traces/{id} = %d, want 403", rec.Code)
	}
}

// The access-log and slow-query lines both name the corpus and carry
// the retained trace's ID, so any log line jumps straight to its span
// tree.
func TestTraceLogsCarryCorpusAndTraceID(t *testing.T) {
	var access, slow bytes.Buffer
	cfg := traceConfig()
	cfg.AccessLog = &access
	cfg.SlowQuery = time.Nanosecond
	cfg.SlowQueryLog = &slow
	s := testServerCfg(t, cfg)

	if rec := get(t, s, "/v1/search?K=60&k=6"); rec.Code != http.StatusOK {
		t.Fatalf("search = %d", rec.Code)
	}
	var accessLine, slowLine map[string]any
	if err := json.Unmarshal(bytes.Split(access.Bytes(), []byte("\n"))[0], &accessLine); err != nil {
		t.Fatalf("access line: %v (%s)", err, access.String())
	}
	if err := json.Unmarshal(bytes.Split(slow.Bytes(), []byte("\n"))[0], &slowLine); err != nil {
		t.Fatalf("slow line: %v (%s)", err, slow.String())
	}
	for name, line := range map[string]map[string]any{"access": accessLine, "slow": slowLine} {
		if line["corpus"] != "default" {
			t.Errorf("%s log corpus = %v, want default", name, line["corpus"])
		}
		id, _ := line["trace_id"].(string)
		if id == "" {
			t.Fatalf("%s log has no trace_id: %v", name, line)
		}
		if rec := get(t, s, "/v1/traces/"+id); rec.Code != http.StatusOK {
			t.Errorf("%s log trace_id %s does not resolve: %d", name, id, rec.Code)
		}
	}
	if accessLine["trace_id"] != slowLine["trace_id"] {
		t.Errorf("access and slow lines disagree on trace_id: %v vs %v",
			accessLine["trace_id"], slowLine["trace_id"])
	}
}

// Two tenants under concurrent queries, mutations and trace reads: the
// per-tenant rings stay isolated (a corpus filter only ever returns its
// own traces) and no reader observes a torn span tree. Run with -race.
func TestTraceChurnTwoTenants(t *testing.T) {
	cfg := Config{EnableMutation: true, TraceSample: 1.1, Shards: 2}
	s := testServerCfg(t, cfg)
	if rec := postJSON(t, s, "/v1/corpora", map[string]any{"name": "beta", "places": 300}); rec.Code != http.StatusCreated {
		t.Fatalf("create beta = %d: %s", rec.Code, rec.Body.String())
	}

	checkTree := func(tr map[string]any) {
		spans, _ := tr["spans"].([]any)
		ids := map[float64]bool{}
		for _, v := range spans {
			sp := v.(map[string]any)
			id := sp["id"].(float64)
			if ids[id] {
				t.Errorf("trace %v: duplicate span ID %v", tr["trace_id"], id)
			}
			ids[id] = true
		}
		for _, v := range spans {
			sp := v.(map[string]any)
			if p := sp["parent"].(float64); p != 0 && !ids[p] {
				t.Errorf("trace %v: span %v parented to missing span %v", tr["trace_id"], sp["id"], p)
			}
		}
	}

	var wg sync.WaitGroup
	for _, corpus := range []string{"default", "beta"} {
		base := "/v1/corpora/" + corpus
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					path := fmt.Sprintf("%s/search?K=40&k=4&x=%d.%d", base, 10+i%5, w)
					req := httptest.NewRequest(http.MethodGet, path, nil)
					s.ServeHTTP(httptest.NewRecorder(), req)
				}
			}(w)
		}
		wg.Add(1)
		go func(base, corpus string) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				postJSON(t, s, base+"/corpus", map[string]any{
					"upserts": []map[string]any{
						{"id": fmt.Sprintf("churn-%s-%d", corpus, i), "x": 1.0 + float64(i), "y": 2.0, "context": []string{"churn"}},
					},
				})
			}
		}(base, corpus)
	}
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/traces?limit=20", nil))
				var list map[string]any
				if json.Unmarshal(rec.Body.Bytes(), &list) != nil {
					continue
				}
				rows, _ := list["traces"].([]any)
				for _, v := range rows {
					row := v.(map[string]any)
					c, _ := row["corpus"].(string)
					if c != "default" && c != "beta" {
						t.Errorf("trace row names unknown corpus %q", c)
					}
					id, _ := row["trace_id"].(string)
					one := httptest.NewRecorder()
					s.ServeHTTP(one, httptest.NewRequest(http.MethodGet, "/v1/traces/"+id, nil))
					if one.Code != http.StatusOK {
						continue // evicted between list and get
					}
					var tr map[string]any
					if json.Unmarshal(one.Body.Bytes(), &tr) == nil {
						checkTree(tr)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rwg.Wait()

	for _, corpus := range []string{"default", "beta"} {
		list := getJSON(t, s, "/v1/traces?corpus="+corpus+"&limit=500")
		rows := list["traces"].([]any)
		if len(rows) == 0 {
			t.Errorf("corpus %s retained no traces under sample=1", corpus)
		}
		for _, v := range rows {
			if got := v.(map[string]any)["corpus"]; got != corpus {
				t.Errorf("corpus filter %s returned trace of %v: ring isolation broken", corpus, got)
			}
		}
	}
}
