package main

// Tests for the durable corpus: the boot sequence in durability.go
// (snapshot + WAL replay), the liveness/readiness split, degraded
// serving, and snapshot compaction. The kill-recovery suite that
// SIGKILLs a real process lives in crash_test.go.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/wal"
)

func durTestData(t *testing.T, seed int64, places int) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DBpediaLike(seed)
	cfg.Places = places
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func beaconBatch(gen, n int) engine.Mutation {
	var m engine.Mutation
	for i := 0; i < n; i++ {
		m.Upserts = append(m.Upserts, dataset.Upsert{
			ID: fmt.Sprintf("dur:%d:%d", gen, i), X: 40 + float64(i)*0.01, Y: 40,
			Context: []string{"durable-beacon", fmt.Sprintf("gen-%d", gen)},
		})
	}
	if gen > 1 {
		m.Deletes = []string{fmt.Sprintf("dur:%d:0", gen-1)}
	}
	return m
}

// durableServer builds a server over walDir the way main does: snapshot
// (if any) + wal.Open + engine at the recovered epoch + Recover.
func durableServer(t *testing.T, walDir string, cfg Config) (*Server, *wal.Log) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	cfg.EnableMutation = true
	cfg = cfg.withDefaults()

	d, epoch, ok := loadNewestSnapshot(walDir, cfg.Logf)
	if !ok {
		d, epoch = durTestData(t, 9, 300), 0
	}
	wlog, records, err := wal.Open(walDir, wal.Options{Logf: cfg.Logf})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	t.Cleanup(func() { wlog.Close() })

	opts := engineOptions(cfg)
	opts.InitialEpoch = epoch
	s := NewServerWithEngine(engine.New(d, opts), cfg)
	s.BeginRecovery()
	if err := s.Recover(context.Background(), wlog, records); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return s, wlog
}

// corpusState flattens the published corpus into a comparable map.
func corpusState(s *Server) map[string]string {
	d, _ := s.eng.Snapshot()
	out := make(map[string]string, len(d.Places))
	for _, p := range d.Places {
		out[p.Label] = fmt.Sprintf("%v/%d", p.Loc, p.Context.Len())
	}
	return out
}

// TestRecoveryEquivalence is the core durability property: a server
// restarted from snapshot + log replay holds exactly the corpus an
// uninterrupted server holds after the same acknowledged mutations.
func TestRecoveryEquivalence(t *testing.T) {
	dir := t.TempDir()

	// Reference: the same mutations applied to an engine that never went
	// down (same seed corpus as durableServer's fallback).
	ref := engine.New(durTestData(t, 9, 300), engine.Options{})
	s1, _ := durableServer(t, dir, Config{})
	for gen := 1; gen <= 5; gen++ {
		m := beaconBatch(gen, 4)
		rec := postJSON(t, s1, "/v1/corpus", m)
		if rec.Code != http.StatusOK {
			t.Fatalf("mutation gen %d: %d: %s", gen, rec.Code, rec.Body.String())
		}
		if _, err := ref.Mutate(context.Background(), m); err != nil {
			t.Fatal(err)
		}
	}
	if s1.eng.Epoch() != 5 {
		t.Fatalf("epoch after 5 mutations = %d", s1.eng.Epoch())
	}

	// "Restart": a second server recovers from the same directory.
	s2, _ := durableServer(t, dir, Config{})
	if got := s2.eng.Epoch(); got != 5 {
		t.Fatalf("recovered epoch = %d, want 5", got)
	}
	if replayed, epoch, _ := s2.def.RecoveryStats(); replayed != 5 || epoch != 5 {
		t.Errorf("recovery stats = %d records to epoch %d, want 5 and 5", replayed, epoch)
	}

	want := make(map[string]string)
	{
		d := ref.Corpus()
		for _, p := range d.Places {
			want[p.Label] = fmt.Sprintf("%v/%d", p.Loc, p.Context.Len())
		}
	}
	got := corpusState(s2)
	if len(got) != len(want) {
		t.Fatalf("recovered corpus has %d places, reference %d", len(got), len(want))
	}
	for id, v := range want {
		if got[id] != v {
			t.Fatalf("place %q = %q after recovery, reference %q", id, got[id], v)
		}
	}

	// And the recovered server keeps mutating from where history left off.
	rec := postJSON(t, s2, "/v1/corpus", beaconBatch(6, 2))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-recovery mutation: %d: %s", rec.Code, rec.Body.String())
	}
	if s2.eng.Epoch() != 6 {
		t.Errorf("post-recovery epoch = %d, want 6", s2.eng.Epoch())
	}
}

// TestRecoveryFromSnapshotPlusSuffix: compaction writes a snapshot and
// truncates the log; a restart loads the snapshot and replays only the
// suffix, reaching the same epoch.
func TestRecoveryFromSnapshotPlusSuffix(t *testing.T) {
	dir := t.TempDir()
	s1, l1 := durableServer(t, dir, Config{})
	for gen := 1; gen <= 4; gen++ {
		if rec := postJSON(t, s1, "/v1/corpus", beaconBatch(gen, 3)); rec.Code != http.StatusOK {
			t.Fatalf("gen %d: %d", gen, rec.Code)
		}
	}
	s1.compactWAL()
	if st := l1.Stats(); st.Records != 0 || st.Compactions != 1 {
		t.Fatalf("after compaction: %+v", st)
	}
	// Two more mutations land in the fresh log suffix.
	for gen := 5; gen <= 6; gen++ {
		if rec := postJSON(t, s1, "/v1/corpus", beaconBatch(gen, 3)); rec.Code != http.StatusOK {
			t.Fatalf("gen %d: %d", gen, rec.Code)
		}
	}
	want := corpusState(s1)

	s2, _ := durableServer(t, dir, Config{})
	if s2.eng.Epoch() != 6 {
		t.Fatalf("recovered epoch = %d, want 6", s2.eng.Epoch())
	}
	replayed, recoveredEpoch, _ := s2.def.RecoveryStats()
	if replayed != 2 {
		t.Errorf("replayed %d records, want only the 2 past the snapshot", replayed)
	}
	if recoveredEpoch != 6 {
		t.Errorf("recovered_epoch = %d, want 6", recoveredEpoch)
	}
	got := corpusState(s2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d places, want %d", len(got), len(want))
	}
	for id, v := range want {
		if got[id] != v {
			t.Fatalf("place %q = %q, want %q", id, got[id], v)
		}
	}
}

// TestCompactionTriggersInBackground: pushing the log past
// WALCompactRecords makes a mutation kick off compaction on its own.
func TestCompactionTriggersInBackground(t *testing.T) {
	dir := t.TempDir()
	s, l := durableServer(t, dir, Config{WALCompactRecords: 3})
	for gen := 1; gen <= 4; gen++ {
		if rec := postJSON(t, s, "/v1/corpus", beaconBatch(gen, 2)); rec.Code != http.StatusOK {
			t.Fatalf("gen %d: %d", gen, rec.Code)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never ran: %+v", l.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	snaps, err := wal.Snapshots(dir)
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no snapshot after compaction: %v, %v", snaps, err)
	}
}

// TestReadyzLifecycle: /readyz answers 503 "recovering" between
// BeginRecovery and FinishRecovery, 200 "ready" after; /healthz stays
// 200 throughout (liveness must not restart a recovering server).
func TestReadyzLifecycle(t *testing.T) {
	s := testServerCfg(t, Config{})
	if rec := get(t, s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("fresh server /readyz = %d, want 200", rec.Code)
	}

	s.BeginRecovery()
	rec := get(t, s, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during recovery = %d, want 503", rec.Code)
	}
	var body map[string]any
	json.Unmarshal(rec.Body.Bytes(), &body)
	if body["status"] != "recovering" {
		t.Errorf("recovering body = %v", body)
	}
	if rec = get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz during recovery = %d, want 200 (liveness)", rec.Code)
	}
	json.Unmarshal(rec.Body.Bytes(), &body)
	if body["ready"] != false || body["wal"] != "recovering" {
		t.Errorf("healthz body during recovery = %v", body)
	}

	s.FinishRecovery(0, 0, 0)
	if rec = get(t, s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("/readyz after recovery = %d, want 200", rec.Code)
	}
}

// TestMutationsShedDuringRecovery: POST /v1/corpus answers 503 with
// Retry-After while not ready, and searches keep working.
func TestMutationsShedDuringRecovery(t *testing.T) {
	s := testServerCfg(t, Config{EnableMutation: true})
	s.BeginRecovery()

	rec := postJSON(t, s, "/v1/corpus", beaconBatch(1, 2))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("mutation during recovery = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 during recovery carries no Retry-After")
	}
	if rec = get(t, s, "/v1/search?x=40&y=40&K=40&k=8&keywords=park"); rec.Code != http.StatusOK {
		t.Fatalf("search during recovery = %d, want 200: %s", rec.Code, rec.Body.String())
	}
}

// TestDegradedModeServesReadsShedsWrites: after DegradeWAL the server is
// ready, reads work, mutations answer 503 naming the degradation, and
// /v1/stats + /healthz expose the state.
func TestDegradedModeServesReadsShedsWrites(t *testing.T) {
	s := testServerCfg(t, Config{EnableMutation: true})
	s.BeginRecovery()
	s.DegradeWAL(fmt.Errorf("wal directory on a dead disk"))

	if rec := get(t, s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("degraded /readyz = %d, want 200 (read-mostly but serving)", rec.Code)
	}
	if rec := get(t, s, "/v1/search?x=40&y=40&K=40&k=8&keywords=park"); rec.Code != http.StatusOK {
		t.Fatalf("degraded search = %d", rec.Code)
	}
	rec := postJSON(t, s, "/v1/corpus", beaconBatch(1, 2))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded mutation = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "dead disk") {
		t.Errorf("503 body does not carry the degradation reason: %s", rec.Body.String())
	}

	var stats map[string]any
	rec = get(t, s, "/v1/stats")
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	walSec, _ := stats["wal"].(map[string]any)
	if walSec["state"] != "degraded" || walSec["degraded_reason"] == nil {
		t.Errorf("stats wal section = %v", walSec)
	}
	var health map[string]any
	json.Unmarshal(get(t, s, "/healthz").Body.Bytes(), &health)
	if health["wal"] != "degraded" {
		t.Errorf("healthz wal = %v, want degraded", health["wal"])
	}
}

// TestQueriesDuringReplay races searches against Recover: reads must
// serve consistent epochs the whole way through (run under -race this is
// the replay/readiness data-race check).
func TestQueriesDuringReplay(t *testing.T) {
	dir := t.TempDir()
	s1, _ := durableServer(t, dir, Config{})
	for gen := 1; gen <= 8; gen++ {
		if rec := postJSON(t, s1, "/v1/corpus", beaconBatch(gen, 3)); rec.Code != http.StatusOK {
			t.Fatalf("gen %d: %d", gen, rec.Code)
		}
	}

	// Second server: open by hand so Recover can be raced explicitly.
	cfg := Config{EnableMutation: true, Logf: t.Logf}
	cfg = cfg.withDefaults()
	d, epoch, ok := loadNewestSnapshot(dir, cfg.Logf)
	if !ok {
		d, epoch = durTestData(t, 9, 300), 0
	}
	wlog, records, err := wal.Open(dir, wal.Options{Logf: cfg.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer wlog.Close()
	opts := engineOptions(cfg)
	opts.InitialEpoch = epoch
	s2 := NewServerWithEngine(engine.New(d, opts), cfg)
	s2.BeginRecovery()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := get(t, s2, "/v1/search?x=40&y=40&K=40&k=8&keywords=durable-beacon")
				if rec.Code != http.StatusOK {
					t.Errorf("search during replay = %d: %s", rec.Code, rec.Body.String())
					return
				}
				get(t, s2, "/readyz")
				get(t, s2, "/metrics")
			}
		}()
	}
	if err := s2.Recover(context.Background(), wlog, records); err != nil {
		t.Fatalf("Recover under query load: %v", err)
	}
	close(stop)
	wg.Wait()
	if s2.eng.Epoch() != 8 {
		t.Fatalf("recovered epoch = %d, want 8", s2.eng.Epoch())
	}
}

// TestWALFailureSheds503: a broken log (latched fsync failure) turns
// mutations into 503s with Retry-After while searches keep serving.
func TestWALFailureSheds503(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableServer(t, dir, Config{})
	if rec := postJSON(t, s, "/v1/corpus", beaconBatch(1, 2)); rec.Code != http.StatusOK {
		t.Fatalf("healthy mutation: %d", rec.Code)
	}

	restore := wal.SetFaultHook(func(op string) error {
		if op == wal.OpAppendSync {
			return fmt.Errorf("injected fsync failure")
		}
		return nil
	})
	rec := postJSON(t, s, "/v1/corpus", beaconBatch(2, 2))
	restore()
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("mutation with failing wal = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("wal-failure 503 carries no Retry-After")
	}
	if s.eng.Epoch() != 1 {
		t.Errorf("failed append moved the epoch to %d", s.eng.Epoch())
	}
	// The log is latched broken: later mutations shed too, reads fine.
	if rec := postJSON(t, s, "/v1/corpus", beaconBatch(2, 2)); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("mutation on broken wal = %d, want 503", rec.Code)
	}
	if rec := get(t, s, "/v1/search?x=40&y=40&K=40&k=8&keywords=durable-beacon"); rec.Code != http.StatusOK {
		t.Fatalf("search with broken wal = %d", rec.Code)
	}
	if s.walState() != "broken" {
		t.Errorf("walState = %q, want broken", s.walState())
	}
}

// TestDurabilityMetricsExposed: the satellite-3 metric names appear on
// /metrics with recovery values filled in.
func TestDurabilityMetricsExposed(t *testing.T) {
	dir := t.TempDir()
	s1, _ := durableServer(t, dir, Config{})
	for gen := 1; gen <= 3; gen++ {
		if rec := postJSON(t, s1, "/v1/corpus", beaconBatch(gen, 2)); rec.Code != http.StatusOK {
			t.Fatalf("gen %d: %d", gen, rec.Code)
		}
	}
	s2, _ := durableServer(t, dir, Config{})
	body := get(t, s2, "/metrics").Body.String()
	for _, want := range []string{
		"propserve_wal_appends_total 0",
		"propserve_wal_fsyncs_total",
		"propserve_wal_errors_total 0",
		"propserve_wal_replayed_records 3",
		"propserve_wal_recovery_seconds",
		"propserve_corpus_recovered_epoch 3",
		"propserve_ready 1",
		"propserve_wal_records 3",
		"propserve_wal_torn_drops_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
