package main

// Startup recovery and snapshot compaction: the glue between the
// generic internal/wal log and the engine. The durable boot sequence is
//
//  1. load the newest valid snapshot-<epoch>.gob (a snapshot that fails
//     dataset.Load — e.g. its v2 payload CRC mismatches — is skipped
//     with a warning and the next-newest tried);
//  2. open the WAL (torn tails are truncated there; real corruption
//     fails the open);
//  3. build the engine at the snapshot's epoch and start serving reads,
//     with /readyz answering 503 "recovering";
//  4. replay the log records beyond the snapshot epoch through
//     Engine.Mutate;
//  5. attach the WAL to the engine and flip ready — only now are
//     mutations accepted.
//
// With -wal-required=true (the default) any recovery failure is fatal;
// with -wal-required=false the server degrades instead: it serves reads
// from the best state it reached and sheds mutations with 503, because
// accepting a mutation it cannot log would silently break the
// zero-acknowledged-loss contract.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/registry"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// errReplayGap reports a WAL whose first replayable record does not
// directly follow the recovered snapshot: mutations in between are
// gone, so replaying the rest would fabricate a corpus that never
// existed.
var errReplayGap = errors.New("propserve: wal replay gap")

// loadNewestSnapshot walks the snapshots in dir newest-first and
// returns the first one that loads. Corrupt snapshots are warned about
// and skipped — an older snapshot plus a longer log replay is a valid
// recovery, a garbage corpus is not. ok is false when no snapshot
// loads (a fresh directory, or all snapshots corrupt).
func loadNewestSnapshot(dir string, logf func(string, ...any)) (d *dataset.Dataset, epoch uint64, ok bool) {
	snaps, err := wal.Snapshots(dir)
	if err != nil {
		logf("propserve: listing snapshots in %s: %v", dir, err)
		return nil, 0, false
	}
	for _, sn := range snaps {
		f, err := os.Open(sn.Path)
		if err != nil {
			logf("propserve: opening snapshot %s: %v; trying older", sn.Path, err)
			continue
		}
		d, err := dataset.Load(f)
		f.Close()
		if err != nil {
			logf("propserve: snapshot %s failed to load: %v; trying older", sn.Path, err)
			continue
		}
		return d, sn.Epoch, true
	}
	return nil, 0, false
}

// replayWAL applies the log records beyond the engine's current epoch
// through Engine.Mutate, in order, and returns how many it applied.
// Records at or below the engine's epoch are skipped — they are the
// prefix the snapshot already covers (a crash between snapshot rename
// and log truncation leaves exactly this overlap). A record that does
// not continue the epoch sequence, fails to decode, or fails to apply
// is a hard error: guessing past it would resurrect a corpus state that
// never existed.
func replayWAL(ctx context.Context, eng *engine.Engine, records []wal.Record, observe func(time.Duration)) (int, error) {
	replayed := 0
	for _, rec := range records {
		if rec.Epoch <= eng.Epoch() {
			continue
		}
		if want := eng.Epoch() + 1; rec.Epoch != want {
			return replayed, fmt.Errorf("%w: next record is epoch %d, expected %d (snapshot newer than the log start?)",
				errReplayGap, rec.Epoch, want)
		}
		m, err := engine.DecodeMutation(rec.Payload)
		if err != nil {
			return replayed, fmt.Errorf("propserve: replay epoch %d: %w", rec.Epoch, err)
		}
		start := time.Now()
		res, err := eng.Mutate(ctx, m)
		if err != nil {
			return replayed, fmt.Errorf("propserve: replay epoch %d: %w", rec.Epoch, err)
		}
		if observe != nil {
			observe(time.Since(start))
		}
		if res.Epoch != rec.Epoch {
			return replayed, fmt.Errorf("propserve: replay published epoch %d for record %d", res.Epoch, rec.Epoch)
		}
		replayed++
	}
	return replayed, nil
}

// recoverTenant runs steps 4–5 of the durable boot sequence against a
// tenant already accepting read traffic: replay the log through its
// engine, attach the WAL, flip it ready. On error the tenant is left
// not-ready for mutations; the caller decides between fatal
// (-wal-required), degraded serving (Tenant.Degrade) and rejecting the
// corpus (POST /v1/corpora).
func (s *Server) recoverTenant(ctx context.Context, tn *registry.Tenant, wlog *wal.Log, records []wal.Record) error {
	start := time.Now()
	n, err := replayWAL(ctx, tn.Eng, records, func(d time.Duration) {
		s.tel.stageSeconds.With(telemetry.StageReplay).Observe(d.Seconds())
	})
	if err != nil {
		return err
	}
	tn.Eng.SetWAL(wlog)
	tn.AttachWAL(wlog)
	tn.FinishRecovery(n, tn.Eng.Epoch(), time.Since(start))
	return nil
}

// Recover is recoverTenant over the default corpus — the single-corpus
// boot path main and the durability tests drive.
func (s *Server) Recover(ctx context.Context, wlog *wal.Log, records []wal.Record) error {
	if err := s.recoverTenant(ctx, s.def, wlog, records); err != nil {
		return err
	}
	n, epoch, dur := s.def.RecoveryStats()
	s.cfg.Logf("propserve: recovery complete: %d records replayed in %v, corpus at epoch %d",
		n, dur.Round(time.Millisecond), epoch)
	return nil
}

// compactTenantWAL writes a snapshot of the tenant's currently published
// corpus epoch (temp file + rename via wal.WriteSnapshot), truncates the
// log prefix that snapshot covers, and removes older snapshots. Any step
// failing leaves the previous snapshot/log pair intact — compaction is
// pure optimisation, recovery never depends on it having run.
func (s *Server) compactTenantWAL(tn *registry.Tenant) {
	l := tn.WAL()
	if l == nil {
		return
	}
	d, epoch := tn.Eng.Snapshot()
	if _, err := wal.WriteSnapshot(l.Dir(), epoch, d.Save); err != nil {
		s.cfg.Logf("propserve: corpus %q: wal snapshot at epoch %d: %v", tn.Name, epoch, err)
		return
	}
	if err := l.CompactThrough(epoch); err != nil {
		s.cfg.Logf("propserve: corpus %q: wal compaction through epoch %d: %v", tn.Name, epoch, err)
		return
	}
	wal.RemoveSnapshotsBefore(l.Dir(), epoch, s.cfg.Logf)
	s.cfg.Logf("propserve: corpus %q: wal compacted through epoch %d (%d records remain)",
		tn.Name, epoch, l.Records())
}

// compactWAL compacts the default corpus's log (test hook).
func (s *Server) compactWAL() { s.compactTenantWAL(s.def) }

// maybeCompactAsync starts one background compaction for the tenant if
// its log has grown past the configured record threshold and no
// compaction of that tenant is already running.
func (s *Server) maybeCompactAsync(tn *registry.Tenant) {
	l := tn.WAL()
	if l == nil || s.cfg.WALCompactRecords <= 0 || l.Records() < s.cfg.WALCompactRecords {
		return
	}
	if !tn.TryCompact() {
		return
	}
	go func() {
		defer tn.EndCompact()
		s.compactTenantWAL(tn)
	}()
}

// bootCorpus builds and registers a named corpus. With dir == "" the
// corpus is volatile: gen's places, no WAL. With a directory it runs the
// same durable boot sequence as main's default corpus, synchronously:
// newest valid snapshot (falling back to gen on a fresh directory), WAL
// open (torn tails repaired), engine at the snapshot epoch, replay,
// attach. The name is registered first — reserving it atomically — and
// unregistered again on any failure.
func (s *Server) bootCorpus(ctx context.Context, name, dir string,
	gen func() (*dataset.Dataset, error), opts engine.Options) (*registry.Tenant, error) {
	var (
		d     *dataset.Dataset
		epoch uint64
		ok    bool
	)
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		d, epoch, ok = loadNewestSnapshot(dir, s.cfg.Logf)
	}
	if !ok {
		var err error
		if d, err = gen(); err != nil {
			return nil, err
		}
	}
	opts.InitialEpoch = epoch
	tn := s.newTenant(name, engine.New(d, opts))
	tn.WALDir = dir
	if err := s.reg.Add(tn); err != nil {
		return nil, err
	}
	if dir != "" {
		wlog, records, err := wal.Open(dir, wal.Options{Logf: s.cfg.Logf})
		if err != nil {
			s.reg.Remove(name)
			return nil, err
		}
		tn.BeginRecovery()
		if err := s.recoverTenant(ctx, tn, wlog, records); err != nil {
			wlog.Close()
			s.reg.Remove(name)
			return nil, err
		}
	}
	return tn, nil
}
