package main

// Startup recovery and snapshot compaction: the glue between the
// generic internal/wal log and the engine. The durable boot sequence is
//
//  1. load the newest valid snapshot-<epoch>.gob (a snapshot that fails
//     dataset.Load — e.g. its v2 payload CRC mismatches — is skipped
//     with a warning and the next-newest tried);
//  2. open the WAL (torn tails are truncated there; real corruption
//     fails the open);
//  3. build the engine at the snapshot's epoch and start serving reads,
//     with /readyz answering 503 "recovering";
//  4. replay the log records beyond the snapshot epoch through
//     Engine.Mutate;
//  5. attach the WAL to the engine and flip ready — only now are
//     mutations accepted.
//
// With -wal-required=true (the default) any recovery failure is fatal;
// with -wal-required=false the server degrades instead: it serves reads
// from the best state it reached and sheds mutations with 503, because
// accepting a mutation it cannot log would silently break the
// zero-acknowledged-loss contract.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// errReplayGap reports a WAL whose first replayable record does not
// directly follow the recovered snapshot: mutations in between are
// gone, so replaying the rest would fabricate a corpus that never
// existed.
var errReplayGap = errors.New("propserve: wal replay gap")

// loadNewestSnapshot walks the snapshots in dir newest-first and
// returns the first one that loads. Corrupt snapshots are warned about
// and skipped — an older snapshot plus a longer log replay is a valid
// recovery, a garbage corpus is not. ok is false when no snapshot
// loads (a fresh directory, or all snapshots corrupt).
func loadNewestSnapshot(dir string, logf func(string, ...any)) (d *dataset.Dataset, epoch uint64, ok bool) {
	snaps, err := wal.Snapshots(dir)
	if err != nil {
		logf("propserve: listing snapshots in %s: %v", dir, err)
		return nil, 0, false
	}
	for _, sn := range snaps {
		f, err := os.Open(sn.Path)
		if err != nil {
			logf("propserve: opening snapshot %s: %v; trying older", sn.Path, err)
			continue
		}
		d, err := dataset.Load(f)
		f.Close()
		if err != nil {
			logf("propserve: snapshot %s failed to load: %v; trying older", sn.Path, err)
			continue
		}
		return d, sn.Epoch, true
	}
	return nil, 0, false
}

// replayWAL applies the log records beyond the engine's current epoch
// through Engine.Mutate, in order, and returns how many it applied.
// Records at or below the engine's epoch are skipped — they are the
// prefix the snapshot already covers (a crash between snapshot rename
// and log truncation leaves exactly this overlap). A record that does
// not continue the epoch sequence, fails to decode, or fails to apply
// is a hard error: guessing past it would resurrect a corpus state that
// never existed.
func replayWAL(ctx context.Context, eng *engine.Engine, records []wal.Record, observe func(time.Duration)) (int, error) {
	replayed := 0
	for _, rec := range records {
		if rec.Epoch <= eng.Epoch() {
			continue
		}
		if want := eng.Epoch() + 1; rec.Epoch != want {
			return replayed, fmt.Errorf("%w: next record is epoch %d, expected %d (snapshot newer than the log start?)",
				errReplayGap, rec.Epoch, want)
		}
		m, err := engine.DecodeMutation(rec.Payload)
		if err != nil {
			return replayed, fmt.Errorf("propserve: replay epoch %d: %w", rec.Epoch, err)
		}
		start := time.Now()
		res, err := eng.Mutate(ctx, m)
		if err != nil {
			return replayed, fmt.Errorf("propserve: replay epoch %d: %w", rec.Epoch, err)
		}
		if observe != nil {
			observe(time.Since(start))
		}
		if res.Epoch != rec.Epoch {
			return replayed, fmt.Errorf("propserve: replay published epoch %d for record %d", res.Epoch, rec.Epoch)
		}
		replayed++
	}
	return replayed, nil
}

// Recover runs steps 4–5 of the durable boot sequence against a server
// already accepting read traffic: replay the log through the engine,
// attach the WAL, flip ready. On error the server is left not-ready for
// mutations; the caller decides between fatal (-wal-required) and
// degraded serving (s.DegradeWAL).
func (s *Server) Recover(ctx context.Context, wlog *wal.Log, records []wal.Record) error {
	start := time.Now()
	n, err := replayWAL(ctx, s.eng, records, func(d time.Duration) {
		s.tel.stageSeconds.With(telemetry.StageReplay).Observe(d.Seconds())
	})
	if err != nil {
		return err
	}
	s.eng.SetWAL(wlog)
	s.AttachWAL(wlog)
	s.FinishRecovery(n, s.eng.Epoch(), time.Since(start))
	return nil
}

// compactWAL writes a snapshot of the currently published corpus epoch
// (temp file + rename via wal.WriteSnapshot), truncates the log prefix
// that snapshot covers, and removes older snapshots. Any step failing
// leaves the previous snapshot/log pair intact — compaction is pure
// optimisation, recovery never depends on it having run.
func (s *Server) compactWAL() {
	l := s.walLog.Load()
	if l == nil {
		return
	}
	d, epoch := s.eng.Snapshot()
	if _, err := wal.WriteSnapshot(l.Dir(), epoch, d.Save); err != nil {
		s.cfg.Logf("propserve: wal snapshot at epoch %d: %v", epoch, err)
		return
	}
	if err := l.CompactThrough(epoch); err != nil {
		s.cfg.Logf("propserve: wal compaction through epoch %d: %v", epoch, err)
		return
	}
	wal.RemoveSnapshotsBefore(l.Dir(), epoch, s.cfg.Logf)
	s.cfg.Logf("propserve: wal compacted through epoch %d (%d records remain)", epoch, l.Records())
}

// maybeCompactAsync starts one background compaction if the log has
// grown past the configured record threshold and no compaction is
// already running.
func (s *Server) maybeCompactAsync() {
	l := s.walLog.Load()
	if l == nil || s.cfg.WALCompactRecords <= 0 || l.Records() < s.cfg.WALCompactRecords {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.compacting.Store(false)
		s.compactWAL()
	}()
}
