package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/loadgen"
	"repro/internal/slo"
)

// TestLoadSmoke runs a short burst of real HTTP load through the
// loadgen harness against an in-process server and checks the contract
// the full bench-load suite relies on: the server absorbs the load
// cleanly, and the /v1/slo sketch quantiles agree with exact sample
// quantiles to within one sketch bucket. It runs in plain `go test`, so
// a broken harness or a drifting sketch blocks CI.
func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained-load smoke test skipped in -short mode")
	}
	dcfg := dataset.DBpediaLike(5)
	dcfg.Places = 500
	d, err := dataset.Generate(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(d, Config{Logf: t.Logf})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Miss-heavy: every request computes, so the whole run lands in one
	// SLO class and the agreement check sees a single coherent series.
	report, err := loadgen.Run(context.Background(), loadgen.Options{
		BaseURL:  ts.URL,
		RPS:      40,
		Duration: 2500 * time.Millisecond,
		Mix:      loadgen.MixMissHeavy,
		Data:     d,
		Seed:     42,
		K:        60,
		SmallK:   6,
	})
	if err != nil {
		t.Fatal(err)
	}

	if report.Sent < 50 {
		t.Fatalf("sent only %d requests in %.1fs at 40 rps", report.Sent, report.MeasuredSeconds)
	}
	if report.TransportErrors != 0 || report.Errors5xx != 0 || report.Client4xx != 0 {
		t.Fatalf("load was not clean: %d transport errors, %d 5xx, %d 4xx",
			report.TransportErrors, report.Errors5xx, report.Client4xx)
	}
	if report.Shed != 0 {
		t.Fatalf("server shed %d of %d requests at a trivial rate", report.Shed, report.Sent)
	}
	if report.OK != report.Sent {
		t.Fatalf("ok = %d, sent = %d", report.OK, report.Sent)
	}
	if report.Server.Samples != report.Sent {
		t.Fatalf("Server-Timing parsed on %d of %d responses", report.Server.Samples, report.Sent)
	}
	if report.Server.P99MS <= 0 || report.Server.P99MS > 5000 {
		t.Fatalf("implausible server p99 = %vms", report.Server.P99MS)
	}

	// Agreement: the sketch estimate for each quantile must land within
	// one bucket of the exact order statistic over the same samples (the
	// Server-Timing durations are byte-for-byte what the tracker saw).
	miss := classStats(t, sloBody(t, s), slo.ClassSearchMiss, "total")
	if got := int(miss["count"].(float64)); got != report.Sent {
		t.Fatalf("slo search_miss count = %d, loadgen sent %d", got, report.Sent)
	}
	for _, q := range []struct {
		p   float64
		key string
	}{
		{0.50, "p50_ms"},
		{0.95, "p95_ms"},
		{0.99, "p99_ms"},
	} {
		est, _ := miss[q.key].(float64)
		sketchBucket := slo.BucketIndex(time.Duration(est * float64(time.Millisecond)))
		exactBucket := slo.BucketIndex(report.ExactQuantile(q.p))
		if diff := sketchBucket - exactBucket; diff < -1 || diff > 1 {
			t.Errorf("%s: sketch %vms (bucket %d) vs exact %v (bucket %d): off by %d buckets",
				q.key, est, sketchBucket, report.ExactQuantile(q.p), exactBucket, diff)
		}
	}
}
