package main

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// sloBody fetches and decodes GET /v1/slo.
func sloBody(t *testing.T, s *Server) map[string]any {
	t.Helper()
	rec := get(t, s, "/v1/slo")
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/slo status = %d: %s", rec.Code, rec.Body.String())
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	return body
}

func classStats(t *testing.T, body map[string]any, class, section string) map[string]any {
	t.Helper()
	classes, _ := body["classes"].(map[string]any)
	c, _ := classes[class].(map[string]any)
	if c == nil {
		t.Fatalf("class %q missing from /v1/slo: %v", class, body)
	}
	sec, _ := c[section].(map[string]any)
	if sec == nil {
		t.Fatalf("class %q has no %q section: %v", class, section, c)
	}
	return sec
}

func TestSLOEndpointTracksSearchClasses(t *testing.T) {
	s := testServer(t)
	// First query computes (miss), the identical repeat is served from the
	// LRU (hit); a malformed request lands in the miss class as a 400 —
	// an OK outcome, not an availability failure.
	for i := 0; i < 2; i++ {
		if rec := get(t, s, "/v1/search?K=60&k=6"); rec.Code != http.StatusOK {
			t.Fatalf("search %d status = %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	if rec := get(t, s, "/v1/search?K=banana"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad search status = %d", rec.Code)
	}

	body := sloBody(t, s)
	hit := classStats(t, body, "search_hit", "total")
	miss := classStats(t, body, "search_miss", "total")
	if hit["count"] != 1.0 {
		t.Errorf("search_hit count = %v, want 1", hit["count"])
	}
	if miss["count"] != 2.0 || miss["ok"] != 2.0 {
		t.Errorf("search_miss total = %v, want count 2 all ok", miss)
	}
	if burn, _ := miss["availability_burn"].(float64); burn != 0 {
		t.Errorf("400s must not burn availability budget: burn = %v", burn)
	}
	if p99, _ := miss["p99_ms"].(float64); p99 <= 0 {
		t.Errorf("search_miss p99_ms = %v, want > 0", p99)
	}

	// Objectives and the rolling windows ride along.
	classes := body["classes"].(map[string]any)
	obj := classes["search_hit"].(map[string]any)["objective"].(map[string]any)
	if obj["quantile"] != 0.99 || obj["threshold_ms"] != 10.0 {
		t.Errorf("search_hit objective = %v", obj)
	}
	wins := classes["search_hit"].(map[string]any)["windows"].(map[string]any)
	for _, w := range []string{"1m", "5m", "1h"} {
		ws, _ := wins[w].(map[string]any)
		if ws == nil || ws["count"] != 1.0 {
			t.Errorf("window %s = %v, want count 1", w, ws)
		}
	}
}

func TestSLOServerTimingHeader(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/v1/search?K=60&k=6")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	st := rec.Header().Get("Server-Timing")
	if !strings.HasPrefix(st, "app;dur=") {
		t.Fatalf("Server-Timing = %q, want leading app;dur=<ms>", st)
	}
	entries := map[string]float64{}
	for _, part := range strings.Split(st, ",") {
		name, dur, ok := strings.Cut(strings.TrimSpace(part), ";dur=")
		if !ok {
			t.Fatalf("Server-Timing entry %q has no ;dur=", part)
		}
		ms, err := strconv.ParseFloat(dur, 64)
		if err != nil {
			t.Fatalf("Server-Timing %s dur = %q (%v)", name, dur, err)
		}
		entries[name] = ms
	}
	if ms := entries["app"]; ms <= 0 || ms > 10_000 {
		t.Errorf("Server-Timing app dur = %v, want (0, 10000]", ms)
	}
	// The per-stage breakdown rides behind the total: a computed search
	// passes retrieve, select and render.
	for _, stage := range []string{"retrieve", "select", "render"} {
		if _, ok := entries[stage]; !ok {
			t.Errorf("Server-Timing %q missing stage %s", st, stage)
		}
	}
}

func TestSLOBatchAndMutateClasses(t *testing.T) {
	s := testServerCfg(t, Config{EnableMutation: true})
	req := postJSON(t, s, "/v1/batch", json.RawMessage(`{"queries":[{"K":60,"k":6},{"K":60,"k":6},{"K":-1}]}`))
	if req.Code != http.StatusOK {
		t.Fatalf("batch status = %d: %s", req.Code, req.Body.String())
	}
	mut := postJSON(t, s, "/v1/corpus", json.RawMessage(`{"upserts":[{"id":"slo-test","x":0.5,"y":0.5,"context":["alpha"]}]}`))
	if mut.Code != http.StatusOK {
		t.Fatalf("corpus status = %d: %s", mut.Code, mut.Body.String())
	}

	body := sloBody(t, s)
	if b := classStats(t, body, "batch", "total"); b["count"] != 3.0 {
		t.Errorf("batch total = %v, want 3 elements", b)
	}
	m := classStats(t, body, "mutate", "total")
	if m["count"] != 1.0 || m["ok"] != 1.0 {
		t.Errorf("mutate total = %v", m)
	}
	if st := mut.Header().Get("Server-Timing"); !strings.HasPrefix(st, "app;dur=") {
		t.Errorf("mutation Server-Timing = %q", st)
	}
}

func TestSLODisabled(t *testing.T) {
	s := testServerCfg(t, Config{DisableSLO: true})
	if rec := get(t, s, "/v1/search?K=60&k=6"); rec.Code != http.StatusOK {
		t.Fatalf("search status = %d", rec.Code)
	}
	if rec := get(t, s, "/v1/slo"); rec.Code != http.StatusForbidden {
		t.Errorf("/v1/slo status = %d, want 403", rec.Code)
	}
	if rec := get(t, s, "/metrics"); strings.Contains(rec.Body.String(), "propserve_slo_") {
		t.Error("disabled SLO still exposes propserve_slo_* metrics")
	}
}

func TestSLOMetricsExposition(t *testing.T) {
	s := testServer(t)
	for i := 0; i < 3; i++ {
		get(t, s, "/v1/search?K=60&k=6")
	}
	out := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		`propserve_slo_latency_seconds{class="search_hit",window="1m",quantile="0.99"}`,
		`propserve_slo_burn_rate{class="search_miss",window="5m",kind="availability"}`,
		`propserve_slo_budget_remaining{class="batch",window="1h"}`,
		`propserve_slo_requests_total{class="search_hit",outcome="ok"} 2`,
		`propserve_slo_requests_total{class="search_miss",outcome="ok"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The request histogram now resolves microsecond hits.
	if !strings.Contains(out, `propserve_request_seconds_bucket{le="1e-06"}`) {
		t.Error("/metrics missing microsecond request buckets")
	}
}

func TestStatsServerSection(t *testing.T) {
	s := testServer(t)
	var body map[string]any
	if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	sec, _ := body["server"].(map[string]any)
	if sec == nil {
		t.Fatalf("no server section: %v", body)
	}
	if up, _ := sec["uptime_s"].(float64); up < 0 {
		t.Errorf("uptime_s = %v", sec["uptime_s"])
	}
	gv, _ := sec["go_version"].(string)
	if !strings.HasPrefix(gv, "go") {
		t.Errorf("go_version = %q", gv)
	}
	if _, ok := sec["start_time"].(string); !ok {
		t.Errorf("start_time missing: %v", sec)
	}
	if se, _ := sec["start_epoch"].(float64); se <= 0 {
		t.Errorf("start_epoch = %v", sec["start_epoch"])
	}
}
