package main

// Tests for the /v1 API surface added with the cross-query engine:
// versioned routes, deprecated aliases, batch queries, and the cache
// statuses surfaced in diagnostics, /v1/stats and /metrics.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func postJSON(t *testing.T, s *Server, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// stripVolatile removes the per-request fields (request ID, timings,
// cache status) from a decoded response so two payloads can be compared
// structurally.
func stripVolatile(t *testing.T, body []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("response not JSON: %v (%s)", err, body)
	}
	delete(m, "request_id")
	if diag, ok := m["diagnostics"].(map[string]any); ok {
		delete(diag, "stage_ms")
		delete(diag, "elapsed_ms")
		delete(diag, "cache")
	}
	return m
}

// TestLegacyRetiredByDefault pins the retirement contract: without
// -enable-legacy the pre-/v1 aliases answer 410 Gone, still carrying the
// Deprecation marker and a successor-version Link so clients learn the
// replacement from the refusal itself.
func TestLegacyRetiredByDefault(t *testing.T) {
	s := testServer(t)
	for old, successor := range map[string]string{
		"/search?K=60&k=5": "/v1/search",
		"/stats":           "/v1/stats",
	} {
		rec := get(t, s, old)
		if rec.Code != http.StatusGone {
			t.Errorf("%s status = %d, want 410", old, rec.Code)
		}
		if rec.Header().Get("Deprecation") != "true" {
			t.Errorf("%s Deprecation = %q, want \"true\"", old, rec.Header().Get("Deprecation"))
		}
		if link := rec.Header().Get("Link"); !strings.Contains(link, successor) || !strings.Contains(link, "successor-version") {
			t.Errorf("%s Link = %q, want successor-version pointing at %s", old, link, successor)
		}
		var body map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s body not JSON: %v", old, err)
		}
		if !strings.Contains(body["error"], successor) {
			t.Errorf("%s error = %q, want a pointer to %s", old, body["error"], successor)
		}
	}
}

// TestLegacySearchMatchesV1 pins the -enable-legacy compatibility
// contract: /search and /v1/search serve identical payloads (modulo
// per-request volatile fields), and the legacy route is marked
// deprecated.
func TestLegacySearchMatchesV1(t *testing.T) {
	s := testServerCfg(t, Config{EnableLegacy: true})
	const q = "?x=50&y=50&K=80&k=8&lambda=0.4&gamma=0.6&algo=iadu&spatial=radial"

	v1 := get(t, s, "/v1/search"+q)
	if v1.Code != http.StatusOK {
		t.Fatalf("/v1/search status = %d: %s", v1.Code, v1.Body.String())
	}
	if v1.Header().Get("Deprecation") != "" {
		t.Error("/v1/search carries a Deprecation header")
	}

	legacy := get(t, s, "/search"+q)
	if legacy.Code != http.StatusOK {
		t.Fatalf("/search status = %d: %s", legacy.Code, legacy.Body.String())
	}
	if legacy.Header().Get("Deprecation") != "true" {
		t.Errorf("Deprecation = %q, want \"true\"", legacy.Header().Get("Deprecation"))
	}
	if link := legacy.Header().Get("Link"); !strings.Contains(link, "/v1/search") || !strings.Contains(link, "successor-version") {
		t.Errorf("Link = %q, want successor-version pointing at /v1/search", link)
	}

	a, b := stripVolatile(t, v1.Body.Bytes()), stripVolatile(t, legacy.Body.Bytes())
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Errorf("payloads differ:\n/v1/search: %s\n/search:    %s", ja, jb)
	}
}

func TestLegacyStatsMatchesV1(t *testing.T) {
	s := testServerCfg(t, Config{EnableLegacy: true})
	legacy := get(t, s, "/stats")
	if legacy.Code != http.StatusOK || legacy.Header().Get("Deprecation") != "true" {
		t.Fatalf("/stats status = %d, Deprecation = %q", legacy.Code, legacy.Header().Get("Deprecation"))
	}
	v1 := get(t, s, "/v1/stats")
	if v1.Code != http.StatusOK {
		t.Fatalf("/v1/stats status = %d", v1.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(v1.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	eng, ok := body["engine"].(map[string]any)
	if !ok {
		t.Fatalf("/v1/stats missing engine section: %v", body)
	}
	if _, ok := eng["cache"].(map[string]any); !ok {
		t.Errorf("engine stats missing cache section: %v", eng)
	}
}

// TestSearchCacheDiagnostics drives the miss → hit → coalesced lifecycle
// through the HTTP surface: the first query reports a miss, the repeat a
// hit, and the engine counters surface in /v1/stats and /metrics.
func TestSearchCacheDiagnostics(t *testing.T) {
	s := testServer(t)
	const q = "/v1/search?K=60&k=5"

	cacheOf := func(rec *httptest.ResponseRecorder) string {
		t.Helper()
		var resp searchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		c, _ := resp.Diagnostics["cache"].(string)
		return c
	}

	first := get(t, s, q)
	if first.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", first.Code, first.Body.String())
	}
	if c := cacheOf(first); c != "miss" {
		t.Errorf("first query cache = %q, want miss", c)
	}
	second := get(t, s, q)
	if c := cacheOf(second); c != "hit" {
		t.Errorf("repeat query cache = %q, want hit", c)
	}
	// A Step-2 variation (different algorithm) still hits: the score set
	// is keyed by Step-1 parameters only.
	third := get(t, s, q+"&algo=iadu")
	if c := cacheOf(third); c != "hit" {
		t.Errorf("algo variation cache = %q, want hit", c)
	}

	var stats struct {
		Engine struct {
			Cache map[string]float64 `json:"cache"`
		} `json:"engine"`
	}
	if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Engine.Cache["misses"] != 1 || stats.Engine.Cache["hits"] != 2 {
		t.Errorf("cache counters = %v, want misses 1 hits 2", stats.Engine.Cache)
	}

	series := metricsSeries(t, s)
	if series["propserve_engine_cache_misses_total"] != "1" {
		t.Errorf("engine_cache_misses_total = %q, want 1", series["propserve_engine_cache_misses_total"])
	}
	if series["propserve_engine_cache_hits_total"] != "2" {
		t.Errorf("engine_cache_hits_total = %q, want 2", series["propserve_engine_cache_hits_total"])
	}
	if _, ok := series["propserve_engine_coalesced_total"]; !ok {
		t.Error("missing propserve_engine_coalesced_total")
	}
}

func TestBatchMixedResults(t *testing.T) {
	s := testServer(t)
	word := s.data.Places[0].Context.Words(s.data.Dict)[0]
	body := map[string]any{
		"queries": []map[string]any{
			{"K": 60, "k": 5}, // defaults for the rest
			{"K": 60, "k": 5}, // identical: served from cache
			{"x": 50, "y": 50, "K": 80, "k": 8, "algo": "iadu"}, // distinct
			{"K": 60, "k": 5, "keywords": []string{word}},       // with a resolvable keyword
			{"K": 5, "k": 10},                    // invalid: k ≥ K
			{"K": 60, "k": 5, "algo": "sorcery"}, // invalid: unknown algorithm
		},
	}
	rec := postJSON(t, s, "/v1/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 6 || len(resp.Results) != 6 {
		t.Fatalf("count = %d results = %d, want 6", resp.Count, len(resp.Results))
	}
	for i, item := range resp.Results {
		if item.Index != i {
			t.Errorf("result %d carries index %d", i, item.Index)
		}
	}
	for _, i := range []int{0, 1, 2, 3} {
		item := resp.Results[i]
		if item.Status != http.StatusOK || item.Response == nil {
			t.Errorf("element %d: status %d error %q, want 200 with response", i, item.Status, item.Error)
			continue
		}
		if len(item.Response.Results) == 0 || item.Response.HPF <= 0 {
			t.Errorf("element %d: empty response %+v", i, item.Response)
		}
	}
	if resp.Results[3].Response != nil {
		if kws := resp.Results[3].Response.Query.Keywords; len(kws) != 1 || kws[0] != word {
			t.Errorf("element 3 keywords = %v, want [%s]", kws, word)
		}
	}
	for _, i := range []int{4, 5} {
		item := resp.Results[i]
		if item.Status != http.StatusBadRequest || item.Error == "" || item.Response != nil {
			t.Errorf("element %d: status %d error %q, want 400 with error only", i, item.Status, item.Error)
		}
	}

	// The batch shares the engine cache with single searches: elements 0
	// and 1 were identical, so at most one build ran for them.
	if st := s.eng.Stats(); st.Hits+st.Coalesced == 0 {
		t.Errorf("identical batch elements did not share a score set: %+v", st)
	}

	series := metricsSeries(t, s)
	if series["propserve_batch_requests_total"] != "1" {
		t.Errorf("batch_requests_total = %q, want 1", series["propserve_batch_requests_total"])
	}
	if series["propserve_batch_queries_total"] != "6" {
		t.Errorf("batch_queries_total = %q, want 6", series["propserve_batch_queries_total"])
	}
}

// TestBatchElementMatchesSearch pins batch/single equivalence: the same
// query answered through /v1/batch and /v1/search is identical modulo
// volatile fields (batch elements carry no request_id of their own).
func TestBatchElementMatchesSearch(t *testing.T) {
	s := testServer(t)
	single := get(t, s, "/v1/search?x=42&y=57&K=60&k=5")
	if single.Code != http.StatusOK {
		t.Fatalf("single status = %d", single.Code)
	}
	rec := postJSON(t, s, "/v1/batch", map[string]any{
		"queries": []map[string]any{{"x": 42, "y": 57, "K": 60, "k": 5}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Status != http.StatusOK {
		t.Fatalf("batch results = %+v", resp.Results)
	}
	elem, err := json.Marshal(resp.Results[0].Response)
	if err != nil {
		t.Fatal(err)
	}
	a, b := stripVolatile(t, single.Body.Bytes()), stripVolatile(t, elem)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Errorf("payloads differ:\nsearch: %s\nbatch:  %s", ja, jb)
	}
}

func TestBatchErrors(t *testing.T) {
	s := testServerCfg(t, Config{MaxBatch: 3})

	// Malformed body, empty batch, and an over-limit batch are whole-
	// request client errors.
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body: status = %d, want 400", rec.Code)
	}
	if rec := postJSON(t, s, "/v1/batch", map[string]any{"queries": []any{}}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch: status = %d, want 400", rec.Code)
	}
	four := make([]map[string]any, 4)
	for i := range four {
		four[i] = map[string]any{"K": 60, "k": 5}
	}
	rec2 := postJSON(t, s, "/v1/batch", map[string]any{"queries": four})
	if rec2.Code != http.StatusBadRequest || !strings.Contains(rec2.Body.String(), "exceeds") {
		t.Errorf("over-limit batch: status = %d body = %s, want 400", rec2.Code, rec2.Body.String())
	}

	// GET on the batch route is not allowed.
	if rec := get(t, s, "/v1/batch"); rec.Code != http.StatusMethodNotAllowed && rec.Code != http.StatusNotFound {
		t.Errorf("GET /v1/batch: status = %d", rec.Code)
	}
}

// TestBatchConcurrentWithSearches interleaves batches and single
// searches over the same keys; everything must succeed and the engine
// must have built each distinct key exactly once.
func TestBatchConcurrentWithSearches(t *testing.T) {
	s := testServerCfg(t, Config{MaxInFlight: 4, MaxQueue: 32, BatchWorkers: 2})
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := get(t, s, "/v1/search?K=60&k=5")
			if rec.Code != http.StatusOK {
				errs <- fmt.Errorf("search status %d: %s", rec.Code, rec.Body.String())
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := postJSON(t, s, "/v1/batch", map[string]any{
				"queries": []map[string]any{
					{"K": 60, "k": 5},
					{"x": 30, "y": 30, "K": 60, "k": 5},
				},
			})
			if rec.Code != http.StatusOK {
				errs <- fmt.Errorf("batch status %d: %s", rec.Code, rec.Body.String())
				return
			}
			var resp batchResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				errs <- err
				return
			}
			for _, item := range resp.Results {
				if item.Status != http.StatusOK {
					errs <- fmt.Errorf("batch element %d: status %d: %s", item.Index, item.Status, item.Error)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := s.eng.Stats(); st.Builds != 2 {
		t.Errorf("builds = %d, want 2 (one per distinct key)", st.Builds)
	}
}
