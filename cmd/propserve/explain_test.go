package main

// Tests for the algorithm-introspection surface: GET /v1/explain, the
// slow-query log, the engine hit ratio in /v1/stats, the access-log cache
// disposition, and request-ID propagation through batch elements.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestExplainDisabledByDefault(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/v1/explain?K=60&k=5")
	if rec.Code != http.StatusForbidden {
		t.Fatalf("status = %d, want 403 (explain is opt-in)", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "enable-explain") {
		t.Errorf("error body should name the flag: %s", rec.Body.String())
	}
}

func TestExplainEndpoint(t *testing.T) {
	s := testServerCfg(t, Config{EnableExplain: true})
	const q = "?x=50&y=50&K=80&k=8&algo=iadu&spatial=squared"

	rec := get(t, s, "/v1/explain"+q)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		searchResponse
		Explain struct {
			Algorithm string `json:"algorithm"`
			Rounds    []struct {
				Round        int      `json:"round"`
				Chosen       []int    `json:"chosen"`
				ChosenIDs    []string `json:"chosen_ids"`
				Gain         float64  `json:"gain"`
				RunnerUpGain float64  `json:"runner_up_gain"`
			} `json:"rounds"`
			Pruning *struct {
				Engine         string  `json:"engine"`
				CandidatePairs int64   `json:"candidate_pairs"`
				ComparedPairs  int64   `json:"compared_pairs"`
				PrunedPairs    int64   `json:"pruned_pairs"`
				PrunedRatio    float64 `json:"pruned_ratio"`
			} `json:"pruning"`
			Grid *struct {
				Kind         string  `json:"kind"`
				SampledPairs int     `json:"sampled_pairs"`
				MeanAbsError float64 `json:"mean_abs_error"`
			} `json:"grid"`
		} `json:"explain"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response not JSON: %v (%s)", err, rec.Body.String())
	}
	if resp.Explain.Algorithm != "iadu" {
		t.Errorf("explain.algorithm = %q, want iadu", resp.Explain.Algorithm)
	}
	if len(resp.Explain.Rounds) != 8 {
		t.Errorf("explain.rounds has %d entries, want k=8", len(resp.Explain.Rounds))
	}
	for i, r := range resp.Explain.Rounds {
		if r.Round != i+1 || len(r.Chosen) != 1 || len(r.ChosenIDs) != 1 {
			t.Errorf("round %d malformed: %+v", i, r)
		}
	}
	p := resp.Explain.Pruning
	if p == nil || p.Engine != "msJh" || p.CandidatePairs != 80*79/2 {
		t.Fatalf("explain.pruning = %+v, want msJh over 3160 candidate pairs", p)
	}
	if p.ComparedPairs+p.PrunedPairs != p.CandidatePairs {
		t.Errorf("compared %d + pruned %d != candidates %d", p.ComparedPairs, p.PrunedPairs, p.CandidatePairs)
	}
	g := resp.Explain.Grid
	if g == nil || g.Kind != "squared" || g.SampledPairs == 0 {
		t.Fatalf("explain.grid = %+v, want squared stats with sampled pairs", g)
	}

	// The cache diagnostic reports the bypass, and the explain run set the
	// introspection gauges on /metrics.
	if c, _ := resp.Diagnostics["cache"].(string); c != "bypass" {
		t.Errorf("diagnostics cache = %q, want bypass", c)
	}
	metrics := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		"propserve_msjh_pruned_ratio",
		"propserve_grid_err_sampled",
		"propserve_engine_explains_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestExplainBypassesServerCache: a warm /v1/search key still yields a
// full trace on /v1/explain (the cached score set and memoised selection
// are not consulted).
func TestExplainBypassesServerCache(t *testing.T) {
	s := testServerCfg(t, Config{EnableExplain: true})
	const q = "?K=60&k=5&algo=iadu"
	if rec := get(t, s, "/v1/search"+q); rec.Code != http.StatusOK {
		t.Fatalf("warm-up search status = %d", rec.Code)
	}
	rec := get(t, s, "/v1/explain"+q)
	if rec.Code != http.StatusOK {
		t.Fatalf("explain status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Explain struct {
			Rounds []json.RawMessage `json:"rounds"`
		} `json:"explain"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Explain.Rounds) != 5 {
		t.Errorf("warm-key explain recorded %d rounds, want 5", len(resp.Explain.Rounds))
	}
}

// syncBuffer lets handler goroutines and test assertions share a buffer.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestSlowQueryLog(t *testing.T) {
	var slow syncBuffer
	// A 1ns threshold makes every query slow.
	s := testServerCfg(t, Config{SlowQuery: time.Nanosecond, SlowQueryLog: &slow})

	rec := get(t, s, "/v1/search?x=50&y=50&K=60&k=5&algo=abp")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	line := strings.TrimSpace(slow.String())
	if line == "" {
		t.Fatal("no slow-query line emitted")
	}
	var e struct {
		RequestID   string         `json:"request_id"`
		Endpoint    string         `json:"endpoint"`
		DurationMS  float64        `json:"duration_ms"`
		ThresholdMS float64        `json:"threshold_ms"`
		Query       map[string]any `json:"query"`
		StageMS     map[string]any `json:"stage_ms"`
		Cache       string         `json:"cache"`
	}
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("slow-query line not JSON: %v (%s)", err, line)
	}
	if e.Endpoint != "/v1/search" || e.DurationMS <= 0 {
		t.Errorf("entry = %+v", e)
	}
	if e.RequestID != rec.Header().Get("X-Request-ID") {
		t.Errorf("slow-query request_id = %q, response header = %q", e.RequestID, rec.Header().Get("X-Request-ID"))
	}
	if e.Query["algo"] != "abp" || e.Query["K"] != float64(60) {
		t.Errorf("query context = %v", e.Query)
	}
	if _, ok := e.StageMS["step2_select"]; !ok {
		t.Errorf("stage breakdown missing step2_select: %v", e.StageMS)
	}
	if e.Cache != "miss" {
		t.Errorf("cache = %q, want miss", e.Cache)
	}
	if m := get(t, s, "/metrics").Body.String(); !strings.Contains(m, "propserve_slow_queries_total 1") {
		t.Error("/metrics missing propserve_slow_queries_total 1")
	}
}

// TestSlowQueryLogThreshold: queries under the threshold emit nothing.
func TestSlowQueryLogThreshold(t *testing.T) {
	var slow syncBuffer
	s := testServerCfg(t, Config{SlowQuery: time.Hour, SlowQueryLog: &slow})
	if rec := get(t, s, "/v1/search?K=60&k=5"); rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if got := slow.String(); got != "" {
		t.Errorf("fast query emitted a slow-query line: %s", got)
	}
}

// TestSlowQueryLogExplain: slow explains carry the introspection report in
// the slow-query line.
func TestSlowQueryLogExplain(t *testing.T) {
	var slow syncBuffer
	s := testServerCfg(t, Config{EnableExplain: true, SlowQuery: time.Nanosecond, SlowQueryLog: &slow})
	if rec := get(t, s, "/v1/explain?K=60&k=5&algo=iadu"); rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	line := strings.TrimSpace(slow.String())
	var e struct {
		Endpoint string `json:"endpoint"`
		Explain  *struct {
			Rounds []json.RawMessage `json:"rounds"`
		} `json:"explain"`
	}
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("slow-query line not JSON: %v (%s)", err, line)
	}
	if e.Endpoint != "/v1/explain" || e.Explain == nil || len(e.Explain.Rounds) != 5 {
		t.Errorf("explain slow-query entry = %s", line)
	}
}

func TestStatsHitRatioEndpoint(t *testing.T) {
	s := testServer(t)
	hitRatio := func() (float64, bool) {
		var body struct {
			Engine struct {
				Cache map[string]any `json:"cache"`
			} `json:"engine"`
		}
		if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		v, ok := body.Engine.Cache["hit_ratio"].(float64)
		return v, ok
	}
	if r, ok := hitRatio(); !ok || r != 0 {
		t.Errorf("hit_ratio before any query = %v (present %v), want 0", r, ok)
	}
	for i := 0; i < 2; i++ {
		if rec := get(t, s, "/v1/search?K=60&k=5"); rec.Code != http.StatusOK {
			t.Fatalf("status = %d", rec.Code)
		}
	}
	// 1 miss + 1 hit over 2 lookups.
	if r, ok := hitRatio(); !ok || r != 0.5 {
		t.Errorf("hit_ratio after miss+hit = %v (present %v), want 0.5", r, ok)
	}
}

// TestAccessLogCacheDisposition: the access-log line for a search carries
// the engine cache disposition, miss then hit.
func TestAccessLogCacheDisposition(t *testing.T) {
	var logBuf syncBuffer
	s := testServerCfg(t, Config{AccessLog: &logBuf})
	for i := 0; i < 2; i++ {
		if rec := get(t, s, "/v1/search?K=60&k=5"); rec.Code != http.StatusOK {
			t.Fatalf("status = %d", rec.Code)
		}
	}
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2: %q", len(lines), lines)
	}
	want := []string{"miss", "hit"}
	for i, line := range lines {
		var e struct {
			Path  string `json:"path"`
			Cache string `json:"cache"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("access-log line not JSON: %v (%s)", err, line)
		}
		if e.Cache != want[i] {
			t.Errorf("line %d cache = %q, want %q", i, e.Cache, want[i])
		}
	}
}

// TestAccessLogCacheAbsentOffPath: requests that never consult the cache
// (here /healthz) omit the field.
func TestAccessLogCacheAbsentOffPath(t *testing.T) {
	var logBuf syncBuffer
	s := testServerCfg(t, Config{AccessLog: &logBuf})
	if rec := get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if line := logBuf.String(); strings.Contains(line, `"cache"`) {
		t.Errorf("healthz access-log line carries a cache field: %s", line)
	}
}

// TestBatchRequestIDAndSpanIsolation: every batch element's response
// carries the parent request's ID, and per-element traces stay isolated —
// a cache-hit element must not inherit the retrieve/step1 spans of the
// element that built the score set.
func TestBatchRequestIDAndSpanIsolation(t *testing.T) {
	// One worker serialises the elements, so the duplicate of the first
	// query is deterministically a cache hit.
	s := testServerCfg(t, Config{BatchWorkers: 1})
	q := map[string]any{"K": 60, "k": 5}
	rec := postJSON(t, s, "/v1/batch", map[string]any{
		"queries": []any{q, q, map[string]any{"K": 70, "k": 5}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	parentID := rec.Header().Get("X-Request-ID")
	if parentID == "" {
		t.Fatal("batch response has no X-Request-ID header")
	}
	var resp struct {
		RequestID string `json:"request_id"`
		Results   []struct {
			Status   int             `json:"status"`
			Response *searchResponse `json:"response"`
		} `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.RequestID != parentID {
		t.Errorf("envelope request_id = %q, header = %q", resp.RequestID, parentID)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	stages := make([]map[string]any, len(resp.Results))
	for i, item := range resp.Results {
		if item.Status != http.StatusOK || item.Response == nil {
			t.Fatalf("element %d: status %d, response %v", i, item.Status, item.Response)
		}
		if item.Response.RequestID != parentID {
			t.Errorf("element %d request_id = %q, want parent %q", i, item.Response.RequestID, parentID)
		}
		st, _ := item.Response.Diagnostics["stage_ms"].(map[string]any)
		if st == nil {
			t.Fatalf("element %d has no stage breakdown: %v", i, item.Response.Diagnostics)
		}
		stages[i] = st
	}
	// Element 0 built the score set: its trace has the build stages.
	for _, stage := range []string{"retrieve", "step1_pcs", "step2_select"} {
		if _, ok := stages[0][stage]; !ok {
			t.Errorf("element 0 trace missing %q: %v", stage, stages[0])
		}
	}
	// Element 1 hit the cache: no build stages may bleed into its trace
	// from element 0 or element 2.
	if c, _ := resp.Results[1].Response.Diagnostics["cache"].(string); c != "hit" {
		t.Fatalf("element 1 cache = %q, want hit (single worker, duplicate query)", c)
	}
	for _, stage := range []string{"retrieve", "step1_pcs", "step1_pss"} {
		if _, ok := stages[1][stage]; ok {
			t.Errorf("element 1 (cache hit) trace carries %q — span bleed across elements: %v", stage, stages[1])
		}
	}
	// Element 2 is a distinct query: it built its own score set.
	if _, ok := stages[2]["retrieve"]; !ok {
		t.Errorf("element 2 trace missing retrieve: %v", stages[2])
	}
}
