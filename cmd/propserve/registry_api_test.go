package main

// Multi-tenant registry surface: /v1/corpora CRUD, per-corpus stats,
// corpus-scoped routing, and — the property the whole registry exists
// for — cross-tenant isolation of caches, epochs and WALs.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// corporaList fetches GET /v1/corpora and decodes it.
func corporaList(t *testing.T, s *Server) (count int, corpora map[string]map[string]any) {
	t.Helper()
	rec := get(t, s, "/v1/corpora")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/corpora = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Count   int                       `json:"count"`
		Corpora map[string]map[string]any `json:"corpora"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	return body.Count, body.Corpora
}

func TestCorporaListDefault(t *testing.T) {
	s := testServer(t)
	count, corpora := corporaList(t, s)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	def, ok := corpora["default"]
	if !ok {
		t.Fatalf("no default corpus in %v", corpora)
	}
	if def["places"] != float64(500) {
		t.Errorf("places = %v, want 500", def["places"])
	}
	if def["epoch"] != float64(0) {
		t.Errorf("epoch = %v, want 0", def["epoch"])
	}
	for _, k := range []string{"shards", "mutations", "cache_hit_ratio"} {
		if _, ok := def[k]; !ok {
			t.Errorf("summary missing %q: %v", k, def)
		}
	}
	w, ok := def["wal"].(map[string]any)
	if !ok {
		t.Fatalf("summary missing wal section: %v", def)
	}
	if w["state"] != "disabled" {
		t.Errorf("wal state = %v, want disabled (no WAL attached)", w["state"])
	}
	if w["lag_records"] != float64(0) {
		t.Errorf("wal lag = %v, want 0", w["lag_records"])
	}
}

func TestCorporaAdminDisabledByDefault(t *testing.T) {
	s := testServer(t)
	rec := postJSON(t, s, "/v1/corpora", map[string]any{"name": "x"})
	if rec.Code != http.StatusForbidden {
		t.Errorf("create without -enable-mutation = %d, want 403", rec.Code)
	}
	req := httptest.NewRequest(http.MethodDelete, "/v1/corpora/x", nil)
	del := httptest.NewRecorder()
	s.ServeHTTP(del, req)
	if del.Code != http.StatusForbidden {
		t.Errorf("delete without -enable-mutation = %d, want 403", del.Code)
	}
}

func TestCorporaCreateValidation(t *testing.T) {
	s := testServerCfg(t, Config{EnableMutation: true})
	for _, bad := range []map[string]any{
		{"name": "UPPER"},
		{"name": "-leading-dash"},
		{"name": ""},
		{"name": "ok", "places": -1},
		{"name": "ok", "places": 1_000_000},
	} {
		rec := postJSON(t, s, "/v1/corpora", bad)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("create %v = %d, want 400: %s", bad, rec.Code, rec.Body.String())
		}
	}
}

func TestCorporaLifecycle(t *testing.T) {
	s := testServerCfg(t, Config{EnableMutation: true})

	rec := postJSON(t, s, "/v1/corpora", map[string]any{"name": "tenant-b", "places": 300, "seed": 7})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create = %d: %s", rec.Code, rec.Body.String())
	}
	var created struct {
		Name    string         `json:"name"`
		Durable bool           `json:"durable"`
		Stats   map[string]any `json:"stats"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	if created.Name != "tenant-b" || created.Durable {
		t.Errorf("created = %+v, want name tenant-b, volatile", created)
	}
	if created.Stats["places"] != float64(300) {
		t.Errorf("created places = %v, want 300", created.Stats["places"])
	}

	if count, _ := corporaList(t, s); count != 2 {
		t.Errorf("count after create = %d, want 2", count)
	}

	// The name is taken.
	rec = postJSON(t, s, "/v1/corpora", map[string]any{"name": "tenant-b"})
	if rec.Code != http.StatusConflict {
		t.Errorf("duplicate create = %d, want 409: %s", rec.Code, rec.Body.String())
	}

	// The scoped routes serve the new tenant; an unknown name is 404.
	if rec := get(t, s, "/v1/corpora/tenant-b/search?K=60&k=5"); rec.Code != http.StatusOK {
		t.Errorf("scoped search = %d: %s", rec.Code, rec.Body.String())
	}
	if rec := get(t, s, "/v1/corpora/nope/search?K=60&k=5"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown corpus search = %d, want 404", rec.Code)
	}

	// The default corpus is not deletable; tenant-b is, exactly once.
	del := func(name string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodDelete, "/v1/corpora/"+name, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		return rec
	}
	if rec := del("default"); rec.Code != http.StatusForbidden {
		t.Errorf("delete default = %d, want 403", rec.Code)
	}
	if rec := del("tenant-b"); rec.Code != http.StatusOK {
		t.Errorf("delete tenant-b = %d: %s", rec.Code, rec.Body.String())
	}
	if rec := del("tenant-b"); rec.Code != http.StatusNotFound {
		t.Errorf("second delete = %d, want 404", rec.Code)
	}
	if count, _ := corporaList(t, s); count != 1 {
		t.Errorf("count after delete = %d, want 1", count)
	}
}

// TestCrossTenantIsolation boots two corpora over identical data and
// asserts the properties multi-tenancy promises: per-tenant score-set
// caches (a hit on one tenant is not a hit on the other), and per-tenant
// epochs (mutating one leaves the other's corpus — and its warm cache —
// untouched).
func TestCrossTenantIsolation(t *testing.T) {
	s := testServerCfg(t, Config{EnableMutation: true})

	// Same generator parameters as testServer's default corpus, so the
	// same query is meaningful on both tenants.
	rec := postJSON(t, s, "/v1/corpora", map[string]any{"name": "twin", "places": 500, "seed": 5})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create twin = %d: %s", rec.Code, rec.Body.String())
	}

	cacheOf := func(rec *httptest.ResponseRecorder) string {
		t.Helper()
		if rec.Code != http.StatusOK {
			t.Fatalf("search = %d: %s", rec.Code, rec.Body.String())
		}
		var resp searchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		c, _ := resp.Diagnostics["cache"].(string)
		return c
	}

	const q = "K=60&k=5&x=40&y=40"
	if c := cacheOf(get(t, s, "/v1/search?"+q)); c != "miss" {
		t.Errorf("default first query = %q, want miss", c)
	}
	if c := cacheOf(get(t, s, "/v1/search?"+q)); c != "hit" {
		t.Errorf("default repeat = %q, want hit", c)
	}
	// The identical query against the twin corpus must not see the
	// default corpus's cache entry.
	if c := cacheOf(get(t, s, "/v1/corpora/twin/search?"+q)); c != "miss" {
		t.Errorf("twin first query = %q, want miss (cross-tenant cache leak)", c)
	}
	if c := cacheOf(get(t, s, "/v1/corpora/twin/search?"+q)); c != "hit" {
		t.Errorf("twin repeat = %q, want hit", c)
	}

	// Mutate only the twin. Its epoch advances; the default corpus stays
	// at epoch 0 and keeps serving its warm cache entry.
	mut := postJSON(t, s, "/v1/corpora/twin/corpus", map[string]any{
		"upserts": []map[string]any{{"id": "twin:new", "x": 40, "y": 40, "context": []string{"beacon"}}},
	})
	if mut.Code != http.StatusOK {
		t.Fatalf("twin mutation = %d: %s", mut.Code, mut.Body.String())
	}
	_, corpora := corporaList(t, s)
	if e := corpora["twin"]["epoch"]; e != float64(1) {
		t.Errorf("twin epoch = %v, want 1", e)
	}
	if e := corpora["default"]["epoch"]; e != float64(0) {
		t.Errorf("default epoch = %v, want 0 (mutation leaked across tenants)", e)
	}
	if c := cacheOf(get(t, s, "/v1/search?"+q)); c != "hit" {
		t.Errorf("default after twin mutation = %q, want hit (cache invalidated across tenants)", c)
	}

	// Both tenants surface in /v1/stats and as labeled metric series.
	var stats struct {
		Corpora map[string]map[string]any `json:"corpora"`
	}
	if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Corpora) != 2 {
		t.Fatalf("/v1/stats corpora = %v, want default and twin", stats.Corpora)
	}
	if e := stats.Corpora["twin"]["epoch"]; e != float64(1) {
		t.Errorf("/v1/stats twin epoch = %v, want 1", e)
	}
	series := metricsSeries(t, s)
	for _, want := range []struct{ series, value string }{
		{`propserve_tenant_places{corpus="default"}`, "500"},
		{`propserve_tenant_corpus_epoch{corpus="default"}`, "0"},
		{`propserve_tenant_corpus_epoch{corpus="twin"}`, "1"},
		{`propserve_tenant_mutations_total{corpus="twin"}`, "1"},
	} {
		if got := series[want.series]; got != want.value {
			t.Errorf("%s = %q, want %q", want.series, got, want.value)
		}
	}
}

// TestDurableCorpusRecreateRecovers creates a durable secondary corpus,
// mutates it, and — after a simulated restart — re-creates the same name
// over the same directory: the WAL replay must resurrect the mutation
// rather than serving freshly generated places.
func TestDurableCorpusRecreateRecovers(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{EnableMutation: true, CorporaDir: dir}
	create := map[string]any{"name": "dur", "places": 200, "seed": 9}

	s1 := testServerCfg(t, cfg)
	rec := postJSON(t, s1, "/v1/corpora", create)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create = %d: %s", rec.Code, rec.Body.String())
	}
	var created struct {
		Durable bool `json:"durable"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	if !created.Durable {
		t.Fatal("corpus under -corpora-dir not durable")
	}
	var ups []map[string]any
	for i := 0; i < 5; i++ {
		ups = append(ups, map[string]any{
			"id": fmt.Sprintf("dur:%d", i), "x": 40 + float64(i)*0.01, "y": 40,
			"context": []string{"durable-beacon"},
		})
	}
	if rec := postJSON(t, s1, "/v1/corpora/dur/corpus", map[string]any{"upserts": ups}); rec.Code != http.StatusOK {
		t.Fatalf("mutation = %d: %s", rec.Code, rec.Body.String())
	}

	// "Restart": a fresh server over the same corpora directory. Creating
	// the same name recovers from the directory's WAL instead of starting
	// over (the generator parameters regenerate the identical base corpus,
	// and replay carries it to the logged epoch).
	s2 := testServerCfg(t, cfg)
	rec = postJSON(t, s2, "/v1/corpora", create)
	if rec.Code != http.StatusCreated {
		t.Fatalf("re-create = %d: %s", rec.Code, rec.Body.String())
	}
	_, corpora := corporaList(t, s2)
	if e := corpora["dur"]["epoch"]; e != float64(1) {
		t.Errorf("recovered epoch = %v, want 1", e)
	}
	if p := corpora["dur"]["places"]; p != float64(205) {
		t.Errorf("recovered places = %v, want 205", p)
	}
	srch := get(t, s2, "/v1/corpora/dur/search?x=40&y=40&K=40&k=5&keywords=durable-beacon")
	if srch.Code != http.StatusOK {
		t.Fatalf("recovered search = %d: %s", srch.Code, srch.Body.String())
	}
	if !strings.Contains(srch.Body.String(), "dur:") {
		t.Errorf("recovered search does not select replayed places: %s", srch.Body.String())
	}
}

// TestBootCorpusScan exercises the main.go restart path directly:
// bootCorpus over an existing directory with a generator, as the
// -corpora-dir scan does at boot.
func TestBootCorpusScan(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{EnableMutation: true, CorporaDir: dir}

	s1 := testServerCfg(t, cfg)
	if rec := postJSON(t, s1, "/v1/corpora", map[string]any{"name": "scanme", "places": 150, "seed": 3}); rec.Code != http.StatusCreated {
		t.Fatalf("create = %d: %s", rec.Code, rec.Body.String())
	}
	if rec := postJSON(t, s1, "/v1/corpora/scanme/corpus", map[string]any{
		"upserts": []map[string]any{{"id": "scan:1", "x": 1, "y": 1, "context": []string{"w"}}},
	}); rec.Code != http.StatusOK {
		t.Fatalf("mutation = %d: %s", rec.Code, rec.Body.String())
	}
	// Compact so the directory holds a snapshot: the boot scan must then
	// recover real state without depending on the generator matching.
	tn1, ok := s1.reg.Get("scanme")
	if !ok {
		t.Fatal("scanme not registered")
	}
	s1.compactTenantWAL(tn1)

	s2 := testServerCfg(t, cfg)
	tn, err := s2.bootCorpus(context.Background(), "scanme", tn1.WALDir,
		func() (*dataset.Dataset, error) { panic("snapshot present; generator must not run") }, engineOptions(cfg))
	if err != nil {
		t.Fatalf("bootCorpus: %v", err)
	}
	if tn.Eng.Epoch() != 1 {
		t.Errorf("scanned epoch = %d, want 1", tn.Eng.Epoch())
	}
	if !tn.Ready() {
		t.Error("scanned corpus not ready for mutations")
	}
	if got := tn.Eng.Stats().Places; got != 151 {
		t.Errorf("scanned places = %d, want 151", got)
	}
}
