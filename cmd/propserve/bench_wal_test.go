package main

// TestBenchWAL, gated on BENCH_WAL_OUT, measures what durability costs a
// mutation: the same batch stream applied with no WAL, with the log on
// SyncNever, and with SyncAlways (one fsync per acknowledged batch). The
// report lands in BENCH_wal.json (`make bench-wal`); benchdiff compares
// snapshots and tolerates the missing first baseline.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/wal"
)

func TestBenchWAL(t *testing.T) {
	out := os.Getenv("BENCH_WAL_OUT")
	if out == "" {
		t.Skip("set BENCH_WAL_OUT=<path> to write BENCH_wal.json")
	}
	const runs = 60
	d := durTestData(t, 9, 1000)

	measure := func(w engine.MutationLog) float64 {
		eng := engine.New(d, engine.Options{})
		if w != nil {
			eng.SetWAL(w)
		}
		start := time.Now()
		for gen := 1; gen <= runs; gen++ {
			if _, err := eng.Mutate(context.Background(), engine.Mutation{
				Upserts: []dataset.Upsert{{
					ID: fmt.Sprintf("bench:%d", gen), X: 10, Y: 10, Context: []string{"bench-word"},
				}},
			}); err != nil {
				t.Fatal(err)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / runs
	}

	openLog := func(sync wal.SyncPolicy) *wal.Log {
		l, _, err := wal.Open(t.TempDir(), wal.Options{Sync: sync, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		return l
	}

	noWALNs := measure(nil)
	neverNs := measure(openLog(wal.SyncNever))
	alwaysNs := measure(openLog(wal.SyncAlways))

	report := map[string]any{
		"benchmark": "wal_mutation_overhead",
		"dataset":   map[string]any{"name": d.Config.Name, "places": len(d.Places), "seed": d.Config.Seed},
		"runs":      runs,
		// Mutation cost is dominated by the O(n) copy + index rebuild; the
		// three variants isolate the log-append and fsync shares of it.
		"mutate_nowal_ns_op":       noWALNs,
		"mutate_sync_never_ns_op":  neverNs,
		"mutate_sync_always_ns_op": alwaysNs,
		"fsync_overhead_ns_op":     alwaysNs - neverNs,
		"fsync_overhead_ratio":     alwaysNs/noWALNs - 1,
		"go":                       runtime.Version(),
		"cpus":                     runtime.NumCPU(),
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("mutate: no-wal %.0f, sync=never %.0f, sync=always %.0f ns/op (fsync adds %.0f ns, %.1f%%) -> %s",
		noWALNs, neverNs, alwaysNs, alwaysNs-neverNs, (alwaysNs/noWALNs-1)*100, out)
}
